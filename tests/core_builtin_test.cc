// Unit tests for the built-in predicates (Section 3.1) and the value
// comparison / arithmetic helpers they rest on.

#include <gtest/gtest.h>

#include "core/builtin.h"
#include "core/parser.h"

namespace logres {
namespace {

// A little harness: evaluates builtin literal text against bindings with a
// plain term evaluator / matcher (no instance needed for these builtins).
Result<std::vector<Bindings>> Solve(const std::string& literal_text,
                                    Bindings bindings) {
  auto rule = ParseRule("x(a: 1) <- " + literal_text + ".");
  if (!rule.ok()) return rule.status();
  const Literal& lit = rule->body[0];

  TermEvalFn eval = [&bindings, &eval](const TermPtr& t) -> Result<Value> {
    switch (t->kind()) {
      case TermKind::kConstant:
        return t->constant();
      case TermKind::kVariable: {
        auto it = bindings.find(t->name());
        if (it == bindings.end()) {
          return Status::ExecutionError("unbound " + t->name());
        }
        return it->second;
      }
      case TermKind::kSetTerm: {
        std::vector<Value> elems;
        for (const TermPtr& e : t->elements()) {
          LOGRES_ASSIGN_OR_RETURN(Value v, eval(e));
          elems.push_back(v);
        }
        return Value::MakeSet(std::move(elems));
      }
      case TermKind::kSequenceTerm: {
        std::vector<Value> elems;
        for (const TermPtr& e : t->elements()) {
          LOGRES_ASSIGN_OR_RETURN(Value v, eval(e));
          elems.push_back(v);
        }
        return Value::MakeSequence(std::move(elems));
      }
      case TermKind::kMultisetTerm: {
        std::vector<Value> elems;
        for (const TermPtr& e : t->elements()) {
          LOGRES_ASSIGN_OR_RETURN(Value v, eval(e));
          elems.push_back(v);
        }
        return Value::MakeMultiset(std::move(elems));
      }
      case TermKind::kArith: {
        LOGRES_ASSIGN_OR_RETURN(Value a, eval(t->lhs()));
        LOGRES_ASSIGN_OR_RETURN(Value b, eval(t->rhs()));
        return EvalArith(t->arith_op(), a, b);
      }
      default:
        return Status::ExecutionError("unsupported term in test harness");
    }
  };
  TermMatchFn match = [](const TermPtr& t, const Value& v,
                         Bindings* b) -> Result<bool> {
    if (t->kind() == TermKind::kVariable) {
      auto it = b->find(t->name());
      if (it != b->end()) return it->second == v;
      b->emplace(t->name(), v);
      return true;
    }
    if (t->kind() == TermKind::kConstant) return t->constant() == v;
    return false;
  };
  return SolveBuiltin(lit, bindings, eval, match);
}

Value IntSet(std::vector<int64_t> xs) {
  std::vector<Value> vs;
  for (int64_t x : xs) vs.push_back(Value::Int(x));
  return Value::MakeSet(std::move(vs));
}

TEST(BuiltinTest, MemberEnumerates) {
  Bindings b = {{"S", IntSet({1, 2, 3})}};
  auto out = Solve("member(X, S)", b);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->size(), 3u);
}

TEST(BuiltinTest, MemberTests) {
  Bindings b = {{"S", IntSet({1, 2})}, {"X", Value::Int(2)}};
  EXPECT_EQ(Solve("member(X, S)", b)->size(), 1u);
  b["X"] = Value::Int(9);
  EXPECT_TRUE(Solve("member(X, S)", b)->empty());
}

TEST(BuiltinTest, MemberOverSequencesAndMultisets) {
  Bindings b = {{"Q", Value::MakeSequence({Value::Int(1), Value::Int(1)})}};
  // Enumeration visits each occurrence but identical bindings collapse at
  // the receiving end; here we get two (identical) extensions.
  EXPECT_EQ(Solve("member(X, Q)", b)->size(), 2u);
  EXPECT_FALSE(Solve("member(X, Y)", {{"Y", Value::Int(3)}}).ok());
}

TEST(BuiltinTest, UnionIntersectionDifference) {
  Bindings b = {{"A", IntSet({1, 2})}, {"B", IntSet({2, 3})}};
  auto u = Solve("union(R, A, B)", b);
  ASSERT_EQ(u->size(), 1u);
  EXPECT_EQ(u->front().at("R"), IntSet({1, 2, 3}));
  EXPECT_EQ(Solve("intersection(R, A, B)", b)->front().at("R"),
            IntSet({2}));
  EXPECT_EQ(Solve("difference(R, A, B)", b)->front().at("R"), IntSet({1}));
  // Bound result acts as a test.
  Bindings b2 = b;
  b2["R"] = IntSet({1, 2, 3});
  EXPECT_EQ(Solve("union(R, A, B)", b2)->size(), 1u);
  b2["R"] = IntSet({1});
  EXPECT_TRUE(Solve("union(R, A, B)", b2)->empty());
}

TEST(BuiltinTest, AppendInsertsElement) {
  // Example 3.3: append({}, Y, X) makes the singleton {Y}.
  Bindings b = {{"Y", Value::Int(5)}};
  auto out = Solve("append({}, Y, X)", b);
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front().at("X"), IntSet({5}));
}

TEST(BuiltinTest, CountSumMinMaxAvgLength) {
  Bindings b = {{"S", IntSet({1, 2, 3})}};
  EXPECT_EQ(Solve("count(S, N)", b)->front().at("N"), Value::Int(3));
  EXPECT_EQ(Solve("sum(S, N)", b)->front().at("N"), Value::Int(6));
  EXPECT_EQ(Solve("min(S, N)", b)->front().at("N"), Value::Int(1));
  EXPECT_EQ(Solve("max(S, N)", b)->front().at("N"), Value::Int(3));
  EXPECT_EQ(Solve("avg(S, N)", b)->front().at("N"), Value::Real(2.0));
  Bindings q = {{"Q", Value::MakeSequence({Value::Int(9)})}};
  EXPECT_EQ(Solve("length(Q, N)", q)->front().at("N"), Value::Int(1));
}

TEST(BuiltinTest, MinMaxAvgOfEmptyFail) {
  Bindings b = {{"S", IntSet({})}};
  EXPECT_TRUE(Solve("min(S, N)", b)->empty());
  EXPECT_TRUE(Solve("max(S, N)", b)->empty());
  EXPECT_TRUE(Solve("avg(S, N)", b)->empty());
  // count/sum of empty are 0.
  EXPECT_EQ(Solve("count(S, N)", b)->front().at("N"), Value::Int(0));
  EXPECT_EQ(Solve("sum(S, N)", b)->front().at("N"), Value::Int(0));
}

TEST(BuiltinTest, SumMixedNumericIsReal) {
  Bindings b = {{"S", Value::MakeSet({Value::Int(1), Value::Real(0.5)})}};
  EXPECT_EQ(Solve("sum(S, N)", b)->front().at("N"), Value::Real(1.5));
  Bindings bad = {{"S", Value::MakeSet({Value::String("x")})}};
  EXPECT_EQ(Solve("sum(S, N)", bad).status().code(),
            StatusCode::kTypeError);
}

TEST(BuiltinTest, Nth) {
  Bindings b = {{"Q", Value::MakeSequence({Value::Int(10), Value::Int(20)})},
                {"I", Value::Int(2)}};
  EXPECT_EQ(Solve("nth(Q, I, V)", b)->front().at("V"), Value::Int(20));
  b["I"] = Value::Int(3);
  EXPECT_TRUE(Solve("nth(Q, I, V)", b)->empty());
  b["I"] = Value::Int(0);
  EXPECT_TRUE(Solve("nth(Q, I, V)", b)->empty());
}

TEST(BuiltinTest, EmptyEvenOddSubset) {
  EXPECT_EQ(Solve("empty(S)", {{"S", IntSet({})}})->size(), 1u);
  EXPECT_TRUE(Solve("empty(S)", {{"S", IntSet({1})}})->empty());
  EXPECT_EQ(Solve("even(N)", {{"N", Value::Int(4)}})->size(), 1u);
  EXPECT_TRUE(Solve("even(N)", {{"N", Value::Int(3)}})->empty());
  EXPECT_EQ(Solve("odd(N)", {{"N", Value::Int(3)}})->size(), 1u);
  EXPECT_EQ(Solve("subset(A, B)",
                  {{"A", IntSet({1})}, {"B", IntSet({1, 2})}})->size(),
            1u);
  EXPECT_TRUE(Solve("subset(A, B)",
                    {{"A", IntSet({3})}, {"B", IntSet({1, 2})}})->empty());
}

TEST(BuiltinTest, KindErrors) {
  EXPECT_EQ(Solve("even(N)", {{"N", Value::String("x")}}).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Solve("count(S, N)", {{"S", Value::Int(1)}}).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Solve("union(R, A, B)",
                  {{"A", IntSet({1})},
                   {"B", Value::MakeSequence({})}}).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Solve("subset(A, B)",
                  {{"A", Value::Int(1)}, {"B", IntSet({})}})
                .status().code(),
            StatusCode::kTypeError);
}

TEST(BuiltinTest, ArityErrors) {
  EXPECT_EQ(Solve("member(X)", {}).status().code(), StatusCode::kTypeError);
  EXPECT_EQ(Solve("union(A, B)", {{"A", IntSet({})}, {"B", IntSet({})}})
                .status().code(),
            StatusCode::kTypeError);
}

// ---------------------------------------------------------------------------
// CompareValues / EvalArith.

TEST(CompareValuesTest, NumericCrossKind) {
  EXPECT_EQ(CompareValues(Value::Int(2), Value::Real(2.0)).value(), 0);
  EXPECT_LT(CompareValues(Value::Int(1), Value::Real(1.5)).value(), 0);
  EXPECT_GT(CompareValues(Value::Real(3.5), Value::Int(3)).value(), 0);
}

TEST(CompareValuesTest, SameKindStructural) {
  EXPECT_LT(CompareValues(Value::String("a"), Value::String("b")).value(),
            0);
  EXPECT_EQ(CompareValues(IntSet({1, 2}), IntSet({1, 2})).value(), 0);
}

TEST(CompareValuesTest, CrossKindIsError) {
  EXPECT_FALSE(CompareValues(Value::Int(1), Value::String("1")).ok());
  // nil compares only against nil.
  EXPECT_EQ(CompareValues(Value::Nil(), Value::Nil()).value(), 0);
  EXPECT_NE(CompareValues(Value::Nil(), Value::Int(0)).value(), 0);
}

TEST(EvalArithTest, IntegerOps) {
  EXPECT_EQ(EvalArith(ArithOp::kAdd, Value::Int(2), Value::Int(3)).value(),
            Value::Int(5));
  EXPECT_EQ(EvalArith(ArithOp::kSub, Value::Int(2), Value::Int(3)).value(),
            Value::Int(-1));
  EXPECT_EQ(EvalArith(ArithOp::kMul, Value::Int(4), Value::Int(3)).value(),
            Value::Int(12));
  EXPECT_EQ(EvalArith(ArithOp::kDiv, Value::Int(7), Value::Int(2)).value(),
            Value::Int(3));
  EXPECT_EQ(EvalArith(ArithOp::kMod, Value::Int(7), Value::Int(2)).value(),
            Value::Int(1));
}

TEST(EvalArithTest, RealPromotion) {
  EXPECT_EQ(EvalArith(ArithOp::kAdd, Value::Int(1), Value::Real(0.5))
                .value(),
            Value::Real(1.5));
  EXPECT_EQ(EvalArith(ArithOp::kDiv, Value::Real(1.0), Value::Real(4.0))
                .value(),
            Value::Real(0.25));
}

TEST(EvalArithTest, Errors) {
  EXPECT_EQ(EvalArith(ArithOp::kDiv, Value::Int(1), Value::Int(0))
                .status().code(),
            StatusCode::kExecutionError);
  EXPECT_EQ(EvalArith(ArithOp::kMod, Value::Real(1.0), Value::Real(2.0))
                .status().code(),
            StatusCode::kExecutionError);
  EXPECT_EQ(EvalArith(ArithOp::kAdd, Value::String("a"), Value::Int(1))
                .status().code(),
            StatusCode::kTypeError);
}

}  // namespace
}  // namespace logres
