// Crash-injection matrix for the durable-state subsystem.
//
// Each case forks a victim process (this binary re-exec'd with
// --crash-victim) that opens the store, arms a crash failpoint
// (failpoints::ArmCrash — immediate _Exit at the site, no flushes, no
// destructors), and applies a module. The parent asserts the victim died
// at the site (exit code kCrashExitCode), reopens the store, and checks
// the recovered state is byte-identical to either the pre-application or
// the post-application dump — never a hybrid:
//
//   db.apply.commit     crash before anything reached the journal -> pre
//   journal.append      crash before any journal bytes            -> pre
//   journal.fsync       frame written, not yet fdatasync'd: the page
//                       cache survives a *process* crash, so either
//                       outcome is legal                           -> pre|post
//   checkpoint.write    the commit is already journaled            -> post
//   checkpoint.rename   tmp file written, rename not done          -> post
//   checkpoint.truncate new CHECKPOINT + stale journal records     -> post
//   checkpoint.prune    checkpoint + rotation done, retention
//                       cleanup not yet                            -> post
//   fsck.repair         (separate test) killed between quarantine
//                       and reseal: the store must stay openable
//                       onto the acknowledged state
//
// Each site runs with and without a checkpoint between the setup
// application and the crash, covering recovery both straight from a
// checkpoint and through journal replay. On any failure the store
// directory is copied to crash-artifacts/ for CI upload.
//
// This file has its own main() (linked against GTest::gtest, not
// gtest_main) so the victim branch can run before gtest takes over.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

#include "core/database.h"
#include "core/dump.h"
#include "storage/fsck.h"
#include "storage/journaled_database.h"
#include "util/failpoint.h"

namespace logres::storage_crash {

const char* kSchema = R"(
  classes PERSON = (name: string);
  associations
    SEED = (name: string);
    KNOWS = (a: string, b: string);
)";

const char* kSetupModule = R"(rules knows(a: "ann", b: "bob").)";

// The application the victim is killed inside: invents an oid AND inserts
// a tuple, so a hybrid recovery (one without the other) would be caught.
const char* kVictimModule = R"(
  rules
    seed(name: "vic").
    person(self P, name: N) <- seed(name: N).
    knows(a: "vic", b: "ann").
)";

// A two-association update under replacement semantics, so the victim's
// evaluation runs the non-inflationary loop — the only path that fires
// eval.undo.rollback (it rolls the live instance back to E every step).
// No invention: oid invention does not converge under replacement
// semantics (each step re-invents), on either step-application path.
const char* kVictimNoninfModule = R"(
  module vic options RIDV semantics noninflationary
    rules
      seed(name: "vic").
      knows(a: "vic", b: "ann").
  end
)";

StorageOptions NoAutoCheckpoint() {
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  return opts;
}

// The --crash-victim branch: open, arm, die at the site.
int RunVictim(const std::string& dir, const std::string& site,
              const std::string& op) {
  if (op == "fsck-repair") {
    // No store handle: fsck is an offline tool, killed mid-repair.
    failpoints::ArmCrash(site);
    FsckOptions options;
    options.repair = true;
    (void)FsckStore(dir, options);
    return 10;
  }
  auto store = JournaledDatabase::Open(dir, NoAutoCheckpoint());
  if (!store.ok()) return 11;
  failpoints::ArmCrash(site);
  if (op == "apply") {
    (void)store->ApplySource(kVictimModule, ApplicationMode::kRIDV);
  } else if (op == "apply-noninf") {
    (void)store->ApplySource(kVictimNoninfModule, ApplicationMode::kRIDV);
  } else if (op == "checkpoint") {
    auto r = store->ApplySource(kVictimModule, ApplicationMode::kRIDV);
    if (!r.ok()) return 12;
    (void)store->Checkpoint();
  } else {
    return 13;
  }
  return 10;  // reached only if the armed site was never hit
}

namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "logres_crash_XXXXXX";
  char* got = ::mkdtemp(templ.data());
  EXPECT_NE(got, nullptr);
  return templ;
}

// Preserves a failing store directory for the CI artifact upload
// (cwd is build/tests when run under ctest).
void PreserveArtifacts(const std::string& dir, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("crash-artifacts", ec);
  std::filesystem::copy(dir, "crash-artifacts/" + name,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing,
                        ec);
  if (ec) {
    ADD_FAILURE() << "could not preserve artifacts from " << dir << ": "
                  << ec.message();
  }
}

enum class Expect { kPre, kPost, kEither };

struct CrashCase {
  const char* site;
  const char* op;  // victim operation: "apply" or "checkpoint"
  Expect expect;
};

constexpr CrashCase kMatrix[] = {
    {"db.apply.commit", "apply", Expect::kPre},
    // Death inside the fixpoint loop itself — mid delta application or
    // right before a non-inflationary rollback — happens long before any
    // journal byte, so recovery must land exactly on pre (the in-memory
    // undo log dies with the process; durability never sees the torn
    // intermediate instance).
    {"eval.undo.apply", "apply", Expect::kPre},
    {"eval.undo.apply", "apply-noninf", Expect::kPre},
    {"eval.undo.rollback", "apply-noninf", Expect::kPre},
    {"journal.append", "apply", Expect::kPre},
    {"journal.fsync", "apply", Expect::kEither},
    {"checkpoint.write", "checkpoint", Expect::kPost},
    {"checkpoint.rename", "checkpoint", Expect::kPost},
    {"checkpoint.truncate", "checkpoint", Expect::kPost},
    // Retention cleanup runs strictly after the new CHECKPOINT is in
    // place, so dying mid-prune can only leave extra files behind.
    {"checkpoint.prune", "checkpoint", Expect::kPost},
};

void RunCase(const CrashCase& c, bool checkpoint_before) {
  std::string label = std::string(c.site) +
                      (checkpoint_before ? "+ckpt" : "-ckpt");
  SCOPED_TRACE(label);
  std::string dir = MakeTempDir();

  // Set the store up and record the pre-application state.
  std::string pre_dump;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, NoAutoCheckpoint());
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kSetupModule, ApplicationMode::kRIDV).ok());
    if (checkpoint_before) {
      ASSERT_TRUE(store->Checkpoint().ok());
    }
    pre_dump = DumpDatabase(store->db());
  }

  // What the victim's commit produces, computed offline: replay is
  // deterministic, so applying the same module to the same state gives
  // the byte-identical post state.
  const char* victim_module = std::string_view(c.op) == "apply-noninf"
                                  ? kVictimNoninfModule
                                  : kVictimModule;
  std::string post_dump;
  {
    auto db = LoadDatabase(pre_dump);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(
        db->ApplySource(victim_module, ApplicationMode::kRIDV).ok());
    post_dump = DumpDatabase(*db);
  }
  ASSERT_NE(pre_dump, post_dump);

  // Kill a writer at the site.
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execl("/proc/self/exe", "storage_crash_test", "--crash-victim",
            dir.c_str(), c.site, c.op, static_cast<char*>(nullptr));
    ::_Exit(127);  // exec failed
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << label;
  ASSERT_EQ(WEXITSTATUS(wstatus), failpoints::kCrashExitCode)
      << label << ": victim did not die at the armed site";

  // Recovery must land on exactly pre or post, never a hybrid.
  auto reopened = JournaledDatabase::Open(dir, NoAutoCheckpoint());
  if (!reopened.ok()) {
    PreserveArtifacts(dir, label);
    FAIL() << label << ": reopen failed: " << reopened.status();
  }
  std::string recovered = DumpDatabase(reopened->db());
  bool acceptable =
      c.expect == Expect::kPre    ? recovered == pre_dump
      : c.expect == Expect::kPost ? recovered == post_dump
                                  : (recovered == pre_dump ||
                                     recovered == post_dump);
  if (!acceptable) {
    PreserveArtifacts(dir, label);
    FAIL() << label << ": recovered state is neither pre nor post"
           << "\n--- recovered ---\n" << recovered
           << "\n--- pre ---\n" << pre_dump
           << "\n--- post ---\n" << post_dump;
  }

  // The recovered store must accept new commits.
  EXPECT_TRUE(
      reopened->ApplySource(kSetupModule, ApplicationMode::kRIDV).ok())
      << label;
}

TEST(StorageCrashTest, KillAtEverySiteRecoversToPreOrPost) {
  for (bool checkpoint_before : {false, true}) {
    for (const CrashCase& c : kMatrix) {
      RunCase(c, checkpoint_before);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// A crash mid-append leaves a torn final record; reopening must truncate
// it with a warning — never report an error, never surface a hybrid.
TEST(StorageCrashTest, TornFinalRecordIsTruncatedOnRecovery) {
  std::string dir = MakeTempDir();
  std::string init_dump;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, NoAutoCheckpoint());
    ASSERT_TRUE(store.ok()) << store.status();
    init_dump = DumpDatabase(store->db());
    ASSERT_TRUE(
        store->ApplySource(kSetupModule, ApplicationMode::kRIDV).ok());
  }
  // The journal.fsync crash leaves the most complete possible torn state
  // (full frame, no fsync); shear it harder by chopping bytes off the
  // tail so the final frame is structurally incomplete.
  std::string path = dir + "/journal";
  uint64_t size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  auto reopened = JournaledDatabase::Open(dir, NoAutoCheckpoint());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_GT(reopened->status().truncated_bytes_at_open, 0u);
  ASSERT_FALSE(reopened->status().warnings.empty());
  // The sheared record is gone; what remains is exactly the state the
  // checkpoint covers — not a hybrid.
  EXPECT_EQ(DumpDatabase(reopened->db()), init_dump);
}

// Kill logres_fsck --repair between the quarantine renames and the
// reseal: quarantine never deletes anything, so a half-finished repair
// must leave a store that still opens onto the acknowledged state — and
// a second repair pass must finish the job.
TEST(StorageCrashTest, KillDuringFsckRepairLeavesRecoverableStore) {
  std::string dir = MakeTempDir();
  std::string acked;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, NoAutoCheckpoint());
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kSetupModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(
        store->ApplySource(kVictimModule, ApplicationMode::kRIDV).ok());
    acked = DumpDatabase(store->db());
  }
  // Corrupt HEAD so the repair has real work to do.
  {
    std::string path = dir + "/CHECKPOINT";
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execl("/proc/self/exe", "storage_crash_test", "--crash-victim",
            dir.c_str(), "fsck.repair", "fsck-repair",
            static_cast<char*>(nullptr));
    ::_Exit(127);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), failpoints::kCrashExitCode)
      << "victim did not die at fsck.repair";

  // The half-repaired store still opens onto the acknowledged state.
  {
    auto reopened = JournaledDatabase::Open(dir, NoAutoCheckpoint());
    if (!reopened.ok()) {
      PreserveArtifacts(dir, "fsck.repair");
      FAIL() << "reopen after crashed repair failed: " << reopened.status();
    }
    EXPECT_EQ(DumpDatabase(reopened->db()), acked);
  }

  // A second repair pass completes and leaves a clean store.
  FsckOptions options;
  options.repair = true;
  auto repaired = FsckStore(dir, options);
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(repaired->errors, 0u);
  auto healed = JournaledDatabase::Open(dir, NoAutoCheckpoint());
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_FALSE(healed->degraded());
  EXPECT_EQ(DumpDatabase(healed->db()), acked);
}

}  // namespace
}  // namespace logres::storage_crash

int main(int argc, char** argv) {
  if (argc >= 5 && std::string_view(argv[1]) == "--crash-victim") {
    return logres::storage_crash::RunVictim(argv[2], argv[3], argv[4]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
