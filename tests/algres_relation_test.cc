// Unit tests for NF² relations and multiset relations.

#include <gtest/gtest.h>

#include "algres/relation.h"

namespace logres::algres {
namespace {

Relation People() {
  auto r = Relation::Make(
      {"name", "age"},
      {{Value::String("ann"), Value::Int(30)},
       {Value::String("bob"), Value::Int(25)}});
  return r.value();
}

TEST(RelationTest, MakeAndInspect) {
  Relation r = People();
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.HasColumn("name"));
  EXPECT_FALSE(r.HasColumn("address"));
  EXPECT_EQ(r.ColumnIndex("age").value(), 1u);
  EXPECT_EQ(r.ColumnIndex("zip").status().code(), StatusCode::kNotFound);
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r({"x"});
  EXPECT_TRUE(r.Insert({Value::Int(1)}).value());
  EXPECT_FALSE(r.Insert({Value::Int(1)}).value());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, InsertChecksArity) {
  Relation r({"x", "y"});
  EXPECT_EQ(r.Insert({Value::Int(1)}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RelationTest, EraseAndContains) {
  Relation r = People();
  Row ann = {Value::String("ann"), Value::Int(30)};
  EXPECT_TRUE(r.Contains(ann));
  EXPECT_TRUE(r.Erase(ann));
  EXPECT_FALSE(r.Contains(ann));
  EXPECT_FALSE(r.Erase(ann));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, EqualityIsHeaderAndRows) {
  Relation a = People();
  Relation b = People();
  EXPECT_TRUE(a == b);
  b.Erase({Value::String("ann"), Value::Int(30)});
  EXPECT_FALSE(a == b);
  Relation c({"other"});
  EXPECT_FALSE(a == c);
}

TEST(RelationTest, NestedComplexCells) {
  Relation r({"team", "players"});
  Value players = Value::MakeSequence(
      {Value::String("p1"), Value::String("p2")});
  ASSERT_TRUE(r.Insert({Value::String("t"), players}).ok());
  EXPECT_EQ(r.begin()->at(1).size(), 2u);
}

TEST(RelationTest, ToStringListsRows) {
  Relation r = People();
  std::string s = r.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("\"ann\""), std::string::npos);
}

TEST(MultisetRelationTest, CountsMultiplicity) {
  MultisetRelation m({"x"});
  ASSERT_TRUE(m.Insert({Value::Int(1)}).ok());
  ASSERT_TRUE(m.Insert({Value::Int(1)}, 2).ok());
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.Count({Value::Int(1)}), 3u);
  EXPECT_EQ(m.Count({Value::Int(2)}), 0u);
}

TEST(MultisetRelationTest, EraseReducesMultiplicity) {
  MultisetRelation m({"x"});
  ASSERT_TRUE(m.Insert({Value::Int(1)}, 3).ok());
  EXPECT_EQ(m.Erase({Value::Int(1)}, 2), 2u);
  EXPECT_EQ(m.Count({Value::Int(1)}), 1u);
  // Erasing more than present removes what is there.
  EXPECT_EQ(m.Erase({Value::Int(1)}, 5), 1u);
  EXPECT_TRUE(m.empty());
}

TEST(MultisetRelationTest, InsertZeroIsNoop) {
  MultisetRelation m({"x"});
  ASSERT_TRUE(m.Insert({Value::Int(1)}, 0).ok());
  EXPECT_TRUE(m.empty());
}

TEST(MultisetRelationTest, ToRelationCollapsesDuplicates) {
  MultisetRelation m({"x"});
  ASSERT_TRUE(m.Insert({Value::Int(1)}, 3).ok());
  ASSERT_TRUE(m.Insert({Value::Int(2)}, 1).ok());
  Relation r = m.ToRelation();
  EXPECT_EQ(r.size(), 2u);
}

TEST(MultisetRelationTest, ArityChecked) {
  MultisetRelation m({"x", "y"});
  EXPECT_FALSE(m.Insert({Value::Int(1)}).ok());
}

}  // namespace
}  // namespace logres::algres
