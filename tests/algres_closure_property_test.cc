// Property sweeps over the liberal closure operator: idempotence of
// transitive closure, agreement between accumulation disciplines on
// monotone steps, and delta-restriction soundness on random graphs.

#include <gtest/gtest.h>

#include "algres/algebra.h"

namespace logres::algres {
namespace {

Relation RandomEdges(unsigned seed, int nodes, int edges) {
  Relation r({"par", "chil"});
  uint64_t x = seed * 1099511628211ULL + 3;
  for (int i = 0; i < edges; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    (void)r.Insert({Value::Int(static_cast<int64_t>((x >> 11) % nodes)),
                    Value::Int(static_cast<int64_t>((x >> 37) % nodes))});
  }
  return r;
}

ClosureStep TcStep(const Relation& edges) {
  return [edges](const Relation& current) -> Result<Relation> {
    LOGRES_ASSIGN_OR_RETURN(
        Relation hop, Rename(edges, {{"par", "mid"}, {"chil", "chil2"}}));
    LOGRES_ASSIGN_OR_RETURN(Relation renamed,
                            Rename(current, {{"chil", "mid"}}));
    LOGRES_ASSIGN_OR_RETURN(Relation joined, NaturalJoin(renamed, hop));
    LOGRES_ASSIGN_OR_RETURN(Relation projected,
                            Project(joined, {"par", "chil2"}));
    return Rename(projected, {{"chil2", "chil"}});
  };
}

class ClosureProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ClosureProperty, TransitiveClosureIsIdempotent) {
  Relation edges = RandomEdges(GetParam(), 8, 14);
  Relation tc = Closure(edges, TcStep(edges)).value();
  // Closing the closure adds nothing.
  Relation tc2 = Closure(tc, TcStep(edges)).value();
  EXPECT_TRUE(tc == tc2);
}

TEST_P(ClosureProperty, SemiNaiveAgreesOnRandomGraphs) {
  Relation edges = RandomEdges(GetParam() * 31 + 1, 9, 16);
  Relation naive = Closure(edges, TcStep(edges)).value();
  Relation semi = SemiNaiveClosure(edges, TcStep(edges)).value();
  EXPECT_TRUE(naive == semi);
}

TEST_P(ClosureProperty, ClosureContainsSeedAndIsTransitive) {
  Relation edges = RandomEdges(GetParam() * 7 + 5, 7, 12);
  Relation tc = Closure(edges, TcStep(edges)).value();
  // Seed containment (inflationary discipline).
  for (const Row& row : edges) {
    EXPECT_TRUE(tc.Contains(row));
  }
  // Transitivity: (a,b), (b,c) in tc implies (a,c) in tc.
  for (const Row& ab : tc) {
    for (const Row& bc : tc) {
      if (ab[1] == bc[0]) {
        EXPECT_TRUE(tc.Contains({ab[0], bc[1]}))
            << ab[0] << "->" << ab[1] << "->" << bc[1];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureProperty, ::testing::Range(0u, 12u));

TEST(ClosureEdgeTest, EmptySeedStaysEmptyUnderMonotoneStep) {
  Relation empty({"par", "chil"});
  Relation edges = RandomEdges(3, 5, 8);
  // The step joins against `current`, so an empty current yields nothing.
  Relation closed = Closure(empty, TcStep(edges)).value();
  EXPECT_TRUE(closed.empty());
}

TEST(ClosureEdgeTest, MaxStepsZeroMeansUnbounded) {
  Relation edges = RandomEdges(9, 6, 10);
  ClosureOptions options;
  options.max_steps = 0;  // unbounded: must still converge on finite data
  auto tc = Closure(edges, TcStep(edges), options);
  ASSERT_TRUE(tc.ok());
  EXPECT_GE(tc->size(), edges.size());
}

}  // namespace
}  // namespace logres::algres
