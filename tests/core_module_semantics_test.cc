// Modules are "parametric with respect to the semantics of the rules
// they support" (paper abstract / Section 1): a module may carry a
// `semantics` clause choosing inflationary (default, stratified where
// possible), whole-program inflationary, or non-inflationary evaluation.

#include <gtest/gtest.h>

#include "core/database.h"

namespace logres {
namespace {

Value T1(const std::string& l, int64_t v) {
  return Value::MakeTuple({{l, Value::Int(v)}});
}

TEST(ModuleSemanticsTest, ParseSemanticsClause) {
  auto m = Module::Parse(R"(
    module upd options RIDV semantics noninflationary
      rules
        q(x: 1).
    end
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_TRUE(m->semantics.has_value());
  EXPECT_EQ(*m->semantics, EvalMode::kNonInflationary);
  EXPECT_EQ(m->default_mode, ApplicationMode::kRIDV);
}

TEST(ModuleSemanticsTest, SemanticsWithoutOptions) {
  auto m = Module::Parse(R"(
    module upd semantics inflationary
      rules
        q(x: 1).
    end
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m->semantics, EvalMode::kWholeInflationary);
  auto m2 = Module::Parse("module s semantics stratified rules q(x: 1). end");
  ASSERT_TRUE(m2.ok()) << m2.status();
  EXPECT_EQ(*m2->semantics, EvalMode::kStratified);
}

TEST(ModuleSemanticsTest, UnknownSemanticsRejected) {
  auto m = Module::Parse(R"(
    module upd semantics magical
      rules
        q(x: 1).
    end
  )");
  EXPECT_EQ(m.status().code(), StatusCode::kParseError);
}

TEST(ModuleSemanticsTest, ModuleSemanticsGovernsEvaluation) {
  auto db_result = Database::Create(R"(
    associations
      P = (x: integer);
      Q = (x: integer);
    module derive_noninf options RIDV semantics noninflationary
      rules
        q(x: X) <- p(x: X).
    end
    module derive_inf options RIDV semantics inflationary
      rules
        q(x: X) <- p(x: X).
    end
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("P", T1("x", 1)).ok());
  // Both semantics converge to the same result on this monotone program;
  // the point is that both run without an explicit EvalOptions override.
  ASSERT_TRUE(db.ApplyByName("derive_noninf").ok());
  EXPECT_TRUE(db.edb().TuplesOf("Q").count(T1("x", 1)));
  ASSERT_TRUE(db.ApplyByName("derive_inf").ok());
  EXPECT_TRUE(db.edb().TuplesOf("Q").count(T1("x", 1)));
}

TEST(ModuleSemanticsTest, CallerOptionsStillApply) {
  // An explicit EvalOptions mode at the call site wins over the module's
  // declared semantics only for fields the module does not set — the
  // module's semantics clause sets the mode, everything else (step
  // budget, indexes) comes from the caller.
  auto db_result = Database::Create(R"(
    associations
      P = (x: integer);
    module diverge options RIDV semantics inflationary
      rules
        p(x: Y) <- p(x: X), Y = X + 1.
    end
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("P", T1("x", 0)).ok());
  EvalOptions tight;
  tight.budget.max_steps = 5;
  auto result = db.ApplyByName("diverge", tight);
  EXPECT_EQ(result.status().code(), StatusCode::kDivergence);
}

}  // namespace
}  // namespace logres
