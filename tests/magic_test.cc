// Property battery for goal-directed evaluation via magic sets
// (core/magic.h): the rewrite is deterministic, its output is stratified
// or it falls back (never evaluating a non-stratified rewrite), magic
// predicates never leak into dumps / Database state / module results,
// answers are identical to whole-program evaluation across all three
// engines, and programs outside the provable fragment (oid invention,
// class heads) fall back with a recorded reason.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/algres_backend.h"
#include "core/database.h"
#include "core/dump.h"
#include "core/magic.h"
#include "core/parser.h"
#include "datalog/datalog.h"

namespace logres {
namespace {

Value Edge(int64_t a, int64_t b) {
  return Value::MakeTuple({{"a", Value::Int(a)}, {"b", Value::Int(b)}});
}

// A chain 0 -> 1 -> ... -> n-1 with transitive-closure rules.
Result<Database> ChainDb(int64_t n) {
  LOGRES_ASSIGN_OR_RETURN(Database db, Database::Create(R"(
    associations
      E = (a: integer, b: integer);
      TC = (a: integer, b: integer);
    rules
      tc(a: X, b: Y) <- e(a: X, b: Y).
      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).
  )"));
  for (int64_t i = 0; i + 1 < n; ++i) {
    LOGRES_RETURN_NOT_OK(db.InsertTuple("E", Edge(i, i + 1)));
  }
  return db;
}

EvalOptions GoalDirected(bool on) {
  EvalOptions options;
  options.goal_directed = on;
  return options;
}

// Answers `goal_text` goal-directed and whole-program and requires both
// agree; returns the goal-directed run's stats.
EvalStats ExpectSameAnswers(const Database& db,
                            const std::string& goal_text) {
  EvalStats on_stats;
  auto on = db.Query(goal_text, GoalDirected(true), &on_stats);
  EvalStats off_stats;
  auto off = db.Query(goal_text, GoalDirected(false), &off_stats);
  EXPECT_TRUE(on.ok()) << on.status();
  EXPECT_TRUE(off.ok()) << off.status();
  if (on.ok() && off.ok()) {
    EXPECT_EQ(*on, *off) << "answers diverge for " << goal_text;
  }
  EXPECT_TRUE(off_stats.goal_directed_fallback.empty());
  return on_stats;
}

TEST(MagicTest, SelectiveChainQueryMatchesWholeProgram) {
  Database db = ChainDb(40).value();
  for (const char* goal :
       {"? tc(a: 0, b: X).", "? tc(a: 20, b: X).", "? tc(a: 39, b: X).",
        "? tc(a: 3, b: 7).", "? tc(a: 3, b: 2).", "? tc(a: X, b: 39)."}) {
    SCOPED_TRACE(goal);
    ExpectSameAnswers(db, goal);
  }

  // The selective goal evaluated only its cone: tc(20, *) has 19 tuples
  // where the whole program derives 780.
  EvalStats stats;
  auto answer = db.Query("? tc(a: 20, b: X).", GoalDirected(true), &stats);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->size(), 19u);
  EXPECT_TRUE(stats.goal_directed_fallback.empty())
      << stats.goal_directed_fallback;
  EXPECT_GE(stats.demand_facts, 1u);   // at least the seed
  EXPECT_EQ(stats.facts, 39u + 19u);   // 39 edges + the demanded cone
  EXPECT_GT(stats.cone_fraction, 0.0);
  EXPECT_LT(stats.cone_fraction, 2.0);

  EvalStats whole;
  ASSERT_TRUE(db.Query("? tc(a: 20, b: X).", GoalDirected(false), &whole)
                  .ok());
  EXPECT_EQ(whole.facts, 39u + 780u);
  EXPECT_LT(stats.facts, whole.facts);
}

TEST(MagicTest, AllFreeGoalFallsBack) {
  Database db = ChainDb(12).value();
  EvalStats stats;
  auto on = db.Query("? tc(a: X, b: Y).", GoalDirected(true), &stats);
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_FALSE(stats.goal_directed_fallback.empty());
  EXPECT_EQ(stats.magic_rules, 0u);
  EXPECT_EQ(stats.demand_facts, 0u);
  auto off = db.Query("? tc(a: X, b: Y).", GoalDirected(false));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*on, *off);
}

TEST(MagicTest, EdbOnlyGoalDropsAllRules) {
  Database db = ChainDb(16).value();
  EvalStats stats = ExpectSameAnswers(db, "? e(a: 0, b: X).");
  // Nothing derived is demanded: the whole rule set is dropped and the
  // evaluation touches only the extensional facts.
  EXPECT_TRUE(stats.goal_directed_fallback.empty())
      << stats.goal_directed_fallback;
  EXPECT_EQ(stats.facts, 15u);
  EXPECT_EQ(stats.demand_facts, 0u);
}

TEST(MagicTest, RewriteIsDeterministic) {
  Database db = ChainDb(8).value();
  Goal goal = ParseGoal("? tc(a: 0, b: X).").value();
  MagicRewrite first = MagicRewriteForGoal(db.schema(), db.functions(),
                                           db.rules(), goal, EvalOptions{});
  MagicRewrite second = MagicRewriteForGoal(db.schema(), db.functions(),
                                            db.rules(), goal, EvalOptions{});
  ASSERT_TRUE(first.applied) << first.fallback_reason;
  ASSERT_TRUE(second.applied);
  EXPECT_EQ(first.plan, second.plan);
  ASSERT_EQ(first.rules.size(), second.rules.size());
  for (size_t i = 0; i < first.rules.size(); ++i) {
    EXPECT_EQ(first.rules[i].ToString(), second.rules[i].ToString());
  }
  ASSERT_EQ(first.seeds.size(), 1u);
  EXPECT_EQ(first.seeds[0].first, "$MAGIC$TC");
  EXPECT_EQ(first.seeds[0].second,
            Value::MakeTuple({{"a", Value::Int(0)}}));
}

TEST(MagicTest, RewritePlanNamesTheDemand) {
  Database db = ChainDb(8).value();
  Goal goal = ParseGoal("? tc(a: 0, b: X).").value();
  MagicRewrite mr = MagicRewriteForGoal(db.schema(), db.functions(),
                                        db.rules(), goal, EvalOptions{});
  ASSERT_TRUE(mr.applied) << mr.fallback_reason;
  EXPECT_NE(mr.plan.find("TC[a]"), std::string::npos) << mr.plan;
  EXPECT_NE(mr.plan.find("seed $MAGIC$TC"), std::string::npos) << mr.plan;
  ASSERT_EQ(mr.magic_predicates.size(), 1u);
  EXPECT_EQ(mr.magic_predicates[0], "$MAGIC$TC");
  // Both TC rules survive, guarded; the recursive self-demand rule is a
  // tautology and is dropped.
  EXPECT_EQ(mr.rules.size(), 2u);
  EXPECT_EQ(mr.magic_rule_count, 0u);
  EXPECT_EQ(mr.dropped_rules, 0u);
  for (const Rule& rule : mr.rules) {
    EXPECT_NE(rule.ToString().find("$MAGIC$TC"), std::string::npos)
        << rule.ToString();
  }
}

// Rewriting this stratified program would close a negative cycle through
// the demand predicates ($MAGIC$Q <- $MAGIC$P, b, not w / q <- $MAGIC$Q, b
// / w <- $MAGIC$W, q, v): the rewrite must detect that and fall back, and
// answers must still match whole-program evaluation.
TEST(MagicTest, StratificationLossFallsBack) {
  Database db = Database::Create(R"(
    associations
      B = (x: integer);
      V = (x: integer);
      W = (x: integer);
      Q = (x: integer);
      P = (x: integer);
    rules
      w(x: X) <- q(x: X), v(x: X).
      q(x: X) <- b(x: X).
      p(x: X) <- b(x: X), not w(x: X), q(x: X).
  )").value();
  auto one = [](int64_t v) {
    return Value::MakeTuple({{"x", Value::Int(v)}});
  };
  ASSERT_TRUE(db.InsertTuple("B", one(1)).ok());
  ASSERT_TRUE(db.InsertTuple("B", one(2)).ok());
  ASSERT_TRUE(db.InsertTuple("V", one(2)).ok());

  Goal goal = ParseGoal("? p(x: 1).").value();
  MagicRewrite mr = MagicRewriteForGoal(db.schema(), db.functions(),
                                        db.rules(), goal, EvalOptions{});
  EXPECT_FALSE(mr.applied);
  EXPECT_NE(mr.fallback_reason.find("stratification"), std::string::npos)
      << mr.fallback_reason;

  EvalStats stats;
  auto on = db.Query("? p(x: 1).", GoalDirected(true), &stats);
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_EQ(on->size(), 1u);  // p(1) holds: b(1), q(1), not w(1)
  EXPECT_NE(stats.goal_directed_fallback.find("stratification"),
            std::string::npos)
      << stats.goal_directed_fallback;
  auto off = db.Query("? p(x: 1).", GoalDirected(false));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*on, *off);
  // A goal on the negation-free part still rewrites fine.
  ExpectSameAnswers(db, "? q(x: 1).");
}

// Stratified negation *within* the fragment stays goal-directed: the
// negated literal is over an extensional predicate with covered
// variables, so the rewrite applies and the cone answer matches.
TEST(MagicTest, StratifiedNegationConeParity) {
  Database db = Database::Create(R"(
    associations
      E = (a: integer, b: integer);
      TC = (a: integer, b: integer);
      FAR = (a: integer, b: integer);
    rules
      tc(a: X, b: Y) <- e(a: X, b: Y).
      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).
      far(a: X, b: Y) <- tc(a: X, b: Y), not e(a: X, b: Y).
  )").value();
  for (int64_t i = 0; i + 1 < 14; ++i) {
    ASSERT_TRUE(db.InsertTuple("E", Edge(i, i + 1)).ok());
  }
  EvalStats stats = ExpectSameAnswers(db, "? far(a: 2, b: X).");
  EXPECT_TRUE(stats.goal_directed_fallback.empty())
      << stats.goal_directed_fallback;
  EXPECT_GE(stats.magic_rules, 1u);  // $MAGIC$TC <- $MAGIC$FAR
  auto answer = db.Query("? far(a: 2, b: X).", GoalDirected(true));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->size(), 10u);  // tc(2,*) minus the direct edge
}

TEST(MagicTest, MagicPredicatesNeverLeakIntoStateOrResults) {
  Database db = ChainDb(20).value();
  const std::string before = DumpDatabase(db);

  // Query path: read-only, dump byte-identical afterwards.
  ASSERT_TRUE(db.Query("? tc(a: 4, b: X).", GoalDirected(true)).ok());
  EXPECT_EQ(DumpDatabase(db), before);

  // Module path (RIDI): the goal-directed result instance is the
  // demanded cone, with no magic relations in it.
  auto result =
      db.ApplySource("goal ? tc(a: 4, b: X).", ApplicationMode::kRIDI,
                     GoalDirected(true));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->goal_answer.has_value());
  EXPECT_EQ(result->goal_answer->size(), 15u);
  for (const auto& [name, tuples] : result->instance.associations()) {
    EXPECT_FALSE(IsMagicName(name)) << name;
  }
  // The cone: tc(4, *) only, not the whole closure.
  EXPECT_EQ(result->instance.TuplesOf("TC").size(), 15u);
  EXPECT_TRUE(result->stats.goal_directed_fallback.empty())
      << result->stats.goal_directed_fallback;
  EXPECT_GE(result->stats.demand_facts, 1u);
  EXPECT_EQ(DumpDatabase(db), before);

  // Same module whole-program: identical answer, whole instance.
  auto whole =
      db.ApplySource("goal ? tc(a: 4, b: X).", ApplicationMode::kRIDI,
                     GoalDirected(false));
  ASSERT_TRUE(whole.ok()) << whole.status();
  EXPECT_EQ(*result->goal_answer, *whole->goal_answer);
  EXPECT_EQ(whole->instance.TuplesOf("TC").size(), 190u);
  EXPECT_EQ(DumpDatabase(db), before);
}

// Programs that invent oids (class heads) are outside the provable
// fragment: the rewrite must refuse — so the oid generator consumes the
// same sequence with goal_directed on and off, keeping later state
// byte-identical.
TEST(MagicTest, OidInventionFallsBackAndStateStaysIdentical) {
  auto make = [] {
    Database db = Database::Create(R"(
      classes C = (x: integer);
      associations B = (x: integer);
      rules c(x: X) <- b(x: X).
    )").value();
    EXPECT_TRUE(
        db.InsertTuple("B", Value::MakeTuple({{"x", Value::Int(7)}})).ok());
    return db;
  };
  Database on_db = make();
  Database off_db = make();

  EvalStats stats;
  auto on = on_db.Query("? c(x: 7).", GoalDirected(true), &stats);
  auto off = off_db.Query("? c(x: 7).", GoalDirected(false));
  ASSERT_TRUE(on.ok()) << on.status();
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(on->size(), off->size());
  EXPECT_FALSE(stats.goal_directed_fallback.empty());

  // Both paths materialized the whole program: invented-oid sequences —
  // and hence all later state — stay in lockstep.
  EXPECT_EQ(on_db.oids_issued(), off_db.oids_issued());
  EXPECT_EQ(DumpDatabase(on_db), DumpDatabase(off_db));
}

// The three engines answer the same selective goal identically.
TEST(MagicTest, EnginesAgreeOnSelectiveGoals) {
  Database db = ChainDb(18).value();
  Goal goal = ParseGoal("? tc(a: 6, b: X).").value();

  auto direct_on = db.Query(goal, GoalDirected(true));
  auto direct_off = db.Query(goal, GoalDirected(false));
  ASSERT_TRUE(direct_on.ok()) << direct_on.status();
  ASSERT_TRUE(direct_off.ok());
  EXPECT_EQ(*direct_on, *direct_off);

  EvalStats algres_stats;
  auto algres_on =
      AlgresBackend::QueryGoal(db.schema(), db.functions(), db.rules(),
                               db.edb(), goal, GoalDirected(true),
                               &algres_stats);
  auto algres_off =
      AlgresBackend::QueryGoal(db.schema(), db.functions(), db.rules(),
                               db.edb(), goal, GoalDirected(false));
  ASSERT_TRUE(algres_on.ok()) << algres_on.status();
  ASSERT_TRUE(algres_off.ok());
  EXPECT_EQ(*algres_on, *algres_off);
  EXPECT_EQ(*algres_on, *direct_on);
  EXPECT_TRUE(algres_stats.goal_directed_fallback.empty())
      << algres_stats.goal_directed_fallback;
  EXPECT_GE(algres_stats.demand_facts, 1u);

  datalog::Program twin;
  for (int64_t i = 0; i + 1 < 18; ++i) {
    ASSERT_TRUE(twin.AddFact("e", {datalog::Constant::Int(i),
                                   datalog::Constant::Int(i + 1)})
                    .ok());
  }
  using datalog::Term;
  ASSERT_TRUE(twin.AddRule({{"tc", {Term::Var("X"), Term::Var("Y")}},
                            {{"e", {Term::Var("X"), Term::Var("Y")}}}})
                  .ok());
  ASSERT_TRUE(twin.AddRule({{"tc", {Term::Var("X"), Term::Var("Z")}},
                            {{"tc", {Term::Var("X"), Term::Var("Y")}},
                             {"e", {Term::Var("Y"), Term::Var("Z")}}}})
                  .ok());
  datalog::Literal dl_goal{"tc", {Term::Int(6), Term::Var("X")}};
  datalog::EvalOptions dl_on;
  datalog::EvalOptions dl_off;
  dl_off.goal_directed = false;
  datalog::GoalDirectedInfo info;
  auto flat_on = datalog::Query(twin, dl_goal, dl_on, &info);
  auto flat_off = datalog::Query(twin, dl_goal, dl_off);
  ASSERT_TRUE(flat_on.ok()) << flat_on.status();
  ASSERT_TRUE(flat_off.ok());
  EXPECT_EQ(*flat_on, *flat_off);
  EXPECT_TRUE(info.applied) << info.fallback_reason;
  EXPECT_GE(info.demand_facts, 1u);
  EXPECT_EQ(flat_on->size(), direct_on->size());
}

// The flat engine detects the same stratification-loss case.
TEST(MagicTest, DatalogStratificationLossFallsBack) {
  using datalog::Constant;
  using datalog::Term;
  datalog::Program program;
  ASSERT_TRUE(program.AddFact("b", {Constant::Int(1)}).ok());
  ASSERT_TRUE(program.AddFact("b", {Constant::Int(2)}).ok());
  ASSERT_TRUE(program.AddFact("v", {Constant::Int(2)}).ok());
  ASSERT_TRUE(program.AddRule({{"w", {Term::Var("X")}},
                               {{"q", {Term::Var("X")}},
                                {"v", {Term::Var("X")}}}})
                  .ok());
  ASSERT_TRUE(program.AddRule({{"q", {Term::Var("X")}},
                               {{"b", {Term::Var("X")}}}})
                  .ok());
  datalog::Rule p_rule{{"p", {Term::Var("X")}},
                       {{"b", {Term::Var("X")}},
                        {"w", {Term::Var("X")}, /*negated=*/true},
                        {"q", {Term::Var("X")}}}};
  ASSERT_TRUE(program.AddRule(p_rule).ok());

  datalog::Literal goal{"p", {Term::Int(1)}};
  datalog::GoalDirectedInfo info;
  auto on = datalog::Query(program, goal, datalog::EvalOptions{}, &info);
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_FALSE(info.applied);
  EXPECT_NE(info.fallback_reason.find("stratification"), std::string::npos)
      << info.fallback_reason;
  datalog::EvalOptions off_options;
  off_options.goal_directed = false;
  auto off = datalog::Query(program, goal, off_options);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*on, *off);
  EXPECT_EQ(on->size(), 1u);
}

}  // namespace
}  // namespace logres
