// Unit and property tests for the ALGRES complex-value system.

#include <gtest/gtest.h>

#include <vector>

#include "algres/value.h"

namespace logres {
namespace {

TEST(ValueTest, ScalarConstruction) {
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_EQ(Value::String("x").string_value(), "x");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_DOUBLE_EQ(Value::Real(2.5).real_value(), 2.5);
  EXPECT_TRUE(Value::Nil().is_nil());
  EXPECT_EQ(Value().kind(), ValueKind::kNil);
  EXPECT_EQ(Value::MakeOid(Oid{7}).oid_value().id, 7u);
}

TEST(ValueTest, KindPredicates) {
  EXPECT_TRUE(Value::Int(1).is_scalar());
  EXPECT_TRUE(Value::MakeSet({}).is_collection());
  EXPECT_FALSE(Value::MakeTuple({}).is_scalar());
  EXPECT_FALSE(Value::MakeTuple({}).is_collection());
}

TEST(ValueTest, SetDeduplicatesAndSorts) {
  Value s = Value::MakeSet({Value::Int(3), Value::Int(1), Value::Int(3)});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.elements()[0], Value::Int(1));
  EXPECT_EQ(s.elements()[1], Value::Int(3));
}

TEST(ValueTest, SetEqualityIsOrderIndependent) {
  Value a = Value::MakeSet({Value::Int(1), Value::Int(2)});
  Value b = Value::MakeSet({Value::Int(2), Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, MultisetKeepsDuplicates) {
  Value m = Value::MakeMultiset({Value::Int(1), Value::Int(1)});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.Count(Value::Int(1)), 2u);
  // Distinct from the set with the same support.
  EXPECT_NE(m, Value::MakeMultiset({Value::Int(1)}));
}

TEST(ValueTest, SequencePreservesOrder) {
  Value s = Value::MakeSequence({Value::Int(2), Value::Int(1)});
  EXPECT_EQ(s.elements()[0], Value::Int(2));
  EXPECT_NE(s, Value::MakeSequence({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, TupleFieldAccess) {
  Value t = Value::MakeTuple(
      {{"name", Value::String("ann")}, {"age", Value::Int(30)}});
  EXPECT_EQ(t.field("name").value(), Value::String("ann"));
  EXPECT_EQ(t.field("age").value(), Value::Int(30));
  EXPECT_EQ(t.field("missing").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(t.FindField("missing").has_value());
  EXPECT_EQ(Value::Int(1).field("x").status().code(),
            StatusCode::kTypeError);
}

TEST(ValueTest, WithFieldReplacesOrAppends) {
  Value t = Value::MakeTuple({{"a", Value::Int(1)}});
  Value t2 = t.WithField("a", Value::Int(2)).value();
  EXPECT_EQ(t2.field("a").value(), Value::Int(2));
  Value t3 = t.WithField("b", Value::Int(3)).value();
  EXPECT_EQ(t3.size(), 2u);
  // Original is untouched (immutability).
  EXPECT_EQ(t.field("a").value(), Value::Int(1));
}

TEST(ValueTest, UnionIntersectDifference) {
  Value a = Value::MakeSet({Value::Int(1), Value::Int(2)});
  Value b = Value::MakeSet({Value::Int(2), Value::Int(3)});
  EXPECT_EQ(a.Union(b).value().size(), 3u);
  EXPECT_EQ(a.Intersect(b).value(),
            Value::MakeSet({Value::Int(2)}));
  EXPECT_EQ(a.Difference(b).value(),
            Value::MakeSet({Value::Int(1)}));
  // Cross-kind operations are type errors.
  EXPECT_FALSE(a.Union(Value::MakeSequence({})).ok());
  EXPECT_FALSE(Value::Int(1).Union(Value::Int(2)).ok());
}

TEST(ValueTest, MultisetUnionAddsMultiplicities) {
  Value a = Value::MakeMultiset({Value::Int(1)});
  Value b = Value::MakeMultiset({Value::Int(1), Value::Int(2)});
  Value u = a.Union(b).value();
  EXPECT_EQ(u.Count(Value::Int(1)), 2u);
  EXPECT_EQ(u.Count(Value::Int(2)), 1u);
}

TEST(ValueTest, SequenceUnionConcatenates) {
  Value a = Value::MakeSequence({Value::Int(2)});
  Value b = Value::MakeSequence({Value::Int(1)});
  Value u = a.Union(b).value();
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u.elements()[0], Value::Int(2));
  EXPECT_EQ(u.elements()[1], Value::Int(1));
}

TEST(ValueTest, InsertIntoCollections) {
  EXPECT_EQ(Value::EmptySet().Insert(Value::Int(1)).value().size(), 1u);
  // Set insert of an existing element is a no-op.
  Value s = Value::MakeSet({Value::Int(1)});
  EXPECT_EQ(s.Insert(Value::Int(1)).value().size(), 1u);
  // Sequence insert appends at the end.
  Value q = Value::MakeSequence({Value::Int(1)});
  EXPECT_EQ(q.Insert(Value::Int(2)).value().elements()[1], Value::Int(2));
  EXPECT_FALSE(Value::Int(1).Insert(Value::Int(2)).ok());
}

TEST(ValueTest, ContainsAndCount) {
  Value s = Value::MakeSet({Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(s.Contains(Value::Int(1)));
  EXPECT_FALSE(s.Contains(Value::Int(9)));
  Value q = Value::MakeSequence({Value::Int(1), Value::Int(1)});
  EXPECT_EQ(q.Count(Value::Int(1)), 2u);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Nil().ToString(), "nil");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::MakeOid(Oid{4}).ToString(), "#4");
  EXPECT_EQ(Value::MakeSet({Value::Int(1)}).ToString(), "{1}");
  EXPECT_EQ(Value::MakeMultiset({Value::Int(1)}).ToString(), "[1]");
  EXPECT_EQ(Value::MakeSequence({Value::Int(1)}).ToString(), "<1>");
  EXPECT_EQ(
      Value::MakeTuple({{"a", Value::Int(1)}, {"b", Value::Nil()}})
          .ToString(),
      "(a: 1, b: nil)");
}

TEST(ValueTest, NestedStructures) {
  // Example 2.1's TEAM shape: sequence of players plus set of substitutes.
  Value player = Value::MakeTuple(
      {{"name", Value::String("p1")},
       {"roles", Value::MakeSet({Value::Int(4), Value::Int(9)})}});
  Value team = Value::MakeTuple(
      {{"team_name", Value::String("t")},
       {"base_players", Value::MakeSequence({player})},
       {"substitutes", Value::MakeSet({})}});
  EXPECT_EQ(team.field("base_players").value().elements()[0], player);
  EXPECT_EQ(
      player.field("roles").value().Count(Value::Int(4)), 1u);
}

TEST(ValueTest, OidGeneratorIsMonotonic) {
  OidGenerator gen;
  Oid a = gen.Next();
  Oid b = gen.Next();
  EXPECT_LT(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(gen.issued(), 2u);
  EXPECT_FALSE(Oid{}.valid());
}

// ---------------------------------------------------------------------------
// Property tests: total order and hashing over a generated value universe.

std::vector<Value> SampleUniverse() {
  std::vector<Value> out = {
      Value::Nil(),
      Value::Bool(false),
      Value::Bool(true),
      Value::Int(-1),
      Value::Int(0),
      Value::Int(7),
      Value::Real(0.5),
      Value::String(""),
      Value::String("abc"),
      Value::MakeOid(Oid{1}),
      Value::MakeOid(Oid{2}),
  };
  size_t scalars = out.size();
  for (size_t i = 0; i < scalars; ++i) {
    out.push_back(Value::MakeSet({out[i]}));
    out.push_back(Value::MakeSequence({out[i], out[i]}));
    out.push_back(Value::MakeTuple({{"f", out[i]}}));
  }
  out.push_back(Value::MakeMultiset({Value::Int(1), Value::Int(1)}));
  return out;
}

class ValueOrderProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ValueOrderProperty, CompareIsTotalAndConsistentWithHash) {
  std::vector<Value> universe = SampleUniverse();
  const Value& a = universe[GetParam()];
  for (const Value& b : universe) {
    int ab = a.Compare(b);
    int ba = b.Compare(a);
    // Antisymmetry.
    EXPECT_EQ(ab == 0, ba == 0);
    if (ab != 0) {
      EXPECT_EQ(ab < 0, ba > 0);
    }
    // Reflexivity through equality; equal values hash alike.
    if (ab == 0) {
      EXPECT_EQ(a.Hash(), b.Hash());
      EXPECT_EQ(a.ToString(), b.ToString());
    }
    // Transitivity spot check against every third value.
    for (size_t k = 0; k < universe.size(); k += 7) {
      const Value& c = universe[k];
      if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
        EXPECT_LE(a.Compare(c), 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Universe, ValueOrderProperty,
                         ::testing::Range<size_t>(0, 44));

class SetAlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(SetAlgebraProperty, UnionIntersectionLaws) {
  // Build two pseudo-random integer sets from the parameter.
  int seed = GetParam();
  std::vector<Value> ea, eb;
  for (int i = 0; i < 8; ++i) {
    if ((seed >> i) & 1) ea.push_back(Value::Int(i));
    if ((seed >> (i + 4)) & 1) eb.push_back(Value::Int(i));
  }
  Value a = Value::MakeSet(ea);
  Value b = Value::MakeSet(eb);
  Value u = a.Union(b).value();
  Value i = a.Intersect(b).value();
  Value d = a.Difference(b).value();
  // |A ∪ B| = |A| + |B| − |A ∩ B|.
  EXPECT_EQ(u.size(), a.size() + b.size() - i.size());
  // A = (A − B) ∪ (A ∩ B).
  EXPECT_EQ(d.Union(i).value(), a);
  // Commutativity.
  EXPECT_EQ(u, b.Union(a).value());
  EXPECT_EQ(i, b.Intersect(a).value());
  // Everything in the intersection is in both.
  for (const Value& e : i.elements()) {
    EXPECT_TRUE(a.Contains(e));
    EXPECT_TRUE(b.Contains(e));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetAlgebraProperty,
                         ::testing::Range(0, 64));

}  // namespace
}  // namespace logres
