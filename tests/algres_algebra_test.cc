// Unit tests for the ALGRES extended relational algebra, including the
// NF² restructuring operators and the liberal closure operator.

#include <gtest/gtest.h>

#include "algres/algebra.h"

namespace logres::algres {
namespace {

Relation Parent() {
  return Relation::Make({"par", "chil"},
                        {{Value::String("a"), Value::String("b")},
                         {Value::String("b"), Value::String("c")},
                         {Value::String("b"), Value::String("d")}})
      .value();
}

TEST(AlgebraTest, Select) {
  Relation r = Parent();
  auto out = Select(r, [&](const Row& row) -> Result<bool> {
    return row[0] == Value::String("b");
  });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  // Predicate errors propagate.
  auto err = Select(r, [](const Row&) -> Result<bool> {
    return Status::ExecutionError("boom");
  });
  EXPECT_FALSE(err.ok());
}

TEST(AlgebraTest, ProjectDeduplicates) {
  auto out = Project(Parent(), {"par"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // a, b
  EXPECT_EQ(out->columns(), std::vector<std::string>{"par"});
  EXPECT_FALSE(Project(Parent(), {"zip"}).ok());
}

TEST(AlgebraTest, ProjectReorders) {
  auto out = Project(Parent(), {"chil", "par"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->columns()[0], "chil");
  EXPECT_TRUE(out->Contains({Value::String("b"), Value::String("a")}));
}

TEST(AlgebraTest, Rename) {
  auto out = Rename(Parent(), {{"par", "x"}});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->HasColumn("x"));
  EXPECT_FALSE(out->HasColumn("par"));
  EXPECT_EQ(out->size(), 3u);
  // Renaming onto an existing column is rejected.
  EXPECT_FALSE(Rename(Parent(), {{"par", "chil"}}).ok());
}

TEST(AlgebraTest, ProductRequiresDisjointColumns) {
  Relation r = Parent();
  auto renamed = Rename(r, {{"par", "p2"}, {"chil", "c2"}}).value();
  auto out = Product(r, renamed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 9u);
  EXPECT_EQ(out->arity(), 4u);
  EXPECT_FALSE(Product(r, r).ok());
}

TEST(AlgebraTest, NaturalJoinOnSharedColumn) {
  Relation parent = Parent();
  Relation grand = Rename(parent, {{"par", "chil"}, {"chil", "gchil"}})
                       .value();
  auto out = NaturalJoin(parent, grand);
  ASSERT_TRUE(out.ok());
  // a->b->c, a->b->d.
  EXPECT_EQ(out->size(), 2u);
  EXPECT_TRUE(out->Contains({Value::String("a"), Value::String("b"),
                             Value::String("c")}));
}

TEST(AlgebraTest, NaturalJoinDisjointIsProduct) {
  Relation a = Relation::Make({"x"}, {{Value::Int(1)}, {Value::Int(2)}})
                   .value();
  Relation b = Relation::Make({"y"}, {{Value::Int(3)}}).value();
  auto out = NaturalJoin(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(out->arity(), 2u);
}

TEST(AlgebraTest, EquiJoinDropsRightKeys) {
  Relation left = Parent();
  Relation right =
      Relation::Make({"person", "age"},
                     {{Value::String("b"), Value::Int(10)}})
          .value();
  auto out = EquiJoin(left, right, {{"chil", "person"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->HasColumn("age"));
  EXPECT_FALSE(out->HasColumn("person"));
}

TEST(AlgebraTest, SetOperations) {
  Relation a = Relation::Make({"x"}, {{Value::Int(1)}, {Value::Int(2)}})
                   .value();
  Relation b = Relation::Make({"x"}, {{Value::Int(2)}, {Value::Int(3)}})
                   .value();
  EXPECT_EQ(Union(a, b)->size(), 3u);
  EXPECT_EQ(Intersect(a, b)->size(), 1u);
  EXPECT_EQ(Difference(a, b)->size(), 1u);
  Relation c({"y"});
  EXPECT_FALSE(Union(a, c).ok());
  EXPECT_FALSE(Intersect(a, c).ok());
  EXPECT_FALSE(Difference(a, c).ok());
}

TEST(AlgebraTest, NestGroupsIntoSets) {
  auto out = Nest(Parent(), {"chil"}, "children");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  for (const Row& row : *out) {
    if (row[0] == Value::String("b")) {
      EXPECT_EQ(row[1], Value::MakeSet({Value::String("c"),
                                        Value::String("d")}));
    }
  }
  EXPECT_FALSE(Nest(Parent(), {}, "x").ok());
}

TEST(AlgebraTest, NestMultipleColumnsMakesTuples) {
  Relation r = Relation::Make(
                   {"g", "a", "b"},
                   {{Value::Int(1), Value::Int(10), Value::Int(20)}})
                   .value();
  auto out = Nest(r, {"a", "b"}, "pairs");
  ASSERT_TRUE(out.ok());
  const Row& row = *out->begin();
  const Value& set = row[1];
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.elements()[0].field("a").value(), Value::Int(10));
}

TEST(AlgebraTest, UnnestIsInverseOfNestOnKeys) {
  auto nested = Nest(Parent(), {"chil"}, "children").value();
  auto flat = Unnest(nested, "children");
  ASSERT_TRUE(flat.ok());
  // The unnested column is named after the nest column.
  auto renamed = Rename(*flat, {{"children", "chil"}}).value();
  auto expected = Project(Parent(), {"par", "chil"}).value();
  EXPECT_TRUE(renamed == expected);
}

TEST(AlgebraTest, UnnestSpreadsTuples) {
  Relation r({"g", "items"});
  ASSERT_TRUE(r.Insert({Value::Int(1),
                        Value::MakeSet({Value::MakeTuple(
                            {{"a", Value::Int(10)},
                             {"b", Value::Int(20)}})})})
                  .ok());
  auto out = Unnest(r, "items", /*spread_tuple=*/true);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->HasColumn("a"));
  EXPECT_TRUE(out->HasColumn("b"));
  EXPECT_EQ(out->size(), 1u);
}

TEST(AlgebraTest, UnnestRejectsScalars) {
  Relation r({"x"});
  ASSERT_TRUE(r.Insert({Value::Int(1)}).ok());
  EXPECT_EQ(Unnest(r, "x").status().code(), StatusCode::kTypeError);
}

TEST(AlgebraTest, Extend) {
  auto out = Extend(Parent(), "const7",
                    [](const Row&) -> Result<Value> {
                      return Value::Int(7);
                    });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->arity(), 3u);
  for (const Row& row : *out) EXPECT_EQ(row[2], Value::Int(7));
  EXPECT_FALSE(Extend(Parent(), "par", [](const Row&) -> Result<Value> {
                 return Value::Int(0);
               }).ok());
}

TEST(AlgebraTest, AggregateCountSumMinMaxAvg) {
  Relation r = Relation::Make({"g", "v"},
                              {{Value::Int(1), Value::Int(10)},
                               {Value::Int(1), Value::Int(20)},
                               {Value::Int(2), Value::Int(5)}})
                   .value();
  auto count = Aggregate(r, {"g"}, AggregateKind::kCount, "", "n").value();
  EXPECT_TRUE(count.Contains({Value::Int(1), Value::Int(2)}));
  auto sum = Aggregate(r, {"g"}, AggregateKind::kSum, "v", "s").value();
  EXPECT_TRUE(sum.Contains({Value::Int(1), Value::Int(30)}));
  auto mn = Aggregate(r, {"g"}, AggregateKind::kMin, "v", "m").value();
  EXPECT_TRUE(mn.Contains({Value::Int(1), Value::Int(10)}));
  auto mx = Aggregate(r, {"g"}, AggregateKind::kMax, "v", "m").value();
  EXPECT_TRUE(mx.Contains({Value::Int(1), Value::Int(20)}));
  auto avg = Aggregate(r, {"g"}, AggregateKind::kAvg, "v", "a").value();
  EXPECT_TRUE(avg.Contains({Value::Int(1), Value::Real(15.0)}));
}

TEST(AlgebraTest, ThetaJoinArbitraryPredicate) {
  Relation ages = Relation::Make({"person", "age"},
                                 {{Value::String("a"), Value::Int(30)},
                                  {Value::String("b"), Value::Int(20)}})
                      .value();
  Relation limits = Relation::Make({"category", "min_age"},
                                   {{Value::String("senior"),
                                     Value::Int(25)}})
                        .value();
  auto out = ThetaJoin(ages, limits, [](const Row& row) -> Result<bool> {
    // age >= min_age
    return row[1].int_value() >= row[3].int_value();
  });
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->size(), 1u);
  EXPECT_EQ(out->begin()->at(0), Value::String("a"));
}

TEST(AlgebraTest, SemiJoinKeepsMatchedLeftRows) {
  Relation employees =
      Relation::Make({"name", "dept"},
                     {{Value::String("a"), Value::String("db")},
                      {Value::String("b"), Value::String("os")}})
          .value();
  Relation active = Relation::Make({"dept"}, {{Value::String("db")}})
                        .value();
  auto out = SemiJoin(employees, active);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
  EXPECT_EQ(out->columns(), employees.columns());
  auto anti = AntiJoin(employees, active);
  ASSERT_TRUE(anti.ok());
  EXPECT_EQ(anti->size(), 1u);
  EXPECT_EQ(anti->begin()->at(0), Value::String("b"));
  // Semi ∪ anti = left.
  EXPECT_TRUE(Union(*out, *anti).value() == employees);
}

TEST(AlgebraTest, SemiAntiJoinDisjointColumns) {
  Relation left = Relation::Make({"x"}, {{Value::Int(1)}}).value();
  Relation nonempty = Relation::Make({"y"}, {{Value::Int(9)}}).value();
  Relation empty({"y"});
  // With no shared columns: matched iff the right side is nonempty.
  EXPECT_EQ(SemiJoin(left, nonempty)->size(), 1u);
  EXPECT_EQ(SemiJoin(left, empty)->size(), 0u);
  EXPECT_EQ(AntiJoin(left, nonempty)->size(), 0u);
  EXPECT_EQ(AntiJoin(left, empty)->size(), 1u);
}

TEST(AlgebraTest, DivisionFindsUniversalMatches) {
  // Who takes *every* required course?
  Relation takes =
      Relation::Make({"student", "course"},
                     {{Value::String("ann"), Value::String("db")},
                      {Value::String("ann"), Value::String("os")},
                      {Value::String("bob"), Value::String("db")}})
          .value();
  Relation required = Relation::Make({"course"}, {{Value::String("db")},
                                                  {Value::String("os")}})
                          .value();
  auto out = Divide(takes, required);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->size(), 1u);
  EXPECT_EQ(out->begin()->at(0), Value::String("ann"));
  // Dividing by a single course keeps everyone taking it.
  Relation only_db = Relation::Make({"course"},
                                    {{Value::String("db")}}).value();
  EXPECT_EQ(Divide(takes, only_db)->size(), 2u);
}

TEST(AlgebraTest, DivisionErrors) {
  Relation takes = Relation::Make({"student", "course"},
                                  {{Value::String("a"),
                                    Value::String("x")}})
                       .value();
  Relation same = takes;
  // Divisor covering all columns (or none of them) is rejected.
  EXPECT_FALSE(Divide(takes, same).ok());
  Relation unrelated = Relation::Make({"room"}, {{Value::Int(1)}}).value();
  EXPECT_FALSE(Divide(takes, unrelated).ok());
}

// ---------------------------------------------------------------------------
// The liberal closure operator.

// One transitive-closure step: edges ⋈ current.
ClosureStep TcStep(const Relation& edges) {
  return [edges](const Relation& current) -> Result<Relation> {
    LOGRES_ASSIGN_OR_RETURN(
        Relation hop, Rename(edges, {{"par", "mid"}, {"chil", "chil2"}}));
    LOGRES_ASSIGN_OR_RETURN(
        Relation renamed, Rename(current, {{"chil", "mid"}}));
    LOGRES_ASSIGN_OR_RETURN(Relation joined, NaturalJoin(renamed, hop));
    LOGRES_ASSIGN_OR_RETURN(Relation projected,
                            Project(joined, {"par", "chil2"}));
    return Rename(projected, {{"chil2", "chil"}});
  };
}

TEST(ClosureTest, InflationaryTransitiveClosure) {
  Relation edges = Parent();
  auto result = Closure(edges, TcStep(edges));
  ASSERT_TRUE(result.ok());
  // a->b, b->c, b->d, a->c, a->d.
  EXPECT_EQ(result->size(), 5u);
  EXPECT_TRUE(result->Contains({Value::String("a"), Value::String("d")}));
}

TEST(ClosureTest, SemiNaiveMatchesNaive) {
  Relation edges = Parent();
  auto naive = Closure(edges, TcStep(edges)).value();
  auto semi = SemiNaiveClosure(edges, TcStep(edges)).value();
  EXPECT_TRUE(naive == semi);
}

TEST(ClosureTest, ReplacementSemanticsReachesFixpoint) {
  // Replacement with an idempotent step: converges to the step's image.
  Relation seed = Relation::Make({"x"}, {{Value::Int(1)}}).value();
  ClosureOptions options;
  options.semantics = ClosureSemantics::kReplacement;
  auto result = Closure(seed,
                        [](const Relation& r) -> Result<Relation> {
                          Relation out(r.columns());
                          LOGRES_RETURN_NOT_OK(
                              out.Insert({Value::Int(2)}).status());
                          return out;
                        },
                        options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
  EXPECT_TRUE(result->Contains({Value::Int(2)}));
}

TEST(ClosureTest, DivergenceIsCaught) {
  Relation seed = Relation::Make({"x"}, {{Value::Int(0)}}).value();
  ClosureOptions options;
  options.max_steps = 10;
  auto result = Closure(
      seed,
      [](const Relation& r) -> Result<Relation> {
        // Keeps producing fresh values: never converges.
        Relation out(r.columns());
        LOGRES_RETURN_NOT_OK(
            out.Insert({Value::Int(static_cast<int64_t>(r.size()))})
                .status());
        return out;
      },
      options);
  EXPECT_EQ(result.status().code(), StatusCode::kDivergence);
}

TEST(ClosureTest, SemiNaiveEmptySeedTerminatesImmediately) {
  Relation seed({"par", "chil"});
  auto result = SemiNaiveClosure(seed, TcStep(Parent()));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace logres::algres
