// Unit tests for schemas: type equations, isa hierarchies, multiple
// inheritance, the refinement relation (Definition 2), and validation.

#include <gtest/gtest.h>

#include <set>

#include "core/schema.h"

namespace logres {
namespace {

// The paper's football schema (Example 2.1).
Schema Football() {
  Schema s;
  EXPECT_TRUE(s.DeclareDomain("NAME", Type::String()).ok());
  EXPECT_TRUE(s.DeclareDomain("ROLE", Type::Int()).ok());
  EXPECT_TRUE(s.DeclareDomain("DATE", Type::String()).ok());
  EXPECT_TRUE(s.DeclareDomain(
      "SCORE", Type::Tuple({{"home", Type::Int()},
                            {"guest", Type::Int()}})).ok());
  EXPECT_TRUE(s.DeclareClass(
      "PLAYER", Type::Tuple({{"name", Type::Named("NAME")},
                             {"roles",
                              Type::Set(Type::Named("ROLE"))}})).ok());
  EXPECT_TRUE(s.DeclareClass(
      "TEAM",
      Type::Tuple({{"team_name", Type::Named("NAME")},
                   {"base_players",
                    Type::Sequence(Type::Named("PLAYER"))},
                   {"substitutes",
                    Type::Set(Type::Named("PLAYER"))}})).ok());
  EXPECT_TRUE(s.DeclareAssociation(
      "GAME", Type::Tuple({{"h_team", Type::Named("TEAM")},
                           {"g_team", Type::Named("TEAM")},
                           {"date", Type::Named("DATE")},
                           {"score", Type::Named("SCORE")}})).ok());
  return s;
}

// The paper's university schema (Example 3.1, without the school loop).
Schema University() {
  Schema s;
  EXPECT_TRUE(s.DeclareClass(
      "PERSON", Type::Tuple({{"name", Type::String()},
                             {"address", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareClass(
      "STUDENT", Type::Tuple({{"person", Type::Named("PERSON")},
                              {"studschool", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareClass(
      "PROFESSOR", Type::Tuple({{"person", Type::Named("PERSON")},
                                {"course", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareIsa("STUDENT", "PERSON").ok());
  EXPECT_TRUE(s.DeclareIsa("PROFESSOR", "PERSON").ok());
  EXPECT_TRUE(s.DeclareAssociation(
      "ADVISES", Type::Tuple({{"professor", Type::Named("PROFESSOR")},
                              {"student", Type::Named("STUDENT")}})).ok());
  return s;
}

TEST(SchemaTest, FootballValidates) {
  Schema s = Football();
  EXPECT_TRUE(s.Validate().ok()) << s.Validate();
  EXPECT_TRUE(s.IsDomain("SCORE"));
  EXPECT_TRUE(s.IsClass("PLAYER"));
  EXPECT_TRUE(s.IsAssociation("GAME"));
  EXPECT_EQ(s.DomainNames().size(), 4u);
  EXPECT_EQ(s.ClassNames().size(), 2u);
  EXPECT_EQ(s.AssociationNames().size(), 1u);
}

TEST(SchemaTest, LookupErrors) {
  Schema s = Football();
  EXPECT_EQ(s.TypeOf("MISSING").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.KindOf("MISSING").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(s.Has("MISSING"));
}

TEST(SchemaTest, DuplicateDeclarationRejectedIdempotentAccepted) {
  Schema s = Football();
  // Identical re-declaration is a no-op...
  EXPECT_TRUE(s.DeclareDomain("NAME", Type::String()).ok());
  // ...but a conflicting one errors.
  EXPECT_EQ(s.DeclareDomain("NAME", Type::Int()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(s.DeclareClass("NAME", Type::String()).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, UndeclaredReferenceFailsValidation) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("C", Type::Tuple(
      {{"x", Type::Named("GHOST")}})).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, DomainMayNotReferenceClass) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("C", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareDomain("D", Type::Set(Type::Named("C"))).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, AssociationMayNotContainAssociation) {
  Schema s;
  ASSERT_TRUE(s.DeclareAssociation("A",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareAssociation("B",
      Type::Tuple({{"a", Type::Named("A")}})).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, ClassMayAliasAssociationWholeRhs) {
  // Example 3.4: IP = PAIR.
  Schema s;
  ASSERT_TRUE(s.DeclareAssociation("PAIR",
      Type::Tuple({{"employee", Type::String()},
                   {"manager", Type::String()}})).ok());
  ASSERT_TRUE(s.DeclareClass("IP", Type::Named("PAIR")).ok());
  EXPECT_TRUE(s.Validate().ok()) << s.Validate();
  auto fields = s.EffectiveFields("IP");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 2u);
  EXPECT_EQ(fields->front().first, "employee");
}

TEST(SchemaTest, ClassMayNotEmbedAssociationAsComponent) {
  Schema s;
  ASSERT_TRUE(s.DeclareAssociation("A",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("C",
      Type::Tuple({{"a", Type::Named("A")}})).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, RecursiveDomainRejected) {
  Schema s;
  ASSERT_TRUE(s.DeclareDomain("T",
      Type::Tuple({{"next", Type::Named("T")}})).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, RecursiveClassAllowed) {
  // A class may reference itself: class components are oid indirections.
  Schema s;
  ASSERT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()},
                   {"spouse", Type::Named("PERSON")}})).ok());
  EXPECT_TRUE(s.Validate().ok()) << s.Validate();
}

TEST(SchemaTest, IsaReachabilityAndSubSuperSets) {
  Schema s = University();
  EXPECT_TRUE(s.IsaReachable("STUDENT", "PERSON"));
  EXPECT_TRUE(s.IsaReachable("STUDENT", "STUDENT"));
  EXPECT_FALSE(s.IsaReachable("PERSON", "STUDENT"));
  EXPECT_FALSE(s.IsaReachable("STUDENT", "PROFESSOR"));
  EXPECT_EQ(s.DirectSuperclasses("STUDENT"),
            std::vector<std::string>{"PERSON"});
  EXPECT_EQ(s.AllSuperclasses("STUDENT"),
            std::vector<std::string>{"PERSON"});
  auto subs = s.AllSubclasses("PERSON");
  EXPECT_EQ(subs.size(), 2u);
}

TEST(SchemaTest, IsaRequiresRefinement) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("A",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("B",
      Type::Tuple({{"y", Type::String()}})).ok());
  ASSERT_TRUE(s.DeclareIsa("B", "A").ok());
  // B lacks A's field x, so Sigma(B) does not refine Sigma(A).
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, IsaCycleRejected) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("A", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("B", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareIsa("A", "B").ok());
  ASSERT_TRUE(s.DeclareIsa("B", "A").ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, IsaOnNonClassRejected) {
  Schema s;
  ASSERT_TRUE(s.DeclareDomain("D", Type::Int()).ok());
  ASSERT_TRUE(s.DeclareClass("C", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareIsa("C", "D").ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, MultipleInheritanceNeedsCommonAncestor) {
  // "we only allow multiple inheritance among classes which share a
  // common ancestor, as we do not postulate the existence of a universal
  // class."
  Schema s;
  ASSERT_TRUE(s.DeclareClass("A", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("B", Type::Tuple({{"y", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("C",
      Type::Tuple({{"x", Type::Int()}, {"y", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareIsa("C", "A").ok());
  ASSERT_TRUE(s.DeclareIsa("C", "B").ok());
  // A and B are distinct roots: C would bridge two hierarchies.
  EXPECT_EQ(s.Validate().code(), StatusCode::kSchemaError);
}

TEST(SchemaTest, DiamondInheritanceWithCommonAncestorAllowed) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("TOP", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("L",
      Type::Tuple({{"x", Type::Int()}, {"l", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("R",
      Type::Tuple({{"x", Type::Int()}, {"r", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("BOTTOM",
      Type::Tuple({{"x", Type::Int()}, {"l", Type::Int()},
                   {"r", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareIsa("L", "TOP").ok());
  ASSERT_TRUE(s.DeclareIsa("R", "TOP").ok());
  ASSERT_TRUE(s.DeclareIsa("BOTTOM", "L").ok());
  ASSERT_TRUE(s.DeclareIsa("BOTTOM", "R").ok());
  EXPECT_TRUE(s.Validate().ok()) << s.Validate();
  EXPECT_EQ(s.RootOf("BOTTOM").value(), "TOP");
  EXPECT_TRUE(s.SameHierarchy("L", "R"));
}

TEST(SchemaTest, InheritanceInliningFlattensSuperFields) {
  // STUDENT = (PERSON, studschool: ...) with STUDENT isa PERSON exposes
  // name and address as STUDENT properties (Section 2.1).
  Schema s = University();
  auto fields = s.EffectiveFields("STUDENT");
  ASSERT_TRUE(fields.ok()) << fields.status();
  std::vector<std::string> labels;
  for (const auto& [l, t] : *fields) {
    (void)t;
    labels.push_back(l);
  }
  EXPECT_EQ(labels, (std::vector<std::string>{"name", "address",
                                              "studschool"}));
}

TEST(SchemaTest, LabeledClassComponentIsObjectSharingNotInheritance) {
  // EMPL = (emp: PERSON, manager: PERSON): labeled components stay
  // oid references even though PERSON is a class.
  Schema s;
  ASSERT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()}})).ok());
  ASSERT_TRUE(s.DeclareClass("EMPL",
      Type::Tuple({{"emp", Type::Named("PERSON")},
                   {"manager", Type::Named("PERSON")}})).ok());
  ASSERT_TRUE(s.Validate().ok());
  auto fields = s.EffectiveFields("EMPL");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 2u);
  EXPECT_EQ(fields->at(0).second, Type::Named("PERSON"));
}

TEST(SchemaTest, LabeledComponentIsa) {
  // "EMPL emp ISA PERSON": the emp component must refine PERSON.
  Schema s;
  ASSERT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()}})).ok());
  ASSERT_TRUE(s.DeclareClass("EMPL",
      Type::Tuple({{"emp", Type::Named("PERSON")},
                   {"manager", Type::Named("PERSON")}})).ok());
  ASSERT_TRUE(s.DeclareIsa("EMPL", "PERSON", "emp").ok());
  EXPECT_TRUE(s.Validate().ok()) << s.Validate();
  // The labeled form does not make EMPL a subclass.
  EXPECT_FALSE(s.IsaReachable("EMPL", "PERSON"));
}

TEST(SchemaTest, MultipleInheritanceConflictNeedsRenaming) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("TOP", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("L",
      Type::Tuple({{"x", Type::Int()}, {"v", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("R",
      Type::Tuple({{"x", Type::Int()}, {"v", Type::String()}})).ok());
  ASSERT_TRUE(s.DeclareIsa("L", "TOP").ok());
  ASSERT_TRUE(s.DeclareIsa("R", "TOP").ok());
  // BOTTOM inlines both L and R: label v collides (and x from TOP twice).
  ASSERT_TRUE(s.DeclareClass("BOTTOM",
      Type::Tuple({{"l", Type::Named("L")},
                   {"r", Type::Named("R")}})).ok());
  ASSERT_TRUE(s.DeclareIsa("BOTTOM", "L").ok());
  ASSERT_TRUE(s.DeclareIsa("BOTTOM", "R").ok());
  // With labeled components there's no inlining so no conflict; re-declare
  // with the unlabeled (inheriting) convention: labels equal the
  // lower-cased class names trigger inlining.
  Schema s2;
  ASSERT_TRUE(s2.DeclareClass("TOP",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s2.DeclareClass("L",
      Type::Tuple({{"top", Type::Named("TOP")},
                   {"v", Type::Int()}})).ok());
  ASSERT_TRUE(s2.DeclareIsa("L", "TOP").ok());
  ASSERT_TRUE(s2.DeclareClass("R",
      Type::Tuple({{"top", Type::Named("TOP")},
                   {"v", Type::String()}})).ok());
  ASSERT_TRUE(s2.DeclareIsa("R", "TOP").ok());
  ASSERT_TRUE(s2.DeclareClass("BOTTOM",
      Type::Tuple({{"l", Type::Named("L")},
                   {"r", Type::Named("R")}})).ok());
  ASSERT_TRUE(s2.DeclareIsa("BOTTOM", "L").ok());
  ASSERT_TRUE(s2.DeclareIsa("BOTTOM", "R").ok());
  // BOTTOM inlines both L and R. The diamond copy of TOP's `x` merges
  // silently (identical type), but `v` reaches BOTTOM as both integer
  // (via L) and string (via R): a genuine conflict.
  EXPECT_EQ(s2.Validate().code(), StatusCode::kSchemaError);
  // The renaming policy resolves it.
  ASSERT_TRUE(s2.DeclareInheritanceRename("BOTTOM", "R", "v",
                                          "r_v").ok());
  EXPECT_TRUE(s2.Validate().ok()) << s2.Validate();
  auto fields = s2.EffectiveFields("BOTTOM").value();
  std::set<std::string> labels;
  for (const auto& [l, t] : fields) {
    (void)t;
    labels.insert(l);
  }
  EXPECT_TRUE(labels.count("x"));
  EXPECT_TRUE(labels.count("v"));
  EXPECT_TRUE(labels.count("r_v"));
}

TEST(SchemaTest, RenamingPolicyResolvesInheritedConflict) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()}})).ok());
  // STUDENT also declares its own `name`, conflicting with the inherited
  // one; the rename exposes the inherited one as person_name.
  ASSERT_TRUE(s.DeclareClass("STUDENT",
      Type::Tuple({{"person", Type::Named("PERSON")},
                   {"name", Type::String()}})).ok());
  ASSERT_TRUE(s.DeclareIsa("STUDENT", "PERSON").ok());
  auto before = s.EffectiveFields("STUDENT");
  EXPECT_EQ(before.status().code(), StatusCode::kSchemaError);
  ASSERT_TRUE(s.DeclareInheritanceRename("STUDENT", "PERSON", "name",
                                         "person_name").ok());
  auto after = s.EffectiveFields("STUDENT");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->at(0).first, "person_name");
  EXPECT_EQ(after->at(1).first, "name");
}

// ---------------------------------------------------------------------------
// Refinement (Definition 2).

TEST(RefinementTest, Condition1IdenticalTypes) {
  Schema s = Football();
  EXPECT_TRUE(s.IsRefinement(Type::Int(), Type::Int()).value());
  EXPECT_TRUE(s.IsRefinement(Type::Named("NAME"),
                             Type::Named("NAME")).value());
  EXPECT_FALSE(s.IsRefinement(Type::Int(), Type::String()).value());
}

TEST(RefinementTest, Condition2DomainUnfoldsLeft) {
  Schema s = Football();
  // NAME = string, so NAME ≼ string.
  EXPECT_TRUE(s.IsRefinement(Type::Named("NAME"), Type::String()).value());
  EXPECT_FALSE(s.IsRefinement(Type::Named("NAME"), Type::Int()).value());
}

TEST(RefinementTest, Condition3ClassesViaIsa) {
  Schema s = University();
  EXPECT_TRUE(s.IsRefinement(Type::Named("STUDENT"),
                             Type::Named("PERSON")).value());
  EXPECT_FALSE(s.IsRefinement(Type::Named("PERSON"),
                              Type::Named("STUDENT")).value());
}

TEST(RefinementTest, Condition4TupleProjection) {
  Schema s;
  // A tuple with more fields refines one with fewer (q <= p).
  Type big = Type::Tuple({{"a", Type::Int()}, {"b", Type::String()}});
  Type small = Type::Tuple({{"a", Type::Int()}});
  EXPECT_TRUE(s.IsRefinement(big, small).value());
  EXPECT_FALSE(s.IsRefinement(small, big).value());
  // Field types must refine pointwise.
  Type wrong = Type::Tuple({{"a", Type::String()}});
  EXPECT_FALSE(s.IsRefinement(big, wrong).value());
}

TEST(RefinementTest, Conditions5to7Collections) {
  Schema s;
  Type big = Type::Tuple({{"a", Type::Int()}, {"b", Type::Int()}});
  Type small = Type::Tuple({{"a", Type::Int()}});
  EXPECT_TRUE(s.IsRefinement(Type::Set(big), Type::Set(small)).value());
  EXPECT_TRUE(s.IsRefinement(Type::Multiset(big),
                             Type::Multiset(small)).value());
  EXPECT_TRUE(s.IsRefinement(Type::Sequence(big),
                             Type::Sequence(small)).value());
  // Mismatched constructors do not refine.
  EXPECT_FALSE(s.IsRefinement(Type::Set(big),
                              Type::Multiset(small)).value());
  EXPECT_FALSE(s.IsRefinement(Type::Set(big),
                              Type::Sequence(small)).value());
}

TEST(RefinementTest, CompatibilityIsSymmetricRefinement) {
  Schema s = University();
  EXPECT_TRUE(s.AreCompatible(Type::Named("STUDENT"),
                              Type::Named("PERSON")).value());
  EXPECT_TRUE(s.AreCompatible(Type::Named("PERSON"),
                              Type::Named("STUDENT")).value());
  EXPECT_FALSE(s.AreCompatible(Type::Named("STUDENT"),
                               Type::Named("PROFESSOR")).value());
}

TEST(RefinementTest, UnknownNameIsError) {
  Schema s;
  EXPECT_FALSE(s.IsRefinement(Type::Named("GHOST"), Type::Int()).ok());
}

// ---------------------------------------------------------------------------
// Expansion, merge, undeclare.

TEST(SchemaTest, ExpandSubstitutesDomainsKeepsClasses) {
  Schema s = Football();
  Type game = s.TypeOf("GAME").value();
  Type expanded = s.Expand(game).value();
  // DATE (domain) became string; TEAM (class) stayed a reference.
  EXPECT_EQ(expanded.field("date").value(), Type::String());
  EXPECT_EQ(expanded.field("h_team").value(), Type::Named("TEAM"));
  EXPECT_EQ(expanded.field("score").value().kind(), TypeKind::kTuple);
}

TEST(SchemaTest, MergeIsIdempotentAndConflictChecked) {
  Schema a = Football();
  Schema b = Football();
  EXPECT_TRUE(a.Merge(b).ok());
  Schema c;
  ASSERT_TRUE(c.DeclareDomain("NAME", Type::Int()).ok());
  EXPECT_EQ(a.Merge(c).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, UndeclareChecksReferences) {
  Schema s = Football();
  // TEAM is referenced by GAME.
  EXPECT_EQ(s.Undeclare("TEAM").code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(s.Undeclare("GAME").ok());
  EXPECT_FALSE(s.Has("GAME"));
  EXPECT_EQ(s.Undeclare("GAME").code(), StatusCode::kNotFound);
}

TEST(SchemaTest, PredicateTupleOfDomainRejected) {
  Schema s = Football();
  EXPECT_EQ(s.EffectiveFields("NAME").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ToStringShowsSections) {
  Schema s = University();
  std::string text = s.ToString();
  EXPECT_NE(text.find("classes"), std::string::npos);
  EXPECT_NE(text.find("STUDENT isa PERSON"), std::string::npos);
}

}  // namespace
}  // namespace logres
