// Unit tests for instances (Definitions 3-4): oid assignment, o-values,
// associations, consistency, and isomorphism up to oid renaming.

#include <gtest/gtest.h>

#include "core/instance.h"

namespace logres {
namespace {

Schema UniSchema() {
  Schema s;
  EXPECT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareClass("STUDENT",
      Type::Tuple({{"person", Type::Named("PERSON")},
                   {"school", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareIsa("STUDENT", "PERSON").ok());
  EXPECT_TRUE(s.DeclareAssociation("LIKES",
      Type::Tuple({{"who", Type::Named("PERSON")},
                   {"what", Type::String()}})).ok());
  EXPECT_TRUE(s.Validate().ok());
  return s;
}

Value PersonValue(const std::string& name) {
  return Value::MakeTuple({{"name", Value::String(name)}});
}

TEST(InstanceTest, CreateObjectPopulatesSuperclasses) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  Oid oid = inst.CreateObject(s, "STUDENT",
      Value::MakeTuple({{"name", Value::String("john")},
                        {"school", Value::String("polimi")}}),
      &gen).value();
  EXPECT_TRUE(inst.HasObject("STUDENT", oid));
  EXPECT_TRUE(inst.HasObject("PERSON", oid));
  EXPECT_EQ(inst.OidsOf("PERSON").size(), 1u);
  EXPECT_TRUE(inst.CheckConsistent(s).ok());
}

TEST(InstanceTest, CreateObjectRejectsNonClass) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  EXPECT_EQ(inst.CreateObject(s, "LIKES", Value::Nil(), &gen)
                .status().code(),
            StatusCode::kNotFound);
}

TEST(InstanceTest, OValueAccessAndUpdate) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  Oid oid = inst.CreateObject(s, "PERSON", PersonValue("ann"),
                              &gen).value();
  EXPECT_EQ(inst.OValue(oid).value(), PersonValue("ann"));
  EXPECT_TRUE(inst.SetOValue(oid, PersonValue("anna")).ok());
  EXPECT_EQ(inst.OValue(oid).value(), PersonValue("anna"));
  EXPECT_EQ(inst.OValue(Oid{999}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(inst.SetOValue(Oid{999}, Value::Nil()).code(),
            StatusCode::kNotFound);
}

TEST(InstanceTest, RemoveObjectCascadesToSubclasses) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  Oid oid = inst.CreateObject(s, "STUDENT",
      Value::MakeTuple({{"name", Value::String("j")},
                        {"school", Value::String("x")}}), &gen).value();
  // Removing from the superclass must also remove from the subclass,
  // otherwise Definition 4a would be violated.
  ASSERT_TRUE(inst.RemoveObject(s, "PERSON", oid).ok());
  EXPECT_FALSE(inst.HasObject("STUDENT", oid));
  EXPECT_FALSE(inst.HasObject("PERSON", oid));
  // The o-value of a fully dead oid is gone.
  EXPECT_FALSE(inst.OValue(oid).ok());
}

TEST(InstanceTest, RemoveFromSubclassKeepsSuperclassMembership) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  Oid oid = inst.CreateObject(s, "STUDENT",
      Value::MakeTuple({{"name", Value::String("j")},
                        {"school", Value::String("x")}}), &gen).value();
  ASSERT_TRUE(inst.RemoveObject(s, "STUDENT", oid).ok());
  EXPECT_FALSE(inst.HasObject("STUDENT", oid));
  EXPECT_TRUE(inst.HasObject("PERSON", oid));
  EXPECT_TRUE(inst.OValue(oid).ok());
}

TEST(InstanceTest, AssociationTuples) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  Oid oid = inst.CreateObject(s, "PERSON", PersonValue("ann"),
                              &gen).value();
  Value t = Value::MakeTuple({{"who", Value::MakeOid(oid)},
                              {"what", Value::String("jazz")}});
  EXPECT_TRUE(inst.InsertTuple("LIKES", t));
  EXPECT_FALSE(inst.InsertTuple("LIKES", t));  // duplicate-free
  EXPECT_EQ(inst.TuplesOf("LIKES").size(), 1u);
  EXPECT_TRUE(inst.EraseTuple("LIKES", t));
  EXPECT_FALSE(inst.EraseTuple("LIKES", t));
  EXPECT_TRUE(inst.TuplesOf("NOPE").empty());
}

TEST(InstanceTest, TotalFactsCountsObjectsAndTuples) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  Oid oid = inst.CreateObject(s, "STUDENT",
      Value::MakeTuple({{"name", Value::String("j")},
                        {"school", Value::String("x")}}), &gen).value();
  inst.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(oid)}, {"what", Value::String("a")}}));
  // STUDENT + PERSON membership + 1 tuple.
  EXPECT_EQ(inst.TotalFacts(), 3u);
}

// ---------------------------------------------------------------------------
// Consistency (Definition 4).

TEST(ConsistencyTest, DanglingAssociationReferenceRejected) {
  Schema s = UniSchema();
  Instance inst;
  inst.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(Oid{42})}, {"what", Value::String("x")}}));
  EXPECT_EQ(inst.CheckConsistent(s).code(),
            StatusCode::kConstraintViolation);
}

TEST(ConsistencyTest, NilInAssociationRejected) {
  // "we do not accept nil oids within associations."
  Schema s = UniSchema();
  Instance inst;
  inst.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::Nil()}, {"what", Value::String("x")}}));
  EXPECT_EQ(inst.CheckConsistent(s).code(),
            StatusCode::kConstraintViolation);
}

TEST(ConsistencyTest, NilClassReferenceAllowed) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()},
                   {"spouse", Type::Named("PERSON")}})).ok());
  ASSERT_TRUE(s.Validate().ok());
  Instance inst;
  OidGenerator gen;
  ASSERT_TRUE(inst.CreateObject(s, "PERSON",
      Value::MakeTuple({{"name", Value::String("solo")},
                        {"spouse", Value::Nil()}}), &gen).ok());
  EXPECT_TRUE(inst.CheckConsistent(s).ok());
}

TEST(ConsistencyTest, DanglingClassReferenceRejected) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()},
                   {"spouse", Type::Named("PERSON")}})).ok());
  ASSERT_TRUE(s.Validate().ok());
  Instance inst;
  OidGenerator gen;
  ASSERT_TRUE(inst.CreateObject(s, "PERSON",
      Value::MakeTuple({{"name", Value::String("x")},
                        {"spouse", Value::MakeOid(Oid{77})}}),
      &gen).ok());
  EXPECT_EQ(inst.CheckConsistent(s).code(),
            StatusCode::kConstraintViolation);
}

TEST(ConsistencyTest, MissingFieldRejected) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  ASSERT_TRUE(inst.CreateObject(s, "PERSON",
      Value::MakeTuple({}), &gen).ok());
  EXPECT_EQ(inst.CheckConsistent(s).code(),
            StatusCode::kConstraintViolation);
}

TEST(ConsistencyTest, WrongKindRejected) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  ASSERT_TRUE(inst.CreateObject(s, "PERSON",
      Value::MakeTuple({{"name", Value::Int(3)}}), &gen).ok());
  EXPECT_EQ(inst.CheckConsistent(s).code(),
            StatusCode::kConstraintViolation);
}

TEST(ConsistencyTest, SubclassValueConformsToSuperclassByProjection) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  // The student value has extra fields relative to PERSON: fine.
  ASSERT_TRUE(inst.CreateObject(s, "STUDENT",
      Value::MakeTuple({{"name", Value::String("j")},
                        {"school", Value::String("x")}}), &gen).ok());
  EXPECT_TRUE(inst.CheckConsistent(s).ok());
}

TEST(ConsistencyTest, CrossHierarchySharedOidRejected) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("A", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("B", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.Validate().ok());
  Instance inst;
  ASSERT_TRUE(inst.AdoptObject(s, "A", Oid{1},
      Value::MakeTuple({{"x", Value::Int(1)}})).ok());
  ASSERT_TRUE(inst.AdoptObject(s, "B", Oid{1},
      Value::MakeTuple({{"x", Value::Int(1)}})).ok());
  // A and B are distinct hierarchy roots: sharing oid 1 violates Def. 4b.
  EXPECT_EQ(inst.CheckConsistent(s).code(), StatusCode::kInconsistent);
}

TEST(ConsistencyTest, UndeclaredAssociationRejected) {
  Schema s = UniSchema();
  Instance inst;
  inst.InsertTuple("GHOST", Value::MakeTuple({}));
  EXPECT_EQ(inst.CheckConsistent(s).code(), StatusCode::kInconsistent);
}

// ---------------------------------------------------------------------------
// Isomorphism up to oid renaming (Appendix B determinacy).

TEST(IsomorphismTest, RenamedOidsAreIsomorphic) {
  Schema s = UniSchema();
  Instance a, b;
  OidGenerator gen_a, gen_b;
  // Burn some oids in b so the numbers differ.
  gen_b.Next();
  gen_b.Next();
  Oid oa = a.CreateObject(s, "PERSON", PersonValue("ann"), &gen_a).value();
  Oid ob = b.CreateObject(s, "PERSON", PersonValue("ann"), &gen_b).value();
  a.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(oa)}, {"what", Value::String("jazz")}}));
  b.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(ob)}, {"what", Value::String("jazz")}}));
  EXPECT_NE(oa, ob);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a.IsomorphicTo(b));
  EXPECT_TRUE(b.IsomorphicTo(a));
}

TEST(IsomorphismTest, DifferentValuesAreNotIsomorphic) {
  Schema s = UniSchema();
  Instance a, b;
  OidGenerator gen;
  ASSERT_TRUE(a.CreateObject(s, "PERSON", PersonValue("ann"), &gen).ok());
  ASSERT_TRUE(b.CreateObject(s, "PERSON", PersonValue("bob"), &gen).ok());
  EXPECT_FALSE(a.IsomorphicTo(b));
}

TEST(IsomorphismTest, DifferentCardinalityNotIsomorphic) {
  Schema s = UniSchema();
  Instance a, b;
  OidGenerator gen;
  ASSERT_TRUE(a.CreateObject(s, "PERSON", PersonValue("x"), &gen).ok());
  EXPECT_FALSE(a.IsomorphicTo(b));
}

TEST(IsomorphismTest, ObjectGraphStructureMatters) {
  // Two people pointing at each other vs two self-loops: same local
  // values, different shape — not isomorphic.
  Schema s;
  ASSERT_TRUE(s.DeclareClass("NODE",
      Type::Tuple({{"next", Type::Named("NODE")}})).ok());
  ASSERT_TRUE(s.Validate().ok());
  Instance cycle2, loops;
  ASSERT_TRUE(cycle2.AdoptObject(s, "NODE", Oid{1},
      Value::MakeTuple({{"next", Value::MakeOid(Oid{2})}})).ok());
  ASSERT_TRUE(cycle2.AdoptObject(s, "NODE", Oid{2},
      Value::MakeTuple({{"next", Value::MakeOid(Oid{1})}})).ok());
  ASSERT_TRUE(loops.AdoptObject(s, "NODE", Oid{3},
      Value::MakeTuple({{"next", Value::MakeOid(Oid{3})}})).ok());
  ASSERT_TRUE(loops.AdoptObject(s, "NODE", Oid{4},
      Value::MakeTuple({{"next", Value::MakeOid(Oid{4})}})).ok());
  EXPECT_FALSE(cycle2.IsomorphicTo(loops));
  // But a relabeled 2-cycle is isomorphic to the original.
  Instance cycle2b;
  ASSERT_TRUE(cycle2b.AdoptObject(s, "NODE", Oid{7},
      Value::MakeTuple({{"next", Value::MakeOid(Oid{9})}})).ok());
  ASSERT_TRUE(cycle2b.AdoptObject(s, "NODE", Oid{9},
      Value::MakeTuple({{"next", Value::MakeOid(Oid{7})}})).ok());
  EXPECT_TRUE(cycle2.IsomorphicTo(cycle2b));
}

TEST(InstanceTest, ToStringShowsObjectsAndTuples) {
  Schema s = UniSchema();
  Instance inst;
  OidGenerator gen;
  Oid oid = inst.CreateObject(s, "PERSON", PersonValue("ann"),
                              &gen).value();
  inst.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(oid)}, {"what", Value::String("x")}}));
  std::string text = inst.ToString();
  EXPECT_NE(text.find("class PERSON"), std::string::npos);
  EXPECT_NE(text.find("association LIKES"), std::string::npos);
}

}  // namespace
}  // namespace logres
