// Tests for the ALGRES compilation backend: cross-validation against the
// direct evaluator on the flat positive fragment, and fragment rejection.

#include <gtest/gtest.h>

#include "core/algres_backend.h"
#include "core/database.h"
#include "core/parser.h"

namespace logres {
namespace {

struct Compiled {
  Schema schema;
  CheckedProgram program;
};

Result<Compiled> Build(const std::string& schema_text,
                       const std::vector<std::string>& rule_texts) {
  LOGRES_ASSIGN_OR_RETURN(ParsedUnit unit, Parse(schema_text));
  LOGRES_RETURN_NOT_OK(unit.schema.Validate());
  std::vector<Rule> rules;
  for (const std::string& text : rule_texts) {
    LOGRES_ASSIGN_OR_RETURN(Rule rule, ParseRule(text));
    rules.push_back(std::move(rule));
  }
  LOGRES_ASSIGN_OR_RETURN(CheckedProgram program,
                          Typecheck(unit.schema, {}, rules));
  Compiled out{std::move(unit.schema), std::move(program)};
  return out;
}

Value Edge(int a, int b) {
  return Value::MakeTuple({{"a", Value::Int(a)}, {"b", Value::Int(b)}});
}

TEST(BackendTest, TransitiveClosureMatchesEvaluator) {
  auto built = Build(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);",
      {"tc(a: X, b: Y) <- e(a: X, b: Y).",
       "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z)."});
  ASSERT_TRUE(built.ok()) << built.status();

  Instance edb;
  for (int i = 0; i < 6; ++i) edb.InsertTuple("E", Edge(i, i + 1));
  edb.InsertTuple("E", Edge(0, 3));

  auto backend = AlgresBackend::Compile(built->schema, built->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto via_algebra = backend->Run(edb);
  ASSERT_TRUE(via_algebra.ok()) << via_algebra.status();

  OidGenerator gen;
  Evaluator evaluator(built->schema, built->program, &gen);
  auto via_eval = evaluator.Run(edb);
  ASSERT_TRUE(via_eval.ok()) << via_eval.status();

  EXPECT_EQ(via_algebra->TuplesOf("TC"), via_eval->TuplesOf("TC"));
  // A 7-node chain has C(7,2) = 21 reachable pairs; the 0->3 shortcut
  // adds none.
  EXPECT_EQ(via_algebra->TuplesOf("TC").size(), 21u);
}

TEST(BackendTest, NaiveAndSemiNaiveAgree) {
  auto built = Build(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);",
      {"tc(a: X, b: Y) <- e(a: X, b: Y).",
       "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z)."});
  ASSERT_TRUE(built.ok());
  Instance edb;
  for (int i = 0; i < 10; ++i) edb.InsertTuple("E", Edge(i, (i * 3) % 10));
  auto backend = AlgresBackend::Compile(built->schema,
                                        built->program).value();
  auto naive = backend.Run(edb, AlgresStrategy::kNaive);
  auto semi = backend.Run(edb, AlgresStrategy::kSemiNaive);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_TRUE(*naive == *semi);
}

TEST(BackendTest, ComparisonsAndConstantsCompile) {
  auto built = Build(
      "associations P = (x: integer, y: integer);"
      "             Q = (x: integer);",
      {"q(x: X) <- p(x: X, y: Y), X > Y, X != 4.",
       "q(x: 100) <- p(x: 1, y: 1)."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  edb.InsertTuple("P", Edge(3, 1));  // labels a/b vs x/y mismatch below
  Instance edb2;
  auto tup = [](int x, int y) {
    return Value::MakeTuple({{"x", Value::Int(x)}, {"y", Value::Int(y)}});
  };
  edb2.InsertTuple("P", tup(3, 1));
  edb2.InsertTuple("P", tup(4, 1));
  edb2.InsertTuple("P", tup(1, 1));
  auto backend = AlgresBackend::Compile(built->schema,
                                        built->program).value();
  auto out = backend.Run(edb2);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->TuplesOf("Q").size(), 2u);  // x=3 and the constant 100
  EXPECT_TRUE(out->TuplesOf("Q").count(
      Value::MakeTuple({{"x", Value::Int(3)}})));
  EXPECT_TRUE(out->TuplesOf("Q").count(
      Value::MakeTuple({{"x", Value::Int(100)}})));
}

TEST(BackendTest, ArithmeticInComparisons) {
  auto built = Build(
      "associations P = (x: integer); Q = (x: integer);",
      {"q(x: X) <- p(x: X), X = 2 * 3."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  edb.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(6)}}));
  edb.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(5)}}));
  auto backend = AlgresBackend::Compile(built->schema,
                                        built->program).value();
  auto out = backend.Run(edb);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->TuplesOf("Q").size(), 1u);
}

TEST(BackendTest, ClassRelationsCarrySelfColumn) {
  auto built = Build(
      "classes PERSON = (name: string);"
      "associations OUT = (name: string);",
      {"out(name: N) <- person(self X, name: N)."});
  ASSERT_TRUE(built.ok()) << built.status();
  Schema& schema = built->schema;
  Instance edb;
  OidGenerator gen;
  ASSERT_TRUE(edb.CreateObject(schema, "PERSON",
      Value::MakeTuple({{"name", Value::String("ann")}}), &gen).ok());
  auto backend = AlgresBackend::Compile(schema, built->program).value();
  auto out = backend.Run(edb);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->TuplesOf("OUT").size(), 1u);
  // Round-trip preserved the object.
  EXPECT_EQ(out->OidsOf("PERSON").size(), 1u);
}

TEST(BackendTest, InstanceRelationRoundTrip) {
  auto built = Build(
      "classes PERSON = (name: string);"
      "associations LIKES = (who: PERSON, what: string);", {});
  ASSERT_TRUE(built.ok());
  Instance edb;
  OidGenerator gen;
  Oid ann = edb.CreateObject(built->schema, "PERSON",
      Value::MakeTuple({{"name", Value::String("ann")}}), &gen).value();
  edb.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(ann)}, {"what", Value::String("jazz")}}));
  auto rels = InstanceToRelations(built->schema, edb);
  ASSERT_TRUE(rels.ok()) << rels.status();
  EXPECT_EQ(rels->at("PERSON").size(), 1u);
  EXPECT_EQ(rels->at("PERSON").columns().front(), "$self");
  auto back = RelationsToInstance(built->schema, *rels);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == edb);
}

// ---------------------------------------------------------------------------
// Fragment rejection: everything outside the flat positive fragment.

TEST(BackendTest, StratifiedNegationCompilesToAntiJoin) {
  auto built = Build(
      "associations NODE = (x: integer); COV = (x: integer);"
      "             UNCOV = (x: integer);",
      {"uncov(x: X) <- node(x: X), not cov(x: X)."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  for (int i = 0; i < 4; ++i) {
    edb.InsertTuple("NODE", Value::MakeTuple({{"x", Value::Int(i)}}));
  }
  edb.InsertTuple("COV", Value::MakeTuple({{"x", Value::Int(1)}}));
  edb.InsertTuple("COV", Value::MakeTuple({{"x", Value::Int(3)}}));
  auto backend = AlgresBackend::Compile(built->schema, built->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto out = backend->Run(edb);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->TuplesOf("UNCOV").size(), 2u);
  // Agrees with the direct evaluator.
  OidGenerator gen;
  Evaluator evaluator(built->schema, built->program, &gen);
  auto direct = evaluator.Run(edb);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(out->TuplesOf("UNCOV"), direct->TuplesOf("UNCOV"));
}

TEST(BackendTest, NegationAcrossStrataWithRecursion) {
  // TC in stratum 0, a complement query in stratum 1.
  auto built = Build(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);"
      "             UNREACH = (a: integer, b: integer);",
      {"tc(a: X, b: Y) <- e(a: X, b: Y).",
       "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).",
       "unreach(a: X, b: Y) <- e(a: X, b: P), e(a: Y, b: Q), "
       "not tc(a: X, b: Y)."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  edb.InsertTuple("E", Edge(1, 2));
  edb.InsertTuple("E", Edge(2, 3));
  edb.InsertTuple("E", Edge(4, 4));
  auto backend = AlgresBackend::Compile(built->schema, built->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  for (auto strategy :
       {AlgresStrategy::kNaive, AlgresStrategy::kSemiNaive}) {
    auto out = backend->Run(edb, strategy);
    ASSERT_TRUE(out.ok()) << out.status();
    OidGenerator gen;
    Evaluator evaluator(built->schema, built->program, &gen);
    auto direct = evaluator.Run(edb);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(out->TuplesOf("UNREACH"), direct->TuplesOf("UNREACH"));
  }
}

TEST(BackendTest, RejectsUnstratifiedNegation) {
  auto built = Build(
      "associations P = (x: integer); Q = (x: integer);",
      {"q(x: X) <- p(x: X), not q(x: X)."});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(AlgresBackend::Compile(built->schema, built->program)
                .status().code(),
            StatusCode::kNotImplemented);
}

TEST(BackendTest, NegatedComparisons) {
  auto built = Build(
      "associations P = (x: integer); Q = (x: integer);",
      {"q(x: X) <- p(x: X), not X = 2."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  for (int i = 1; i <= 3; ++i) {
    edb.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}));
  }
  auto backend = AlgresBackend::Compile(built->schema, built->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto out = backend->Run(edb);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->TuplesOf("Q").size(), 2u);
}

TEST(BackendTest, RejectsDeletionHeads) {
  auto built = Build("associations P = (x: integer);",
                     {"not p(x: X) <- p(x: X), X > 1."});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(AlgresBackend::Compile(built->schema, built->program)
                .status().code(),
            StatusCode::kNotImplemented);
}

TEST(BackendTest, RejectsInvention) {
  auto built = Build(
      "classes OBJ = (x: integer); associations S = (x: integer);",
      {"obj(self O, x: X) <- s(x: X)."});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(AlgresBackend::Compile(built->schema, built->program)
                .status().code(),
            StatusCode::kNotImplemented);
}

TEST(BackendTest, RejectsBuiltins) {
  auto built = Build(
      "associations P = (s: {integer}); Q = (x: integer);",
      {"q(x: X) <- p(s: S), member(X, S)."});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(AlgresBackend::Compile(built->schema, built->program)
                .status().code(),
            StatusCode::kNotImplemented);
}

TEST(BackendTest, NestedTuplePatternsCompile) {
  // NF² cells: a game with a nested score, selected and destructured.
  auto built = Build(
      "domains SCORE = (home: integer, guest: integer);"
      "associations GAME = (team: string, score: SCORE);"
      "             HOMEWIN = (team: string, margin: integer);",
      {"homewin(team: T, margin: M) <- "
       "game(team: T, score: (home: H, guest: G)), H > G, M = H - G."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  auto game = [](const char* t, int h, int g) {
    return Value::MakeTuple(
        {{"team", Value::String(t)},
         {"score", Value::MakeTuple({{"home", Value::Int(h)},
                                     {"guest", Value::Int(g)}})}});
  };
  edb.InsertTuple("GAME", game("milan", 3, 1));
  edb.InsertTuple("GAME", game("inter", 0, 2));
  auto backend = AlgresBackend::Compile(built->schema, built->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto out = backend->Run(edb);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->TuplesOf("HOMEWIN").size(), 1u);
  EXPECT_TRUE(out->TuplesOf("HOMEWIN").count(Value::MakeTuple(
      {{"team", Value::String("milan")}, {"margin", Value::Int(2)}})));
  // Cross-validate against the direct evaluator.
  OidGenerator gen;
  Evaluator evaluator(built->schema, built->program, &gen);
  auto direct = evaluator.Run(edb);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(out->TuplesOf("HOMEWIN"), direct->TuplesOf("HOMEWIN"));
}

TEST(BackendTest, NestedConstantSelection) {
  auto built = Build(
      "domains SCORE = (home: integer, guest: integer);"
      "associations GAME = (team: string, score: SCORE);"
      "             SHUTOUT = (team: string);",
      {"shutout(team: T) <- game(team: T, score: (guest: 0))."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  edb.InsertTuple("GAME", Value::MakeTuple(
      {{"team", Value::String("a")},
       {"score", Value::MakeTuple({{"home", Value::Int(1)},
                                   {"guest", Value::Int(0)}})}}));
  edb.InsertTuple("GAME", Value::MakeTuple(
      {{"team", Value::String("b")},
       {"score", Value::MakeTuple({{"home", Value::Int(2)},
                                   {"guest", Value::Int(2)}})}}));
  auto backend = AlgresBackend::Compile(built->schema, built->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto out = backend->Run(edb);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->TuplesOf("SHUTOUT").size(), 1u);
}

TEST(BackendTest, NestedHeadConstruction) {
  // The head rebuilds a nested value from flat inputs.
  auto built = Build(
      "domains SCORE = (home: integer, guest: integer);"
      "associations FLAT = (team: string, h: integer, g: integer);"
      "             GAME = (team: string, score: SCORE);",
      {"game(team: T, score: (home: H, guest: G)) <- "
       "flat(team: T, h: H, g: G)."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  edb.InsertTuple("FLAT", Value::MakeTuple(
      {{"team", Value::String("x")}, {"h", Value::Int(4)},
       {"g", Value::Int(2)}}));
  auto backend = AlgresBackend::Compile(built->schema, built->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto out = backend->Run(edb);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->TuplesOf("GAME").size(), 1u);
  const Value& game = *out->TuplesOf("GAME").begin();
  EXPECT_EQ(game.field("score").value().field("home").value(),
            Value::Int(4));
  // The evaluator agrees.
  OidGenerator gen;
  Evaluator evaluator(built->schema, built->program, &gen);
  auto direct = evaluator.Run(edb);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(out->TuplesOf("GAME"), direct->TuplesOf("GAME"));
}

TEST(BackendTest, RepeatedVariableAcrossNestedPaths) {
  // The same variable bound through a path and a direct column forces an
  // intra-literal equality.
  auto built = Build(
      "domains P = (v: integer);"
      "associations A = (x: integer, nest: P);"
      "             OUT = (x: integer);",
      {"out(x: X) <- a(x: X, nest: (v: X))."});
  ASSERT_TRUE(built.ok()) << built.status();
  Instance edb;
  auto row = [](int x, int v) {
    return Value::MakeTuple(
        {{"x", Value::Int(x)},
         {"nest", Value::MakeTuple({{"v", Value::Int(v)}})}});
  };
  edb.InsertTuple("A", row(1, 1));
  edb.InsertTuple("A", row(2, 3));
  auto backend = AlgresBackend::Compile(built->schema, built->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto out = backend->Run(edb);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->TuplesOf("OUT").size(), 1u);
  EXPECT_TRUE(out->TuplesOf("OUT").count(Value::MakeTuple(
      {{"x", Value::Int(1)}})));
}

TEST(BackendTest, RejectsDenials) {
  auto built = Build("associations P = (x: integer);",
                     {"<- p(x: X), X > 10."});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(AlgresBackend::Compile(built->schema, built->program)
                .status().code(),
            StatusCode::kNotImplemented);
}

}  // namespace
}  // namespace logres
