// Semantic tests for the inflationary evaluator (Appendix B): valuation
// domains, invented oids, deletions, negation and active domains,
// stratified vs whole-program evaluation, determinacy up to oid renaming.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/eval.h"
#include "core/parser.h"

namespace logres {
namespace {

// Helper: build a database from schema text, run rule text as RIDV, and
// return the database.
Result<Database> RunRules(const std::string& schema_text,
                          const std::string& rules_text,
                          std::vector<std::pair<std::string, Value>> edb,
                          EvalOptions options = {}) {
  LOGRES_ASSIGN_OR_RETURN(Database db, Database::Create(schema_text));
  for (auto& [assoc, tuple] : edb) {
    LOGRES_RETURN_NOT_OK(db.InsertTuple(assoc, std::move(tuple)));
  }
  LOGRES_ASSIGN_OR_RETURN(
      auto result,
      db.ApplySource("rules " + rules_text, ApplicationMode::kRIDV,
                     options));
  (void)result;
  return db;
}

Value T1(const std::string& label, int64_t v) {
  return Value::MakeTuple({{label, Value::Int(v)}});
}

TEST(EvalTest, FactsAndSimpleDerivation) {
  auto db = RunRules(
      "associations P = (x: integer); Q = (x: integer);",
      "p(x: 1). p(x: 2). q(x: X) <- p(x: X), X > 1.", {});
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->edb().TuplesOf("P").size(), 2u);
  EXPECT_EQ(db->edb().TuplesOf("Q").size(), 1u);
  EXPECT_TRUE(db->edb().TuplesOf("Q").count(T1("x", 2)));
}

TEST(EvalTest, RecursiveTransitiveClosure) {
  std::vector<std::pair<std::string, Value>> edb;
  for (int i = 1; i < 5; ++i) {
    edb.emplace_back("E", Value::MakeTuple(
        {{"a", Value::Int(i)}, {"b", Value::Int(i + 1)}}));
  }
  auto db = RunRules(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);",
      "tc(a: X, b: Y) <- e(a: X, b: Y)."
      "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).",
      std::move(edb));
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->edb().TuplesOf("TC").size(), 10u);  // C(5,2)
}

TEST(EvalTest, NegationStratified) {
  auto db = RunRules(
      "associations NODE = (x: integer); COV = (x: integer);"
      "             UNCOV = (x: integer);",
      "uncov(x: X) <- node(x: X), not cov(x: X).",
      {{"NODE", T1("x", 1)}, {"NODE", T1("x", 2)}, {"COV", T1("x", 1)}});
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->edb().TuplesOf("UNCOV").size(), 1u);
  EXPECT_TRUE(db->edb().TuplesOf("UNCOV").count(T1("x", 2)));
}

TEST(EvalTest, NegatedLiteralWithFreeVariableUsesActiveDomain) {
  // "variables which are only present in negated literals [are]
  // restricted to their current active domain."
  // q(y: Y) holds for Y in the active domain with no p-fact p(x: Y).
  auto db = RunRules(
      "associations P = (x: integer); D = (x: integer);"
      "             Q = (y: integer);",
      "q(y: Y) <- d(x: X), not p(x: Y).",
      {{"D", T1("x", 1)}, {"D", T1("x", 2)}, {"P", T1("x", 1)}});
  ASSERT_TRUE(db.ok()) << db.status();
  // Active domain of integers: {1, 2}. p(1) holds, p(2) does not.
  EXPECT_EQ(db->edb().TuplesOf("Q").size(), 1u);
  EXPECT_TRUE(db->edb().TuplesOf("Q").count(T1("y", 2)));
}

TEST(EvalTest, DeletionRemovesFacts) {
  auto db = RunRules(
      "associations P = (x: integer);",
      "not p(x: X) <- p(x: X), X > 1.",
      {{"P", T1("x", 1)}, {"P", T1("x", 2)}, {"P", T1("x", 3)}});
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->edb().TuplesOf("P").size(), 1u);
  EXPECT_TRUE(db->edb().TuplesOf("P").count(T1("x", 1)));
}

TEST(EvalTest, AddAndDeleteSameFactKeepsPreexisting) {
  // The VAR' carve-out: a fact in F ∩ Δ+ ∩ Δ− survives.
  auto db = RunRules(
      "associations P = (x: integer); S = (x: integer);",
      "p(x: 1) <- s(x: 1)."
      "not p(x: 1) <- s(x: 1).",
      {{"P", T1("x", 1)}, {"S", T1("x", 1)}});
  ASSERT_TRUE(db.ok()) << db.status();
  // p(1) was pre-existing, is both re-derived and deleted: stays.
  EXPECT_TRUE(db->edb().TuplesOf("P").count(T1("x", 1)));
}

TEST(EvalTest, AddAndDeleteOfNewFactDoesNotStick) {
  auto db = RunRules(
      "associations P = (x: integer); S = (x: integer);",
      "p(x: 2) <- s(x: 1)."
      "not p(x: 2) <- s(x: 1).",
      {{"S", T1("x", 1)}});
  ASSERT_TRUE(db.ok()) << db.status();
  // p(2) was not in F: net effect of add+delete is absence.
  EXPECT_FALSE(db->edb().TuplesOf("P").count(T1("x", 2)));
}

TEST(EvalTest, InventedOidsAreMemoizedAcrossSteps) {
  // One object per source fact, not one per step.
  auto db = RunRules(
      "classes OBJ = (x: integer); associations S = (x: integer);",
      "obj(self O, x: X) <- s(x: X).",
      {{"S", T1("x", 1)}, {"S", T1("x", 2)}});
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->edb().OidsOf("OBJ").size(), 2u);
}

TEST(EvalTest, ValuationDomainConditionBlocksRefiring) {
  // Once ip(emp, mgr) exists, no second object is invented for the same
  // bindings (Definition 7's head-satisfiability condition).
  auto db_result = Database::Create(
      "associations PAIR = (e: integer, m: integer);"
      "classes IP = PAIR;");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("PAIR", Value::MakeTuple(
      {{"e", Value::Int(1)}, {"m", Value::Int(2)}})).ok());
  // Apply the same module twice: the second application must not create
  // more objects.
  const char* mod = "rules ip(self X, C) <- pair(C).";
  ASSERT_TRUE(db.ApplySource(mod, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(db.edb().OidsOf("IP").size(), 1u);
  ASSERT_TRUE(db.ApplySource(mod, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(db.edb().OidsOf("IP").size(), 1u);
}

TEST(EvalTest, InterestingPairExample34) {
  // The paper's Example 3.4: pair as an association deduplicates; ip then
  // gets one object per distinct pair.
  auto db_result = Database::Create(R"(
    classes
      EMP = (name: string, works: integer);
      MGR = (name: string, dept: integer);
    associations
      PAIR = (employee: EMP, manager: MGR);
    classes
      IP = PAIR;
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  auto e1 = db.InsertObject("EMP", Value::MakeTuple(
      {{"name", Value::String("smith")}, {"works", Value::Int(1)}}));
  auto e2 = db.InsertObject("EMP", Value::MakeTuple(
      {{"name", Value::String("smith")}, {"works", Value::Int(1)}}));
  auto m = db.InsertObject("MGR", Value::MakeTuple(
      {{"name", Value::String("smith")}, {"dept", Value::Int(1)}}));
  ASSERT_TRUE(e1.ok() && e2.ok() && m.ok());
  auto apply = db.ApplySource(R"(
    rules
      pair(employee: E, manager: M) <-
          emp(self E, name: N, works: D), mgr(self M, name: N, dept: D).
      ip(self X, C) <- pair(C).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // Two distinct employees pair with the manager: two pairs, two objects.
  EXPECT_EQ(db.edb().TuplesOf("PAIR").size(), 2u);
  EXPECT_EQ(db.edb().OidsOf("IP").size(), 2u);
}

TEST(EvalTest, DeterminacyUpToOidRenaming) {
  // Two runs of the same inventing program produce isomorphic instances
  // even when the oid generators are offset (Appendix B determinacy).
  auto build = [](int burn) -> Instance {
    auto db_result = Database::Create(
        "classes OBJ = (x: integer); associations S = (x: integer);");
    Database db = std::move(db_result).value();
    for (int i = 0; i < burn; ++i) db.oid_generator()->Next();
    EXPECT_TRUE(db.InsertTuple("S", T1("x", 1)).ok());
    EXPECT_TRUE(db.InsertTuple("S", T1("x", 2)).ok());
    EXPECT_TRUE(db.ApplySource("rules obj(self O, x: X) <- s(x: X).",
                               ApplicationMode::kRIDV).ok());
    return db.edb();
  };
  Instance a = build(0);
  Instance b = build(10);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a.IsomorphicTo(b));
}

TEST(EvalTest, StratifiedEqualsWholeProgramOnStratifiedInput) {
  std::vector<std::pair<std::string, Value>> edb = {
      {"NODE", T1("x", 1)}, {"NODE", T1("x", 2)}, {"COV", T1("x", 1)}};
  const char* schema =
      "associations NODE = (x: integer); COV = (x: integer);"
      "             UNCOV = (x: integer);";
  const char* rules = "uncov(x: X) <- node(x: X), not cov(x: X).";
  EvalOptions strat;
  strat.mode = EvalMode::kStratified;
  EvalOptions whole;
  whole.mode = EvalMode::kWholeInflationary;
  auto a = RunRules(schema, rules, edb, strat);
  auto b = RunRules(schema, rules, edb, whole);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->edb() == b->edb());
}

TEST(EvalTest, SemiNaiveMatchesNaiveOnRecursion) {
  std::vector<std::pair<std::string, Value>> edb;
  for (int i = 1; i < 8; ++i) {
    edb.emplace_back("E", Value::MakeTuple(
        {{"a", Value::Int(i)}, {"b", Value::Int(i + 1)}}));
  }
  const char* schema =
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);";
  const char* rules =
      "tc(a: X, b: Y) <- e(a: X, b: Y)."
      "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).";
  EvalOptions with;
  with.semi_naive = true;
  EvalOptions without;
  without.semi_naive = false;
  auto a = RunRules(schema, rules, edb, with);
  auto b = RunRules(schema, rules, edb, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->edb() == b->edb());
  EXPECT_EQ(a->edb().TuplesOf("TC").size(), 28u);
}

TEST(EvalTest, NonInflationaryReplacementSemantics) {
  // Under replacement semantics derived facts must re-derive each step;
  // a plain projection converges to EDB + its image.
  auto db_result = Database::Create(
      "associations P = (x: integer); Q = (x: integer);");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("P", T1("x", 1)).ok());
  EvalOptions options;
  options.mode = EvalMode::kNonInflationary;
  auto apply = db.ApplySource("rules q(x: X) <- p(x: X).",
                              ApplicationMode::kRIDV, options);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_TRUE(db.edb().TuplesOf("Q").count(T1("x", 1)));
}

TEST(EvalTest, DivergenceGuard) {
  // A counter that never converges trips the step budget.
  EvalOptions options;
  options.budget.max_steps = 25;
  auto db = RunRules(
      "associations P = (x: integer);",
      "p(x: Y) <- p(x: X), Y = X + 1.",
      {{"P", T1("x", 0)}}, options);
  EXPECT_EQ(db.status().code(), StatusCode::kDivergence);
}

TEST(EvalTest, DenialViolationRejectsApplication) {
  auto db = RunRules(
      "associations MARRIED = (p: integer); DIVORCED = (p: integer);",
      "married(p: 1). divorced(p: 1). <- married(p: X), divorced(p: X).",
      {});
  EXPECT_EQ(db.status().code(), StatusCode::kConstraintViolation);
}

TEST(EvalTest, DenialPassesWhenUnsatisfied) {
  auto db = RunRules(
      "associations MARRIED = (p: integer); DIVORCED = (p: integer);",
      "married(p: 1). divorced(p: 2). <- married(p: X), divorced(p: X).",
      {});
  EXPECT_TRUE(db.ok()) << db.status();
}

TEST(EvalTest, GoalAnswering) {
  auto db = RunRules(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);",
      "tc(a: X, b: Y) <- e(a: X, b: Y)."
      "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).",
      {{"E", Value::MakeTuple({{"a", Value::Int(1)},
                               {"b", Value::Int(2)}})},
       {"E", Value::MakeTuple({{"a", Value::Int(2)},
                               {"b", Value::Int(3)}})}});
  ASSERT_TRUE(db.ok());
  auto ans = db->Query("? tc(a: 1, b: Y).");
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->size(), 2u);  // Y = 2, 3
  auto none = db->Query("? tc(a: 3, b: Y).");
  EXPECT_TRUE(none->empty());
}

TEST(EvalTest, ObjectPatternDereferencesOid) {
  // Example 3.1 line 5: school(dean: (self X)).
  auto db_result = Database::Create(R"(
    classes
      PROFESSOR = (name: string);
      SCHOOL = (sname: string, dean: PROFESSOR);
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  auto prof = db.InsertObject("PROFESSOR",
      Value::MakeTuple({{"name", Value::String("dr")}}));
  ASSERT_TRUE(prof.ok());
  ASSERT_TRUE(db.InsertObject("SCHOOL",
      Value::MakeTuple({{"sname", Value::String("polimi")},
                        {"dean", Value::MakeOid(*prof)}})).ok());
  auto ans = db.Query("? school(dean: (self X, name: N)).");
  ASSERT_TRUE(ans.ok()) << ans.status();
  ASSERT_EQ(ans->size(), 1u);
  EXPECT_EQ(ans->front().at("N"), Value::String("dr"));
  EXPECT_EQ(ans->front().at("X"), Value::MakeOid(*prof));
}

TEST(EvalTest, TupleVariableUnifiesWithOidField) {
  // Section 3.1: pair(X, X) via tuple variables against association
  // oid-valued fields.
  auto db_result = Database::Create(R"(
    classes
      PROFESSOR = (name: string);
      STUDENT = (name: string);
    associations
      ADVISES = (professor: PROFESSOR, student: STUDENT);
      PAIR = (p_name: string, s_name: string);
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  auto p = db.InsertObject("PROFESSOR",
      Value::MakeTuple({{"name", Value::String("kim")}}));
  auto st = db.InsertObject("STUDENT",
      Value::MakeTuple({{"name", Value::String("kim")}}));
  ASSERT_TRUE(p.ok() && st.ok());
  ASSERT_TRUE(db.InsertTuple("ADVISES", Value::MakeTuple(
      {{"professor", Value::MakeOid(*p)},
       {"student", Value::MakeOid(*st)}})).ok());
  auto apply = db.ApplySource(R"(
    rules
      pair(p_name: X, s_name: X) <-
          professor(X1, name: X), student(Y1, name: X),
          advises(professor: X1, student: Y1).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_EQ(db.edb().TuplesOf("PAIR").size(), 1u);
}

TEST(EvalTest, IsaPropagationOnDerivedObjects) {
  // Deriving into a subclass also populates the superclass (Def. 4a is
  // maintained natively).
  auto db = RunRules(
      "classes PERSON = (name: string);"
      "        STUDENT = (PERSON, school: string);"
      "        STUDENT isa PERSON;"
      "associations SRC = (n: string);",
      "student(self S, name: N, school: \"x\") <- src(n: N).",
      {{"SRC", Value::MakeTuple({{"n", Value::String("ann")}})}});
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->edb().OidsOf("STUDENT").size(), 1u);
  EXPECT_EQ(db->edb().OidsOf("PERSON").size(), 1u);
}

TEST(EvalTest, GeneralizationCaseAUnrelatedClassesCopyValues) {
  // Section 3.1 case (a): C1(Y) <- C2(X) with unrelated classes copies
  // values under fresh oids.
  auto db = RunRules(
      "classes A = (x: integer); B = (x: integer);",
      "a(self Y, x: V) <- b(self X, x: V).", {});
  ASSERT_TRUE(db.ok()) << db.status();
  Database database = std::move(db).value();
  ASSERT_TRUE(database.InsertObject("B", T1("x", 7)).ok());
  ASSERT_TRUE(database.ApplySource(
      "rules a(self Y, x: V) <- b(self X, x: V).",
      ApplicationMode::kRIDV).ok());
  ASSERT_EQ(database.edb().OidsOf("A").size(), 1u);
  ASSERT_EQ(database.edb().OidsOf("B").size(), 1u);
  Oid a_oid = *database.edb().OidsOf("A").begin();
  Oid b_oid = *database.edb().OidsOf("B").begin();
  EXPECT_NE(a_oid, b_oid);
  EXPECT_EQ(database.edb().OValue(a_oid).value().field("x").value(),
            Value::Int(7));
}

TEST(EvalTest, StatsAreReported) {
  auto db_result = Database::Create(
      "associations P = (x: integer); Q = (x: integer);");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("P", T1("x", 1)).ok());
  auto apply = db.ApplySource("rules q(x: X) <- p(x: X).",
                              ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok());
  EXPECT_GE(apply->stats.steps, 1u);
  EXPECT_GE(apply->stats.rule_firings, 1u);
}

}  // namespace
}  // namespace logres
