// Tests for database state serialization: value syntax, schema
// round-tripping, and full dump/load equality.

#include <gtest/gtest.h>

#include "algres/relation.h"
#include "core/database.h"
#include "core/dump.h"
#include "core/module.h"
#include "core/parser.h"

namespace logres {
namespace {

TEST(ValueSyntaxTest, ScalarRoundTrip) {
  std::vector<Value> values = {
      Value::Nil(),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int(42),
      Value::Int(-7),
      Value::Real(2.5),
      Value::String("hello \"world\""),
      Value::MakeOid(Oid{9}),
  };
  for (const Value& v : values) {
    auto parsed = ParseValue(ValueToSource(v));
    ASSERT_TRUE(parsed.ok()) << ValueToSource(v) << ": "
                             << parsed.status();
    EXPECT_EQ(*parsed, v) << ValueToSource(v);
  }
}

TEST(ValueSyntaxTest, CompositeRoundTrip) {
  Value nested = Value::MakeTuple(
      {{"who", Value::MakeOid(Oid{3})},
       {"tags", Value::MakeSet({Value::Int(1), Value::Int(2)})},
       {"history", Value::MakeSequence(
           {Value::MakeTuple({{"at", Value::String("t1")}}),
            Value::MakeTuple({{"at", Value::String("t2")}})})},
       {"bag", Value::MakeMultiset({Value::Int(1), Value::Int(1)})}});
  auto parsed = ParseValue(ValueToSource(nested));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, nested);
}

TEST(ValueSyntaxTest, Errors) {
  EXPECT_FALSE(ParseValue("oid(x)").ok());
  EXPECT_FALSE(ParseValue("(unlabeled)").ok());
  EXPECT_FALSE(ParseValue("1 2").ok());
  EXPECT_FALSE(ParseValue("{1,").ok());
}

TEST(SchemaSourceTest, RoundTripsThroughParser) {
  auto unit = Parse(R"(
    domains
      NAME = string;
      SCORE = (home: integer, guest: integer);
    classes
      PERSON = (name: NAME);
      STUDENT = (PERSON, school: NAME);
      STUDENT isa PERSON;
    associations
      LIKES = (who: PERSON, what: NAME);
  )");
  ASSERT_TRUE(unit.ok());
  std::string source = SchemaToSource(unit->schema);
  auto reparsed = Parse(source);
  ASSERT_TRUE(reparsed.ok()) << source << "\n" << reparsed.status();
  EXPECT_TRUE(reparsed->schema.Validate().ok());
  EXPECT_TRUE(reparsed->schema.IsClass("STUDENT"));
  EXPECT_TRUE(reparsed->schema.IsaReachable("STUDENT", "PERSON"));
  EXPECT_EQ(reparsed->schema.TypeOf("SCORE").value(),
            unit->schema.TypeOf("SCORE").value());
  // Idempotent: dumping the reparsed schema gives the same text.
  EXPECT_EQ(SchemaToSource(reparsed->schema), source);
}

Database PopulatedDb() {
  auto db_result = Database::Create(R"(
    classes
      PERSON = (name: string, spouse: PERSON);
      STUDENT = (PERSON, school: string);
      STUDENT isa PERSON;
    associations
      LIKES = (who: PERSON, what: string);
    functions
      FRIENDS: PERSON -> {PERSON};
    rules
      likes(who: X, what: "logres") <- student(self X).
  )");
  Database db = std::move(db_result).value();
  Oid ann = db.InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("ann")}, {"spouse", Value::Nil()}})).value();
  Oid bob = db.InsertObject("STUDENT", Value::MakeTuple(
      {{"name", Value::String("bob")},
       {"spouse", Value::MakeOid(ann)},
       {"school", Value::String("polimi")}})).value();
  db.mutable_edb()->InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(bob)}, {"what", Value::String("jazz")}}));
  return db;
}

TEST(DumpTest, FullRoundTrip) {
  Database db = PopulatedDb();
  std::string dump = DumpDatabase(db);
  auto loaded = LoadDatabase(dump);
  ASSERT_TRUE(loaded.ok()) << dump << "\n" << loaded.status();
  // State components are preserved exactly.
  EXPECT_TRUE(loaded->edb() == db.edb());
  EXPECT_EQ(loaded->rules().size(), db.rules().size());
  EXPECT_EQ(loaded->functions().size(), db.functions().size());
  EXPECT_EQ(loaded->oids_issued(), db.oids_issued());
  EXPECT_EQ(SchemaToSource(loaded->schema()), SchemaToSource(db.schema()));
}

TEST(DumpTest, DumpIsCanonicalUnderInsertionOrder) {
  // Relation/instance storage is insertion-ordered with hash buckets, but
  // every dump surface iterates in canonical sorted order — the same data
  // inserted in any order must produce byte-identical text.
  auto make = [](bool reversed) {
    auto db_result = Database::Create(
        "associations E = (a: integer, b: integer);");
    Database db = std::move(db_result).value();
    for (int i = 0; i < 12; ++i) {
      int v = reversed ? 11 - i : i;
      db.mutable_edb()->InsertTuple(
          "E", Value::MakeTuple({{"a", Value::Int(v % 5)},
                                 {"b", Value::Int(v)}}));
    }
    return db;
  };
  Database forward = make(false);
  Database backward = make(true);
  EXPECT_EQ(DumpDatabase(forward), DumpDatabase(backward));
  EXPECT_EQ(forward.edb().ToString(), backward.edb().ToString());

  // The same canonical-order contract holds for algres relations: rows
  // come back sorted no matter how they went in.
  algres::Relation fwd({"a"}), bwd({"a"});
  for (int i = 0; i < 10; ++i) {
    (void)fwd.Insert({Value::Int(i)});
    (void)bwd.Insert({Value::Int(9 - i)});
  }
  EXPECT_EQ(fwd.ToString(), bwd.ToString());
  auto canon = fwd.CanonicalRows();
  for (size_t i = 1; i < canon.size(); ++i) {
    EXPECT_TRUE(*canon[i - 1] < *canon[i]);
  }
}

TEST(DumpTest, LoadedDatabaseEvaluates) {
  Database db = PopulatedDb();
  auto loaded = LoadDatabase(DumpDatabase(db));
  ASSERT_TRUE(loaded.ok());
  // The persistent rule still derives: bob (a student) likes logres.
  auto inst = loaded->Materialize();
  ASSERT_TRUE(inst.ok()) << inst.status();
  EXPECT_EQ(inst->TuplesOf("LIKES").size(), 2u);
}

TEST(DumpTest, InventedOidsDoNotCollideAfterLoad) {
  Database db = PopulatedDb();
  auto loaded = LoadDatabase(DumpDatabase(db));
  ASSERT_TRUE(loaded.ok());
  // Invent new objects; their oids must not collide with loaded ones.
  auto apply = loaded->ApplySource(
      "rules person(self P, name: \"carl\", spouse: X) <- "
      "person(self X, name: \"ann\").",
      ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_EQ(loaded->edb().OidsOf("PERSON").size(), 3u);
}

TEST(DumpTest, MembershipLinesPreserveSharedOids) {
  Database db = PopulatedDb();
  std::string dump = DumpDatabase(db);
  // bob's oid appears for both PERSON and STUDENT.
  auto loaded = LoadDatabase(dump);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->edb().OidsOf("PERSON").size(), 2u);
  EXPECT_EQ(loaded->edb().OidsOf("STUDENT").size(), 1u);
  Oid student = *loaded->edb().OidsOf("STUDENT").begin();
  EXPECT_TRUE(loaded->edb().HasObject("PERSON", student));
}

TEST(DumpTest, EmptyDatabaseRoundTrips) {
  auto db = Database::Create("associations P = (x: integer);");
  std::string dump = DumpDatabase(*db);
  auto loaded = LoadDatabase(dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->edb() == db->edb());
}

TEST(DumpTest, MalformedDumpsRejected) {
  EXPECT_FALSE(LoadDatabase("objects\n  GHOST 1 = nil;\n").ok());
  EXPECT_FALSE(LoadDatabase("generator x;\n").ok());
  EXPECT_FALSE(LoadDatabase("tuples\n  1 2 3\n").ok());
}

// ---------------------------------------------------------------------------
// Dump format v2: `module` blocks make the registry durable.

const char* kSourceWithModules = R"(
  classes PERSON = (name: string);
  associations
    SEED = (name: string);
    KNOWS = (a: string, b: string);
  module grow options RIDV semantics stratified
    rules
      seed(name: "zoe").
      person(self P, name: N) <- seed(name: N).
  end
  module link options RIDV
    rules
      knows(a: "ann", b: "bob").
  end
)";

TEST(DumpTest, V2HeaderAndModuleBlocksAreEmitted) {
  auto db = Database::Create(kSourceWithModules);
  ASSERT_TRUE(db.ok()) << db.status();
  std::string dump = DumpDatabase(*db);
  EXPECT_EQ(dump.rfind("-- logres dump v2", 0), 0u) << dump;
  EXPECT_NE(dump.find("module grow options RIDV"), std::string::npos);
  EXPECT_NE(dump.find("module link"), std::string::npos);
}

TEST(DumpTest, RegisteredModulesRoundTripThroughDumpLoad) {
  auto db = Database::Create(kSourceWithModules);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->ApplyByName("grow").ok());

  auto loaded = LoadDatabase(DumpDatabase(*db));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->registered_modules().size(), 2u);
  EXPECT_EQ(loaded->registered_modules()[0].name, "grow");
  EXPECT_EQ(loaded->registered_modules()[0].default_mode,
            ApplicationMode::kRIDV);
  EXPECT_EQ(loaded->registered_modules()[1].name, "link");
  EXPECT_EQ(DumpDatabase(*loaded), DumpDatabase(*db));

  // The reloaded registry still drives applications; "grow" is
  // idempotent on its own output (the seed is already present), "link"
  // adds its tuple.
  ASSERT_TRUE(loaded->ApplyByName("link").ok());
  EXPECT_NE(DumpDatabase(*loaded), DumpDatabase(*db));
}

TEST(DumpTest, ModuleToSourceReparsesAsTheSameModule) {
  auto db = Database::Create(kSourceWithModules);
  ASSERT_TRUE(db.ok()) << db.status();
  for (const Module& m : db->registered_modules()) {
    std::string src = ModuleToSource(m);
    auto reparsed = Module::Parse(src);
    ASSERT_TRUE(reparsed.ok()) << src << "\n" << reparsed.status();
    EXPECT_EQ(ModuleToSource(*reparsed), src);
  }
}

TEST(DumpTest, V1DumpsWithoutModulesStillLoad) {
  auto db = Database::Create(R"(
    associations KNOWS = (a: string, b: string);
  )");
  ASSERT_TRUE(db.ok()) << db.status();
  std::string dump = DumpDatabase(*db);
  // Strip the version header comment; a v1 dump never had one.
  size_t eol = dump.find('\n');
  ASSERT_NE(eol, std::string::npos);
  std::string v1 = dump.substr(eol + 1);
  auto loaded = LoadDatabase(v1);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->registered_modules().empty());
}

}  // namespace
}  // namespace logres
