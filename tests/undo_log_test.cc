// Property battery for the undo log (DESIGN.md §10): random mutation
// sequences applied to an Instance under an UndoLog, then rolled back,
// must leave the instance byte-identical to its pre-apply dump — the
// contract the fixpoint loop and Database::Apply rely on now that
// neither copies the instance per step. "Byte-identical" is checked
// three ways: structural operator== (which observes the empty pi/rho
// map keys the historical operator[] paths create), ToString(), and —
// at the Database level — DumpDatabase round-trips. The battery also
// pins the two deliberate asymmetries: the oid generator is never
// rewound, and index caches are invalidated (not restored) so cached
// access paths answer for the restored state.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dump.h"
#include "core/instance.h"
#include "core/undo_log.h"

namespace logres {
namespace {

Schema TestSchema() {
  Schema s;
  EXPECT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareClass("STUDENT",
      Type::Tuple({{"name", Type::String()},
                   {"school", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareIsa("STUDENT", "PERSON").ok());
  EXPECT_TRUE(s.DeclareAssociation("LIKES",
      Type::Tuple({{"who", Type::Named("PERSON")},
                   {"what", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareAssociation("EDGE",
      Type::Tuple({{"a", Type::Int()},
                   {"b", Type::Int()}})).ok());
  EXPECT_TRUE(s.Validate().ok());
  return s;
}

Value PersonValue(int tag) {
  return Value::MakeTuple({{"name", Value::String("p" + std::to_string(tag))}});
}

Value StudentValue(int tag) {
  return Value::MakeTuple(
      {{"name", Value::String("s" + std::to_string(tag))},
       {"school", Value::String("school" + std::to_string(tag % 3))}});
}

Value EdgeValue(int a, int b) {
  return Value::MakeTuple({{"a", Value::Int(a)}, {"b", Value::Int(b)}});
}

// One random elementary mutation against `inst`, recorded in `undo`.
// Draws oids from `pool` (live and dead mixed, so removes/adopts hit
// both present and absent targets — the interesting undo records).
void RandomOp(std::mt19937* rng, const Schema& schema, Instance* inst,
              OidGenerator* gen, std::vector<Oid>* pool, UndoLog* undo) {
  std::uniform_int_distribution<int> pick(0, 6);
  std::uniform_int_distribution<int> tag(0, 9);
  auto pool_oid = [&]() -> Oid {
    if (pool->empty()) return Oid{9999};
    std::uniform_int_distribution<size_t> at(0, pool->size() - 1);
    return (*pool)[at(*rng)];
  };
  switch (pick(*rng)) {
    case 0: {
      const char* cls = tag(*rng) < 5 ? "PERSON" : "STUDENT";
      Value v = cls[0] == 'P' ? PersonValue(tag(*rng))
                              : StudentValue(tag(*rng));
      auto oid = inst->CreateObject(schema, cls, std::move(v), gen, undo);
      ASSERT_TRUE(oid.ok());
      pool->push_back(*oid);
      break;
    }
    case 1: {
      // Adopt may re-adopt a live oid (pure o-value overwrite) or
      // resurrect a dead one.
      const char* cls = tag(*rng) < 5 ? "PERSON" : "STUDENT";
      Value v = cls[0] == 'P' ? PersonValue(tag(*rng))
                              : StudentValue(tag(*rng));
      ASSERT_TRUE(
          inst->AdoptObject(schema, cls, pool_oid(), std::move(v), undo)
              .ok());
      break;
    }
    case 2:
      ASSERT_TRUE(
          inst->RemoveObject(schema, tag(*rng) < 5 ? "PERSON" : "STUDENT",
                             pool_oid(), undo)
              .ok());
      break;
    case 3: {
      Oid oid = pool_oid();
      // SetOValue errors on dead oids; that is fine — an op that fails
      // must record nothing, which the rollback equality also checks.
      (void)inst->SetOValue(oid, PersonValue(tag(*rng)), undo);
      break;
    }
    case 4:
      inst->InsertTuple("EDGE", EdgeValue(tag(*rng), tag(*rng)), undo);
      break;
    case 5:
      inst->EraseTuple("EDGE", EdgeValue(tag(*rng), tag(*rng)), undo);
      break;
    case 6:
      inst->InsertTuple(
          "LIKES",
          Value::MakeTuple({{"who", Value::MakeOid(pool_oid())},
                            {"what", Value::String("x")}}),
          undo);
      break;
  }
}

class UndoRollbackProperty : public ::testing::TestWithParam<int> {};

TEST_P(UndoRollbackProperty, ApplyThenRollbackRestoresDump) {
  std::mt19937 rng(GetParam());
  Schema schema = TestSchema();
  Instance inst;
  OidGenerator gen;
  std::vector<Oid> pool;

  // A random base state, built without recording.
  for (int i = 0; i < 12; ++i) {
    RandomOp(&rng, schema, &inst, &gen, &pool, nullptr);
  }

  const Instance base_copy = inst;  // structural reference
  const std::string base_dump = inst.ToString();
  const uint64_t oids_before = gen.issued();

  // Warm index caches so rollback's invalidation is exercised, not
  // bypassed.
  (void)inst.AssocIndex("EDGE", "a");
  (void)inst.ClassIndex("PERSON", "name");

  UndoLog undo;
  for (int i = 0; i < 40; ++i) {
    RandomOp(&rng, schema, &inst, &gen, &pool, &undo);
    if (i == 19) {
      // Mid-sequence: probe indexes so later records must re-invalidate.
      (void)inst.AssocIndex("EDGE", "b");
      (void)inst.ClassIndex("STUDENT", "name");
    }
  }

  inst.RollbackTo(&undo, 0);

  EXPECT_TRUE(inst == base_copy) << "seed " << GetParam();
  EXPECT_EQ(inst.ToString(), base_dump) << "seed " << GetParam();
  EXPECT_EQ(undo.size(), 0u);

  // The oid generator is deliberately NOT rewound (consumed oids are
  // never reused), and post-rollback creation still works and yields a
  // fresh oid beyond everything the rolled-back ops consumed.
  EXPECT_GE(gen.issued(), oids_before);
  auto fresh = inst.CreateObject(schema, "PERSON", PersonValue(0), &gen);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->id, 0u);
  for (Oid o : pool) EXPECT_NE(fresh->id, o.id);

  // Index caches answer for the restored state: probe results must
  // match a cold instance with identical contents.
  Instance cold = base_copy;
  (void)cold.CreateObject(schema, "PERSON", PersonValue(0), &gen).value();
  for (const char* label : {"a", "b"}) {
    EXPECT_EQ(inst.AssocIndex("EDGE", label).size(),
              cold.AssocIndex("EDGE", label).size());
  }
  for (const char* cls : {"PERSON", "STUDENT"}) {
    EXPECT_EQ(inst.ClassIndex(cls, "name").size(),
              cold.ClassIndex(cls, "name").size());
  }
}

TEST_P(UndoRollbackProperty, PartialRollbackRestoresMidState) {
  std::mt19937 rng(GetParam() + 1000);
  Schema schema = TestSchema();
  Instance inst;
  OidGenerator gen;
  std::vector<Oid> pool;
  UndoLog undo;

  for (int i = 0; i < 15; ++i) {
    RandomOp(&rng, schema, &inst, &gen, &pool, &undo);
  }
  const size_t mark = undo.size();
  const Instance mid_copy = inst;
  const std::string mid_dump = inst.ToString();

  for (int i = 0; i < 25; ++i) {
    RandomOp(&rng, schema, &inst, &gen, &pool, &undo);
  }

  // Rolling back to the mark restores the mid state and keeps the
  // prefix of the log intact (a nested window can still roll it back).
  inst.RollbackTo(&undo, mark);
  EXPECT_TRUE(inst == mid_copy) << "seed " << GetParam();
  EXPECT_EQ(inst.ToString(), mid_dump);
  EXPECT_EQ(undo.size(), mark);

  inst.RollbackTo(&undo, 0);
  EXPECT_EQ(inst.ToString(), Instance().ToString());
  EXPECT_TRUE(inst == Instance() ||
              !inst.class_oids().empty() ||  // pre-existing empty keys
              !inst.associations().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UndoRollbackProperty,
                         ::testing::Range(0, 24));

TEST(UndoLogTest, EmptyKeyCreationIsUndone) {
  // The historical operator[] quirk: removing an absent object still
  // creates the empty pi keys for the class and all its subclasses, and
  // operator== observes them. Insert-then-erase likewise leaves an
  // empty rho key behind. The undo log must reproduce — and undo —
  // exactly that.
  Schema schema = TestSchema();
  Instance inst;
  const Instance empty_copy = inst;
  UndoLog undo;

  ASSERT_TRUE(inst.RemoveObject(schema, "PERSON", Oid{7}, &undo).ok());
  EXPECT_TRUE(inst.InsertTuple("EDGE", EdgeValue(1, 2), &undo));
  EXPECT_TRUE(inst.EraseTuple("EDGE", EdgeValue(1, 2), &undo));
  // All created empty keys; the instance is no longer structurally
  // equal to the pristine one.
  EXPECT_FALSE(inst == empty_copy);
  EXPECT_EQ(inst.class_oids().count("PERSON"), 1u);
  EXPECT_EQ(inst.class_oids().count("STUDENT"), 1u);
  EXPECT_EQ(inst.associations().count("EDGE"), 1u);
  EXPECT_TRUE(inst.TuplesOf("EDGE").empty());

  inst.RollbackTo(&undo, 0);
  EXPECT_TRUE(inst == empty_copy);
  EXPECT_EQ(inst.class_oids().count("PERSON"), 0u);
  EXPECT_EQ(inst.class_oids().count("STUDENT"), 0u);
  EXPECT_EQ(inst.associations().count("EDGE"), 0u);
}

TEST(UndoLogTest, PreImageTrackerAnswersPreStepQueries) {
  Schema schema = TestSchema();
  Instance inst;
  OidGenerator gen;
  Oid ann = inst.CreateObject(schema, "PERSON", PersonValue(1), &gen).value();
  inst.InsertTuple("EDGE", EdgeValue(1, 2));

  UndoLog undo;
  PreImageTracker pre(&undo, 0);

  // Mutate: overwrite ann's value, remove ann, insert a tuple, erase the
  // pre-existing one.
  ASSERT_TRUE(inst.SetOValue(ann, PersonValue(9), &undo).ok());
  ASSERT_TRUE(inst.RemoveObject(schema, "PERSON", ann, &undo).ok());
  inst.InsertTuple("EDGE", EdgeValue(3, 4), &undo);
  inst.EraseTuple("EDGE", EdgeValue(1, 2), &undo);

  // The tracker answers against the pre-step state...
  EXPECT_TRUE(pre.Member(inst, "PERSON", ann));
  ASSERT_TRUE(pre.OValue(inst, ann).has_value());
  EXPECT_TRUE(*pre.OValue(inst, ann) == PersonValue(1));
  EXPECT_TRUE(pre.Tuple(inst, "EDGE", EdgeValue(1, 2)));
  EXPECT_FALSE(pre.Tuple(inst, "EDGE", EdgeValue(3, 4)));
  // ...and falls through to the live instance for untouched items.
  EXPECT_FALSE(pre.Member(inst, "STUDENT", ann));

  // The canonical diff captures exactly the net change.
  NetDiff diff = pre.Diff(inst);
  EXPECT_FALSE(diff.Empty());
  EXPECT_EQ(diff.members.at({"PERSON", ann}), false);
  EXPECT_EQ(diff.tuples.at({"EDGE", EdgeValue(3, 4)}), true);
  EXPECT_EQ(diff.tuples.at({"EDGE", EdgeValue(1, 2)}), false);
}

TEST(UndoLogTest, NetDiffIsEmptyWhenOpsCancel) {
  Schema schema = TestSchema();
  Instance inst;
  inst.InsertTuple("EDGE", EdgeValue(0, 0));  // EDGE key pre-exists

  UndoLog undo;
  PreImageTracker pre(&undo, 0);
  inst.InsertTuple("EDGE", EdgeValue(5, 6), &undo);
  inst.EraseTuple("EDGE", EdgeValue(5, 6), &undo);
  EXPECT_TRUE(pre.Diff(inst).Empty());
  EXPECT_FALSE(pre.Changed(inst));

  // But a step that only creates empty pi keys (RemoveObject of an
  // absent oid) is a net change — the old copy-and-compare loop saw
  // `next != F` for it too.
  UndoLog undo2;
  PreImageTracker pre2(&undo2, 0);
  ASSERT_TRUE(inst.RemoveObject(schema, "PERSON", Oid{42}, &undo2).ok());
  EXPECT_FALSE(pre2.Diff(inst).Empty());
}

TEST(UndoLogTest, DatabaseRejectedApplyRestoresDumpExactly) {
  auto db = Database::Create(R"(
    classes PERSON = (name: string);
    associations SEED = (n: integer); KNOWS = (a: integer, b: integer);
  )");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->InsertTuple("SEED", Value::MakeTuple(
      {{"n", Value::Int(0)}})).ok());
  ASSERT_TRUE(db->InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("ann")}})).ok());
  const std::string before = DumpDatabase(*db);
  const uint64_t oids_before = db->oids_issued();

  // A diverging module: budget exhaustion forces the rollback path.
  EvalOptions tight;
  tight.budget.max_steps = 3;
  auto result = db->ApplySource(
      "rules seed(n: M) <- seed(n: N), M = N + 1.",
      ApplicationMode::kRIDV, tight);
  EXPECT_EQ(result.status().code(), StatusCode::kDivergence);

  // The dump — schema, rules, EDB, and generator position — must be
  // byte-identical; the rejected application consumed no oids here (the
  // module invents none), so even the generator line matches.
  EXPECT_EQ(DumpDatabase(*db), before);
  EXPECT_EQ(db->oids_issued(), oids_before);

  // An inventing module that fails AFTER inventing: state restores
  // byte-identically except the generator line, exactly as the old
  // deep-copy snapshot behaved.
  auto result2 = db->ApplySource(R"(
    rules
      person(self X, name: "ghost") <- seed(n: 0).
      knows(a: M, b: M) <- knows(a: N, b: N), M = N + 1.
      knows(a: 0, b: 0) <- seed(n: 0).
  )", ApplicationMode::kRIDV, tight);
  EXPECT_EQ(result2.status().code(), StatusCode::kDivergence);
  EXPECT_GT(db->oids_issued(), oids_before);
  // Everything but the generator position restored.
  Database fresh = std::move(LoadDatabase(before)).value();
  EXPECT_TRUE(db->edb() == fresh.edb());

  // And the database still accepts a commit after rolling back.
  auto ok = db->ApplySource("rules seed(n: 1) <- seed(n: 0).",
                            ApplicationMode::kRIDV);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(db->edb().TuplesOf("SEED").count(
      Value::MakeTuple({{"n", Value::Int(1)}})) > 0);
}

TEST(UndoLogTest, NestedSnapshotWindowsRestoreLifo) {
  // The journaled store wraps Apply's internal snapshot in its own, so
  // two windows can be open at once; inner restores must not disturb
  // the outer window's rollback point.
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok());
  const std::string state0 = DumpDatabase(*db);

  Database::Snapshot outer = db->TakeSnapshot();
  ASSERT_TRUE(db->InsertTuple("P", Value::MakeTuple(
      {{"x", Value::Int(1)}})).ok());
  const std::string state1 = DumpDatabase(*db);

  {
    Database::Snapshot inner = db->TakeSnapshot();
    ASSERT_TRUE(db->InsertTuple("P", Value::MakeTuple(
        {{"x", Value::Int(2)}})).ok());
    db->RestoreSnapshot(std::move(inner));
    EXPECT_EQ(DumpDatabase(*db), state1);
  }

  // A released (committed) inner window keeps later writes.
  {
    Database::Snapshot inner = db->TakeSnapshot();
    ASSERT_TRUE(db->InsertTuple("P", Value::MakeTuple(
        {{"x", Value::Int(3)}})).ok());
  }
  EXPECT_NE(DumpDatabase(*db), state1);

  db->RestoreSnapshot(std::move(outer));
  EXPECT_EQ(DumpDatabase(*db), state0);
}

TEST(UndoLogTest, DatabaseCopyStartsWithEmptyRollbackMachinery) {
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok());
  Database::Snapshot snap = db->TakeSnapshot();
  ASSERT_TRUE(db->InsertTuple("P", Value::MakeTuple(
      {{"x", Value::Int(1)}})).ok());

  // Copying mid-window captures the live state; the copy has no
  // outstanding marks, and restoring the original does not affect it.
  Database copy = *db;
  const std::string copied = DumpDatabase(copy);
  db->RestoreSnapshot(std::move(snap));
  EXPECT_EQ(DumpDatabase(copy), copied);
  EXPECT_NE(DumpDatabase(*db), copied);
}

}  // namespace
}  // namespace logres
