// Tests for automatically generated integrity constraints (Section 2.1 /
// 4.2): referential denials from type equations and isa propagation.

#include <gtest/gtest.h>

#include "core/constraint.h"
#include "core/database.h"

namespace logres {
namespace {

Schema RefSchema() {
  Schema s;
  EXPECT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()},
                   {"spouse", Type::Named("PERSON")}})).ok());
  EXPECT_TRUE(s.DeclareClass("STUDENT",
      Type::Tuple({{"person", Type::Named("PERSON")},
                   {"school", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareIsa("STUDENT", "PERSON").ok());
  EXPECT_TRUE(s.DeclareAssociation("LIKES",
      Type::Tuple({{"who", Type::Named("PERSON")},
                   {"what", Type::String()}})).ok());
  EXPECT_TRUE(s.Validate().ok());
  return s;
}

TEST(ConstraintTest, ReferentialDenialsGenerated) {
  Schema s = RefSchema();
  auto rules = GenerateReferentialConstraints(s);
  ASSERT_TRUE(rules.ok()) << rules.status();
  // LIKES.who; PERSON.spouse; STUDENT inherits spouse too.
  ASSERT_GE(rules->size(), 3u);
  for (const Rule& r : *rules) {
    EXPECT_TRUE(r.is_denial()) << r.ToString();
  }
  // Association constraints must NOT tolerate nil; class ones must.
  bool found_assoc = false, found_class = false;
  for (const Rule& r : *rules) {
    std::string text = r.ToString();
    if (text.find("likes(") != std::string::npos) {
      found_assoc = true;
      EXPECT_EQ(text.find("nil"), std::string::npos) << text;
    }
    if (text.find("person(spouse") != std::string::npos ||
        (text.find("person(") == 3 && text.find("nil") !=
         std::string::npos)) {
      found_class = true;
    }
    if (text.find("nil") != std::string::npos) found_class = true;
  }
  EXPECT_TRUE(found_assoc);
  EXPECT_TRUE(found_class);
}

TEST(ConstraintTest, GeneratedDenialsDetectDanglingReference) {
  // Evaluate the generated constraints through the engine: a dangling
  // association reference violates the denial.
  Schema s = RefSchema();
  auto denials = GenerateReferentialConstraints(s).value();

  Instance inst;
  inst.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(Oid{99})},
       {"what", Value::String("jazz")}}));
  auto program = Typecheck(s, {}, denials);
  ASSERT_TRUE(program.ok()) << program.status();
  OidGenerator gen;
  Evaluator eval(s, *program, &gen);
  auto run = eval.Run(inst);
  EXPECT_EQ(run.status().code(), StatusCode::kConstraintViolation);
}

TEST(ConstraintTest, GeneratedDenialsAcceptValidInstance) {
  Schema s = RefSchema();
  auto denials = GenerateReferentialConstraints(s).value();
  Instance inst;
  OidGenerator gen;
  Oid ann = inst.CreateObject(s, "PERSON",
      Value::MakeTuple({{"name", Value::String("ann")},
                        {"spouse", Value::Nil()}}), &gen).value();
  inst.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(ann)}, {"what", Value::String("x")}}));
  auto program = Typecheck(s, {}, denials);
  ASSERT_TRUE(program.ok()) << program.status();
  Evaluator eval(s, *program, &gen);
  auto run = eval.Run(inst);
  EXPECT_TRUE(run.ok()) << run.status();
}

TEST(ConstraintTest, NilClassReferencePassesDenials) {
  // The class-side constraint has the `not X = nil` guard.
  Schema s = RefSchema();
  auto denials = GenerateReferentialConstraints(s).value();
  Instance inst;
  OidGenerator gen;
  ASSERT_TRUE(inst.CreateObject(s, "PERSON",
      Value::MakeTuple({{"name", Value::String("solo")},
                        {"spouse", Value::Nil()}}), &gen).ok());
  auto program = Typecheck(s, {}, denials);
  ASSERT_TRUE(program.ok());
  Evaluator eval(s, *program, &gen);
  EXPECT_TRUE(eval.Run(inst).ok());
}

TEST(ConstraintTest, DanglingClassReferenceCaughtByDenials) {
  Schema s = RefSchema();
  auto denials = GenerateReferentialConstraints(s).value();
  Instance inst;
  OidGenerator gen;
  ASSERT_TRUE(inst.CreateObject(s, "PERSON",
      Value::MakeTuple({{"name", Value::String("x")},
                        {"spouse", Value::MakeOid(Oid{1234})}}),
      &gen).ok());
  auto program = Typecheck(s, {}, denials);
  ASSERT_TRUE(program.ok());
  Evaluator eval(s, *program, &gen);
  EXPECT_EQ(eval.Run(inst).status().code(),
            StatusCode::kConstraintViolation);
}

TEST(ConstraintTest, IsaPropagationRulesGenerated) {
  Schema s = RefSchema();
  auto rules = GenerateIsaPropagationRules(s);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ(rules->front().ToString(),
            "person(self X) <- student(self X).");
}

TEST(ConstraintTest, DenialAgreementWithCheckConsistent) {
  // The generated rule-based constraints and the native Definition-4
  // checker agree on a batch of instances.
  Schema s = RefSchema();
  auto denials = GenerateReferentialConstraints(s).value();
  auto program = Typecheck(s, {}, denials).value();
  OidGenerator gen;

  auto agree = [&](const Instance& inst) {
    Evaluator eval(s, program, &gen);
    bool denial_ok = eval.Run(inst).ok();
    bool native_ok = inst.CheckConsistent(s).ok();
    EXPECT_EQ(denial_ok, native_ok) << inst.ToString();
  };

  // Valid: empty.
  agree(Instance{});
  // Valid: one person, nil spouse.
  {
    Instance inst;
    ASSERT_TRUE(inst.CreateObject(s, "PERSON",
        Value::MakeTuple({{"name", Value::String("a")},
                          {"spouse", Value::Nil()}}), &gen).ok());
    agree(inst);
  }
  // Invalid: dangling association reference.
  {
    Instance inst;
    inst.InsertTuple("LIKES", Value::MakeTuple(
        {{"who", Value::MakeOid(Oid{5})},
         {"what", Value::String("y")}}));
    agree(inst);
  }
  // Invalid: dangling spouse.
  {
    Instance inst;
    ASSERT_TRUE(inst.CreateObject(s, "PERSON",
        Value::MakeTuple({{"name", Value::String("a")},
                          {"spouse", Value::MakeOid(Oid{555})}}),
        &gen).ok());
    agree(inst);
  }
}

TEST(ConstraintTest, NoConstraintsForValueOnlySchemas) {
  Schema s;
  ASSERT_TRUE(s.DeclareAssociation("FLAT",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.Validate().ok());
  auto rules = GenerateReferentialConstraints(s);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

}  // namespace
}  // namespace logres
