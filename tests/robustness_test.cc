// Robustness sweeps: malformed and mutated inputs must produce Status
// errors — never crashes, hangs, or silent acceptance of garbage — and
// random database states must survive dump/load round-trips.

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>

#include "core/database.h"
#include "core/dump.h"
#include "core/parser.h"
#include "util/failpoint.h"
#include "util/governor.h"

namespace logres {
namespace {

// ---------------------------------------------------------------------------
// Hand-picked malformed inputs across every syntactic category.

TEST(RobustnessTest, MalformedSchemas) {
  const char* cases[] = {
      "domains",                    // empty section is fine; next is EOF
      "domains NAME",               // missing '='
      "domains NAME = ;",           // missing type
      "domains NAME = string",      // missing ';'
      "classes C = (a: integer,);", // trailing comma
      "classes C = (a integer);",   // missing ':'
      "classes C isa;",             // missing superclass
      "classes C renames a from;",  // truncated rename
      "associations A = {integer;", // unbalanced brace
      "functions F: -> integer;",   // non-set function result
      "functions F integer -> {integer};",  // missing ':'
      "module m options",           // missing mode
      "module m options RIDI",      // missing end
      "garbage at top level",
  };
  for (const char* text : cases) {
    auto result = Parse(text);
    if (result.ok()) {
      // The only acceptable "ok" is a genuinely harmless prefix (like the
      // bare empty section); anything declared must then validate.
      EXPECT_TRUE(result->schema.Validate().ok()) << text;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(RobustnessTest, MalformedRules) {
  const char* cases[] = {
      "p(x: 1)",              // missing period
      "p(x: ) <- q(x: X).",   // missing term
      "p(x: 1) <- <- q.",     // double arrow
      "p(x: 1) q(x: 2).",     // missing arrow
      "not not p(x: 1).",     // double negation
      "p(x: 1) <- q(x: X), .",
      "p(x: 1) <- X.",        // bare variable literal
      "p(x: 1) <- 1 + 2.",    // arithmetic without comparison
  };
  for (const char* text : cases) {
    auto result = ParseRule(text);
    EXPECT_FALSE(result.ok()) << text;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << text;
    }
  }
  // A zero-argument literal is *syntactically* legal (the paper only
  // forbids it "if it refers to a non-0 argument predicate" — a static
  // check); the type checker rejects the unknown predicate.
  auto zero_args = ParseRule("p() <- q(x: X).");
  EXPECT_TRUE(zero_args.ok()) << zero_args.status();
}

// ---------------------------------------------------------------------------
// Mutation sweep: a valid program with random single-character mutations
// either parses (and then validates or fails cleanly) or errors — in a
// bounded amount of time, without crashing.

class MutationSweep : public ::testing::TestWithParam<int> {};

TEST_P(MutationSweep, MutatedSourceNeverCrashes) {
  const std::string base = R"(
    domains
      NAME = string;
    classes
      PERSON = (name: NAME, age: integer);
      STUDENT = (PERSON, school: NAME);
      STUDENT isa PERSON;
    associations
      LIKES = (who: PERSON, what: NAME);
    functions
      FRIENDS: PERSON -> {PERSON};
    rules
      likes(who: X, what: "logres") <- student(self X, age: A), A < 30.
      member(X, friends(Y)) <- likes(who: X, what: W),
                               likes(who: Y, what: W).
    module probe options RIDI
      goal
        ? likes(who: X, what: W).
    end
  )";
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u);
  const char kAlphabet[] = "(){}<>[];:.,=!+-*/%\"abcXYZ123_$ ";
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = base;
    // 1-3 random single-character substitutions.
    int edits = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % mutated.size();
      mutated[pos] = kAlphabet[rng() % (sizeof(kAlphabet) - 1)];
    }
    auto result = Parse(mutated);
    if (!result.ok()) continue;  // clean rejection
    // Accepted: downstream stages must also behave (error or succeed).
    Status validated = result->schema.Validate();
    if (!validated.ok()) continue;
    auto checked = Typecheck(result->schema, result->functions,
                             result->rules);
    (void)checked;  // any Status is acceptable; no crash is the property
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Random database states round-trip through dump/load.

class DumpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DumpRoundTrip, RandomStatesSurvive) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 48271u + 11);
  auto db_result = Database::Create(R"(
    classes
      NODE = (label: string, weight: integer, next: NODE);
    associations
      EDGE = (src: NODE, dst: NODE, tags: {string});
  )");
  ASSERT_TRUE(db_result.ok());
  Database db = std::move(db_result).value();

  // Random objects with occasional nil/self references.
  std::vector<Oid> nodes;
  int n = 2 + static_cast<int>(rng() % 6);
  for (int i = 0; i < n; ++i) {
    Value next = nodes.empty() || (rng() % 3 == 0)
                     ? Value::Nil()
                     : Value::MakeOid(nodes[rng() % nodes.size()]);
    auto oid = db.InsertObject("NODE", Value::MakeTuple(
        {{"label", Value::String("n" + std::to_string(i))},
         {"weight", Value::Int(static_cast<int64_t>(rng() % 100))},
         {"next", next}}));
    ASSERT_TRUE(oid.ok());
    nodes.push_back(*oid);
  }
  int m = static_cast<int>(rng() % 8);
  for (int i = 0; i < m; ++i) {
    std::vector<Value> tags;
    for (unsigned t = 0; t < rng() % 3; ++t) {
      tags.push_back(Value::String("t" + std::to_string(rng() % 4)));
    }
    ASSERT_TRUE(db.InsertTuple("EDGE", Value::MakeTuple(
        {{"src", Value::MakeOid(nodes[rng() % nodes.size()])},
         {"dst", Value::MakeOid(nodes[rng() % nodes.size()])},
         {"tags", Value::MakeSet(std::move(tags))}})).ok());
  }

  std::string dump = DumpDatabase(db);
  auto loaded = LoadDatabase(dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status() << "\n" << dump;
  EXPECT_TRUE(loaded->edb() == db.edb());
  EXPECT_EQ(loaded->oids_issued(), db.oids_issued());
  // Double round-trip is a fixpoint.
  EXPECT_EQ(DumpDatabase(*loaded), dump);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DumpRoundTrip, ::testing::Range(0, 15));

// ---------------------------------------------------------------------------
// Evaluation under hostile options.

TEST(RobustnessTest, ZeroAndTinyStepBudgets) {
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok());
  EvalOptions options;
  options.budget.max_steps = 1;
  // One step suffices for a fact-only module.
  auto one = db->ApplySource("rules p(x: 1).", ApplicationMode::kRIDV,
                             options);
  // Either it converges in the single allowed step or reports divergence;
  // both are acceptable, crashing is not.
  if (!one.ok()) {
    EXPECT_EQ(one.status().code(), StatusCode::kDivergence);
  }
}

TEST(RobustnessTest, DeeplyNestedTypesParse) {
  std::string type = "integer";
  for (int i = 0; i < 40; ++i) type = "{" + type + "}";
  auto parsed = ParseType(type);
  ASSERT_TRUE(parsed.ok());
  // And deeply nested values compare/hash fine.
  Value v = Value::Int(1);
  for (int i = 0; i < 40; ++i) v = Value::MakeSet({v});
  EXPECT_EQ(v, v);
  EXPECT_NE(v.Hash(), 0u);
}

// ---------------------------------------------------------------------------
// Recursion-depth guards: pathological nesting is a clean kParseError,
// never a stack overflow.

TEST(RobustnessTest, AbsurdlyNestedTypeIsRejected) {
  std::string type(100000, '{');
  type += "integer";
  type.append(100000, '}');
  auto parsed = ParseType(type);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(RobustnessTest, AbsurdlyNestedTermIsRejected) {
  // Nested set terms in a rule head: p(x: {{{...1...}}}).
  std::string rule = "p(x: ";
  rule.append(50000, '{');
  rule += "1";
  rule.append(50000, '}');
  rule += ") <- q(y: Y).";
  auto parsed = ParseRule(rule);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);

  // Same through grouped expressions.
  std::string grouped = "p(x: ";
  grouped.append(50000, '(');
  grouped += "1";
  grouped.append(50000, ')');
  grouped += ") <- q(y: Y).";
  auto parsed2 = ParseRule(grouped);
  ASSERT_FALSE(parsed2.ok());
  EXPECT_EQ(parsed2.status().code(), StatusCode::kParseError);
}

TEST(RobustnessTest, ModeratelyNestedTermsStillParse) {
  std::string rule = "p(x: ";
  rule.append(30, '{');
  rule += "1";
  rule.append(30, '}');
  rule += ") <- q(y: Y).";
  EXPECT_TRUE(ParseRule(rule).ok());
}

// ---------------------------------------------------------------------------
// The execution governor: budgets and cancellation. A diverging counter
// program gives every limit something to bite on.

Result<Database> CounterDb() {
  auto db = Database::Create("associations P = (x: integer);");
  if (!db.ok()) return db.status();
  LOGRES_RETURN_NOT_OK(db->InsertTuple(
      "P", Value::MakeTuple({{"x", Value::Int(0)}})));
  return db;
}

constexpr const char* kDivergingRules =
    "rules p(x: Y) <- p(x: X), Y = X + 1.";

TEST(GovernorTest, ZeroDeadlineExhaustsWithinOneStep) {
  auto db = CounterDb();
  ASSERT_TRUE(db.ok());
  EvalOptions options;
  options.budget.timeout = std::chrono::milliseconds(0);
  std::string before = DumpDatabase(*db);
  auto result = db->ApplySource(kDivergingRules, ApplicationMode::kRIDV,
                                options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // Within one fixpoint step: no step ever ran, and the state is intact.
  EXPECT_EQ(DumpDatabase(*db), before);
}

TEST(GovernorTest, FactBudgetExhausts) {
  auto db = CounterDb();
  ASSERT_TRUE(db.ok());
  EvalOptions options;
  options.budget.max_facts = 10;
  std::string before = DumpDatabase(*db);
  auto result = db->ApplySource(kDivergingRules, ApplicationMode::kRIDV,
                                options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(DumpDatabase(*db), before);
}

TEST(GovernorTest, PreCancelledTokenStopsBeforeTheFirstStep) {
  auto db = CounterDb();
  ASSERT_TRUE(db.ok());
  CancellationSource source;
  source.Cancel();
  EvalOptions options;
  options.budget.cancel = source.token();
  std::string before = DumpDatabase(*db);
  auto result = db->ApplySource(kDivergingRules, ApplicationMode::kRIDV,
                                options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(DumpDatabase(*db), before);
}

TEST(GovernorTest, CancellationMidFixpointRollsBack) {
  auto db = CounterDb();
  ASSERT_TRUE(db.ok());
  CancellationSource source;
  EvalOptions options;
  options.budget.max_steps = 0;  // unlimited: only the token can stop it
  options.budget.cancel = source.token();
  std::string before = DumpDatabase(*db);
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    source.Cancel();
  });
  auto result = db->ApplySource(kDivergingRules, ApplicationMode::kRIDV,
                                options);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(DumpDatabase(*db), before);
}

// ---------------------------------------------------------------------------
// Transactional module application: a fault injected at any evaluation
// boundary must leave the state byte-identical to the pre-application
// snapshot. DumpDatabase serializes the whole state, so string equality
// is the byte-identity check.

class FaultInjectionRollback
    : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultInjectionRollback, StateRestoredAfterInjectedFault) {
  auto db_result = Database::Create(R"(
    classes
      PERSON = (name: string);
    associations
      KNOWS = (a: PERSON, b: PERSON);
      CLIQUE = (a: PERSON, b: PERSON);
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  auto alice = db.InsertObject(
      "PERSON", Value::MakeTuple({{"name", Value::String("alice")}}));
  auto bob = db.InsertObject(
      "PERSON", Value::MakeTuple({{"name", Value::String("bob")}}));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());
  ASSERT_TRUE(db.InsertTuple("KNOWS", Value::MakeTuple(
      {{"a", Value::MakeOid(*alice)}, {"b", Value::MakeOid(*bob)}})).ok());

  const std::string before = DumpDatabase(db);
  const Status boom = Status::ExecutionError("injected fault");
  {
    // Step/stratum sites are reached repeatedly; skip the first hit so
    // the application is genuinely mid-flight when the fault lands. The
    // commit site is reached exactly once, so it must fire immediately.
    size_t skip = std::string(GetParam()) == "db.apply.commit" ? 0 : 1;
    ScopedFailpoint fp(GetParam(), boom, skip);
    auto result = db.ApplySource(
        "rules clique(a: X, b: Y) <- knows(a: X, b: Y)."
        "      clique(a: Y, b: X) <- clique(a: X, b: Y).",
        ApplicationMode::kRIDV);
    ASSERT_FALSE(result.ok())
        << "site " << GetParam() << " was never reached";
    EXPECT_EQ(result.status(), boom);
    EXPECT_GE(fp.hit_count(), skip + 1);
  }
  EXPECT_EQ(DumpDatabase(db), before)
      << "state changed across a failed application (site " << GetParam()
      << ")";

  // The same application with nothing armed commits cleanly.
  auto clean = db.ApplySource(
      "rules clique(a: X, b: Y) <- knows(a: X, b: Y)."
      "      clique(a: Y, b: X) <- clique(a: X, b: Y).",
      ApplicationMode::kRIDV);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_NE(DumpDatabase(db), before);  // it really does change state
}

INSTANTIATE_TEST_SUITE_P(Sites, FaultInjectionRollback,
                         ::testing::Values("eval.step", "eval.stratum",
                                           "db.apply.commit"));

TEST(FaultInjectionTest, BuiltinBoundaryFaultRollsBack) {
  auto db_result = Database::Create(R"(
    associations
      BAG = (b: {integer});
      SIZE = (n: integer);
  )");
  ASSERT_TRUE(db_result.ok());
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("BAG", Value::MakeTuple(
      {{"b", Value::MakeSet({Value::Int(1), Value::Int(2)})}})).ok());
  const std::string before = DumpDatabase(db);
  const Status boom = Status::ExecutionError("injected builtin fault");
  {
    ScopedFailpoint fp("eval.builtin", boom);
    auto result = db.ApplySource(
        "rules size(n: N) <- bag(b: B), count(B, N).",
        ApplicationMode::kRIDV);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status(), boom);
    EXPECT_GE(fp.hit_count(), 1u);
  }
  EXPECT_EQ(DumpDatabase(db), before);
}

TEST(FaultInjectionTest, RollbackRestoresRulesAndSchemaToo) {
  // RADV both grows the schema/rules and rewrites the EDB; a commit-time
  // fault must undo all three.
  auto db_result = Database::Create(R"(
    associations BASE = (x: integer);
  )");
  ASSERT_TRUE(db_result.ok());
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple(
      "BASE", Value::MakeTuple({{"x", Value::Int(1)}})).ok());
  const std::string before = DumpDatabase(db);
  const size_t rules_before = db.rules().size();
  {
    ScopedFailpoint fp("db.apply.commit",
                       Status::ExecutionError("injected commit fault"));
    auto result = db.ApplySource(
        "associations EXTRA = (y: integer);"
        "rules extra(y: X) <- base(x: X).",
        ApplicationMode::kRADV);
    ASSERT_FALSE(result.ok());
  }
  EXPECT_EQ(DumpDatabase(db), before);
  EXPECT_EQ(db.rules().size(), rules_before);
  EXPECT_FALSE(db.schema().Has("EXTRA"));
}

// ---------------------------------------------------------------------------
// Hostile dumps: LoadDatabase is the recovery path's parser, so it must
// reject (cleanly, with a Status) anything a corrupted or adversarial
// dump file can contain.

// A small but representative dump: an invented oid, an oid-valued
// attribute, and plain tuples.
std::string HostileBaseDump() {
  auto db = Database::Create(R"(
    classes PERSON = (name: string);
    associations
      SEED = (name: string);
      KNOWS = (a: PERSON, b: string);
  )");
  EXPECT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(db->ApplySource(R"(
    rules
      seed(name: "ann").
      seed(name: "bob").
      person(self P, name: N) <- seed(name: N).
      knows(a: P, b: "x") <- person(self P, name: "ann").
  )", ApplicationMode::kRIDV).ok());
  return DumpDatabase(*db);
}

TEST(HostileDumpTest, TruncationAtEveryOffsetNeverCrashes) {
  std::string dump = HostileBaseDump();
  for (size_t len = 0; len < dump.size(); ++len) {
    auto loaded = LoadDatabase(dump.substr(0, len));
    // Either a clean error or a (syntactically complete) prefix that
    // happens to parse; both are fine — the point is no crash/UB.
    if (loaded.ok()) continue;
    EXPECT_FALSE(loaded.status().message().empty()) << "at length " << len;
  }
}

TEST(HostileDumpTest, ByteFlipAtEveryOffsetNeverCrashes) {
  std::string dump = HostileBaseDump();
  for (size_t pos = 0; pos < dump.size(); ++pos) {
    std::string mutated = dump;
    mutated[pos] ^= 0x20;  // flips case/char class without adding NULs
    auto loaded = LoadDatabase(mutated);
    if (!loaded.ok()) continue;
    // Accepted mutations must still round-trip through dump/load.
    std::string redump = DumpDatabase(*loaded);
    auto again = LoadDatabase(redump);
    ASSERT_TRUE(again.ok())
        << "redump of accepted mutation at offset " << pos
        << " failed to load: " << again.status();
    EXPECT_EQ(DumpDatabase(*again), redump) << "at offset " << pos;
  }
}

TEST(HostileDumpTest, DuplicateOidAssignmentRejected) {
  auto loaded = LoadDatabase(
      "classes C = (x: integer);\n"
      "generator 2;\n"
      "objects\n"
      "  C 1 = (x: 1);\n"
      "  C 1 = (x: 2);\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate"),
            std::string::npos);
}

TEST(HostileDumpTest, GeneratorBelowMaxUsedOidRejected) {
  auto loaded = LoadDatabase(
      "classes C = (x: integer);\n"
      "generator 1;\n"
      "objects\n"
      "  C 7 = (x: 1);\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("generator"),
            std::string::npos);
}

TEST(HostileDumpTest, HugeGeneratorValueRejectedQuickly) {
  // Used to spin the oid generator forward one Next() at a time; must now
  // fast-forward (or reject) without hanging.
  auto loaded = LoadDatabase(
      "classes C = (x: integer);\n"
      "generator 99999999999999999999;\n");
  EXPECT_FALSE(loaded.ok());
  auto loaded2 = LoadDatabase(
      "classes C = (x: integer);\n"
      "generator 4000000000;\n");
  ASSERT_TRUE(loaded2.ok()) << loaded2.status();
  EXPECT_EQ(loaded2->oids_issued(), 4000000000u);
}

TEST(HostileDumpTest, DeeplyNestedValueRejectedNotOverflowed) {
  std::string dump =
      "classes C = (x: integer);\n"
      "associations A = (v: {integer});\n"
      "generator 0;\n"
      "tuples\n  A (v: ";
  for (int i = 0; i < 5000; ++i) dump += "{";
  dump += "1";
  for (int i = 0; i < 5000; ++i) dump += "}";
  dump += ");\n";
  auto loaded = LoadDatabase(dump);
  // Deep nesting must hit the recursion guard (or a type error) — not
  // the stack.
  EXPECT_FALSE(loaded.ok());
}

TEST(HostileDumpTest, OutOfRangeNumericLiteralsRejected) {
  auto loaded = LoadDatabase(
      "associations A = (x: integer);\n"
      "generator 0;\n"
      "tuples\n  A (x: 99999999999999999999999999);\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace logres
