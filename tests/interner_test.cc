// Unit tests for the hash-consed value interner (algres/interner.h):
// canonicalization, the pinned small-int cache, the plain-allocation off
// mode and mixed-mode comparisons, real exclusion, refcounted release
// returning memory, shard determinism under concurrent construction, and
// the canonical invariant across undo-log rollback. The byte-identical
// dump battery lives in random_program_test / parallel_test.

#include "algres/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "algres/value.h"
#include "core/database.h"
#include "core/instance.h"
#include "core/undo_log.h"
#include "util/string_util.h"

namespace logres {
namespace {

TEST(Interner, CanonicalizationSharesOneNodePerValue) {
  ScopedInternValues on(true);
  Value s1 = Value::String("interner-canon");
  Value s2 = Value::String("interner-canon");
  EXPECT_TRUE(s1.SameRep(s2));
  EXPECT_TRUE(s1.is_interned());

  // Composites hash-cons bottom-up: equal trees are one node at every
  // level.
  auto make = [] {
    return Value::MakeTuple(
        {{"k", Value::String("interner-canon")},
         {"v", Value::MakeSet({Value::Int(1000001), Value::Int(1000002)})}});
  };
  Value t1 = make();
  Value t2 = make();
  EXPECT_TRUE(t1.SameRep(t2));
  EXPECT_TRUE(t1.is_interned());
  EXPECT_TRUE(t1.tuple_fields()[1].second.SameRep(
      t2.tuple_fields()[1].second));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1.Compare(t2), 0);

  // Distinct values stay distinct.
  EXPECT_FALSE(s1.SameRep(Value::String("interner-other")));
  EXPECT_NE(s1, Value::String("interner-other"));
}

TEST(Interner, SmallIntCacheIsPinned) {
  ScopedInternValues on(true);
  EXPECT_TRUE(Value::Int(0).SameRep(Value::Int(0)));
  EXPECT_TRUE(Value::Int(-128).SameRep(Value::Int(-128)));
  EXPECT_TRUE(Value::Int(2047).SameRep(Value::Int(2047)));
  EXPECT_TRUE(Value::Int(0).is_interned());
  // Outside the cache the table still canonicalizes.
  EXPECT_TRUE(Value::Int(1 << 20).SameRep(Value::Int(1 << 20)));
}

TEST(Interner, OffModeAllocatesFreshRepsAndMixesCorrectly) {
  ScopedInternValues on(true);
  Value canonical = Value::String("interner-mixed");
  ASSERT_TRUE(canonical.is_interned());
  {
    ScopedInternValues off(false);
    EXPECT_FALSE(ValueInterner::enabled());
    Value plain = Value::String("interner-mixed");
    Value plain2 = Value::String("interner-mixed");
    EXPECT_FALSE(plain.is_interned());
    EXPECT_FALSE(plain.SameRep(plain2));
    // Equality and ordering are representation-blind: interned and plain
    // nodes compare by structure.
    EXPECT_EQ(plain, plain2);
    EXPECT_EQ(plain, canonical);
    EXPECT_EQ(canonical.Compare(plain), 0);
    EXPECT_EQ(plain.Hash(), canonical.Hash());
  }
  EXPECT_TRUE(ValueInterner::enabled());  // RAII restored
}

TEST(Interner, RealContainingValuesAreNeverInterned) {
  ScopedInternValues on(true);
  Value r1 = Value::Real(1.5);
  Value r2 = Value::Real(1.5);
  EXPECT_FALSE(r1.is_interned());
  EXPECT_FALSE(r1.SameRep(r2));
  EXPECT_EQ(r1, r2);
  // ...nor is any composite containing a real anywhere.
  Value t = Value::MakeTuple({{"x", Value::Real(2.5)}});
  EXPECT_FALSE(t.is_interned());
  Value nested = Value::MakeSet({Value::Int(1), t});
  EXPECT_FALSE(nested.is_interned());
  // The 0.0 / -0.0 printing distinction survives (they compare equal, so
  // sharing a node would corrupt one of the two renderings).
  EXPECT_EQ(Value::Real(0.0).ToString(), "0");
  EXPECT_EQ(Value::Real(-0.0).ToString(), "-0");
  EXPECT_EQ(Value::Real(0.0).Compare(Value::Real(-0.0)), 0);
}

TEST(Interner, ReleaseReturnsMemory) {
  ScopedInternValues on(true);
  ValueInternerStats before = ValueInterner::stats();
  constexpr int kValues = 100;
  {
    std::vector<Value> held;
    for (int i = 0; i < kValues; ++i) {
      held.push_back(Value::String(StrCat("interner-release-", i)));
    }
    ValueInternerStats during = ValueInterner::stats();
    EXPECT_EQ(during.live_nodes, before.live_nodes + kValues);
    EXPECT_GT(during.resident_bytes, before.resident_bytes);
    // A re-construction while held is a hit, not a new node.
    Value again = Value::String("interner-release-0");
    EXPECT_TRUE(again.SameRep(held[0]));
    EXPECT_EQ(ValueInterner::stats().live_nodes,
              before.live_nodes + kValues);
  }
  // Last references died: the deleter unlinked the nodes and returned
  // the memory.
  ValueInternerStats after = ValueInterner::stats();
  EXPECT_EQ(after.live_nodes, before.live_nodes);
  EXPECT_EQ(after.resident_bytes, before.resident_bytes);
  EXPECT_EQ(after.released, before.released + kValues);
}

TEST(Interner, ShardDeterminismUnderConcurrentConstruction) {
  ScopedInternValues on(true);
  constexpr int kThreads = 4;
  constexpr int kValues = 500;
  // Each worker builds the same value set concurrently; whoever loses the
  // insert race must adopt the winner's canonical node.
  std::vector<std::vector<Value>> built(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&built, w] {
      built[w].reserve(kValues);
      for (int i = 0; i < kValues; ++i) {
        built[w].push_back(Value::MakeTuple(
            {{"a", Value::String(StrCat("interner-shard-", i))},
             {"b", Value::Int(1'000'000 + i)}}));
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (int w = 1; w < kThreads; ++w) {
    for (int i = 0; i < kValues; ++i) {
      ASSERT_TRUE(built[0][i].SameRep(built[w][i]))
          << "worker " << w << " value " << i;
      ASSERT_TRUE(built[w][i].is_interned());
    }
  }
}

TEST(Interner, RollbackOverUndoLogKeepsCanonicalInvariant) {
  ScopedInternValues on(true);
  Instance inst;
  Value t = Value::MakeTuple({{"a", Value::String("interner-undo")},
                              {"b", Value::Int(1 << 21)}});
  ASSERT_TRUE(inst.InsertTuple("A", t));

  // Erase under an undo log, then roll back: the pre-image record holds
  // the canonical handle, so the restored tuple is the *same node*, not
  // a resurrected duplicate.
  UndoLog log;
  ASSERT_TRUE(inst.EraseTuple("A", t, &log));
  EXPECT_TRUE(inst.TuplesOf("A").empty());
  inst.RollbackTo(&log, 0);
  ASSERT_EQ(inst.TuplesOf("A").size(), 1u);
  EXPECT_TRUE(inst.TuplesOf("A").begin()->SameRep(t));
  EXPECT_TRUE(inst.TuplesOf("A").begin()->is_interned());

  // Same invariant for o-value overwrite pre-images.
  auto sdb = Database::Create("classes C = (n: string);");
  ASSERT_TRUE(sdb.ok()) << sdb.status();
  OidGenerator gen;
  Value ov1 = Value::MakeTuple({{"n", Value::String("interner-ov-1")}});
  Value ov2 = Value::MakeTuple({{"n", Value::String("interner-ov-2")}});
  auto oid = inst.CreateObject(sdb->schema(), "C", ov1, &gen);
  ASSERT_TRUE(oid.ok()) << oid.status();
  UndoLog ovlog;
  ASSERT_TRUE(inst.SetOValue(*oid, ov2, &ovlog).ok());
  inst.RollbackTo(&ovlog, 0);
  auto restored = inst.OValue(*oid);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->SameRep(ov1));
  EXPECT_TRUE(restored->is_interned());
}

TEST(Interner, EvalStatsSurfaceInternerCounters) {
  auto db_result = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(db.InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(i)}, {"b", Value::Int(i + 1)}})).ok());
  }
  const std::string module =
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).";

  EvalOptions on;
  on.intern_values = true;
  auto applied = db.ApplySource(module, ApplicationMode::kRIDV, on);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_GT(applied->stats.interner_nodes, 0u);
  EXPECT_GT(applied->stats.interner_hits, 0u);
  EXPECT_GT(applied->stats.interner_bytes, 0u);

  // Off: the counters stay zero (the plain path never touches the table).
  auto db2_result = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);");
  ASSERT_TRUE(db2_result.ok());
  Database db2 = std::move(db2_result).value();
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(db2.InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(i)}, {"b", Value::Int(i + 1)}})).ok());
  }
  EvalOptions off;
  off.intern_values = false;
  auto applied_off = db2.ApplySource(module, ApplicationMode::kRIDV, off);
  ASSERT_TRUE(applied_off.ok()) << applied_off.status();
  EXPECT_EQ(applied_off->stats.interner_nodes, 0u);
  EXPECT_EQ(applied_off->stats.interner_hits, 0u);
  EXPECT_EQ(applied_off->stats.interner_bytes, 0u);
}

}  // namespace
}  // namespace logres
