// Error paths and miscellaneous behaviour of the Database facade.

#include <gtest/gtest.h>

#include "core/database.h"

namespace logres {
namespace {

TEST(DatabaseTest, CreateRejectsTopLevelGoals) {
  auto db = Database::Create(R"(
    associations P = (x: integer);
    goal ? p(x: X).
  )");
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, CreateRejectsInvalidSchema) {
  auto db = Database::Create(
      "classes C = (x: GHOST);");
  EXPECT_EQ(db.status().code(), StatusCode::kSchemaError);
  auto db2 = Database::Create("classes C = ;");
  EXPECT_EQ(db2.status().code(), StatusCode::kParseError);
}

TEST(DatabaseTest, InsertErrors) {
  auto db = Database::Create(
      "classes C = (x: integer); associations A = (x: integer);");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->InsertObject("A", Value::Nil()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db->InsertObject("GHOST", Value::Nil()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db->InsertTuple("C", Value::Nil()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db->InsertTuple("GHOST", Value::Nil()).code(),
            StatusCode::kNotFound);
  // Names are case-insensitive.
  EXPECT_TRUE(db->InsertObject("c", Value::MakeTuple(
      {{"x", Value::Int(1)}})).ok());
}

TEST(DatabaseTest, QueryErrors) {
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Query("? ghost(x: X).").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db->Query("?? nonsense").status().code(),
            StatusCode::kParseError);
  // A query over an unsafe goal is rejected.
  EXPECT_EQ(db->Query("? X = Y.").status().code(),
            StatusCode::kUnsafeRule);
}

TEST(DatabaseTest, ApplySourceParseErrorLeavesStateIntact) {
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->InsertTuple("P", Value::MakeTuple(
      {{"x", Value::Int(1)}})).ok());
  auto result = db->ApplySource("rules p(x: 2", ApplicationMode::kRIDV);
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_EQ(db->edb().TuplesOf("P").size(), 1u);
}

TEST(DatabaseTest, ApplyRejectsUnknownPredicateInModule) {
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok());
  auto result = db->ApplySource("rules ghost(x: 1).",
                                ApplicationMode::kRIDV);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, ModuleFunctionsMergeWithoutDuplication) {
  auto db = Database::Create(R"(
    classes PERSON = (name: string);
    associations PARENT = (par: PERSON, chil: PERSON);
    functions DESC: PERSON -> {PERSON};
  )");
  ASSERT_TRUE(db.ok());
  // A module redeclaring the same function is fine (idempotent merge).
  auto result = db->ApplySource(R"(
    functions
      DESC: PERSON -> {PERSON};
    rules
      member(X, desc(Y)) <- parent(par: Y, chil: X).
  )", ApplicationMode::kRADI);
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(db->functions().size(), 1u);
}

TEST(DatabaseTest, ModeDefaultsToRidiWhenUnspecified) {
  auto db = Database::Create(R"(
    associations P = (x: integer);
    module probe
      rules
        p(x: 1).
      goal
        ? p(x: X).
    end
  )");
  ASSERT_TRUE(db.ok());
  auto result = db->ApplyByName("probe");
  ASSERT_TRUE(result.ok()) << result.status();
  // RIDI: the fact is visible to the goal but not persisted.
  EXPECT_EQ(result->goal_answer->size(), 1u);
  EXPECT_TRUE(db->edb().TuplesOf("P").empty());
}

TEST(DatabaseTest, MaterializeIsIdempotentOnFixpoints) {
  auto db = Database::Create(R"(
    associations P = (x: integer); Q = (x: integer);
    rules
      q(x: X) <- p(x: X).
  )");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->InsertTuple("P", Value::MakeTuple(
      {{"x", Value::Int(1)}})).ok());
  auto i1 = db->Materialize();
  ASSERT_TRUE(i1.ok());
  // Materializing the materialized instance adds nothing.
  Database db2 = std::move(db).value();
  *db2.mutable_edb() = *i1;
  auto i2 = db2.Materialize();
  ASSERT_TRUE(i2.ok());
  EXPECT_TRUE(*i1 == *i2);
}

TEST(DatabaseTest, EvalOptionsArePropagated) {
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->InsertTuple("P", Value::MakeTuple(
      {{"x", Value::Int(0)}})).ok());
  EvalOptions tight;
  tight.budget.max_steps = 2;
  auto result = db->ApplySource(
      "rules p(x: Y) <- p(x: X), Y = X + 1, X < 100.",
      ApplicationMode::kRIDV, tight);
  EXPECT_EQ(result.status().code(), StatusCode::kDivergence);
}

TEST(DatabaseTest, GoalOverDerivedAndExtensionalMix) {
  // "A predicate can be defined partly extensionally and partly
  // intensionally" (Section 4.2).
  auto db = Database::Create(R"(
    associations STAFF = (name: string); GUEST = (name: string);
    rules
      staff(name: N) <- guest(name: N).
  )");
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->InsertTuple("STAFF", Value::MakeTuple(
      {{"name", Value::String("perm")}})).ok());
  ASSERT_TRUE(db->InsertTuple("GUEST", Value::MakeTuple(
      {{"name", Value::String("vis")}})).ok());
  auto ans = db->Query("? staff(name: N).");
  ASSERT_TRUE(ans.ok()) << ans.status();
  EXPECT_EQ(ans->size(), 2u);
}

}  // namespace
}  // namespace logres
