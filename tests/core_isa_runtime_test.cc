// Runtime semantics of generalization hierarchies: object migration into
// subclasses through rules (Section 3.1 case b), multi-level hierarchies,
// deletion cascades, and queries across levels.

#include <gtest/gtest.h>

#include "core/database.h"

namespace logres {
namespace {

Result<Database> UniversityDb() {
  return Database::Create(R"(
    classes
      PERSON = (name: string, age: integer);
      STUDENT = (PERSON, school: string);
      STUDENT isa PERSON;
      PHD = (STUDENT, topic: string);
      PHD isa STUDENT;
    associations
      ENROLLED = (who: PERSON, where: string);
  )");
}

TEST(IsaRuntimeTest, RuleMigratesObjectIntoSubclass) {
  // Section 3.1 case (b): a rule head sharing the body's oid along an isa
  // edge unifies the oids — here it *promotes* a person into STUDENT
  // ("role acquisition").
  Database db = UniversityDb().value();
  auto ann = db.InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("ann")}, {"age", Value::Int(22)}}));
  ASSERT_TRUE(ann.ok());
  ASSERT_TRUE(db.InsertTuple("ENROLLED", Value::MakeTuple(
      {{"who", Value::MakeOid(*ann)},
       {"where", Value::String("polimi")}})).ok());
  auto apply = db.ApplySource(R"(
    rules
      student(self X, school: W) <- person(self X),
                                    enrolled(who: X, where: W).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // Same oid, now a student; the o-value gained the school field and
  // kept name/age.
  EXPECT_TRUE(db.edb().HasObject("STUDENT", *ann));
  Value v = db.edb().OValue(*ann).value();
  EXPECT_EQ(v.field("name").value(), Value::String("ann"));
  EXPECT_EQ(v.field("school").value(), Value::String("polimi"));
  EXPECT_EQ(db.edb().OidsOf("PERSON").size(), 1u);
}

TEST(IsaRuntimeTest, TwoLevelPromotion) {
  Database db = UniversityDb().value();
  auto bob = db.InsertObject("STUDENT", Value::MakeTuple(
      {{"name", Value::String("bob")}, {"age", Value::Int(26)},
       {"school", Value::String("polimi")}}));
  ASSERT_TRUE(bob.ok());
  auto apply = db.ApplySource(R"(
    rules
      phd(self X, topic: "databases") <-
          student(self X, age: A), A > 24.
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // The oid is now in all three classes (Definition 4a containment).
  EXPECT_TRUE(db.edb().HasObject("PHD", *bob));
  EXPECT_TRUE(db.edb().HasObject("STUDENT", *bob));
  EXPECT_TRUE(db.edb().HasObject("PERSON", *bob));
  // And the superclass query sees the topic-carrying o-value projected.
  auto ans = db.Query("? person(self P, name: N), phd(self P, topic: T).");
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 1u);
}

TEST(IsaRuntimeTest, SubclassQueriesDoNotSeeSuperclassOnlyObjects) {
  Database db = UniversityDb().value();
  ASSERT_TRUE(db.InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("civ")}, {"age", Value::Int(40)}})).ok());
  ASSERT_TRUE(db.InsertObject("STUDENT", Value::MakeTuple(
      {{"name", Value::String("stu")}, {"age", Value::Int(20)},
       {"school", Value::String("s")}})).ok());
  auto persons = db.Query("? person(self P, name: N).");
  auto students = db.Query("? student(self P, name: N).");
  ASSERT_TRUE(persons.ok());
  ASSERT_TRUE(students.ok());
  EXPECT_EQ(persons->size(), 2u);
  EXPECT_EQ(students->size(), 1u);
}

TEST(IsaRuntimeTest, DeletingFromSuperclassCascades) {
  Database db = UniversityDb().value();
  auto stu = db.InsertObject("PHD", Value::MakeTuple(
      {{"name", Value::String("x")}, {"age", Value::Int(30)},
       {"school", Value::String("s")}, {"topic", Value::String("t")}}));
  ASSERT_TRUE(stu.ok());
  auto apply = db.ApplySource(R"(
    rules
      not person(self X) <- person(self X, name: "x").
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // Leaving PERSON removes the object from every subclass too — the
  // alternative would violate Definition 4a.
  EXPECT_FALSE(db.edb().HasObject("PERSON", *stu));
  EXPECT_FALSE(db.edb().HasObject("STUDENT", *stu));
  EXPECT_FALSE(db.edb().HasObject("PHD", *stu));
}

TEST(IsaRuntimeTest, DeletingFromSubclassKeepsSuperclassRole) {
  Database db = UniversityDb().value();
  auto stu = db.InsertObject("STUDENT", Value::MakeTuple(
      {{"name", Value::String("y")}, {"age", Value::Int(20)},
       {"school", Value::String("s")}}));
  ASSERT_TRUE(stu.ok());
  auto apply = db.ApplySource(R"(
    rules
      not student(self X) <- student(self X, name: "y").
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_FALSE(db.edb().HasObject("STUDENT", *stu));
  EXPECT_TRUE(db.edb().HasObject("PERSON", *stu));
}

TEST(IsaRuntimeTest, MigrationIsIdempotent) {
  Database db = UniversityDb().value();
  auto ann = db.InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("ann")}, {"age", Value::Int(22)}}));
  ASSERT_TRUE(ann.ok());
  ASSERT_TRUE(db.InsertTuple("ENROLLED", Value::MakeTuple(
      {{"who", Value::MakeOid(*ann)},
       {"where", Value::String("polimi")}})).ok());
  const char* promote =
      "rules student(self X, school: W) <- person(self X), "
      "enrolled(who: X, where: W).";
  ASSERT_TRUE(db.ApplySource(promote, ApplicationMode::kRIDV).ok());
  size_t students = db.edb().OidsOf("STUDENT").size();
  size_t persons = db.edb().OidsOf("PERSON").size();
  ASSERT_TRUE(db.ApplySource(promote, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(db.edb().OidsOf("STUDENT").size(), students);
  EXPECT_EQ(db.edb().OidsOf("PERSON").size(), persons);
}

TEST(IsaRuntimeTest, SharedObjectsAcrossContainers) {
  // Section 2.1 object sharing: the same object referenced from two
  // containers; updating it through one path is visible through the
  // other.
  auto db_result = Database::Create(R"(
    classes
      PLAYER = (name: string, goals: integer);
      TEAM = (tname: string, star: PLAYER);
  )");
  Database db = std::move(db_result).value();
  auto star = db.InsertObject("PLAYER", Value::MakeTuple(
      {{"name", Value::String("vb")}, {"goals", Value::Int(0)}}));
  ASSERT_TRUE(star.ok());
  ASSERT_TRUE(db.InsertObject("TEAM", Value::MakeTuple(
      {{"tname", Value::String("milan")},
       {"star", Value::MakeOid(*star)}})).ok());
  ASSERT_TRUE(db.InsertObject("TEAM", Value::MakeTuple(
      {{"tname", Value::String("national")},
       {"star", Value::MakeOid(*star)}})).ok());
  // Update the player through a rule.
  ASSERT_TRUE(db.ApplySource(
      "rules player(self P, goals: G2) <- player(self P, name: \"vb\", "
      "goals: G), G2 = G + 1, G < 1.",
      ApplicationMode::kRIDV).ok());
  // Both teams observe the update through the shared oid.
  auto ans = db.Query(
      "? team(tname: T, star: (self S, goals: G)).");
  ASSERT_TRUE(ans.ok());
  ASSERT_EQ(ans->size(), 2u);
  for (const Bindings& b : *ans) {
    EXPECT_EQ(b.at("G"), Value::Int(1));
  }
}

}  // namespace
}  // namespace logres
