// Tests for modules and the six application modes (Section 4.1), and the
// update strategies of Section 4.2.

#include <gtest/gtest.h>

#include "core/database.h"

namespace logres {
namespace {

Value T1(const std::string& label, int64_t v) {
  return Value::MakeTuple({{label, Value::Int(v)}});
}

Result<Database> FreshDb() {
  LOGRES_ASSIGN_OR_RETURN(Database db, Database::Create(R"(
    associations
      P = (x: integer);
      Q = (x: integer);
  )"));
  LOGRES_RETURN_NOT_OK(db.InsertTuple("P", T1("x", 1)));
  LOGRES_RETURN_NOT_OK(db.InsertTuple("P", T1("x", 2)));
  return db;
}

TEST(ModuleTest, ParseModuleBlock) {
  auto m = Module::Parse(R"(
    module queries options RIDI
      rules
        q(x: X) <- p(x: X).
      goal
        ? q(x: X).
    end
  )");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->name, "queries");
  EXPECT_EQ(m->default_mode, ApplicationMode::kRIDI);
  EXPECT_EQ(m->rules.size(), 1u);
  EXPECT_TRUE(m->goal.has_value());
}

TEST(ModuleTest, AnonymousBareSections) {
  auto m = Module::Parse("rules q(x: 1).");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->name, "anonymous");
  EXPECT_EQ(m->rules.size(), 1u);
}

// ---------------------------------------------------------------------------
// RIDI: ordinary query, no state change.

TEST(ModeTest, RidiAnswersGoalWithoutStateChange) {
  Database db = FreshDb().value();
  auto result = db.ApplySource(R"(
    rules
      q(x: X) <- p(x: X), X > 1.
    goal
      ? q(x: X).
  )", ApplicationMode::kRIDI);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->goal_answer.has_value());
  EXPECT_EQ(result->goal_answer->size(), 1u);
  // State unchanged: the rule was not persisted, Q stays empty.
  EXPECT_TRUE(db.rules().empty());
  EXPECT_TRUE(db.edb().TuplesOf("Q").empty());
  // The transient instance did contain the derived fact.
  EXPECT_EQ(result->instance.TuplesOf("Q").size(), 1u);
}

// ---------------------------------------------------------------------------
// RADI: rules become persistent.

TEST(ModeTest, RadiPersistsRules) {
  Database db = FreshDb().value();
  auto result = db.ApplySource("rules q(x: X) <- p(x: X).",
                               ApplicationMode::kRADI);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(db.rules().size(), 1u);
  // The EDB itself is untouched...
  EXPECT_TRUE(db.edb().TuplesOf("Q").empty());
  // ...but the materialized instance derives Q.
  auto inst = db.Materialize();
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->TuplesOf("Q").size(), 2u);
}

TEST(ModeTest, RadiRejectedWhenDenialViolated) {
  Database db = FreshDb().value();
  // The denial fires on the current data: the module must be rejected and
  // the rule list left unchanged.
  auto result = db.ApplySource("rules <- p(x: X), X > 1.",
                               ApplicationMode::kRADI);
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
  EXPECT_TRUE(db.rules().empty());
}

// ---------------------------------------------------------------------------
// RDDI: rules removed.

TEST(ModeTest, RddiRemovesRules) {
  Database db = FreshDb().value();
  ASSERT_TRUE(db.ApplySource("rules q(x: X) <- p(x: X).",
                             ApplicationMode::kRADI).ok());
  ASSERT_EQ(db.rules().size(), 1u);
  auto result = db.ApplySource("rules q(x: X) <- p(x: X).",
                               ApplicationMode::kRDDI);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(db.rules().empty());
  auto inst = db.Materialize();
  EXPECT_TRUE(inst->TuplesOf("Q").empty());
}

TEST(ModeTest, RddiRemovingAbsentRuleIsNoop) {
  Database db = FreshDb().value();
  auto result = db.ApplySource("rules q(x: 99) <- p(x: 1).",
                               ApplicationMode::kRDDI);
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(db.rules().empty());
}

// ---------------------------------------------------------------------------
// RIDV: EDB update, rules transient.

TEST(ModeTest, RidvUpdatesEdbOnly) {
  Database db = FreshDb().value();
  auto result = db.ApplySource("rules q(x: X) <- p(x: X).",
                               ApplicationMode::kRIDV);
  ASSERT_TRUE(result.ok()) << result.status();
  // The derived facts are now extensional...
  EXPECT_EQ(db.edb().TuplesOf("Q").size(), 2u);
  // ...and the update rules were NOT persisted.
  EXPECT_TRUE(db.rules().empty());
}

TEST(ModeTest, RidvForbidsGoal) {
  Database db = FreshDb().value();
  auto result = db.ApplySource(
      "rules q(x: 1). goal ? q(x: X).", ApplicationMode::kRIDV);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModeTest, RidvMaterializesInstance) {
  // Section 4.2 "Materializing the instance": making persistent rules
  // RIDV yields E = I.
  Database db = FreshDb().value();
  ASSERT_TRUE(db.ApplySource("rules q(x: X) <- p(x: X).",
                             ApplicationMode::kRADI).ok());
  // Re-run the same rule as a data update: E now contains Q's extension.
  ASSERT_TRUE(db.ApplySource("rules q(x: X) <- p(x: X).",
                             ApplicationMode::kRIDV).ok());
  EXPECT_EQ(db.edb().TuplesOf("Q").size(), 2u);
}

// ---------------------------------------------------------------------------
// RADV: rules added and EDB updated.

TEST(ModeTest, RadvAddsRulesAndUpdates) {
  Database db = FreshDb().value();
  auto result = db.ApplySource("rules q(x: X) <- p(x: X).",
                               ApplicationMode::kRADV);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(db.edb().TuplesOf("Q").size(), 2u);
  EXPECT_EQ(db.rules().size(), 1u);
}

// ---------------------------------------------------------------------------
// RDDV: rules removed and their facts retracted.

TEST(ModeTest, RddvRemovesRulesAndDerivedFacts) {
  Database db = FreshDb().value();
  // Persist a fact-producing rule and materialize its output.
  ASSERT_TRUE(db.ApplySource("rules q(x: 7).",
                             ApplicationMode::kRADV).ok());
  ASSERT_TRUE(db.edb().TuplesOf("Q").count(T1("x", 7)));
  ASSERT_EQ(db.rules().size(), 1u);
  // RDDV with the same rule deletes both the rule and the fact it
  // produced (E_M = instance of (∅, R_M)).
  auto result = db.ApplySource("rules q(x: 7).", ApplicationMode::kRDDV);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(db.rules().empty());
  EXPECT_FALSE(db.edb().TuplesOf("Q").count(T1("x", 7)));
}

// ---------------------------------------------------------------------------
// Schema evolution through modules.

TEST(ModeTest, ModuleAddsSchema) {
  Database db = FreshDb().value();
  auto result = db.ApplySource(R"(
    associations
      R = (y: string);
    rules
      r(y: "hello").
  )", ApplicationMode::kRADV);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(db.schema().IsAssociation("R"));
  EXPECT_EQ(db.edb().TuplesOf("R").size(), 1u);
}

TEST(ModeTest, RidiSchemaAdditionsAreTransient) {
  Database db = FreshDb().value();
  auto result = db.ApplySource(R"(
    associations
      TMP = (y: integer);
    rules
      tmp(y: X) <- p(x: X).
    goal
      ? tmp(y: X).
  )", ApplicationMode::kRIDI);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->goal_answer->size(), 2u);
  // TMP does not survive the query.
  EXPECT_FALSE(db.schema().Has("TMP"));
}

TEST(ModeTest, RejectionLeavesStateUntouched) {
  Database db = FreshDb().value();
  size_t p_before = db.edb().TuplesOf("P").size();
  // This update inserts a Q fact and a denial that it violates.
  auto result = db.ApplySource(
      "rules q(x: 1). <- q(x: X), p(x: X).", ApplicationMode::kRIDV);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(db.edb().TuplesOf("P").size(), p_before);
  EXPECT_TRUE(db.edb().TuplesOf("Q").empty());
  EXPECT_TRUE(db.rules().empty());
}

TEST(ModeTest, ReferentialIntegrityRejectsBadUpdate) {
  auto db_result = Database::Create(R"(
    classes
      PERSON = (name: string);
    associations
      LIKES = (who: PERSON, what: string);
  )");
  Database db = std::move(db_result).value();
  // Deleting the only person while LIKES still references them must be
  // rejected (the instance would violate referential integrity).
  auto ann = db.InsertObject("PERSON",
      Value::MakeTuple({{"name", Value::String("ann")}}));
  ASSERT_TRUE(ann.ok());
  ASSERT_TRUE(db.InsertTuple("LIKES", Value::MakeTuple(
      {{"who", Value::MakeOid(*ann)},
       {"what", Value::String("jazz")}})).ok());
  auto result = db.ApplySource(
      "rules not person(self X) <- person(self X, name: \"ann\").",
      ApplicationMode::kRIDV);
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(db.edb().OidsOf("PERSON").size(), 1u);
}

TEST(ModeTest, RegisteredModulesApplyByName) {
  auto db_result = Database::Create(R"(
    associations
      ITALIAN = (name: string);
    module add options RIDV
      rules
        italian(name: "Luca").
    end
    module ask options RIDI
      goal
        ? italian(name: X).
    end
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  EXPECT_EQ(db.registered_modules().size(), 2u);
  ASSERT_TRUE(db.ApplyByName("add").ok());
  auto ask = db.ApplyByName("ask");
  ASSERT_TRUE(ask.ok()) << ask.status();
  EXPECT_EQ(ask->goal_answer->size(), 1u);
  EXPECT_EQ(db.ApplyByName("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(ModeTest, DefaultModeUsedByApply) {
  Database db = FreshDb().value();
  Module m = Module::Parse(R"(
    module upd options RIDV
      rules
        q(x: 9).
    end
  )").value();
  ASSERT_TRUE(db.Apply(m).ok());
  EXPECT_TRUE(db.edb().TuplesOf("Q").count(T1("x", 9)));
}

TEST(ModeTest, ActiveConstraintViaRadv) {
  // Section 4.2 "Constraints": an active constraint added with RADV keeps
  // derived data consistent on later updates.
  Database db = FreshDb().value();
  ASSERT_TRUE(db.ApplySource("rules q(x: X) <- p(x: X).",
                             ApplicationMode::kRADV).ok());
  // A later RIDV insert into P propagates to Q on materialization.
  ASSERT_TRUE(db.ApplySource("rules p(x: 5).",
                             ApplicationMode::kRIDV).ok());
  auto inst = db.Materialize();
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(inst->TuplesOf("Q").count(T1("x", 5)));
}

}  // namespace
}  // namespace logres
