// Unit tests for the lexer and parser of the LOGRES surface language.

#include <gtest/gtest.h>

#include "core/lexer.h"
#include "core/parser.h"

namespace logres {
namespace {

// ---------------------------------------------------------------------------
// Lexer.

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("person(name: X) <- 42 3.5 \"txt\" .");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "person");
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kRParen);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kArrowLeft);
  EXPECT_EQ((*tokens)[7].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[8].real_value, 3.5);
  EXPECT_EQ((*tokens)[9].text, "txt");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
}

TEST(LexerTest, CommentsAndWhitespace) {
  auto tokens = Tokenize("a -- comment to end\n b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 3u);  // a, b, eof
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, OperatorsAndArrows) {
  auto tokens = Tokenize("< > <= >= = != <- -> + - * / %");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], TokenKind::kLt);
  EXPECT_EQ(kinds[2], TokenKind::kLe);
  EXPECT_EQ(kinds[5], TokenKind::kNe);
  EXPECT_EQ(kinds[6], TokenKind::kArrowLeft);
  EXPECT_EQ(kinds[7], TokenKind::kArrowRight);
  EXPECT_EQ(kinds[12], TokenKind::kPercent);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize(R"("a\nb\"c")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\nb\"c");
}

TEST(LexerTest, Errors) {
  EXPECT_EQ(Tokenize("\"unterminated").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Tokenize("a ! b").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Tokenize("@").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(LexerTest, RealVsRuleTerminator) {
  // "1." is integer then period; "1.5" is a real.
  auto a = Tokenize("1.");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*a)[1].kind, TokenKind::kPeriod);
  auto b = Tokenize("1.5");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)[0].kind, TokenKind::kReal);
}

// ---------------------------------------------------------------------------
// Types.

TEST(ParserTest, ElementaryAndNamedTypes) {
  EXPECT_EQ(ParseType("integer").value(), Type::Int());
  EXPECT_EQ(ParseType("string").value(), Type::String());
  EXPECT_EQ(ParseType("bool").value(), Type::Bool());
  EXPECT_EQ(ParseType("real").value(), Type::Real());
  EXPECT_EQ(ParseType("person").value(), Type::Named("PERSON"));
}

TEST(ParserTest, ConstructedTypes) {
  EXPECT_EQ(ParseType("{ROLE}").value(), Type::Set(Type::Named("ROLE")));
  EXPECT_EQ(ParseType("[integer]").value(), Type::Multiset(Type::Int()));
  EXPECT_EQ(ParseType("<PLAYER>").value(),
            Type::Sequence(Type::Named("PLAYER")));
  Type t = ParseType("(name: NAME, roles: {ROLE})").value();
  ASSERT_EQ(t.fields().size(), 2u);
  EXPECT_EQ(t.field("roles").value(), Type::Set(Type::Named("ROLE")));
}

TEST(ParserTest, UnlabeledComponentsGetDefaultLabels) {
  // The paper's convention: PLAYER = (NAME, ROLES {ROLE}).
  Type t = ParseType("(NAME, roles: {ROLE})").value();
  EXPECT_EQ(t.fields()[0].first, "name");
  // Duplicate elementary components get suffixes: SCORE = (INTEGER,
  // INTEGER).
  Type score = ParseType("(integer, integer)").value();
  EXPECT_EQ(score.fields()[0].first, "integer");
  EXPECT_EQ(score.fields()[1].first, "integer_2");
}

TEST(ParserTest, DuplicateExplicitLabelRejected) {
  EXPECT_EQ(ParseType("(a: integer, a: string)").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, TypeErrors) {
  EXPECT_FALSE(ParseType("{").ok());
  EXPECT_FALSE(ParseType("(a: integer").ok());
  EXPECT_FALSE(ParseType("integer extra").ok());
}

// ---------------------------------------------------------------------------
// Units and sections.

TEST(ParserTest, FootballSchemaParses) {
  auto unit = Parse(R"(
    domains
      NAME = string;
      ROLE = integer;
      DATE = string;
      SCORE = (home: integer, guest: integer);
    classes
      PLAYER = (NAME, roles: {ROLE});
      TEAM = (team_name: NAME, base_players: <PLAYER>,
              substitutes: {PLAYER});
    associations
      GAME = (h_team: TEAM, g_team: TEAM, DATE, SCORE);
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(unit->schema.IsClass("TEAM"));
  EXPECT_TRUE(unit->schema.IsAssociation("GAME"));
  EXPECT_TRUE(unit->schema.Validate().ok());
  auto game = unit->schema.EffectiveFields("GAME").value();
  EXPECT_EQ(game[2].first, "date");
}

TEST(ParserTest, IsaDeclarations) {
  auto unit = Parse(R"(
    classes
      PERSON = (name: string);
      STUDENT = (PERSON, school: string);
      STUDENT isa PERSON;
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(unit->schema.IsaReachable("STUDENT", "PERSON"));
}

TEST(ParserTest, LabeledIsaAndRenames) {
  auto unit = Parse(R"(
    classes
      PERSON = (name: string);
      EMPL = (emp: PERSON, manager: PERSON);
      EMPL emp isa PERSON;
      EMPL renames name from PERSON as pname;
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->schema.isa_decls().size(), 1u);
  EXPECT_EQ(unit->schema.isa_decls()[0].component_label, "emp");
}

TEST(ParserTest, FunctionDeclarations) {
  auto unit = Parse(R"(
    classes
      PERSON = (name: string);
    functions
      DESC: PERSON -> {PERSON};
      PAIRS: PERSON, PERSON -> {(a: PERSON, b: PERSON)};
      JUNIOR: -> {PERSON};
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->functions.size(), 3u);
  EXPECT_EQ(unit->functions[0].name, "DESC");
  EXPECT_EQ(unit->functions[1].arg_types.size(), 2u);
  EXPECT_TRUE(unit->functions[2].arg_types.empty());
}

TEST(ParserTest, FunctionMustReturnSet) {
  auto unit = Parse(R"(
    functions
      F: integer -> integer;
  )");
  EXPECT_EQ(unit.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Rules.

TEST(ParserTest, FactAndRuleForms) {
  EXPECT_TRUE(ParseRule("p(x: 1).").ok());
  EXPECT_TRUE(ParseRule("p(x: 1) <- .").ok());
  EXPECT_TRUE(ParseRule("p(x: X) <- q(x: X).").ok());
  Rule denial = ParseRule("<- married(p: X), divorced(p: X).").value();
  EXPECT_TRUE(denial.is_denial());
  Rule fact = ParseRule("p(x: 1).").value();
  EXPECT_TRUE(fact.is_fact());
}

TEST(ParserTest, NegatedHeads) {
  Rule r1 = ParseRule("not p(x: X) <- q(x: X).").value();
  EXPECT_TRUE(r1.head->negated);
  Rule r2 = ParseRule("- p(x: X) <- q(x: X).").value();
  EXPECT_TRUE(r2.head->negated);
}

TEST(ParserTest, SelfArguments) {
  Rule r = ParseRule("person(self X, name: N) <- student(self X).").value();
  const Literal& head = *r.head;
  ASSERT_EQ(head.args.size(), 2u);
  EXPECT_TRUE(head.args[0].is_self);
  EXPECT_EQ(head.args[1].label, "name");
}

TEST(ParserTest, PaperPredicateOccurrences) {
  // The seven legal occurrences of Example 3.1 (in our quoting/colon
  // syntax).
  const char* occurrences[] = {
      "person(name: \"Smith\", address: X)",
      "person(self X)",
      "person(X)",
      "person(name: X, Y, self Z)",
      "school(dean: (self X))",
      "advises(professor: X)",
      "professor(X)",
  };
  for (const char* occ : occurrences) {
    auto rule = ParseRule(std::string("p(a: 1) <- ") + occ + ".");
    EXPECT_TRUE(rule.ok()) << occ << ": " << rule.status();
  }
}

TEST(ParserTest, BuiltinsAndComparisons) {
  Rule r = ParseRule(
      "power(set: X) <- power(set: Y), power(set: Z), union(X, Y, Z).")
      .value();
  EXPECT_EQ(r.body[2].kind, LiteralKind::kBuiltin);
  EXPECT_EQ(r.body[2].builtin, "union");
  Rule c = ParseRule("q(x: X) <- p(x: X), X <= 18.").value();
  EXPECT_EQ(c.body[1].kind, LiteralKind::kCompare);
  EXPECT_EQ(c.body[1].compare_op, CompareOp::kLe);
}

TEST(ParserTest, ArithmeticPrecedence) {
  Rule r = ParseRule("q(x: Z) <- p(x: Y), Z = Y + 2 * 3.").value();
  const Literal& eq = r.body[1];
  ASSERT_EQ(eq.kind, LiteralKind::kCompare);
  // Z = (Y + (2 * 3))
  EXPECT_EQ(eq.compare_rhs->ToString(), "(Y + (2 * 3))");
}

TEST(ParserTest, CollectionTerms) {
  Rule r = ParseRule(
      "q(s: S) <- p(x: X), S = {X, 1}, T = <X, X>, M = [X].").value();
  EXPECT_EQ(r.body[1].compare_rhs->kind(), TermKind::kSetTerm);
  EXPECT_EQ(r.body[2].compare_rhs->kind(), TermKind::kSequenceTerm);
  EXPECT_EQ(r.body[3].compare_rhs->kind(), TermKind::kMultisetTerm);
}

TEST(ParserTest, FunctionApplicationTerms) {
  Rule r = ParseRule(
      "member(X, desc(Y)) <- parent(par: Y, chil: X).").value();
  ASSERT_EQ(r.head->kind, LiteralKind::kBuiltin);
  EXPECT_EQ(r.head->builtin_args[1]->kind(), TermKind::kFunctionApp);
  EXPECT_EQ(r.head->builtin_args[1]->name(), "DESC");
}

TEST(ParserTest, TupleTermsInEquality) {
  Rule r = ParseRule(
      "a(x: T) <- p(y: Y, z: Z), T = (person: Y, bdate: Z).").value();
  EXPECT_EQ(r.body[1].compare_rhs->kind(), TermKind::kTupleTerm);
  EXPECT_EQ(r.body[1].compare_rhs->args().size(), 2u);
}

TEST(ParserTest, NegatedBodyLiterals) {
  Rule r = ParseRule("q(x: X) <- p(x: X), not m(x: X).").value();
  EXPECT_TRUE(r.body[1].negated);
  EXPECT_FALSE(r.body[0].negated);
}

TEST(ParserTest, RuleErrors) {
  EXPECT_FALSE(ParseRule("p(x: X) <- q(x: X)").ok());   // missing period
  EXPECT_FALSE(ParseRule("<- .").ok());                 // empty denial
  EXPECT_FALSE(ParseRule("X = 1 <- p(x: X).").ok());    // compare head
  EXPECT_FALSE(ParseRule("p(x: lower) .").ok());        // bare lowercase
}

// ---------------------------------------------------------------------------
// Goals and modules.

TEST(ParserTest, Goals) {
  Goal g = ParseGoal("? game(h_team: T), T != nil.").value();
  EXPECT_EQ(g.literals.size(), 2u);
  // '?' and '.' are optional.
  EXPECT_TRUE(ParseGoal("person(name: X)").ok());
}

TEST(ParserTest, ModuleBlocks) {
  auto unit = Parse(R"(
    associations
      ITALIAN = (name: string);
    module add_people options RIDV
      rules
        italian(name: "Luca").
    end
    module ask options RIDI
      goal
        ? italian(name: X).
    end
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->modules.size(), 2u);
  EXPECT_EQ(unit->modules[0].name, "add_people");
  EXPECT_EQ(unit->modules[0].default_mode, ApplicationMode::kRIDV);
  EXPECT_EQ(unit->modules[0].rules.size(), 1u);
  ASSERT_TRUE(unit->modules[1].goal.has_value());
}

TEST(ParserTest, ModuleErrors) {
  EXPECT_FALSE(Parse("module m options WXYZ end").ok());
  EXPECT_FALSE(Parse("module m rules p(x: 1).").ok());  // missing end
  EXPECT_FALSE(Parse(R"(
    module m
      goal ? p(x: X).
      goal ? p(x: Y).
    end
  )").ok());
}

TEST(ParserTest, SectionKeywordRequired) {
  EXPECT_EQ(Parse("NAME = string;").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, ApplicationModeNames) {
  EXPECT_EQ(ParseApplicationMode("RIDI"), ApplicationMode::kRIDI);
  EXPECT_EQ(ParseApplicationMode("RDDV"), ApplicationMode::kRDDV);
  EXPECT_FALSE(ParseApplicationMode("XXXX").has_value());
  EXPECT_STREQ(ApplicationModeName(ApplicationMode::kRADV), "RADV");
  EXPECT_TRUE(IsDataVariant(ApplicationMode::kRIDV));
  EXPECT_FALSE(IsDataVariant(ApplicationMode::kRADI));
  EXPECT_TRUE(AllowsGoal(ApplicationMode::kRIDI));
  EXPECT_FALSE(AllowsGoal(ApplicationMode::kRDDV));
}

TEST(ParserTest, RoundTripToString) {
  const char* rules[] = {
      "p(x: X) <- q(x: X), not r(x: X).",
      "member(X, desc(Y)) <- parent(par: Y, chil: X).",
      "<- married(p: X), divorced(p: X).",
  };
  for (const char* text : rules) {
    Rule r = ParseRule(text).value();
    // Re-parsing the printed form gives the same print.
    Rule r2 = ParseRule(r.ToString()).value();
    EXPECT_EQ(r.ToString(), r2.ToString());
  }
}

}  // namespace
}  // namespace logres
