// Unit tests for static analysis: predicate resolution, variable typing,
// safety, oid legality, and stratification.

#include <gtest/gtest.h>

#include "core/parser.h"
#include "core/typecheck.h"

namespace logres {
namespace {

Schema UniSchema() {
  Schema s;
  EXPECT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()},
                   {"address", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareClass("STUDENT",
      Type::Tuple({{"person", Type::Named("PERSON")},
                   {"school", Type::String()}})).ok());
  EXPECT_TRUE(s.DeclareIsa("STUDENT", "PERSON").ok());
  EXPECT_TRUE(s.DeclareAssociation("ADVISES",
      Type::Tuple({{"prof", Type::Named("PERSON")},
                   {"stud", Type::Named("STUDENT")}})).ok());
  EXPECT_TRUE(s.DeclareAssociation("PAIR",
      Type::Tuple({{"p_name", Type::String()},
                   {"s_name", Type::String()}})).ok());
  EXPECT_TRUE(s.Validate().ok());
  return s;
}

Result<CheckedProgram> Check(const Schema& s,
                             const std::string& rule_text) {
  auto rule = ParseRule(rule_text);
  if (!rule.ok()) return rule.status();
  return Typecheck(s, {}, {std::move(rule).value()});
}

// ---------------------------------------------------------------------------
// Predicate resolution.

TEST(ResolveTest, LabeledArguments) {
  Schema s = UniSchema();
  Literal lit = ParseRule("x(a: 1) <- person(name: N, address: A).")
                    .value().body[0];
  auto rp = ResolvePredicate(s, {}, lit);
  ASSERT_TRUE(rp.ok()) << rp.status();
  EXPECT_EQ(rp->name, "PERSON");
  EXPECT_TRUE(rp->is_class);
  EXPECT_EQ(rp->fields.size(), 2u);
  EXPECT_FALSE(rp->tuple_var);
  EXPECT_FALSE(rp->self_term);
}

TEST(ResolveTest, PositionalArguments) {
  // pair(X, X) from Section 3.1.
  Schema s = UniSchema();
  Literal lit = ParseRule("x(a: 1) <- pair(X, X).").value().body[0];
  auto rp = ResolvePredicate(s, {}, lit);
  ASSERT_TRUE(rp.ok()) << rp.status();
  ASSERT_EQ(rp->fields.size(), 2u);
  EXPECT_EQ(rp->fields[0].first, "p_name");
  EXPECT_EQ(rp->fields[1].first, "s_name");
}

TEST(ResolveTest, TupleVariable) {
  Schema s = UniSchema();
  Literal lit = ParseRule("x(a: 1) <- person(name: N, Y, self Z).")
                    .value().body[0];
  auto rp = ResolvePredicate(s, {}, lit);
  ASSERT_TRUE(rp.ok()) << rp.status();
  ASSERT_TRUE(rp->tuple_var != nullptr);
  EXPECT_EQ(rp->tuple_var->name(), "Y");
  ASSERT_TRUE(rp->self_term != nullptr);
  EXPECT_EQ(rp->fields.size(), 1u);
}

TEST(ResolveTest, SingleTupleVariable) {
  Schema s = UniSchema();
  Literal lit = ParseRule("x(a: 1) <- person(X).").value().body[0];
  auto rp = ResolvePredicate(s, {}, lit);
  ASSERT_TRUE(rp.ok());
  // person has 2 fields; a single unlabeled variable is the tuple var.
  EXPECT_TRUE(rp->tuple_var != nullptr);
}

TEST(ResolveTest, Errors) {
  Schema s = UniSchema();
  auto body_of = [](const std::string& text) {
    return ParseRule("x(a: 1) <- " + text + ".").value().body[0];
  };
  // Unknown predicate.
  EXPECT_EQ(ResolvePredicate(s, {}, body_of("ghost(a: 1)"))
                .status().code(),
            StatusCode::kNotFound);
  // Unknown label.
  EXPECT_EQ(ResolvePredicate(s, {}, body_of("person(zip: 1)"))
                .status().code(),
            StatusCode::kTypeError);
  // self on an association.
  EXPECT_EQ(ResolvePredicate(s, {}, body_of("advises(self X)"))
                .status().code(),
            StatusCode::kTypeError);
  // Duplicate labeled argument.
  EXPECT_EQ(ResolvePredicate(s, {},
                             body_of("person(name: X, name: Y)"))
                .status().code(),
            StatusCode::kTypeError);
  // Ambiguous unlabeled arguments (2 of 2 fields but one is a constant
  // and one a variable is fine positionally; 3 unlabeled is not).
  EXPECT_EQ(ResolvePredicate(
                s, {}, body_of("person(X, Y, Z)")).status().code(),
            StatusCode::kTypeError);
}

// ---------------------------------------------------------------------------
// Safety and scheduling.

TEST(SafetyTest, UnboundHeadVariableRejected) {
  Schema s = UniSchema();
  auto r = Check(s, "pair(p_name: X, s_name: Y) <- person(name: X).");
  EXPECT_EQ(r.status().code(), StatusCode::kUnsafeRule);
}

TEST(SafetyTest, UnboundHeadSelfInventsOid) {
  Schema s = UniSchema();
  auto r = Check(s, "person(self X, name: N, address: A) <- "
                    "pair(p_name: N, s_name: A).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rules[0].invents_oid);
}

TEST(SafetyTest, BoundHeadSelfDoesNotInvent) {
  Schema s = UniSchema();
  auto r = Check(s, "person(self X, name: N) <- student(self X, name: N).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->rules[0].invents_oid);
  EXPECT_TRUE(r->rules[0].shares_head_oid);
}

TEST(SafetyTest, EqualityBindsThroughArithmetic) {
  Schema s = UniSchema();
  Schema s2 = s;
  ASSERT_TRUE(s2.DeclareAssociation("P",
      Type::Tuple({{"d", Type::Int()}})).ok());
  auto r = Check(s2, "p(d: Z) <- p(d: Y), Z = Y + 1, Z < 5.");
  ASSERT_TRUE(r.ok()) << r.status();
  // The schedule must order the equality before the comparison.
  const CheckedRule& rule = r->rules[0];
  ASSERT_EQ(rule.body.size(), 3u);
  EXPECT_EQ(rule.body[1].source.compare_op, CompareOp::kEq);
  EXPECT_EQ(rule.body[2].source.compare_op, CompareOp::kLt);
}

TEST(SafetyTest, ReorderingPutsProducerFirst) {
  Schema s = UniSchema();
  // Written with the builtin before its input is bound.
  Schema s2 = s;
  ASSERT_TRUE(s2.DeclareAssociation("Q",
      Type::Tuple({{"s", Type::Set(Type::Int())}})).ok());
  auto r = Check(s2, "pair(p_name: \"a\", s_name: \"b\") <- "
                     "member(X, S), q(s: S), X > 1.");
  ASSERT_TRUE(r.ok()) << r.status();
  const CheckedRule& rule = r->rules[0];
  EXPECT_EQ(rule.body[0].kind(), LiteralKind::kPredicate);
  EXPECT_EQ(rule.body[1].kind(), LiteralKind::kBuiltin);
}

TEST(SafetyTest, HopelesslyUnboundRejected) {
  Schema s = UniSchema();
  auto r = Check(s, "pair(p_name: X, s_name: X) <- X = Y.");
  EXPECT_EQ(r.status().code(), StatusCode::kUnsafeRule);
}

TEST(SafetyTest, UnboundClassTypedHeadVarBecomesNil) {
  // Valuation-map point (c): class-typed head vars not in the body are
  // nil, so the rule is legal.
  Schema s = UniSchema();
  auto r = Check(s, "advises(prof: P, stud: S) <- student(self S).");
  ASSERT_TRUE(r.ok()) << r.status();
}

// ---------------------------------------------------------------------------
// Oid legality (Section 3.1).

TEST(OidLegalityTest, SharedOidAcrossHierarchiesRejected) {
  Schema s;
  // Two fields so that a single unlabeled variable reads as a tuple
  // variable, not a positional argument.
  ASSERT_TRUE(s.DeclareClass("A",
      Type::Tuple({{"x", Type::Int()}, {"y", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("B",
      Type::Tuple({{"x", Type::Int()}, {"y", Type::Int()}})).ok());
  ASSERT_TRUE(s.Validate().ok());
  // a(X) <- b(X) with X the shared tuple variable: incorrect, A and B are
  // unrelated ("two objects cannot have the same oid if they do not
  // belong to the same generalization hierarchy").
  auto r = Check(s, "a(X) <- b(X).");
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
  // Shared self variables are equally illegal.
  auto r2 = Check(s, "a(self X, x: V, y: W) <- b(self X, x: V, y: W).");
  EXPECT_EQ(r2.status().code(), StatusCode::kTypeError);
}

TEST(OidLegalityTest, DistinctVariablesCreateNewObjects) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("A", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareClass("B", Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.Validate().ok());
  // a(self Y, x: V) <- b(self X, x: V): fresh oid per b-object.
  auto r = Check(s, "a(self Y, x: V) <- b(self X, x: V).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rules[0].invents_oid);
}

TEST(OidLegalityTest, IsaRelatedSharedOidAccepted) {
  Schema s = UniSchema();
  auto r = Check(s, "person(X) <- student(X).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rules[0].shares_head_oid);
}

// ---------------------------------------------------------------------------
// Variable typing.

TEST(TypingTest, IncompatibleUsesRejected) {
  Schema s = UniSchema();
  Schema s2 = s;
  ASSERT_TRUE(s2.DeclareAssociation("NUM",
      Type::Tuple({{"n", Type::Int()}})).ok());
  // X used both as a string field and an integer field.
  auto r = Check(s2, "pair(p_name: X, s_name: X) <- "
                     "person(name: X), num(n: X).");
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(TypingTest, CompatibleAcrossIsa) {
  Schema s = UniSchema();
  // Example 3.1's unification across person/student/advises: the same
  // variable may range over STUDENT and PERSON (compatible via isa).
  auto r = Check(s, "pair(p_name: N, s_name: N) <- "
                    "advises(prof: X, stud: Y), person(self X, name: N), "
                    "student(self Y, name: N).");
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(TypingTest, VarTypesRecorded) {
  Schema s = UniSchema();
  auto r = Check(s, "pair(p_name: N, s_name: N) <- person(self X, name: N).");
  ASSERT_TRUE(r.ok());
  const auto& types = r->rules[0].var_types;
  EXPECT_EQ(types.at("N"), Type::String());
  EXPECT_EQ(types.at("X"), Type::Named("PERSON"));
}

// ---------------------------------------------------------------------------
// Data functions.

TEST(FunctionTest, BackingAssociationDeclared) {
  Schema s = UniSchema();
  FunctionDecl fn;
  fn.name = "DESC";
  fn.arg_types = {Type::Named("PERSON")};
  fn.result_type = Type::Set(Type::Named("PERSON"));
  ASSERT_TRUE(DeclareBackingAssociation(&s, fn).ok());
  ASSERT_TRUE(s.IsAssociation("$FN$DESC"));
  auto fields = s.EffectiveFields("$FN$DESC").value();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].first, "arg1");
  EXPECT_EQ(fields[1].first, "member");
}

TEST(FunctionTest, MemberHeadRewrittenToBacking) {
  Schema s = UniSchema();
  FunctionDecl fn;
  fn.name = "DESC";
  fn.arg_types = {Type::Named("PERSON")};
  fn.result_type = Type::Set(Type::Named("PERSON"));
  ASSERT_TRUE(DeclareBackingAssociation(&s, fn).ok());
  auto rule = ParseRule(
      "member(X, desc(Y)) <- advises(prof: Y, stud: X).").value();
  auto r = Typecheck(s, {fn}, {rule});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rules[0].defines_function);
  EXPECT_EQ(r->rules[0].function_name, "DESC");
  EXPECT_EQ(r->rules[0].head->pred->name, "$FN$DESC");
}

TEST(FunctionTest, UndeclaredFunctionRejected) {
  Schema s = UniSchema();
  auto rule = ParseRule(
      "member(X, ghost(Y)) <- advises(prof: Y, stud: X).").value();
  auto r = Typecheck(s, {}, {rule});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FunctionTest, WrongArityRejected) {
  Schema s = UniSchema();
  FunctionDecl fn;
  fn.name = "DESC";
  fn.arg_types = {Type::Named("PERSON")};
  fn.result_type = Type::Set(Type::Named("PERSON"));
  ASSERT_TRUE(DeclareBackingAssociation(&s, fn).ok());
  auto rule = ParseRule(
      "member(X, desc(Y, Z)) <- advises(prof: Y, stud: X), "
      "advises(prof: Z, stud: X).").value();
  auto r = Typecheck(s, {fn}, {rule});
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

// ---------------------------------------------------------------------------
// Stratification.

TEST(StrataTest, NegationSplitsStrata) {
  Schema s;
  ASSERT_TRUE(s.DeclareAssociation("BASE",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareAssociation("D1",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareAssociation("D2",
      Type::Tuple({{"x", Type::Int()}})).ok());
  auto r1 = ParseRule("d1(x: X) <- base(x: X).").value();
  auto r2 = ParseRule("d2(x: X) <- base(x: X), not d1(x: X).").value();
  auto program = Typecheck(s, {}, {r1, r2});
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_TRUE(program->stratified);
  EXPECT_LT(program->strata.at("D1"), program->strata.at("D2"));
}

TEST(StrataTest, NegationCycleUnstratified) {
  Schema s;
  ASSERT_TRUE(s.DeclareAssociation("P",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareAssociation("Q",
      Type::Tuple({{"x", Type::Int()}})).ok());
  auto r1 = ParseRule("p(x: X) <- q(x: X), not p(x: X).").value();
  auto program = Typecheck(s, {}, {r1});
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->stratified);
}

TEST(StrataTest, DeletionHeadForcesUnstratified) {
  Schema s;
  ASSERT_TRUE(s.DeclareAssociation("P",
      Type::Tuple({{"x", Type::Int()}})).ok());
  auto r = ParseRule("not p(x: X) <- p(x: X), X > 3.").value();
  auto program = Typecheck(s, {}, {r});
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->stratified);
}

TEST(StrataTest, AggregatingFunctionUseSplitsStrata) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("PERSON",
      Type::Tuple({{"name", Type::String()}})).ok());
  ASSERT_TRUE(s.DeclareAssociation("PARENT",
      Type::Tuple({{"par", Type::Named("PERSON")},
                   {"chil", Type::Named("PERSON")}})).ok());
  ASSERT_TRUE(s.DeclareAssociation("ANCESTOR",
      Type::Tuple({{"anc", Type::Named("PERSON")},
                   {"des", Type::Set(Type::Named("PERSON"))}})).ok());
  FunctionDecl fn;
  fn.name = "DESC";
  fn.arg_types = {Type::Named("PERSON")};
  fn.result_type = Type::Set(Type::Named("PERSON"));
  ASSERT_TRUE(DeclareBackingAssociation(&s, fn).ok());
  auto r1 = ParseRule(
      "member(X, desc(Y)) <- parent(par: Y, chil: X).").value();
  auto r2 = ParseRule(
      "member(X, desc(Y)) <- parent(par: Y, chil: Z), member(X, T), "
      "T = desc(Z).").value();
  auto r3 = ParseRule(
      "ancestor(anc: X, des: Y) <- parent(par: X), Y = desc(X).").value();
  auto program = Typecheck(s, {fn}, {r1, r2, r3});
  ASSERT_TRUE(program.ok()) << program.status();
  // The recursive member/T=desc idiom is monotonic (same stratum); the
  // head use in r3 aggregates (higher stratum).
  EXPECT_TRUE(program->stratified);
  EXPECT_LT(program->strata.at("$FN$DESC"),
            program->strata.at("ANCESTOR"));
}

TEST(StrataTest, DenialsRunLast) {
  Schema s;
  ASSERT_TRUE(s.DeclareAssociation("P",
      Type::Tuple({{"x", Type::Int()}})).ok());
  auto r1 = ParseRule("p(x: 1).").value();
  auto denial = ParseRule("<- p(x: X), X > 10.").value();
  auto program = Typecheck(s, {}, {r1, denial});
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rule_strata[1], program->max_stratum);
}

}  // namespace
}  // namespace logres
