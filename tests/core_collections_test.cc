// Tests for collection-valued rule machinery: sequences, multisets, nth /
// length, nil semantics in heads and values, and o-value merging when
// rules update existing objects.

#include <gtest/gtest.h>

#include "core/database.h"

namespace logres {
namespace {

TEST(CollectionRuleTest, SequencesFlowThroughRules) {
  auto db_result = Database::Create(R"(
    associations
      ROUTE = (name: string, stops: <string>);
      FIRSTSTOP = (name: string, stop: string);
      LEN = (name: string, n: integer);
  )");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("ROUTE", Value::MakeTuple(
      {{"name", Value::String("r1")},
       {"stops", Value::MakeSequence({Value::String("a"),
                                      Value::String("b"),
                                      Value::String("c")})}})).ok());
  auto apply = db.ApplySource(R"(
    rules
      firststop(name: N, stop: S) <- route(name: N, stops: Q),
                                     nth(Q, 1, S).
      len(name: N, n: L) <- route(name: N, stops: Q), length(Q, L).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_TRUE(db.edb().TuplesOf("FIRSTSTOP").count(Value::MakeTuple(
      {{"name", Value::String("r1")}, {"stop", Value::String("a")}})));
  EXPECT_TRUE(db.edb().TuplesOf("LEN").count(Value::MakeTuple(
      {{"name", Value::String("r1")}, {"n", Value::Int(3)}})));
}

TEST(CollectionRuleTest, SequencePatternMatching) {
  // A sequence term of patterns destructures a stored sequence.
  auto db_result = Database::Create(R"(
    associations
      PAIRSEQ = (s: <integer>);
      SWAPPED = (s: <integer>);
  )");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("PAIRSEQ", Value::MakeTuple(
      {{"s", Value::MakeSequence({Value::Int(1), Value::Int(2)})}})).ok());
  ASSERT_TRUE(db.InsertTuple("PAIRSEQ", Value::MakeTuple(
      {{"s", Value::MakeSequence({Value::Int(7)})}})).ok());
  auto apply = db.ApplySource(R"(
    rules
      swapped(s: T) <- pairseq(s: Q), Q = <A, B>, T = <B, A>.
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // Only the length-2 sequence matches the pattern.
  ASSERT_EQ(db.edb().TuplesOf("SWAPPED").size(), 1u);
  EXPECT_TRUE(db.edb().TuplesOf("SWAPPED").count(Value::MakeTuple(
      {{"s", Value::MakeSequence({Value::Int(2), Value::Int(1)})}})));
}

TEST(CollectionRuleTest, MultisetsKeepMultiplicity) {
  auto db_result = Database::Create(R"(
    associations
      BAG = (b: [integer]);
      SIZE = (n: integer);
  )");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("BAG", Value::MakeTuple(
      {{"b", Value::MakeMultiset({Value::Int(1), Value::Int(1),
                                  Value::Int(2)})}})).ok());
  auto apply = db.ApplySource(R"(
    rules
      size(n: N) <- bag(b: B), count(B, N).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // Multiset count includes duplicates: 3, not 2.
  EXPECT_TRUE(db.edb().TuplesOf("SIZE").count(Value::MakeTuple(
      {{"n", Value::Int(3)}})));
}

TEST(CollectionRuleTest, MemberEnumeratesSequencesWithDuplicates) {
  auto db_result = Database::Create(R"(
    associations
      Q = (s: <integer>);
      SEEN = (x: integer);
  )");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("Q", Value::MakeTuple(
      {{"s", Value::MakeSequence({Value::Int(5), Value::Int(5),
                                  Value::Int(6)})}})).ok());
  auto apply = db.ApplySource(
      "rules seen(x: X) <- q(s: S), member(X, S).",
      ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_EQ(db.edb().TuplesOf("SEEN").size(), 2u);  // deduped by SEEN
}

TEST(NilSemanticsTest, UnboundClassHeadVariableBecomesNil) {
  // Valuation map point (c): class-typed head variables not bound by the
  // body are nil — and nil is a legal class reference inside a class.
  auto db_result = Database::Create(R"(
    classes
      PERSON = (name: string, spouse: PERSON);
    associations
      SRC = (n: string);
  )");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("SRC", Value::MakeTuple(
      {{"n", Value::String("solo")}})).ok());
  auto apply = db.ApplySource(
      "rules person(self P, name: N, spouse: S) <- src(n: N).",
      ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  ASSERT_EQ(db.edb().OidsOf("PERSON").size(), 1u);
  Oid p = *db.edb().OidsOf("PERSON").begin();
  EXPECT_EQ(db.edb().OValue(p).value().field("spouse").value(),
            Value::Nil());
}

TEST(NilSemanticsTest, NilComparesOnlyToNil) {
  auto db_result = Database::Create(R"(
    classes
      PERSON = (name: string, spouse: PERSON);
    associations
      SINGLE = (name: string);
  )");
  Database db = std::move(db_result).value();
  auto a = db.InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("a")}, {"spouse", Value::Nil()}}));
  auto b = db.InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("b")}, {"spouse", Value::MakeOid(*a)}}));
  ASSERT_TRUE(a.ok() && b.ok());
  auto apply = db.ApplySource(R"(
    rules
      single(name: N) <- person(name: N, spouse: S), S = nil.
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_EQ(db.edb().TuplesOf("SINGLE").size(), 1u);
  EXPECT_TRUE(db.edb().TuplesOf("SINGLE").count(Value::MakeTuple(
      {{"name", Value::String("a")}})));
}

TEST(MergeSemanticsTest, PartialHeadUpdatesMergeIntoExistingObject) {
  // A rule that re-derives an existing object (same oid) with a subset of
  // fields keeps the other fields: the ⊕ composition merged with the
  // existing o-value.
  auto db_result = Database::Create(R"(
    classes
      PERSON = (name: string, age: integer);
  )");
  Database db = std::move(db_result).value();
  auto ann = db.InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("ann")}, {"age", Value::Int(30)}}));
  ASSERT_TRUE(ann.ok());
  auto apply = db.ApplySource(R"(
    rules
      person(self P, age: A2) <- person(self P, name: "ann", age: A),
                                 A2 = A + 1, A < 31.
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  Value v = db.edb().OValue(*ann).value();
  EXPECT_EQ(v.field("name").value(), Value::String("ann"));
  EXPECT_EQ(v.field("age").value(), Value::Int(31));
  EXPECT_EQ(db.edb().OidsOf("PERSON").size(), 1u);
}

TEST(MergeSemanticsTest, NestedCollectionsInObjects) {
  // Rules that rebuild an object's set-valued field.
  auto db_result = Database::Create(R"(
    classes
      TEAM = (tname: string, tags: {string});
    associations
      TAG = (tname: string, tag: string);
  )");
  Database db = std::move(db_result).value();
  auto t = db.InsertObject("TEAM", Value::MakeTuple(
      {{"tname", Value::String("milan")},
       {"tags", Value::MakeSet({})}}));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db.InsertTuple("TAG", Value::MakeTuple(
      {{"tname", Value::String("milan")},
       {"tag", Value::String("red")}})).ok());
  ASSERT_TRUE(db.InsertTuple("TAG", Value::MakeTuple(
      {{"tname", Value::String("milan")},
       {"tag", Value::String("black")}})).ok());
  auto apply = db.ApplySource(R"(
    rules
      team(self T, tags: S2) <- team(self T, tname: N, tags: S),
                                tag(tname: N, tag: G),
                                not member(G, S), append(S, G, S2).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  Value v = db.edb().OValue(*t).value();
  EXPECT_EQ(v.field("tags").value().size(), 2u);
  EXPECT_TRUE(v.field("tags").value().Contains(Value::String("red")));
}

TEST(CollectionRuleTest, EmptyCollectionLiterals) {
  auto db_result = Database::Create(R"(
    associations
      KINDS = (s: {integer}, q: <integer>, m: [integer]);
      HIT = (k: integer);
  )");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("KINDS", Value::MakeTuple(
      {{"s", Value::MakeSet({})},
       {"q", Value::MakeSequence({})},
       {"m", Value::MakeMultiset({})}})).ok());
  auto apply = db.ApplySource(R"(
    rules
      hit(k: 1) <- kinds(s: S), empty(S), S = {}.
      hit(k: 2) <- kinds(q: Q), Q = <>.
      hit(k: 3) <- kinds(m: M), M = [].
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_EQ(db.edb().TuplesOf("HIT").size(), 3u);
}

TEST(CollectionRuleTest, DeepNestingThroughRules) {
  // A set of sequences of tuples, consumed by chained member/nth.
  auto db_result = Database::Create(R"(
    associations
      DEEP = (d: {<(x: integer)>});
      OUT = (x: integer);
  )");
  Database db = std::move(db_result).value();
  Value inner1 = Value::MakeSequence(
      {Value::MakeTuple({{"x", Value::Int(10)}}),
       Value::MakeTuple({{"x", Value::Int(20)}})});
  Value inner2 = Value::MakeSequence(
      {Value::MakeTuple({{"x", Value::Int(30)}})});
  ASSERT_TRUE(db.InsertTuple("DEEP", Value::MakeTuple(
      {{"d", Value::MakeSet({inner1, inner2})}})).ok());
  auto apply = db.ApplySource(R"(
    rules
      out(x: X) <- deep(d: D), member(Q, D), member(T, Q),
                   T = (x: X).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_EQ(db.edb().TuplesOf("OUT").size(), 3u);
}

}  // namespace
}  // namespace logres
