// Unit tests for LOGRES type descriptors (Definition 1).

#include <gtest/gtest.h>

#include "core/type.h"

namespace logres {
namespace {

TEST(TypeTest, ElementaryTypes) {
  EXPECT_EQ(Type::Int().kind(), TypeKind::kInt);
  EXPECT_EQ(Type::String().kind(), TypeKind::kString);
  EXPECT_EQ(Type::Bool().kind(), TypeKind::kBool);
  EXPECT_EQ(Type::Real().kind(), TypeKind::kReal);
  EXPECT_TRUE(Type::Int().is_elementary());
  EXPECT_FALSE(Type::Named("X").is_elementary());
  EXPECT_EQ(Type().kind(), TypeKind::kInt);  // default
}

TEST(TypeTest, NamedReferences) {
  Type t = Type::Named("PERSON");
  EXPECT_EQ(t.kind(), TypeKind::kNamed);
  EXPECT_EQ(t.name(), "PERSON");
}

TEST(TypeTest, TupleFields) {
  Type t = Type::Tuple({{"name", Type::String()}, {"age", Type::Int()}});
  ASSERT_EQ(t.fields().size(), 2u);
  EXPECT_EQ(t.field("name").value(), Type::String());
  EXPECT_EQ(t.field("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Type::Int().field("x").status().code(), StatusCode::kTypeError);
}

TEST(TypeTest, CollectionConstructors) {
  Type s = Type::Set(Type::Int());
  Type m = Type::Multiset(Type::String());
  Type q = Type::Sequence(Type::Named("PLAYER"));
  EXPECT_TRUE(s.is_collection());
  EXPECT_TRUE(m.is_collection());
  EXPECT_TRUE(q.is_collection());
  EXPECT_EQ(s.element(), Type::Int());
  EXPECT_EQ(q.element().name(), "PLAYER");
  EXPECT_FALSE(Type::Int().is_collection());
}

TEST(TypeTest, StructuralEquality) {
  Type a = Type::Tuple({{"x", Type::Set(Type::Int())}});
  Type b = Type::Tuple({{"x", Type::Set(Type::Int())}});
  Type c = Type::Tuple({{"x", Type::Multiset(Type::Int())}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, Type::Tuple({{"y", Type::Set(Type::Int())}}));
  EXPECT_NE(Type::Named("A"), Type::Named("B"));
  EXPECT_EQ(Type::Named("A"), Type::Named("A"));
}

TEST(TypeTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ(Type::Set(Type::Named("ROLE")).ToString(), "{ROLE}");
  EXPECT_EQ(Type::Multiset(Type::Int()).ToString(), "[integer]");
  EXPECT_EQ(Type::Sequence(Type::Named("PLAYER")).ToString(), "<PLAYER>");
  EXPECT_EQ(
      Type::Tuple({{"name", Type::String()}, {"roles",
                    Type::Set(Type::Named("ROLE"))}}).ToString(),
      "(name: string, roles: {ROLE})");
}

TEST(TypeTest, ReferencedNamesCollectsAllOccurrences) {
  Type t = Type::Tuple({{"h", Type::Named("TEAM")},
                        {"g", Type::Named("TEAM")},
                        {"s", Type::Set(Type::Named("SCORE"))}});
  auto names = t.ReferencedNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "TEAM");
  EXPECT_EQ(names[1], "TEAM");
  EXPECT_EQ(names[2], "SCORE");
  EXPECT_TRUE(Type::Int().ReferencedNames().empty());
}

TEST(TypeTest, DeepNesting) {
  // {<(x: [integer])>} — nesting of all four constructors.
  Type t = Type::Set(Type::Sequence(
      Type::Tuple({{"x", Type::Multiset(Type::Int())}})));
  EXPECT_EQ(t.ToString(), "{<(x: [integer])>}");
  EXPECT_EQ(t.element().element().field("x").value().element(),
            Type::Int());
}

}  // namespace
}  // namespace logres
