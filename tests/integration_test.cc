// Integration tests: full workflows across parser, type checker,
// evaluator, modules, constraints and both back ends.

#include <gtest/gtest.h>

#include "core/algres_backend.h"
#include "core/database.h"

namespace logres {
namespace {

// A complete session over the football database (Example 2.1): schema,
// population, derivation, querying, update, re-query.
TEST(IntegrationTest, FootballSeasonWorkflow) {
  auto db_result = Database::Create(R"(
    domains
      NAME = string;
    classes
      PLAYER = (name: string, roles: {integer});
      TEAM = (team_name: string, base_players: <PLAYER>,
              substitutes: {PLAYER});
    associations
      GAME = (h_team: TEAM, g_team: TEAM, date: string,
              score: (home: integer, guest: integer));
      POINTS = (team: TEAM, pts: integer);
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();

  std::vector<Oid> teams;
  for (int t = 0; t < 3; ++t) {
    std::vector<Value> players;
    for (int p = 0; p < 3; ++p) {
      auto player = db.InsertObject("PLAYER", Value::MakeTuple(
          {{"name", Value::String("p" + std::to_string(t * 3 + p))},
           {"roles", Value::MakeSet({Value::Int(p)})}}));
      ASSERT_TRUE(player.ok());
      players.push_back(Value::MakeOid(*player));
    }
    auto team = db.InsertObject("TEAM", Value::MakeTuple(
        {{"team_name", Value::String("t" + std::to_string(t))},
         {"base_players", Value::MakeSequence(std::move(players))},
         {"substitutes", Value::MakeSet({})}}));
    ASSERT_TRUE(team.ok());
    teams.push_back(*team);
  }
  auto game = [&](int h, int g, int hs, int gs) {
    ASSERT_TRUE(db.InsertTuple("GAME", Value::MakeTuple(
        {{"h_team", Value::MakeOid(teams[h])},
         {"g_team", Value::MakeOid(teams[g])},
         {"date", Value::String("d")},
         {"score", Value::MakeTuple({{"home", Value::Int(hs)},
                                     {"guest", Value::Int(gs)}})}})).ok());
  };
  game(0, 1, 2, 0);
  game(1, 2, 1, 1);
  game(2, 0, 0, 3);

  // Winners get 2 points (RIDV materializes them extensionally).
  auto apply = db.ApplySource(R"(
    rules
      points(team: T, pts: 2) <-
          game(h_team: T, score: (home: H, guest: G)), H > G.
      points(team: T, pts: 2) <-
          game(g_team: T, score: (home: H, guest: G)), G > H.
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // t0 won both its games (home vs t1, away vs t2): the two derivations
  // of (t0, 2) deduplicate into a single association tuple — exactly the
  // duplicate-elimination role the paper assigns to associations.
  EXPECT_EQ(db.edb().TuplesOf("POINTS").size(), 1u);
  auto winners = db.Query("? points(team: T, pts: 2).");
  ASSERT_TRUE(winners.ok());
  ASSERT_EQ(winners->size(), 1u);
  EXPECT_EQ(winners->front().at("T"), Value::MakeOid(teams[0]));
}

// The university workflow of Section 4.2's update strategies: define a
// derived relation, materialize it, replace its definition.
TEST(IntegrationTest, UpdateDerivedRelationStrategy) {
  auto db_result = Database::Create(R"(
    associations
      EMP = (name: string, dept: string);
      STAFF = (name: string);
  )");
  ASSERT_TRUE(db_result.ok());
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("EMP", Value::MakeTuple(
      {{"name", Value::String("ann")},
       {"dept", Value::String("db")}})).ok());
  ASSERT_TRUE(db.InsertTuple("EMP", Value::MakeTuple(
      {{"name", Value::String("bob")},
       {"dept", Value::String("os")}})).ok());

  const char* old_def = "rules staff(name: N) <- emp(name: N, dept: \"db\").";
  // 1. Define the view persistently.
  ASSERT_TRUE(db.ApplySource(old_def, ApplicationMode::kRADI).ok());
  EXPECT_EQ(db.Materialize()->TuplesOf("STAFF").size(), 1u);
  // 2. "The cleanest way of updating an intensional relation":
  //    materialize with RIDV, delete the old rule with RDDI, add the new
  //    definition with RADI.
  ASSERT_TRUE(db.ApplySource(old_def, ApplicationMode::kRIDV).ok());
  ASSERT_TRUE(db.ApplySource(old_def, ApplicationMode::kRDDI).ok());
  EXPECT_TRUE(db.rules().empty());
  // The materialized fact is now extensional.
  EXPECT_EQ(db.edb().TuplesOf("STAFF").size(), 1u);
  const char* new_def = "rules staff(name: N) <- emp(name: N).";
  ASSERT_TRUE(db.ApplySource(new_def, ApplicationMode::kRADI).ok());
  EXPECT_EQ(db.Materialize()->TuplesOf("STAFF").size(), 2u);
}

// Both evaluation engines agree across a family of random flat recursive
// programs (parameterized cross-validation).
class EngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, EvaluatorMatchesAlgresBackend) {
  int seed = GetParam();
  auto db_result = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);"
      "             OUT = (a: integer);");
  Database db = std::move(db_result).value();
  // A pseudo-random graph derived from the seed.
  uint64_t x = static_cast<uint64_t>(seed) * 2654435761u + 17;
  for (int i = 0; i < 12; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    int64_t a = static_cast<int64_t>((x >> 13) % 8);
    int64_t b = static_cast<int64_t>((x >> 29) % 8);
    ASSERT_TRUE(db.InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(a)}, {"b", Value::Int(b)}})).ok());
  }
  auto unit = Parse(
      "rules "
      "tc(a: X, b: Y) <- e(a: X, b: Y)."
      "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z)."
      "out(a: X) <- tc(a: X, b: X).");
  ASSERT_TRUE(unit.ok());
  auto program = Typecheck(db.schema(), {}, unit->rules);
  ASSERT_TRUE(program.ok()) << program.status();

  OidGenerator gen;
  Evaluator evaluator(db.schema(), *program, &gen);
  auto direct = evaluator.Run(db.edb());
  ASSERT_TRUE(direct.ok()) << direct.status();

  auto backend = AlgresBackend::Compile(db.schema(), *program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  for (AlgresStrategy strategy :
       {AlgresStrategy::kNaive, AlgresStrategy::kSemiNaive}) {
    auto compiled = backend->Run(db.edb(), strategy);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    EXPECT_EQ(direct->TuplesOf("TC"), compiled->TuplesOf("TC"));
    EXPECT_EQ(direct->TuplesOf("OUT"), compiled->TuplesOf("OUT"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence, ::testing::Range(0, 20));

// Whole-pipeline data-function workflow with goal answering through a
// registered module.
TEST(IntegrationTest, BillOfMaterials) {
  // A part-explosion ("bill of materials") database: the motivating
  // workload for nested results.
  auto db_result = Database::Create(R"(
    classes
      PART = (pname: string, cost: integer);
    associations
      SUBPART = (whole: PART, piece: PART);
      EXPLOSION = (root: PART, pieces: {PART});
    functions
      ALLPIECES: PART -> {PART};
    module explode options RIDV
      rules
        member(X, allpieces(Y)) <- subpart(whole: Y, piece: X).
        member(X, allpieces(Y)) <- subpart(whole: Y, piece: Z),
                                   member(X, T), T = allpieces(Z).
        explosion(root: X, pieces: Y) <- subpart(whole: X),
                                         Y = allpieces(X).
    end
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();

  auto part = [&](const char* name, int cost) {
    return *db.InsertObject("PART", Value::MakeTuple(
        {{"pname", Value::String(name)}, {"cost", Value::Int(cost)}}));
  };
  Oid bike = part("bike", 0);
  Oid wheel = part("wheel", 0);
  Oid spoke = part("spoke", 1);
  Oid frame = part("frame", 40);
  auto sub = [&](Oid whole, Oid piece) {
    ASSERT_TRUE(db.InsertTuple("SUBPART", Value::MakeTuple(
        {{"whole", Value::MakeOid(whole)},
         {"piece", Value::MakeOid(piece)}})).ok());
  };
  sub(bike, wheel);
  sub(bike, frame);
  sub(wheel, spoke);

  ASSERT_TRUE(db.ApplyByName("explode").ok());
  // The bike's explosion contains wheel, frame, AND (transitively) spoke.
  bool found = false;
  for (const Value& row : db.edb().TuplesOf("EXPLOSION")) {
    if (row.field("root").value() == Value::MakeOid(bike)) {
      found = true;
      Value pieces = row.field("pieces").value();
      EXPECT_EQ(pieces.size(), 3u);
      EXPECT_TRUE(pieces.Contains(Value::MakeOid(spoke)));
    }
  }
  EXPECT_TRUE(found);

  // Sum the cost of the bike's pieces through builtins.
  auto answer = db.Query(
      "? explosion(root: (self R, pname: \"bike\"), pieces: P), "
      "member(X, P), part(self X, cost: C).");
  ASSERT_TRUE(answer.ok()) << answer.status();
  int64_t total = 0;
  for (const Bindings& b : *answer) total += b.at("C").int_value();
  EXPECT_EQ(total, 41);  // spoke(1) + frame(40) + wheel(0)
}

// Multi-module lifecycle: schema growth, inheritance added later, and a
// rejected evolution step.
TEST(IntegrationTest, SchemaEvolutionLifecycle) {
  auto db_result = Database::Create(R"(
    classes
      PERSON = (name: string);
  )");
  ASSERT_TRUE(db_result.ok());
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertObject("PERSON", Value::MakeTuple(
      {{"name", Value::String("ann")}})).ok());

  // Add a subclass through a module.
  auto grow = db.ApplySource(R"(
    classes
      EMPLOYEE = (PERSON, salary: integer);
      EMPLOYEE isa PERSON;
  )", ApplicationMode::kRADI);
  ASSERT_TRUE(grow.ok()) << grow.status();
  EXPECT_TRUE(db.schema().IsClass("EMPLOYEE"));
  EXPECT_TRUE(db.schema().IsaReachable("EMPLOYEE", "PERSON"));

  // Populate the subclass; the person count grows accordingly.
  ASSERT_TRUE(db.ApplySource(
      "rules employee(self E, name: \"bob\", salary: 100).",
      ApplicationMode::kRIDV).ok());
  EXPECT_EQ(db.edb().OidsOf("PERSON").size(), 2u);
  EXPECT_EQ(db.edb().OidsOf("EMPLOYEE").size(), 1u);

  // An evolution step that would orphan a referenced class is rejected.
  auto shrink = db.ApplySource(R"(
    classes
      PERSON = (name: string);
  )", ApplicationMode::kRDDI);
  EXPECT_FALSE(shrink.ok());
  EXPECT_TRUE(db.schema().IsClass("PERSON"));
}

}  // namespace
}  // namespace logres
