// Mutually recursive class structures — Example 3.1's full schema has
// PROFESSOR referencing SCHOOL and SCHOOL referencing PROFESSOR (through
// its dean). This exercises the coinductive refinement guard, circular
// object graphs at the instance level, dump/load of cycles, and queries
// navigating loops.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/dump.h"

namespace logres {
namespace {

Result<Database> CyclicSchema() {
  // The paper's Example 3.1 classes, verbatim in structure:
  //   SCHOOL = (NAME, ADDRESS, KIND, DEAN (PROFESSOR))
  //   PROFESSOR = (PERSON, COURSE, PROFSCHOOL SCHOOL)
  return Database::Create(R"(
    classes
      PERSON = (name: string, address: string);
      PROFESSOR = (PERSON, course: string, profschool: SCHOOL);
      PROFESSOR isa PERSON;
      STUDENT = (PERSON, studschool: SCHOOL);
      STUDENT isa PERSON;
      SCHOOL = (sname: string, kind: string, dean: PROFESSOR);
    associations
      ADVISES = (professor: PROFESSOR, student: STUDENT);
  )");
}

TEST(MutualRecursionTest, CyclicSchemaValidates) {
  auto db = CyclicSchema();
  ASSERT_TRUE(db.ok()) << db.status();
  const Schema& s = db->schema();
  // Refinement involving the cycle terminates (coinductive guard).
  EXPECT_TRUE(s.IsRefinement(Type::Named("PROFESSOR"),
                             Type::Named("PERSON")).value());
  EXPECT_FALSE(s.IsRefinement(Type::Named("SCHOOL"),
                              Type::Named("PERSON")).value());
  EXPECT_TRUE(s.IsRefinement(Type::Named("SCHOOL"),
                             Type::Named("SCHOOL")).value());
}

// Builds the circular instance: a school whose dean works at the school.
struct Campus {
  Database db;
  Oid dean;
  Oid school;
};

Result<Campus> BuildCampus() {
  LOGRES_ASSIGN_OR_RETURN(Database db, CyclicSchema());
  // Create the dean with a nil school first, the school referencing the
  // dean, then close the loop.
  LOGRES_ASSIGN_OR_RETURN(Oid dean, db.InsertObject("PROFESSOR",
      Value::MakeTuple({{"name", Value::String("Ceri")},
                        {"address", Value::String("Milano")},
                        {"course", Value::String("DB")},
                        {"profschool", Value::Nil()}})));
  LOGRES_ASSIGN_OR_RETURN(Oid school, db.InsertObject("SCHOOL",
      Value::MakeTuple({{"sname", Value::String("Informatica")},
                        {"kind", Value::String("eng")},
                        {"dean", Value::MakeOid(dean)}})));
  LOGRES_RETURN_NOT_OK(db.mutable_edb()->SetOValue(dean,
      Value::MakeTuple({{"name", Value::String("Ceri")},
                        {"address", Value::String("Milano")},
                        {"course", Value::String("DB")},
                        {"profschool", Value::MakeOid(school)}})));
  Campus out{std::move(db), dean, school};
  return out;
}

TEST(MutualRecursionTest, CircularInstanceIsConsistent) {
  Campus campus = BuildCampus().value();
  auto inst = campus.db.Materialize();
  ASSERT_TRUE(inst.ok()) << inst.status();
  EXPECT_TRUE(inst->CheckConsistent(campus.db.schema()).ok());
}

TEST(MutualRecursionTest, QueriesNavigateTheLoop) {
  Campus campus = BuildCampus().value();
  // Who is the dean of the school they work at?
  auto ans = campus.db.Query(
      "? professor(self P, profschool: S), "
      "school(self S, dean: P, sname: N).");
  ASSERT_TRUE(ans.ok()) << ans.status();
  ASSERT_EQ(ans->size(), 1u);
  EXPECT_EQ(ans->front().at("N"), Value::String("Informatica"));
}

TEST(MutualRecursionTest, ObjectPatternThroughTheLoop) {
  Campus campus = BuildCampus().value();
  // Dereference two hops: school -> dean -> profschool.
  auto ans = campus.db.Query(
      "? school(self S, dean: (self D, profschool: (self S2, sname: N))).");
  ASSERT_TRUE(ans.ok()) << ans.status();
  ASSERT_EQ(ans->size(), 1u);
  // The loop closes: S2 == S.
  EXPECT_EQ(ans->front().at("S2"), ans->front().at("S"));
}

TEST(MutualRecursionTest, CyclicGraphSurvivesDumpLoad) {
  Campus campus = BuildCampus().value();
  std::string dump = DumpDatabase(campus.db);
  auto loaded = LoadDatabase(dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status() << "\n" << dump;
  EXPECT_TRUE(loaded->edb() == campus.db.edb());
  // The restored loop still answers the navigation query.
  auto ans = loaded->Query(
      "? professor(self P, profschool: S), school(self S, dean: P).");
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 1u);
}

TEST(MutualRecursionTest, DeletionInsideLoopIsRejected) {
  // Deleting the dean would leave the school dangling: the referential
  // constraint rejects the module application.
  Campus campus = BuildCampus().value();
  auto result = campus.db.ApplySource(
      "rules not professor(self X) <- professor(self X, course: \"DB\").",
      ApplicationMode::kRIDV);
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
  // The dean survives the rejected application.
  EXPECT_TRUE(campus.db.edb().HasObject("PROFESSOR", campus.dean));
}

TEST(MutualRecursionTest, IsomorphismOnCyclicGraphs) {
  Instance a = BuildCampus().value().db.edb();
  // A second campus built after burning oids: isomorphic, not equal.
  auto db2 = CyclicSchema().value();
  db2.oid_generator()->Next();
  db2.oid_generator()->Next();
  auto dean = db2.InsertObject("PROFESSOR",
      Value::MakeTuple({{"name", Value::String("Ceri")},
                        {"address", Value::String("Milano")},
                        {"course", Value::String("DB")},
                        {"profschool", Value::Nil()}})).value();
  auto school = db2.InsertObject("SCHOOL",
      Value::MakeTuple({{"sname", Value::String("Informatica")},
                        {"kind", Value::String("eng")},
                        {"dean", Value::MakeOid(dean)}})).value();
  ASSERT_TRUE(db2.mutable_edb()->SetOValue(dean,
      Value::MakeTuple({{"name", Value::String("Ceri")},
                        {"address", Value::String("Milano")},
                        {"course", Value::String("DB")},
                        {"profschool", Value::MakeOid(school)}})).ok());
  Instance b = db2.edb();
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a.IsomorphicTo(b));
}

}  // namespace
}  // namespace logres
