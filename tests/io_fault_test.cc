// Unit tests for the storage I/O seam (util/io.h): the bounded-retry
// helpers WriteAll / ReadAll / SyncRetry must terminate under EINTR
// storms and short-transfer storms and must surface persistent errnos
// as kUnavailable; FaultyIo's scripted faults must honour skip/count
// semantics and its randomized schedule must be a pure function of the
// seed (a failing soak iteration is reproducible from its seed alone).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <string>

#include "util/io.h"
#include "util/status.h"

namespace logres {
namespace {

std::string MakeTempFile() {
  std::string templ = ::testing::TempDir() + "logres_io_XXXXXX";
  int fd = ::mkstemp(templ.data());
  EXPECT_GE(fd, 0);
  ::close(fd);
  return templ;
}

std::string Payload(size_t n) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) s.push_back(static_cast<char>('a' + i % 26));
  return s;
}

int OpenRw(Io& io, const std::string& path) {
  // The raw interface retries nothing — loop on EINTR here the way the
  // storage layer's helpers do.
  IoResult r = IoResult::Error(EINTR);
  for (int i = 0; i < 200 && !r.ok() && r.err == EINTR; ++i) {
    r = io.Open(path, O_RDWR, 0644);
  }
  EXPECT_TRUE(r.ok()) << r.err;
  return static_cast<int>(r.value);
}

// Round-trips `data` through WriteAll + ReadAll over `io`, asserting
// both directions succeed and the bytes survive.
void RoundTrip(Io& io, const std::string& path, const std::string& data) {
  int fd = OpenRw(io, path);
  ASSERT_TRUE(WriteAll(io, fd, data.data(), data.size(), "test write").ok());
  ASSERT_TRUE(io.Lseek(fd, 0, SEEK_SET).ok());
  auto read = ReadAll(io, fd, "test read");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, data);
  io.Close(fd);
}

// ---------------------------------------------------------------------------
// Transient storms terminate with the data intact.

TEST(IoFaultTest, WriteAllSurvivesEintrStorm) {
  FaultyIo::Config cfg;
  cfg.seed = 11;
  cfg.p_eintr = 0.5;  // every other interruptible call starts a storm
  cfg.max_eintr_run = 8;
  FaultyIo io(cfg);
  RoundTrip(io, MakeTempFile(), Payload(4096));
  EXPECT_GT(io.faults_injected(), 0u);
}

TEST(IoFaultTest, WriteAllSurvivesPerpetualShortWrites) {
  FaultyIo::Config cfg;
  cfg.seed = 12;
  cfg.p_short_write = 1.0;  // every multi-byte write transfers a prefix
  cfg.p_short_read = 1.0;
  FaultyIo io(cfg);
  // Every transfer advances by at least one byte, so the retry loops
  // terminate even when the storm never ends.
  RoundTrip(io, MakeTempFile(), Payload(2048));
}

TEST(IoFaultTest, ScriptedEintrBurstIsRetriedInPlace) {
  FaultyIo io(FaultyIo::Config{});
  io.InjectErrno(FaultyIo::Op::kWrite, EINTR, /*skip=*/0, /*count=*/10);
  std::string path = MakeTempFile();
  std::string data = Payload(128);
  int fd = OpenRw(io, path);
  EXPECT_TRUE(WriteAll(io, fd, data.data(), data.size(), "storm").ok());
  io.Close(fd);
  EXPECT_EQ(io.faults_for(FaultyIo::Op::kWrite), 10u);
}

// ---------------------------------------------------------------------------
// Persistent errnos surface as kUnavailable — never retried forever.

TEST(IoFaultTest, PersistentEnospcSurfacesAsUnavailable) {
  FaultyIo io(FaultyIo::Config{});
  io.InjectErrno(FaultyIo::Op::kWrite, ENOSPC);
  std::string data = Payload(64);
  int fd = OpenRw(io, MakeTempFile());
  Status st = WriteAll(io, fd, data.data(), data.size(), "doomed write");
  io.Close(fd);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("doomed write"), std::string::npos);
}

TEST(IoFaultTest, EintrStormBeyondRetryBoundGivesUp) {
  FaultyIo io(FaultyIo::Config{});
  // A storm longer than kMaxIoRetries no-progress attempts must be
  // treated as persistent: the loop is bounded, not hopeful.
  io.InjectErrno(FaultyIo::Op::kWrite, EINTR, /*skip=*/0,
                 /*count=*/SIZE_MAX);
  std::string data = Payload(64);
  int fd = OpenRw(io, MakeTempFile());
  Status st = WriteAll(io, fd, data.data(), data.size(), "storm write");
  io.Close(fd);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST(IoFaultTest, SyncRetrySurfacesPersistentFsyncFailure) {
  FaultyIo io(FaultyIo::Config{});
  io.InjectErrno(FaultyIo::Op::kFdatasync, EIO);
  int fd = OpenRw(io, MakeTempFile());
  Status st = SyncRetry(io, fd, "doomed sync");
  io.Close(fd);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Scripted-fault semantics.

TEST(IoFaultTest, ScriptedFaultHonoursSkipAndCount) {
  FaultyIo io(FaultyIo::Config{});
  io.InjectErrno(FaultyIo::Op::kFtruncate, EIO, /*skip=*/2, /*count=*/3);
  int fd = OpenRw(io, MakeTempFile());
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(io.Ftruncate(fd, 0).ok()) << "skip window, call " << i;
  }
  for (int i = 0; i < 3; ++i) {
    IoResult r = io.Ftruncate(fd, 0);
    ASSERT_FALSE(r.ok()) << "fault window, call " << i;
    EXPECT_EQ(r.err, EIO);
  }
  EXPECT_TRUE(io.Ftruncate(fd, 0).ok()) << "fault exhausted";
  io.Close(fd);
  EXPECT_EQ(io.faults_for(FaultyIo::Op::kFtruncate), 3u);
}

TEST(IoFaultTest, ClearInjectedLetsOperationsThrough) {
  FaultyIo io(FaultyIo::Config{});
  io.InjectErrno(FaultyIo::Op::kWrite, ENOSPC);  // persistent
  int fd = OpenRw(io, MakeTempFile());
  char byte = 'x';
  ASSERT_FALSE(io.Write(fd, &byte, 1).ok());
  io.ClearInjected();  // "the disk came back"
  EXPECT_TRUE(io.Write(fd, &byte, 1).ok());
  io.Close(fd);
}

// ---------------------------------------------------------------------------
// Corrupt-on-read: the bytes on disk stay intact; only the reader's
// view is perturbed (media corruption for the layers above to catch).

TEST(IoFaultTest, CorruptOnReadLeavesDiskIntact) {
  std::string path = MakeTempFile();
  std::string data = Payload(512);
  {
    int fd = OpenRw(PosixIo(), path);
    ASSERT_TRUE(WriteAll(PosixIo(), fd, data.data(), data.size(), "w").ok());
    PosixIo().Close(fd);
  }
  FaultyIo::Config cfg;
  cfg.seed = 13;
  cfg.p_read_corrupt = 1.0;
  FaultyIo io(cfg);
  {
    int fd = OpenRw(io, path);
    auto read = ReadAll(io, fd, "corrupt read");
    io.Close(fd);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(read->size(), data.size());
    EXPECT_NE(*read, data) << "every read corrupted, yet bytes match";
  }
  {
    int fd = OpenRw(PosixIo(), path);
    auto read = ReadAll(PosixIo(), fd, "clean read");
    PosixIo().Close(fd);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, data);
  }
}

// ---------------------------------------------------------------------------
// Determinism: the randomized schedule is a pure function of the seed
// and the call sequence.

size_t RunCannedSequence(uint64_t seed) {
  FaultyIo::Config cfg;
  cfg.seed = seed;
  cfg.p_write_error = 0.2;
  cfg.p_short_write = 0.3;
  cfg.p_eintr = 0.3;
  cfg.p_fsync_error = 0.2;
  cfg.p_short_read = 0.3;
  FaultyIo io(cfg);
  std::string path = MakeTempFile();
  std::string data = Payload(256);
  int fd = OpenRw(io, path);
  for (int i = 0; i < 20; ++i) {
    (void)io.Write(fd, data.data(), data.size());
    (void)io.Fdatasync(fd);
    (void)io.Lseek(fd, 0, SEEK_SET);
    char buf[64];
    (void)io.Read(fd, buf, sizeof(buf));
  }
  io.Close(fd);
  return io.faults_injected();
}

TEST(IoFaultTest, RandomizedScheduleIsSeedDeterministic) {
  size_t a = RunCannedSequence(99);
  size_t b = RunCannedSequence(99);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
  // A different seed produces a different schedule (overwhelmingly; the
  // sequences draw dozens of Bernoulli trials).
  size_t c = RunCannedSequence(77777);
  size_t d = RunCannedSequence(77777);
  EXPECT_EQ(c, d);
}

}  // namespace
}  // namespace logres
