// Property-based sweeps over semantic invariants:
//   * determinacy up to oid renaming across generator offsets and input
//     permutations (Appendix B);
//   * inflationary monotonicity on positive programs (E ⊆ I);
//   * powerset cardinality law |P(R)| = 2^|R| (Example 3.3);
//   * three-engine agreement (direct evaluator, ALGRES backend, flat
//     Datalog baseline) on flat recursive programs;
//   * module-mode algebra: RADI then RDDI of the same module restores the
//     rule set; RIDI never changes state.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "algres/algebra.h"
#include "core/algres_backend.h"
#include "core/database.h"
#include "datalog/datalog.h"
#include "util/string_util.h"

namespace logres {
namespace {

// ---------------------------------------------------------------------------
// Determinacy up to oid renaming.

class DeterminacyProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminacyProperty, GeneratorOffsetAndInputOrderIrrelevant) {
  int seed = GetParam();
  // Source facts derived from the seed.
  std::vector<int64_t> xs;
  for (int i = 0; i < 6; ++i) xs.push_back((seed * 7 + i * 13) % 10);

  auto build = [&](int burn, bool reversed) -> Instance {
    auto db_result = Database::Create(
        "classes OBJ = (x: integer); LINK = (x: integer, prev: OBJ);"
        "associations S = (x: integer);");
    Database db = std::move(db_result).value();
    for (int i = 0; i < burn; ++i) db.oid_generator()->Next();
    std::vector<int64_t> input = xs;
    if (reversed) std::reverse(input.begin(), input.end());
    for (int64_t x : input) {
      (void)db.InsertTuple("S", Value::MakeTuple({{"x", Value::Int(x)}}));
    }
    // Two levels of invention: objects from facts, links from objects.
    EXPECT_TRUE(db.ApplySource(
        "rules obj(self O, x: X) <- s(x: X)."
        "      link(self L, x: X, prev: O) <- obj(self O, x: X).",
        ApplicationMode::kRIDV).ok());
    return db.edb();
  };

  Instance base = build(0, false);
  Instance offset = build(seed % 20 + 1, false);
  Instance reordered = build(0, true);
  EXPECT_TRUE(base.IsomorphicTo(offset));
  EXPECT_TRUE(base.IsomorphicTo(reordered));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminacyProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Inflationary monotonicity: on positive programs every extensional fact
// survives into the instance.

class MonotonicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityProperty, EdbContainedInInstance) {
  int seed = GetParam();
  auto db_result = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);");
  Database db = std::move(db_result).value();
  uint64_t x = static_cast<uint64_t>(seed) + 1;
  for (int i = 0; i < 10; ++i) {
    x = x * 48271 % 0x7fffffff;
    (void)db.InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(static_cast<int64_t>(x % 6))},
         {"b", Value::Int(static_cast<int64_t>((x >> 8) % 6))}}));
  }
  Instance before = db.edb();
  ASSERT_TRUE(db.ApplySource(
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).",
      ApplicationMode::kRIDV).ok());
  for (const auto& [assoc, tuples] : before.associations()) {
    for (const Value& t : tuples) {
      EXPECT_TRUE(db.edb().TuplesOf(assoc).count(t))
          << assoc << " lost " << t.ToString();
    }
  }
  // TC contains E.
  for (const Value& t : db.edb().TuplesOf("E")) {
    EXPECT_TRUE(db.edb().TuplesOf("TC").count(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityProperty,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Powerset cardinality (Example 3.3).

class PowersetProperty : public ::testing::TestWithParam<int> {};

TEST_P(PowersetProperty, CardinalityIsTwoToTheN) {
  int n = GetParam();
  auto db_result = Database::Create(
      "associations R = (d: integer); POWER = (set: {integer});");
  Database db = std::move(db_result).value();
  for (int i = 1; i <= n; ++i) {
    (void)db.InsertTuple("R", Value::MakeTuple({{"d", Value::Int(i)}}));
  }
  ASSERT_TRUE(db.ApplySource(
      "rules power(set: X) <- X = {}."
      "      power(set: X) <- r(d: Y), append({}, Y, X)."
      "      power(set: X) <- power(set: Y), power(set: Z), union(X, Y, Z).",
      ApplicationMode::kRIDV).ok());
  EXPECT_EQ(db.edb().TuplesOf("POWER").size(),
            static_cast<size_t>(1) << n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PowersetProperty, ::testing::Range(0, 7));

// ---------------------------------------------------------------------------
// Three engines agree on flat transitive closure.

class ThreeEngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThreeEngineProperty, AllEnginesComputeTheSameClosure) {
  int seed = GetParam();
  std::vector<std::pair<int64_t, int64_t>> edges;
  uint64_t x = static_cast<uint64_t>(seed) * 9973 + 1;
  for (int i = 0; i < 15; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    edges.emplace_back(static_cast<int64_t>((x >> 7) % 7),
                       static_cast<int64_t>((x >> 23) % 7));
  }

  // Engine 1: the LOGRES evaluator.
  auto db_result = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);");
  Database db = std::move(db_result).value();
  for (const auto& [a, b] : edges) {
    (void)db.InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(a)}, {"b", Value::Int(b)}}));
  }
  auto unit = Parse(
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).");
  auto program = Typecheck(db.schema(), {}, unit->rules).value();
  OidGenerator gen;
  Evaluator evaluator(db.schema(), program, &gen);
  Instance direct = evaluator.Run(db.edb()).value();

  // Engine 2: the ALGRES-compiled backend.
  auto backend = AlgresBackend::Compile(db.schema(), program).value();
  Instance compiled = backend.Run(db.edb()).value();
  EXPECT_EQ(direct.TuplesOf("TC"), compiled.TuplesOf("TC"));

  // Engine 3: the flat Datalog baseline.
  namespace dl = datalog;
  dl::Program baseline;
  for (const auto& [a, b] : edges) {
    (void)baseline.AddFact("e", {dl::Constant::Int(a),
                                 dl::Constant::Int(b)});
  }
  dl::Rule r1, r2;
  r1.head = dl::Literal{"tc", {dl::Term::Var("X"), dl::Term::Var("Y")},
                        false};
  r1.body = {dl::Literal{"e", {dl::Term::Var("X"), dl::Term::Var("Y")},
                         false}};
  r2.head = dl::Literal{"tc", {dl::Term::Var("X"), dl::Term::Var("Z")},
                        false};
  r2.body = {dl::Literal{"tc", {dl::Term::Var("X"), dl::Term::Var("Y")},
                         false},
             dl::Literal{"e", {dl::Term::Var("Y"), dl::Term::Var("Z")},
                         false}};
  ASSERT_TRUE(baseline.AddRule(r1).ok());
  ASSERT_TRUE(baseline.AddRule(r2).ok());
  auto flat = dl::Evaluate(baseline).value();
  std::set<std::pair<int64_t, int64_t>> flat_pairs;
  for (const auto& fact : flat["tc"]) {
    flat_pairs.emplace(fact[0].int_value(), fact[1].int_value());
  }
  std::set<std::pair<int64_t, int64_t>> logres_pairs;
  for (const Value& t : direct.TuplesOf("TC")) {
    logres_pairs.emplace(t.field("a").value().int_value(),
                         t.field("b").value().int_value());
  }
  EXPECT_EQ(logres_pairs, flat_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeEngineProperty,
                         ::testing::Range(0, 15));

// ---------------------------------------------------------------------------
// Module mode algebra.

class ModuleAlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(ModuleAlgebraProperty, RadiThenRddiRestoresRules) {
  int seed = GetParam();
  auto db_result = Database::Create(
      "associations P = (x: integer); Q = (x: integer);");
  Database db = std::move(db_result).value();
  for (int i = 0; i <= seed % 4; ++i) {
    (void)db.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}));
  }
  std::string rule = "rules q(x: X) <- p(x: X), X >= " +
                     std::to_string(seed % 3) + ".";
  size_t rules_before = db.rules().size();
  ASSERT_TRUE(db.ApplySource(rule, ApplicationMode::kRADI).ok());
  ASSERT_TRUE(db.ApplySource(rule, ApplicationMode::kRDDI).ok());
  EXPECT_EQ(db.rules().size(), rules_before);
}

TEST_P(ModuleAlgebraProperty, RidiNeverChangesState) {
  int seed = GetParam();
  auto db_result = Database::Create(
      "associations P = (x: integer); Q = (x: integer);");
  Database db = std::move(db_result).value();
  for (int i = 0; i <= seed % 5; ++i) {
    (void)db.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}));
  }
  Instance edb_before = db.edb();
  size_t rules_before = db.rules().size();
  auto result = db.ApplySource(
      "rules q(x: X) <- p(x: X). goal ? q(x: X).",
      ApplicationMode::kRIDI);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(db.edb() == edb_before);
  EXPECT_EQ(db.rules().size(), rules_before);
  // But the query did see the derived facts.
  EXPECT_EQ(result->goal_answer->size(),
            static_cast<size_t>(seed % 5 + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModuleAlgebraProperty,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Deletion/addition commutation within one step: the net effect of a
// module is order-independent of its rule listing.

class RuleOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(RuleOrderProperty, RuleListingOrderIrrelevant) {
  int seed = GetParam();
  std::vector<std::string> rules = {
      "q(x: X) <- p(x: X), even(X).",
      "q(x: Y) <- p(x: X), Y = X + 10, odd(X).",
      "r(x: X) <- q(x: X), X > 2.",
  };
  // A seed-dependent permutation.
  std::vector<std::string> permuted = rules;
  for (int i = 0; i < seed % 6; ++i) {
    std::next_permutation(permuted.begin(), permuted.end());
  }
  auto run = [&](const std::vector<std::string>& ordering) -> Instance {
    auto db_result = Database::Create(
        "associations P = (x: integer); Q = (x: integer);"
        "             R = (x: integer);");
    Database db = std::move(db_result).value();
    for (int i = 0; i < 6; ++i) {
      (void)db.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}));
    }
    std::string text = "rules ";
    for (const std::string& r : ordering) text += r + " ";
    EXPECT_TRUE(db.ApplySource(text, ApplicationMode::kRIDV).ok());
    return db.edb();
  };
  EXPECT_TRUE(run(rules) == run(permuted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleOrderProperty, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// The join-index optimization never changes results.

class IndexAblationProperty : public ::testing::TestWithParam<int> {};

TEST_P(IndexAblationProperty, IndexedAndScannedRunsAgree) {
  int seed = GetParam();
  auto make_db = []() {
    auto db_result = Database::Create(
        "classes NODE = (id: integer);"
        "associations E = (a: NODE, b: NODE);"
        "             TC = (a: NODE, b: NODE);");
    return std::move(db_result).value();
  };
  auto run = [&](bool use_indexes, bool reorder_literals) -> Instance {
    Database db = make_db();
    std::vector<Oid> nodes;
    for (int i = 0; i < 6; ++i) {
      nodes.push_back(*db.InsertObject("NODE", Value::MakeTuple(
          {{"id", Value::Int(i)}})));
    }
    uint64_t x = static_cast<uint64_t>(seed) * 31 + 7;
    for (int i = 0; i < 10; ++i) {
      x = x * 48271 % 0x7fffffff;
      (void)db.InsertTuple("E", Value::MakeTuple(
          {{"a", Value::MakeOid(nodes[x % 6])},
           {"b", Value::MakeOid(nodes[(x >> 8) % 6])}}));
    }
    EvalOptions options;
    options.use_indexes = use_indexes;
    options.reorder_literals = reorder_literals;
    EXPECT_TRUE(db.ApplySource(
        "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
        "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).",
        ApplicationMode::kRIDV, options).ok());
    return db.edb();
  };
  Instance reference = run(true, true);
  EXPECT_TRUE(reference == run(false, true));
  EXPECT_TRUE(reference == run(true, false));
  EXPECT_TRUE(reference == run(false, false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexAblationProperty,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// The hash-join operators agree with naive scan references on random NF²
// relations (nil, oid, and nested-set cells; empty relations; disjoint
// headers). References compare cells with deep Compare, so a defective
// memoized hash or bucket layout shows up as a disagreement here.

namespace hashjoin {

using algres::Relation;
using algres::Row;

// Small value domain so joins actually match and hashes actually collide
// across kinds.
Value RandomCell(uint64_t* state) {
  auto next = [&] { return *state = *state * 6364136223846793005ull + 1442695040888963407ull; };
  switch (next() >> 33 & 7) {
    case 0: return Value::Nil();
    case 1: return Value::Int(static_cast<int64_t>(next() >> 40 & 3));
    case 2: return Value::String(StrCat("s", next() >> 40 & 1));
    case 3: return Value::MakeOid(Oid{(next() >> 40 & 3) + 1});
    case 4: {
      std::vector<Value> elems;
      for (uint64_t i = 0, n = next() >> 40 & 3; i < n; ++i) {
        elems.push_back(Value::Int(static_cast<int64_t>(next() >> 40 & 2)));
      }
      return Value::MakeSet(std::move(elems));
    }
    default: return Value::Int(static_cast<int64_t>(next() >> 40 & 7));
  }
}

Relation RandomRelation(const std::vector<std::string>& columns, size_t rows,
                        uint64_t* state) {
  Relation rel(columns);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    for (size_t c = 0; c < columns.size(); ++c) {
      row.push_back(RandomCell(state));
    }
    (void)rel.Insert(std::move(row));
  }
  return rel;
}

bool DeepEq(const Value& a, const Value& b) { return a.Compare(b) == 0; }

// Scan reference for EquiJoin: nested loops, deep comparison, right key
// columns dropped.
Result<Relation> ScanEquiJoin(
    const Relation& left, const Relation& right,
    const std::vector<std::pair<std::string, std::string>>& on) {
  std::vector<size_t> lkey, rkey, rkeep;
  for (const auto& [l, r] : on) {
    LOGRES_ASSIGN_OR_RETURN(size_t li, left.ColumnIndex(l));
    LOGRES_ASSIGN_OR_RETURN(size_t ri, right.ColumnIndex(r));
    lkey.push_back(li);
    rkey.push_back(ri);
  }
  std::vector<std::string> columns = left.columns();
  for (size_t i = 0; i < right.columns().size(); ++i) {
    if (std::find(rkey.begin(), rkey.end(), i) == rkey.end()) {
      rkeep.push_back(i);
      columns.push_back(right.columns()[i]);
    }
  }
  Relation out(std::move(columns));
  for (const Row& l : left) {
    for (const Row& r : right) {
      bool match = true;
      for (size_t k = 0; k < lkey.size(); ++k) {
        if (!DeepEq(l[lkey[k]], r[rkey[k]])) { match = false; break; }
      }
      if (!match) continue;
      Row row = l;
      for (size_t i : rkeep) row.push_back(r[i]);
      LOGRES_RETURN_NOT_OK(out.Insert(std::move(row)).status());
    }
  }
  return out;
}

// Scan reference for SemiJoin: left rows with a partner under the natural
// join on shared column names (disjoint headers: any partner works).
Result<Relation> ScanSemiJoin(const Relation& left, const Relation& right) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < left.columns().size(); ++i) {
    for (size_t j = 0; j < right.columns().size(); ++j) {
      if (left.columns()[i] == right.columns()[j]) shared.emplace_back(i, j);
    }
  }
  Relation out(left.columns());
  for (const Row& l : left) {
    bool matched = false;
    for (const Row& r : right) {
      bool match = true;
      for (const auto& [li, ri] : shared) {
        if (!DeepEq(l[li], r[ri])) { match = false; break; }
      }
      if (match) { matched = true; break; }
    }
    if (matched) LOGRES_RETURN_NOT_OK(out.Insert(l).status());
  }
  return out;
}

Result<Relation> ScanDifference(const Relation& left, const Relation& right) {
  Relation out(left.columns());
  for (const Row& l : left) {
    bool present = false;
    for (const Row& r : right) {
      bool eq = l.size() == r.size();
      for (size_t i = 0; eq && i < l.size(); ++i) eq = DeepEq(l[i], r[i]);
      if (eq) { present = true; break; }
    }
    if (!present) LOGRES_RETURN_NOT_OK(out.Insert(l).status());
  }
  return out;
}

}  // namespace hashjoin

TEST(HashJoinProperty, IndexedOperatorsAgreeWithScanReferences) {
  using algres::Relation;
  using algres::Row;
  for (int round = 0; round < 200; ++round) {
    uint64_t state = static_cast<uint64_t>(round) * 2654435761u + 17;
    // Sizes include 0 so empty inputs are exercised regularly.
    size_t lrows = round % 9;
    size_t rrows = (round / 3) % 9;

    // EquiJoin over disjoint headers joined on explicit pairs.
    Relation ej_left =
        hashjoin::RandomRelation({"a", "b"}, lrows, &state);
    Relation ej_right =
        hashjoin::RandomRelation({"x", "y"}, rrows, &state);
    std::vector<std::pair<std::string, std::string>> on = {{"a", "x"}};
    if (round % 4 == 0) on.push_back({"b", "y"});
    auto indexed = algres::EquiJoin(ej_left, ej_right, on);
    auto scanned = hashjoin::ScanEquiJoin(ej_left, ej_right, on);
    ASSERT_TRUE(indexed.ok()) << indexed.status();
    ASSERT_TRUE(scanned.ok()) << scanned.status();
    EXPECT_EQ(indexed->ToString(), scanned->ToString()) << "round " << round;

    // SemiJoin with overlapping headers — or, every third round, fully
    // disjoint headers (the degenerate product case).
    Relation sj_left = hashjoin::RandomRelation({"a", "b"}, lrows, &state);
    Relation sj_right = (round % 3 == 0)
                            ? hashjoin::RandomRelation({"u", "v"}, rrows,
                                                       &state)
                            : hashjoin::RandomRelation({"b", "c"}, rrows,
                                                       &state);
    auto semi = algres::SemiJoin(sj_left, sj_right);
    auto semi_ref = hashjoin::ScanSemiJoin(sj_left, sj_right);
    ASSERT_TRUE(semi.ok()) << semi.status();
    ASSERT_TRUE(semi_ref.ok()) << semi_ref.status();
    EXPECT_EQ(semi->ToString(), semi_ref->ToString()) << "round " << round;

    // Difference over identical headers, with the right side seeded from
    // left rows so subtraction actually happens.
    Relation df_left = hashjoin::RandomRelation({"a", "b"}, lrows, &state);
    Relation df_right(df_left.columns());
    size_t taken = 0;
    for (const Row& row : df_left) {
      if (taken++ % 2 == 0) (void)df_right.Insert(row);
    }
    for (const Row& row :
         hashjoin::RandomRelation({"a", "b"}, rrows / 2, &state)) {
      (void)df_right.Insert(row);
    }
    auto diff = algres::Difference(df_left, df_right);
    auto diff_ref = hashjoin::ScanDifference(df_left, df_right);
    ASSERT_TRUE(diff.ok()) << diff.status();
    ASSERT_TRUE(diff_ref.ok()) << diff_ref.status();
    EXPECT_EQ(diff->ToString(), diff_ref->ToString()) << "round " << round;
  }
}

}  // namespace
}  // namespace logres
