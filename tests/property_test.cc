// Property-based sweeps over semantic invariants:
//   * determinacy up to oid renaming across generator offsets and input
//     permutations (Appendix B);
//   * inflationary monotonicity on positive programs (E ⊆ I);
//   * powerset cardinality law |P(R)| = 2^|R| (Example 3.3);
//   * three-engine agreement (direct evaluator, ALGRES backend, flat
//     Datalog baseline) on flat recursive programs;
//   * module-mode algebra: RADI then RDDI of the same module restores the
//     rule set; RIDI never changes state.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/algres_backend.h"
#include "core/database.h"
#include "datalog/datalog.h"

namespace logres {
namespace {

// ---------------------------------------------------------------------------
// Determinacy up to oid renaming.

class DeterminacyProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminacyProperty, GeneratorOffsetAndInputOrderIrrelevant) {
  int seed = GetParam();
  // Source facts derived from the seed.
  std::vector<int64_t> xs;
  for (int i = 0; i < 6; ++i) xs.push_back((seed * 7 + i * 13) % 10);

  auto build = [&](int burn, bool reversed) -> Instance {
    auto db_result = Database::Create(
        "classes OBJ = (x: integer); LINK = (x: integer, prev: OBJ);"
        "associations S = (x: integer);");
    Database db = std::move(db_result).value();
    for (int i = 0; i < burn; ++i) db.oid_generator()->Next();
    std::vector<int64_t> input = xs;
    if (reversed) std::reverse(input.begin(), input.end());
    for (int64_t x : input) {
      (void)db.InsertTuple("S", Value::MakeTuple({{"x", Value::Int(x)}}));
    }
    // Two levels of invention: objects from facts, links from objects.
    EXPECT_TRUE(db.ApplySource(
        "rules obj(self O, x: X) <- s(x: X)."
        "      link(self L, x: X, prev: O) <- obj(self O, x: X).",
        ApplicationMode::kRIDV).ok());
    return db.edb();
  };

  Instance base = build(0, false);
  Instance offset = build(seed % 20 + 1, false);
  Instance reordered = build(0, true);
  EXPECT_TRUE(base.IsomorphicTo(offset));
  EXPECT_TRUE(base.IsomorphicTo(reordered));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminacyProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Inflationary monotonicity: on positive programs every extensional fact
// survives into the instance.

class MonotonicityProperty : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityProperty, EdbContainedInInstance) {
  int seed = GetParam();
  auto db_result = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);");
  Database db = std::move(db_result).value();
  uint64_t x = static_cast<uint64_t>(seed) + 1;
  for (int i = 0; i < 10; ++i) {
    x = x * 48271 % 0x7fffffff;
    (void)db.InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(static_cast<int64_t>(x % 6))},
         {"b", Value::Int(static_cast<int64_t>((x >> 8) % 6))}}));
  }
  Instance before = db.edb();
  ASSERT_TRUE(db.ApplySource(
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).",
      ApplicationMode::kRIDV).ok());
  for (const auto& [assoc, tuples] : before.associations()) {
    for (const Value& t : tuples) {
      EXPECT_TRUE(db.edb().TuplesOf(assoc).count(t))
          << assoc << " lost " << t.ToString();
    }
  }
  // TC contains E.
  for (const Value& t : db.edb().TuplesOf("E")) {
    EXPECT_TRUE(db.edb().TuplesOf("TC").count(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityProperty,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Powerset cardinality (Example 3.3).

class PowersetProperty : public ::testing::TestWithParam<int> {};

TEST_P(PowersetProperty, CardinalityIsTwoToTheN) {
  int n = GetParam();
  auto db_result = Database::Create(
      "associations R = (d: integer); POWER = (set: {integer});");
  Database db = std::move(db_result).value();
  for (int i = 1; i <= n; ++i) {
    (void)db.InsertTuple("R", Value::MakeTuple({{"d", Value::Int(i)}}));
  }
  ASSERT_TRUE(db.ApplySource(
      "rules power(set: X) <- X = {}."
      "      power(set: X) <- r(d: Y), append({}, Y, X)."
      "      power(set: X) <- power(set: Y), power(set: Z), union(X, Y, Z).",
      ApplicationMode::kRIDV).ok());
  EXPECT_EQ(db.edb().TuplesOf("POWER").size(),
            static_cast<size_t>(1) << n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PowersetProperty, ::testing::Range(0, 7));

// ---------------------------------------------------------------------------
// Three engines agree on flat transitive closure.

class ThreeEngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThreeEngineProperty, AllEnginesComputeTheSameClosure) {
  int seed = GetParam();
  std::vector<std::pair<int64_t, int64_t>> edges;
  uint64_t x = static_cast<uint64_t>(seed) * 9973 + 1;
  for (int i = 0; i < 15; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    edges.emplace_back(static_cast<int64_t>((x >> 7) % 7),
                       static_cast<int64_t>((x >> 23) % 7));
  }

  // Engine 1: the LOGRES evaluator.
  auto db_result = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);");
  Database db = std::move(db_result).value();
  for (const auto& [a, b] : edges) {
    (void)db.InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(a)}, {"b", Value::Int(b)}}));
  }
  auto unit = Parse(
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).");
  auto program = Typecheck(db.schema(), {}, unit->rules).value();
  OidGenerator gen;
  Evaluator evaluator(db.schema(), program, &gen);
  Instance direct = evaluator.Run(db.edb()).value();

  // Engine 2: the ALGRES-compiled backend.
  auto backend = AlgresBackend::Compile(db.schema(), program).value();
  Instance compiled = backend.Run(db.edb()).value();
  EXPECT_EQ(direct.TuplesOf("TC"), compiled.TuplesOf("TC"));

  // Engine 3: the flat Datalog baseline.
  namespace dl = datalog;
  dl::Program baseline;
  for (const auto& [a, b] : edges) {
    (void)baseline.AddFact("e", {dl::Constant::Int(a),
                                 dl::Constant::Int(b)});
  }
  dl::Rule r1, r2;
  r1.head = dl::Literal{"tc", {dl::Term::Var("X"), dl::Term::Var("Y")},
                        false};
  r1.body = {dl::Literal{"e", {dl::Term::Var("X"), dl::Term::Var("Y")},
                         false}};
  r2.head = dl::Literal{"tc", {dl::Term::Var("X"), dl::Term::Var("Z")},
                        false};
  r2.body = {dl::Literal{"tc", {dl::Term::Var("X"), dl::Term::Var("Y")},
                         false},
             dl::Literal{"e", {dl::Term::Var("Y"), dl::Term::Var("Z")},
                         false}};
  ASSERT_TRUE(baseline.AddRule(r1).ok());
  ASSERT_TRUE(baseline.AddRule(r2).ok());
  auto flat = dl::Evaluate(baseline).value();
  std::set<std::pair<int64_t, int64_t>> flat_pairs;
  for (const auto& fact : flat["tc"]) {
    flat_pairs.emplace(fact[0].int_value(), fact[1].int_value());
  }
  std::set<std::pair<int64_t, int64_t>> logres_pairs;
  for (const Value& t : direct.TuplesOf("TC")) {
    logres_pairs.emplace(t.field("a").value().int_value(),
                         t.field("b").value().int_value());
  }
  EXPECT_EQ(logres_pairs, flat_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeEngineProperty,
                         ::testing::Range(0, 15));

// ---------------------------------------------------------------------------
// Module mode algebra.

class ModuleAlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(ModuleAlgebraProperty, RadiThenRddiRestoresRules) {
  int seed = GetParam();
  auto db_result = Database::Create(
      "associations P = (x: integer); Q = (x: integer);");
  Database db = std::move(db_result).value();
  for (int i = 0; i <= seed % 4; ++i) {
    (void)db.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}));
  }
  std::string rule = "rules q(x: X) <- p(x: X), X >= " +
                     std::to_string(seed % 3) + ".";
  size_t rules_before = db.rules().size();
  ASSERT_TRUE(db.ApplySource(rule, ApplicationMode::kRADI).ok());
  ASSERT_TRUE(db.ApplySource(rule, ApplicationMode::kRDDI).ok());
  EXPECT_EQ(db.rules().size(), rules_before);
}

TEST_P(ModuleAlgebraProperty, RidiNeverChangesState) {
  int seed = GetParam();
  auto db_result = Database::Create(
      "associations P = (x: integer); Q = (x: integer);");
  Database db = std::move(db_result).value();
  for (int i = 0; i <= seed % 5; ++i) {
    (void)db.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}));
  }
  Instance edb_before = db.edb();
  size_t rules_before = db.rules().size();
  auto result = db.ApplySource(
      "rules q(x: X) <- p(x: X). goal ? q(x: X).",
      ApplicationMode::kRIDI);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(db.edb() == edb_before);
  EXPECT_EQ(db.rules().size(), rules_before);
  // But the query did see the derived facts.
  EXPECT_EQ(result->goal_answer->size(),
            static_cast<size_t>(seed % 5 + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModuleAlgebraProperty,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Deletion/addition commutation within one step: the net effect of a
// module is order-independent of its rule listing.

class RuleOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(RuleOrderProperty, RuleListingOrderIrrelevant) {
  int seed = GetParam();
  std::vector<std::string> rules = {
      "q(x: X) <- p(x: X), even(X).",
      "q(x: Y) <- p(x: X), Y = X + 10, odd(X).",
      "r(x: X) <- q(x: X), X > 2.",
  };
  // A seed-dependent permutation.
  std::vector<std::string> permuted = rules;
  for (int i = 0; i < seed % 6; ++i) {
    std::next_permutation(permuted.begin(), permuted.end());
  }
  auto run = [&](const std::vector<std::string>& ordering) -> Instance {
    auto db_result = Database::Create(
        "associations P = (x: integer); Q = (x: integer);"
        "             R = (x: integer);");
    Database db = std::move(db_result).value();
    for (int i = 0; i < 6; ++i) {
      (void)db.InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}));
    }
    std::string text = "rules ";
    for (const std::string& r : ordering) text += r + " ";
    EXPECT_TRUE(db.ApplySource(text, ApplicationMode::kRIDV).ok());
    return db.edb();
  };
  EXPECT_TRUE(run(rules) == run(permuted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleOrderProperty, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// The join-index optimization never changes results.

class IndexAblationProperty : public ::testing::TestWithParam<int> {};

TEST_P(IndexAblationProperty, IndexedAndScannedRunsAgree) {
  int seed = GetParam();
  auto make_db = []() {
    auto db_result = Database::Create(
        "classes NODE = (id: integer);"
        "associations E = (a: NODE, b: NODE);"
        "             TC = (a: NODE, b: NODE);");
    return std::move(db_result).value();
  };
  auto run = [&](bool use_indexes) -> Instance {
    Database db = make_db();
    std::vector<Oid> nodes;
    for (int i = 0; i < 6; ++i) {
      nodes.push_back(*db.InsertObject("NODE", Value::MakeTuple(
          {{"id", Value::Int(i)}})));
    }
    uint64_t x = static_cast<uint64_t>(seed) * 31 + 7;
    for (int i = 0; i < 10; ++i) {
      x = x * 48271 % 0x7fffffff;
      (void)db.InsertTuple("E", Value::MakeTuple(
          {{"a", Value::MakeOid(nodes[x % 6])},
           {"b", Value::MakeOid(nodes[(x >> 8) % 6])}}));
    }
    EvalOptions options;
    options.use_indexes = use_indexes;
    EXPECT_TRUE(db.ApplySource(
        "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
        "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).",
        ApplicationMode::kRIDV, options).ok());
    return db.edb();
  };
  EXPECT_TRUE(run(true) == run(false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexAblationProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace logres
