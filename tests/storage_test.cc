// Unit and recovery tests for the durable-state subsystem
// (src/storage/): journal framing and scanning, checkpointing, crash-free
// recovery, replay determinism, and fault-injected append/checkpoint
// failures. The process-kill matrix lives in storage_crash_test.cc.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dump.h"
#include "storage/checkpoint.h"
#include "storage/fsck.h"
#include "storage/journal.h"
#include "storage/journaled_database.h"
#include "util/failpoint.h"
#include "util/io.h"

namespace logres {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures

const char* kSchema = R"(
  classes PERSON = (name: string);
  associations
    SEED = (name: string);
    KNOWS = (a: string, b: string);
)";

// Commits a tuple insertion (no oids).
const char* kTupleModule = R"(rules knows(a: "ann", b: "bob").)";

// Invents one PERSON object (consumes an oid), seeded from within the
// module so the whole change is journaled.
const char* kInventModule = R"(
  rules
    seed(name: "zoe").
    person(self P, name: N) <- seed(name: N).
)";

const char* kInventModule2 = R"(
  rules
    seed(name: "yan").
    person(self P, name: N) <- seed(name: N).
)";

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "logres_storage_XXXXXX";
  char* got = ::mkdtemp(templ.data());
  EXPECT_NE(got, nullptr);
  return templ;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Drops the "generator N;" line: a failed journal append rolls back the
// state triple but deliberately NOT the oid generator (consumed oids are
// never reused), so rollback assertions compare everything but it.
std::string StripGeneratorLine(const std::string& dump) {
  size_t pos = dump.find("generator ");
  if (pos == std::string::npos) return dump;
  size_t eol = dump.find('\n', pos);
  return dump.substr(0, pos) + dump.substr(eol + 1);
}

// ---------------------------------------------------------------------------
// Journal framing

TEST(JournalFormatTest, EncodeDecodeRoundTrip) {
  JournalRecord rec;
  rec.seq = 42;
  rec.mode = ApplicationMode::kRADV;
  rec.gen_before = 7;
  rec.gen_after = 9;
  rec.steps = 13;
  rec.facts = 101;
  rec.module_source = "rules knows(a: \"x\", b: \"y\").\n-- trailing";

  std::string frame = EncodeJournalRecord(rec);
  ASSERT_GT(frame.size(), 8u);
  // Strip the length+crc frame and decode the payload.
  auto decoded = DecodeJournalPayload(frame.substr(8));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->mode, ApplicationMode::kRADV);
  EXPECT_EQ(decoded->gen_before, 7u);
  EXPECT_EQ(decoded->gen_after, 9u);
  EXPECT_EQ(decoded->steps, 13u);
  EXPECT_EQ(decoded->facts, 101u);
  EXPECT_EQ(decoded->module_source, rec.module_source);
}

TEST(JournalFormatTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeJournalPayload("").ok());
  EXPECT_FALSE(DecodeJournalPayload("not a header\nrules").ok());
  EXPECT_FALSE(
      DecodeJournalPayload("apply seq=x mode=RIDI gen_before=0 "
                           "gen_after=0 steps=0 facts=0\n").ok());
}

TEST(JournalTest, OpenAppendScanRoundTrip) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/journal";
  {
    auto journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    JournalRecord rec;
    rec.seq = 1;
    rec.mode = ApplicationMode::kRIDV;
    rec.module_source = "rules knows(a: \"a\", b: \"b\").";
    ASSERT_TRUE(journal->Append(rec).ok());
    rec.seq = 2;
    ASSERT_TRUE(journal->Append(rec).ok());
    EXPECT_EQ(journal->live_records(), 2u);
  }
  auto scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].seq, 1u);
  EXPECT_EQ(scan->records[1].seq, 2u);
  EXPECT_EQ(scan->torn_bytes, 0u);
  EXPECT_TRUE(scan->warnings.empty());

  // Reopening picks the records back up.
  auto reopened = Journal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->live_records(), 2u);
  EXPECT_EQ(reopened->recovered().records.size(), 2u);
}

TEST(JournalTest, TornSuffixIsTruncatedWithWarning) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/journal";
  {
    auto journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    JournalRecord rec;
    rec.seq = 1;
    rec.module_source = "rules knows(a: \"a\", b: \"b\").";
    ASSERT_TRUE(journal->Append(rec).ok());
  }
  // Simulate a crash mid-append: a partial frame at the tail (explicit
  // length — the bytes contain NULs).
  std::string bytes = ReadFile(path);
  WriteFile(path, bytes + std::string("\x30\x00\x00\x00\xde\xad", 6));

  auto scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->torn_bytes, 6u);
  ASSERT_FALSE(scan->warnings.empty());

  // Open truncates the tail; the next scan is clean.
  auto reopened = Journal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->live_records(), 1u);
  auto rescan = ScanJournal(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->torn_bytes, 0u);
  EXPECT_TRUE(rescan->warnings.empty());
}

TEST(JournalTest, CorruptCrcDropsRecordAndSuffix) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/journal";
  uint64_t first_end = 0;
  {
    auto journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    JournalRecord rec;
    rec.seq = 1;
    rec.module_source = "rules knows(a: \"a\", b: \"b\").";
    ASSERT_TRUE(journal->Append(rec).ok());
    first_end = journal->size_bytes();
    rec.seq = 2;
    ASSERT_TRUE(journal->Append(rec).ok());
  }
  // Flip one payload byte inside the FIRST record: both it and the
  // (intact) second record must be discarded — replay never jumps a gap.
  std::string bytes = ReadFile(path);
  bytes[first_end - 1] ^= 0x01;
  WriteFile(path, bytes);

  auto scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->records.size(), 0u);
  EXPECT_GT(scan->torn_bytes, 0u);
  EXPECT_FALSE(scan->warnings.empty());
}

// ---------------------------------------------------------------------------
// JournaledDatabase: lifecycle + recovery

TEST(JournaledDatabaseTest, CreateOpenRoundTrip) {
  std::string dir = MakeTempDir();
  std::string live_dump;
  {
    auto store = JournaledDatabase::Create(dir, kSchema);
    ASSERT_TRUE(store.ok()) << store.status();
    auto r1 = store->ApplySource(kTupleModule, ApplicationMode::kRIDV);
    ASSERT_TRUE(r1.ok()) << r1.status();
    auto r2 = store->ApplySource(kInventModule, ApplicationMode::kRIDV);
    ASSERT_TRUE(r2.ok()) << r2.status();
    live_dump = DumpDatabase(store->db());
    StorageStatus st = store->status();
    EXPECT_EQ(st.last_seq, 2u);
    EXPECT_EQ(st.checkpoint_seq, 0u);
    EXPECT_EQ(st.journal_records, 2u);
    EXPECT_GT(st.steps_total, 0u);
    EXPECT_GT(st.facts_last, 0u);
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
  StorageStatus st = reopened->status();
  EXPECT_EQ(st.last_seq, 2u);
  EXPECT_EQ(st.replayed_at_open, 2u);
  EXPECT_EQ(st.truncated_bytes_at_open, 0u);
}

TEST(JournaledDatabaseTest, CreateRefusesExistingStore) {
  std::string dir = MakeTempDir();
  {
    auto store = JournaledDatabase::Create(dir, kSchema);
    ASSERT_TRUE(store.ok()) << store.status();
  }
  auto again = JournaledDatabase::Create(dir, kSchema);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(JournaledDatabaseTest, OpenRefusesMissingStore) {
  std::string dir = MakeTempDir();
  auto store = JournaledDatabase::Open(dir + "/nothing_here");
  EXPECT_FALSE(store.ok());
}

TEST(JournaledDatabaseTest, ReplayIsDeterministicAcrossRejectedApplies) {
  // Rejected applications consume oids without being journaled; replay
  // must still reproduce the exact invented oids (via gen_before
  // fast-forwarding) and the exact final generator position.
  std::string dir = MakeTempDir();
  std::string live_dump;
  uint64_t live_issued = 0;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;  // keep everything in the journal
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    {
      // A failure after full evaluation: oids were consumed, nothing
      // committed, nothing journaled.
      ScopedFailpoint fp("db.apply.commit",
                         Status::ExecutionError("injected"));
      auto rejected =
          store->ApplySource(kInventModule2, ApplicationMode::kRIDV);
      ASSERT_FALSE(rejected.ok());
    }
    auto r = store->ApplySource(kInventModule2, ApplicationMode::kRIDV);
    ASSERT_TRUE(r.ok()) << r.status();
    live_dump = DumpDatabase(store->db());
    live_issued = store->db().oids_issued();
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
  EXPECT_EQ(reopened->db().oids_issued(), live_issued);
  EXPECT_TRUE(reopened->status().warnings.empty())
      << reopened->status().warnings[0];
}

TEST(JournaledDatabaseTest, CheckpointEmptiesJournalAndRecovers) {
  std::string dir = MakeTempDir();
  std::string live_dump;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    EXPECT_EQ(store->status().checkpoint_seq, 1u);
    EXPECT_EQ(store->status().journal_records, 0u);
    // One more commit after the checkpoint: replayed from the journal.
    ASSERT_TRUE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    live_dump = DumpDatabase(store->db());
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
  EXPECT_EQ(reopened->status().replayed_at_open, 1u);
  EXPECT_EQ(reopened->status().checkpoint_seq, 1u);
}

TEST(JournaledDatabaseTest, AutoCheckpointAtInterval) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 2;
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(
      store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(store->status().checkpoint_seq, 0u);
  ASSERT_TRUE(
      store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(store->status().checkpoint_seq, 2u);
  EXPECT_EQ(store->status().journal_records, 0u);
  ASSERT_TRUE(
      store->ApplySource(kInventModule2, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(store->status().checkpoint_seq, 2u);
  EXPECT_EQ(store->status().journal_records, 1u);
}

TEST(JournaledDatabaseTest, StaleJournalRecordsAreSkippedAfterCheckpointCrash) {
  // The crash window between the checkpoint rename and the journal reset
  // leaves a new CHECKPOINT alongside a journal that still holds the
  // records it covers. Recovery must skip them (warning, not error).
  std::string dir = MakeTempDir();
  std::string live_dump;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    {
      ScopedFailpoint fp("checkpoint.truncate",
                         Status::ExecutionError("injected"));
      EXPECT_FALSE(store->Checkpoint().ok());
    }
    live_dump = DumpDatabase(store->db());
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
  EXPECT_EQ(reopened->status().checkpoint_seq, 1u);
  EXPECT_EQ(reopened->status().replayed_at_open, 0u);
  ASSERT_FALSE(reopened->status().warnings.empty());
}

TEST(JournaledDatabaseTest, TornFinalRecordRecoversByTruncation) {
  std::string dir = MakeTempDir();
  std::string live_dump;
  {
    auto store = JournaledDatabase::Create(dir, kSchema);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    live_dump = DumpDatabase(store->db());
  }
  // A torn frame at the tail, as a crash mid-append would leave.
  std::string path = dir + "/journal";
  WriteFile(path,
            ReadFile(path) + std::string("\xff\x00\x00\x00garbage", 11));

  std::string dump2;
  {
    auto reopened = JournaledDatabase::Open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
    EXPECT_GT(reopened->status().truncated_bytes_at_open, 0u);
    ASSERT_FALSE(reopened->status().warnings.empty());

    // The store is fully usable after truncation: commit again, reopen.
    ASSERT_TRUE(
        reopened->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    dump2 = DumpDatabase(reopened->db());
  }
  auto again = JournaledDatabase::Open(dir);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(DumpDatabase(again->db()), dump2);
  EXPECT_EQ(again->status().truncated_bytes_at_open, 0u);
}

// ---------------------------------------------------------------------------
// Fault-injected append failures: memory must never run ahead of disk.

TEST(JournaledDatabaseTest, FailedAppendRollsBackMemoryAndDisk) {
  for (const char* site : {"journal.append", "journal.fsync"}) {
    std::string dir = MakeTempDir();
    std::string pre_dump;
    {
      auto store = JournaledDatabase::Create(dir, kSchema);
      ASSERT_TRUE(store.ok()) << store.status();
      ASSERT_TRUE(
          store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
      pre_dump = DumpDatabase(store->db());
      uint64_t bytes_before = store->status().journal_bytes;
      {
        ScopedFailpoint fp(site, Status::ExecutionError("injected"));
        auto result =
            store->ApplySource(kInventModule, ApplicationMode::kRIDV);
        ASSERT_FALSE(result.ok()) << site;
        EXPECT_EQ(fp.hit_count(), 1u) << site;
      }
      // In-memory state rolled back (the generator stays forward: the
      // evaluation consumed oids, and consumed oids are never reused)...
      EXPECT_EQ(StripGeneratorLine(DumpDatabase(store->db())),
                StripGeneratorLine(pre_dump))
          << site;
      EXPECT_GT(store->db().oids_issued(), 0u) << site;
      EXPECT_EQ(store->status().last_seq, 1u) << site;
      // ...and the journal file holds no partial frame.
      EXPECT_EQ(store->status().journal_bytes, bytes_before) << site;
      // The store keeps working after the fault.
      ASSERT_TRUE(
          store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok())
          << site;
    }
    auto reopened = JournaledDatabase::Open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(reopened->status().last_seq, 2u) << site;
  }
}

TEST(JournaledDatabaseTest, FailedAutoCheckpointIsAWarningNotAnError) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 1;  // checkpoint after every commit
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  {
    ScopedFailpoint fp("checkpoint.write",
                       Status::ExecutionError("injected"));
    // The commit itself must succeed; only the background checkpoint
    // fails, surfaced as a warning.
    auto result = store->ApplySource(kTupleModule, ApplicationMode::kRIDV);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  EXPECT_EQ(store->status().checkpoint_seq, 0u);
  ASSERT_FALSE(store->status().warnings.empty());
  EXPECT_NE(store->status().warnings.back().find("checkpoint"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Graceful degradation: persistent I/O faults flip the store read-only;
// clearing the fault and Reopen() resumes with nothing lost.

TEST(DegradedModeTest, PersistentEnospcEntersReadOnlyAndReopenResumes) {
  std::string dir = MakeTempDir();
  FaultyIo fio(FaultyIo::Config{});
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.io = &fio;
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  std::string pre = StripGeneratorLine(DumpDatabase(store->db()));

  // The disk fills up: every write from here on fails with ENOSPC.
  fio.InjectErrno(FaultyIo::Op::kWrite, ENOSPC);
  auto failed = store->ApplySource(kInventModule, ApplicationMode::kRIDV);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store->degraded());
  EXPECT_FALSE(store->degraded_reason().ok());
  // The application was rolled back — memory never runs ahead of disk.
  EXPECT_EQ(StripGeneratorLine(DumpDatabase(store->db())), pre);

  // Reads keep working; writes are refused up front with the root cause
  // and without touching the state (no oids consumed).
  uint64_t issued = store->db().oids_issued();
  auto refused = store->ApplySource(kInventModule2, ApplicationMode::kRIDV);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("degraded"), std::string::npos);
  EXPECT_EQ(store->db().oids_issued(), issued);
  EXPECT_FALSE(store->Checkpoint().ok());
  EXPECT_EQ(StripGeneratorLine(DumpDatabase(store->db())), pre);

  StorageStatus status = store->status();
  EXPECT_TRUE(status.degraded);
  EXPECT_FALSE(status.degraded_reason.empty());
  ASSERT_FALSE(status.warnings.empty());

  // Recovery itself is read-only, so a full disk alone does not block
  // it — but a disk that cannot be *read* does: Reopen must fail and
  // leave the store degraded with its state intact.
  fio.InjectErrno(FaultyIo::Op::kRead, EIO);
  EXPECT_FALSE(store->Reopen().ok());
  EXPECT_TRUE(store->degraded());
  EXPECT_EQ(StripGeneratorLine(DumpDatabase(store->db())), pre);

  // The disk comes back: recovery re-verifies the tail from a fresh
  // scan and the store resumes exactly where it acknowledged.
  fio.ClearInjected();
  Status resumed = store->Reopen();
  ASSERT_TRUE(resumed.ok()) << resumed;
  EXPECT_FALSE(store->degraded());
  EXPECT_EQ(StripGeneratorLine(DumpDatabase(store->db())), pre);
  ASSERT_TRUE(store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok())
      << "resumed store must accept writes again";

  // And the post-resume commit is durable.
  std::string final_dump = StripGeneratorLine(DumpDatabase(store->db()));
  store = JournaledDatabase::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(StripGeneratorLine(DumpDatabase(store->db())), final_dump);
}

TEST(DegradedModeTest, ReopenOnHealthyStoreIsSafe) {
  std::string dir = MakeTempDir();
  auto store = JournaledDatabase::Create(dir, kSchema);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  std::string before = DumpDatabase(store->db());
  ASSERT_TRUE(store->Reopen().ok());
  EXPECT_FALSE(store->degraded());
  EXPECT_EQ(DumpDatabase(store->db()), before);
  EXPECT_TRUE(store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
}

// Failpoint-injected append failures model *logic* errors
// (ExecutionError), not media faults: they roll back but must NOT
// degrade the store — only kUnavailable does.
TEST(DegradedModeTest, InjectedExecutionErrorDoesNotDegrade) {
  std::string dir = MakeTempDir();
  auto store = JournaledDatabase::Create(dir, kSchema);
  ASSERT_TRUE(store.ok()) << store.status();
  {
    ScopedFailpoint fp("journal.append", Status::ExecutionError("boom"));
    EXPECT_FALSE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  }
  EXPECT_FALSE(store->degraded());
  EXPECT_TRUE(store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
}

// ---------------------------------------------------------------------------
// Journal rotation on checkpoint.

TEST(RotationTest, CheckpointRotatesJournalAndPrunesOldFiles) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.rotated_journals_keep = 2;
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/journal." + std::to_string(seq) + ".old"))
        << "checkpoint " << seq;
  }
  // Only the newest `keep` rotated files survive pruning.
  EXPECT_FALSE(std::filesystem::exists(dir + "/journal.1.old"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/journal.2.old"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/journal.3.old"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/journal.4.old"));
  EXPECT_EQ(store->status().rotated_journals, 2u);
  EXPECT_EQ(store->status().journal_records, 0u);

  // Rotated journals are inert: recovery reads only CHECKPOINT + the
  // live journal.
  std::string final_dump = DumpDatabase(store->db());
  auto reopened = JournaledDatabase::Open(dir, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), final_dump);
  EXPECT_EQ(reopened->status().rotated_journals, 2u);
}

TEST(RotationTest, KeepZeroEmptiesInPlaceWithoutRotatedFiles) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.rotated_journals_keep = 0;
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/journal.1.old"));
  EXPECT_EQ(store->status().rotated_journals, 0u);
  EXPECT_EQ(store->status().journal_records, 0u);
}

// ---------------------------------------------------------------------------
// Module durability: dumps carry `module` blocks (v2), so ApplyByName
// works against a recovered store.

TEST(JournaledDatabaseTest, RegisteredModulesSurviveRecovery) {
  const char* schema_with_module = R"(
    classes PERSON = (name: string);
    associations
      SEED = (name: string);
      KNOWS = (a: string, b: string);
    module grow options RIDV
      rules
        knows(a: "m1", b: "m2").
    end
  )";
  std::string dir = MakeTempDir();
  std::string after_run;
  {
    auto store = JournaledDatabase::Create(dir, schema_with_module);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_EQ(store->db().registered_modules().size(), 1u);
    auto run = store->ApplyByName("grow");
    ASSERT_TRUE(run.ok()) << run.status();
    after_run = DumpDatabase(store->db());
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_EQ(reopened->db().registered_modules().size(), 1u);
  EXPECT_EQ(reopened->db().registered_modules()[0].name, "grow");
  EXPECT_EQ(DumpDatabase(reopened->db()), after_run);
  // And the recovered registry still drives durable applications.
  EXPECT_TRUE(reopened->ApplyByName("grow").ok());
  EXPECT_FALSE(reopened->ApplyByName("nosuch").ok());
}

// ---------------------------------------------------------------------------
// Hostile reads: randomized corrupt-on-read/short-read/error-on-read
// schedules over recovery. Open may refuse, but must never crash; and
// because every journal record carries a CRC, anything a hostile scan
// destroys truncates to a recorded state — a clean reopen afterwards
// always lands on one of them.

TEST(HostileReadTest, RecoveryUnderCorruptReadsNeverCrashesOrHybrids) {
  std::string dir = MakeTempDir();
  std::vector<std::string> ladder;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ladder.push_back(StripGeneratorLine(DumpDatabase(store->db())));
    const char* mods[] = {kTupleModule, kInventModule, kInventModule2};
    for (const char* m : mods) {
      ASSERT_TRUE(store->ApplySource(m, ApplicationMode::kRIDV).ok());
      ladder.push_back(StripGeneratorLine(DumpDatabase(store->db())));
    }
  }
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    std::string work = MakeTempDir();
    std::filesystem::copy(dir, work,
                          std::filesystem::copy_options::recursive |
                              std::filesystem::copy_options::overwrite_existing);
    {
      FaultyIo::Config cfg;
      cfg.seed = seed;
      cfg.p_read_corrupt = 0.4;
      cfg.p_short_read = 0.4;
      cfg.p_read_error = 0.1;
      FaultyIo fio(cfg);
      StorageOptions opts;
      opts.checkpoint_interval = 0;
      opts.io = &fio;
      auto hostile = JournaledDatabase::Open(work, opts);
      (void)hostile;  // error or store — either is fine; crashing is not
    }
    auto clean = JournaledDatabase::Open(work);
    ASSERT_TRUE(clean.ok()) << "seed " << seed << ": " << clean.status();
    std::string got = StripGeneratorLine(DumpDatabase(clean->db()));
    bool on_ladder = false;
    for (const std::string& rung : ladder) on_ladder |= (got == rung);
    EXPECT_TRUE(on_ladder)
        << "seed " << seed
        << ": clean recovery after a hostile scan is not any recorded state";
  }
}

// ---------------------------------------------------------------------------
// Checkpoint format v2: self-verifying envelope, v1 compatibility.

TEST(CheckpointFormatTest, V2RoundTripVerifiesAndRejectsAnyDamage) {
  std::string text = EncodeCheckpoint(7, "schema PERSON;\nbody line\n");
  auto info = VerifyCheckpointText(text);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->seq, 7u);
  EXPECT_EQ(info->version, 2);
  EXPECT_TRUE(info->verified);
  EXPECT_EQ(info->bytes, text.size());

  // Any single flipped byte — header, body, or footer — must fail
  // verification, and so must truncation at any length: a truncated v2
  // file never passes itself off as a short v1.
  for (size_t off = 0; off < text.size(); ++off) {
    std::string bad = text;
    bad[off] = static_cast<char>(bad[off] ^ 0xFF);
    EXPECT_FALSE(VerifyCheckpointText(bad).ok()) << "flip at offset " << off;
  }
  for (size_t len = 0; len < text.size(); ++len) {
    EXPECT_FALSE(VerifyCheckpointText(text.substr(0, len)).ok())
        << "truncated to " << len;
  }
}

TEST(CheckpointFormatTest, V1ParsesButIsUnverified) {
  auto info = VerifyCheckpointText("-- logres checkpoint seq=3\nbody\n");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, 1);
  EXPECT_FALSE(info->verified);
  EXPECT_EQ(info->seq, 3u);
}

TEST(CheckpointGenerationTest, V1HeadCheckpointStillLoads) {
  std::string dir = MakeTempDir();
  std::string acked;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    acked = DumpDatabase(store->db());
  }
  // Rewrite HEAD as a pre-ladder v1 file: v1 header, no CRC footer.
  std::string text = ReadFile(dir + "/CHECKPOINT");
  auto info = VerifyCheckpointText(text);
  ASSERT_TRUE(info.ok()) << info.status();
  size_t body_start = text.find('\n') + 1;
  size_t footer = text.rfind("-- logres checkpoint-crc32 ");
  ASSERT_NE(footer, std::string::npos);
  WriteFile(dir + "/CHECKPOINT",
            "-- logres checkpoint seq=" + std::to_string(info->seq) + "\n" +
                text.substr(body_start, footer - body_start));

  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), acked);
  EXPECT_EQ(reopened->status().recovered_fallback_depth, 0u);
  auto gens = reopened->Generations();
  ASSERT_FALSE(gens.empty());
  EXPECT_TRUE(gens[0].head);
  EXPECT_EQ(gens[0].version, 1);
  EXPECT_FALSE(gens[0].verified);
  EXPECT_TRUE(gens[0].usable);
}

TEST(CheckpointGenerationTest, GenerationsPruneInLockstepWithJournals) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.rotated_journals_keep = 2;
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok()) << "checkpoint " << seq;
  }
  // Generations prune with the same keep-count as rotated journals
  // (which the RotationTest above pins to {3,4}): every surviving
  // generation keeps the rotated chain that bridges it to HEAD.
  EXPECT_FALSE(std::filesystem::exists(dir + "/CHECKPOINT.0.old"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/CHECKPOINT.1.old"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/CHECKPOINT.2.old"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/CHECKPOINT.3.old"));
  EXPECT_EQ(store->status().checkpoint_generations, 2u);

  auto gens = store->Generations();
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_TRUE(gens[0].head);
  EXPECT_EQ(gens[0].seq, 4u);
  EXPECT_EQ(gens[1].seq, 3u);
  EXPECT_EQ(gens[2].seq, 2u);
  for (const auto& g : gens) {
    EXPECT_TRUE(g.verified) << "seq " << g.seq;
    EXPECT_TRUE(g.usable) << "seq " << g.seq;
    EXPECT_TRUE(g.chain_covered) << "seq " << g.seq;
  }
}

TEST(CheckpointGenerationTest, TmpDebrisIsRemovedWithWarning) {
  std::string dir = MakeTempDir();
  {
    auto store = JournaledDatabase::Create(dir, kSchema);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  }
  WriteFile(dir + "/CHECKPOINT.tmp", "half-written checkpoint");
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE(std::filesystem::exists(dir + "/CHECKPOINT.tmp"));
  bool mentioned = false;
  for (const std::string& w : reopened->status().warnings) {
    mentioned |= w.find("CHECKPOINT.tmp") != std::string::npos;
  }
  EXPECT_TRUE(mentioned)
      << "tmp debris removal must be recorded, not silent";
}

// ---------------------------------------------------------------------------
// Hostile checkpoints: the recovery escalation ladder. Corrupting the
// live CHECKPOINT at ANY byte offset — or truncating it at ANY length —
// must fall back to the retained generation and chain-replay onto the
// byte-identical acknowledged state: a warning, never an error, never a
// hybrid.

TEST(HostileCheckpointTest, ByteFlipSweepFallsBackByteIdentical) {
  std::string dir = MakeTempDir();
  std::string acked;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    opts.rotated_journals_keep = 2;
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    acked = DumpDatabase(store->db());
  }
  const std::string pristine = ReadFile(dir + "/CHECKPOINT");
  ASSERT_FALSE(pristine.empty());
  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string bytes = pristine;
    bytes[off] = static_cast<char>(bytes[off] ^ 0xFF);
    WriteFile(dir + "/CHECKPOINT", bytes);
    auto reopened = JournaledDatabase::Open(dir);
    ASSERT_TRUE(reopened.ok())
        << "flip at offset " << off << ": " << reopened.status();
    EXPECT_FALSE(reopened->degraded()) << "offset " << off;
    EXPECT_EQ(DumpDatabase(reopened->db()), acked) << "offset " << off;
    EXPECT_EQ(reopened->status().recovered_fallback_depth, 1u)
        << "offset " << off;
    EXPECT_EQ(reopened->status().recovered_checkpoint_seq, 0u)
        << "offset " << off;
    EXPECT_FALSE(reopened->status().warnings.empty()) << "offset " << off;
  }
  WriteFile(dir + "/CHECKPOINT", pristine);
  auto clean = JournaledDatabase::Open(dir);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->status().recovered_fallback_depth, 0u);
}

TEST(HostileCheckpointTest, TruncationSweepFallsBackByteIdentical) {
  std::string dir = MakeTempDir();
  std::string acked;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    opts.rotated_journals_keep = 2;
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    acked = DumpDatabase(store->db());
  }
  const std::string pristine = ReadFile(dir + "/CHECKPOINT");
  ASSERT_FALSE(pristine.empty());
  for (size_t len = 0; len < pristine.size(); ++len) {
    WriteFile(dir + "/CHECKPOINT", pristine.substr(0, len));
    auto reopened = JournaledDatabase::Open(dir);
    ASSERT_TRUE(reopened.ok())
        << "truncated to " << len << ": " << reopened.status();
    EXPECT_FALSE(reopened->degraded()) << "len " << len;
    EXPECT_EQ(DumpDatabase(reopened->db()), acked) << "len " << len;
    EXPECT_EQ(reopened->status().recovered_fallback_depth, 1u)
        << "len " << len;
    EXPECT_FALSE(reopened->status().warnings.empty()) << "len " << len;
  }
  WriteFile(dir + "/CHECKPOINT", pristine);
}

// A corrupt segment in the MIDDLE of the rotated-journal chain, with
// the newer checkpoint generations also gone: the ladder falls back to
// a generation whose chain breaks mid-replay. The store must open
// DEGRADED read-only on a prefix rung (never a hybrid, never a fork),
// and fsck --repair must rebuild a store that reopens clean.
TEST(HostileCheckpointTest, MiddleRotatedJournalCorruptionSweep) {
  namespace fs = std::filesystem;
  std::string dir = MakeTempDir();
  std::vector<std::string> ladder;
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.rotated_journals_keep = 3;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ladder.push_back(DumpDatabase(store->db()));
    const char* mods[] = {kTupleModule, kInventModule, kInventModule2};
    for (const char* m : mods) {
      ASSERT_TRUE(store->ApplySource(m, ApplicationMode::kRIDV).ok());
      ladder.push_back(DumpDatabase(store->db()));
      ASSERT_TRUE(store->Checkpoint().ok());
    }
    ASSERT_TRUE(store
                    ->ApplySource(R"(rules knows(a: "tail", b: "bob").)",
                                  ApplicationMode::kRIDV)
                    .ok());
    ladder.push_back(DumpDatabase(store->db()));
  }
  // Layout now: HEAD seq 3, generations {0,1,2}, rotated {1,2,3}, one
  // live-journal record (seq 4).
  auto corrupt_middle = [](const std::string& path) {
    std::string bytes = ReadFile(path);
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
    WriteFile(path, bytes);
  };
  const std::string segment = ReadFile(dir + "/journal.2.old");
  ASSERT_FALSE(segment.empty());

  std::string work = MakeTempDir();
  for (size_t off = 0; off < segment.size(); ++off) {
    std::error_code ec;
    fs::remove_all(work, ec);
    fs::copy(dir, work, fs::copy_options::recursive, ec);
    ASSERT_FALSE(ec) << ec.message();
    // Kill HEAD and the newest retained generation so recovery must
    // traverse the corrupted middle segment.
    corrupt_middle(work + "/CHECKPOINT");
    corrupt_middle(work + "/CHECKPOINT.2.old");
    std::string bytes = segment;
    bytes[off] = static_cast<char>(bytes[off] ^ 0xFF);
    WriteFile(work + "/journal.2.old", bytes);

    auto broken = JournaledDatabase::Open(work, opts);
    ASSERT_TRUE(broken.ok())
        << "offset " << off << ": " << broken.status();
    EXPECT_TRUE(broken->degraded())
        << "offset " << off
        << ": a broken replay chain must degrade, not fork history";
    std::string got = DumpDatabase(broken->db());
    bool on_ladder = false;
    for (const std::string& rung : ladder) on_ladder |= (got == rung);
    EXPECT_TRUE(on_ladder) << "offset " << off << ": recovered a hybrid";

    auto detected = FsckStore(work);
    ASSERT_TRUE(detected.ok()) << detected.status();
    EXPECT_GT(detected->errors, 0u) << "offset " << off;

    FsckOptions repair;
    repair.repair = true;
    auto repaired = FsckStore(work, repair);
    ASSERT_TRUE(repaired.ok())
        << "offset " << off << ": " << repaired.status();
    EXPECT_EQ(repaired->errors, 0u) << "offset " << off;

    auto healed = JournaledDatabase::Open(work, opts);
    ASSERT_TRUE(healed.ok())
        << "offset " << off << ": " << healed.status();
    EXPECT_FALSE(healed->degraded()) << "offset " << off;
    got = DumpDatabase(healed->db());
    on_ladder = false;
    for (const std::string& rung : ladder) on_ladder |= (got == rung);
    EXPECT_TRUE(on_ladder) << "offset " << off << ": repair made a hybrid";
    EXPECT_TRUE(
        healed->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok())
        << "offset " << off;
  }
}

// ---------------------------------------------------------------------------
// Online scrub.

TEST(ScrubTest, CleanThenCorruptGeneration) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.rotated_journals_keep = 2;
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());

  ScrubReport clean = store->Scrub();
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(clean.errors, 0u);
  EXPECT_FALSE(clean.files.empty());
  StorageStatus st = store->status();
  EXPECT_TRUE(st.scrubbed);
  EXPECT_TRUE(st.last_scrub_ok);
  EXPECT_FALSE(st.last_scrub_summary.empty());
  EXPECT_FALSE(st.last_scrub_time.empty());

  // A generation rots on disk behind the store's back: the next scrub
  // must find it, flip last_scrub_ok, and warn — while the store itself
  // keeps accepting writes (scrub is strictly read-only).
  std::string gen = dir + "/CHECKPOINT.0.old";
  std::string bytes = ReadFile(gen);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  WriteFile(gen, bytes);

  ScrubReport bad = store->Scrub();
  EXPECT_FALSE(bad.ok());
  EXPECT_GT(bad.errors, 0u);
  st = store->status();
  EXPECT_TRUE(st.scrubbed);
  EXPECT_FALSE(st.last_scrub_ok);
  EXPECT_FALSE(st.warnings.empty());
  EXPECT_TRUE(
      store->ApplySource(kInventModule2, ApplicationMode::kRIDV).ok());
}

// ---------------------------------------------------------------------------
// fsck as a library (the CLI battery lives in logres_fsck --selftest).

TEST(FsckTest, CleanStoreReportsArtifactsAndNoErrors) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.rotated_journals_keep = 2;
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());

  auto report = FsckStore(dir);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->errors, 0u);
  EXPECT_TRUE(report->recoverable);
  bool saw_checkpoint = false, saw_generation = false, saw_journal = false;
  for (const StoreFileCheck& f : report->files) {
    saw_checkpoint |= f.kind == "checkpoint";
    saw_generation |= f.kind == "checkpoint-generation";
    saw_journal |= f.kind == "journal";
  }
  EXPECT_TRUE(saw_checkpoint);
  EXPECT_TRUE(saw_generation);
  EXPECT_TRUE(saw_journal);
  EXPECT_NE(report->ToText().find("fsck summary"), std::string::npos);
}

TEST(FsckTest, MissingHeadRecoversFromGeneration) {
  std::string dir = MakeTempDir();
  std::string acked;
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.rotated_journals_keep = 2;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    acked = DumpDatabase(store->db());
  }
  ASSERT_TRUE(std::filesystem::remove(dir + "/CHECKPOINT"));

  auto report = FsckStore(dir);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->recoverable);

  auto reopened = JournaledDatabase::Open(dir, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE(reopened->degraded());
  EXPECT_EQ(DumpDatabase(reopened->db()), acked);
  EXPECT_GE(reopened->status().recovered_fallback_depth, 1u);
}

}  // namespace
}  // namespace logres
