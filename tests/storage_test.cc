// Unit and recovery tests for the durable-state subsystem
// (src/storage/): journal framing and scanning, checkpointing, crash-free
// recovery, replay determinism, and fault-injected append/checkpoint
// failures. The process-kill matrix lives in storage_crash_test.cc.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/database.h"
#include "core/dump.h"
#include "storage/journal.h"
#include "storage/journaled_database.h"
#include "util/failpoint.h"

namespace logres {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures

const char* kSchema = R"(
  classes PERSON = (name: string);
  associations
    SEED = (name: string);
    KNOWS = (a: string, b: string);
)";

// Commits a tuple insertion (no oids).
const char* kTupleModule = R"(rules knows(a: "ann", b: "bob").)";

// Invents one PERSON object (consumes an oid), seeded from within the
// module so the whole change is journaled.
const char* kInventModule = R"(
  rules
    seed(name: "zoe").
    person(self P, name: N) <- seed(name: N).
)";

const char* kInventModule2 = R"(
  rules
    seed(name: "yan").
    person(self P, name: N) <- seed(name: N).
)";

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "logres_storage_XXXXXX";
  char* got = ::mkdtemp(templ.data());
  EXPECT_NE(got, nullptr);
  return templ;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Drops the "generator N;" line: a failed journal append rolls back the
// state triple but deliberately NOT the oid generator (consumed oids are
// never reused), so rollback assertions compare everything but it.
std::string StripGeneratorLine(const std::string& dump) {
  size_t pos = dump.find("generator ");
  if (pos == std::string::npos) return dump;
  size_t eol = dump.find('\n', pos);
  return dump.substr(0, pos) + dump.substr(eol + 1);
}

// ---------------------------------------------------------------------------
// Journal framing

TEST(JournalFormatTest, EncodeDecodeRoundTrip) {
  JournalRecord rec;
  rec.seq = 42;
  rec.mode = ApplicationMode::kRADV;
  rec.gen_before = 7;
  rec.gen_after = 9;
  rec.steps = 13;
  rec.facts = 101;
  rec.module_source = "rules knows(a: \"x\", b: \"y\").\n-- trailing";

  std::string frame = EncodeJournalRecord(rec);
  ASSERT_GT(frame.size(), 8u);
  // Strip the length+crc frame and decode the payload.
  auto decoded = DecodeJournalPayload(frame.substr(8));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->mode, ApplicationMode::kRADV);
  EXPECT_EQ(decoded->gen_before, 7u);
  EXPECT_EQ(decoded->gen_after, 9u);
  EXPECT_EQ(decoded->steps, 13u);
  EXPECT_EQ(decoded->facts, 101u);
  EXPECT_EQ(decoded->module_source, rec.module_source);
}

TEST(JournalFormatTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeJournalPayload("").ok());
  EXPECT_FALSE(DecodeJournalPayload("not a header\nrules").ok());
  EXPECT_FALSE(
      DecodeJournalPayload("apply seq=x mode=RIDI gen_before=0 "
                           "gen_after=0 steps=0 facts=0\n").ok());
}

TEST(JournalTest, OpenAppendScanRoundTrip) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/journal";
  {
    auto journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    JournalRecord rec;
    rec.seq = 1;
    rec.mode = ApplicationMode::kRIDV;
    rec.module_source = "rules knows(a: \"a\", b: \"b\").";
    ASSERT_TRUE(journal->Append(rec).ok());
    rec.seq = 2;
    ASSERT_TRUE(journal->Append(rec).ok());
    EXPECT_EQ(journal->live_records(), 2u);
  }
  auto scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].seq, 1u);
  EXPECT_EQ(scan->records[1].seq, 2u);
  EXPECT_EQ(scan->torn_bytes, 0u);
  EXPECT_TRUE(scan->warnings.empty());

  // Reopening picks the records back up.
  auto reopened = Journal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->live_records(), 2u);
  EXPECT_EQ(reopened->recovered().records.size(), 2u);
}

TEST(JournalTest, TornSuffixIsTruncatedWithWarning) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/journal";
  {
    auto journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    JournalRecord rec;
    rec.seq = 1;
    rec.module_source = "rules knows(a: \"a\", b: \"b\").";
    ASSERT_TRUE(journal->Append(rec).ok());
  }
  // Simulate a crash mid-append: a partial frame at the tail (explicit
  // length — the bytes contain NULs).
  std::string bytes = ReadFile(path);
  WriteFile(path, bytes + std::string("\x30\x00\x00\x00\xde\xad", 6));

  auto scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->torn_bytes, 6u);
  ASSERT_FALSE(scan->warnings.empty());

  // Open truncates the tail; the next scan is clean.
  auto reopened = Journal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->live_records(), 1u);
  auto rescan = ScanJournal(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->torn_bytes, 0u);
  EXPECT_TRUE(rescan->warnings.empty());
}

TEST(JournalTest, CorruptCrcDropsRecordAndSuffix) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/journal";
  uint64_t first_end = 0;
  {
    auto journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    JournalRecord rec;
    rec.seq = 1;
    rec.module_source = "rules knows(a: \"a\", b: \"b\").";
    ASSERT_TRUE(journal->Append(rec).ok());
    first_end = journal->size_bytes();
    rec.seq = 2;
    ASSERT_TRUE(journal->Append(rec).ok());
  }
  // Flip one payload byte inside the FIRST record: both it and the
  // (intact) second record must be discarded — replay never jumps a gap.
  std::string bytes = ReadFile(path);
  bytes[first_end - 1] ^= 0x01;
  WriteFile(path, bytes);

  auto scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->records.size(), 0u);
  EXPECT_GT(scan->torn_bytes, 0u);
  EXPECT_FALSE(scan->warnings.empty());
}

// ---------------------------------------------------------------------------
// JournaledDatabase: lifecycle + recovery

TEST(JournaledDatabaseTest, CreateOpenRoundTrip) {
  std::string dir = MakeTempDir();
  std::string live_dump;
  {
    auto store = JournaledDatabase::Create(dir, kSchema);
    ASSERT_TRUE(store.ok()) << store.status();
    auto r1 = store->ApplySource(kTupleModule, ApplicationMode::kRIDV);
    ASSERT_TRUE(r1.ok()) << r1.status();
    auto r2 = store->ApplySource(kInventModule, ApplicationMode::kRIDV);
    ASSERT_TRUE(r2.ok()) << r2.status();
    live_dump = DumpDatabase(store->db());
    StorageStatus st = store->status();
    EXPECT_EQ(st.last_seq, 2u);
    EXPECT_EQ(st.checkpoint_seq, 0u);
    EXPECT_EQ(st.journal_records, 2u);
    EXPECT_GT(st.steps_total, 0u);
    EXPECT_GT(st.facts_last, 0u);
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
  StorageStatus st = reopened->status();
  EXPECT_EQ(st.last_seq, 2u);
  EXPECT_EQ(st.replayed_at_open, 2u);
  EXPECT_EQ(st.truncated_bytes_at_open, 0u);
}

TEST(JournaledDatabaseTest, CreateRefusesExistingStore) {
  std::string dir = MakeTempDir();
  {
    auto store = JournaledDatabase::Create(dir, kSchema);
    ASSERT_TRUE(store.ok()) << store.status();
  }
  auto again = JournaledDatabase::Create(dir, kSchema);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(JournaledDatabaseTest, OpenRefusesMissingStore) {
  std::string dir = MakeTempDir();
  auto store = JournaledDatabase::Open(dir + "/nothing_here");
  EXPECT_FALSE(store.ok());
}

TEST(JournaledDatabaseTest, ReplayIsDeterministicAcrossRejectedApplies) {
  // Rejected applications consume oids without being journaled; replay
  // must still reproduce the exact invented oids (via gen_before
  // fast-forwarding) and the exact final generator position.
  std::string dir = MakeTempDir();
  std::string live_dump;
  uint64_t live_issued = 0;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;  // keep everything in the journal
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    {
      // A failure after full evaluation: oids were consumed, nothing
      // committed, nothing journaled.
      ScopedFailpoint fp("db.apply.commit",
                         Status::ExecutionError("injected"));
      auto rejected =
          store->ApplySource(kInventModule2, ApplicationMode::kRIDV);
      ASSERT_FALSE(rejected.ok());
    }
    auto r = store->ApplySource(kInventModule2, ApplicationMode::kRIDV);
    ASSERT_TRUE(r.ok()) << r.status();
    live_dump = DumpDatabase(store->db());
    live_issued = store->db().oids_issued();
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
  EXPECT_EQ(reopened->db().oids_issued(), live_issued);
  EXPECT_TRUE(reopened->status().warnings.empty())
      << reopened->status().warnings[0];
}

TEST(JournaledDatabaseTest, CheckpointEmptiesJournalAndRecovers) {
  std::string dir = MakeTempDir();
  std::string live_dump;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    EXPECT_EQ(store->status().checkpoint_seq, 1u);
    EXPECT_EQ(store->status().journal_records, 0u);
    // One more commit after the checkpoint: replayed from the journal.
    ASSERT_TRUE(
        store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    live_dump = DumpDatabase(store->db());
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
  EXPECT_EQ(reopened->status().replayed_at_open, 1u);
  EXPECT_EQ(reopened->status().checkpoint_seq, 1u);
}

TEST(JournaledDatabaseTest, AutoCheckpointAtInterval) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 2;
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(
      store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(store->status().checkpoint_seq, 0u);
  ASSERT_TRUE(
      store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(store->status().checkpoint_seq, 2u);
  EXPECT_EQ(store->status().journal_records, 0u);
  ASSERT_TRUE(
      store->ApplySource(kInventModule2, ApplicationMode::kRIDV).ok());
  EXPECT_EQ(store->status().checkpoint_seq, 2u);
  EXPECT_EQ(store->status().journal_records, 1u);
}

TEST(JournaledDatabaseTest, StaleJournalRecordsAreSkippedAfterCheckpointCrash) {
  // The crash window between the checkpoint rename and the journal reset
  // leaves a new CHECKPOINT alongside a journal that still holds the
  // records it covers. Recovery must skip them (warning, not error).
  std::string dir = MakeTempDir();
  std::string live_dump;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    {
      ScopedFailpoint fp("checkpoint.truncate",
                         Status::ExecutionError("injected"));
      EXPECT_FALSE(store->Checkpoint().ok());
    }
    live_dump = DumpDatabase(store->db());
  }
  auto reopened = JournaledDatabase::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
  EXPECT_EQ(reopened->status().checkpoint_seq, 1u);
  EXPECT_EQ(reopened->status().replayed_at_open, 0u);
  ASSERT_FALSE(reopened->status().warnings.empty());
}

TEST(JournaledDatabaseTest, TornFinalRecordRecoversByTruncation) {
  std::string dir = MakeTempDir();
  std::string live_dump;
  {
    auto store = JournaledDatabase::Create(dir, kSchema);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(
        store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok());
    live_dump = DumpDatabase(store->db());
  }
  // A torn frame at the tail, as a crash mid-append would leave.
  std::string path = dir + "/journal";
  WriteFile(path,
            ReadFile(path) + std::string("\xff\x00\x00\x00garbage", 11));

  std::string dump2;
  {
    auto reopened = JournaledDatabase::Open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(DumpDatabase(reopened->db()), live_dump);
    EXPECT_GT(reopened->status().truncated_bytes_at_open, 0u);
    ASSERT_FALSE(reopened->status().warnings.empty());

    // The store is fully usable after truncation: commit again, reopen.
    ASSERT_TRUE(
        reopened->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
    dump2 = DumpDatabase(reopened->db());
  }
  auto again = JournaledDatabase::Open(dir);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(DumpDatabase(again->db()), dump2);
  EXPECT_EQ(again->status().truncated_bytes_at_open, 0u);
}

// ---------------------------------------------------------------------------
// Fault-injected append failures: memory must never run ahead of disk.

TEST(JournaledDatabaseTest, FailedAppendRollsBackMemoryAndDisk) {
  for (const char* site : {"journal.append", "journal.fsync"}) {
    std::string dir = MakeTempDir();
    std::string pre_dump;
    {
      auto store = JournaledDatabase::Create(dir, kSchema);
      ASSERT_TRUE(store.ok()) << store.status();
      ASSERT_TRUE(
          store->ApplySource(kTupleModule, ApplicationMode::kRIDV).ok());
      pre_dump = DumpDatabase(store->db());
      uint64_t bytes_before = store->status().journal_bytes;
      {
        ScopedFailpoint fp(site, Status::ExecutionError("injected"));
        auto result =
            store->ApplySource(kInventModule, ApplicationMode::kRIDV);
        ASSERT_FALSE(result.ok()) << site;
        EXPECT_EQ(fp.hit_count(), 1u) << site;
      }
      // In-memory state rolled back (the generator stays forward: the
      // evaluation consumed oids, and consumed oids are never reused)...
      EXPECT_EQ(StripGeneratorLine(DumpDatabase(store->db())),
                StripGeneratorLine(pre_dump))
          << site;
      EXPECT_GT(store->db().oids_issued(), 0u) << site;
      EXPECT_EQ(store->status().last_seq, 1u) << site;
      // ...and the journal file holds no partial frame.
      EXPECT_EQ(store->status().journal_bytes, bytes_before) << site;
      // The store keeps working after the fault.
      ASSERT_TRUE(
          store->ApplySource(kInventModule, ApplicationMode::kRIDV).ok())
          << site;
    }
    auto reopened = JournaledDatabase::Open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_EQ(reopened->status().last_seq, 2u) << site;
  }
}

TEST(JournaledDatabaseTest, FailedAutoCheckpointIsAWarningNotAnError) {
  std::string dir = MakeTempDir();
  StorageOptions opts;
  opts.checkpoint_interval = 1;  // checkpoint after every commit
  auto store = JournaledDatabase::Create(dir, kSchema, opts);
  ASSERT_TRUE(store.ok()) << store.status();
  {
    ScopedFailpoint fp("checkpoint.write",
                       Status::ExecutionError("injected"));
    // The commit itself must succeed; only the background checkpoint
    // fails, surfaced as a warning.
    auto result = store->ApplySource(kTupleModule, ApplicationMode::kRIDV);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  EXPECT_EQ(store->status().checkpoint_seq, 0u);
  ASSERT_FALSE(store->status().warnings.empty());
  EXPECT_NE(store->status().warnings.back().find("checkpoint"),
            std::string::npos);
}

}  // namespace
}  // namespace logres
