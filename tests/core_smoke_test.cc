// End-to-end smoke tests: the paper's worked examples, driven through the
// full pipeline (parse -> typecheck -> evaluate -> module application).

#include <gtest/gtest.h>

#include "core/database.h"

namespace logres {
namespace {

// Paper Example 4.1: EDB {italian(Sara)}, module with RIDV adding
// italian(Luca), roman(Ugo) and the trigger italian(X) <- roman(X);
// outcome: E1 = I1 = {italian(Sara), italian(Luca), italian(Ugo),
// roman(Ugo)}.
TEST(SmokeTest, Example41RidvInsertionWithTrigger) {
  auto db_result = Database::Create(R"(
    associations
      ITALIAN = (name: string);
      ROMAN = (name: string);
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();

  ASSERT_TRUE(db.InsertTuple("ITALIAN", Value::MakeTuple({{"name",
      Value::String("Sara")}})).ok());

  auto apply = db.ApplySource(R"(
    rules
      italian(name: "Luca").
      roman(name: "Ugo").
      italian(X) <- roman(X).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();

  const Instance& edb = db.edb();
  EXPECT_EQ(edb.TuplesOf("ITALIAN").size(), 3u);
  EXPECT_EQ(edb.TuplesOf("ROMAN").size(), 1u);
  EXPECT_TRUE(edb.TuplesOf("ITALIAN").count(
      Value::MakeTuple({{"name", Value::String("Ugo")}})));
}

// Paper Example 4.2: p = {(1,1),(2,2),(3,3),(4,4)}; add 1 to the second
// field of every tuple with an even first field. Expected result:
// {(1,1),(2,3),(3,3),(4,5)}. The deletion rule is written out as "delete
// the old tuple when a recorded modification with a different second field
// exists" (the printed rule in the paper is typographically damaged; this
// is the reading that produces the result the paper prints).
TEST(SmokeTest, Example42UpdateWithDeletion) {
  auto db_result = Database::Create(R"(
    associations
      P = (d1: integer, d2: integer);
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(db.InsertTuple("P", Value::MakeTuple(
        {{"d1", Value::Int(i)}, {"d2", Value::Int(i)}})).ok());
  }

  auto apply = db.ApplySource(R"(
    associations
      MOD = (d1: integer, d2: integer);
    rules
      p(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                         not mod(d1: X, d2: Y).
      mod(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                           not mod(d1: X, d2: Y).
      not p(d1: X, d2: Y) <- p(d1: X, d2: Y), even(X),
                             mod(d1: X, d2: Z), Y != Z.
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();

  auto tuple = [](int a, int b) {
    return Value::MakeTuple({{"d1", Value::Int(a)}, {"d2", Value::Int(b)}});
  };
  const auto& p = db.edb().TuplesOf("P");
  EXPECT_TRUE(p.count(tuple(1, 1)));
  EXPECT_TRUE(p.count(tuple(2, 3)));
  EXPECT_TRUE(p.count(tuple(3, 3)));
  EXPECT_TRUE(p.count(tuple(4, 5)));
  EXPECT_FALSE(p.count(tuple(2, 2)));
  EXPECT_FALSE(p.count(tuple(4, 4)));
}

// Paper Example 3.3: the powerset program over R = {D}.
TEST(SmokeTest, Example33Powerset) {
  auto db_result = Database::Create(R"(
    associations
      R = (d: integer);
      POWER = (set: {integer});
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(db.InsertTuple("R",
        Value::MakeTuple({{"d", Value::Int(i)}})).ok());
  }

  auto apply = db.ApplySource(R"(
    rules
      power(set: X) <- X = {}.
      power(set: X) <- r(d: Y), append({}, Y, X).
      power(set: X) <- power(set: Y), power(set: Z), union(X, Y, Z).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();

  // Powerset of a 3-element set has 8 members.
  EXPECT_EQ(db.edb().TuplesOf("POWER").size(), 8u);
}

// Classes, isa, and invented oids: deriving objects into a class.
TEST(SmokeTest, ClassesWithIsaAndInvention) {
  auto db_result = Database::Create(R"(
    domains
      NAME = string;
    classes
      PERSON = (name: NAME);
      STUDENT = (PERSON, school: string);
      STUDENT isa PERSON;
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();

  auto apply = db.ApplySource(R"(
    rules
      student(self S, name: "John", school: "PoliMi").
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();

  // The student oid must also belong to PERSON (Definition 4a).
  EXPECT_EQ(db.edb().OidsOf("STUDENT").size(), 1u);
  EXPECT_EQ(db.edb().OidsOf("PERSON").size(), 1u);

  auto answer = db.Query("? person(name: X).");
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->size(), 1u);
  EXPECT_EQ(answer->front().at("X"), Value::String("John"));
}

// Paper Example 3.2: descendants via a recursive data function, nesting
// the result into an association.
TEST(SmokeTest, Example32DescendantsDataFunction) {
  auto db_result = Database::Create(R"(
    classes
      PERSON = (name: string);
    associations
      PARENT = (par: PERSON, chil: PERSON);
      ANCESTOR = (anc: PERSON, des: {PERSON});
    functions
      DESC: PERSON -> {PERSON};
  )");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();

  // A chain  a -> b -> c.
  auto a = db.InsertObject("PERSON",
      Value::MakeTuple({{"name", Value::String("a")}}));
  auto b = db.InsertObject("PERSON",
      Value::MakeTuple({{"name", Value::String("b")}}));
  auto c = db.InsertObject("PERSON",
      Value::MakeTuple({{"name", Value::String("c")}}));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(db.InsertTuple("PARENT", Value::MakeTuple(
      {{"par", Value::MakeOid(*a)}, {"chil", Value::MakeOid(*b)}})).ok());
  ASSERT_TRUE(db.InsertTuple("PARENT", Value::MakeTuple(
      {{"par", Value::MakeOid(*b)}, {"chil", Value::MakeOid(*c)}})).ok());

  auto apply = db.ApplySource(R"(
    rules
      member(X, desc(Y)) <- parent(par: Y, chil: X).
      member(X, desc(Y)) <- parent(par: Y, chil: Z), member(X, T),
                            T = desc(Z).
      ancestor(anc: X, des: Y) <- parent(par: X), Y = desc(X).
  )", ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();

  // a's descendants are {b, c}; b's are {c}.
  const auto& anc = db.edb().TuplesOf("ANCESTOR");
  ASSERT_EQ(anc.size(), 2u);
  bool found_a = false;
  for (const Value& t : anc) {
    Value who = *t.FindField("anc");
    Value des = *t.FindField("des");
    if (who == Value::MakeOid(*a)) {
      found_a = true;
      EXPECT_EQ(des.size(), 2u);
      EXPECT_TRUE(des.Contains(Value::MakeOid(*b)));
      EXPECT_TRUE(des.Contains(Value::MakeOid(*c)));
    }
  }
  EXPECT_TRUE(found_a);
}

}  // namespace
}  // namespace logres
