// Differential testing: randomly generated stratified flat programs are
// evaluated by the LOGRES engine and by the independent flat Datalog
// baseline; both must derive exactly the same facts. This cross-checks
// the whole pipeline (parser, type checker, scheduler, fixpoint,
// negation, semi-naive optimization) against a second implementation
// with a completely different architecture.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/database.h"
#include "datalog/datalog.h"

namespace logres {
namespace {

// The generated vocabulary: predicates p0..p4 over two integer fields,
// layered so that negation only reaches strictly lower layers (the
// program is stratified by construction).
constexpr int kPredicates = 5;
constexpr int kConstants = 4;

struct GeneratedProgram {
  std::string logres_rules;            // "rules ..." section text
  datalog::Program baseline;
  std::vector<std::vector<int64_t>> edb_facts;  // (pred, a, b)
};

GeneratedProgram Generate(unsigned seed) {
  std::mt19937 rng(seed * 2654435761u + 97);
  GeneratedProgram out;

  // EDB: random facts for layer-0 predicates p0, p1.
  int nfacts = 3 + static_cast<int>(rng() % 6);
  for (int i = 0; i < nfacts; ++i) {
    int64_t pred = static_cast<int64_t>(rng() % 2);
    int64_t a = static_cast<int64_t>(rng() % kConstants);
    int64_t b = static_cast<int64_t>(rng() % kConstants);
    out.edb_facts.push_back({pred, a, b});
  }

  // Rules: each head predicate p_k (k >= 1) gets 1-2 rules whose positive
  // bodies draw from layers <= k and negated literals from layers < k.
  out.logres_rules = "rules ";
  auto var = [](int i) { return std::string(1, static_cast<char>('X' + i % 3)); };
  for (int k = 1; k < kPredicates; ++k) {
    int nrules = 1 + static_cast<int>(rng() % 2);
    for (int r = 0; r < nrules; ++r) {
      // Head p_k(X, Y).
      std::string head_logres =
          "p" + std::to_string(k) + "(f1: X, f2: Y)";
      datalog::Rule baseline_rule;
      baseline_rule.head = datalog::Literal{
          "p" + std::to_string(k),
          {datalog::Term::Var("X"), datalog::Term::Var("Y")},
          false};
      // Body: one positive literal binding X,Y plus 0-2 extras.
      int base = static_cast<int>(rng() % k);
      std::string body_logres = "p" + std::to_string(base) +
                                "(f1: X, f2: Y)";
      baseline_rule.body.push_back(datalog::Literal{
          "p" + std::to_string(base),
          {datalog::Term::Var("X"), datalog::Term::Var("Y")},
          false});
      int extras = static_cast<int>(rng() % 3);
      for (int e = 0; e < extras; ++e) {
        int choice = static_cast<int>(rng() % 3);
        if (choice == 0 && k >= 1) {
          // Negated literal over a strictly lower layer, fully bound.
          int neg = static_cast<int>(rng() % k);
          body_logres += ", not p" + std::to_string(neg) +
                         "(f1: X, f2: Y)";
          baseline_rule.body.push_back(datalog::Literal{
              "p" + std::to_string(neg),
              {datalog::Term::Var("X"), datalog::Term::Var("Y")},
              true});
        } else if (choice == 1) {
          // A join literal chaining through a shared variable; may hit
          // layer k itself, making the rule recursive (still stratified:
          // negation stays strictly below).
          int join = static_cast<int>(rng() % (k + 1));
          std::string v = var(static_cast<int>(rng() % 3));
          body_logres += ", p" + std::to_string(join) + "(f1: Y, f2: " +
                         v + ")";
          baseline_rule.body.push_back(datalog::Literal{
              "p" + std::to_string(join),
              {datalog::Term::Var("Y"), datalog::Term::Var(v)},
              false});
        } else {
          // A constant filter.
          int64_t c = static_cast<int64_t>(rng() % kConstants);
          int filt = static_cast<int>(rng() % k);
          body_logres += ", p" + std::to_string(filt) + "(f1: X, f2: " +
                         std::to_string(c) + ")";
          baseline_rule.body.push_back(datalog::Literal{
              "p" + std::to_string(filt),
              {datalog::Term::Var("X"), datalog::Term::Int(c)},
              false});
        }
      }
      out.logres_rules += head_logres + " <- " + body_logres + ". ";
      EXPECT_TRUE(out.baseline.AddRule(baseline_rule).ok());
    }
  }
  for (const auto& fact : out.edb_facts) {
    EXPECT_TRUE(out.baseline
                    .AddFact("p" + std::to_string(fact[0]),
                             {datalog::Constant::Int(fact[1]),
                              datalog::Constant::Int(fact[2])})
                    .ok());
  }
  return out;
}

using FactSet = std::set<std::tuple<int, int64_t, int64_t>>;

FactSet LogresFacts(const Instance& instance) {
  FactSet out;
  for (int p = 0; p < kPredicates; ++p) {
    for (const Value& t : instance.TuplesOf("P" + std::to_string(p))) {
      out.emplace(p, t.field("f1").value().int_value(),
                  t.field("f2").value().int_value());
    }
  }
  return out;
}

FactSet BaselineFacts(const datalog::Database& db) {
  FactSet out;
  for (int p = 0; p < kPredicates; ++p) {
    auto it = db.find("p" + std::to_string(p));
    if (it == db.end()) continue;
    for (const auto& fact : it->second) {
      out.emplace(p, fact[0].int_value(), fact[1].int_value());
    }
  }
  return out;
}

class DifferentialProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialProperty, LogresAgreesWithBaseline) {
  GeneratedProgram gen = Generate(GetParam());

  // LOGRES side.
  std::string schema = "associations ";
  for (int p = 0; p < kPredicates; ++p) {
    schema += "P" + std::to_string(p) + " = (f1: integer, f2: integer); ";
  }
  auto db_result = Database::Create(schema);
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  for (const auto& fact : gen.edb_facts) {
    ASSERT_TRUE(db.InsertTuple("P" + std::to_string(fact[0]),
        Value::MakeTuple({{"f1", Value::Int(fact[1])},
                          {"f2", Value::Int(fact[2])}})).ok());
  }
  auto apply = db.ApplySource(gen.logres_rules, ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status() << "\n" << gen.logres_rules;

  // Baseline side.
  auto baseline = datalog::Evaluate(gen.baseline);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  EXPECT_EQ(LogresFacts(db.edb()), BaselineFacts(*baseline))
      << gen.logres_rules;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialProperty,
                         ::testing::Range(0u, 40u));

}  // namespace
}  // namespace logres
