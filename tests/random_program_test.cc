// Differential testing: randomly generated stratified flat programs are
// evaluated by the LOGRES engine, by the ALGRES-compiled backend, and by
// the independent flat Datalog baseline; all three must derive exactly
// the same facts — serially and with a worker pool. This cross-checks the
// whole pipeline (parser, type checker, scheduler, fixpoint, negation,
// semi-naive optimization, parallel partitioning) against implementations
// with completely different architectures. A second suite checks that the
// three engines also *fail* identically: the same budget produces the
// same kDivergence / kResourceExhausted classification everywhere.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "core/algres_backend.h"
#include "core/database.h"
#include "core/parser.h"
#include "datalog/datalog.h"

namespace logres {
namespace {

// The generated vocabulary: predicates p0..p4 over two integer fields,
// layered so that negation only reaches strictly lower layers (the
// program is stratified by construction).
constexpr int kPredicates = 5;
constexpr int kConstants = 4;

struct GeneratedProgram {
  std::string logres_rules;            // "rules ..." section text
  datalog::Program baseline;
  std::vector<std::vector<int64_t>> edb_facts;  // (pred, a, b)
};

GeneratedProgram Generate(unsigned seed) {
  std::mt19937 rng(seed * 2654435761u + 97);
  GeneratedProgram out;

  // EDB: random facts for layer-0 predicates p0, p1.
  int nfacts = 3 + static_cast<int>(rng() % 6);
  for (int i = 0; i < nfacts; ++i) {
    int64_t pred = static_cast<int64_t>(rng() % 2);
    int64_t a = static_cast<int64_t>(rng() % kConstants);
    int64_t b = static_cast<int64_t>(rng() % kConstants);
    out.edb_facts.push_back({pred, a, b});
  }

  // Rules: each head predicate p_k (k >= 1) gets 1-2 rules whose positive
  // bodies draw from layers <= k and negated literals from layers < k.
  out.logres_rules = "rules ";
  auto var = [](int i) { return std::string(1, static_cast<char>('X' + i % 3)); };
  for (int k = 1; k < kPredicates; ++k) {
    int nrules = 1 + static_cast<int>(rng() % 2);
    for (int r = 0; r < nrules; ++r) {
      // Head p_k(X, Y).
      std::string head_logres =
          "p" + std::to_string(k) + "(f1: X, f2: Y)";
      datalog::Rule baseline_rule;
      baseline_rule.head = datalog::Literal{
          "p" + std::to_string(k),
          {datalog::Term::Var("X"), datalog::Term::Var("Y")},
          false};
      // Body: one positive literal binding X,Y plus 0-2 extras.
      int base = static_cast<int>(rng() % k);
      std::string body_logres = "p" + std::to_string(base) +
                                "(f1: X, f2: Y)";
      baseline_rule.body.push_back(datalog::Literal{
          "p" + std::to_string(base),
          {datalog::Term::Var("X"), datalog::Term::Var("Y")},
          false});
      int extras = static_cast<int>(rng() % 3);
      for (int e = 0; e < extras; ++e) {
        int choice = static_cast<int>(rng() % 3);
        if (choice == 0 && k >= 1) {
          // Negated literal over a strictly lower layer, fully bound.
          int neg = static_cast<int>(rng() % k);
          body_logres += ", not p" + std::to_string(neg) +
                         "(f1: X, f2: Y)";
          baseline_rule.body.push_back(datalog::Literal{
              "p" + std::to_string(neg),
              {datalog::Term::Var("X"), datalog::Term::Var("Y")},
              true});
        } else if (choice == 1) {
          // A join literal chaining through a shared variable; may hit
          // layer k itself, making the rule recursive (still stratified:
          // negation stays strictly below).
          int join = static_cast<int>(rng() % (k + 1));
          std::string v = var(static_cast<int>(rng() % 3));
          body_logres += ", p" + std::to_string(join) + "(f1: Y, f2: " +
                         v + ")";
          baseline_rule.body.push_back(datalog::Literal{
              "p" + std::to_string(join),
              {datalog::Term::Var("Y"), datalog::Term::Var(v)},
              false});
        } else {
          // A constant filter.
          int64_t c = static_cast<int64_t>(rng() % kConstants);
          int filt = static_cast<int>(rng() % k);
          body_logres += ", p" + std::to_string(filt) + "(f1: X, f2: " +
                         std::to_string(c) + ")";
          baseline_rule.body.push_back(datalog::Literal{
              "p" + std::to_string(filt),
              {datalog::Term::Var("X"), datalog::Term::Int(c)},
              false});
        }
      }
      out.logres_rules += head_logres + " <- " + body_logres + ". ";
      EXPECT_TRUE(out.baseline.AddRule(baseline_rule).ok());
    }
  }
  for (const auto& fact : out.edb_facts) {
    EXPECT_TRUE(out.baseline
                    .AddFact("p" + std::to_string(fact[0]),
                             {datalog::Constant::Int(fact[1]),
                              datalog::Constant::Int(fact[2])})
                    .ok());
  }
  return out;
}

using FactSet = std::set<std::tuple<int, int64_t, int64_t>>;

FactSet LogresFacts(const Instance& instance) {
  FactSet out;
  for (int p = 0; p < kPredicates; ++p) {
    for (const Value& t : instance.TuplesOf("P" + std::to_string(p))) {
      out.emplace(p, t.field("f1").value().int_value(),
                  t.field("f2").value().int_value());
    }
  }
  return out;
}

FactSet BaselineFacts(const datalog::Database& db) {
  FactSet out;
  for (int p = 0; p < kPredicates; ++p) {
    auto it = db.find("p" + std::to_string(p));
    if (it == db.end()) continue;
    for (const auto& fact : it->second) {
      out.emplace(p, fact[0].int_value(), fact[1].int_value());
    }
  }
  return out;
}

class DifferentialProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialProperty, ThreeEnginesAgree) {
  GeneratedProgram gen = Generate(GetParam());

  // LOGRES side.
  std::string schema = "associations ";
  for (int p = 0; p < kPredicates; ++p) {
    schema += "P" + std::to_string(p) + " = (f1: integer, f2: integer); ";
  }
  auto db_result = Database::Create(schema);
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  for (const auto& fact : gen.edb_facts) {
    ASSERT_TRUE(db.InsertTuple("P" + std::to_string(fact[0]),
        Value::MakeTuple({{"f1", Value::Int(fact[1])},
                          {"f2", Value::Int(fact[2])}})).ok());
  }

  // Engines 1b/2: direct evaluator with 4 workers and the ALGRES-compiled
  // backend run against the pre-application state.
  auto unit = Parse(gen.logres_rules);
  ASSERT_TRUE(unit.ok()) << unit.status() << "\n" << gen.logres_rules;
  auto program = Typecheck(db.schema(), {}, unit->rules);
  ASSERT_TRUE(program.ok()) << program.status();
  Instance edb = db.edb();

  OidGenerator gen_parallel;
  Evaluator parallel_eval(db.schema(), *program, &gen_parallel);
  EvalOptions four_threads;
  four_threads.num_threads = 4;
  auto direct_parallel = parallel_eval.Run(edb, four_threads);
  ASSERT_TRUE(direct_parallel.ok()) << direct_parallel.status();
  EXPECT_EQ(parallel_eval.stats().threads, 4u);

  // Engine 1c: the retained reference paths — copy-per-step
  // (use_snapshot_steps) and plain allocation (intern_values off) — must
  // produce byte-identical instances to the default undo-log + interned
  // path, serial and at 4 threads.
  std::map<std::tuple<bool, bool, size_t>, std::string> direct_dumps;
  direct_dumps[{true, false, 4}] = direct_parallel->ToString();
  for (bool intern : {true, false}) {
    for (bool snapshot_steps : {false, true}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        if (intern && !snapshot_steps && threads == 4) continue;  // above
        OidGenerator g;
        Evaluator e(db.schema(), *program, &g);
        EvalOptions o;
        o.intern_values = intern;
        o.use_snapshot_steps = snapshot_steps;
        o.num_threads = threads;
        auto run = e.Run(edb, o);
        ASSERT_TRUE(run.ok()) << run.status() << "\n" << gen.logres_rules;
        direct_dumps[{intern, snapshot_steps, threads}] = run->ToString();
      }
    }
  }
  for (const auto& [key, dump] : direct_dumps) {
    EXPECT_EQ(dump, direct_dumps.begin()->second)
        << "intern=" << std::get<0>(key)
        << " snapshot_steps=" << std::get<1>(key)
        << " threads=" << std::get<2>(key) << "\n" << gen.logres_rules;
  }

  auto backend = AlgresBackend::Compile(db.schema(), *program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto compiled = backend->Run(edb);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  auto compiled_parallel =
      backend->Run(edb, AlgresStrategy::kSemiNaive, Budget{}, 4);
  ASSERT_TRUE(compiled_parallel.ok()) << compiled_parallel.status();
  // Compiled backend with interning off is byte-identical too.
  auto compiled_plain = backend->Run(edb, AlgresStrategy::kSemiNaive,
                                     Budget{}, 1, /*intern_values=*/false);
  ASSERT_TRUE(compiled_plain.ok()) << compiled_plain.status();
  EXPECT_EQ(compiled->ToString(), compiled_plain->ToString())
      << gen.logres_rules;

  // Engine 1: direct evaluator (serial) through the full Apply pipeline.
  auto apply = db.ApplySource(gen.logres_rules, ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status() << "\n" << gen.logres_rules;

  // Engine 3: the flat Datalog baseline, serial and with 4 workers.
  auto baseline = datalog::Evaluate(gen.baseline);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  datalog::EvalOptions dl_parallel;
  dl_parallel.num_threads = 4;
  auto baseline_parallel = datalog::Evaluate(gen.baseline, dl_parallel);
  ASSERT_TRUE(baseline_parallel.ok()) << baseline_parallel.status();

  FactSet expected = LogresFacts(db.edb());
  EXPECT_EQ(expected, BaselineFacts(*baseline)) << gen.logres_rules;
  EXPECT_EQ(expected, BaselineFacts(*baseline_parallel)) << gen.logres_rules;
  EXPECT_EQ(expected, LogresFacts(*direct_parallel)) << gen.logres_rules;
  EXPECT_EQ(expected, LogresFacts(*compiled)) << gen.logres_rules;
  EXPECT_EQ(expected, LogresFacts(*compiled_parallel)) << gen.logres_rules;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialProperty,
                         ::testing::Range(0u, 40u));

// ---- Goal-directed point queries ------------------------------------------
//
// For the same random programs, point queries with randomized adornments
// (all-bound, one bound field, all-free) must answer identically with the
// magic-set rewrite on and off, on every engine, thread count, and
// interner setting — and the LOGRES answers must match the flat baseline's
// fact-for-fact.

class PointQueryDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(PointQueryDifferential, GoalDirectedMatchesWholeProgram) {
  GeneratedProgram gen = Generate(GetParam());
  std::mt19937 rng(GetParam() * 40503u + 7);

  // One state (E, R, S): schema plus the generated rules, so Query runs
  // the persistent-rule path the shell and modules use.
  std::string source = "associations ";
  for (int p = 0; p < kPredicates; ++p) {
    source += "P" + std::to_string(p) + " = (f1: integer, f2: integer); ";
  }
  source += gen.logres_rules;
  auto db_result = Database::Create(source);
  ASSERT_TRUE(db_result.ok()) << db_result.status() << "\n" << source;
  Database db = std::move(db_result).value();
  for (const auto& fact : gen.edb_facts) {
    ASSERT_TRUE(db.InsertTuple("P" + std::to_string(fact[0]),
        Value::MakeTuple({{"f1", Value::Int(fact[1])},
                          {"f2", Value::Int(fact[2])}})).ok());
  }

  using datalog::Term;
  for (int g = 0; g < 6; ++g) {
    int pred = static_cast<int>(rng() % kPredicates);
    // Adornment: 0 = all-bound, 1 = f1 bound, 2 = f2 bound, 3 = all-free.
    int kind = static_cast<int>(rng() % 4);
    std::optional<int64_t> c1, c2;
    if (kind == 0 || kind == 1) c1 = static_cast<int64_t>(rng() % kConstants);
    if (kind == 0 || kind == 2) c2 = static_cast<int64_t>(rng() % kConstants);
    std::string goal_text =
        "? p" + std::to_string(pred) +
        "(f1: " + (c1 ? std::to_string(*c1) : std::string("QX")) +
        ", f2: " + (c2 ? std::to_string(*c2) : std::string("QY")) + ").";
    SCOPED_TRACE(goal_text);
    auto goal = ParseGoal(goal_text);
    ASSERT_TRUE(goal.ok()) << goal.status();

    std::optional<std::vector<Bindings>> reference;
    for (bool gd : {true, false}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        for (bool intern : {true, false}) {
          EvalOptions options;
          options.goal_directed = gd;
          options.num_threads = threads;
          options.intern_values = intern;
          SCOPED_TRACE(testing::Message()
                       << "gd=" << gd << " threads=" << threads
                       << " intern=" << intern);
          auto direct = db.Query(goal_text, options);
          ASSERT_TRUE(direct.ok()) << direct.status() << "\n" << source;
          if (!reference.has_value()) {
            reference = *direct;
          } else {
            EXPECT_EQ(*direct, *reference) << source;
          }
          auto compiled = AlgresBackend::QueryGoal(
              db.schema(), db.functions(), db.rules(), db.edb(), *goal,
              options);
          ASSERT_TRUE(compiled.ok()) << compiled.status() << "\n" << source;
          EXPECT_EQ(*compiled, *reference) << source;
        }
      }
    }

    // Even an all-free goal may legitimately apply the rewrite: it prunes
    // rules unreachable from the goal predicate, and constants inside
    // rule bodies seed demand on their own. The answer-equality checks
    // above are the invariant; here we only require the refusal contract:
    // when the rewrite does fall back, a reason is recorded.
    {
      EvalStats stats;
      ASSERT_TRUE(db.Query(goal_text, EvalOptions{}, &stats).ok());
      if (!stats.goal_directed_fallback.empty()) {
        EXPECT_EQ(stats.magic_rules, 0u);
        EXPECT_EQ(stats.demand_facts, 0u);
      }
    }

    // Cross-engine: the same answers as the flat baseline, fact-for-fact.
    std::set<std::pair<int64_t, int64_t>> logres_facts;
    for (const Bindings& b : *reference) {
      logres_facts.emplace(c1 ? *c1 : b.at("QX").int_value(),
                           c2 ? *c2 : b.at("QY").int_value());
    }
    datalog::Literal dl_goal{
        "p" + std::to_string(pred),
        {c1 ? Term::Int(*c1) : Term::Var("QX"),
         c2 ? Term::Int(*c2) : Term::Var("QY")},
        false};
    for (bool gd : {true, false}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        datalog::EvalOptions dl;
        dl.goal_directed = gd;
        dl.num_threads = threads;
        auto flat = datalog::Query(gen.baseline, dl_goal, dl);
        ASSERT_TRUE(flat.ok()) << flat.status() << "\n" << source;
        std::set<std::pair<int64_t, int64_t>> flat_facts;
        for (const auto& fact : *flat) {
          flat_facts.emplace(fact[0].int_value(), fact[1].int_value());
        }
        EXPECT_EQ(flat_facts, logres_facts)
            << "gd=" << gd << " threads=" << threads << "\n" << source;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointQueryDifferential,
                         ::testing::Range(0u, 40u));

// ---- Budget classification parity -----------------------------------------
//
// The three engines share the governor contract: step exhaustion is
// kDivergence, deadline or fact-ceiling breach is kResourceExhausted —
// whatever the engine and whatever the thread count.

struct ChainEngines {
  Database db;
  CheckedProgram program;
  Schema schema;
  datalog::Program baseline;
};

Result<ChainEngines> MakeChainEngines(int n) {
  // The rules live in the state too, so the goal-directed parity tests
  // below can exercise Database::Query; the whole-program tests keep
  // using the separately typechecked `program` over `db.edb()`.
  LOGRES_ASSIGN_OR_RETURN(
      Database db,
      Database::Create("associations E = (a: integer, b: integer);"
                       "             TC = (a: integer, b: integer);"
                       "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
                       "      tc(a: X, b: Z) <- tc(a: X, b: Y),"
                       "                        e(a: Y, b: Z)."));
  datalog::Program baseline;
  for (int i = 0; i < n; ++i) {
    if (!db.InsertTuple(
                "E", Value::MakeTuple({{"a", Value::Int(i)},
                                       {"b", Value::Int(i + 1)}}))
             .ok()) {
      return Status::ExecutionError("insert failed");
    }
    LOGRES_RETURN_NOT_OK(baseline.AddFact(
        "e", {datalog::Constant::Int(i), datalog::Constant::Int(i + 1)}));
  }
  LOGRES_ASSIGN_OR_RETURN(
      auto unit, Parse("rules tc(a: X, b: Y) <- e(a: X, b: Y)."
                       "      tc(a: X, b: Z) <- tc(a: X, b: Y),"
                       "                        e(a: Y, b: Z)."));
  LOGRES_ASSIGN_OR_RETURN(auto program,
                          Typecheck(db.schema(), {}, unit.rules));
  auto add_rule = [&](datalog::Rule rule) {
    return baseline.AddRule(std::move(rule));
  };
  using datalog::Literal;
  using datalog::Term;
  LOGRES_RETURN_NOT_OK(add_rule(datalog::Rule{
      Literal{"tc", {Term::Var("X"), Term::Var("Y")}, false},
      {Literal{"e", {Term::Var("X"), Term::Var("Y")}, false}}}));
  LOGRES_RETURN_NOT_OK(add_rule(datalog::Rule{
      Literal{"tc", {Term::Var("X"), Term::Var("Z")}, false},
      {Literal{"tc", {Term::Var("X"), Term::Var("Y")}, false},
       Literal{"e", {Term::Var("Y"), Term::Var("Z")}, false}}}));
  Schema schema = db.schema();
  return ChainEngines{std::move(db), std::move(program), std::move(schema),
                      std::move(baseline)};
}

// Runs all three engines (direct at 1 and 4 threads, compiled backend,
// Datalog at 1 and 4 threads) under `budget` and checks every one fails
// with `expected`.
void ExpectClassification(const ChainEngines& engines, const Budget& budget,
                          StatusCode expected) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    // All step-application paths classify identically: the undo-log
    // default and the copy-per-step reference, with and without the
    // value interner.
    for (bool snapshot_steps : {false, true}) {
      for (bool intern : {true, false}) {
        OidGenerator gen;
        Evaluator evaluator(engines.schema, engines.program, &gen);
        EvalOptions options;
        options.budget = budget;
        options.num_threads = threads;
        options.use_snapshot_steps = snapshot_steps;
        options.intern_values = intern;
        auto direct = evaluator.Run(engines.db.edb(), options);
        ASSERT_FALSE(direct.ok()) << "direct, threads=" << threads
                                  << ", snapshot=" << snapshot_steps
                                  << ", intern=" << intern;
        EXPECT_EQ(direct.status().code(), expected)
            << "direct, threads=" << threads
            << ", snapshot=" << snapshot_steps << ", intern=" << intern
            << ": " << direct.status();
      }
    }

    datalog::EvalOptions dl;
    dl.budget = budget;
    dl.num_threads = threads;
    auto baseline = datalog::Evaluate(engines.baseline, dl);
    ASSERT_FALSE(baseline.ok()) << "datalog, threads=" << threads;
    EXPECT_EQ(baseline.status().code(), expected)
        << "datalog, threads=" << threads << ": " << baseline.status();

    auto backend = AlgresBackend::Compile(engines.schema, engines.program);
    ASSERT_TRUE(backend.ok()) << backend.status();
    auto compiled = backend->Run(engines.db.edb(),
                                 AlgresStrategy::kSemiNaive, budget, threads);
    ASSERT_FALSE(compiled.ok()) << "algres, threads=" << threads;
    EXPECT_EQ(compiled.status().code(), expected)
        << "algres, threads=" << threads << ": " << compiled.status();
  }
}

TEST(ClassificationParity, StepExhaustionIsDivergenceEverywhere) {
  auto engines = MakeChainEngines(24);
  ASSERT_TRUE(engines.ok()) << engines.status();
  Budget tight;
  tight.max_steps = 2;
  ExpectClassification(*engines, tight, StatusCode::kDivergence);
}

TEST(ClassificationParity, ZeroDeadlineIsResourceExhaustedEverywhere) {
  auto engines = MakeChainEngines(24);
  ASSERT_TRUE(engines.ok()) << engines.status();
  Budget expired;
  expired.timeout = std::chrono::milliseconds(0);
  ExpectClassification(*engines, expired, StatusCode::kResourceExhausted);
}

TEST(ClassificationParity, FactCeilingIsResourceExhaustedEverywhere) {
  auto engines = MakeChainEngines(24);
  ASSERT_TRUE(engines.ok()) << engines.status();
  Budget cramped;
  cramped.max_facts = 25;  // the 24 EDB tuples + first derived round breach
  ExpectClassification(*engines, cramped, StatusCode::kResourceExhausted);
}

// The same contract holds goal-directed: once the magic rewrite applies,
// budget failures propagate with the whole-program classification — they
// are never silently converted into a fallback. The goal's cone from node
// 0 spans the whole chain, so the budgets breach exactly as above.
void ExpectGoalDirectedClassification(ChainEngines& engines,
                                      const Budget& budget,
                                      StatusCode expected) {
  auto goal = ParseGoal("? tc(a: 0, b: X).");
  ASSERT_TRUE(goal.ok()) << goal.status();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (bool intern : {true, false}) {
      EvalOptions options;
      options.budget = budget;
      options.num_threads = threads;
      options.intern_values = intern;
      auto direct = engines.db.Query(*goal, options);
      ASSERT_FALSE(direct.ok())
          << "direct, threads=" << threads << ", intern=" << intern;
      EXPECT_EQ(direct.status().code(), expected)
          << "direct, threads=" << threads << ", intern=" << intern << ": "
          << direct.status();
      auto compiled = AlgresBackend::QueryGoal(
          engines.db.schema(), engines.db.functions(), engines.db.rules(),
          engines.db.edb(), *goal, options);
      ASSERT_FALSE(compiled.ok())
          << "algres, threads=" << threads << ", intern=" << intern;
      EXPECT_EQ(compiled.status().code(), expected)
          << "algres, threads=" << threads << ", intern=" << intern << ": "
          << compiled.status();
    }

    datalog::EvalOptions dl;
    dl.budget = budget;
    dl.num_threads = threads;
    datalog::Literal dl_goal{
        "tc", {datalog::Term::Int(0), datalog::Term::Var("X")}, false};
    datalog::GoalDirectedInfo info;
    auto flat = datalog::Query(engines.baseline, dl_goal, dl, &info);
    ASSERT_FALSE(flat.ok()) << "datalog, threads=" << threads;
    EXPECT_EQ(flat.status().code(), expected)
        << "datalog, threads=" << threads << ": " << flat.status();
  }
}

TEST(ClassificationParity, GoalDirectedStepExhaustionIsDivergence) {
  auto engines = MakeChainEngines(24);
  ASSERT_TRUE(engines.ok()) << engines.status();
  Budget tight;
  tight.max_steps = 2;
  ExpectGoalDirectedClassification(*engines, tight, StatusCode::kDivergence);
}

TEST(ClassificationParity, GoalDirectedZeroDeadlineIsResourceExhausted) {
  auto engines = MakeChainEngines(24);
  ASSERT_TRUE(engines.ok()) << engines.status();
  Budget expired;
  expired.timeout = std::chrono::milliseconds(0);
  ExpectGoalDirectedClassification(*engines, expired,
                                   StatusCode::kResourceExhausted);
}

TEST(ClassificationParity, GoalDirectedFactCeilingIsResourceExhausted) {
  auto engines = MakeChainEngines(24);
  ASSERT_TRUE(engines.ok()) << engines.status();
  Budget cramped;
  cramped.max_facts = 25;
  ExpectGoalDirectedClassification(*engines, cramped,
                                   StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace logres
