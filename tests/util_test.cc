// Unit tests for the utility layer: Status, Result, string helpers.

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/string_util.h"

namespace logres {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::TypeError("bad type");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_EQ(s.message(), "bad type");
  EXPECT_EQ(s.ToString(), "TypeError: bad type");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDivergence); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("x").WithContext("loading schema");
  EXPECT_EQ(s.message(), "loading schema: x");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  // OK statuses pass through unchanged.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status a = Status::ParseError("oops");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "oops");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Doubles(Result<int> input) {
  LOGRES_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubles(21).value(), 42);
  EXPECT_EQ(Doubles(Status::TypeError("x")).status().code(),
            StatusCode::kTypeError);
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  LOGRES_RETURN_NOT_OK(FailsIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_FALSE(Chained(-1).ok());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, "-"), "only");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_TRUE(Split("", ',').empty());
}

TEST(StringUtilTest, CaseFolding) {
  EXPECT_EQ(ToLower("PeRsOn"), "person");
  EXPECT_EQ(ToUpper("PeRsOn"), "PERSON");
  EXPECT_EQ(ToLower("already"), "already");
  EXPECT_EQ(ToUpper("X_1$y"), "X_1$Y");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("$fn$desc", "$fn$"));
  EXPECT_FALSE(StartsWith("fn", "$fn$"));
}

TEST(StringUtilTest, StrFormatAndStrCat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrCat("a", 1, "b"), "a1b");
}

TEST(StringUtilTest, HashCombineChangesSeed) {
  size_t seed = 0;
  HashCombine(&seed, 12345);
  EXPECT_NE(seed, 0u);
  size_t seed2 = 0;
  HashCombine(&seed2, 54321);
  EXPECT_NE(seed, seed2);
}

}  // namespace
}  // namespace logres
