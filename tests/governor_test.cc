// Unit tests for the execution governor (util/governor.h) and the
// failpoint facility (util/failpoint.h), plus the ALGRES backend's use of
// the shared Budget.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/algres_backend.h"
#include "core/database.h"
#include "core/dump.h"
#include "core/eval.h"
#include "core/parser.h"
#include "core/typecheck.h"
#include "util/failpoint.h"
#include "util/governor.h"

namespace logres {
namespace {

// ---------------------------------------------------------------------------
// ResourceGovernor

TEST(ResourceGovernorTest, StepBudgetReportsDivergence) {
  Budget budget;
  budget.max_steps = 3;
  ResourceGovernor governor(budget);
  EXPECT_TRUE(governor.CheckStep().ok());
  EXPECT_TRUE(governor.CheckStep().ok());
  EXPECT_TRUE(governor.CheckStep().ok());
  Status st = governor.CheckStep();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDivergence);
  EXPECT_EQ(governor.steps_used(), 3u);
}

TEST(ResourceGovernorTest, ZeroMaxStepsIsUnlimited) {
  Budget budget;
  budget.max_steps = 0;
  ResourceGovernor governor(budget);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(governor.CheckStep().ok());
  }
}

TEST(ResourceGovernorTest, ZeroTimeoutExpiresImmediately) {
  Budget budget;
  budget.timeout = std::chrono::milliseconds(0);
  ResourceGovernor governor(budget);
  Status st = governor.CheckStep();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.steps_used(), 0u);  // exhausted before any step
}

TEST(ResourceGovernorTest, DeadlineExpiresAfterElapsing) {
  Budget budget;
  budget.timeout = std::chrono::milliseconds(20);
  ResourceGovernor governor(budget);
  EXPECT_TRUE(governor.CheckStep().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(governor.CheckStep().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGovernorTest, CancellationBeatsEverything) {
  CancellationSource source;
  Budget budget;
  budget.timeout = std::chrono::milliseconds(0);  // also expired
  budget.cancel = source.token();
  source.Cancel();
  ResourceGovernor governor(budget);
  EXPECT_EQ(governor.CheckStep().code(), StatusCode::kCancelled);
  EXPECT_EQ(governor.CheckInterrupt().code(), StatusCode::kCancelled);
}

TEST(ResourceGovernorTest, FactBudget) {
  Budget budget;
  budget.max_facts = 100;
  ResourceGovernor governor(budget);
  EXPECT_TRUE(governor.CheckFacts(100).ok());
  EXPECT_EQ(governor.CheckFacts(101).code(),
            StatusCode::kResourceExhausted);
  // 0 = unlimited.
  ResourceGovernor unlimited(Budget{});
  EXPECT_TRUE(unlimited.CheckFacts(1u << 30).ok());
}

TEST(ResourceGovernorTest, ByteBudget) {
  Budget budget;
  budget.max_bytes = 4096;
  ResourceGovernor governor(budget);
  EXPECT_TRUE(governor.wants_bytes());
  EXPECT_TRUE(governor.CheckBytes(4096).ok());
  Status st = governor.CheckBytes(4097);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // 0 = unlimited, and the engines skip the byte walk entirely.
  ResourceGovernor unlimited(Budget{});
  EXPECT_FALSE(unlimited.wants_bytes());
  EXPECT_TRUE(unlimited.CheckBytes(1u << 30).ok());
}

TEST(CancellationTest, TokenSharesFlagAcrossCopies) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;
  EXPECT_FALSE(a.cancelled());
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  source.Reset();
  EXPECT_FALSE(b.cancelled());
  // A default token never cancels.
  EXPECT_FALSE(CancellationToken{}.cancelled());
}

// ---------------------------------------------------------------------------
// Failpoints

TEST(FailpointTest, DisarmedIsFree) {
  failpoints::ClearAll();
  EXPECT_FALSE(failpoints::AnyArmed());
  EXPECT_TRUE(failpoints::Check("nope").ok());
  EXPECT_EQ(failpoints::HitCount("nope"), 0u);
}

TEST(FailpointTest, ArmCheckDisarm) {
  failpoints::Arm("t.site", Status::ExecutionError("boom"));
  EXPECT_TRUE(failpoints::AnyArmed());
  EXPECT_EQ(failpoints::Check("t.site").code(),
            StatusCode::kExecutionError);
  EXPECT_EQ(failpoints::Check("other").code(), StatusCode::kOk);
  EXPECT_EQ(failpoints::HitCount("t.site"), 1u);
  failpoints::Disarm("t.site");
  EXPECT_FALSE(failpoints::AnyArmed());
  EXPECT_TRUE(failpoints::Check("t.site").ok());
}

TEST(FailpointTest, SkipHitsDelayTheFault) {
  ScopedFailpoint fp("t.skip", Status::ExecutionError("boom"),
                     /*skip_hits=*/2);
  EXPECT_TRUE(failpoints::Check("t.skip").ok());
  EXPECT_TRUE(failpoints::Check("t.skip").ok());
  EXPECT_FALSE(failpoints::Check("t.skip").ok());
  EXPECT_FALSE(failpoints::Check("t.skip").ok());  // and stays armed
  EXPECT_EQ(fp.hit_count(), 4u);
}

TEST(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint fp("t.scoped", Status::ExecutionError("boom"));
    EXPECT_TRUE(failpoints::AnyArmed());
  }
  EXPECT_FALSE(failpoints::AnyArmed());
}

// ---------------------------------------------------------------------------
// The ALGRES backend honors the shared Budget.

// Compiles a transitive-closure program whose fixpoint takes several
// steps over a chain EDB.
struct ChainSetup {
  Database db;
  CheckedProgram program;
  Schema schema;
};

Result<ChainSetup> MakeChain(int n) {
  auto db = Database::Create(R"(
    associations
      EDGE = (src: integer, dst: integer);
      PATH = (src: integer, dst: integer);
  )");
  if (!db.ok()) return db.status();
  for (int i = 0; i < n; ++i) {
    LOGRES_RETURN_NOT_OK(db->InsertTuple(
        "EDGE", Value::MakeTuple({{"src", Value::Int(i)},
                                  {"dst", Value::Int(i + 1)}})));
  }
  LOGRES_ASSIGN_OR_RETURN(
      ParsedUnit unit,
      Parse("rules path(src: X, dst: Y) <- edge(src: X, dst: Y)."
            "      path(src: X, dst: Z) <- path(src: X, dst: Y),"
            "                              edge(src: Y, dst: Z)."));
  LOGRES_ASSIGN_OR_RETURN(
      CheckedProgram program,
      Typecheck(db->schema(), {}, unit.rules));
  Schema schema = db->schema();
  return ChainSetup{std::move(db).value(), std::move(program),
                    std::move(schema)};
}

TEST(AlgresBudgetTest, StepBudgetReportsDivergence) {
  auto setup = MakeChain(30);
  ASSERT_TRUE(setup.ok()) << setup.status();
  auto backend = AlgresBackend::Compile(setup->schema, setup->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  Budget tight;
  tight.max_steps = 2;
  for (auto strategy :
       {AlgresStrategy::kNaive, AlgresStrategy::kSemiNaive}) {
    auto out = backend->Run(setup->db.edb(), strategy, tight);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kDivergence);
  }
  // The default budget converges.
  EXPECT_TRUE(backend->Run(setup->db.edb()).ok());
}

TEST(AlgresBudgetTest, ZeroDeadlineAndCancellation) {
  auto setup = MakeChain(10);
  ASSERT_TRUE(setup.ok()) << setup.status();
  auto backend = AlgresBackend::Compile(setup->schema, setup->program);
  ASSERT_TRUE(backend.ok()) << backend.status();

  Budget deadline;
  deadline.timeout = std::chrono::milliseconds(0);
  auto timed_out = backend->Run(setup->db.edb(),
                                AlgresStrategy::kSemiNaive, deadline);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);

  CancellationSource source;
  source.Cancel();
  Budget cancelled;
  cancelled.cancel = source.token();
  auto stopped = backend->Run(setup->db.edb(),
                              AlgresStrategy::kSemiNaive, cancelled);
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.status().code(), StatusCode::kCancelled);
}

TEST(AlgresBudgetTest, FactBudgetBoundsGrowth) {
  auto setup = MakeChain(40);
  ASSERT_TRUE(setup.ok()) << setup.status();
  auto backend = AlgresBackend::Compile(setup->schema, setup->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  Budget small;
  small.max_facts = 60;  // closure of a 40-chain needs 820 path rows
  auto out = backend->Run(setup->db.edb(), AlgresStrategy::kSemiNaive,
                          small);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(AlgresBudgetTest, ByteBudgetBoundsGrowth) {
  auto setup = MakeChain(40);
  ASSERT_TRUE(setup.ok()) << setup.status();
  auto backend = AlgresBackend::Compile(setup->schema, setup->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  Budget small;
  small.max_bytes = 512;  // the closure's rows alone dwarf this
  for (auto strategy :
       {AlgresStrategy::kNaive, AlgresStrategy::kSemiNaive}) {
    auto out = backend->Run(setup->db.edb(), strategy, small);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
  }
  // A generous byte budget converges.
  Budget roomy;
  roomy.max_bytes = 64u << 20;
  EXPECT_TRUE(
      backend->Run(setup->db.edb(), AlgresStrategy::kSemiNaive, roomy).ok());
}

TEST(AlgresBudgetTest, StratumFailpointFires) {
  auto setup = MakeChain(5);
  ASSERT_TRUE(setup.ok()) << setup.status();
  auto backend = AlgresBackend::Compile(setup->schema, setup->program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  const Status boom = Status::ExecutionError("injected algres fault");
  {
    ScopedFailpoint fp("algres.step", boom, /*skip_hits=*/1);
    auto out = backend->Run(setup->db.edb());
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status(), boom);
  }
  EXPECT_TRUE(backend->Run(setup->db.edb()).ok());
}

// Both engines report the same divergence code for the same program under
// the same budget (the unified-default satellite).
TEST(AlgresBudgetTest, EnginesAgreeOnDivergenceCode) {
  auto setup = MakeChain(30);
  ASSERT_TRUE(setup.ok()) << setup.status();
  Budget tight;
  tight.max_steps = 2;

  auto backend = AlgresBackend::Compile(setup->schema, setup->program);
  ASSERT_TRUE(backend.ok());
  auto compiled = backend->Run(setup->db.edb(),
                               AlgresStrategy::kSemiNaive, tight);

  Evaluator evaluator(setup->schema, setup->program,
                      setup->db.oid_generator());
  EvalOptions options;
  options.budget = tight;
  auto direct = evaluator.Run(setup->db.edb(), options);

  ASSERT_FALSE(compiled.ok());
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(compiled.status().code(), direct.status().code());
  EXPECT_EQ(compiled.status().code(), StatusCode::kDivergence);
}

// ---------------------------------------------------------------------------
// Resource accounting surfaced through ModuleResult::stats

TEST(EvalStatsTest, ApplySurfacesGovernorAccounting) {
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok()) << db.status();
  auto result = db->ApplySource("rules p(x: 1). p(x: 2).",
                                ApplicationMode::kRIDV);
  ASSERT_TRUE(result.ok()) << result.status();
  // steps is the governor's steps_used() — the number charged against
  // Budget::max_steps; facts is what max_facts compares to.
  EXPECT_GE(result->stats.steps, 1u);
  EXPECT_EQ(result->stats.facts, 2u);
  EXPECT_GE(result->stats.elapsed_micros, 0);
}

TEST(EvalStatsTest, ByteBudgetExhaustsAndStatsBytesGateOnTheBudget) {
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok()) << db.status();

  // Without a byte budget, no byte walk happens and stats.bytes stays 0.
  auto free_run = db->ApplySource("rules p(x: 1). p(x: 2).",
                                  ApplicationMode::kRIDV);
  ASSERT_TRUE(free_run.ok()) << free_run.status();
  EXPECT_EQ(free_run->stats.bytes, 0u);

  // A generous budget converges and reports the footprint.
  EvalOptions roomy;
  roomy.budget.max_bytes = 64u << 20;
  auto sized = db->ApplySource("rules p(x: 3).", ApplicationMode::kRIDV,
                               roomy);
  ASSERT_TRUE(sized.ok()) << sized.status();
  EXPECT_GT(sized->stats.bytes, 0u);

  // A tiny one is exhausted by the instance itself.
  EvalOptions tiny;
  tiny.budget.max_bytes = 16;
  auto exhausted = db->ApplySource("rules p(x: 4).",
                                   ApplicationMode::kRIDV, tiny);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalStatsTest, StepsMatchTheStepBudgetBoundary) {
  // A run that succeeds under max_steps=N must report steps <= N, and the
  // same run reported steps must be exactly what a budget of that size
  // admits (the count and the charge agree).
  auto db = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db.ok()) << db.status();
  auto free_run = db->ApplySource("rules p(x: 1).",
                                  ApplicationMode::kRIDV);
  ASSERT_TRUE(free_run.ok()) << free_run.status();
  size_t used = free_run->stats.steps;
  ASSERT_GE(used, 1u);

  auto db2 = Database::Create("associations P = (x: integer);");
  ASSERT_TRUE(db2.ok());
  EvalOptions exact;
  exact.budget.max_steps = used;
  auto bounded = db2->ApplySource("rules p(x: 1).",
                                  ApplicationMode::kRIDV, exact);
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  EXPECT_EQ(bounded->stats.steps, used);
}

// ---------------------------------------------------------------------------
// Per-stratum sub-budgets (Budget::Substratum + EvalOptions::stratum_fraction)

TEST(StratumBudgetTest, SubstratumScalesStepsAndTimeout) {
  Budget b;
  b.max_steps = 100;
  b.timeout = std::chrono::milliseconds(1000);
  b.max_facts = 7;
  Budget sub = b.Substratum(0.25);
  EXPECT_EQ(sub.max_steps, 25u);
  ASSERT_TRUE(sub.timeout.has_value());
  EXPECT_EQ(sub.timeout->count(), 250);
  EXPECT_EQ(sub.max_facts, 7u);  // the fact ceiling is shared, not sliced

  Budget tiny = b.Substratum(0.0001);
  EXPECT_EQ(tiny.max_steps, 1u);  // never rounds down to zero-as-unlimited
  EXPECT_EQ(tiny.timeout->count(), 1);

  Budget unlimited = Budget::Unlimited().Substratum(0.5);
  EXPECT_EQ(unlimited.max_steps, 0u);  // unlimited stays unlimited
}

// A two-stratum program where each stratum needs ~n fixpoint steps: PATH
// is the closure of a forward chain; PATH2 recomputes it in a higher
// stratum (its seed rule negates on PATH, and the chain has no backward
// paths, so the negation always holds).
struct TwoStrataSetup {
  Database db;
  CheckedProgram program;
  Schema schema;
};

Result<TwoStrataSetup> MakeTwoStrata(int n) {
  auto db = Database::Create(R"(
    associations
      EDGE  = (src: integer, dst: integer);
      PATH  = (src: integer, dst: integer);
      PATH2 = (src: integer, dst: integer);
  )");
  if (!db.ok()) return db.status();
  for (int i = 0; i < n; ++i) {
    LOGRES_RETURN_NOT_OK(db->InsertTuple(
        "EDGE", Value::MakeTuple({{"src", Value::Int(i)},
                                  {"dst", Value::Int(i + 1)}})));
  }
  LOGRES_ASSIGN_OR_RETURN(
      ParsedUnit unit,
      Parse("rules path(src: X, dst: Y) <- edge(src: X, dst: Y)."
            "      path(src: X, dst: Z) <- path(src: X, dst: Y),"
            "                              edge(src: Y, dst: Z)."
            "      path2(src: X, dst: Y) <- edge(src: X, dst: Y),"
            "                               not path(src: Y, dst: X)."
            "      path2(src: X, dst: Z) <- path2(src: X, dst: Y),"
            "                               edge(src: Y, dst: Z)."));
  LOGRES_ASSIGN_OR_RETURN(CheckedProgram program,
                          Typecheck(db->schema(), {}, unit.rules));
  if (!program.stratified) {
    return Status::ExecutionError("expected a stratified program");
  }
  Schema schema = db->schema();
  return TwoStrataSetup{std::move(db).value(), std::move(program),
                        std::move(schema)};
}

// Under one shared step budget, the first stratum drains what the second
// stratum needed, and the run dies in stratum 1 through no fault of its
// own. Per-stratum sub-budgets give every stratum its own slice of the
// same budget, and the identical program converges.
TEST(StratumBudgetTest, SubBudgetsPreventCrossStratumStarvation) {
  auto setup = MakeTwoStrata(30);
  ASSERT_TRUE(setup.ok()) << setup.status();
  Evaluator evaluator(setup->schema, setup->program,
                      setup->db.oid_generator());

  // Reference result under no budget pressure.
  EvalOptions unlimited;
  unlimited.budget = Budget::Unlimited();
  auto reference = evaluator.Run(setup->db.edb(), unlimited);
  ASSERT_TRUE(reference.ok()) << reference.status();
  size_t total_steps = evaluator.stats().steps;
  // Each of the two strata needs roughly half the total.
  ASSERT_GT(total_steps, 50u);

  // A budget big enough for either stratum alone but not for both in
  // sequence: shared, the run is starved partway through stratum 1.
  EvalOptions shared;
  shared.budget.max_steps = total_steps - 10;
  auto starved = evaluator.Run(setup->db.edb(), shared);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kDivergence);

  // The same budget, sliced per stratum: each stratum's slice covers its
  // own work, so the run converges to the reference result.
  EvalOptions sliced = shared;
  sliced.stratum_fraction = 0.9;
  auto out = evaluator.Run(setup->db.edb(), sliced);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(*out == *reference);
}

// A runaway stratum exhausts its own slice and the error names it, instead
// of silently draining the budget later strata were counting on.
TEST(StratumBudgetTest, RunawayStratumFailsInsideItsOwnSlice) {
  auto setup = MakeTwoStrata(30);
  ASSERT_TRUE(setup.ok()) << setup.status();
  Evaluator evaluator(setup->schema, setup->program,
                      setup->db.oid_generator());
  EvalOptions sliced;
  sliced.budget.max_steps = 40;
  sliced.stratum_fraction = 0.2;  // 8 steps per stratum: too few for PATH
  auto out = evaluator.Run(setup->db.edb(), sliced);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDivergence);
  EXPECT_NE(out.status().message().find("stratum 0"), std::string::npos)
      << out.status();
}

// ---------------------------------------------------------------------------
// Exhaustion rollback leaves cached access paths valid
//
// The undo-log rollback invalidates index caches per record instead of
// rebuilding them per step, so after a rejected application the EDB's
// warmed indexes must answer for the *restored* state — never for the
// aborted application's intermediate instance.

TEST(ExhaustionRollbackTest, BudgetExhaustionKeepsIndexesValid) {
  auto setup = MakeChain(12);
  ASSERT_TRUE(setup.ok()) << setup.status();
  Database& db = setup->db;

  // Warm the access paths and record what they answer pre-application.
  ASSERT_EQ(db.edb().AssocIndex("EDGE", "src").size(), 12u);
  ASSERT_EQ(db.edb().AssocIndex("PATH", "src").size(), 0u);
  auto pre_query = db.Query("? edge(src: 3, dst: X).");
  ASSERT_TRUE(pre_query.ok());
  const std::string before = DumpDatabase(db);

  EvalOptions tight;
  tight.budget.max_steps = 2;
  auto result = db.ApplySource(
      "rules path(src: X, dst: Y) <- edge(src: X, dst: Y)."
      "      path(src: X, dst: Z) <- path(src: X, dst: Y),"
      "                              edge(src: Y, dst: Z).",
      ApplicationMode::kRIDV, tight);
  ASSERT_EQ(result.status().code(), StatusCode::kDivergence);

  // State rolled back, and the cached indexes answer for it.
  EXPECT_EQ(DumpDatabase(db), before);
  EXPECT_EQ(db.edb().AssocIndex("EDGE", "src").size(), 12u);
  EXPECT_EQ(db.edb().AssocIndex("PATH", "src").size(), 0u);
  auto post_query = db.Query("? edge(src: 3, dst: X).");
  ASSERT_TRUE(post_query.ok());
  EXPECT_EQ(pre_query->size(), post_query->size());
}

TEST(ExhaustionRollbackTest, InjectedCommitFailureRollsBackReplacedEdb) {
  // The hardest rollback: under RIDV the application has already swapped
  // in the evaluated instance (a single kInstanceReplaced undo record)
  // when the commit-boundary failpoint fires. Warmed indexes must answer
  // for the restored pre-application EDB.
  auto setup = MakeChain(6);
  ASSERT_TRUE(setup.ok()) << setup.status();
  Database& db = setup->db;
  ASSERT_EQ(db.edb().AssocIndex("EDGE", "src").size(), 6u);
  const std::string before = DumpDatabase(db);

  {
    ScopedFailpoint fp("db.apply.commit", Status::ExecutionError("boom"));
    auto result = db.ApplySource(
        "rules path(src: X, dst: Y) <- edge(src: X, dst: Y).",
        ApplicationMode::kRIDV);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(fp.hit_count(), 1u);
  }

  EXPECT_EQ(DumpDatabase(db), before);
  EXPECT_EQ(db.edb().AssocIndex("EDGE", "src").size(), 6u);
  EXPECT_EQ(db.edb().AssocIndex("PATH", "src").size(), 0u);
  // And the rolled-back database still evaluates and commits normally.
  auto ok = db.ApplySource(
      "rules path(src: X, dst: Y) <- edge(src: X, dst: Y).",
      ApplicationMode::kRIDV);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(db.edb().TuplesOf("PATH").size(), 6u);
}

// ---------------------------------------------------------------------------
// Goal-directed evaluation under budget pressure
//
// The magic-set rewrite changes how much work a budget has to cover, but
// not the transactional contract: exhaustion mid-demand rolls the state
// back exactly like whole-program exhaustion does, and a selective goal's
// small cone can converge under a budget the whole program exhausts.

TEST(GoalDirectedBudgetTest, ExhaustionMidDemandRollsBackTransactionally) {
  auto setup = MakeChain(30);
  ASSERT_TRUE(setup.ok()) << setup.status();
  Database& db = setup->db;
  ASSERT_EQ(db.edb().AssocIndex("EDGE", "src").size(), 30u);
  const std::string before = DumpDatabase(db);

  // The goal binds src: 0, whose demanded cone spans the whole chain —
  // the rewrite applies, and the goal-directed run itself exhausts the
  // step budget mid-demand.
  EvalOptions tight;
  tight.budget.max_steps = 2;
  ASSERT_TRUE(tight.goal_directed);
  auto result = db.ApplySource(
      "rules path(src: X, dst: Y) <- edge(src: X, dst: Y)."
      "      path(src: X, dst: Z) <- path(src: X, dst: Y),"
      "                              edge(src: Y, dst: Z)."
      "goal ? path(src: 0, dst: X).",
      ApplicationMode::kRIDI, tight);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDivergence);

  // All-or-nothing: state byte-identical, warmed indexes still answer for
  // it, and no magic relation survived the abort.
  EXPECT_EQ(DumpDatabase(db), before);
  EXPECT_EQ(db.edb().AssocIndex("EDGE", "src").size(), 30u);
  EXPECT_EQ(db.edb().AssocIndex("PATH", "src").size(), 0u);
  for (const auto& [name, tuples] : db.edb().associations()) {
    EXPECT_EQ(name.find("$MAGIC$"), std::string::npos) << name;
  }
  // And the same application converges once the budget allows it.
  auto ok = db.ApplySource(
      "rules path(src: X, dst: Y) <- edge(src: X, dst: Y)."
      "      path(src: X, dst: Z) <- path(src: X, dst: Y),"
      "                              edge(src: Y, dst: Z)."
      "goal ? path(src: 0, dst: X).",
      ApplicationMode::kRIDI);
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_TRUE(ok->goal_answer.has_value());
  EXPECT_EQ(ok->goal_answer->size(), 30u);
  EXPECT_EQ(DumpDatabase(db), before);
}

TEST(GoalDirectedBudgetTest, SelectiveGoalConvergesWhereWholeProgramDiverges) {
  // The cone of path(src: 62, ...) on a 64-chain is two facts deep; the
  // whole program needs ~64 fixpoint rounds. A step budget between the
  // two separates the paths: goal-directed answers, whole-program is
  // classified divergent.
  auto db = Database::Create(R"(
    associations
      EDGE = (src: integer, dst: integer);
      PATH = (src: integer, dst: integer);
    rules
      path(src: X, dst: Y) <- edge(src: X, dst: Y).
      path(src: X, dst: Z) <- path(src: X, dst: Y), edge(src: Y, dst: Z).
  )");
  ASSERT_TRUE(db.ok()) << db.status();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db->InsertTuple(
                      "EDGE", Value::MakeTuple({{"src", Value::Int(i)},
                                                {"dst", Value::Int(i + 1)}}))
                    .ok());
  }

  EvalOptions tight;
  tight.budget.max_steps = 8;
  EvalStats stats;
  auto directed = db->Query("? path(src: 62, dst: X).", tight, &stats);
  ASSERT_TRUE(directed.ok()) << directed.status();
  EXPECT_EQ(directed->size(), 2u);
  EXPECT_TRUE(stats.goal_directed_fallback.empty())
      << stats.goal_directed_fallback;
  EXPECT_LE(stats.steps, 8u);

  EvalOptions whole = tight;
  whole.goal_directed = false;
  auto starved = db->Query("? path(src: 62, dst: X).", whole);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kDivergence);

  // The same separation under a fact ceiling: the cone stays under a
  // budget the full closure (64 + 2080 facts) breaches.
  EvalOptions cramped;
  cramped.budget.max_facts = 80;
  auto small = db->Query("? path(src: 62, dst: X).", cramped);
  ASSERT_TRUE(small.ok()) << small.status();
  EXPECT_EQ(small->size(), 2u);
  EvalOptions cramped_whole = cramped;
  cramped_whole.goal_directed = false;
  auto burst = db->Query("? path(src: 62, dst: X).", cramped_whole);
  ASSERT_FALSE(burst.ok());
  EXPECT_EQ(burst.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace logres
