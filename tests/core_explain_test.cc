// Tests for the explanation / monitoring utilities.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/explain.h"
#include "core/parser.h"

namespace logres {
namespace {

CheckedProgram AnalyzedProgram() {
  Schema s;
  EXPECT_TRUE(s.DeclareAssociation("E",
      Type::Tuple({{"a", Type::Int()}, {"b", Type::Int()}})).ok());
  EXPECT_TRUE(s.DeclareAssociation("TC",
      Type::Tuple({{"a", Type::Int()}, {"b", Type::Int()}})).ok());
  EXPECT_TRUE(s.DeclareAssociation("ISOLATED",
      Type::Tuple({{"a", Type::Int()}})).ok());
  auto unit = Parse(
      "rules "
      "tc(a: X, b: Y) <- e(a: X, b: Y)."
      "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z)."
      "isolated(a: X) <- e(a: X, b: Y), not tc(a: Y, b: X).");
  EXPECT_TRUE(unit.ok());
  return Typecheck(s, {}, unit->rules).value();
}

TEST(ExplainTest, ProgramReportListsRulesAndStrata) {
  CheckedProgram program = AnalyzedProgram();
  std::string report = ExplainProgram(program);
  EXPECT_NE(report.find("3 rule(s)"), std::string::npos);
  EXPECT_NE(report.find("rule 0:"), std::string::npos);
  EXPECT_NE(report.find("schedule:"), std::string::npos);
  EXPECT_NE(report.find("variable types:"), std::string::npos);
  // The negation pushes ISOLATED to a higher stratum.
  EXPECT_NE(report.find("ISOLATED -> 1"), std::string::npos);
  EXPECT_NE(report.find("TC -> 0"), std::string::npos);
}

TEST(ExplainTest, ReportMarksInventionAndDeletion) {
  Schema s;
  ASSERT_TRUE(s.DeclareClass("OBJ",
      Type::Tuple({{"x", Type::Int()}})).ok());
  ASSERT_TRUE(s.DeclareAssociation("S",
      Type::Tuple({{"x", Type::Int()}})).ok());
  auto unit = Parse(
      "rules "
      "obj(self O, x: X) <- s(x: X)."
      "not s(x: X) <- s(x: X), X > 5."
      "<- s(x: X), X > 100.");
  auto program = Typecheck(s, {}, unit->rules).value();
  std::string report = ExplainProgram(program);
  EXPECT_NE(report.find("(invents oid)"), std::string::npos);
  EXPECT_NE(report.find("(deletion)"), std::string::npos);
  EXPECT_NE(report.find("denial"), std::string::npos);
  EXPECT_NE(report.find("NOT stratified"), std::string::npos);
}

TEST(ExplainTest, DotGraphHasDashedNegativeEdges) {
  CheckedProgram program = AnalyzedProgram();
  Schema s;  // unused by the renderer
  std::string dot = DependencyGraphDot(s, program);
  EXPECT_NE(dot.find("digraph logres"), std::string::npos);
  EXPECT_NE(dot.find("\"TC\" -> \"E\""), std::string::npos);
  EXPECT_NE(dot.find("\"ISOLATED\" -> \"TC\" [style=dashed"),
            std::string::npos);
}

TEST(ExplainTest, DiffReportsAddsAndRemovals) {
  auto db_result = Database::Create(
      "associations P = (x: integer); classes C = (y: integer);");
  Database db = std::move(db_result).value();
  Instance before = db.edb();
  ASSERT_TRUE(db.InsertTuple("P",
      Value::MakeTuple({{"x", Value::Int(1)}})).ok());
  ASSERT_TRUE(db.InsertObject("C",
      Value::MakeTuple({{"y", Value::Int(2)}})).ok());
  InstanceDiff diff = DiffInstances(before, db.edb());
  EXPECT_EQ(diff.added.size(), 2u);
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_FALSE(diff.empty());
  std::string text = diff.ToString();
  EXPECT_NE(text.find("+ P (x: 1)"), std::string::npos);
  EXPECT_NE(text.find("+ C #"), std::string::npos);
  // Reverse direction flips signs.
  InstanceDiff reverse = DiffInstances(db.edb(), before);
  EXPECT_EQ(reverse.removed.size(), 2u);
  EXPECT_TRUE(reverse.added.empty());
  // Identical instances diff empty.
  EXPECT_TRUE(DiffInstances(db.edb(), db.edb()).empty());
}

TEST(ExplainTest, StatsRendering) {
  EvalStats stats;
  stats.steps = 3;
  stats.rule_firings = 17;
  stats.invented_oids = 2;
  stats.deletions = 1;
  stats.facts = 40;
  stats.elapsed_micros = 1250;
  stats.threads = 4;
  EXPECT_EQ(ExplainStats(stats),
            "steps=3 firings=17 invented_oids=2 deletions=1 facts=40 "
            "elapsed_us=1250 threads=4");
}

}  // namespace
}  // namespace logres
