// Parallel fixpoint determinism and thread-aware governor behavior.
//
// The parallel evaluators promise byte-identical results for every thread
// count: the per-step work is partitioned into tasks built in the serial
// evaluation order and merged single-threaded in that same order, so the
// fixpoint — including invented oids, the non-commutative o-value
// composition, and head deletions — cannot depend on scheduling. These
// tests pin that promise with canonical dumps across num_threads
// {1, 2, 4, 8} on every fixture class that exercises a distinct engine
// path, and check the governor's transactional guarantee under threads:
// cancellation (from a second thread, mid-run) and budget exhaustion roll
// the database back with no partial delta.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "core/algres_backend.h"
#include "core/database.h"
#include "core/dump.h"
#include "datalog/datalog.h"
#include "util/thread_pool.h"

namespace logres {
namespace {

Value T2(int64_t a, int64_t b) {
  return Value::MakeTuple({{"a", Value::Int(a)}, {"b", Value::Int(b)}});
}

// Applies `module` with `threads` workers on a fresh database built from
// `schema` + `populate`, expecting success, and returns the canonical
// dump.
std::string RunAndDump(const std::string& schema,
                       const std::function<void(Database*)>& populate,
                       const std::string& module, size_t threads,
                       EvalMode mode = EvalMode::kStratified,
                       bool snapshot_steps = false,
                       bool intern_values = true) {
  auto db_result = Database::Create(schema);
  EXPECT_TRUE(db_result.ok()) << db_result.status();
  if (!db_result.ok()) return {};
  Database db = std::move(db_result).value();
  populate(&db);
  EvalOptions options;
  options.num_threads = threads;
  options.mode = mode;
  options.use_snapshot_steps = snapshot_steps;
  options.intern_values = intern_values;
  auto apply = db.ApplySource(module, ApplicationMode::kRIDV, options);
  EXPECT_TRUE(apply.ok()) << apply.status() << " (threads=" << threads
                          << ")";
  if (apply.ok()) {
    EXPECT_EQ(apply->stats.threads, threads);
  }
  return DumpDatabase(db);
}

// Asserts the dump is byte-identical across the thread sweep — for both
// step-application paths (the undo-log default and the copy-per-step
// reference) and for both value-representation paths (the hash-consing
// interner and the plain-allocation reference), all of which must also
// agree with each other. The interner dimension sweeps threads {1,4}
// only: concurrent workers intern into the shared sharded table, and the
// dump must not depend on which worker canonicalized a node first.
void ExpectDeterministicSweep(const std::string& schema,
                              const std::function<void(Database*)>& populate,
                              const std::string& module,
                              EvalMode mode = EvalMode::kStratified) {
  std::string serial = RunAndDump(schema, populate, module, 1, mode);
  ASSERT_FALSE(serial.empty());
  for (bool snapshot_steps : {false, true}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      if (!snapshot_steps && threads == 1) continue;  // the reference run
      EXPECT_EQ(serial, RunAndDump(schema, populate, module, threads, mode,
                                   snapshot_steps))
          << "threads=" << threads << " snapshot_steps=" << snapshot_steps;
    }
  }
  for (bool intern : {true, false}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      if (intern && threads == 1) continue;  // the reference run above
      EXPECT_EQ(serial,
                RunAndDump(schema, populate, module, threads, mode,
                           /*snapshot_steps=*/false, intern))
          << "threads=" << threads << " intern=" << intern;
    }
  }
}

void PopulateChain(Database* db, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(db->InsertTuple("E", T2(i, i + 1)).ok());
  }
}

TEST(ParallelDeterminism, ChainTransitiveClosure) {
  ExpectDeterministicSweep(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);",
      [](Database* db) { PopulateChain(db, 24); },
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).");
}

TEST(ParallelDeterminism, InventedOidsAcrossSteps) {
  // Oid invention is the hardest case: workers defer invention requests
  // and the coordinator resolves them in serial firing order, so the oid
  // *numbers* in the dump must match the serial run exactly. The counter
  // rule invents a fresh object per step; the per-fact rule invents many
  // within one step.
  ExpectDeterministicSweep(
      "classes OBJ = (x: integer); NODE = (x: integer);"
      "associations S = (x: integer);",
      [](Database* db) {
        for (int i = 0; i < 12; ++i) {
          ASSERT_TRUE(
              db->InsertTuple("S", Value::MakeTuple({{"x", Value::Int(i)}}))
                  .ok());
        }
      },
      "rules obj(self O, x: X) <- s(x: X)."
      "      node(self N, x: 0) <- s(x: 0)."
      "      node(self N, x: Y) <- node(self M, x: X), Y = X + 1, X < 8.");
}

TEST(ParallelDeterminism, HeadDeletionsAndOValueRewrites) {
  // Head negation produces Delta-minus facts and o-value rewrites ride on
  // the non-commutative composition; both must merge in serial order.
  ExpectDeterministicSweep(
      "associations P = (x: integer); S = (x: integer);",
      [](Database* db) {
        for (int i = 0; i < 6; ++i) {
          ASSERT_TRUE(
              db->InsertTuple("S", Value::MakeTuple({{"x", Value::Int(i)}}))
                  .ok());
          ASSERT_TRUE(
              db->InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}))
                  .ok());
        }
      },
      "rules p(x: Y) <- s(x: X), Y = X + 10."
      "      not p(x: X) <- s(x: X), X > 2.");
}

TEST(ParallelDeterminism, StratifiedNegation) {
  ExpectDeterministicSweep(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);"
      "             GAP = (a: integer, b: integer);",
      [](Database* db) { PopulateChain(db, 12); },
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z)."
      "      gap(a: X, b: Y) <- e(a: X, b: X1), e(a: Y1, b: Y),"
      "                         not tc(a: X, b: Y).");
}

TEST(ParallelDeterminism, NonInflationaryMode) {
  ExpectDeterministicSweep(
      "associations P = (x: integer); Q = (x: integer);",
      [](Database* db) {
        for (int i = 0; i < 8; ++i) {
          ASSERT_TRUE(
              db->InsertTuple("P", Value::MakeTuple({{"x", Value::Int(i)}}))
                  .ok());
        }
      },
      "rules q(x: Y) <- p(x: X), Y = X * 2.", EvalMode::kNonInflationary);
}

TEST(ParallelDeterminism, DatalogEngineSweep) {
  datalog::Program program;
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(program
                    .AddFact("e", {datalog::Constant::Int(i),
                                   datalog::Constant::Int(i + 1)})
                    .ok());
  }
  using datalog::Literal;
  using datalog::Term;
  ASSERT_TRUE(program
                  .AddRule(datalog::Rule{
                      Literal{"tc", {Term::Var("X"), Term::Var("Y")}, false},
                      {Literal{"e", {Term::Var("X"), Term::Var("Y")},
                               false}}})
                  .ok());
  ASSERT_TRUE(
      program
          .AddRule(datalog::Rule{
              Literal{"tc", {Term::Var("X"), Term::Var("Z")}, false},
              {Literal{"tc", {Term::Var("X"), Term::Var("Y")}, false},
               Literal{"e", {Term::Var("Y"), Term::Var("Z")}, false}}})
          .ok());
  auto serial = datalog::Evaluate(program);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    datalog::EvalOptions options;
    options.num_threads = threads;
    auto parallel = datalog::Evaluate(program, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(*serial, *parallel) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, AlgresBackendSweep) {
  auto db_result = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);");
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  PopulateChain(&db, 40);
  auto unit = Parse(
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  auto program = Typecheck(db.schema(), {}, unit->rules);
  ASSERT_TRUE(program.ok()) << program.status();
  auto backend = AlgresBackend::Compile(db.schema(), *program);
  ASSERT_TRUE(backend.ok()) << backend.status();
  auto serial = backend->Run(db.edb());
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    auto parallel =
        backend->Run(db.edb(), AlgresStrategy::kSemiNaive, Budget{}, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_TRUE(*serial == *parallel) << "threads=" << threads;
    EXPECT_EQ(serial->ToString(), parallel->ToString())
        << "threads=" << threads;
  }
}

// ---- Thread-aware governor: transactional rollback ------------------------

constexpr const char* kChainSchema =
    "associations E = (a: integer, b: integer);"
    "             TC = (a: integer, b: integer);";
constexpr const char* kChainRules =
    "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
    "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).";

TEST(ParallelGovernor, SecondThreadCancellationRollsBack) {
  // The canceller races the fixpoint, so a fast machine could complete
  // the apply before Cancel() lands. Escalate the workload until the
  // cancellation wins; each attempt is a valid transactional-rollback
  // check on its own.
  for (int n : {600, 2400, 9600}) {
    auto db_result = Database::Create(kChainSchema);
    ASSERT_TRUE(db_result.ok()) << db_result.status();
    Database db = std::move(db_result).value();
    PopulateChain(&db, n);
    std::string before = DumpDatabase(db);

    CancellationSource source;
    EvalOptions options;
    options.num_threads = 4;
    options.budget.cancel = source.token();
    std::thread canceller([&source]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      source.Cancel();
    });
    auto apply = db.ApplySource(kChainRules, ApplicationMode::kRIDV, options);
    canceller.join();
    if (apply.ok()) continue;  // fixpoint beat the canceller; go bigger
    EXPECT_EQ(apply.status().code(), StatusCode::kCancelled)
        << apply.status();
    // Transactional: no partial delta survives the cancellation.
    EXPECT_EQ(before, DumpDatabase(db));
    return;
  }
  FAIL() << "fixpoint completed before cancellation at every size";
}

TEST(ParallelGovernor, StepExhaustionUnderThreadsRollsBack) {
  auto db_result = Database::Create(kChainSchema);
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  PopulateChain(&db, 30);
  std::string before = DumpDatabase(db);
  EvalOptions options;
  options.num_threads = 4;
  options.budget.max_steps = 3;
  auto apply = db.ApplySource(kChainRules, ApplicationMode::kRIDV, options);
  ASSERT_FALSE(apply.ok());
  EXPECT_EQ(apply.status().code(), StatusCode::kDivergence) << apply.status();
  EXPECT_EQ(before, DumpDatabase(db));
}

TEST(ParallelGovernor, TimeoutUnderThreadsRollsBack) {
  auto db_result = Database::Create(kChainSchema);
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  PopulateChain(&db, 30);
  std::string before = DumpDatabase(db);
  EvalOptions options;
  options.num_threads = 4;
  options.budget.timeout = std::chrono::milliseconds(0);
  auto apply = db.ApplySource(kChainRules, ApplicationMode::kRIDV, options);
  ASSERT_FALSE(apply.ok());
  EXPECT_EQ(apply.status().code(), StatusCode::kResourceExhausted)
      << apply.status();
  EXPECT_EQ(before, DumpDatabase(db));
}

TEST(ParallelGovernor, SuccessfulParallelApplyReportsThreads) {
  auto db_result = Database::Create(kChainSchema);
  ASSERT_TRUE(db_result.ok()) << db_result.status();
  Database db = std::move(db_result).value();
  PopulateChain(&db, 20);
  EvalOptions options;
  options.num_threads = 4;
  auto apply = db.ApplySource(kChainRules, ApplicationMode::kRIDV, options);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_EQ(apply->stats.threads, 4u);
  EXPECT_EQ(apply->stats.rule_micros.size(), 2u);
  EXPECT_EQ(db.edb().TuplesOf("TC").size(), 20u * 21u / 2u);
}

// ThreadPool unit coverage: status propagation picks the lowest-indexed
// failure regardless of scheduling, and a pre-cancelled token skips
// unclaimed tasks with kCancelled.
TEST(ThreadPoolTest, LowestIndexedFailureWins) {
  ThreadPool pool(4);
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([i]() -> Status {
      if (i == 7) return Status::ExecutionError("seven");
      if (i == 21) return Status::ExecutionError("twenty-one");
      return Status::OK();
    });
  }
  Status status = pool.Run(std::move(tasks));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("seven"), std::string::npos) << status;
}

TEST(ThreadPoolTest, CancelledTokenShortCircuits) {
  ThreadPool pool(4);
  CancellationSource source;
  source.Cancel();
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([]() -> Status { return Status::OK(); });
  }
  Status status = pool.Run(std::move(tasks), source.token());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  std::vector<ThreadPool::Task> tasks;
  tasks.push_back([]() -> Status { return Status::OK(); });
  tasks.push_back([]() -> Status { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Run(std::move(tasks)), std::runtime_error);
}

}  // namespace
}  // namespace logres
