// Unit tests for the flat Datalog baseline engine.

#include <gtest/gtest.h>

#include "datalog/datalog.h"
#include "util/failpoint.h"

namespace logres::datalog {
namespace {

Rule MakeRule(Literal head, std::vector<Literal> body) {
  Rule r;
  r.head = std::move(head);
  r.body = std::move(body);
  return r;
}

Literal Lit(const std::string& pred, std::vector<Term> terms,
            bool negated = false) {
  Literal l;
  l.predicate = pred;
  l.terms = std::move(terms);
  l.negated = negated;
  return l;
}

Program TransitiveClosure() {
  Program p;
  // edge facts: a chain 1->2->3->4.
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(p.AddFact("edge", {Constant::Int(i),
                                   Constant::Int(i + 1)}).ok());
  }
  EXPECT_TRUE(p.AddRule(MakeRule(
      Lit("tc", {Term::Var("X"), Term::Var("Y")}),
      {Lit("edge", {Term::Var("X"), Term::Var("Y")})})).ok());
  EXPECT_TRUE(p.AddRule(MakeRule(
      Lit("tc", {Term::Var("X"), Term::Var("Z")}),
      {Lit("edge", {Term::Var("X"), Term::Var("Y")}),
       Lit("tc", {Term::Var("Y"), Term::Var("Z")})})).ok());
  return p;
}

TEST(DatalogTest, TransitiveClosureNaive) {
  Program p = TransitiveClosure();
  auto db = Evaluate(p, EvalStrategy::kNaive);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->at("tc").size(), 6u);  // C(4,2) pairs on a chain of 4
}

TEST(DatalogTest, SemiNaiveAgreesWithNaive) {
  Program p = TransitiveClosure();
  auto naive = Evaluate(p, EvalStrategy::kNaive);
  auto semi = Evaluate(p, EvalStrategy::kSemiNaive);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(*naive, *semi);
}

TEST(DatalogTest, QueryBindsConstants) {
  Program p = TransitiveClosure();
  auto db = Evaluate(p).value();
  auto ans = Query(db, Lit("tc", {Term::Int(1), Term::Var("Y")}));
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 3u);  // 1 reaches 2, 3, 4
  auto none = Query(db, Lit("tc", {Term::Int(4), Term::Var("Y")}));
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE(Query(db, Lit("tc", {Term::Var("X")}, true)).ok());
}

TEST(DatalogTest, RepeatedVariablesInBody) {
  Program p;
  ASSERT_TRUE(p.AddFact("e", {Constant::Int(1), Constant::Int(1)}).ok());
  ASSERT_TRUE(p.AddFact("e", {Constant::Int(1), Constant::Int(2)}).ok());
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("loop", {Term::Var("X")}),
      {Lit("e", {Term::Var("X"), Term::Var("X")})})).ok());
  auto db = Evaluate(p).value();
  EXPECT_EQ(db.at("loop").size(), 1u);
}

TEST(DatalogTest, StratifiedNegation) {
  Program p;
  ASSERT_TRUE(p.AddFact("node", {Constant::Sym("a")}).ok());
  ASSERT_TRUE(p.AddFact("node", {Constant::Sym("b")}).ok());
  ASSERT_TRUE(p.AddFact("covered", {Constant::Sym("a")}).ok());
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("uncovered", {Term::Var("X")}),
      {Lit("node", {Term::Var("X")}),
       Lit("covered", {Term::Var("X")}, /*negated=*/true)})).ok());
  auto db = Evaluate(p).value();
  ASSERT_EQ(db.at("uncovered").size(), 1u);
  EXPECT_EQ(db.at("uncovered").begin()->front(), Constant::Sym("b"));
}

TEST(DatalogTest, StratifyAssignsLevels) {
  Program p;
  ASSERT_TRUE(p.AddFact("base", {Constant::Int(1)}).ok());
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("derived", {Term::Var("X")}),
      {Lit("base", {Term::Var("X")})})).ok());
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("top", {Term::Var("X")}),
      {Lit("base", {Term::Var("X")}),
       Lit("derived", {Term::Var("X")}, true)})).ok());
  auto strata = Stratify(p);
  ASSERT_TRUE(strata.ok());
  EXPECT_EQ(strata->at("base"), 0);
  EXPECT_EQ(strata->at("derived"), 0);
  EXPECT_EQ(strata->at("top"), 1);
}

TEST(DatalogTest, UnstratifiedProgramRejected) {
  Program p;
  ASSERT_TRUE(p.AddFact("seed", {Constant::Int(1)}).ok());
  // p :- seed, not q.  q :- seed, not p.  — a negation cycle.
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("p", {Term::Var("X")}),
      {Lit("seed", {Term::Var("X")}),
       Lit("q", {Term::Var("X")}, true)})).ok());
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("q", {Term::Var("X")}),
      {Lit("seed", {Term::Var("X")}),
       Lit("p", {Term::Var("X")}, true)})).ok());
  EXPECT_EQ(Evaluate(p).status().code(), StatusCode::kInconsistent);
}

TEST(DatalogTest, SafetyRejectsUnboundHeadVariable) {
  Program p;
  Status s = p.AddRule(MakeRule(
      Lit("out", {Term::Var("X"), Term::Var("Y")}),
      {Lit("in", {Term::Var("X")})}));
  EXPECT_EQ(s.code(), StatusCode::kUnsafeRule);
}

TEST(DatalogTest, SafetyRejectsUnboundNegatedVariable) {
  Program p;
  Status s = p.AddRule(MakeRule(
      Lit("out", {Term::Var("X")}),
      {Lit("in", {Term::Var("X")}),
       Lit("other", {Term::Var("Z")}, true)}));
  EXPECT_EQ(s.code(), StatusCode::kUnsafeRule);
}

TEST(DatalogTest, NegatedHeadRejected) {
  Program p;
  Status s = p.AddRule(MakeRule(
      Lit("out", {Term::Var("X")}, /*negated=*/true),
      {Lit("in", {Term::Var("X")})}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DatalogTest, ArityMismatchRejected) {
  Program p;
  ASSERT_TRUE(p.AddFact("p", {Constant::Int(1)}).ok());
  EXPECT_FALSE(p.AddFact("p", {Constant::Int(1), Constant::Int(2)}).ok());
  Status s = p.AddRule(MakeRule(
      Lit("q", {Term::Var("X")}),
      {Lit("p", {Term::Var("X"), Term::Var("X")})}));
  EXPECT_FALSE(s.ok());
}

TEST(DatalogTest, ConstantsInRuleBodies) {
  Program p = TransitiveClosure();
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("from1", {Term::Var("Y")}),
      {Lit("tc", {Term::Int(1), Term::Var("Y")})})).ok());
  auto db = Evaluate(p).value();
  EXPECT_EQ(db.at("from1").size(), 3u);
}

TEST(DatalogTest, SameGeneration) {
  Program p;
  // A small tree: r -> a, r -> b; a -> a1, b -> b1.
  auto add = [&](const char* x, const char* y) {
    ASSERT_TRUE(p.AddFact("par", {Constant::Sym(x),
                                  Constant::Sym(y)}).ok());
  };
  add("r", "a");
  add("r", "b");
  add("a", "a1");
  add("b", "b1");
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("sg", {Term::Var("X"), Term::Var("Y")}),
      {Lit("par", {Term::Var("P"), Term::Var("X")}),
       Lit("par", {Term::Var("P"), Term::Var("Y")})})).ok());
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("sg", {Term::Var("X"), Term::Var("Y")}),
      {Lit("par", {Term::Var("P1"), Term::Var("X")}),
       Lit("sg", {Term::Var("P1"), Term::Var("P2")}),
       Lit("par", {Term::Var("P2"), Term::Var("Y")})})).ok());
  auto db = Evaluate(p).value();
  // a1 and b1 are same-generation.
  EXPECT_TRUE(db.at("sg").count({Constant::Sym("a1"),
                                 Constant::Sym("b1")}));
  EXPECT_FALSE(db.at("sg").count({Constant::Sym("a"),
                                  Constant::Sym("a1")}));
}

TEST(DatalogTest, ConstantOrderingAndPrinting) {
  EXPECT_LT(Constant::Int(1), Constant::Int(2));
  EXPECT_EQ(Constant::Int(3).ToString(), "3");
  EXPECT_EQ(Constant::Sym("x").ToString(), "x");
  EXPECT_EQ(Term::Var("X").ToString(), "X");
  Literal l = Lit("p", {Term::Var("X"), Term::Int(1)}, true);
  EXPECT_EQ(l.ToString(), "not p(X, 1)");
  Rule r = MakeRule(Lit("q", {Term::Var("X")}),
                    {Lit("p", {Term::Var("X"), Term::Int(1)})});
  EXPECT_EQ(r.ToString(), "q(X) :- p(X, 1).");
}

// Property sweep: naive and semi-naive agree on random chain+shortcut
// graphs of varying size.
class DatalogEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DatalogEquivalence, NaiveEqualsSemiNaive) {
  int n = GetParam();
  Program p;
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(p.AddFact("edge", {Constant::Int(i),
                                   Constant::Int(i + 1)}).ok());
  }
  // Shortcuts every third node.
  for (int i = 0; i + 3 < n; i += 3) {
    ASSERT_TRUE(p.AddFact("edge", {Constant::Int(i),
                                   Constant::Int(i + 3)}).ok());
  }
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("tc", {Term::Var("X"), Term::Var("Y")}),
      {Lit("edge", {Term::Var("X"), Term::Var("Y")})})).ok());
  ASSERT_TRUE(p.AddRule(MakeRule(
      Lit("tc", {Term::Var("X"), Term::Var("Z")}),
      {Lit("tc", {Term::Var("X"), Term::Var("Y")}),
       Lit("edge", {Term::Var("Y"), Term::Var("Z")})})).ok());
  auto naive = Evaluate(p, EvalStrategy::kNaive);
  auto semi = Evaluate(p, EvalStrategy::kSemiNaive);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(*naive, *semi);
  // Chain TC has n(n-1)/2 pairs at minimum.
  EXPECT_GE(naive->at("tc").size(),
            static_cast<size_t>(n * (n - 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DatalogEquivalence,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

// ---------------------------------------------------------------------------
// Fault injection: the baseline engine carries the same failpoint sites
// (datalog.stratum per stratum, datalog.step per fixpoint iteration) the
// LOGRES engines expose as eval.stratum / eval.step.

TEST(DatalogFailpointTest, StratumSitePropagatesInjectedStatus) {
  Program p = TransitiveClosure();
  ScopedFailpoint fp("datalog.stratum",
                     Status::ExecutionError("injected stratum fault"));
  for (EvalStrategy strategy :
       {EvalStrategy::kNaive, EvalStrategy::kSemiNaive}) {
    auto result = Evaluate(p, strategy);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  }
  EXPECT_GE(fp.hit_count(), 2u);
}

TEST(DatalogFailpointTest, StepSiteFailsMidFixpoint) {
  Program p = TransitiveClosure();
  // Let the first iteration through, fail on the second: the engine must
  // surface the fault instead of returning a half-computed fixpoint.
  ScopedFailpoint fp("datalog.step",
                     Status::ExecutionError("injected step fault"),
                     /*skip_hits=*/1);
  auto result = Evaluate(p, EvalStrategy::kSemiNaive);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_EQ(fp.hit_count(), 2u);
}

TEST(DatalogFailpointTest, DisarmedSitesCostNothing) {
  Program p = TransitiveClosure();
  auto result = Evaluate(p, EvalStrategy::kSemiNaive);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(failpoints::HitCount("datalog.step"), 0u);
}

}  // namespace
}  // namespace logres::datalog
