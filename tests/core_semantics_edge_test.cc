// Edge cases of the evaluation semantics: unstratified programs under
// whole-program inflationary computation, differences between the
// inflationary and replacement semantics, and goal answering through
// builtins and data functions.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/parser.h"
#include "core/typecheck.h"

namespace logres {
namespace {

Value T1(const std::string& l, int64_t v) {
  return Value::MakeTuple({{l, Value::Int(v)}});
}

// The classic win-move game is not stratified (win depends negatively on
// itself through move). Section 3.1: "Whenever the program is not
// stratified ... it can also be assigned a meaning, by computing it as a
// whole still under inflationary semantics." The inflationary result is
// well-defined and deterministic — this test pins it down.
TEST(UnstratifiedTest, WinMoveGetsInflationaryMeaning) {
  auto db_result = Database::Create(
      "associations MOVE = (a: integer, b: integer);"
      "             WIN = (a: integer);");
  Database db = std::move(db_result).value();
  // Positions: 1 -> 2 -> 3 (3 is lost: no moves).
  ASSERT_TRUE(db.InsertTuple("MOVE", Value::MakeTuple(
      {{"a", Value::Int(1)}, {"b", Value::Int(2)}})).ok());
  ASSERT_TRUE(db.InsertTuple("MOVE", Value::MakeTuple(
      {{"a", Value::Int(2)}, {"b", Value::Int(3)}})).ok());
  auto unit = Parse("rules win(a: X) <- move(a: X, b: Y), not win(a: Y).");
  auto program = Typecheck(db.schema(), {}, unit->rules);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_FALSE(program->stratified);
  auto apply = db.ApplySource(
      "rules win(a: X) <- move(a: X, b: Y), not win(a: Y).",
      ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // Step 1 (win empty): both 1 and 2 derive win. Inflationary: they stay.
  // This is the inflationary meaning — NOT the well-founded model (where
  // only 2 wins); the test documents the semantics the paper chose.
  EXPECT_TRUE(db.edb().TuplesOf("WIN").count(T1("a", 1)));
  EXPECT_TRUE(db.edb().TuplesOf("WIN").count(T1("a", 2)));
  EXPECT_FALSE(db.edb().TuplesOf("WIN").count(T1("a", 3)));
}

TEST(UnstratifiedTest, DeterministicAcrossRuns) {
  // The unstratified meaning is still deterministic: repeated runs agree.
  auto run = []() -> Instance {
    auto db_result = Database::Create(
        "associations MOVE = (a: integer, b: integer);"
        "             WIN = (a: integer);");
    Database db = std::move(db_result).value();
    for (int i = 1; i <= 4; ++i) {
      (void)db.InsertTuple("MOVE", Value::MakeTuple(
          {{"a", Value::Int(i)}, {"b", Value::Int(i + 1)}}));
    }
    EXPECT_TRUE(db.ApplySource(
        "rules win(a: X) <- move(a: X, b: Y), not win(a: Y).",
        ApplicationMode::kRIDV).ok());
    return db.edb();
  };
  EXPECT_TRUE(run() == run());
}

TEST(SemanticsTest, InflationaryAndReplacementDiffer) {
  // p persists under inflationary semantics but must re-derive under
  // replacement: a one-shot trigger distinguishes them.
  const char* schema =
      "associations SEED = (x: integer); OUT = (x: integer);"
      "             STAGE = (x: integer);";
  // stage derives from seed; out derives from stage AND seed's absence is
  // irrelevant — under replacement, out must re-derive each step from the
  // rebuilt stage, which works; the difference shows with deletion:
  const char* rules =
      "rules stage(x: X) <- seed(x: X)."
      "      out(x: X) <- stage(x: X).";
  for (EvalMode mode :
       {EvalMode::kStratified, EvalMode::kNonInflationary}) {
    auto db_result = Database::Create(schema);
    Database db = std::move(db_result).value();
    ASSERT_TRUE(db.InsertTuple("SEED", T1("x", 1)).ok());
    EvalOptions options;
    options.mode = mode;
    auto apply = db.ApplySource(rules, ApplicationMode::kRIDV, options);
    ASSERT_TRUE(apply.ok()) << apply.status();
    // Both converge to the same instance on this monotone program.
    EXPECT_TRUE(db.edb().TuplesOf("OUT").count(T1("x", 1)));
  }
}

TEST(SemanticsTest, ReplacementDropsUnsupportedFacts) {
  // Under replacement semantics, extensional facts persist (they are in
  // E) but derived facts not re-derivable vanish. Build a state where a
  // derived fact's support was removed, then re-run under replacement.
  auto db_result = Database::Create(
      "associations SEED = (x: integer); OUT = (x: integer);");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("OUT", T1("x", 9)).ok());  // unsupported
  ASSERT_TRUE(db.InsertTuple("SEED", T1("x", 1)).ok());
  EvalOptions replacement;
  replacement.mode = EvalMode::kNonInflationary;
  // The module's rules derive OUT only from SEED; the pre-existing OUT(9)
  // is extensional, so E ⊕ Δ keeps it: this documents that replacement
  // semantics re-seeds from E, not from ∅.
  auto apply = db.ApplySource("rules out(x: X) <- seed(x: X).",
                              ApplicationMode::kRIDV, replacement);
  ASSERT_TRUE(apply.ok()) << apply.status();
  EXPECT_TRUE(db.edb().TuplesOf("OUT").count(T1("x", 1)));
  EXPECT_TRUE(db.edb().TuplesOf("OUT").count(T1("x", 9)));
}

TEST(GoalTest, BuiltinsInGoals) {
  auto db_result = Database::Create(
      "associations BAG = (s: {integer});");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("BAG", Value::MakeTuple(
      {{"s", Value::MakeSet({Value::Int(1), Value::Int(2),
                             Value::Int(3)})}})).ok());
  auto sum = db.Query("? bag(s: S), sum(S, N).");
  ASSERT_TRUE(sum.ok()) << sum.status();
  ASSERT_EQ(sum->size(), 1u);
  EXPECT_EQ(sum->front().at("N"), Value::Int(6));
  auto members = db.Query("? bag(s: S), member(X, S), X > 1.");
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 2u);
}

TEST(GoalTest, FunctionApplicationsInGoals) {
  auto db_result = Database::Create(R"(
    classes PERSON = (name: string);
    associations PARENT = (par: PERSON, chil: PERSON);
    functions KIDS: PERSON -> {PERSON};
    rules
      member(X, kids(Y)) <- parent(par: Y, chil: X).
  )");
  Database db = std::move(db_result).value();
  auto p = db.InsertObject("PERSON",
      Value::MakeTuple({{"name", Value::String("p")}}));
  auto c = db.InsertObject("PERSON",
      Value::MakeTuple({{"name", Value::String("c")}}));
  ASSERT_TRUE(p.ok() && c.ok());
  ASSERT_TRUE(db.InsertTuple("PARENT", Value::MakeTuple(
      {{"par", Value::MakeOid(*p)}, {"chil", Value::MakeOid(*c)}})).ok());
  auto ans = db.Query(
      "? person(self Y, name: \"p\"), member(X, kids(Y)), "
      "person(self X, name: N).");
  ASSERT_TRUE(ans.ok()) << ans.status();
  ASSERT_EQ(ans->size(), 1u);
  EXPECT_EQ(ans->front().at("N"), Value::String("c"));
}

TEST(GoalTest, GoalAnswersAreDeduplicated) {
  auto db_result = Database::Create(
      "associations E = (a: integer, b: integer);");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("E", Value::MakeTuple(
      {{"a", Value::Int(1)}, {"b", Value::Int(2)}})).ok());
  ASSERT_TRUE(db.InsertTuple("E", Value::MakeTuple(
      {{"a", Value::Int(1)}, {"b", Value::Int(3)}})).ok());
  // Projecting onto `a` collapses the two rows.
  auto ans = db.Query("? e(a: X).");
  ASSERT_TRUE(ans.ok());
  EXPECT_EQ(ans->size(), 1u);
}

TEST(SemanticsTest, DenialWithActiveDomainNegation) {
  // A denial whose negated literal has a free variable: satisfied when
  // some active-domain instantiation makes the body true.
  auto db_result = Database::Create(
      "associations HAVE = (x: integer); NEED = (x: integer);");
  Database db = std::move(db_result).value();
  ASSERT_TRUE(db.InsertTuple("NEED", T1("x", 1)).ok());
  ASSERT_TRUE(db.InsertTuple("NEED", T1("x", 2)).ok());
  ASSERT_TRUE(db.InsertTuple("HAVE", T1("x", 1)).ok());
  // Denial: no needed item may be missing.
  auto missing = db.ApplySource(
      "rules <- need(x: X), not have(x: X).", ApplicationMode::kRADI);
  EXPECT_EQ(missing.status().code(), StatusCode::kConstraintViolation);
  // After supplying item 2 the same module applies cleanly.
  ASSERT_TRUE(db.InsertTuple("HAVE", T1("x", 2)).ok());
  EXPECT_TRUE(db.ApplySource(
      "rules <- need(x: X), not have(x: X).",
      ApplicationMode::kRADI).ok());
}

TEST(SemanticsTest, WholeProgramDeletionInteractsWithDerivation) {
  // A module that simultaneously derives into Q and prunes P: the
  // one-step operator applies Δ+ and Δ− of the same step together.
  auto db_result = Database::Create(
      "associations P = (x: integer); Q = (x: integer);");
  Database db = std::move(db_result).value();
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(db.InsertTuple("P", T1("x", i)).ok());
  }
  auto apply = db.ApplySource(
      "rules q(x: X) <- p(x: X), even(X)."
      "      not p(x: X) <- p(x: X), even(X).",
      ApplicationMode::kRIDV);
  ASSERT_TRUE(apply.ok()) << apply.status();
  // Evens moved from P to Q.
  EXPECT_EQ(db.edb().TuplesOf("P").size(), 2u);
  EXPECT_EQ(db.edb().TuplesOf("Q").size(), 2u);
  EXPECT_TRUE(db.edb().TuplesOf("Q").count(T1("x", 2)));
  EXPECT_FALSE(db.edb().TuplesOf("P").count(T1("x", 2)));
}

}  // namespace
}  // namespace logres
