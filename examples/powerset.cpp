// Powerset: Example 3.3 — set-valued computation through built-in
// predicates (append, union), exercising the inflationary fixpoint on a
// workload whose result is exponential in the input.
//
// Usage:  ./build/examples/powerset [n]    (default n = 4, max 12)

#include <cstdio>
#include <cstdlib>

#include "core/database.h"

using namespace logres;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 4;
  if (n < 0 || n > 12) {
    std::fprintf(stderr, "n must be between 0 and 12\n");
    return 1;
  }

  auto db_result = Database::Create(R"(
    associations
      R = (d: integer);
      POWER = (set: {integer});
  )");
  if (!db_result.ok()) {
    std::fprintf(stderr, "%s\n", db_result.status().ToString().c_str());
    return 1;
  }
  Database db = std::move(db_result).value();
  for (int i = 1; i <= n; ++i) {
    if (!db.InsertTuple("R", Value::MakeTuple(
            {{"d", Value::Int(i)}})).ok()) {
      return 1;
    }
  }

  // Example 3.3 verbatim: Power({}), singletons via append, closure under
  // union.
  auto apply = db.ApplySource(R"(
    rules
      power(set: X) <- X = {}.
      power(set: X) <- r(d: Y), append({}, Y, X).
      power(set: X) <- power(set: Y), power(set: Z), union(X, Y, Z).
  )", ApplicationMode::kRIDV);
  if (!apply.ok()) {
    std::fprintf(stderr, "%s\n", apply.status().ToString().c_str());
    return 1;
  }

  const auto& power = db.edb().TuplesOf("POWER");
  std::printf("|R| = %d, |power(R)| = %zu (expected %ld)\n", n,
              power.size(), 1L << n);
  if (n <= 4) {
    for (const Value& row : power) {
      std::printf("  %s\n", row.field("set").value().ToString().c_str());
    }
  }
  std::printf("fixpoint steps: %zu, rule firings: %zu\n",
              apply->stats.steps, apply->stats.rule_firings);
  std::printf("powerset: %s\n",
              power.size() == static_cast<size_t>(1L << n) ? "OK" : "WRONG");
  return power.size() == static_cast<size_t>(1L << n) ? 0 : 1;
}
