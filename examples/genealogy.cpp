// Genealogy: data functions, recursion, and nesting (paper Examples 2.2
// and 3.2).
//
// Builds a family forest, then uses set-valued data functions — the
// paper's "shorthand notation for associations" — to compute each
// person's children and transitive descendants, nesting the latter into
// an ANCESTOR association with one set-valued attribute.
//
// Build & run:  ./build/examples/genealogy

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/database.h"

using namespace logres;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  Database db = Unwrap(Database::Create(R"(
    classes
      PERSON = (name: string, age: integer);
    associations
      PARENT = (par: PERSON, chil: PERSON);
      ANCESTOR = (anc: PERSON, des: {PERSON});
    functions
      CHILDREN: PERSON -> {PERSON};
      DESC: PERSON -> {PERSON};
      JUNIOR: -> {PERSON};
  )"), "create database");

  // A three-generation family:
  //   nonna(80) -> anna(50) -> carla(20), dario(15)
  //             -> bruno(45) -> elena(12)
  std::map<std::string, Oid> people;
  auto person = [&](const char* name, int64_t age) {
    people[name] = Unwrap(db.InsertObject("PERSON", Value::MakeTuple(
        {{"name", Value::String(name)}, {"age", Value::Int(age)}})),
        "insert person");
  };
  person("nonna", 80);
  person("anna", 50);
  person("bruno", 45);
  person("carla", 20);
  person("dario", 15);
  person("elena", 12);
  auto parent = [&](const char* p, const char* c) {
    Check(db.InsertTuple("PARENT", Value::MakeTuple(
        {{"par", Value::MakeOid(people[p])},
         {"chil", Value::MakeOid(people[c])}})), "insert parent");
  };
  parent("nonna", "anna");
  parent("nonna", "bruno");
  parent("anna", "carla");
  parent("anna", "dario");
  parent("bruno", "elena");

  // Example 2.2 (CHILDREN, JUNIOR) and Example 3.2 (recursive DESC,
  // nested ANCESTOR) verbatim, modulo surface syntax.
  auto update = db.ApplySource(R"(
    rules
      member(X, children(Y)) <- parent(par: Y, chil: X).
      member(X, junior())    <- person(self X, age: A), A <= 18.

      member(X, desc(Y)) <- parent(par: Y, chil: X).
      member(X, desc(Y)) <- parent(par: Y, chil: Z), member(X, T),
                            T = desc(Z).

      ancestor(anc: X, des: Y) <- parent(par: X), Y = desc(X).
  )", ApplicationMode::kRIDV);
  Check(update.status(), "evaluate data functions");

  // Render the nested ANCESTOR association.
  auto name_of = [&](const Value& oid_value) -> std::string {
    auto v = db.edb().OValue(oid_value.oid_value());
    if (!v.ok()) return "?";
    return v.value().field("name").value().string_value();
  };
  std::printf("Descendant sets (Example 3.2):\n");
  for (const Value& row : db.edb().TuplesOf("ANCESTOR")) {
    Value anc = row.field("anc").value();
    Value des = row.field("des").value();
    std::printf("  %-6s -> {", name_of(anc).c_str());
    bool first = true;
    for (const Value& d : des.elements()) {
      std::printf("%s%s", first ? "" : ", ", name_of(d).c_str());
      first = false;
    }
    std::printf("}\n");
  }

  // Query through the functions: who are nonna's grandchildren?
  auto grandchildren = Unwrap(db.Query(
      "? parent(par: (self G, name: \"nonna\"), chil: C), "
      "member(X, children(C)), person(self X, name: N)."),
      "query grandchildren");
  std::printf("Grandchildren of nonna:\n");
  for (const Bindings& b : grandchildren) {
    std::printf("  %s\n", b.at("N").ToString().c_str());
  }

  // The nullary JUNIOR function names a subset of PERSON's extension.
  auto juniors = Unwrap(db.Query(
      "? member(X, junior()), person(self X, name: N)."), "query juniors");
  std::printf("Juniors (age <= 18): %zu\n", juniors.size());

  std::printf("genealogy: OK\n");
  return 0;
}
