// University database: generalization hierarchies, multiple predicate
// occurrence styles, and the interesting-pair example.
//
// Reproduces the setting of paper Examples 3.1 (predicate occurrences,
// unification, isa) and 3.4 (controlling duplicate elimination with an
// association feeding a class of invented objects).
//
// Build & run:  ./build/examples/university

#include <cstdio>
#include <cstdlib>

#include "core/database.h"

using namespace logres;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  // Example 3.1's schema: students and professors are persons (isa),
  // schools have a professor dean (object sharing), ADVISES links them.
  Database db = Unwrap(Database::Create(R"(
    classes
      PERSON = (name: string, address: string);
      PROFESSOR = (PERSON, course: string);
      STUDENT = (PERSON, studschool: string);
      PROFESSOR isa PERSON;
      STUDENT isa PERSON;
      SCHOOL = (sname: string, kind: string, dean: PROFESSOR);
    associations
      ADVISES = (professor: PROFESSOR, student: STUDENT);
  )"), "create database");

  auto person = [&](const char* cls, const char* name, const char* extra_label,
                    const char* extra) {
    return Unwrap(db.InsertObject(cls, Value::MakeTuple(
        {{"name", Value::String(name)},
         {"address", Value::String("Milano")},
         {extra_label, Value::String(extra)}})), "insert person");
  };
  Oid ceri = person("PROFESSOR", "Ceri", "course", "Databases");
  Oid tanca = person("PROFESSOR", "Tanca", "course", "Logic");
  Oid smith = person("STUDENT", "Smith", "studschool", "Informatica");
  Oid jones = person("STUDENT", "Jones", "studschool", "Informatica");

  Check(db.InsertObject("SCHOOL", Value::MakeTuple(
      {{"sname", Value::String("Informatica")},
       {"kind", Value::String("engineering")},
       {"dean", Value::MakeOid(ceri)}})).status(), "insert school");

  auto advise = [&](Oid p, Oid s) {
    Check(db.InsertTuple("ADVISES", Value::MakeTuple(
        {{"professor", Value::MakeOid(p)},
         {"student", Value::MakeOid(s)}})), "insert advises");
  };
  advise(ceri, smith);
  advise(tanca, jones);

  // isa at work: every professor and student is queryable as a person.
  auto persons = Unwrap(db.Query("? person(self P, name: N)."),
                        "query persons");
  std::printf("All persons (via the PERSON superclass):\n");
  for (const Bindings& b : persons) {
    std::printf("  %s\n", b.at("N").ToString().c_str());
  }

  // Example 3.1 line 5: dereferencing through a class-typed component.
  auto dean = Unwrap(db.Query(
      "? school(sname: S, dean: (self D, name: N))."), "query dean");
  for (const Bindings& b : dean) {
    std::printf("Dean of %s is %s\n", b.at("S").ToString().c_str(),
                b.at("N").ToString().c_str());
  }

  // Example 3.4, adapted: "interesting pairs" — professors advising a
  // student at their own school... here simply name-sharing pairs. The
  // PAIR association deduplicates; the IP class then assigns one invented
  // oid per distinct pair, making the quantification explicit.
  auto update = db.ApplySource(R"(
    associations
      PAIR = (professor: PROFESSOR, student: STUDENT);
    classes
      IP = PAIR;
    rules
      pair(professor: P, student: S) <-
          advises(professor: P, student: S),
          professor(self P, course: "Databases").
      ip(self X, C) <- pair(C).
  )", ApplicationMode::kRIDV);
  Check(update.status(), "derive interesting pairs");

  std::printf("Interesting pairs: %zu (as objects: %zu)\n",
              db.edb().TuplesOf("PAIR").size(),
              db.edb().OidsOf("IP").size());

  // Deletion through a module (Section 4.2): students leaving.
  auto deletion = db.ApplySource(R"(
    rules
      not advises(professor: P, student: S) <-
          advises(professor: P, student: S),
          student(self S, name: "Jones").
  )", ApplicationMode::kRIDV);
  Check(deletion.status(), "retract Jones's advising");
  std::printf("ADVISES after retraction: %zu tuples\n",
              db.edb().TuplesOf("ADVISES").size());

  std::printf("university: OK\n");
  return 0;
}
