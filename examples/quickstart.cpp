// Quickstart: the paper's football database (Example 2.1).
//
// Shows the three layers of a LOGRES schema (domains, classes,
// associations), object creation with nested complex values (a team holds
// a *sequence* of base players and a *set* of substitutes), rule-based
// querying, and goal answering.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "core/database.h"

using namespace logres;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  // ---- Schema: paper Example 2.1 -------------------------------------------
  Database db = Unwrap(Database::Create(R"(
    domains
      NAME = string;
      ROLE = integer;
      DATE = string;
      SCORE = (home: integer, guest: integer);
    classes
      PLAYER = (NAME, roles: {ROLE});
      TEAM = (team_name: NAME, base_players: <PLAYER>,
              substitutes: {PLAYER});
    associations
      GAME = (h_team: TEAM, g_team: TEAM, DATE, SCORE);
  )"), "create database");

  std::printf("Schema:\n%s\n", db.schema().ToString().c_str());

  // ---- Populate -------------------------------------------------------------
  auto player = [&](const char* name, std::vector<int64_t> roles) {
    std::vector<Value> role_values;
    for (int64_t r : roles) role_values.push_back(Value::Int(r));
    return Unwrap(db.InsertObject("PLAYER", Value::MakeTuple(
        {{"name", Value::String(name)},
         {"roles", Value::MakeSet(std::move(role_values))}})),
        "insert player");
  };

  Oid p1 = player("Baresi", {5, 6});
  Oid p2 = player("Maldini", {3});
  Oid p3 = player("Van Basten", {9});
  Oid p4 = player("Zenga", {1});

  Oid milan = Unwrap(db.InsertObject("TEAM", Value::MakeTuple(
      {{"team_name", Value::String("Milan")},
       {"base_players", Value::MakeSequence({Value::MakeOid(p1),
                                             Value::MakeOid(p2),
                                             Value::MakeOid(p3)})},
       {"substitutes", Value::MakeSet({})}})), "insert Milan");
  Oid inter = Unwrap(db.InsertObject("TEAM", Value::MakeTuple(
      {{"team_name", Value::String("Inter")},
       {"base_players", Value::MakeSequence({Value::MakeOid(p4)})},
       {"substitutes", Value::MakeSet({Value::MakeOid(p3)})}})),
      "insert Inter");

  Check(db.InsertTuple("GAME", Value::MakeTuple(
      {{"h_team", Value::MakeOid(milan)},
       {"g_team", Value::MakeOid(inter)},
       {"date", Value::String("1990-05-05")},
       {"score", Value::MakeTuple({{"home", Value::Int(2)},
                                   {"guest", Value::Int(1)}})}})),
        "insert game");

  // ---- Rule-based derivation -------------------------------------------------
  // Derive a flat WINNER association with an RIDV update module: the
  // rule's side effects land in the extensional database.
  auto update = db.ApplySource(R"(
    associations
      WINNER = (team_name: string, date: string);
    rules
      winner(team_name: N, date: D) <-
          game(h_team: (team_name: N), g_team: G, date: D,
               score: (home: H, guest: A)), H > A.
      winner(team_name: N, date: D) <-
          game(h_team: H2, g_team: (team_name: N), date: D,
               score: (home: H, guest: A)), A > H.
  )", ApplicationMode::kRIDV);
  Check(update.status(), "derive winners");

  std::printf("Winners:\n");
  for (const Value& row : db.edb().TuplesOf("WINNER")) {
    std::printf("  %s\n", row.ToString().c_str());
  }

  // ---- Goal answering ---------------------------------------------------------
  auto answers = Unwrap(
      db.Query("? player(self P, name: N, roles: R), member(5, R)."),
      "query defenders");
  std::printf("Players with role 5:\n");
  for (const Bindings& b : answers) {
    std::printf("  %s (oid %s)\n", b.at("N").ToString().c_str(),
                b.at("P").ToString().c_str());
  }

  // Object sharing: Van Basten appears in Milan's base players and in
  // Inter's substitutes — one object, two containers (Section 2.1).
  auto shared = Unwrap(db.Query(
      "? team(self T, team_name: TN, substitutes: S), member(P, S), "
      "player(self P, name: N)."), "query shared players");
  std::printf("Substitutes by team (object sharing through oids):\n");
  for (const Bindings& b : shared) {
    std::printf("  %s appears as substitute of %s\n",
                b.at("N").ToString().c_str(),
                b.at("TN").ToString().c_str());
  }
  std::printf("quickstart: OK\n");
  return 0;
}
