// Case study: a software build-dependency knowledge base.
//
// The paper's conclusion plans "case studies" to evaluate LOGRES's
// expressiveness; software-engineering repositories are the classic
// deductive-OO workload (complex objects + recursive closure +
// integrity rules). This example models components with version objects,
// dependency edges, a recursive data function computing the transitive
// dependency set, a passive constraint forbidding dependency cycles, and
// staged updates through modules.
//
// Build & run:  ./build/examples/buildgraph

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/database.h"
#include "core/explain.h"

using namespace logres;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  Database db = Unwrap(Database::Create(R"(
    domains
      VERSION = (major: integer, minor: integer);
    classes
      COMPONENT = (cname: string, version: VERSION, loc: integer);
    associations
      DEPENDS = (client: COMPONENT, supplier: COMPONENT);
      CLOSURE = (root: COMPONENT, all: {COMPONENT});
    functions
      DEPS: COMPONENT -> {COMPONENT};

    -- Persistent closure rules: every module application recomputes the
    -- dependency sets in its instance, which keeps the acyclicity denial
    -- live (installing them RIDV would freeze a stale closure instead).
    module close options RADI
      rules
        member(X, deps(Y)) <- depends(client: Y, supplier: X).
        member(X, deps(Y)) <- depends(client: Y, supplier: Z),
                              member(X, T), T = deps(Z).
        closure(root: C, all: S) <- depends(client: C), S = deps(C).
    end

    module acyclic options RADI
      rules
        <- depends(client: C), member(C, T), T = deps(C).
    end
  )"), "create database");

  std::map<std::string, Oid> components;
  auto component = [&](const char* name, int64_t major, int64_t minor,
                       int64_t loc) {
    components[name] = Unwrap(db.InsertObject("COMPONENT",
        Value::MakeTuple(
            {{"cname", Value::String(name)},
             {"version", Value::MakeTuple({{"major", Value::Int(major)},
                                           {"minor", Value::Int(minor)}})},
             {"loc", Value::Int(loc)}})), "insert component");
  };
  component("app", 2, 1, 1200);
  component("core", 1, 4, 5400);
  component("net", 1, 0, 2100);
  component("util", 3, 2, 800);

  auto depends = [&](const char* client, const char* supplier) {
    Check(db.InsertTuple("DEPENDS", Value::MakeTuple(
        {{"client", Value::MakeOid(components[client])},
         {"supplier", Value::MakeOid(components[supplier])}})),
        "insert dependency");
  };
  depends("app", "core");
  depends("app", "net");
  depends("core", "util");
  depends("net", "util");

  // Install the closure rules and the acyclicity constraint as
  // persistent IDB rules: from now on every instance derives the closure
  // fresh and every update is checked against the denial.
  Check(db.ApplyByName("close").status(), "install closure rules");
  Check(db.ApplyByName("acyclic").status(), "install constraint");

  Instance instance = Unwrap(db.Materialize(), "materialize");
  auto name_of = [&](const Value& oid) {
    auto v = db.edb().OValue(oid.oid_value());
    return v.ok() ? v.value().field("cname").value().string_value()
                  : std::string("?");
  };
  std::printf("Transitive dependencies:\n");
  for (const Value& row : instance.TuplesOf("CLOSURE")) {
    std::printf("  %-5s -> {", name_of(row.field("root").value()).c_str());
    bool first = true;
    for (const Value& d : row.field("all").value().elements()) {
      std::printf("%s%s", first ? "" : ", ", name_of(d).c_str());
      first = false;
    }
    std::printf("}\n");
  }

  // Impact analysis through builtins: total LOC reachable from app.
  auto reach = Unwrap(db.Query(
      "? closure(root: (self R, cname: \"app\"), all: S), member(C, S), "
      "component(self C, loc: L)."), "impact query");
  int64_t total = 0;
  for (const Bindings& b : reach) total += b.at("L").int_value();
  std::printf("LOC reachable from app: %lld\n",
              static_cast<long long>(total));

  // A cyclic update is rejected by the installed passive constraint.
  auto cyclic = db.ApplySource(R"(
    rules
      depends(client: X, supplier: Y) <-
          component(self X, cname: "util"),
          component(self Y, cname: "app").
  )", ApplicationMode::kRIDV);
  std::printf("Introducing util -> app (a cycle): %s\n",
              cyclic.ok() ? "ACCEPTED (bug!)"
                          : cyclic.status().ToString().c_str());
  if (cyclic.ok()) return 1;

  // A benign update passes; the closure recomputes by itself because the
  // rules are persistent.
  component("log", 0, 9, 300);
  depends("util", "log");
  auto app_closure = Unwrap(db.Query(
      "? closure(root: (self R, cname: \"app\"), all: S), count(S, N)."),
      "closure size");
  std::printf("app now depends on %s components\n",
              app_closure.front().at("N").ToString().c_str());

  std::printf("buildgraph: OK\n");
  return 0;
}
