// Updates and modules: a walkthrough of the six application modes
// (paper Section 4), including Examples 4.1 and 4.2.
//
// Build & run:  ./build/examples/updates

#include <cstdio>
#include <cstdlib>

#include "core/database.h"

using namespace logres;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

void Dump(const Database& db, const char* assoc) {
  std::printf("  %s:", assoc);
  for (const Value& t : db.edb().TuplesOf(assoc)) {
    std::printf(" %s", t.ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Database db = Unwrap(Database::Create(R"(
    associations
      ITALIAN = (name: string);
      ROMAN = (name: string);
      P = (d1: integer, d2: integer);
  )"), "create database");

  Check(db.InsertTuple("ITALIAN",
      Value::MakeTuple({{"name", Value::String("Sara")}})), "seed");
  for (int i = 1; i <= 4; ++i) {
    Check(db.InsertTuple("P", Value::MakeTuple(
        {{"d1", Value::Int(i)}, {"d2", Value::Int(i)}})), "seed p");
  }

  // ---- Example 4.1: RIDV insertion with an active trigger rule ------------
  std::printf("Example 4.1 — RIDV insertion with trigger:\n");
  Check(db.ApplySource(R"(
    rules
      italian(name: "Luca").
      roman(name: "Ugo").
      italian(X) <- roman(X).
  )", ApplicationMode::kRIDV).status(), "apply 4.1");
  Dump(db, "ITALIAN");
  Dump(db, "ROMAN");

  // ---- Example 4.2: updating tuples with head deletion --------------------
  std::printf("Example 4.2 — add 1 to d2 where d1 is even:\n");
  Check(db.ApplySource(R"(
    associations
      MOD = (d1: integer, d2: integer);
    rules
      p(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                         not mod(d1: X, d2: Y).
      mod(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                           not mod(d1: X, d2: Y).
      not p(d1: X, d2: Y) <- p(d1: X, d2: Y), even(X),
                             mod(d1: X, d2: Z), Y != Z.
  )", ApplicationMode::kRIDV).status(), "apply 4.2");
  Dump(db, "P");

  // ---- RADI: persist a view rule; RIDI: query it ---------------------------
  std::printf("RADI persists a view; RIDI queries it:\n");
  Check(db.ApplySource(R"(
    associations
      COMPATRIOTS = (a: string, b: string);
    rules
      compatriots(a: X, b: Y) <- italian(name: X), italian(name: Y),
                                 X != Y.
  )", ApplicationMode::kRADI).status(), "apply RADI");
  auto query = Unwrap(db.ApplySource(R"(
    goal
      ? compatriots(a: "Sara", b: Y).
  )", ApplicationMode::kRIDI), "apply RIDI");
  std::printf("  Sara's compatriots: %zu\n", query.goal_answer->size());

  // ---- RDDI: retract the view rule -----------------------------------------
  Check(db.ApplySource(R"(
    rules
      compatriots(a: X, b: Y) <- italian(name: X), italian(name: Y),
                                 X != Y.
  )", ApplicationMode::kRDDI).status(), "apply RDDI");
  std::printf("RDDI removed the view; persistent rules now: %zu\n",
              db.rules().size());

  // ---- RADV / RDDV: rules plus data -----------------------------------------
  Check(db.ApplySource("rules roman(name: \"Livia\").",
                       ApplicationMode::kRADV).status(), "apply RADV");
  std::printf("After RADV:\n");
  Dump(db, "ROMAN");
  Check(db.ApplySource("rules roman(name: \"Livia\").",
                       ApplicationMode::kRDDV).status(), "apply RDDV");
  std::printf("After RDDV (rule and its fact retracted):\n");
  Dump(db, "ROMAN");

  // ---- Rejection: an inconsistent application leaves the state unchanged ----
  std::printf("A passive constraint rejects a bad update:\n");
  auto rejected = db.ApplySource(R"(
    rules
      roman(name: "Sara").
      <- roman(name: X), italian(name: X).
  )", ApplicationMode::kRIDV);
  std::printf("  status: %s\n", rejected.status().ToString().c_str());
  Dump(db, "ROMAN");

  std::printf("updates: OK\n");
  return 0;
}
