#!/usr/bin/env bash
# Reproduces everything EXPERIMENTS.md reports:
#   1. the full test suite (worked examples E1-E8 + semantic properties),
#   2. every benchmark suite (B1-B9),
# writing test_output.txt and bench_output.txt at the repository root.
#
# Usage:  scripts/run_experiments.sh [build-dir]

set -u
BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"

if [ ! -d "$BUILD_DIR" ]; then
  echo "== configuring =="
  cmake -B "$BUILD_DIR" -G Ninja || exit 1
fi

echo "== building =="
cmake --build "$BUILD_DIR" || exit 1

echo "== tests =="
ctest --test-dir "$BUILD_DIR" 2>&1 | tee "$ROOT/test_output.txt" | tail -3

echo "== examples =="
for example in quickstart university genealogy updates powerset buildgraph; do
  echo "-- $example"
  "$BUILD_DIR/examples/$example" >/dev/null || exit 1
done
"$BUILD_DIR/tools/logres_shell" examples/data/shell_demo.script \
    >/dev/null || exit 1

echo "== benchmarks =="
: > "$ROOT/bench_output.txt"
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "-- $(basename "$bench")"
  "$bench" 2>&1 | tee -a "$ROOT/bench_output.txt" | grep -c "^BM_"
done

echo "done: test_output.txt, bench_output.txt"
