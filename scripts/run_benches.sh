#!/usr/bin/env bash
# Runs the access-path benchmarks (bench_tc: transitive closure across the
# three engines; bench_engines: the B-workload suite) in Release mode and
# distills the google-benchmark JSON into BENCH_tc.json — one record per
# measurement: {workload, n, engine, strategy, threads, wall_ms, rows}.
# The *ChainThreads benchmarks add a worker-count sweep at fixed n; the
# smoke subset stays single-threaded (its name filter excludes them).
# bench_storage (B11 durability overhead, B12 recovery vs checkpoint
# fallback depth) is distilled separately into BENCH_storage.json.
#
# Usage:
#   scripts/run_benches.sh            # full sweep (minutes)
#   scripts/run_benches.sh --smoke    # small-n subset for CI (seconds)
#
# BUILD_DIR overrides the build tree (default: <repo>/build).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${BENCH_OUT:-$ROOT/BENCH_tc.json}"
STORAGE_OUT="${BENCH_STORAGE_OUT:-$ROOT/BENCH_storage.json}"

SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
  SMOKE=1
fi

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target bench_tc bench_engines bench_storage \
  -j"$(nproc)" >/dev/null

# A tiny min_time keeps the heavyweight closure points at ~1 iteration;
# google-benchmark still reports stable real_time per iteration.
COMMON_ARGS=(--benchmark_format=json --benchmark_min_time=0.001)
TC_FILTER=()
ENGINES_FILTER=()
if [ "$SMOKE" = 1 ]; then
  # The smoke subset also carries one selective-goal pair (goal-directed
  # vs whole-program at the same point) so CI watches the magic-set path.
  TC_FILTER=(--benchmark_filter='/(16|32)$|ChainGoalDirected/256/0/[01]$')
  ENGINES_FILTER=(--benchmark_filter='/(8|64)$')
fi

TC_JSON="$(mktemp)"
ENGINES_JSON="$(mktemp)"
STORAGE_JSON="$(mktemp)"
trap 'rm -f "$TC_JSON" "$ENGINES_JSON" "$STORAGE_JSON"' EXIT

"$BUILD/bench/bench_tc" "${COMMON_ARGS[@]}" "${TC_FILTER[@]}" \
  >"$TC_JSON"
"$BUILD/bench/bench_engines" "${COMMON_ARGS[@]}" "${ENGINES_FILTER[@]}" \
  >"$ENGINES_JSON"
"$BUILD/bench/bench_storage" "${COMMON_ARGS[@]}" >"$STORAGE_JSON"

python3 - "$TC_JSON" "$ENGINES_JSON" "$OUT" <<'EOF'
import json
import re
import sys

tc_path, engines_path, out_path = sys.argv[1:4]

records = []

def wall_ms(b):
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    return round(b["real_time"] * scale, 3)

# bench_tc names: BM_<Engine><Workload><Strategy>/<n>
tc_name = re.compile(
    r"BM_(Logres|Algres|Datalog)(Chain|Random|Forest|ScaleFree)"
    r"(SemiNaive|Naive)/(\d+)")
# Parallel sweep: BM_<Engine>ChainThreads/<n>/<threads> (always semi-naive).
tc_threads = re.compile(
    r"BM_(Logres|Algres|Datalog)ChainThreads/(\d+)/(\d+)")
# Step-application ablation: BM_Logres<Wl>StepPath[Noninf]/<n>/<snapshot>.
tc_steppath = re.compile(
    r"BM_Logres(Chain|Reach)StepPath(Noninf)?/(\d+)/([01])")
# Value-interner ablation: BM_<Engine><Wl>Interned[Noninf]/<n>/<intern>.
tc_interned = re.compile(
    r"BM_(Logres|Algres)(Chain|ScaleFree|Reach)Interned(Noninf)?"
    r"/(\d+)/([01])")
# Goal-directed point queries: BM_<Engine><Wl>GoalDirected/<n>/<sel>/<gd>.
# sel encodes the bound source's selectivity (0 = ~1 node, 1 = ~1%,
# 100 = the longest single-source cone); gd=0 is the whole-program
# baseline. rows is the answer count; the cone-vs-closure work shows in
# wall_ms.
tc_goal = re.compile(
    r"BM_(Logres|Algres|Datalog)(Chain|ScaleFree)GoalDirected"
    r"/(\d+)/(\d+)/([01])")

def workload_key(workload):
    return "scale_free" if workload == "ScaleFree" else workload.lower()

for b in json.load(open(tc_path))["benchmarks"]:
    m = tc_name.fullmatch(b["name"])
    if m:
        engine, workload, strategy, n = m.groups()
        records.append({
            "workload": workload_key(workload),
            "n": int(n),
            "engine": engine.lower(),
            "strategy": "semi_naive" if strategy == "SemiNaive" else "naive",
            "threads": 1,
            "wall_ms": wall_ms(b),
            "rows": int(b.get("tc_tuples", 0)),
        })
        continue
    m = tc_interned.fullmatch(b["name"])
    if m:
        engine, workload, noninf, n, intern = m.groups()
        strategy = "interned" if intern == "1" else "uninterned"
        if noninf:
            strategy += "_noninf"
        records.append({
            "workload": workload_key(workload),
            "n": int(n),
            "engine": engine.lower(),
            "strategy": strategy,
            "threads": 1,
            "wall_ms": wall_ms(b),
            "rows": int(b.get("tc_tuples", 0)),
        })
        continue
    m = tc_goal.fullmatch(b["name"])
    if m:
        engine, workload, n, sel, gd = m.groups()
        strategy = ("goal_directed_sel" if gd == "1" else
                    "goal_whole_sel") + sel
        records.append({
            "workload": workload_key(workload),
            "n": int(n),
            "engine": engine.lower(),
            "strategy": strategy,
            "threads": 1,
            "wall_ms": wall_ms(b),
            "rows": int(b.get("tc_tuples", 0)),
        })
        continue
    m = tc_steppath.fullmatch(b["name"])
    if m:
        workload, noninf, n, snapshot = m.groups()
        strategy = "snapshot_steps" if snapshot == "1" else "undo_steps"
        if noninf:
            strategy += "_noninf"
        records.append({
            "workload": workload.lower(),
            "n": int(n),
            "engine": "logres",
            "strategy": strategy,
            "threads": 1,
            "wall_ms": wall_ms(b),
            "rows": int(b.get("tc_tuples", 0)),
        })
        continue
    m = tc_threads.fullmatch(b["name"])
    if not m:
        continue
    engine, n, threads = m.groups()
    records.append({
        "workload": "chain",
        "n": int(n),
        "engine": engine.lower(),
        "strategy": "semi_naive",
        "threads": int(threads),
        "wall_ms": wall_ms(b),
        "rows": int(b.get("tc_tuples", 0)),
    })

# bench_engines names: BM_B<k>_<Variant>/<n>
eng_name = re.compile(r"BM_(B\d+)_(\w+)/(\d+)")
for b in json.load(open(engines_path))["benchmarks"]:
    m = eng_name.fullmatch(b["name"])
    if not m:
        continue
    workload, variant, n = m.groups()
    records.append({
        "workload": workload,
        "n": int(n),
        "engine": variant,
        "strategy": "",
        "threads": 1,
        "wall_ms": wall_ms(b),
        "rows": int(b.get("tc_tuples", b.get("facts", 0))),
    })

json.dump(records, open(out_path, "w"), indent=2)
print(f"wrote {len(records)} records to {out_path}")
EOF

python3 - "$STORAGE_JSON" "$STORAGE_OUT" <<'EOF'
import json
import re
import sys

storage_path, out_path = sys.argv[1:3]

def wall_ms(b):
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    return round(b["real_time"] * scale, 3)

# bench_storage names: BM_B<k>_<Variant>[/<arg>]. The arg is the journal
# length for B11_Checkpoint/B11_RecoverReplay and the checkpoint fallback
# depth (corrupt generations the recovery ladder must reject) for
# B12_RecoverFallback.
name = re.compile(r"BM_(B\d+)_(\w+?)(?:/(\d+))?")
records = []
for b in json.load(open(storage_path))["benchmarks"]:
    m = name.fullmatch(b["name"])
    if not m:
        continue
    workload, variant, arg = m.groups()
    records.append({
        "workload": workload,
        "variant": variant,
        "n": int(arg) if arg is not None else 0,
        "wall_ms": wall_ms(b),
    })

json.dump(records, open(out_path, "w"), indent=2)
print(f"wrote {len(records)} records to {out_path}")
EOF
