// logres_fsck — offline checker/repairer for journaled LOGRES stores.
//
//   logres_fsck <store-dir>            check only, machine-readable report
//   logres_fsck --repair <store-dir>   quarantine corrupt artifacts and
//                                      rewrite a verified checkpoint
//   logres_fsck --selftest             run the built-in corruption battery
//                                      against a throwaway store
//
// Exit codes:
//   0  store is clean (or --repair left it clean)
//   1  error-level findings remain (corrupt artifacts, broken chain)
//   2  store unrecoverable (no usable generation) or I/O failure
//   3  usage error
//
// The report (storage/fsck.h) is line-oriented `fsck <key>=<value>...`
// text on stdout, one line per artifact plus store-level findings and a
// summary — greppable from CI, stable enough to diff across runs.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/modes.h"
#include "storage/fsck.h"
#include "storage/journaled_database.h"
#include "util/status.h"

namespace logres {
namespace {

int Usage() {
  std::cerr << "usage: logres_fsck [--repair] <store-dir>\n"
               "       logres_fsck --selftest\n";
  return 3;
}

int RunFsck(const std::string& dir, bool repair) {
  FsckOptions options;
  options.repair = repair;
  auto report = FsckStore(dir, options);
  if (!report.ok()) {
    std::cerr << "logres_fsck: " << report.status().ToString() << "\n";
    return 2;
  }
  std::cout << report->ToText();
  if (!report->recoverable) return 2;
  if (report->errors > 0) return 1;
  return 0;
}

// --------------------------------------------------------------------------
// Selftest: a corruption battery against a throwaway store. Exercised by
// the tier-1 suite and CI so the checker itself is never shipped broken.

const char* kSchema = R"(
  classes PERSON = (name: string);
  associations
    SEED = (name: string);
    KNOWS = (a: string, b: string);
)";

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

#define SELFTEST_CHECK(cond, what)                                       \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "selftest FAILED: " << what << " (" << #cond << ")\n"; \
      return false;                                                      \
    }                                                                    \
  } while (0)

bool SelftestOnce(const std::string& dir, bool truncate_instead_of_flip) {
  StorageOptions options;
  options.checkpoint_interval = 0;

  std::string acked_dump;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, options);
    SELFTEST_CHECK(store.ok(), "create store");
    for (int i = 0; i < 3; ++i) {
      std::string module =
          "rules knows(a: \"ann" + std::to_string(i) + "\", b: \"bob\").";
      auto applied = store->ApplySource(module, ApplicationMode::kRIDI);
      SELFTEST_CHECK(applied.ok(), "apply");
      SELFTEST_CHECK(store->Checkpoint().ok(), "checkpoint");
    }
    auto applied = store->ApplySource(
        "rules knows(a: \"tail\", b: \"bob\").", ApplicationMode::kRIDI);
    SELFTEST_CHECK(applied.ok(), "tail apply");
    acked_dump = DumpDatabase(store->db());
  }

  // A clean store must fsck clean.
  auto clean = FsckStore(dir);
  SELFTEST_CHECK(clean.ok(), "fsck clean store");
  SELFTEST_CHECK(clean->errors == 0, "clean store reports errors");
  SELFTEST_CHECK(clean->recoverable, "clean store not recoverable");

  // Corrupt the live CHECKPOINT.
  std::string head = dir + "/CHECKPOINT";
  std::string bytes = ReadFileBytes(head);
  SELFTEST_CHECK(!bytes.empty(), "read CHECKPOINT");
  if (truncate_instead_of_flip) {
    bytes.resize(bytes.size() / 2);
  } else {
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  }
  WriteFileBytes(head, bytes);

  // Detection: the corruption must be an error-level finding.
  auto detected = FsckStore(dir);
  SELFTEST_CHECK(detected.ok(), "fsck corrupted store");
  SELFTEST_CHECK(detected->errors > 0, "corruption not detected");

  // Repair: quarantine + reseal must leave a clean store...
  FsckOptions repair;
  repair.repair = true;
  auto repaired = FsckStore(dir, repair);
  SELFTEST_CHECK(repaired.ok(), "fsck --repair");
  SELFTEST_CHECK(repaired->errors == 0, "repair left errors");
  SELFTEST_CHECK(!repaired->repairs.empty(), "repair took no action");

  // ...that reopens healthy onto the exact acked state.
  auto reopened = JournaledDatabase::Open(dir, options);
  SELFTEST_CHECK(reopened.ok(), "reopen after repair");
  SELFTEST_CHECK(!reopened->degraded(), "store degraded after repair");
  SELFTEST_CHECK(DumpDatabase(reopened->db()) == acked_dump,
                 "recovered state differs from acked state");
  return true;
}

int RunSelftest() {
  for (int variant = 0; variant < 2; ++variant) {
    std::string templ = "/tmp/logres_fsck_selftest_XXXXXX";
    char* dir = ::mkdtemp(templ.data());
    if (dir == nullptr) {
      std::cerr << "selftest: mkdtemp failed\n";
      return 1;
    }
    bool ok = SelftestOnce(dir, /*truncate_instead_of_flip=*/variant == 1);
    std::string cleanup = "rm -rf " + std::string(dir);
    (void)std::system(cleanup.c_str());
    if (!ok) return 1;
  }
  std::cout << "logres_fsck selftest: OK\n";
  return 0;
}

}  // namespace
}  // namespace logres

int main(int argc, char** argv) {
  bool repair = false;
  bool selftest = false;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--repair") {
      repair = true;
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return logres::Usage();
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return logres::Usage();
    }
  }
  if (selftest) {
    if (repair || !dir.empty()) return logres::Usage();
    return logres::RunSelftest();
  }
  if (dir.empty()) return logres::Usage();
  return logres::RunFsck(dir, repair);
}
