// Journal-replay chaos soak: records a store from a generated module
// trace, then replays it for N iterations under randomized FaultyIo
// schedules, scripted ENOSPC degradation, and fork-based crash
// failpoints, asserting after every iteration that recovery lands on a
// recorded or acknowledged state — never a hybrid — and that the
// degraded-mode contract (reads keep working, writes refused with
// kUnavailable, Reopen resumes once the fault clears) holds exactly
// when a fault schedule demands it.
//
// Four iteration shapes, chosen per-iteration from the seed:
//
//   randomized  open + apply under a FaultyIo randomized schedule
//               (errno injections, EINTR storms, short transfers, fsync
//               and rename failure, corrupt-on-read). A shadow Database
//               is kept in lockstep: committed applies must leave store
//               and shadow byte-identical; failed applies must leave
//               the state untouched (the oid generator excepted — it is
//               deliberately not rolled back, so the shadow's is
//               fast-forwarded). Degradation, whenever it happens, is
//               driven through the full recovery contract.
//   scripted    a persistent ENOSPC armed on Write after a seeded skip:
//               every apply before the fault commits, the apply that
//               hits it must degrade the store, and ClearInjected +
//               Reopen must resume with zero acknowledged commits lost.
//   crash       a forked child arms a crash failpoint (immediate _Exit
//               at the site) and applies a fresh module; the parent
//               asserts the child died at the site and the recovered
//               store equals exactly the pre- or post-application dump,
//               per-site (the fsync window legally allows either).
//   ckptcorrupt the live CHECKPOINT is corrupted on disk (a byte flip
//               or a truncation at a seeded offset). logres_fsck must
//               detect it as an error-level finding (100% detection),
//               Open must escalate to an older checkpoint generation
//               and chain-replay onto the exact acknowledged state,
//               and --repair must leave a store that fscks clean and
//               reopens onto the acked state.
//
// Every iteration ends with a clean (PosixIo) reopen that must succeed,
// come up healthy, land on an acknowledged state, and accept a new
// commit — followed by an fsck invariant: the surviving store must
// check out clean (error-level findings are tolerated only if --repair
// clears them). Failing iterations preserve the store directory under
// --artifacts and print a repro command line; determinism is seed-only
// (iteration i uses seed --seed + i), so a logged seed reproduces the
// exact fault schedule.
//
// Usage: soak_replay [--iterations N] [--seed S] [--record-seed S]
//                    [--record-applies N] [--fault-applies N]
//                    [--artifacts DIR] [--keep]

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/dump.h"
#include "storage/fsck.h"
#include "storage/journaled_database.h"
#include "util/failpoint.h"
#include "util/io.h"
#include "util/status.h"

namespace logres::soak {
namespace fs = std::filesystem;

struct Args {
  uint64_t iterations = 200;
  uint64_t seed = 1;
  uint64_t record_seed = 0;  // 0 = same as seed
  uint64_t record_applies = 10;
  uint64_t fault_applies = 6;
  std::string artifacts = "soak-artifacts";
  bool keep = false;
};

const char* kSchema = R"(
  classes PERSON = (name: string);
  associations
    SEED = (name: string);
    EDGE = (a: string, b: string);
)";

// ---------------------------------------------------------------------
// Trace-module generators. Names are partitioned so iteration-local
// modules never collide with record-phase ones: record/fault names draw
// from %1000, the degraded-write probe uses 9xxx, crash victims 1xxxxx.

std::string InsertModule(uint64_t a, uint64_t b) {
  if (a == b) b = a + 1;  // the denial below rejects self loops
  return "rules edge(a: \"n" + std::to_string(a) + "\", b: \"n" +
         std::to_string(b) + "\").";
}

// Consumes an oid: invention seeded from the module's own insert.
std::string InventModule(uint64_t i) {
  std::string n = std::to_string(i);
  return "rules\n  seed(name: \"s" + n +
         "\").\n  person(self P, name: N) <- seed(name: N).";
}

// Rejected by its own denial AFTER inventing an oid — exercises the
// generator gap that gen_before fast-forwarding must re-create.
std::string RejectedModule(uint64_t i) {
  std::string n = std::to_string(i);
  return "rules\n  seed(name: \"r" + n +
         "\").\n  person(self P, name: N) <- seed(name: N).\n  <- "
         "seed(name: \"r" + n + "\").";
}

std::string TraceModule(std::mt19937_64& rng, bool allow_reject) {
  uint64_t kind = rng() % 10;
  uint64_t a = rng() % 1000;
  uint64_t b = rng() % 1000;
  if (allow_reject && kind >= 8) return RejectedModule(a * 1000 + b);
  if (kind >= 5) return InventModule(a * 1000 + b);
  return InsertModule(a, b);
}

// ---------------------------------------------------------------------

// Drops the "generator N;" line: a failed apply rolls back the state
// triple but deliberately not the oid generator, and clean recovery
// only re-creates the gaps that precede a *committed* record — so state
// comparisons across failure boundaries must ignore the counter.
std::string StripGen(const std::string& dump) {
  size_t pos = dump.find("generator ");
  if (pos == std::string::npos) return dump;
  size_t end = dump.find('\n', pos);
  std::string out = dump.substr(0, pos);
  if (end != std::string::npos) out += dump.substr(end + 1);
  return out;
}

struct Ctx {
  Args args;
  fs::path root;
  fs::path record_dir;
  // Stripped dumps of every state the record phase acknowledged (the
  // "ladder" — any scan-time truncation must land on one of these).
  std::vector<std::string> ladder;
  std::string record_final_full;
};

// Tracks what a fresh scan of the store's disk may legally produce.
struct Track {
  std::string last_acked;          // stripped; a clean scan's floor
  std::set<std::string> may_land;  // last_acked + in-flight phantoms
  void Ack(std::string s) {
    last_acked = std::move(s);
    may_land = {last_acked};
  }
};

Status Record(Ctx* ctx) {
  ctx->record_dir = ctx->root / "record";
  StorageOptions opts;
  opts.checkpoint_interval = 3;  // exercise rotation during the record
  opts.rotated_journals_keep = 2;
  auto store =
      JournaledDatabase::Create(ctx->record_dir.string(), kSchema, opts);
  LOGRES_RETURN_NOT_OK(store.status());
  ctx->ladder.push_back(StripGen(DumpDatabase(store->db())));
  uint64_t seed =
      ctx->args.record_seed ? ctx->args.record_seed : ctx->args.seed;
  std::mt19937_64 rng(seed);
  for (uint64_t i = 0; i < ctx->args.record_applies; ++i) {
    std::string src = TraceModule(rng, /*allow_reject=*/true);
    auto r = store->ApplySource(src, ApplicationMode::kRIDV);
    if (r.ok()) {
      ctx->ladder.push_back(StripGen(DumpDatabase(store->db())));
    } else if (r.status().code() != StatusCode::kConstraintViolation) {
      return r.status().WithContext("record-phase apply " +
                                    std::to_string(i));
    }
  }
  ctx->record_final_full = DumpDatabase(store->db());
  return Status::OK();
}

// The clean epilogue every iteration must pass: reopen with PosixIo,
// come up healthy on a legal state, accept a new commit.
std::optional<std::string> CleanVerify(const fs::path& work,
                                       const std::set<std::string>& legal,
                                       uint64_t iter) {
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  auto store = JournaledDatabase::Open(work.string(), opts);
  if (!store.ok()) {
    return "clean reopen failed: " + store.status().ToString();
  }
  if (store->degraded()) {
    return "clean reopen came up degraded: " +
           store->degraded_reason().ToString();
  }
  std::string got = StripGen(DumpDatabase(store->db()));
  if (!legal.count(got)) {
    return "clean recovery produced a state that is neither a recorded "
           "nor an acknowledged one (hybrid or lost commit)";
  }
  auto r = store->ApplySource(InsertModule(200000 + iter, 200001 + iter),
                              ApplicationMode::kRIDV);
  if (!r.ok()) {
    return "recovered store refused a new commit: " + r.status().ToString();
  }
  return std::nullopt;
}

// Shared degraded-mode contract: reads work, writes are refused with
// kUnavailable, ClearAll + Reopen resumes on an acknowledged (or
// legally in-flight) state. On success the shadow is resynced.
std::optional<std::string> DriveRecovery(JournaledDatabase* store,
                                         FaultyIo* fio, Track* track,
                                         Database* shadow, uint64_t probe) {
  auto refused = store->ApplySource(InsertModule(9000 + probe, 9001 + probe),
                                    ApplicationMode::kRIDV);
  if (refused.ok()) return std::string("degraded store accepted a write");
  if (refused.status().code() != StatusCode::kUnavailable) {
    return "degraded write refused with the wrong code: " +
           refused.status().ToString();
  }
  if (store->degraded_reason().ok()) {
    return std::string("degraded store carries no root cause");
  }
  // Reads must keep working against the in-memory state.
  (void)DumpDatabase(store->db());
  fio->ClearAll();
  Status st = store->Reopen();
  if (!st.ok()) {
    return "Reopen after clearing faults failed: " + st.ToString();
  }
  if (store->degraded()) {
    return std::string("store still degraded after a successful Reopen");
  }
  std::string got = StripGen(DumpDatabase(store->db()));
  if (!track->may_land.count(got)) {
    return std::string(
        "Reopen recovered a state that is neither the last acknowledged "
        "one nor a legal in-flight one");
  }
  track->Ack(got);
  *shadow = store->db();
  return std::nullopt;
}

// One committed-or-failed apply driven through the store with the
// shadow in lockstep. Returns an error message on contract violation.
std::optional<std::string> LockstepApply(JournaledDatabase* store,
                                         Database* shadow, Track* track,
                                         const std::string& src) {
  auto r = store->ApplySource(src, ApplicationMode::kRIDV);
  if (r.ok()) {
    auto rs = shadow->ApplySource(src, ApplicationMode::kRIDV);
    if (!rs.ok()) {
      return "shadow rejected a module the store committed: " +
             rs.status().ToString();
    }
    if (DumpDatabase(store->db()) != DumpDatabase(*shadow)) {
      return std::string("store and shadow diverged after a commit");
    }
    track->Ack(StripGen(DumpDatabase(store->db())));
    return std::nullopt;
  }
  // The evaluation succeeded (the module is valid); the journal refused
  // it. A fully-written frame whose fsync or rollback failed may still
  // be replayed by a later scan — record it as a legal landing spot.
  Database phantom = *shadow;
  if (phantom.ApplySource(src, ApplicationMode::kRIDV).ok()) {
    track->may_land.insert(StripGen(DumpDatabase(phantom)));
  }
  shadow->oid_generator()->FastForward(store->db().oids_issued());
  if (StripGen(DumpDatabase(store->db())) !=
      StripGen(DumpDatabase(*shadow))) {
    return std::string("failed apply did not leave the state unchanged");
  }
  return std::nullopt;
}

// Iteration shape 1: randomized FaultyIo schedule.
std::optional<std::string> RunRandomized(const Ctx& ctx,
                                         const fs::path& work,
                                         std::mt19937_64& rng) {
  FaultyIo::Config cfg;
  cfg.seed = rng();
  auto p = [&rng](double max) {
    return static_cast<double>(rng() % 1000) / 1000.0 * max;
  };
  cfg.p_write_error = p(0.08);
  cfg.p_short_write = p(0.20);
  cfg.p_eintr = p(0.20);
  cfg.p_fsync_error = p(0.05);
  cfg.p_read_error = p(0.03);
  cfg.p_short_read = p(0.15);
  cfg.p_read_corrupt = p(0.03);
  cfg.p_rename_error = p(0.05);
  cfg.p_open_error = p(0.03);
  FaultyIo fio(cfg);
  StorageOptions opts;
  opts.checkpoint_interval = 2;  // rotation under fire
  opts.rotated_journals_keep = 2;
  opts.io = &fio;

  std::set<std::string> legal(ctx.ladder.begin(), ctx.ladder.end());
  {
    auto store = JournaledDatabase::Open(work.string(), opts);
    if (!store.ok()) {
      // A refused open is legal under faults; the disk must still
      // recover cleanly to a recorded state (scan-time truncation only
      // ever lands on a ladder rung).
      return CleanVerify(work, legal, 0);
    }
    std::string baseline = StripGen(DumpDatabase(store->db()));
    if (!legal.count(baseline)) {
      // v2 checkpoints carry a whole-file CRC, so a corrupt read now
      // surfaces as generation fallback or a refused open rather than
      // a silently corrupted payload — this branch is a safety net for
      // anything that still slips through. The bytes on disk were only
      // read, so a clean reopen must still succeed.
      return CleanVerify(work, legal, 0);
    }
    Track track;
    track.Ack(baseline);
    Database shadow = store->db();
    for (uint64_t j = 0; j < ctx.args.fault_applies; ++j) {
      std::string src = TraceModule(rng, /*allow_reject=*/false);
      if (auto err = LockstepApply(&*store, &shadow, &track, src)) {
        return err;
      }
      if (store->degraded()) {
        if (auto err = DriveRecovery(&*store, &fio, &track, &shadow, j)) {
          return err;
        }
      }
    }
    legal.insert(track.may_land.begin(), track.may_land.end());
  }
  return CleanVerify(work, legal, 0);
}

// Iteration shape 2: scripted persistent ENOSPC — degradation exactly
// when demanded, resume with nothing lost.
std::optional<std::string> RunScripted(const Ctx& ctx, const fs::path& work,
                                       std::mt19937_64& rng) {
  FaultyIo::Config cfg;  // all probabilities zero: scripted faults only
  cfg.seed = rng();
  FaultyIo fio(cfg);
  size_t skip = rng() % 6;
  fio.InjectErrno(FaultyIo::Op::kWrite, ENOSPC, skip, SIZE_MAX);
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.io = &fio;

  std::set<std::string> legal(ctx.ladder.begin(), ctx.ladder.end());
  Track track;
  {
    auto store = JournaledDatabase::Open(work.string(), opts);
    if (!store.ok()) {
      // Open performs no writes; the armed fault cannot have fired.
      return "scripted open failed: " + store.status().ToString();
    }
    track.Ack(StripGen(DumpDatabase(store->db())));
    Database shadow = store->db();
    bool degraded_seen = false;
    uint64_t applies = ctx.args.fault_applies + skip + 2;
    for (uint64_t j = 0; j < applies; ++j) {
      std::string src = TraceModule(rng, /*allow_reject=*/false);
      auto r = store->ApplySource(src, ApplicationMode::kRIDV);
      if (!degraded_seen && !r.ok()) {
        // The first refusal must BE the degradation event — a
        // persistent ENOSPC never fails an apply "transiently".
        if (!store->degraded()) {
          return "apply failed under persistent ENOSPC without entering "
                 "degraded mode: " + r.status().ToString();
        }
        if (fio.faults_injected() == 0) {
          return std::string("store degraded before any fault fired");
        }
        degraded_seen = true;
        Database phantom = shadow;
        if (phantom.ApplySource(src, ApplicationMode::kRIDV).ok()) {
          track.may_land.insert(StripGen(DumpDatabase(phantom)));
        }
        shadow.oid_generator()->FastForward(store->db().oids_issued());
        if (auto err = DriveRecovery(&*store, &fio, &track, &shadow, j)) {
          return err;
        }
        continue;
      }
      if (!r.ok()) {
        return "post-recovery apply failed: " + r.status().ToString();
      }
      auto rs = shadow.ApplySource(src, ApplicationMode::kRIDV);
      if (!rs.ok() || DumpDatabase(store->db()) != DumpDatabase(shadow)) {
        return std::string("store and shadow diverged (scripted)");
      }
      track.Ack(StripGen(DumpDatabase(store->db())));
    }
    if (!degraded_seen) {
      return std::string(
          "scripted persistent ENOSPC never degraded the store");
    }
  }
  legal.insert(track.may_land.begin(), track.may_land.end());
  return CleanVerify(work, legal, 1);
}

// Iteration shape 3: fork a victim, kill it at a failpoint site,
// assert recovery is byte-identical to pre or post — never a hybrid.
struct CrashSite {
  const char* site;
  bool with_checkpoint;
  int expect;  // 0 = pre, 1 = post, 2 = either
};
constexpr CrashSite kCrashSites[] = {
    {"journal.append", false, 0},
    {"journal.fsync", false, 2},
    {"checkpoint.write", true, 1},
    {"checkpoint.rename", true, 1},
    {"checkpoint.truncate", true, 1},
};

std::optional<std::string> RunCrash(const Ctx& ctx, const fs::path& work,
                                    std::mt19937_64& rng, uint64_t iter) {
  const CrashSite& c =
      kCrashSites[rng() % (sizeof(kCrashSites) / sizeof(kCrashSites[0]))];
  // A module no other phase ever applies, so pre != post is guaranteed.
  std::string src = InsertModule(100000 + iter * 2, 100001 + iter * 2);

  std::string pre = StripGen(ctx.record_final_full);
  std::string post;
  {
    auto db = LoadDatabase(ctx.record_final_full);
    if (!db.ok()) return "offline reload failed: " + db.status().ToString();
    auto r = db->ApplySource(src, ApplicationMode::kRIDV);
    if (!r.ok()) {
      return "offline post-state apply failed: " + r.status().ToString();
    }
    post = StripGen(DumpDatabase(*db));
  }

  pid_t pid = ::fork();
  if (pid < 0) return std::string("fork failed: ") + std::strerror(errno);
  if (pid == 0) {
    // Victim: open, arm, die at the site (_Exit — no flushes, no
    // destructors; the closest user-space stand-in for a crash).
    StorageOptions vopts;
    vopts.checkpoint_interval = 0;
    auto store = JournaledDatabase::Open(work.string(), vopts);
    if (!store.ok()) ::_Exit(11);
    failpoints::ArmCrash(c.site);
    auto r = store->ApplySource(src, ApplicationMode::kRIDV);
    if (c.with_checkpoint) {
      if (!r.ok()) ::_Exit(12);
      (void)store->Checkpoint();
    }
    ::_Exit(10);  // reached only if the armed site was never hit
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    return std::string("waitpid failed");
  }
  if (!WIFEXITED(wstatus) ||
      WEXITSTATUS(wstatus) != failpoints::kCrashExitCode) {
    return "victim did not die at site " + std::string(c.site) +
           " (exit status " +
           std::to_string(WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1) +
           ")";
  }

  StorageOptions opts;
  opts.checkpoint_interval = 0;
  auto reopened = JournaledDatabase::Open(work.string(), opts);
  if (!reopened.ok()) {
    return "reopen after crash at " + std::string(c.site) +
           " failed: " + reopened.status().ToString();
  }
  std::string got = StripGen(DumpDatabase(reopened->db()));
  bool ok = c.expect == 0   ? got == pre
            : c.expect == 1 ? got == post
                            : (got == pre || got == post);
  if (!ok) {
    return "crash at " + std::string(c.site) +
           " recovered to neither pre nor post";
  }
  auto r = reopened->ApplySource(InsertModule(300000 + iter, 300001 + iter),
                                 ApplicationMode::kRIDV);
  if (!r.ok()) {
    return "store recovered from crash at " + std::string(c.site) +
           " refused a new commit: " + r.status().ToString();
  }
  return std::nullopt;
}

// Iteration shape 4: corrupt the live CHECKPOINT on disk, then demand
// the whole escalation ladder — fsck detection, generation fallback
// with chained replay onto the acked state, repair back to clean.

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::optional<std::string> RunCkptCorrupt(const Ctx& ctx,
                                          const fs::path& work,
                                          std::mt19937_64& rng,
                                          uint64_t iter) {
  fs::path head = work / "CHECKPOINT";
  std::string bytes = ReadFileBytes(head.string());
  if (bytes.empty()) {
    return std::string("CHECKPOINT missing from the record copy");
  }
  if (rng() % 2 == 0) {
    size_t off = rng() % bytes.size();
    bytes[off] = static_cast<char>(bytes[off] ^ 0xFF);
  } else {
    bytes.resize(rng() % bytes.size());
  }
  WriteFileBytes(head.string(), bytes);

  // Detection: every injected corruption must surface as an
  // error-level finding, and an older generation must keep the store
  // recoverable.
  auto detected = FsckStore(work.string());
  if (!detected.ok()) {
    return "fsck of the corrupted store failed: " +
           detected.status().ToString();
  }
  if (detected->errors == 0) {
    return std::string("fsck missed an injected checkpoint corruption");
  }
  if (!detected->recoverable) {
    return "fsck found no usable generation under a corrupt HEAD:\n" +
           detected->ToText();
  }

  // Recovery: Open must fall back and land exactly on the last
  // acknowledged record-phase state, then accept a new commit.
  std::string acked;
  {
    StorageOptions opts;
    opts.checkpoint_interval = 0;
    auto store = JournaledDatabase::Open(work.string(), opts);
    if (!store.ok()) {
      return "open under a corrupt CHECKPOINT failed: " +
             store.status().ToString();
    }
    if (store->degraded()) {
      return "open under a corrupt CHECKPOINT came up degraded: " +
             store->degraded_reason().ToString();
    }
    if (store->status().recovered_fallback_depth == 0) {
      return std::string(
          "open under a corrupt CHECKPOINT did not report a fallback");
    }
    if (StripGen(DumpDatabase(store->db())) != ctx.ladder.back()) {
      return std::string(
          "fallback recovery missed the last acknowledged state");
    }
    auto r = store->ApplySource(InsertModule(400000 + iter, 400001 + iter),
                                ApplicationMode::kRIDV);
    if (!r.ok()) {
      return "fallback-recovered store refused a new commit: " +
             r.status().ToString();
    }
    acked = StripGen(DumpDatabase(store->db()));
  }

  // Repair: quarantine + reseal must leave a store that fscks clean.
  FsckOptions repair_opts;
  repair_opts.repair = true;
  auto repaired = FsckStore(work.string(), repair_opts);
  if (!repaired.ok()) {
    return "fsck --repair failed: " + repaired.status().ToString();
  }
  if (repaired->errors > 0) {
    return "fsck --repair left error-level findings:\n" + repaired->ToText();
  }
  if (repaired->repairs.empty()) {
    return std::string("fsck --repair took no action on a corrupt store");
  }
  return CleanVerify(work, {acked}, iter);
}

// Post-iteration invariant: whatever the scenario did, the surviving
// store must check out under fsck. Error-level findings are tolerated
// only if --repair clears them (a clean reopen already truncated torn
// tails and removed tmp debris, so a healthy iteration fscks clean).
std::optional<std::string> FsckVerify(const fs::path& work) {
  auto report = FsckStore(work.string());
  if (!report.ok()) {
    return "post-iteration fsck failed: " + report.status().ToString();
  }
  if (!report->recoverable) {
    return "post-iteration fsck found the store unrecoverable:\n" +
           report->ToText();
  }
  if (report->errors == 0) return std::nullopt;
  FsckOptions repair_opts;
  repair_opts.repair = true;
  auto repaired = FsckStore(work.string(), repair_opts);
  if (!repaired.ok()) {
    return "post-iteration fsck --repair failed: " +
           repaired.status().ToString();
  }
  if (repaired->errors > 0) {
    return "post-iteration fsck --repair could not clean the store:\n" +
           repaired->ToText();
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------

void Preserve(const Ctx& ctx, const fs::path& work, uint64_t iter) {
  std::error_code ec;
  fs::create_directories(ctx.args.artifacts, ec);
  fs::copy(work, fs::path(ctx.args.artifacts) / ("iter" + std::to_string(iter)),
           fs::copy_options::recursive | fs::copy_options::overwrite_existing,
           ec);
  if (ec) {
    std::fprintf(stderr, "  (could not preserve artifacts: %s)\n",
                 ec.message().c_str());
  }
}

int Run(const Args& args) {
  Ctx ctx;
  ctx.args = args;
  std::string templ = "/tmp/logres_soak.XXXXXX";
  if (::mkdtemp(templ.data()) == nullptr) {
    std::perror("mkdtemp");
    return 2;
  }
  ctx.root = templ;

  Status rec = Record(&ctx);
  if (!rec.ok()) {
    std::fprintf(stderr, "record phase failed: %s\n",
                 rec.ToString().c_str());
    return 2;
  }
  uint64_t record_seed = args.record_seed ? args.record_seed : args.seed;
  std::printf("soak_replay: seed=%" PRIu64 " record-seed=%" PRIu64
              " iterations=%" PRIu64 " (ladder of %zu recorded states)\n",
              args.seed, record_seed, args.iterations, ctx.ladder.size());

  const char* names[] = {"randomized", "scripted", "crash", "ckptcorrupt"};
  uint64_t failures = 0;
  for (uint64_t i = 0; i < args.iterations; ++i) {
    uint64_t seed_i = args.seed + i;
    std::mt19937_64 rng(seed_i * 0x9E3779B97F4A7C15ULL +
                        0xD1B54A32D192ED03ULL);
    int scenario = static_cast<int>(rng() % 4);
    fs::path work = ctx.root / ("iter" + std::to_string(i));
    std::error_code ec;
    fs::copy(ctx.record_dir, work, fs::copy_options::recursive, ec);
    if (ec) {
      std::fprintf(stderr, "iter %" PRIu64 ": copy failed: %s\n", i,
                    ec.message().c_str());
      return 2;
    }
    std::optional<std::string> err;
    switch (scenario) {
      case 0: err = RunRandomized(ctx, work, rng); break;
      case 1: err = RunScripted(ctx, work, rng); break;
      case 2: err = RunCrash(ctx, work, rng, i); break;
      default: err = RunCkptCorrupt(ctx, work, rng, i); break;
    }
    if (!err) err = FsckVerify(work);
    if (err) {
      ++failures;
      std::fprintf(stderr,
                   "SOAK FAILURE iter=%" PRIu64 " scenario=%s: %s\n"
                   "  repro: soak_replay --iterations 1 --seed %" PRIu64
                   " --record-seed %" PRIu64 "\n",
                   i, names[scenario], err->c_str(), seed_i, record_seed);
      Preserve(ctx, work, i);
    }
    fs::remove_all(work, ec);
    if ((i + 1) % 50 == 0) {
      std::printf("  %" PRIu64 "/%" PRIu64 " iterations, %" PRIu64
                  " failure(s)\n",
                  i + 1, args.iterations, failures);
      std::fflush(stdout);
    }
  }
  if (!args.keep) {
    std::error_code ec;
    fs::remove_all(ctx.root, ec);
  } else {
    std::printf("  (kept %s)\n", ctx.root.c_str());
  }
  if (failures) {
    std::fprintf(stderr,
                 "soak_replay: %" PRIu64 " of %" PRIu64
                 " iterations FAILED (seed=%" PRIu64
                 "; failing stores under %s/)\n",
                 failures, args.iterations, args.seed,
                 args.artifacts.c_str());
    return 1;
  }
  std::printf("soak_replay: all %" PRIu64 " iterations passed (seed=%" PRIu64
              ")\n",
              args.iterations, args.seed);
  return 0;
}

}  // namespace logres::soak

int main(int argc, char** argv) {
  logres::soak::Args args;
  auto need = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--iterations") {
      args.iterations = std::strtoull(need(i++), nullptr, 10);
    } else if (a == "--seed") {
      args.seed = std::strtoull(need(i++), nullptr, 10);
    } else if (a == "--record-seed") {
      args.record_seed = std::strtoull(need(i++), nullptr, 10);
    } else if (a == "--record-applies") {
      args.record_applies = std::strtoull(need(i++), nullptr, 10);
    } else if (a == "--fault-applies") {
      args.fault_applies = std::strtoull(need(i++), nullptr, 10);
    } else if (a == "--artifacts") {
      args.artifacts = need(i++);
    } else if (a == "--keep") {
      args.keep = true;
    } else {
      std::fprintf(stderr,
                   "usage: soak_replay [--iterations N] [--seed S] "
                   "[--record-seed S] [--record-applies N] "
                   "[--fault-applies N] [--artifacts DIR] [--keep]\n");
      return 2;
    }
  }
  return logres::soak::Run(args);
}
