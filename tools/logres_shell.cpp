// logres_shell — an interactive driver for LOGRES databases.
//
// The paper's Section 5 envisions "a complete programming environment for
// LOGRES, with tools supporting the design, debugging, and monitoring of
// LOGRES databases and programs"; this shell is that environment's
// command line. It reads commands from stdin (or a script file given as
// argv[1]) and operates on one database.
//
// Commands:
//   load <file>            create the database from a source file
//   open <file>            restore a state saved with `save`
//   save <file>            dump the current state
//   apply <MODE> <<< ...   apply inline module text under a mode; the
//                          module text follows until a line with only `;;`
//   run <name>             apply a registered module by its name
//   ? <goal>               answer a goal against the materialized instance
//   schema | rules | edb   show the current state components
//   explain                show the analyzed program (strata, schedules)
//   dot                    print the predicate dependency graph (DOT)
//   quit
//
// Example session:
//   load examples/data/family.logres
//   apply RIDV
//   rules person(name: "zoe").
//   ;;
//   ? person(name: N).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/database.h"
#include "core/dump.h"
#include "core/explain.h"
#include "util/string_util.h"

namespace logres {
namespace {

std::string ReadFile(const std::string& path, Status* status) {
  std::ifstream in(path);
  if (!in) {
    *status = Status::NotFound("cannot open file: " + path);
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *status = Status::OK();
  return buffer.str();
}

class Shell {
 public:
  int Run(std::istream& in, bool interactive) {
    std::string line;
    if (interactive) std::printf("logres> ");
    while (std::getline(in, line)) {
      if (!Dispatch(line, in)) break;
      if (interactive) std::printf("logres> ");
    }
    return 0;
  }

 private:
  // Returns false to quit.
  bool Dispatch(const std::string& line, std::istream& in) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty() || StartsWith(command, "--")) return true;

    if (command == "quit" || command == "exit") return false;

    if (command == "load") {
      std::string path;
      words >> path;
      Status read_status;
      std::string text = ReadFile(path, &read_status);
      if (!read_status.ok()) {
        Report(read_status);
        return true;
      }
      auto db = Database::Create(text);
      if (!db.ok()) {
        Report(db.status());
        return true;
      }
      db_ = std::move(db).value();
      has_db_ = true;
      std::printf("loaded %s (%zu modules registered)\n", path.c_str(),
                  db_.registered_modules().size());
      return true;
    }
    if (command == "open") {
      std::string path;
      words >> path;
      Status read_status;
      std::string text = ReadFile(path, &read_status);
      if (!read_status.ok()) {
        Report(read_status);
        return true;
      }
      auto db = LoadDatabase(text);
      if (!db.ok()) {
        Report(db.status());
        return true;
      }
      db_ = std::move(db).value();
      has_db_ = true;
      std::printf("opened %s (%zu facts)\n", path.c_str(),
                  db_.edb().TotalFacts());
      return true;
    }
    if (!has_db_ && command != "load" && command != "open") {
      std::printf("no database loaded — use `load <file>` first\n");
      return true;
    }
    if (command == "save") {
      std::string path;
      words >> path;
      std::ofstream out(path);
      if (!out) {
        std::printf("cannot write %s\n", path.c_str());
        return true;
      }
      out << DumpDatabase(db_);
      std::printf("saved %s\n", path.c_str());
      return true;
    }
    if (command == "apply") {
      std::string mode_text;
      words >> mode_text;
      auto mode = ParseApplicationMode(ToUpper(mode_text));
      if (!mode.has_value()) {
        std::printf("unknown mode '%s' (RIDI/RADI/RDDI/RIDV/RADV/RDDV)\n",
                    mode_text.c_str());
        return true;
      }
      std::string body, module_line;
      while (std::getline(in, module_line) && module_line != ";;") {
        body += module_line;
        body += '\n';
      }
      Instance before = db_.edb();
      auto result = db_.ApplySource(body, *mode);
      if (!result.ok()) {
        Report(result.status());
        return true;
      }
      std::printf("applied (%s)\n",
                  ExplainStats(result->stats).c_str());
      InstanceDiff diff = DiffInstances(before, db_.edb());
      if (!diff.empty()) std::printf("%s", diff.ToString().c_str());
      if (result->goal_answer.has_value()) {
        PrintAnswer(*result->goal_answer);
      }
      return true;
    }
    if (command == "run") {
      std::string name;
      words >> name;
      Instance before = db_.edb();
      auto result = db_.ApplyByName(name);
      if (!result.ok()) {
        Report(result.status());
        return true;
      }
      std::printf("applied module '%s'\n", name.c_str());
      InstanceDiff diff = DiffInstances(before, db_.edb());
      if (!diff.empty()) std::printf("%s", diff.ToString().c_str());
      if (result->goal_answer.has_value()) {
        PrintAnswer(*result->goal_answer);
      }
      return true;
    }
    if (command == "?") {
      std::string goal = line.substr(line.find('?'));
      auto answer = db_.Query(goal);
      if (!answer.ok()) {
        Report(answer.status());
        return true;
      }
      PrintAnswer(*answer);
      return true;
    }
    if (command == "schema") {
      std::printf("%s", SchemaToSource(db_.schema()).c_str());
      return true;
    }
    if (command == "rules") {
      for (const Rule& rule : db_.rules()) {
        std::printf("  %s\n", rule.ToString().c_str());
      }
      std::printf("(%zu persistent rules)\n", db_.rules().size());
      return true;
    }
    if (command == "edb") {
      std::printf("%s", db_.edb().ToString().c_str());
      return true;
    }
    if (command == "explain" || command == "dot") {
      auto program = Typecheck(db_.schema(), db_.functions(), db_.rules());
      if (!program.ok()) {
        Report(program.status());
        return true;
      }
      if (command == "explain") {
        std::printf("%s", ExplainProgram(*program).c_str());
      } else {
        std::printf("%s", DependencyGraphDot(db_.schema(),
                                             *program).c_str());
      }
      return true;
    }
    std::printf("unknown command '%s'\n", command.c_str());
    return true;
  }

  void PrintAnswer(const std::vector<Bindings>& answer) {
    for (const Bindings& binding : answer) {
      std::string row;
      for (const auto& [var, value] : binding) {
        row += StrCat(var, " = ", value.ToString(), "  ");
      }
      std::printf("  %s\n", row.c_str());
    }
    std::printf("(%zu answers)\n", answer.size());
  }

  void Report(const Status& status) {
    std::printf("error: %s\n", status.ToString().c_str());
  }

  Database db_;
  bool has_db_ = false;
};

}  // namespace
}  // namespace logres

int main(int argc, char** argv) {
  logres::Shell shell;
  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
    return shell.Run(script, /*interactive=*/false);
  }
  return shell.Run(std::cin, /*interactive=*/true);
}
