// logres_shell — an interactive driver for LOGRES databases.
//
// The paper's Section 5 envisions "a complete programming environment for
// LOGRES, with tools supporting the design, debugging, and monitoring of
// LOGRES databases and programs"; this shell is that environment's
// command line. It reads commands from stdin (or a script file given as
// argv[1]) and operates on one database.
//
// Commands:
//   load <file>            create the database from a source file
//   open <file>            restore a state saved with `save`
//   open -j <dir>          open a journaled store (checkpoint + WAL),
//                          running crash recovery; later `apply`s are
//                          durable (journaled + fsync'd before they are
//                          acknowledged)
//   save <file>            dump the current state
//   save -j <dir>          initialize a journaled store at <dir> from the
//                          current state and switch to it
//   checkpoint             (journaled) write a checkpoint, rotate the journal
//   journal status         (journaled) seqs, journal size, recovery info,
//                          checkpoint generations (with CRC verdicts and
//                          chain coverage), last scrub, and health
//                          (DEGRADED after a persistent I/O fault: reads
//                          keep working, writes are refused)
//   scrub                  (journaled) online integrity check: re-reads
//                          and re-verifies every checkpoint generation
//                          and journal segment without mutating anything
//   reopen                 (journaled) recovery-and-resume after DEGRADED:
//                          re-runs recovery from disk and resumes if no
//                          acknowledged commit is missing
//   apply <MODE> <<< ...   apply inline module text under a mode; the
//                          module text follows until a line with only `;;`
//   run <name>             apply a registered module by its name (durable
//                          in journaled mode: the journal carries the
//                          module's own source)
//   ? <goal>               answer a goal (goal-directed by default: only
//                          the goal's demanded cone is evaluated)
//   schema | rules | edb   show the current state components
//   explain                show the analyzed program (strata, schedules)
//   explain ? <goal>       show the goal-directed rewrite plan (or why
//                          the rewrite falls back to whole-program)
//   dot                    print the predicate dependency graph (DOT)
//   set                    show the evaluation limits
//   set <limit> <n>        set timeout_ms / max_steps / max_facts /
//                          max_bytes / threads (0 = one per hardware
//                          thread) / intern_values (0 = plain-allocation
//                          reference path) (0 = unlimited) for later
//                          apply/run/? commands
//   set goal_directed on|off
//                          toggle magic-set query evaluation (off = the
//                          whole-program reference path)
//   value stats            show the hash-consing interner's counters
//   quit
//
// Ctrl-C during an evaluation cancels it cooperatively (the fixpoint
// notices within one step and the state rolls back); at the prompt it
// just clears the line.
//
// Example session:
//   load examples/data/family.logres
//   apply RIDV
//   rules person(name: "zoe").
//   ;;
//   ? person(name: N).

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "algres/interner.h"
#include "core/database.h"
#include "core/dump.h"
#include "core/explain.h"
#include "core/magic.h"
#include "core/parser.h"
#include "storage/journaled_database.h"
#include "util/governor.h"
#include "util/string_util.h"

namespace logres {
namespace {

// SIGINT flips the shared cancellation flag; every evaluation launched by
// the shell carries a token observing it, so a runaway fixpoint stops
// within one step instead of requiring a kill.
CancellationSource& InterruptSource() {
  static CancellationSource source;
  return source;
}

extern "C" void HandleSigint(int) { InterruptSource().Cancel(); }

std::string ReadFile(const std::string& path, Status* status) {
  std::ifstream in(path);
  if (!in) {
    *status = Status::NotFound("cannot open file: " + path);
    return "";
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *status = Status::OK();
  return buffer.str();
}

class Shell {
 public:
  int Run(std::istream& in, bool interactive) {
    std::string line;
    if (interactive) std::printf("logres> ");
    for (;;) {
      if (!std::getline(in, line)) {
        // A Ctrl-C at the prompt interrupts the read; clear and continue
        // rather than exiting the session.
        if (interactive && InterruptSource().cancelled()) {
          InterruptSource().Reset();
          std::cin.clear();
          std::printf("\nlogres> ");
          continue;
        }
        break;
      }
      if (!Dispatch(line, in)) break;
      if (interactive) std::printf("logres> ");
    }
    return 0;
  }

 private:
  /// The evaluation options for every command, wired to the interrupt
  /// flag and the `set` limits.
  EvalOptions Options() {
    EvalOptions options;
    options.budget = budget_;
    options.budget.cancel = InterruptSource().token();
    options.num_threads = threads_;
    options.intern_values = intern_values_;
    options.goal_directed = goal_directed_;
    return options;
  }

  /// Reports an evaluation outcome, resetting the interrupt flag after a
  /// cancellation so the next command starts clean.
  void ReportEval(const Status& status) {
    Report(status);
    if (status.code() == StatusCode::kCancelled) {
      InterruptSource().Reset();
      std::printf("(state unchanged)\n");
    }
  }
  // Returns false to quit.
  bool Dispatch(const std::string& line, std::istream& in) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty() || StartsWith(command, "--")) return true;

    if (command == "quit" || command == "exit") return false;

    if (command == "load") {
      std::string path;
      words >> path;
      Status read_status;
      std::string text = ReadFile(path, &read_status);
      if (!read_status.ok()) {
        Report(read_status);
        return true;
      }
      auto db = Database::Create(text);
      if (!db.ok()) {
        Report(db.status());
        return true;
      }
      jdb_.reset();
      db_ = std::move(db).value();
      has_db_ = true;
      std::printf("loaded %s (%zu modules registered)\n", path.c_str(),
                  db_.registered_modules().size());
      return true;
    }
    if (command == "open") {
      std::string path;
      words >> path;
      if (path == "-j") {
        words >> path;
        auto store = JournaledDatabase::Open(path);
        if (!store.ok()) {
          Report(store.status());
          return true;
        }
        jdb_ = std::move(store).value();
        has_db_ = true;
        StorageStatus status = jdb_->status();
        std::printf(
            "opened journaled store %s (%zu facts, seq %llu, replayed "
            "%llu record(s))\n",
            path.c_str(), Db().edb().TotalFacts(),
            static_cast<unsigned long long>(status.last_seq),
            static_cast<unsigned long long>(status.replayed_at_open));
        if (status.recovered_fallback_depth > 0) {
          std::printf(
              "recovered from checkpoint generation seq %llu (fallback "
              "depth %llu)\n",
              static_cast<unsigned long long>(
                  status.recovered_checkpoint_seq),
              static_cast<unsigned long long>(
                  status.recovered_fallback_depth));
        }
        for (const std::string& warning : status.warnings) {
          std::printf("warning: %s\n", warning.c_str());
        }
        return true;
      }
      Status read_status;
      std::string text = ReadFile(path, &read_status);
      if (!read_status.ok()) {
        Report(read_status);
        return true;
      }
      auto db = LoadDatabase(text);
      if (!db.ok()) {
        Report(db.status());
        return true;
      }
      jdb_.reset();
      db_ = std::move(db).value();
      has_db_ = true;
      std::printf("opened %s (%zu facts)\n", path.c_str(),
                  db_.edb().TotalFacts());
      return true;
    }
    if (!has_db_ && command != "load" && command != "open") {
      std::printf("no database loaded — use `load <file>` first\n");
      return true;
    }
    if (command == "save") {
      std::string path;
      words >> path;
      if (path == "-j") {
        words >> path;
        auto store = JournaledDatabase::Create(path, Db());
        if (!store.ok()) {
          Report(store.status());
          return true;
        }
        jdb_ = std::move(store).value();
        std::printf("initialized journaled store %s; applies are now "
                    "durable\n", path.c_str());
        return true;
      }
      std::ofstream out(path);
      if (!out) {
        std::printf("cannot write %s\n", path.c_str());
        return true;
      }
      out << DumpDatabase(Db());
      std::printf("saved %s\n", path.c_str());
      return true;
    }
    if (command == "checkpoint") {
      if (!jdb_.has_value()) {
        std::printf("no journaled store open — use `open -j <dir>` or "
                    "`save -j <dir>`\n");
        return true;
      }
      Status st = jdb_->Checkpoint();
      if (!st.ok()) {
        Report(st);
        return true;
      }
      StorageStatus status = jdb_->status();
      std::printf("checkpointed at seq %llu\n",
                  static_cast<unsigned long long>(status.checkpoint_seq));
      return true;
    }
    if (command == "journal") {
      std::string sub;
      words >> sub;
      if (sub != "status") {
        std::printf("usage: journal status\n");
        return true;
      }
      if (!jdb_.has_value()) {
        std::printf("no journaled store open — use `open -j <dir>` or "
                    "`save -j <dir>`\n");
        return true;
      }
      StorageStatus s = jdb_->status();
      std::printf(
          "store         %s\n"
          "status        %s\n"
          "last seq      %llu\n"
          "checkpoint    seq %llu\n"
          "journal       %llu record(s), %llu byte(s), %llu rotated\n"
          "recovery      replayed %llu record(s), truncated %llu byte(s)\n"
          "resources     %llu evaluator step(s) committed, last instance "
          "%llu fact(s)\n",
          jdb_->dir().c_str(),
          s.degraded ? "DEGRADED (read-only; `reopen` to recover)"
                     : "healthy",
          static_cast<unsigned long long>(s.last_seq),
          static_cast<unsigned long long>(s.checkpoint_seq),
          static_cast<unsigned long long>(s.journal_records),
          static_cast<unsigned long long>(s.journal_bytes),
          static_cast<unsigned long long>(s.rotated_journals),
          static_cast<unsigned long long>(s.replayed_at_open),
          static_cast<unsigned long long>(s.truncated_bytes_at_open),
          static_cast<unsigned long long>(s.steps_total),
          static_cast<unsigned long long>(s.facts_last));
      if (s.degraded) {
        std::printf("cause         %s\n", s.degraded_reason.c_str());
      }
      if (s.recovered_fallback_depth > 0) {
        std::printf("recovered     from generation seq %llu (fallback "
                    "depth %llu)\n",
                    static_cast<unsigned long long>(
                        s.recovered_checkpoint_seq),
                    static_cast<unsigned long long>(
                        s.recovered_fallback_depth));
      }
      std::printf("scrub         %s\n",
                  s.scrubbed
                      ? StrCat(s.last_scrub_ok ? "ok" : "ERRORS", " at ",
                               s.last_scrub_time, " (",
                               s.last_scrub_summary, ")")
                            .c_str()
                      : "never run (use `scrub`)");
      for (const CheckpointGenerationInfo& gen : jdb_->Generations()) {
        std::printf(
            "generation    seq %llu %s v%d %s %s (%llu byte(s))\n",
            static_cast<unsigned long long>(gen.seq),
            gen.head ? "HEAD" : ".old", gen.version,
            gen.verified ? "crc-ok" : (gen.usable ? "unverified" : "CORRUPT"),
            gen.chain_covered ? "chain-covered" : "chain-incomplete",
            static_cast<unsigned long long>(gen.bytes));
        if (!gen.detail.empty()) {
          std::printf("              %s\n", gen.detail.c_str());
        }
      }
      for (const std::string& warning : s.warnings) {
        std::printf("warning: %s\n", warning.c_str());
      }
      return true;
    }
    if (command == "scrub") {
      if (!jdb_.has_value()) {
        std::printf("no journaled store open — use `open -j <dir>` or "
                    "`save -j <dir>`\n");
        return true;
      }
      ScrubReport report = jdb_->Scrub();
      for (const StoreFileCheck& file : report.files) {
        std::printf("scrub  %-24s %-20s %s%s%s\n", file.name.c_str(),
                    file.kind.c_str(), file.verdict.c_str(),
                    file.detail.empty() ? "" : " — ",
                    file.detail.c_str());
      }
      std::printf("scrub %s: %s\n", report.ok() ? "ok" : "FOUND ERRORS",
                  report.summary.c_str());
      if (!report.ok()) {
        std::printf("run `logres_fsck %s` for repair options\n",
                    jdb_->dir().c_str());
      }
      return true;
    }
    if (command == "reopen") {
      if (!jdb_.has_value()) {
        std::printf("no journaled store open — use `open -j <dir>` or "
                    "`save -j <dir>`\n");
        return true;
      }
      Status st = jdb_->Reopen();
      if (!st.ok()) {
        Report(st);
        return true;
      }
      StorageStatus status = jdb_->status();
      std::printf("reopened %s (seq %llu, store %s)\n",
                  jdb_->dir().c_str(),
                  static_cast<unsigned long long>(status.last_seq),
                  status.degraded ? "still DEGRADED" : "healthy");
      if (status.recovered_fallback_depth > 0) {
        std::printf(
            "recovered from checkpoint generation seq %llu (fallback "
            "depth %llu)\n",
            static_cast<unsigned long long>(status.recovered_checkpoint_seq),
            static_cast<unsigned long long>(
                status.recovered_fallback_depth));
      }
      return true;
    }
    if (command == "apply") {
      std::string mode_text;
      words >> mode_text;
      auto mode = ParseApplicationMode(ToUpper(mode_text));
      if (!mode.has_value()) {
        std::printf("unknown mode '%s' (RIDI/RADI/RDDI/RIDV/RADV/RDDV)\n",
                    mode_text.c_str());
        return true;
      }
      std::string body, module_line;
      while (std::getline(in, module_line) && module_line != ";;") {
        body += module_line;
        body += '\n';
      }
      Instance before = Db().edb();
      auto result = jdb_.has_value()
                        ? jdb_->ApplySource(body, *mode, Options())
                        : db_.ApplySource(body, *mode, Options());
      if (!result.ok()) {
        ReportEval(result.status());
        return true;
      }
      std::printf("applied%s (%s)\n", jdb_.has_value() ? " [durable]" : "",
                  ExplainStats(result->stats).c_str());
      InstanceDiff diff = DiffInstances(before, Db().edb());
      if (!diff.empty()) std::printf("%s", diff.ToString().c_str());
      if (result->goal_answer.has_value()) {
        PrintAnswer(*result->goal_answer);
      }
      return true;
    }
    if (command == "run") {
      std::string name;
      words >> name;
      Instance before = Db().edb();
      // In journaled mode the store journals the module's serialized
      // source (dump v2 checkpoints carry module blocks), so `run` is as
      // durable as `apply`.
      auto result = jdb_.has_value() ? jdb_->ApplyByName(name, Options())
                                     : db_.ApplyByName(name, Options());
      if (!result.ok()) {
        ReportEval(result.status());
        return true;
      }
      std::printf("applied module '%s'%s\n", name.c_str(),
                  jdb_.has_value() ? " [durable]" : "");
      InstanceDiff diff = DiffInstances(before, Db().edb());
      if (!diff.empty()) std::printf("%s", diff.ToString().c_str());
      if (result->goal_answer.has_value()) {
        PrintAnswer(*result->goal_answer);
      }
      return true;
    }
    if (command == "?") {
      std::string goal = line.substr(line.find('?'));
      EvalStats stats;
      auto answer = Db().Query(goal, Options(), &stats);
      if (!answer.ok()) {
        ReportEval(answer.status());
        return true;
      }
      PrintAnswer(*answer);
      std::printf("(%s)\n", ExplainStats(stats).c_str());
      return true;
    }
    if (command == "set") {
      std::string key;
      words >> key;
      if (key.empty()) {
        std::printf(
            "timeout_ms = %lld\nmax_steps = %zu\nmax_facts = %zu\n"
            "max_bytes = %zu\nthreads = %zu\nintern_values = %d\n"
            "goal_directed = %s\n",
            budget_.timeout.has_value()
                ? static_cast<long long>(budget_.timeout->count())
                : 0LL,
            budget_.max_steps, budget_.max_facts, budget_.max_bytes,
            threads_, intern_values_ ? 1 : 0, goal_directed_ ? "on" : "off");
        return true;
      }
      if (key == "goal_directed") {
        // Magic-set query evaluation; off = the whole-program reference
        // path (answers identical, see EvalOptions::goal_directed).
        std::string mode;
        words >> mode;
        if (mode == "on" || mode == "1") {
          goal_directed_ = true;
        } else if (mode == "off" || mode == "0") {
          goal_directed_ = false;
        } else {
          std::printf("usage: set goal_directed on|off\n");
          return true;
        }
        std::printf("set goal_directed = %s\n", goal_directed_ ? "on" : "off");
        return true;
      }
      long long value = -1;
      words >> value;
      if (value < 0) {
        std::printf(
            "usage: set [timeout_ms|max_steps|max_facts|max_bytes|"
            "threads|intern_values] <n> | set goal_directed on|off\n");
        return true;
      }
      if (key == "timeout_ms") {
        if (value == 0) {
          budget_.timeout.reset();
        } else {
          budget_.timeout = std::chrono::milliseconds(value);
        }
      } else if (key == "max_steps") {
        budget_.max_steps = static_cast<size_t>(value);
      } else if (key == "max_facts") {
        budget_.max_facts = static_cast<size_t>(value);
      } else if (key == "max_bytes") {
        budget_.max_bytes = static_cast<size_t>(value);
      } else if (key == "threads") {
        // 0 = one per hardware thread; results are identical either way.
        threads_ = static_cast<size_t>(value);
      } else if (key == "intern_values") {
        // 0 = plain-allocation reference path; results are identical
        // either way (EvalOptions::intern_values).
        intern_values_ = value != 0;
      } else {
        std::printf(
            "unknown limit '%s' "
            "(timeout_ms/max_steps/max_facts/max_bytes/threads/"
            "intern_values/goal_directed)\n",
            key.c_str());
        return true;
      }
      std::printf("set %s = %lld\n", key.c_str(), value);
      return true;
    }
    if (command == "value") {
      // `value stats`: the hash-consing interner's counters, in the
      // spirit of `journal status`.
      std::string sub;
      words >> sub;
      if (sub != "stats") {
        std::printf("usage: value stats\n");
        return true;
      }
      std::printf("%s\n", ValueInterner::stats().ToString().c_str());
      return true;
    }
    if (command == "schema") {
      std::printf("%s", SchemaToSource(Db().schema()).c_str());
      return true;
    }
    if (command == "rules") {
      for (const Rule& rule : Db().rules()) {
        std::printf("  %s\n", rule.ToString().c_str());
      }
      std::printf("(%zu persistent rules)\n", Db().rules().size());
      return true;
    }
    if (command == "edb") {
      std::printf("%s", Db().edb().ToString().c_str());
      return true;
    }
    if (command == "explain" || command == "dot") {
      // `explain ? <goal>`: the goal-directed rewrite plan (adornments,
      // guarded/magic rules, seeds) — or the recorded fallback reason.
      if (command == "explain" && line.find('?') != std::string::npos) {
        auto goal = ParseGoal(line.substr(line.find('?')));
        if (!goal.ok()) {
          Report(goal.status());
          return true;
        }
        MagicRewrite rewrite = MagicRewriteForGoal(
            Db().schema(), Db().functions(), Db().rules(), *goal, Options());
        std::printf("%s", rewrite.plan.c_str());
        if (!rewrite.plan.empty() && rewrite.plan.back() != '\n') {
          std::printf("\n");
        }
        return true;
      }
      auto program = Typecheck(Db().schema(), Db().functions(),
                               Db().rules());
      if (!program.ok()) {
        Report(program.status());
        return true;
      }
      if (command == "explain") {
        std::printf("%s", ExplainProgram(*program).c_str());
      } else {
        std::printf("%s", DependencyGraphDot(Db().schema(),
                                             *program).c_str());
      }
      return true;
    }
    std::printf("unknown command '%s'\n", command.c_str());
    return true;
  }

  void PrintAnswer(const std::vector<Bindings>& answer) {
    for (const Bindings& binding : answer) {
      std::string row;
      for (const auto& [var, value] : binding) {
        row += StrCat(var, " = ", value.ToString(), "  ");
      }
      std::printf("  %s\n", row.c_str());
    }
    std::printf("(%zu answers)\n", answer.size());
  }

  void Report(const Status& status) {
    std::printf("error: %s\n", status.ToString().c_str());
  }

  /// The database commands operate on: the journaled store's when one is
  /// open, the plain in-memory one otherwise.
  Database& Db() { return jdb_.has_value() ? jdb_->db() : db_; }

  Database db_;
  std::optional<JournaledDatabase> jdb_;
  bool has_db_ = false;
  Budget budget_;  // adjusted with `set`; cancel token added per command
  size_t threads_ = 1;  // `set threads`; 0 = one per hardware thread
  bool intern_values_ = true;  // `set intern_values`; off = reference path
  bool goal_directed_ = true;  // `set goal_directed`; off = whole-program
};

}  // namespace
}  // namespace logres

int main(int argc, char** argv) {
  // No SA_RESTART: Ctrl-C must interrupt a blocking read at the prompt as
  // well as flag a running evaluation.
  struct sigaction action = {};
  action.sa_handler = logres::HandleSigint;
  sigaction(SIGINT, &action, nullptr);

  logres::Shell shell;
  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
    return shell.Run(script, /*interactive=*/false);
  }
  return shell.Run(std::cin, /*interactive=*/true);
}
