// B4 — inheritance machinery: isa resolution, effective-field flattening,
// refinement checks, and instance conformance as hierarchy depth and
// fan-out grow.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "util/string_util.h"

namespace logres {
namespace {

// A linear hierarchy C0 isa C1 isa ... isa C_{depth-1}; each class adds
// one field.
Schema DeepHierarchy(int64_t depth) {
  Schema s;
  for (int64_t i = depth - 1; i >= 0; --i) {
    std::vector<std::pair<std::string, Type>> fields;
    if (i + 1 < depth) {
      // Unlabeled superclass component (inheritance inlining).
      fields.emplace_back(ToLower(StrCat("C", i + 1)),
                          Type::Named(StrCat("C", i + 1)));
    }
    fields.emplace_back(StrCat("f", i), Type::Int());
    (void)s.DeclareClass(StrCat("C", i), Type::Tuple(std::move(fields)));
    if (i + 1 < depth) {
      (void)s.DeclareIsa(StrCat("C", i), StrCat("C", i + 1));
    }
  }
  return s;
}

void BM_B4_ValidateDeepHierarchy(benchmark::State& state) {
  Schema s = DeepHierarchy(state.range(0));
  for (auto _ : state) {
    auto status = s.Validate();
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_B4_ValidateDeepHierarchy)->Arg(2)->Arg(8)->Arg(32);

void BM_B4_EffectiveFieldsDeep(benchmark::State& state) {
  Schema s = DeepHierarchy(state.range(0));
  for (auto _ : state) {
    auto fields = s.EffectiveFields("C0");
    if (!fields.ok()) state.SkipWithError(fields.status().ToString().c_str());
    benchmark::DoNotOptimize(fields->size());
  }
}
BENCHMARK(BM_B4_EffectiveFieldsDeep)->Arg(2)->Arg(8)->Arg(32);

void BM_B4_RefinementDeep(benchmark::State& state) {
  Schema s = DeepHierarchy(state.range(0));
  std::string leaf = "C0";
  std::string root = StrCat("C", state.range(0) - 1);
  for (auto _ : state) {
    auto r = s.IsRefinement(Type::Named(leaf), Type::Named(root));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_B4_RefinementDeep)->Arg(2)->Arg(8)->Arg(32);

// Fan-out: one root, n direct subclasses; creating a subclass object
// updates the superclass oid set, and querying the root scans them all.
void BM_B4_FanOutObjectCreation(benchmark::State& state) {
  int64_t fanout = state.range(0);
  Schema s;
  (void)s.DeclareClass("ROOT", Type::Tuple({{"x", Type::Int()}}));
  for (int64_t i = 0; i < fanout; ++i) {
    (void)s.DeclareClass(
        StrCat("SUB", i),
        Type::Tuple({{"root", Type::Named("ROOT")},
                     {StrCat("g", i), Type::Int()}}));
    (void)s.DeclareIsa(StrCat("SUB", i), "ROOT");
  }
  for (auto _ : state) {
    Instance inst;
    OidGenerator gen;
    for (int64_t i = 0; i < fanout; ++i) {
      (void)inst.CreateObject(
          s, StrCat("SUB", i),
          Value::MakeTuple({{"x", Value::Int(i)},
                            {StrCat("g", i), Value::Int(i)}}),
          &gen);
    }
    benchmark::DoNotOptimize(inst.OidsOf("ROOT").size());
  }
}
BENCHMARK(BM_B4_FanOutObjectCreation)->Arg(2)->Arg(8)->Arg(32);

// B5-adjacent: conformance checking of instances against deep hierarchies.
void BM_B4_ConsistencyDeep(benchmark::State& state) {
  int64_t depth = state.range(0);
  Schema s = DeepHierarchy(depth);
  Instance inst;
  OidGenerator gen;
  std::vector<std::pair<std::string, Value>> fields;
  for (int64_t i = 0; i < depth; ++i) {
    fields.emplace_back(StrCat("f", i), Value::Int(i));
  }
  for (int j = 0; j < 50; ++j) {
    (void)inst.CreateObject(s, "C0", Value::MakeTuple(fields), &gen);
  }
  for (auto _ : state) {
    auto status = inst.CheckConsistent(s);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
}
BENCHMARK(BM_B4_ConsistencyDeep)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
