// E1-E6 — the paper's worked examples as micro-benchmarks: schema
// validation and population (Example 2.1), data functions (2.2/3.2),
// predicate unification queries (3.1), powerset growth (3.3), and the
// interesting-pair dedup (3.4).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace logres {
namespace {

// E1 — Example 2.1: build and validate the football database.
void BM_E1_FootballBuild(benchmark::State& state) {
  int64_t teams = state.range(0);
  for (auto _ : state) {
    Database db = bench::FootballDatabase(teams, 11);
    benchmark::DoNotOptimize(db.edb().TotalFacts());
  }
  state.counters["teams"] = static_cast<double>(teams);
}
BENCHMARK(BM_E1_FootballBuild)->Arg(4)->Arg(16)->Arg(64);

// E1b — querying the football database with nested patterns.
void BM_E1_FootballQuery(benchmark::State& state) {
  Database db = bench::FootballDatabase(state.range(0), 11);
  for (auto _ : state) {
    auto ans = db.Query(
        "? team(self T, team_name: N, base_players: B), member(P, B), "
        "player(self P, roles: R), member(9, R).");
    if (!ans.ok()) state.SkipWithError(ans.status().ToString().c_str());
    benchmark::DoNotOptimize(ans->size());
  }
}
BENCHMARK(BM_E1_FootballQuery)->Arg(4)->Arg(16)->Arg(64);

// E2/E4 — Examples 2.2 and 3.2: children + recursive descendants over a
// random forest of n persons.
void BM_E4_Descendants(benchmark::State& state) {
  int64_t n = state.range(0);
  auto edges = bench::ForestEdges(n);
  for (auto _ : state) {
    auto db = Database::Create(R"(
      classes
        PERSON = (name: string);
      associations
        PARENT = (par: PERSON, chil: PERSON);
        ANCESTOR = (anc: PERSON, des: {PERSON});
      functions
        DESC: PERSON -> {PERSON};
    )");
    Database database = std::move(db).value();
    std::vector<Oid> oids;
    for (int64_t i = 0; i < n; ++i) {
      oids.push_back(*database.InsertObject("PERSON", Value::MakeTuple(
          {{"name", Value::String("p" + std::to_string(i))}})));
    }
    for (const auto& [p, c] : edges) {
      (void)database.InsertTuple("PARENT", Value::MakeTuple(
          {{"par", Value::MakeOid(oids[static_cast<size_t>(p)])},
           {"chil", Value::MakeOid(oids[static_cast<size_t>(c)])}}));
    }
    auto apply = database.ApplySource(R"(
      rules
        member(X, desc(Y)) <- parent(par: Y, chil: X).
        member(X, desc(Y)) <- parent(par: Y, chil: Z), member(X, T),
                              T = desc(Z).
        ancestor(anc: X, des: Y) <- parent(par: X), Y = desc(X).
    )", ApplicationMode::kRIDV);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(database.edb().TuplesOf("ANCESTOR").size());
  }
  state.counters["persons"] = static_cast<double>(n);
}
BENCHMARK(BM_E4_Descendants)->Arg(8)->Arg(16)->Arg(32);

// E3 — Example 3.1: unification-heavy query over the university schema.
void BM_E3_UniversityUnification(benchmark::State& state) {
  auto db = Database::Create(R"(
    classes
      PERSON = (name: string, address: string);
      PROFESSOR = (PERSON, course: string);
      STUDENT = (PERSON, studschool: string);
      PROFESSOR isa PERSON;
      STUDENT isa PERSON;
    associations
      ADVISES = (professor: PROFESSOR, student: STUDENT);
      PAIR = (p_name: string, s_name: string);
  )");
  Database database = std::move(db).value();
  int64_t n = state.range(0);
  std::vector<Oid> profs, studs;
  for (int64_t i = 0; i < n; ++i) {
    profs.push_back(*database.InsertObject("PROFESSOR", Value::MakeTuple(
        {{"name", Value::String("n" + std::to_string(i % 7))},
         {"address", Value::String("a")},
         {"course", Value::String("c")}})));
    studs.push_back(*database.InsertObject("STUDENT", Value::MakeTuple(
        {{"name", Value::String("n" + std::to_string(i % 5))},
         {"address", Value::String("a")},
         {"studschool", Value::String("s")}})));
    (void)database.InsertTuple("ADVISES", Value::MakeTuple(
        {{"professor", Value::MakeOid(profs.back())},
         {"student", Value::MakeOid(studs.back())}}));
  }
  for (auto _ : state) {
    // pair(X, X) across professor/student/advises (Section 3.1).
    auto apply = database.ApplySource(R"(
      rules
        pair(p_name: X, s_name: X) <-
            professor(X1, name: X), student(Y1, name: X),
            advises(professor: X1, student: Y1).
    )", ApplicationMode::kRIDI);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(apply->instance.TuplesOf("PAIR").size());
  }
}
BENCHMARK(BM_E3_UniversityUnification)->Arg(16)->Arg(64)->Arg(256);

// E5 — Example 3.3: powerset, exponential in |R|.
void BM_E5_Powerset(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    auto db = Database::Create(
        "associations R = (d: integer); POWER = (set: {integer});");
    Database database = std::move(db).value();
    for (int64_t i = 1; i <= n; ++i) {
      (void)database.InsertTuple("R", Value::MakeTuple(
          {{"d", Value::Int(i)}}));
    }
    auto apply = database.ApplySource(R"(
      rules
        power(set: X) <- X = {}.
        power(set: X) <- r(d: Y), append({}, Y, X).
        power(set: X) <- power(set: Y), power(set: Z), union(X, Y, Z).
    )", ApplicationMode::kRIDV);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(database.edb().TuplesOf("POWER").size());
  }
  state.counters["subsets"] = static_cast<double>(1LL << n);
}
BENCHMARK(BM_E5_Powerset)->Arg(3)->Arg(5)->Arg(7);

// E6 — Example 3.4: interesting pairs with association dedup and object
// invention.
void BM_E6_InterestingPair(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    auto db = Database::Create(R"(
      classes
        EMP = (name: string, works: integer);
        MGR = (name: string, dept: integer);
      associations
        PAIR = (employee: EMP, manager: MGR);
      classes
        IP = PAIR;
    )");
    Database database = std::move(db).value();
    for (int64_t i = 0; i < n; ++i) {
      (void)database.InsertObject("EMP", Value::MakeTuple(
          {{"name", Value::String("n" + std::to_string(i % 3))},
           {"works", Value::Int(i % 4)}}));
      (void)database.InsertObject("MGR", Value::MakeTuple(
          {{"name", Value::String("n" + std::to_string(i % 3))},
           {"dept", Value::Int(i % 4)}}));
    }
    auto apply = database.ApplySource(R"(
      rules
        pair(employee: E, manager: M) <-
            emp(self E, name: N, works: D), mgr(self M, name: N, dept: D).
        ip(self X, C) <- pair(C).
    )", ApplicationMode::kRIDV);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(database.edb().OidsOf("IP").size());
  }
}
BENCHMARK(BM_E6_InterestingPair)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
