// B1/B2 — recursive closure scaling: the LOGRES evaluator (semi-naive and
// naive), the ALGRES-compiled backend (semi-naive and naive), and the flat
// Datalog baseline, on chains and random graphs.
//
// Expected shape (EXPERIMENTS.md): semi-naive beats naive superlinearly as
// n grows; the flat baseline beats the typed object engine by a constant
// factor on this flat workload; the ALGRES-compiled backend sits between
// them.
//
// The *ChainThreads benchmarks sweep the worker count at fixed n — the
// parallel-scaling dimension. Speedup requires physical cores; on a
// single-core host the extra threads only add partitioning overhead.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "bench_util.h"
#include "core/algres_backend.h"
#include "core/parser.h"
#include "datalog/datalog.h"

namespace logres {
namespace {

using bench::ChainEdges;
using bench::EdgeDatabase;
using bench::RandomEdges;
using bench::ScaleFreeEdges;

void RunLogres(benchmark::State& state, bool semi_naive,
               std::vector<std::pair<int64_t, int64_t>> edges,
               size_t threads = 1, bool snapshot_steps = false,
               EvalMode mode = EvalMode::kStratified,
               bool intern_values = true) {
  Database db = EdgeDatabase(edges);
  EvalOptions options;
  options.semi_naive = semi_naive;
  options.num_threads = threads;
  options.use_snapshot_steps = snapshot_steps;
  options.mode = mode;
  options.intern_values = intern_values;
  size_t result_size = 0;
  for (auto _ : state) {
    Database fresh = EdgeDatabase(edges);
    auto apply = fresh.ApplySource(bench::kTcRules,
                                   ApplicationMode::kRIDV, options);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    result_size = fresh.edb().TuplesOf("TC").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_LogresChainSemiNaive(benchmark::State& state) {
  RunLogres(state, true, ChainEdges(state.range(0)));
}
void BM_LogresChainNaive(benchmark::State& state) {
  RunLogres(state, false, ChainEdges(state.range(0)));
}
BENCHMARK(BM_LogresChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_LogresChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_LogresRandomSemiNaive(benchmark::State& state) {
  RunLogres(state, true, RandomEdges(state.range(0), 1.5));
}
BENCHMARK(BM_LogresRandomSemiNaive)->Arg(16)->Arg(32)->Arg(64);

// Parallel scaling: chain TC at fixed n across worker counts. Args are
// {n, threads}. Results are byte-identical to the 1-thread run (see
// tests/parallel_test.cc); only the wall clock may move.
void BM_LogresChainThreads(benchmark::State& state) {
  RunLogres(state, true, ChainEdges(state.range(0)),
            static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_LogresChainThreads)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4});

// Step-application path ablation at fixed n: the undo-log default
// (arg 0) vs the historical copy-per-step reference behind
// EvalOptions::use_snapshot_steps (arg 1). Results are byte-identical
// (tests/parallel_test.cc proves it); only the per-step O(|instance|)
// copy + compare cost separates them.
void BM_LogresChainStepPath(benchmark::State& state) {
  RunLogres(state, true, ChainEdges(state.range(0)), 1,
            state.range(1) != 0);
}
BENCHMARK(BM_LogresChainStepPath)
    ->Args({256, 0})->Args({256, 1})
    ->Args({1024, 0})->Args({1024, 1});

// Same ablation under non-inflationary (replacement) semantics — the loop
// where the reference path genuinely rebuilds a fresh E ⊕ Δ instance and
// whole-compares it against the previous state every step. The undo path
// rolls the live instance back to E by reverse replay instead, so only
// there does the per-step O(|instance|) copy + compare actually
// disappear. Chain TC is monotone, so replacement semantics converge to
// the same closure.
void BM_LogresChainStepPathNoninf(benchmark::State& state) {
  RunLogres(state, false, ChainEdges(state.range(0)), 1,
            state.range(1) != 0, EvalMode::kNonInflationary);
}
BENCHMARK(BM_LogresChainStepPathNoninf)
    ->Args({64, 0})->Args({64, 1})
    ->Args({128, 0})->Args({128, 1});

// The regime the in-place step is built for: a big EDB with a small
// derived relation under replacement semantics. Bounded reachability over
// an n-edge chain converges in ~33 steps with |REACH| <= 33, so the
// reference path's per-step cost is the E ⊕ Δ rebuild plus the
// whole-instance comparison — both O(n) — while the undo path rolls back
// and re-derives only the ~33 net facts: O(|Δ|) per step regardless of n.
void RunReachNoninf(benchmark::State& state, int64_t n,
                    bool snapshot_steps, bool intern_values) {
  EvalOptions options;
  options.use_snapshot_steps = snapshot_steps;
  options.intern_values = intern_values;
  options.mode = EvalMode::kNonInflationary;
  size_t result_size = 0;
  for (auto _ : state) {
    auto db = Database::Create(
        "associations E = (a: integer, b: integer);"
        "             SEED = (n: integer);"
        "             REACH = (n: integer);");
    for (const auto& [a, b] : ChainEdges(n)) {
      (void)db->InsertTuple("E", Value::MakeTuple(
          {{"a", Value::Int(a)}, {"b", Value::Int(b)}}));
    }
    (void)db->InsertTuple("SEED",
                          Value::MakeTuple({{"n", Value::Int(0)}}));
    auto apply = db->ApplySource(
        "rules "
        "reach(n: X) <- seed(n: X)."
        "reach(n: Y) <- reach(n: X), e(a: X, b: Y), Y <= 32.",
        ApplicationMode::kRIDV, options);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    result_size = db->edb().TuplesOf("REACH").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_LogresReachStepPathNoninf(benchmark::State& state) {
  RunReachNoninf(state, state.range(0), state.range(1) != 0, true);
}
BENCHMARK(BM_LogresReachStepPathNoninf)
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({4096, 0})->Args({4096, 1});

// Interner ablation on the bounded-reach loop (args {n, intern}), on the
// default undo-log step path: every step rolls back and re-derives the
// same ~33 REACH facts, so with interning on each re-derivation is a
// table hit resolving to the canonical node instead of a fresh
// allocation, and every membership re-check is a pointer compare.
void BM_LogresReachInternedNoninf(benchmark::State& state) {
  RunReachNoninf(state, state.range(0), false, state.range(1) != 0);
}
BENCHMARK(BM_LogresReachInternedNoninf)
    ->Args({1024, 0})->Args({1024, 1})
    ->Args({4096, 0})->Args({4096, 1});

// Value-interner ablation, mirroring the *StepPath series: hash-consing
// off (arg 0, the historical fresh-allocation path behind
// EvalOptions::intern_values) vs on (arg 1, the default). Dumps are
// byte-identical either way (tests/random_program_test.cc proves it);
// what moves is the cost of materializing and re-comparing duplicate
// derivations.
void BM_LogresChainInterned(benchmark::State& state) {
  RunLogres(state, true, ChainEdges(state.range(0)), 1, false,
            EvalMode::kStratified, state.range(1) != 0);
}
BENCHMARK(BM_LogresChainInterned)
    ->Args({256, 0})->Args({256, 1})
    ->Args({1024, 0})->Args({1024, 1});

// Scale-free closure: preferential-attachment hubs mean the same tc pair
// is derived along many distinct paths, so the run is dominated by
// duplicate detection — the dedup-heavy regime the interner targets.
void BM_LogresScaleFreeSemiNaive(benchmark::State& state) {
  RunLogres(state, true, ScaleFreeEdges(state.range(0)));
}
BENCHMARK(BM_LogresScaleFreeSemiNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_LogresScaleFreeInterned(benchmark::State& state) {
  RunLogres(state, true, ScaleFreeEdges(state.range(0)), 1, false,
            EvalMode::kStratified, state.range(1) != 0);
}
BENCHMARK(BM_LogresScaleFreeInterned)
    ->Args({128, 0})->Args({128, 1})
    ->Args({256, 0})->Args({256, 1});

void RunAlgres(benchmark::State& state, AlgresStrategy strategy,
               std::vector<std::pair<int64_t, int64_t>> edges,
               size_t threads = 1, bool intern_values = true) {
  Database db = EdgeDatabase(edges);
  auto unit = Parse(bench::kTcRules);
  auto program = Typecheck(db.schema(), {}, unit->rules);
  auto backend = AlgresBackend::Compile(db.schema(), *program);
  if (!backend.ok()) {
    state.SkipWithError(backend.status().ToString().c_str());
    return;
  }
  size_t result_size = 0;
  for (auto _ : state) {
    auto out = backend->Run(db.edb(), strategy, Budget{}, threads,
                            intern_values);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    result_size = out->TuplesOf("TC").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_AlgresChainSemiNaive(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kSemiNaive, ChainEdges(state.range(0)));
}
void BM_AlgresChainNaive(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kNaive, ChainEdges(state.range(0)));
}
BENCHMARK(BM_AlgresChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);
BENCHMARK(BM_AlgresChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_AlgresChainThreads(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kSemiNaive, ChainEdges(state.range(0)),
            static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_AlgresChainThreads)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4});

// Same interner ablation for the compiled backend (args {n, intern}).
void BM_AlgresScaleFreeInterned(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kSemiNaive,
            ScaleFreeEdges(state.range(0)), 1, state.range(1) != 0);
}
BENCHMARK(BM_AlgresScaleFreeInterned)
    ->Args({256, 0})->Args({256, 1})
    ->Args({512, 0})->Args({512, 1});

void RunDatalog(benchmark::State& state, datalog::EvalStrategy strategy,
                std::vector<std::pair<int64_t, int64_t>> edges,
                size_t threads = 1) {
  namespace dl = datalog;
  dl::Program p;
  for (const auto& [a, b] : edges) {
    (void)p.AddFact("edge", {dl::Constant::Int(a), dl::Constant::Int(b)});
  }
  auto var = [](const char* name) { return dl::Term::Var(name); };
  dl::Rule r1;
  r1.head = dl::Literal{"tc", {var("X"), var("Y")}, false};
  r1.body = {dl::Literal{"edge", {var("X"), var("Y")}, false}};
  dl::Rule r2;
  r2.head = dl::Literal{"tc", {var("X"), var("Z")}, false};
  r2.body = {dl::Literal{"tc", {var("X"), var("Y")}, false},
             dl::Literal{"edge", {var("Y"), var("Z")}, false}};
  (void)p.AddRule(r1);
  (void)p.AddRule(r2);
  dl::EvalOptions options;
  options.strategy = strategy;
  options.num_threads = threads;
  size_t result_size = 0;
  for (auto _ : state) {
    auto db = Evaluate(p, options);
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    result_size = db->at("tc").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_DatalogChainSemiNaive(benchmark::State& state) {
  RunDatalog(state, datalog::EvalStrategy::kSemiNaive,
             ChainEdges(state.range(0)));
}
void BM_DatalogChainNaive(benchmark::State& state) {
  RunDatalog(state, datalog::EvalStrategy::kNaive,
             ChainEdges(state.range(0)));
}
BENCHMARK(BM_DatalogChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);
BENCHMARK(BM_DatalogChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_DatalogChainThreads(benchmark::State& state) {
  RunDatalog(state, datalog::EvalStrategy::kSemiNaive,
             ChainEdges(state.range(0)),
             static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_DatalogChainThreads)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4});

// ---------------------------------------------------------------------------
// Goal-directed point queries (magic sets, core/magic.h). Args are
// {n, sel, gd}: sel picks the bound source constant — 0 = the chain tail
// (a ~1-node cone), 1 = ~1% of the chain demanded, 100 = source 0 (the
// longest single-source cone, still O(n) of the O(n²) closure) — and gd
// toggles EvalOptions::goal_directed. The whole-program baseline's cost
// is independent of the goal constant (it materializes everything and
// filters), so the gd=0 row is measured once per n, at sel=0.
//
// tc_tuples reports the answer rows; evaluated_facts the total facts the
// run materialized (EDB + cone for gd=1, EDB + full closure for gd=0) —
// the directly comparable work measure.

int64_t GoalSource(int64_t n, int64_t sel) {
  if (sel == 0) return n - 2;
  if (sel == 1) return std::max<int64_t>(0, n - 2 - n / 100);
  return 0;
}

Database EdgeRuleDatabase(
    const std::vector<std::pair<int64_t, int64_t>>& edges) {
  auto db = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);"
      "rules tc(a: X, b: Y) <- e(a: X, b: Y)."
      "      tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).");
  for (const auto& [a, b] : edges) {
    (void)db->InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(a)}, {"b", Value::Int(b)}}));
  }
  return std::move(db).value();
}

void RunLogresGoalDirected(benchmark::State& state,
                           std::vector<std::pair<int64_t, int64_t>> edges,
                           int64_t source, bool goal_directed) {
  Database db = EdgeRuleDatabase(edges);
  EvalOptions options;
  options.goal_directed = goal_directed;
  const std::string goal =
      "? tc(a: " + std::to_string(source) + ", b: X).";
  size_t answers = 0;
  EvalStats stats;
  for (auto _ : state) {
    auto out = db.Query(goal, options, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    answers = out->size();
  }
  state.counters["tc_tuples"] = static_cast<double>(answers);
  state.counters["evaluated_facts"] = static_cast<double>(stats.facts);
}

void RunAlgresGoalDirected(benchmark::State& state,
                           std::vector<std::pair<int64_t, int64_t>> edges,
                           int64_t source, bool goal_directed) {
  Database db = EdgeRuleDatabase(edges);
  auto goal = ParseGoal("? tc(a: " + std::to_string(source) + ", b: X).");
  if (!goal.ok()) {
    state.SkipWithError(goal.status().ToString().c_str());
    return;
  }
  EvalOptions options;
  options.goal_directed = goal_directed;
  size_t answers = 0;
  EvalStats stats;
  for (auto _ : state) {
    auto out = AlgresBackend::QueryGoal(db.schema(), db.functions(),
                                        db.rules(), db.edb(), *goal,
                                        options, &stats);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    answers = out->size();
  }
  state.counters["tc_tuples"] = static_cast<double>(answers);
  state.counters["evaluated_facts"] = static_cast<double>(stats.facts);
}

void RunDatalogGoalDirected(benchmark::State& state,
                            std::vector<std::pair<int64_t, int64_t>> edges,
                            int64_t source, bool goal_directed) {
  namespace dl = datalog;
  dl::Program p;
  for (const auto& [a, b] : edges) {
    (void)p.AddFact("edge", {dl::Constant::Int(a), dl::Constant::Int(b)});
  }
  auto var = [](const char* name) { return dl::Term::Var(name); };
  dl::Rule r1;
  r1.head = dl::Literal{"tc", {var("X"), var("Y")}, false};
  r1.body = {dl::Literal{"edge", {var("X"), var("Y")}, false}};
  dl::Rule r2;
  r2.head = dl::Literal{"tc", {var("X"), var("Z")}, false};
  r2.body = {dl::Literal{"tc", {var("X"), var("Y")}, false},
             dl::Literal{"edge", {var("Y"), var("Z")}, false}};
  (void)p.AddRule(r1);
  (void)p.AddRule(r2);
  dl::Literal goal{"tc", {dl::Term::Int(source), var("X")}, false};
  dl::EvalOptions options;
  options.goal_directed = goal_directed;
  size_t answers = 0;
  for (auto _ : state) {
    auto out = dl::Query(p, goal, options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    answers = out->size();
  }
  state.counters["tc_tuples"] = static_cast<double>(answers);
}

void BM_LogresChainGoalDirected(benchmark::State& state) {
  RunLogresGoalDirected(state, ChainEdges(state.range(0)),
                        GoalSource(state.range(0), state.range(1)),
                        state.range(2) != 0);
}
void BM_AlgresChainGoalDirected(benchmark::State& state) {
  RunAlgresGoalDirected(state, ChainEdges(state.range(0)),
                        GoalSource(state.range(0), state.range(1)),
                        state.range(2) != 0);
}
void BM_DatalogChainGoalDirected(benchmark::State& state) {
  RunDatalogGoalDirected(state, ChainEdges(state.range(0)),
                         GoalSource(state.range(0), state.range(1)),
                         state.range(2) != 0);
}
#define LOGRES_GD_CHAIN_ARGS(n) \
    ->Args({n, 0, 1})->Args({n, 0, 0})->Args({n, 1, 1})->Args({n, 100, 1})
BENCHMARK(BM_LogresChainGoalDirected)
    LOGRES_GD_CHAIN_ARGS(256)
    LOGRES_GD_CHAIN_ARGS(1024)
    LOGRES_GD_CHAIN_ARGS(4096);
BENCHMARK(BM_AlgresChainGoalDirected)
    LOGRES_GD_CHAIN_ARGS(256)
    LOGRES_GD_CHAIN_ARGS(1024)
    LOGRES_GD_CHAIN_ARGS(4096);
BENCHMARK(BM_DatalogChainGoalDirected)
    LOGRES_GD_CHAIN_ARGS(256)
    LOGRES_GD_CHAIN_ARGS(1024)
    LOGRES_GD_CHAIN_ARGS(4096);

// Scale-free: sel maps to source n-1 (latest-attached node), n/2, and 0
// (the oldest hub). Reachability through the hubs keeps even a selective
// cone large, so the win is smaller than on chains — that is the point
// of benching both. The whole-program 4096 points are omitted: the dense
// closure there dwarfs the full-sweep time budget, and the gd=1 rows
// still record the cone cost at that scale.
int64_t ScaleFreeSource(int64_t n, int64_t sel) {
  if (sel == 0) return n - 1;
  if (sel == 1) return n / 2;
  return 0;
}

void BM_LogresScaleFreeGoalDirected(benchmark::State& state) {
  RunLogresGoalDirected(state, ScaleFreeEdges(state.range(0)),
                        ScaleFreeSource(state.range(0), state.range(1)),
                        state.range(2) != 0);
}
void BM_AlgresScaleFreeGoalDirected(benchmark::State& state) {
  RunAlgresGoalDirected(state, ScaleFreeEdges(state.range(0)),
                        ScaleFreeSource(state.range(0), state.range(1)),
                        state.range(2) != 0);
}
void BM_DatalogScaleFreeGoalDirected(benchmark::State& state) {
  RunDatalogGoalDirected(state, ScaleFreeEdges(state.range(0)),
                         ScaleFreeSource(state.range(0), state.range(1)),
                         state.range(2) != 0);
}
#define LOGRES_GD_SCALEFREE_ARGS \
    LOGRES_GD_CHAIN_ARGS(256) \
    LOGRES_GD_CHAIN_ARGS(1024) \
    ->Args({4096, 0, 1})->Args({4096, 1, 1})->Args({4096, 100, 1})
BENCHMARK(BM_LogresScaleFreeGoalDirected) LOGRES_GD_SCALEFREE_ARGS;
BENCHMARK(BM_AlgresScaleFreeGoalDirected) LOGRES_GD_SCALEFREE_ARGS;
BENCHMARK(BM_DatalogScaleFreeGoalDirected) LOGRES_GD_SCALEFREE_ARGS;

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
