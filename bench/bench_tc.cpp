// B1/B2 — recursive closure scaling: the LOGRES evaluator (semi-naive and
// naive), the ALGRES-compiled backend (semi-naive and naive), and the flat
// Datalog baseline, on chains and random graphs.
//
// Expected shape (EXPERIMENTS.md): semi-naive beats naive superlinearly as
// n grows; the flat baseline beats the typed object engine by a constant
// factor on this flat workload; the ALGRES-compiled backend sits between
// them.
//
// The *ChainThreads benchmarks sweep the worker count at fixed n — the
// parallel-scaling dimension. Speedup requires physical cores; on a
// single-core host the extra threads only add partitioning overhead.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algres_backend.h"
#include "datalog/datalog.h"

namespace logres {
namespace {

using bench::ChainEdges;
using bench::EdgeDatabase;
using bench::RandomEdges;

void RunLogres(benchmark::State& state, bool semi_naive,
               std::vector<std::pair<int64_t, int64_t>> edges,
               size_t threads = 1) {
  Database db = EdgeDatabase(edges);
  EvalOptions options;
  options.semi_naive = semi_naive;
  options.num_threads = threads;
  size_t result_size = 0;
  for (auto _ : state) {
    Database fresh = EdgeDatabase(edges);
    auto apply = fresh.ApplySource(bench::kTcRules,
                                   ApplicationMode::kRIDV, options);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    result_size = fresh.edb().TuplesOf("TC").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_LogresChainSemiNaive(benchmark::State& state) {
  RunLogres(state, true, ChainEdges(state.range(0)));
}
void BM_LogresChainNaive(benchmark::State& state) {
  RunLogres(state, false, ChainEdges(state.range(0)));
}
BENCHMARK(BM_LogresChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_LogresChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_LogresRandomSemiNaive(benchmark::State& state) {
  RunLogres(state, true, RandomEdges(state.range(0), 1.5));
}
BENCHMARK(BM_LogresRandomSemiNaive)->Arg(16)->Arg(32)->Arg(64);

// Parallel scaling: chain TC at fixed n across worker counts. Args are
// {n, threads}. Results are byte-identical to the 1-thread run (see
// tests/parallel_test.cc); only the wall clock may move.
void BM_LogresChainThreads(benchmark::State& state) {
  RunLogres(state, true, ChainEdges(state.range(0)),
            static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_LogresChainThreads)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4});

void RunAlgres(benchmark::State& state, AlgresStrategy strategy,
               std::vector<std::pair<int64_t, int64_t>> edges,
               size_t threads = 1) {
  Database db = EdgeDatabase(edges);
  auto unit = Parse(bench::kTcRules);
  auto program = Typecheck(db.schema(), {}, unit->rules);
  auto backend = AlgresBackend::Compile(db.schema(), *program);
  if (!backend.ok()) {
    state.SkipWithError(backend.status().ToString().c_str());
    return;
  }
  size_t result_size = 0;
  for (auto _ : state) {
    auto out = backend->Run(db.edb(), strategy, Budget{}, threads);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    result_size = out->TuplesOf("TC").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_AlgresChainSemiNaive(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kSemiNaive, ChainEdges(state.range(0)));
}
void BM_AlgresChainNaive(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kNaive, ChainEdges(state.range(0)));
}
BENCHMARK(BM_AlgresChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);
BENCHMARK(BM_AlgresChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_AlgresChainThreads(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kSemiNaive, ChainEdges(state.range(0)),
            static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_AlgresChainThreads)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4});

void RunDatalog(benchmark::State& state, datalog::EvalStrategy strategy,
                std::vector<std::pair<int64_t, int64_t>> edges,
                size_t threads = 1) {
  namespace dl = datalog;
  dl::Program p;
  for (const auto& [a, b] : edges) {
    (void)p.AddFact("edge", {dl::Constant::Int(a), dl::Constant::Int(b)});
  }
  auto var = [](const char* name) { return dl::Term::Var(name); };
  dl::Rule r1;
  r1.head = dl::Literal{"tc", {var("X"), var("Y")}, false};
  r1.body = {dl::Literal{"edge", {var("X"), var("Y")}, false}};
  dl::Rule r2;
  r2.head = dl::Literal{"tc", {var("X"), var("Z")}, false};
  r2.body = {dl::Literal{"tc", {var("X"), var("Y")}, false},
             dl::Literal{"edge", {var("Y"), var("Z")}, false}};
  (void)p.AddRule(r1);
  (void)p.AddRule(r2);
  dl::EvalOptions options;
  options.strategy = strategy;
  options.num_threads = threads;
  size_t result_size = 0;
  for (auto _ : state) {
    auto db = Evaluate(p, options);
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    result_size = db->at("tc").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_DatalogChainSemiNaive(benchmark::State& state) {
  RunDatalog(state, datalog::EvalStrategy::kSemiNaive,
             ChainEdges(state.range(0)));
}
void BM_DatalogChainNaive(benchmark::State& state) {
  RunDatalog(state, datalog::EvalStrategy::kNaive,
             ChainEdges(state.range(0)));
}
BENCHMARK(BM_DatalogChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);
BENCHMARK(BM_DatalogChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_DatalogChainThreads(benchmark::State& state) {
  RunDatalog(state, datalog::EvalStrategy::kSemiNaive,
             ChainEdges(state.range(0)),
             static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_DatalogChainThreads)
    ->Args({1024, 1})->Args({1024, 2})->Args({1024, 4});

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
