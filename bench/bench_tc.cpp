// B1/B2 — recursive closure scaling: the LOGRES evaluator (semi-naive and
// naive), the ALGRES-compiled backend (semi-naive and naive), and the flat
// Datalog baseline, on chains and random graphs.
//
// Expected shape (EXPERIMENTS.md): semi-naive beats naive superlinearly as
// n grows; the flat baseline beats the typed object engine by a constant
// factor on this flat workload; the ALGRES-compiled backend sits between
// them.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algres_backend.h"
#include "datalog/datalog.h"

namespace logres {
namespace {

using bench::ChainEdges;
using bench::EdgeDatabase;
using bench::RandomEdges;

void RunLogres(benchmark::State& state, bool semi_naive,
               std::vector<std::pair<int64_t, int64_t>> edges) {
  Database db = EdgeDatabase(edges);
  EvalOptions options;
  options.semi_naive = semi_naive;
  size_t result_size = 0;
  for (auto _ : state) {
    Database fresh = EdgeDatabase(edges);
    auto apply = fresh.ApplySource(bench::kTcRules,
                                   ApplicationMode::kRIDV, options);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    result_size = fresh.edb().TuplesOf("TC").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_LogresChainSemiNaive(benchmark::State& state) {
  RunLogres(state, true, ChainEdges(state.range(0)));
}
void BM_LogresChainNaive(benchmark::State& state) {
  RunLogres(state, false, ChainEdges(state.range(0)));
}
BENCHMARK(BM_LogresChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_LogresChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_LogresRandomSemiNaive(benchmark::State& state) {
  RunLogres(state, true, RandomEdges(state.range(0), 1.5));
}
BENCHMARK(BM_LogresRandomSemiNaive)->Arg(16)->Arg(32)->Arg(64);

void RunAlgres(benchmark::State& state, AlgresStrategy strategy,
               std::vector<std::pair<int64_t, int64_t>> edges) {
  Database db = EdgeDatabase(edges);
  auto unit = Parse(bench::kTcRules);
  auto program = Typecheck(db.schema(), {}, unit->rules);
  auto backend = AlgresBackend::Compile(db.schema(), *program);
  if (!backend.ok()) {
    state.SkipWithError(backend.status().ToString().c_str());
    return;
  }
  size_t result_size = 0;
  for (auto _ : state) {
    auto out = backend->Run(db.edb(), strategy);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    result_size = out->TuplesOf("TC").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_AlgresChainSemiNaive(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kSemiNaive, ChainEdges(state.range(0)));
}
void BM_AlgresChainNaive(benchmark::State& state) {
  RunAlgres(state, AlgresStrategy::kNaive, ChainEdges(state.range(0)));
}
BENCHMARK(BM_AlgresChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);
BENCHMARK(BM_AlgresChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void RunDatalog(benchmark::State& state, datalog::EvalStrategy strategy,
                std::vector<std::pair<int64_t, int64_t>> edges) {
  namespace dl = datalog;
  dl::Program p;
  for (const auto& [a, b] : edges) {
    (void)p.AddFact("edge", {dl::Constant::Int(a), dl::Constant::Int(b)});
  }
  auto var = [](const char* name) { return dl::Term::Var(name); };
  dl::Rule r1;
  r1.head = dl::Literal{"tc", {var("X"), var("Y")}, false};
  r1.body = {dl::Literal{"edge", {var("X"), var("Y")}, false}};
  dl::Rule r2;
  r2.head = dl::Literal{"tc", {var("X"), var("Z")}, false};
  r2.body = {dl::Literal{"tc", {var("X"), var("Y")}, false},
             dl::Literal{"edge", {var("Y"), var("Z")}, false}};
  (void)p.AddRule(r1);
  (void)p.AddRule(r2);
  size_t result_size = 0;
  for (auto _ : state) {
    auto db = Evaluate(p, strategy);
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    result_size = db->at("tc").size();
  }
  state.counters["tc_tuples"] = static_cast<double>(result_size);
}

void BM_DatalogChainSemiNaive(benchmark::State& state) {
  RunDatalog(state, datalog::EvalStrategy::kSemiNaive,
             ChainEdges(state.range(0)));
}
void BM_DatalogChainNaive(benchmark::State& state) {
  RunDatalog(state, datalog::EvalStrategy::kNaive,
             ChainEdges(state.range(0)));
}
BENCHMARK(BM_DatalogChainSemiNaive)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);
BENCHMARK(BM_DatalogChainNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
