// B2/B8 — engine comparison on the shared fragment: the direct tuple-at-
// a-time Evaluator vs the ALGRES-compiled backend (B2), and stratified vs
// whole-program inflationary evaluation on stratified programs (B8).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/algres_backend.h"

namespace logres {
namespace {

using bench::EdgeDatabase;
using bench::ForestEdges;

// B2 — same-generation on a random forest, both engines.
struct SgSetup {
  Database db;
  CheckedProgram program;
};

SgSetup SameGeneration(int64_t n) {
  auto db = Database::Create(
      "associations PAR = (p: integer, c: integer);"
      "             SG = (a: integer, b: integer);");
  Database database = std::move(db).value();
  for (const auto& [p, c] : ForestEdges(n)) {
    (void)database.InsertTuple("PAR", Value::MakeTuple(
        {{"p", Value::Int(p)}, {"c", Value::Int(c)}}));
  }
  auto unit = Parse(
      "rules "
      "sg(a: X, b: Y) <- par(p: P, c: X), par(p: P, c: Y)."
      "sg(a: X, b: Y) <- par(p: P1, c: X), sg(a: P1, b: P2), "
      "                  par(p: P2, c: Y).");
  auto program = Typecheck(database.schema(), {}, unit->rules).value();
  return SgSetup{std::move(database), std::move(program)};
}

void BM_B2_EvaluatorSameGen(benchmark::State& state) {
  SgSetup setup = SameGeneration(state.range(0));
  for (auto _ : state) {
    OidGenerator gen;
    Evaluator evaluator(setup.db.schema(), setup.program, &gen);
    auto out = evaluator.Run(setup.db.edb());
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->TuplesOf("SG").size());
  }
}
BENCHMARK(BM_B2_EvaluatorSameGen)->Arg(8)->Arg(16)->Arg(32);

void BM_B2_AlgresSameGen(benchmark::State& state) {
  SgSetup setup = SameGeneration(state.range(0));
  auto backend =
      AlgresBackend::Compile(setup.db.schema(), setup.program).value();
  for (auto _ : state) {
    auto out = backend.Run(setup.db.edb());
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->TuplesOf("SG").size());
  }
}
BENCHMARK(BM_B2_AlgresSameGen)->Arg(8)->Arg(16)->Arg(32);

// B8 — stratified vs whole-program inflationary on a two-stratum program.
void RunStrata(benchmark::State& state, EvalMode mode) {
  int64_t n = state.range(0);
  auto db = Database::Create(
      "associations NODE = (x: integer); COV = (x: integer);"
      "             UNCOV = (x: integer); FLAG = (x: integer);");
  Database database = std::move(db).value();
  for (int64_t i = 0; i < n; ++i) {
    (void)database.InsertTuple("NODE", Value::MakeTuple(
        {{"x", Value::Int(i)}}));
    if (i % 2 == 0) {
      (void)database.InsertTuple("COV", Value::MakeTuple(
          {{"x", Value::Int(i)}}));
    }
  }
  auto unit = Parse(
      "rules "
      "uncov(x: X) <- node(x: X), not cov(x: X)."
      "flag(x: X) <- uncov(x: X), even(X).");
  auto program = Typecheck(database.schema(), {}, unit->rules).value();
  EvalOptions options;
  options.mode = mode;
  for (auto _ : state) {
    OidGenerator gen;
    Evaluator evaluator(database.schema(), program, &gen);
    auto out = evaluator.Run(database.edb(), options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->TuplesOf("UNCOV").size());
  }
}

void BM_B8_Stratified(benchmark::State& state) {
  RunStrata(state, EvalMode::kStratified);
}
void BM_B8_WholeInflationary(benchmark::State& state) {
  RunStrata(state, EvalMode::kWholeInflationary);
}
BENCHMARK(BM_B8_Stratified)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_B8_WholeInflationary)->Arg(64)->Arg(256)->Arg(1024);

// B9 (ablation) — join indexes on/off: an equi-join-heavy rule where the
// probe side grows. With indexes the inner literal is a hash probe; off,
// a scan per outer binding (quadratic).
void RunIndexAblation(benchmark::State& state, bool use_indexes) {
  int64_t n = state.range(0);
  auto db = Database::Create(
      "associations A = (k: integer, v: integer);"
      "             B = (k: integer, w: integer);"
      "             OUT = (v: integer, w: integer);");
  Database database = std::move(db).value();
  for (int64_t i = 0; i < n; ++i) {
    (void)database.InsertTuple("A", Value::MakeTuple(
        {{"k", Value::Int(i)}, {"v", Value::Int(i * 2)}}));
    (void)database.InsertTuple("B", Value::MakeTuple(
        {{"k", Value::Int(i)}, {"w", Value::Int(i * 3)}}));
  }
  auto unit = Parse(
      "rules out(v: V, w: W) <- a(k: K, v: V), b(k: K, w: W).");
  auto program = Typecheck(database.schema(), {}, unit->rules).value();
  EvalOptions options;
  options.use_indexes = use_indexes;
  for (auto _ : state) {
    OidGenerator gen;
    Evaluator evaluator(database.schema(), program, &gen);
    auto out = evaluator.Run(database.edb(), options);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->TuplesOf("OUT").size());
  }
  state.counters["rows"] = static_cast<double>(n);
}

void BM_B9_JoinWithIndexes(benchmark::State& state) {
  RunIndexAblation(state, true);
}
void BM_B9_JoinWithoutIndexes(benchmark::State& state) {
  RunIndexAblation(state, false);
}
BENCHMARK(BM_B9_JoinWithIndexes)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_B9_JoinWithoutIndexes)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
