// E7/E8/B6 — module application: the paper's update examples at scale and
// a six-way comparison of the application modes on identical modules.
//
// Expected shape: RIDI (pure query) is the cheapest; the *DV modes pay an
// extra EDB-rewrite fixpoint; RDDV additionally evaluates E_M from the
// empty database.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace logres {
namespace {

Database FlatDb(int64_t n) {
  auto db = Database::Create(
      "associations ITALIAN = (name: string); ROMAN = (name: string);"
      "             P = (d1: integer, d2: integer);"
      "             Q = (x: integer);");
  Database database = std::move(db).value();
  for (int64_t i = 0; i < n; ++i) {
    (void)database.InsertTuple("P", Value::MakeTuple(
        {{"d1", Value::Int(i)}, {"d2", Value::Int(i)}}));
  }
  return database;
}

// E7 — Example 4.1 scaled: n roman facts flow into italian via a trigger.
void BM_E7_RidvTrigger(benchmark::State& state) {
  int64_t n = state.range(0);
  std::string rules = "rules italian(X) <- roman(X).";
  for (int64_t i = 0; i < n; ++i) {
    rules += " roman(name: \"r" + std::to_string(i) + "\").";
  }
  for (auto _ : state) {
    Database db = FlatDb(0);
    auto apply = db.ApplySource(rules, ApplicationMode::kRIDV);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(db.edb().TuplesOf("ITALIAN").size());
  }
}
BENCHMARK(BM_E7_RidvTrigger)->Arg(8)->Arg(64)->Arg(256);

// E8 — Example 4.2 scaled: modify every even-keyed tuple of P.
void BM_E8_UpdateWithDeletion(benchmark::State& state) {
  int64_t n = state.range(0);
  const char* rules = R"(
    associations
      MODTABLE = (d1: integer, d2: integer);
    rules
      p(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                         not modtable(d1: X, d2: Y).
      modtable(d1: X, d2: Z) <- p(d1: X, d2: Y), even(X), Z = Y + 1,
                                not modtable(d1: X, d2: Y).
      not p(d1: X, d2: Y) <- p(d1: X, d2: Y), even(X),
                             modtable(d1: X, d2: Z), Y != Z.
  )";
  for (auto _ : state) {
    Database db = FlatDb(n);
    auto apply = db.ApplySource(rules, ApplicationMode::kRIDV);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(db.edb().TuplesOf("P").size());
  }
  state.counters["tuples"] = static_cast<double>(n);
}
BENCHMARK(BM_E8_UpdateWithDeletion)->Arg(8)->Arg(32)->Arg(128);

// B6 — the six modes applied to the same derivation module.
void RunMode(benchmark::State& state, ApplicationMode mode) {
  int64_t n = state.range(0);
  const char* rules = "rules q(x: X) <- p(d1: X, d2: X).";
  for (auto _ : state) {
    Database db = FlatDb(n);
    // RDD* modes need the rule present first.
    if (mode == ApplicationMode::kRDDI || mode == ApplicationMode::kRDDV) {
      (void)db.ApplySource(rules, ApplicationMode::kRADI);
    }
    auto apply = db.ApplySource(rules, mode);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(apply->instance.TotalFacts());
  }
}

void BM_B6_ModeRIDI(benchmark::State& state) {
  RunMode(state, ApplicationMode::kRIDI);
}
void BM_B6_ModeRADI(benchmark::State& state) {
  RunMode(state, ApplicationMode::kRADI);
}
void BM_B6_ModeRDDI(benchmark::State& state) {
  RunMode(state, ApplicationMode::kRDDI);
}
void BM_B6_ModeRIDV(benchmark::State& state) {
  RunMode(state, ApplicationMode::kRIDV);
}
void BM_B6_ModeRADV(benchmark::State& state) {
  RunMode(state, ApplicationMode::kRADV);
}
void BM_B6_ModeRDDV(benchmark::State& state) {
  RunMode(state, ApplicationMode::kRDDV);
}
BENCHMARK(BM_B6_ModeRIDI)->Arg(64)->Arg(256);
BENCHMARK(BM_B6_ModeRADI)->Arg(64)->Arg(256);
BENCHMARK(BM_B6_ModeRDDI)->Arg(64)->Arg(256);
BENCHMARK(BM_B6_ModeRIDV)->Arg(64)->Arg(256);
BENCHMARK(BM_B6_ModeRADV)->Arg(64)->Arg(256);
BENCHMARK(BM_B6_ModeRDDV)->Arg(64)->Arg(256);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
