// B11 — durability overhead: module application through the journaled
// store (append + fdatasync per commit) against the plain in-memory
// Database, plus checkpoint cost and recovery (replay) throughput as the
// journal grows.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "core/database.h"
#include "core/dump.h"
#include "storage/journaled_database.h"

namespace logres {
namespace {

const char* kSchema = R"(
  classes OBJ = (x: integer);
  associations S = (x: integer);
)";

std::string ApplyModule(int i) {
  return "rules s(x: " + std::to_string(i) +
         "). obj(self O, x: X) <- s(x: X).";
}

std::string FreshDir() {
  std::string templ = "/tmp/logres_bench_storage_XXXXXX";
  char* got = ::mkdtemp(templ.data());
  return got != nullptr ? templ : std::string("/tmp");
}

// The plain in-memory baseline: what a commit costs with no durability.
void BM_B11_ApplyPlain(benchmark::State& state) {
  int i = 0;
  auto db = Database::Create(kSchema);
  for (auto _ : state) {
    auto r = db->ApplySource(ApplyModule(i++), ApplicationMode::kRIDV);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->stats.facts);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_B11_ApplyPlain);

// The same commits through the journal: the delta is the WAL append and
// the fdatasync that acknowledges durability.
void BM_B11_ApplyJournaled(benchmark::State& state) {
  int i = 0;
  StorageOptions opts;
  opts.checkpoint_interval = 0;  // measure pure append cost
  auto store = JournaledDatabase::Create(FreshDir(), kSchema, opts);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = store->ApplySource(ApplyModule(i++), ApplicationMode::kRIDV);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->stats.facts);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_B11_ApplyJournaled);

// Checkpoint cost as the state grows: dump + synced write + rename.
void BM_B11_Checkpoint(benchmark::State& state) {
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  auto store = JournaledDatabase::Create(FreshDir(), kSchema, opts);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  for (int i = 0; i < state.range(0); ++i) {
    auto r = store->ApplySource(ApplyModule(i), ApplicationMode::kRIDV);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  for (auto _ : state) {
    Status st = store->Checkpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
}
BENCHMARK(BM_B11_Checkpoint)->Arg(16)->Arg(64)->Arg(256);

// Recovery: reopen a store whose whole state lives in the journal (no
// post-checkpoint commits are folded in), so Open replays N records.
void BM_B11_RecoverReplay(benchmark::State& state) {
  std::string dir = FreshDir();
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    for (int i = 0; i < state.range(0); ++i) {
      auto r = store->ApplySource(ApplyModule(i), ApplicationMode::kRIDV);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
  }
  for (auto _ : state) {
    auto reopened = JournaledDatabase::Open(dir, opts);
    if (!reopened.ok()) {
      state.SkipWithError(reopened.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(reopened->status().replayed_at_open);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_B11_RecoverReplay)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
