// B11 — durability overhead: module application through the journaled
// store (append + fdatasync per commit) against the plain in-memory
// Database, plus checkpoint cost and recovery (replay) throughput as the
// journal grows.
// B12 — recovery escalation: Open() against a store whose newest
// `depth` checkpoint generations are corrupt, so the ladder verifies
// and rejects each before falling back and chain-replaying the rotated
// journals (depth 0 = the healthy fast path).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "core/database.h"
#include "core/dump.h"
#include "storage/journaled_database.h"

namespace logres {
namespace {

const char* kSchema = R"(
  classes OBJ = (x: integer);
  associations S = (x: integer);
)";

std::string ApplyModule(int i) {
  return "rules s(x: " + std::to_string(i) +
         "). obj(self O, x: X) <- s(x: X).";
}

std::string FreshDir() {
  std::string templ = "/tmp/logres_bench_storage_XXXXXX";
  char* got = ::mkdtemp(templ.data());
  return got != nullptr ? templ : std::string("/tmp");
}

// The plain in-memory baseline: what a commit costs with no durability.
void BM_B11_ApplyPlain(benchmark::State& state) {
  int i = 0;
  auto db = Database::Create(kSchema);
  for (auto _ : state) {
    auto r = db->ApplySource(ApplyModule(i++), ApplicationMode::kRIDV);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->stats.facts);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_B11_ApplyPlain);

// The same commits through the journal: the delta is the WAL append and
// the fdatasync that acknowledges durability.
void BM_B11_ApplyJournaled(benchmark::State& state) {
  int i = 0;
  StorageOptions opts;
  opts.checkpoint_interval = 0;  // measure pure append cost
  auto store = JournaledDatabase::Create(FreshDir(), kSchema, opts);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = store->ApplySource(ApplyModule(i++), ApplicationMode::kRIDV);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->stats.facts);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_B11_ApplyJournaled);

// Checkpoint cost as the state grows: dump + synced write + rename.
void BM_B11_Checkpoint(benchmark::State& state) {
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  auto store = JournaledDatabase::Create(FreshDir(), kSchema, opts);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  for (int i = 0; i < state.range(0); ++i) {
    auto r = store->ApplySource(ApplyModule(i), ApplicationMode::kRIDV);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  for (auto _ : state) {
    Status st = store->Checkpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
}
BENCHMARK(BM_B11_Checkpoint)->Arg(16)->Arg(64)->Arg(256);

// Recovery: reopen a store whose whole state lives in the journal (no
// post-checkpoint commits are folded in), so Open replays N records.
void BM_B11_RecoverReplay(benchmark::State& state) {
  std::string dir = FreshDir();
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    for (int i = 0; i < state.range(0); ++i) {
      auto r = store->ApplySource(ApplyModule(i), ApplicationMode::kRIDV);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
  }
  for (auto _ : state) {
    auto reopened = JournaledDatabase::Open(dir, opts);
    if (!reopened.ok()) {
      state.SkipWithError(reopened.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(reopened->status().replayed_at_open);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_B11_RecoverReplay)->Arg(16)->Arg(64)->Arg(256);

// Recovery time vs fallback depth: the newest `depth` checkpoint
// generations are corrupted in the setup, so every Open must CRC-reject
// them, fall back to generation (HEAD - depth), and chain-replay the
// rotated journals forward. Open never mutates the rejected files
// (a fallback HEAD is not retainable), so iterations are independent.
void BM_B12_RecoverFallback(benchmark::State& state) {
  std::string dir = FreshDir();
  StorageOptions opts;
  opts.checkpoint_interval = 0;
  opts.rotated_journals_keep = 3;
  {
    auto store = JournaledDatabase::Create(dir, kSchema, opts);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    // Four generations (HEAD seq 4 + CHECKPOINT.{1,2,3}.old with their
    // rotated journals) and one live-journal tail record.
    for (int i = 0; i < 4; ++i) {
      auto r = store->ApplySource(ApplyModule(i), ApplicationMode::kRIDV);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      Status st = store->Checkpoint();
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    auto r = store->ApplySource(ApplyModule(99), ApplicationMode::kRIDV);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  const auto depth = static_cast<uint64_t>(state.range(0));
  const std::string targets[] = {dir + "/CHECKPOINT",
                                 dir + "/CHECKPOINT.3.old",
                                 dir + "/CHECKPOINT.2.old"};
  for (uint64_t d = 0; d < depth; ++d) {
    std::ifstream in(targets[d], std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
    std::ofstream out(targets[d], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  for (auto _ : state) {
    auto reopened = JournaledDatabase::Open(dir, opts);
    if (!reopened.ok()) {
      state.SkipWithError(reopened.status().ToString().c_str());
      return;
    }
    if (reopened->status().recovered_fallback_depth != depth) {
      state.SkipWithError("unexpected fallback depth");
      return;
    }
    benchmark::DoNotOptimize(reopened->status().replayed_at_open);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_B12_RecoverFallback)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
