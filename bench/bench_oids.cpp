// B3 — invented-oid throughput: object creation through rules (invention
// memoization, valuation-domain checks) versus direct host-API creation.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace logres {
namespace {

// Rule-driven invention: one object per source fact.
void BM_B3_RuleInvention(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    auto db = Database::Create(
        "classes OBJ = (x: integer); associations S = (x: integer);");
    Database database = std::move(db).value();
    for (int64_t i = 0; i < n; ++i) {
      (void)database.InsertTuple("S", Value::MakeTuple(
          {{"x", Value::Int(i)}}));
    }
    auto apply = database.ApplySource(
        "rules obj(self O, x: X) <- s(x: X).", ApplicationMode::kRIDV);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(database.edb().OidsOf("OBJ").size());
  }
  state.counters["objects_per_iter"] = static_cast<double>(n);
}
BENCHMARK(BM_B3_RuleInvention)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Host-API creation: the floor the rule engine is compared against.
void BM_B3_DirectCreation(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    auto db = Database::Create("classes OBJ = (x: integer);");
    Database database = std::move(db).value();
    for (int64_t i = 0; i < n; ++i) {
      (void)database.InsertObject("OBJ", Value::MakeTuple(
          {{"x", Value::Int(i)}}));
    }
    benchmark::DoNotOptimize(database.edb().OidsOf("OBJ").size());
  }
  state.counters["objects_per_iter"] = static_cast<double>(n);
}
BENCHMARK(BM_B3_DirectCreation)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Chained invention: objects derived from derived objects (two rule
// hops), stressing the memo across fixpoint steps.
void BM_B3_ChainedInvention(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    auto db = Database::Create(
        "classes A = (x: integer); B = (y: integer);"
        "associations S = (x: integer);");
    Database database = std::move(db).value();
    for (int64_t i = 0; i < n; ++i) {
      (void)database.InsertTuple("S", Value::MakeTuple(
          {{"x", Value::Int(i)}}));
    }
    auto apply = database.ApplySource(
        "rules a(self O, x: X) <- s(x: X)."
        "      b(self P, y: X) <- a(self O, x: X).",
        ApplicationMode::kRIDV);
    if (!apply.ok()) state.SkipWithError(apply.status().ToString().c_str());
    benchmark::DoNotOptimize(database.edb().OidsOf("B").size());
  }
}
BENCHMARK(BM_B3_ChainedInvention)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
