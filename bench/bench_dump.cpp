// B10 — state persistence: dump and load throughput as the database
// grows (objects with nested values, association tuples, shared oids).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/dump.h"

namespace logres {
namespace {

Database PopulatedDb(int64_t n) {
  auto db_result = Database::Create(R"(
    classes
      NODE = (label: string, weight: integer, next: NODE);
    associations
      EDGE = (src: NODE, dst: NODE, tags: {string});
  )");
  Database db = std::move(db_result).value();
  std::vector<Oid> nodes;
  for (int64_t i = 0; i < n; ++i) {
    Value next = nodes.empty()
                     ? Value::Nil()
                     : Value::MakeOid(nodes[static_cast<size_t>(i) %
                                            nodes.size()]);
    nodes.push_back(*db.InsertObject("NODE", Value::MakeTuple(
        {{"label", Value::String("n" + std::to_string(i))},
         {"weight", Value::Int(i)},
         {"next", next}})));
  }
  for (int64_t i = 0; i + 1 < n; ++i) {
    (void)db.InsertTuple("EDGE", Value::MakeTuple(
        {{"src", Value::MakeOid(nodes[static_cast<size_t>(i)])},
         {"dst", Value::MakeOid(nodes[static_cast<size_t>(i) + 1])},
         {"tags", Value::MakeSet({Value::String("t"),
                                  Value::String("u")})}}));
  }
  return db;
}

void BM_B10_Dump(benchmark::State& state) {
  Database db = PopulatedDb(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string dump = DumpDatabase(db);
    bytes = dump.size();
    benchmark::DoNotOptimize(dump.data());
  }
  state.counters["dump_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_B10_Dump)->Arg(16)->Arg(128)->Arg(1024);

void BM_B10_Load(benchmark::State& state) {
  Database db = PopulatedDb(state.range(0));
  std::string dump = DumpDatabase(db);
  for (auto _ : state) {
    auto loaded = LoadDatabase(dump);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(loaded->edb().TotalFacts());
  }
}
BENCHMARK(BM_B10_Load)->Arg(16)->Arg(128)->Arg(1024);

void BM_B10_RoundTripFidelity(benchmark::State& state) {
  // Round-trip plus equality check (what a checkpoint/restore path pays).
  Database db = PopulatedDb(state.range(0));
  for (auto _ : state) {
    auto loaded = LoadDatabase(DumpDatabase(db));
    if (!loaded.ok() || !(loaded->edb() == db.edb())) {
      state.SkipWithError("round trip failed");
    }
  }
}
BENCHMARK(BM_B10_RoundTripFidelity)->Arg(16)->Arg(128);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
