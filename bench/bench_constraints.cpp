// B5 — referential-constraint checking cost: native Definition-4 checking
// and the generated rule-based denials, as the number of referencing
// tuples grows. Expected shape: both linear in the referencing tuples;
// the rule-based check pays the generic join machinery.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/constraint.h"

namespace logres {
namespace {

struct Setup {
  Schema schema;
  Instance instance;
};

Setup ReferencingInstance(int64_t objects, int64_t tuples) {
  Setup setup;
  (void)setup.schema.DeclareClass(
      "PERSON", Type::Tuple({{"name", Type::String()}}));
  (void)setup.schema.DeclareAssociation(
      "LIKES", Type::Tuple({{"who", Type::Named("PERSON")},
                            {"what", Type::String()}}));
  OidGenerator gen;
  std::vector<Oid> oids;
  for (int64_t i = 0; i < objects; ++i) {
    oids.push_back(*setup.instance.CreateObject(
        setup.schema, "PERSON",
        Value::MakeTuple({{"name",
                           Value::String("p" + std::to_string(i))}}),
        &gen));
  }
  for (int64_t i = 0; i < tuples; ++i) {
    setup.instance.InsertTuple("LIKES", Value::MakeTuple(
        {{"who", Value::MakeOid(oids[static_cast<size_t>(i) % oids.size()])},
         {"what", Value::String("w" + std::to_string(i))}}));
  }
  return setup;
}

void BM_B5_NativeCheck(benchmark::State& state) {
  Setup setup = ReferencingInstance(64, state.range(0));
  for (auto _ : state) {
    auto status = setup.instance.CheckConsistent(setup.schema);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.counters["tuples"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_B5_NativeCheck)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_B5_RuleBasedCheck(benchmark::State& state) {
  Setup setup = ReferencingInstance(64, state.range(0));
  auto denials = GenerateReferentialConstraints(setup.schema).value();
  auto program = Typecheck(setup.schema, {}, denials).value();
  OidGenerator gen;
  for (auto _ : state) {
    Evaluator evaluator(setup.schema, program, &gen);
    auto run = evaluator.Run(setup.instance);
    if (!run.ok()) state.SkipWithError(run.status().ToString().c_str());
    benchmark::DoNotOptimize(run->TotalFacts());
  }
  state.counters["tuples"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_B5_RuleBasedCheck)->Arg(64)->Arg(256)->Arg(1024);

// The rejection path: module application that violates integrity and
// rolls back.
void BM_B5_RejectedUpdate(benchmark::State& state) {
  int64_t n = state.range(0);
  for (auto _ : state) {
    auto db = Database::Create(
        "classes PERSON = (name: string);"
        "associations LIKES = (who: PERSON, what: string);");
    Database database = std::move(db).value();
    auto ann = database.InsertObject("PERSON", Value::MakeTuple(
        {{"name", Value::String("ann")}}));
    for (int64_t i = 0; i < n; ++i) {
      (void)database.InsertTuple("LIKES", Value::MakeTuple(
          {{"who", Value::MakeOid(*ann)},
           {"what", Value::String("w" + std::to_string(i))}}));
    }
    // Deleting the referenced person is rejected.
    auto result = database.ApplySource(
        "rules not person(self X) <- person(self X, name: \"ann\").",
        ApplicationMode::kRIDV);
    if (result.ok()) state.SkipWithError("expected rejection");
    benchmark::DoNotOptimize(database.edb().TotalFacts());
  }
}
BENCHMARK(BM_B5_RejectedUpdate)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace logres

BENCHMARK_MAIN();
