// Shared workload generators for the LOGRES benchmark suite.
//
// The paper reports no measured evaluation (its "evaluation" is the set
// of worked examples), so these generators define the synthetic workloads
// of EXPERIMENTS.md: chains, random graphs and forests for recursive
// closure, and the football/university schemas of Examples 2.1/3.1 at
// scale.

#ifndef LOGRES_BENCH_BENCH_UTIL_H_
#define LOGRES_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/database.h"

namespace logres::bench {

/// \brief Deterministic PRNG so benchmark inputs are reproducible.
inline std::mt19937_64 Rng(uint64_t seed = 0xC0FFEE) {
  return std::mt19937_64(seed);
}

/// \brief Edges of a simple chain 0 -> 1 -> ... -> n-1.
inline std::vector<std::pair<int64_t, int64_t>> ChainEdges(int64_t n) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return edges;
}

/// \brief A random graph with n nodes and roughly `factor * n` edges.
inline std::vector<std::pair<int64_t, int64_t>> RandomEdges(
    int64_t n, double factor, uint64_t seed = 0xC0FFEE) {
  auto rng = Rng(seed);
  std::uniform_int_distribution<int64_t> node(0, n - 1);
  std::vector<std::pair<int64_t, int64_t>> edges;
  auto m = static_cast<int64_t>(factor * static_cast<double>(n));
  for (int64_t i = 0; i < m; ++i) {
    edges.emplace_back(node(rng), node(rng));
  }
  return edges;
}

/// \brief A scale-free graph grown by preferential attachment
/// (Barabási–Albert): after an (m+1)-clique seed, each new node i attaches
/// to m existing nodes picked with probability proportional to their
/// degree, implemented with the classic repeated-endpoint list (every node
/// appears in `endpoints` once per incident edge, so a uniform draw from
/// the list is a degree-weighted draw). Edges always point old -> new, so
/// the graph is a DAG and its closure is finite. The hubs this growth
/// produces mean transitive closure derives the same pair along many
/// distinct paths — the duplicate-heavy regime the value interner targets.
inline std::vector<std::pair<int64_t, int64_t>> ScaleFreeEdges(
    int64_t n, int64_t m = 2, uint64_t seed = 0xC0FFEE) {
  auto rng = Rng(seed);
  std::vector<std::pair<int64_t, int64_t>> edges;
  std::vector<int64_t> endpoints;
  const int64_t clique = std::min(m + 1, n);
  for (int64_t i = 0; i < clique; ++i) {
    for (int64_t j = 0; j < i; ++j) {
      edges.emplace_back(j, i);
      endpoints.push_back(j);
      endpoints.push_back(i);
    }
  }
  for (int64_t i = clique; i < n; ++i) {
    for (int64_t k = 0; k < m; ++k) {
      std::uniform_int_distribution<size_t> pick(0, endpoints.size() - 1);
      const int64_t target = endpoints[pick(rng)];
      edges.emplace_back(target, i);
      endpoints.push_back(target);
      endpoints.push_back(i);
    }
  }
  return edges;
}

/// \brief A random forest: each node i > 0 gets a parent < i.
inline std::vector<std::pair<int64_t, int64_t>> ForestEdges(
    int64_t n, uint64_t seed = 0xC0FFEE) {
  auto rng = Rng(seed);
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 1; i < n; ++i) {
    std::uniform_int_distribution<int64_t> parent(0, i - 1);
    edges.emplace_back(parent(rng), i);
  }
  return edges;
}

/// \brief Builds a flat edge database (E/TC associations) seeded with the
/// given edges.
inline Database EdgeDatabase(
    const std::vector<std::pair<int64_t, int64_t>>& edges) {
  auto db = Database::Create(
      "associations E = (a: integer, b: integer);"
      "             TC = (a: integer, b: integer);");
  for (const auto& [a, b] : edges) {
    (void)db->InsertTuple("E", Value::MakeTuple(
        {{"a", Value::Int(a)}, {"b", Value::Int(b)}}));
  }
  return std::move(db).value();
}

inline const char* kTcRules =
    "rules "
    "tc(a: X, b: Y) <- e(a: X, b: Y)."
    "tc(a: X, b: Z) <- tc(a: X, b: Y), e(a: Y, b: Z).";

/// \brief The football schema of Example 2.1 populated with n teams of
/// p players each.
inline Database FootballDatabase(int64_t teams, int64_t players) {
  auto db = Database::Create(R"(
    domains
      NAME = string;
    classes
      PLAYER = (name: string, roles: {integer});
      TEAM = (team_name: string, base_players: <PLAYER>,
              substitutes: {PLAYER});
    associations
      GAME = (h_team: TEAM, g_team: TEAM, date: string,
              score: (home: integer, guest: integer));
  )");
  Database database = std::move(db).value();
  std::vector<Oid> team_oids;
  for (int64_t t = 0; t < teams; ++t) {
    std::vector<Value> base;
    for (int64_t p = 0; p < players; ++p) {
      auto oid = database.InsertObject("PLAYER", Value::MakeTuple(
          {{"name", Value::String("p" + std::to_string(t * players + p))},
           {"roles", Value::MakeSet({Value::Int(p % 11)})}}));
      base.push_back(Value::MakeOid(*oid));
    }
    auto team = database.InsertObject("TEAM", Value::MakeTuple(
        {{"team_name", Value::String("t" + std::to_string(t))},
         {"base_players", Value::MakeSequence(std::move(base))},
         {"substitutes", Value::MakeSet({})}}));
    team_oids.push_back(*team);
  }
  for (size_t t = 0; t + 1 < team_oids.size(); ++t) {
    (void)database.InsertTuple("GAME", Value::MakeTuple(
        {{"h_team", Value::MakeOid(team_oids[t])},
         {"g_team", Value::MakeOid(team_oids[t + 1])},
         {"date", Value::String("1990-05-05")},
         {"score", Value::MakeTuple({{"home", Value::Int(2)},
                                     {"guest", Value::Int(1)}})}}));
  }
  return database;
}

}  // namespace logres::bench

#endif  // LOGRES_BENCH_BENCH_UTIL_H_
