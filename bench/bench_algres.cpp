// B7 — ALGRES algebra primitives: select / project / join / nest / unnest
// / closure on synthetic relations, plus the immutable-value design-point
// ablation (O(1) shared copies vs deep rebuilds).

#include <benchmark/benchmark.h>

#include "algres/algebra.h"
#include "bench_util.h"

namespace logres::algres {
namespace {

Relation Numbers(int64_t n) {
  Relation r({"x", "y"});
  for (int64_t i = 0; i < n; ++i) {
    (void)r.Insert({Value::Int(i), Value::Int(i % 10)});
  }
  return r;
}

void BM_B7_Select(benchmark::State& state) {
  Relation r = Numbers(state.range(0));
  for (auto _ : state) {
    auto out = Select(r, [](const Row& row) -> Result<bool> {
      return row[1] == Value::Int(3);
    });
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_B7_Select)->Arg(256)->Arg(1024)->Arg(4096);

void BM_B7_Project(benchmark::State& state) {
  Relation r = Numbers(state.range(0));
  for (auto _ : state) {
    auto out = Project(r, {"y"});
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_B7_Project)->Arg(256)->Arg(1024)->Arg(4096);

void BM_B7_EquiJoin(benchmark::State& state) {
  Relation left = Numbers(state.range(0));
  Relation right =
      Rename(Numbers(state.range(0)), {{"x", "y2"}, {"y", "z"}}).value();
  for (auto _ : state) {
    auto out = EquiJoin(left, right, {{"y", "z"}});
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_B7_EquiJoin)->Arg(64)->Arg(256)->Arg(1024);

void BM_B7_NestUnnest(benchmark::State& state) {
  Relation r = Numbers(state.range(0));
  for (auto _ : state) {
    auto nested = Nest(r, {"x"}, "xs").value();
    auto flat = Unnest(nested, "xs").value();
    benchmark::DoNotOptimize(flat.size());
  }
}
BENCHMARK(BM_B7_NestUnnest)->Arg(256)->Arg(1024)->Arg(4096);

void BM_B7_Aggregate(benchmark::State& state) {
  Relation r = Numbers(state.range(0));
  for (auto _ : state) {
    auto out = Aggregate(r, {"y"}, AggregateKind::kSum, "x", "total");
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_B7_Aggregate)->Arg(256)->Arg(1024)->Arg(4096);

void BM_B7_ClosureTc(benchmark::State& state) {
  // Transitive closure through the liberal closure operator.
  auto edges = logres::bench::ChainEdges(state.range(0));
  Relation e({"par", "chil"});
  for (const auto& [a, b] : edges) {
    (void)e.Insert({Value::Int(a), Value::Int(b)});
  }
  ClosureStep step = [&e](const Relation& current) -> Result<Relation> {
    LOGRES_ASSIGN_OR_RETURN(
        Relation hop, Rename(e, {{"par", "mid"}, {"chil", "chil2"}}));
    LOGRES_ASSIGN_OR_RETURN(Relation renamed,
                            Rename(current, {{"chil", "mid"}}));
    LOGRES_ASSIGN_OR_RETURN(Relation joined, NaturalJoin(renamed, hop));
    LOGRES_ASSIGN_OR_RETURN(Relation projected,
                            Project(joined, {"par", "chil2"}));
    return Rename(projected, {{"chil2", "chil"}});
  };
  for (auto _ : state) {
    auto semi = SemiNaiveClosure(e, step);
    if (!semi.ok()) state.SkipWithError(semi.status().ToString().c_str());
    benchmark::DoNotOptimize(semi->size());
  }
}
BENCHMARK(BM_B7_ClosureTc)->Arg(16)->Arg(64)->Arg(128);

// Ablation: immutable shared values make copies O(1). Compare copying a
// deeply nested value against rebuilding it from scratch.
Value DeepValue(int64_t depth) {
  Value v = Value::Int(0);
  for (int64_t i = 0; i < depth; ++i) {
    v = Value::MakeTuple({{"level", Value::Int(i)},
                          {"nested", v},
                          {"tags", Value::MakeSet({Value::Int(i),
                                                   Value::Int(i + 1)})}});
  }
  return v;
}

void BM_B7_AblationSharedCopy(benchmark::State& state) {
  Value v = DeepValue(state.range(0));
  for (auto _ : state) {
    Value copy = v;  // O(1): bumps a refcount
    benchmark::DoNotOptimize(copy.kind());
  }
}
BENCHMARK(BM_B7_AblationSharedCopy)->Arg(8)->Arg(64)->Arg(512);

Value Rebuild(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kTuple: {
      std::vector<std::pair<std::string, Value>> fields;
      for (const auto& [l, f] : v.tuple_fields()) {
        fields.emplace_back(l, Rebuild(f));
      }
      return Value::MakeTuple(std::move(fields));
    }
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence: {
      std::vector<Value> elems;
      for (const Value& e : v.elements()) elems.push_back(Rebuild(e));
      if (v.kind() == ValueKind::kSet) return Value::MakeSet(elems);
      if (v.kind() == ValueKind::kMultiset) {
        return Value::MakeMultiset(elems);
      }
      return Value::MakeSequence(elems);
    }
    default:
      return v;
  }
}

void BM_B7_AblationDeepRebuild(benchmark::State& state) {
  Value v = DeepValue(state.range(0));
  for (auto _ : state) {
    Value copy = Rebuild(v);  // what a non-shared design would pay
    benchmark::DoNotOptimize(copy.kind());
  }
}
BENCHMARK(BM_B7_AblationDeepRebuild)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace logres::algres

BENCHMARK_MAIN();
