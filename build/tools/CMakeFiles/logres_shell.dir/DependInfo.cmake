
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/logres_shell.cpp" "tools/CMakeFiles/logres_shell.dir/logres_shell.cpp.o" "gcc" "tools/CMakeFiles/logres_shell.dir/logres_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/logres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algres/CMakeFiles/logres_algres.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/logres_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
