file(REMOVE_RECURSE
  "CMakeFiles/logres_shell.dir/logres_shell.cpp.o"
  "CMakeFiles/logres_shell.dir/logres_shell.cpp.o.d"
  "logres_shell"
  "logres_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logres_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
