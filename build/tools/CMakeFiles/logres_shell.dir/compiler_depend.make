# Empty compiler generated dependencies file for logres_shell.
# This may be replaced when dependencies are built.
