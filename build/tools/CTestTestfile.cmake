# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shell_demo "/root/repo/build/tools/logres_shell" "/root/repo/examples/data/shell_demo.script")
set_tests_properties(shell_demo PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
