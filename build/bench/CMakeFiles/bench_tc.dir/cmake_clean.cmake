file(REMOVE_RECURSE
  "CMakeFiles/bench_tc.dir/bench_tc.cpp.o"
  "CMakeFiles/bench_tc.dir/bench_tc.cpp.o.d"
  "bench_tc"
  "bench_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
