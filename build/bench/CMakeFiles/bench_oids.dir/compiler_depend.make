# Empty compiler generated dependencies file for bench_oids.
# This may be replaced when dependencies are built.
