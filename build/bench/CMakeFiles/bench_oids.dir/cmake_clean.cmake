file(REMOVE_RECURSE
  "CMakeFiles/bench_oids.dir/bench_oids.cpp.o"
  "CMakeFiles/bench_oids.dir/bench_oids.cpp.o.d"
  "bench_oids"
  "bench_oids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
