# Empty dependencies file for bench_modules.
# This may be replaced when dependencies are built.
