file(REMOVE_RECURSE
  "CMakeFiles/bench_modules.dir/bench_modules.cpp.o"
  "CMakeFiles/bench_modules.dir/bench_modules.cpp.o.d"
  "bench_modules"
  "bench_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
