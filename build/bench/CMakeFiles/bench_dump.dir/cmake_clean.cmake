file(REMOVE_RECURSE
  "CMakeFiles/bench_dump.dir/bench_dump.cpp.o"
  "CMakeFiles/bench_dump.dir/bench_dump.cpp.o.d"
  "bench_dump"
  "bench_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
