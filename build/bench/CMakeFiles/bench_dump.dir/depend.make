# Empty dependencies file for bench_dump.
# This may be replaced when dependencies are built.
