file(REMOVE_RECURSE
  "CMakeFiles/bench_algres.dir/bench_algres.cpp.o"
  "CMakeFiles/bench_algres.dir/bench_algres.cpp.o.d"
  "bench_algres"
  "bench_algres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
