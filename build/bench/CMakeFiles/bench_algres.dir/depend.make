# Empty dependencies file for bench_algres.
# This may be replaced when dependencies are built.
