file(REMOVE_RECURSE
  "CMakeFiles/bench_schema.dir/bench_schema.cpp.o"
  "CMakeFiles/bench_schema.dir/bench_schema.cpp.o.d"
  "bench_schema"
  "bench_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
