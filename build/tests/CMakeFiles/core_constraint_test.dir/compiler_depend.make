# Empty compiler generated dependencies file for core_constraint_test.
# This may be replaced when dependencies are built.
