file(REMOVE_RECURSE
  "CMakeFiles/core_constraint_test.dir/core_constraint_test.cc.o"
  "CMakeFiles/core_constraint_test.dir/core_constraint_test.cc.o.d"
  "core_constraint_test"
  "core_constraint_test.pdb"
  "core_constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
