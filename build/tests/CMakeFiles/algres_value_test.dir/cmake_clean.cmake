file(REMOVE_RECURSE
  "CMakeFiles/algres_value_test.dir/algres_value_test.cc.o"
  "CMakeFiles/algres_value_test.dir/algres_value_test.cc.o.d"
  "algres_value_test"
  "algres_value_test.pdb"
  "algres_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algres_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
