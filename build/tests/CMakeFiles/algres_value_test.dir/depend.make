# Empty dependencies file for algres_value_test.
# This may be replaced when dependencies are built.
