file(REMOVE_RECURSE
  "CMakeFiles/core_collections_test.dir/core_collections_test.cc.o"
  "CMakeFiles/core_collections_test.dir/core_collections_test.cc.o.d"
  "core_collections_test"
  "core_collections_test.pdb"
  "core_collections_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_collections_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
