# Empty dependencies file for core_collections_test.
# This may be replaced when dependencies are built.
