file(REMOVE_RECURSE
  "CMakeFiles/core_module_semantics_test.dir/core_module_semantics_test.cc.o"
  "CMakeFiles/core_module_semantics_test.dir/core_module_semantics_test.cc.o.d"
  "core_module_semantics_test"
  "core_module_semantics_test.pdb"
  "core_module_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_module_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
