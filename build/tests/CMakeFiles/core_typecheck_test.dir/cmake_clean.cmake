file(REMOVE_RECURSE
  "CMakeFiles/core_typecheck_test.dir/core_typecheck_test.cc.o"
  "CMakeFiles/core_typecheck_test.dir/core_typecheck_test.cc.o.d"
  "core_typecheck_test"
  "core_typecheck_test.pdb"
  "core_typecheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_typecheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
