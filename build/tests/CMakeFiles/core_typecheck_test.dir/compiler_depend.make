# Empty compiler generated dependencies file for core_typecheck_test.
# This may be replaced when dependencies are built.
