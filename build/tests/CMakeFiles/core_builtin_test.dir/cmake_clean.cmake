file(REMOVE_RECURSE
  "CMakeFiles/core_builtin_test.dir/core_builtin_test.cc.o"
  "CMakeFiles/core_builtin_test.dir/core_builtin_test.cc.o.d"
  "core_builtin_test"
  "core_builtin_test.pdb"
  "core_builtin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_builtin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
