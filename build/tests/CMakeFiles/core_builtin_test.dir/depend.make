# Empty dependencies file for core_builtin_test.
# This may be replaced when dependencies are built.
