file(REMOVE_RECURSE
  "CMakeFiles/core_mutual_recursion_test.dir/core_mutual_recursion_test.cc.o"
  "CMakeFiles/core_mutual_recursion_test.dir/core_mutual_recursion_test.cc.o.d"
  "core_mutual_recursion_test"
  "core_mutual_recursion_test.pdb"
  "core_mutual_recursion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mutual_recursion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
