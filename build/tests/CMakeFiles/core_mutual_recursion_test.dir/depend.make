# Empty dependencies file for core_mutual_recursion_test.
# This may be replaced when dependencies are built.
