# Empty dependencies file for core_semantics_edge_test.
# This may be replaced when dependencies are built.
