# Empty compiler generated dependencies file for core_type_test.
# This may be replaced when dependencies are built.
