# Empty dependencies file for core_parser_test.
# This may be replaced when dependencies are built.
