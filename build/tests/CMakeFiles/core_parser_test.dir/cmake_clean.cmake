file(REMOVE_RECURSE
  "CMakeFiles/core_parser_test.dir/core_parser_test.cc.o"
  "CMakeFiles/core_parser_test.dir/core_parser_test.cc.o.d"
  "core_parser_test"
  "core_parser_test.pdb"
  "core_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
