# Empty dependencies file for core_dump_test.
# This may be replaced when dependencies are built.
