file(REMOVE_RECURSE
  "CMakeFiles/core_dump_test.dir/core_dump_test.cc.o"
  "CMakeFiles/core_dump_test.dir/core_dump_test.cc.o.d"
  "core_dump_test"
  "core_dump_test.pdb"
  "core_dump_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
