file(REMOVE_RECURSE
  "CMakeFiles/core_database_test.dir/core_database_test.cc.o"
  "CMakeFiles/core_database_test.dir/core_database_test.cc.o.d"
  "core_database_test"
  "core_database_test.pdb"
  "core_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
