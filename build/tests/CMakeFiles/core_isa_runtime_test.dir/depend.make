# Empty dependencies file for core_isa_runtime_test.
# This may be replaced when dependencies are built.
