file(REMOVE_RECURSE
  "CMakeFiles/core_isa_runtime_test.dir/core_isa_runtime_test.cc.o"
  "CMakeFiles/core_isa_runtime_test.dir/core_isa_runtime_test.cc.o.d"
  "core_isa_runtime_test"
  "core_isa_runtime_test.pdb"
  "core_isa_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_isa_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
