file(REMOVE_RECURSE
  "CMakeFiles/core_backend_test.dir/core_backend_test.cc.o"
  "CMakeFiles/core_backend_test.dir/core_backend_test.cc.o.d"
  "core_backend_test"
  "core_backend_test.pdb"
  "core_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
