# Empty dependencies file for core_backend_test.
# This may be replaced when dependencies are built.
