file(REMOVE_RECURSE
  "CMakeFiles/algres_closure_property_test.dir/algres_closure_property_test.cc.o"
  "CMakeFiles/algres_closure_property_test.dir/algres_closure_property_test.cc.o.d"
  "algres_closure_property_test"
  "algres_closure_property_test.pdb"
  "algres_closure_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algres_closure_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
