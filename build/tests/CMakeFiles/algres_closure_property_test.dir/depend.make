# Empty dependencies file for algres_closure_property_test.
# This may be replaced when dependencies are built.
