file(REMOVE_RECURSE
  "CMakeFiles/core_module_test.dir/core_module_test.cc.o"
  "CMakeFiles/core_module_test.dir/core_module_test.cc.o.d"
  "core_module_test"
  "core_module_test.pdb"
  "core_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
