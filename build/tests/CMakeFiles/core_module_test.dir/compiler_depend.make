# Empty compiler generated dependencies file for core_module_test.
# This may be replaced when dependencies are built.
