file(REMOVE_RECURSE
  "CMakeFiles/algres_algebra_test.dir/algres_algebra_test.cc.o"
  "CMakeFiles/algres_algebra_test.dir/algres_algebra_test.cc.o.d"
  "algres_algebra_test"
  "algres_algebra_test.pdb"
  "algres_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algres_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
