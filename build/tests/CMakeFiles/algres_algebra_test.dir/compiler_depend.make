# Empty compiler generated dependencies file for algres_algebra_test.
# This may be replaced when dependencies are built.
