file(REMOVE_RECURSE
  "CMakeFiles/core_instance_test.dir/core_instance_test.cc.o"
  "CMakeFiles/core_instance_test.dir/core_instance_test.cc.o.d"
  "core_instance_test"
  "core_instance_test.pdb"
  "core_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
