file(REMOVE_RECURSE
  "CMakeFiles/algres_relation_test.dir/algres_relation_test.cc.o"
  "CMakeFiles/algres_relation_test.dir/algres_relation_test.cc.o.d"
  "algres_relation_test"
  "algres_relation_test.pdb"
  "algres_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algres_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
