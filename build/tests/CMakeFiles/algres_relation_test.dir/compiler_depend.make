# Empty compiler generated dependencies file for algres_relation_test.
# This may be replaced when dependencies are built.
