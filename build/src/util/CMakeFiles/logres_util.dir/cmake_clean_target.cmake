file(REMOVE_RECURSE
  "liblogres_util.a"
)
