file(REMOVE_RECURSE
  "CMakeFiles/logres_util.dir/status.cc.o"
  "CMakeFiles/logres_util.dir/status.cc.o.d"
  "CMakeFiles/logres_util.dir/string_util.cc.o"
  "CMakeFiles/logres_util.dir/string_util.cc.o.d"
  "liblogres_util.a"
  "liblogres_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logres_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
