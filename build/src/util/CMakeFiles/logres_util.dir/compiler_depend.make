# Empty compiler generated dependencies file for logres_util.
# This may be replaced when dependencies are built.
