file(REMOVE_RECURSE
  "CMakeFiles/logres_core.dir/algres_backend.cc.o"
  "CMakeFiles/logres_core.dir/algres_backend.cc.o.d"
  "CMakeFiles/logres_core.dir/ast.cc.o"
  "CMakeFiles/logres_core.dir/ast.cc.o.d"
  "CMakeFiles/logres_core.dir/builtin.cc.o"
  "CMakeFiles/logres_core.dir/builtin.cc.o.d"
  "CMakeFiles/logres_core.dir/constraint.cc.o"
  "CMakeFiles/logres_core.dir/constraint.cc.o.d"
  "CMakeFiles/logres_core.dir/database.cc.o"
  "CMakeFiles/logres_core.dir/database.cc.o.d"
  "CMakeFiles/logres_core.dir/dump.cc.o"
  "CMakeFiles/logres_core.dir/dump.cc.o.d"
  "CMakeFiles/logres_core.dir/eval.cc.o"
  "CMakeFiles/logres_core.dir/eval.cc.o.d"
  "CMakeFiles/logres_core.dir/explain.cc.o"
  "CMakeFiles/logres_core.dir/explain.cc.o.d"
  "CMakeFiles/logres_core.dir/instance.cc.o"
  "CMakeFiles/logres_core.dir/instance.cc.o.d"
  "CMakeFiles/logres_core.dir/lexer.cc.o"
  "CMakeFiles/logres_core.dir/lexer.cc.o.d"
  "CMakeFiles/logres_core.dir/module.cc.o"
  "CMakeFiles/logres_core.dir/module.cc.o.d"
  "CMakeFiles/logres_core.dir/parser.cc.o"
  "CMakeFiles/logres_core.dir/parser.cc.o.d"
  "CMakeFiles/logres_core.dir/schema.cc.o"
  "CMakeFiles/logres_core.dir/schema.cc.o.d"
  "CMakeFiles/logres_core.dir/type.cc.o"
  "CMakeFiles/logres_core.dir/type.cc.o.d"
  "CMakeFiles/logres_core.dir/typecheck.cc.o"
  "CMakeFiles/logres_core.dir/typecheck.cc.o.d"
  "liblogres_core.a"
  "liblogres_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logres_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
