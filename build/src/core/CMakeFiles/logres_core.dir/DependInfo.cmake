
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algres_backend.cc" "src/core/CMakeFiles/logres_core.dir/algres_backend.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/algres_backend.cc.o.d"
  "/root/repo/src/core/ast.cc" "src/core/CMakeFiles/logres_core.dir/ast.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/ast.cc.o.d"
  "/root/repo/src/core/builtin.cc" "src/core/CMakeFiles/logres_core.dir/builtin.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/builtin.cc.o.d"
  "/root/repo/src/core/constraint.cc" "src/core/CMakeFiles/logres_core.dir/constraint.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/constraint.cc.o.d"
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/logres_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/database.cc.o.d"
  "/root/repo/src/core/dump.cc" "src/core/CMakeFiles/logres_core.dir/dump.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/dump.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/core/CMakeFiles/logres_core.dir/eval.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/eval.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/logres_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/explain.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/core/CMakeFiles/logres_core.dir/instance.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/instance.cc.o.d"
  "/root/repo/src/core/lexer.cc" "src/core/CMakeFiles/logres_core.dir/lexer.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/lexer.cc.o.d"
  "/root/repo/src/core/module.cc" "src/core/CMakeFiles/logres_core.dir/module.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/module.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/core/CMakeFiles/logres_core.dir/parser.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/parser.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/logres_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/schema.cc.o.d"
  "/root/repo/src/core/type.cc" "src/core/CMakeFiles/logres_core.dir/type.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/type.cc.o.d"
  "/root/repo/src/core/typecheck.cc" "src/core/CMakeFiles/logres_core.dir/typecheck.cc.o" "gcc" "src/core/CMakeFiles/logres_core.dir/typecheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/algres/CMakeFiles/logres_algres.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
