# Empty dependencies file for logres_core.
# This may be replaced when dependencies are built.
