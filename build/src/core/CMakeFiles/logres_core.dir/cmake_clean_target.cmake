file(REMOVE_RECURSE
  "liblogres_core.a"
)
