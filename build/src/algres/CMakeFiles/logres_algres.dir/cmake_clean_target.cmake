file(REMOVE_RECURSE
  "liblogres_algres.a"
)
