# Empty dependencies file for logres_algres.
# This may be replaced when dependencies are built.
