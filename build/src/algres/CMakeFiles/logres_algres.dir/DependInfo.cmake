
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algres/algebra.cc" "src/algres/CMakeFiles/logres_algres.dir/algebra.cc.o" "gcc" "src/algres/CMakeFiles/logres_algres.dir/algebra.cc.o.d"
  "/root/repo/src/algres/relation.cc" "src/algres/CMakeFiles/logres_algres.dir/relation.cc.o" "gcc" "src/algres/CMakeFiles/logres_algres.dir/relation.cc.o.d"
  "/root/repo/src/algres/value.cc" "src/algres/CMakeFiles/logres_algres.dir/value.cc.o" "gcc" "src/algres/CMakeFiles/logres_algres.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
