file(REMOVE_RECURSE
  "CMakeFiles/logres_algres.dir/algebra.cc.o"
  "CMakeFiles/logres_algres.dir/algebra.cc.o.d"
  "CMakeFiles/logres_algres.dir/relation.cc.o"
  "CMakeFiles/logres_algres.dir/relation.cc.o.d"
  "CMakeFiles/logres_algres.dir/value.cc.o"
  "CMakeFiles/logres_algres.dir/value.cc.o.d"
  "liblogres_algres.a"
  "liblogres_algres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logres_algres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
