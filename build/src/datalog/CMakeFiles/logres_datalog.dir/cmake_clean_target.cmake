file(REMOVE_RECURSE
  "liblogres_datalog.a"
)
