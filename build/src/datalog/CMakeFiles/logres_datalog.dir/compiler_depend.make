# Empty compiler generated dependencies file for logres_datalog.
# This may be replaced when dependencies are built.
