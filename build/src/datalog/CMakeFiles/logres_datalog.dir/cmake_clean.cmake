file(REMOVE_RECURSE
  "CMakeFiles/logres_datalog.dir/datalog.cc.o"
  "CMakeFiles/logres_datalog.dir/datalog.cc.o.d"
  "liblogres_datalog.a"
  "liblogres_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logres_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
