file(REMOVE_RECURSE
  "CMakeFiles/updates.dir/updates.cpp.o"
  "CMakeFiles/updates.dir/updates.cpp.o.d"
  "updates"
  "updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
