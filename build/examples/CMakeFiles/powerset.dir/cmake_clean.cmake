file(REMOVE_RECURSE
  "CMakeFiles/powerset.dir/powerset.cpp.o"
  "CMakeFiles/powerset.dir/powerset.cpp.o.d"
  "powerset"
  "powerset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
