# Empty dependencies file for powerset.
# This may be replaced when dependencies are built.
