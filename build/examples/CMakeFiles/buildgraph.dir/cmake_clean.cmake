file(REMOVE_RECURSE
  "CMakeFiles/buildgraph.dir/buildgraph.cpp.o"
  "CMakeFiles/buildgraph.dir/buildgraph.cpp.o.d"
  "buildgraph"
  "buildgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buildgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
