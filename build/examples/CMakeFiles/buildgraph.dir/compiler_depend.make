# Empty compiler generated dependencies file for buildgraph.
# This may be replaced when dependencies are built.
