# Empty dependencies file for genealogy.
# This may be replaced when dependencies are built.
