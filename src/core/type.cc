#include "core/type.h"

#include "util/string_util.h"

namespace logres {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt: return "integer";
    case TypeKind::kString: return "string";
    case TypeKind::kBool: return "bool";
    case TypeKind::kReal: return "real";
    case TypeKind::kNamed: return "named";
    case TypeKind::kTuple: return "tuple";
    case TypeKind::kSet: return "set";
    case TypeKind::kMultiset: return "multiset";
    case TypeKind::kSequence: return "sequence";
  }
  return "unknown";
}

struct Type::Rep {
  TypeKind kind = TypeKind::kInt;
  std::string name;
  std::vector<std::pair<std::string, Type>> fields;
  std::vector<Type> element;  // 0 or 1 entries (indirection for recursion)
};

namespace {

const std::shared_ptr<const Type::Rep>& LeafRep(TypeKind kind) {
  static const auto kInt = std::make_shared<const Type::Rep>(
      Type::Rep{TypeKind::kInt, {}, {}, {}});
  static const auto kString = std::make_shared<const Type::Rep>(
      Type::Rep{TypeKind::kString, {}, {}, {}});
  static const auto kBool = std::make_shared<const Type::Rep>(
      Type::Rep{TypeKind::kBool, {}, {}, {}});
  static const auto kReal = std::make_shared<const Type::Rep>(
      Type::Rep{TypeKind::kReal, {}, {}, {}});
  switch (kind) {
    case TypeKind::kString: return kString;
    case TypeKind::kBool: return kBool;
    case TypeKind::kReal: return kReal;
    default: return kInt;
  }
}

}  // namespace

Type::Type() : rep_(LeafRep(TypeKind::kInt)) {}

Type Type::Int() { return Type(LeafRep(TypeKind::kInt)); }
Type Type::String() { return Type(LeafRep(TypeKind::kString)); }
Type Type::Bool() { return Type(LeafRep(TypeKind::kBool)); }
Type Type::Real() { return Type(LeafRep(TypeKind::kReal)); }

Type Type::Named(std::string name) {
  auto rep = std::make_shared<Type::Rep>();
  rep->kind = TypeKind::kNamed;
  rep->name = std::move(name);
  return Type(std::move(rep));
}

Type Type::Tuple(std::vector<std::pair<std::string, Type>> fields) {
  auto rep = std::make_shared<Type::Rep>();
  rep->kind = TypeKind::kTuple;
  rep->fields = std::move(fields);
  return Type(std::move(rep));
}

Type Type::Set(Type element) {
  auto rep = std::make_shared<Type::Rep>();
  rep->kind = TypeKind::kSet;
  rep->element.push_back(std::move(element));
  return Type(std::move(rep));
}

Type Type::Multiset(Type element) {
  auto rep = std::make_shared<Type::Rep>();
  rep->kind = TypeKind::kMultiset;
  rep->element.push_back(std::move(element));
  return Type(std::move(rep));
}

Type Type::Sequence(Type element) {
  auto rep = std::make_shared<Type::Rep>();
  rep->kind = TypeKind::kSequence;
  rep->element.push_back(std::move(element));
  return Type(std::move(rep));
}

TypeKind Type::kind() const { return rep_->kind; }

const std::string& Type::name() const {
  assert(kind() == TypeKind::kNamed);
  return rep_->name;
}

const std::vector<std::pair<std::string, Type>>& Type::fields() const {
  assert(kind() == TypeKind::kTuple);
  return rep_->fields;
}

Result<Type> Type::field(const std::string& label) const {
  if (kind() != TypeKind::kTuple) {
    return Status::TypeError(
        StrCat("field '", label, "' requested on ", TypeKindName(kind()),
               " type ", ToString()));
  }
  for (const auto& [l, t] : rep_->fields) {
    if (l == label) return t;
  }
  return Status::NotFound(
      StrCat("no field '", label, "' in tuple type ", ToString()));
}

const Type& Type::element() const {
  assert(is_collection());
  return rep_->element.front();
}

bool Type::Equals(const Type& other) const {
  if (rep_ == other.rep_) return true;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case TypeKind::kInt:
    case TypeKind::kString:
    case TypeKind::kBool:
    case TypeKind::kReal:
      return true;
    case TypeKind::kNamed:
      return rep_->name == other.rep_->name;
    case TypeKind::kTuple: {
      const auto& a = rep_->fields;
      const auto& b = other.rep_->fields;
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first) return false;
        if (!a[i].second.Equals(b[i].second)) return false;
      }
      return true;
    }
    case TypeKind::kSet:
    case TypeKind::kMultiset:
    case TypeKind::kSequence:
      return element().Equals(other.element());
  }
  return false;
}

std::string Type::ToString() const {
  switch (kind()) {
    case TypeKind::kInt: return "integer";
    case TypeKind::kString: return "string";
    case TypeKind::kBool: return "bool";
    case TypeKind::kReal: return "real";
    case TypeKind::kNamed: return rep_->name;
    case TypeKind::kTuple:
      return StrCat(
          "(",
          JoinMapped(rep_->fields, ", ",
                     [](const std::pair<std::string, Type>& f) {
                       return StrCat(f.first, ": ", f.second.ToString());
                     }),
          ")");
    case TypeKind::kSet:
      return StrCat("{", element().ToString(), "}");
    case TypeKind::kMultiset:
      return StrCat("[", element().ToString(), "]");
    case TypeKind::kSequence:
      return StrCat("<", element().ToString(), ">");
  }
  return "?";
}

std::vector<std::string> Type::ReferencedNames() const {
  std::vector<std::string> out;
  switch (kind()) {
    case TypeKind::kNamed:
      out.push_back(rep_->name);
      break;
    case TypeKind::kTuple:
      for (const auto& [l, t] : rep_->fields) {
        (void)l;
        for (auto& n : t.ReferencedNames()) out.push_back(std::move(n));
      }
      break;
    case TypeKind::kSet:
    case TypeKind::kMultiset:
    case TypeKind::kSequence:
      return element().ReferencedNames();
    default:
      break;
  }
  return out;
}

}  // namespace logres
