#include "core/explain.h"

#include <set>

#include "core/magic.h"
#include "util/string_util.h"

namespace logres {

std::string InstanceDiff::ToString() const {
  std::string out;
  for (const std::string& fact : added) out += StrCat("+ ", fact, "\n");
  for (const std::string& fact : removed) out += StrCat("- ", fact, "\n");
  return out;
}

std::string ExplainProgram(const CheckedProgram& program) {
  std::string out;
  out += StrCat("program: ", program.rules.size(), " rule(s), ",
                program.functions.size(), " function(s), ",
                program.stratified
                    ? StrCat(program.max_stratum + 1, " stratum/strata")
                    : std::string("NOT stratified (whole-program "
                                  "inflationary evaluation)"),
                "\n");
  for (const CheckedRule& rule : program.rules) {
    out += StrCat("\nrule ", rule.index, ": ", rule.source.ToString(), "\n");
    if (program.stratified && rule.index < program.rule_strata.size()) {
      out += StrCat("  stratum: ", program.rule_strata[rule.index], "\n");
    }
    if (rule.head.has_value()) {
      const ResolvedPredicate& rp = *rule.head->pred;
      out += StrCat("  head: ", rp.is_class ? "class " : "association ",
                    rp.name);
      if (rule.head->negated()) out += " (deletion)";
      if (rule.invents_oid) out += " (invents oid)";
      if (rule.shares_head_oid) out += " (shares body oid)";
      if (rule.defines_function) {
        out += StrCat(" (defines function ", rule.function_name, ")");
      }
      out += "\n";
    } else {
      out += "  head: none (denial / passive constraint)\n";
    }
    if (!rule.body.empty()) {
      out += "  schedule:\n";
      for (size_t i = 0; i < rule.body.size(); ++i) {
        out += StrCat("    ", i + 1, ". ", rule.body[i].source.ToString(),
                      "\n");
      }
    }
    if (!rule.var_types.empty()) {
      out += "  variable types:\n";
      for (const auto& [var, type] : rule.var_types) {
        out += StrCat("    ", var, " : ", type.ToString(), "\n");
      }
    }
  }
  if (program.stratified && !program.strata.empty()) {
    out += "\nstrata:\n";
    for (const auto& [pred, stratum] : program.strata) {
      out += StrCat("  ", pred, " -> ", stratum, "\n");
    }
  }
  return out;
}

std::string DependencyGraphDot(const Schema& schema,
                               const CheckedProgram& program) {
  (void)schema;
  // Reconstruct edges the same way the stratifier sees them: through the
  // analyzed rules.
  std::set<std::string> nodes;
  std::set<std::tuple<std::string, std::string, bool>> edges;
  for (const CheckedRule& rule : program.rules) {
    if (!rule.head.has_value()) continue;
    const std::string& head = rule.head->pred->name;
    nodes.insert(head);
    for (const CheckedLiteral& lit : rule.body) {
      if (lit.pred.has_value()) {
        nodes.insert(lit.pred->name);
        edges.emplace(head, lit.pred->name, lit.negated());
      }
    }
    if (rule.head->negated()) edges.emplace(head, head, true);
  }
  std::string out = "digraph logres {\n  rankdir=BT;\n";
  for (const std::string& node : nodes) {
    out += StrCat("  \"", node, "\";\n");
  }
  for (const auto& [from, to, negative] : edges) {
    out += StrCat("  \"", from, "\" -> \"", to, "\"",
                  negative ? " [style=dashed, label=\"-\"]" : "", ";\n");
  }
  out += "}\n";
  return out;
}

InstanceDiff DiffInstances(const Instance& before, const Instance& after) {
  InstanceDiff diff;
  auto facts_of = [](const Instance& inst) {
    std::set<std::string> facts;
    for (const auto& [cls, oids] : inst.class_oids()) {
      for (Oid oid : oids) {
        auto v = inst.OValue(oid);
        facts.insert(StrCat(cls, " #", oid.id, " = ",
                            v.ok() ? v.value().ToString() : "?"));
      }
    }
    for (const auto& [assoc, tuples] : inst.associations()) {
      // Magic (demand) relations are evaluation scaffolding, never part
      // of the user-visible instance.
      if (IsMagicName(assoc)) continue;
      for (const Value& t : tuples) {
        facts.insert(StrCat(assoc, " ", t.ToString()));
      }
    }
    return facts;
  };
  std::set<std::string> b = facts_of(before);
  std::set<std::string> a = facts_of(after);
  for (const std::string& fact : a) {
    if (!b.count(fact)) diff.added.push_back(fact);
  }
  for (const std::string& fact : b) {
    if (!a.count(fact)) diff.removed.push_back(fact);
  }
  return diff;
}

std::string ExplainStats(const EvalStats& stats) {
  // Interner fields print only when interning was on (they are all 0
  // otherwise), like the optional bytes field.
  std::string interner;
  if (stats.interner_nodes != 0 || stats.interner_hits != 0 ||
      stats.interner_bytes != 0) {
    interner = StrCat(" interned_nodes=", stats.interner_nodes,
                      " interned_hits=", stats.interner_hits,
                      " interned_bytes=", stats.interner_bytes);
  }
  // Goal-directed fields print only when a query went through the
  // magic-set path (applied or explicitly fallen back).
  std::string goal_directed;
  if (!stats.goal_directed_fallback.empty()) {
    goal_directed =
        StrCat(" goal_directed=fallback (", stats.goal_directed_fallback, ")");
  } else if (stats.magic_rules != 0 || stats.demand_facts != 0 ||
             stats.cone_fraction != 0) {
    goal_directed = StrCat(" magic_rules=", stats.magic_rules,
                           " demand_facts=", stats.demand_facts,
                           " cone_fraction=", stats.cone_fraction);
  }
  return StrCat("steps=", stats.steps, " firings=", stats.rule_firings,
                " invented_oids=", stats.invented_oids,
                " deletions=", stats.deletions, " facts=", stats.facts,
                stats.bytes != 0 ? StrCat(" bytes=", stats.bytes) : "",
                " elapsed_us=", stats.elapsed_micros,
                " threads=", stats.threads, interner, goal_directed);
}

}  // namespace logres
