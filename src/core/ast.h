// Abstract syntax of the LOGRES rule-based language (paper Section 3).
//
// A rule is  L <- L1, ..., Ln  where each literal is a possibly negated
// predicate occurrence over terms. Variables come in three kinds
// (Section 3.1):
//   (a) ordinary typed variables,
//   (b) oid variables, written with the `self` keyword,
//   (c) tuple variables, binding a whole tuple (including the hidden oid
//       for classes).
// Terms also cover constants, tuple/set/multiset/sequence constructions,
// data-function applications (desc(X), Example 3.2), arithmetic, and
// nested object patterns like `school(dean(self X))` (Example 3.1, line 5)
// which dereference a class-typed component.
//
// Head negation marks a deletion (Section 3.1 / 4.2); an absent head (a
// denial, `<- body`) is a passive integrity constraint (Section 4.2).

#ifndef LOGRES_CORE_AST_H_
#define LOGRES_CORE_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algres/value.h"
#include "core/type.h"
#include "util/status.h"

namespace logres {

enum class TermKind {
  kConstant,       // literal value, e.g. "Smith", 18, {}
  kVariable,       // ordinary typed variable X
  kSelfVariable,   // oid variable bound via `self X`
  kTupleTerm,      // (person: Y, bdate: Z)
  kSetTerm,        // {X, Y}
  kMultisetTerm,   // [X, Y]
  kSequenceTerm,   // <X, Y>
  kFunctionApp,    // desc(X) — data function application
  kArith,          // X + 1, A * B ...
  kObjectPattern,  // dean(self X): match through a class-typed component
};

class Term;
using TermPtr = std::shared_ptr<const Term>;

/// \brief A labeled argument of a predicate occurrence or object pattern.
/// An empty label means the argument is positional / a tuple variable /
/// a self marker, disambiguated during type checking.
struct Arg {
  std::string label;
  TermPtr term;
  bool is_self = false;  // written `self X` (label irrelevant then)
};

enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

const char* ArithOpName(ArithOp op);

/// \brief An immutable term tree.
class Term {
 public:
  static TermPtr Constant(Value v);
  static TermPtr Variable(std::string name);
  static TermPtr SelfVariable(std::string name);
  static TermPtr TupleTerm(std::vector<Arg> fields);
  static TermPtr SetTerm(std::vector<TermPtr> elements);
  static TermPtr MultisetTerm(std::vector<TermPtr> elements);
  static TermPtr SequenceTerm(std::vector<TermPtr> elements);
  static TermPtr FunctionApp(std::string function,
                             std::vector<TermPtr> args);
  static TermPtr Arith(ArithOp op, TermPtr lhs, TermPtr rhs);
  static TermPtr ObjectPattern(std::vector<Arg> args);

  TermKind kind() const { return kind_; }

  const Value& constant() const { return value_; }
  const std::string& name() const { return name_; }  // variable or function
  const std::vector<Arg>& args() const { return args_; }  // tuple/object
  const std::vector<TermPtr>& elements() const { return elements_; }
  ArithOp arith_op() const { return arith_op_; }
  const TermPtr& lhs() const { return elements_[0]; }
  const TermPtr& rhs() const { return elements_[1]; }

  /// \brief Variables occurring anywhere in this term (with duplicates).
  void CollectVariables(std::vector<std::string>* out) const;

  std::string ToString() const;

 private:
  Term() = default;
  TermKind kind_ = TermKind::kConstant;
  Value value_;
  std::string name_;
  std::vector<Arg> args_;
  std::vector<TermPtr> elements_;
  ArithOp arith_op_ = ArithOp::kAdd;
};

/// \brief Comparison operators usable as built-in predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

enum class LiteralKind {
  kPredicate,  // class or association occurrence
  kCompare,    // t1 op t2
  kBuiltin,    // member/union/append/count/... (Section 3.1)
};

/// \brief One literal of a rule.
struct Literal {
  LiteralKind kind = LiteralKind::kPredicate;
  bool negated = false;

  // kPredicate
  std::string predicate;
  std::vector<Arg> args;

  // kCompare
  CompareOp compare_op = CompareOp::kEq;
  TermPtr compare_lhs;
  TermPtr compare_rhs;

  // kBuiltin
  std::string builtin;
  std::vector<TermPtr> builtin_args;

  static Literal Predicate(std::string name, std::vector<Arg> args,
                           bool negated = false);
  static Literal Compare(CompareOp op, TermPtr lhs, TermPtr rhs,
                         bool negated = false);
  static Literal Builtin(std::string name, std::vector<TermPtr> args,
                         bool negated = false);

  /// \brief Variables occurring in this literal (with duplicates).
  void CollectVariables(std::vector<std::string>* out) const;

  std::string ToString() const;
};

/// \brief A rule: head <- body. A missing head (`head == nullopt`) is a
/// denial / passive constraint. A head with `negated == true` deletes.
struct Rule {
  std::optional<Literal> head;
  std::vector<Literal> body;

  bool is_denial() const { return !head.has_value(); }
  bool is_fact() const { return head.has_value() && body.empty(); }

  std::string ToString() const;
};

/// \brief Data function declaration: F : T1 x ... x Tn -> {T}
/// (Section 2.1; nullary functions name the extension of a type).
struct FunctionDecl {
  std::string name;
  std::vector<Type> arg_types;
  Type result_type;  // must be a set type {T}

  /// \brief Name of the backing association ("shorthand notation for
  /// associations", Section 2.1). Upper-case like all canonical names.
  std::string BackingAssociation() const { return "$FN$" + name; }

  std::string ToString() const;
};

/// \brief A query goal: conjunction of literals whose bindings are the
/// answer.
struct Goal {
  std::vector<Literal> literals;
  std::string ToString() const;
};

}  // namespace logres

#endif  // LOGRES_CORE_AST_H_
