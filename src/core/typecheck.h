// Static analysis of LOGRES rules (paper Section 3.1).
//
// The type checker resolves every predicate occurrence against the schema
// and rewrites it into a canonical form (self term, optional tuple
// variable, labeled field terms), infers a type for every variable,
// verifies unification compatibility ("two types are compatible if one is
// obtained as a refinement of the other"), enforces the safety
// requirements (head arguments bound by the body; an unbound head self
// generates an invented oid), enforces the oid legality rules for
// generalization hierarchies (a rule C1(X) <- C2(X) is incorrect unless
// C1 isa C2 or C2 isa C1), and computes an executable body order plus the
// stratification of the program with respect to negation and data
// functions.
//
// "Unsafe rules can be detected at compilation time" — all of these are
// compile-time (pre-evaluation) errors.

#ifndef LOGRES_CORE_TYPECHECK_H_
#define LOGRES_CORE_TYPECHECK_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/ast.h"
#include "core/schema.h"
#include "util/status.h"

namespace logres {

/// \brief Canonical form of a class/association occurrence.
struct ResolvedPredicate {
  std::string name;   // canonical (upper-case) schema name
  bool is_class = false;
  TermPtr self_term;  // oid variable (classes only), null if absent
  TermPtr tuple_var;  // whole-tuple variable, null if absent
  std::vector<std::pair<std::string, TermPtr>> fields;  // label -> term
};

/// \brief A literal after resolution.
struct CheckedLiteral {
  Literal source;  // original form (for messages / compare / builtin)
  std::optional<ResolvedPredicate> pred;  // set when kind == kPredicate

  LiteralKind kind() const { return source.kind; }
  bool negated() const { return source.negated; }
};

/// \brief A rule after static analysis.
struct CheckedRule {
  Rule source;
  size_t index = 0;  // position in the program

  std::optional<CheckedLiteral> head;
  /// Body literals in *execution order*: a greedy schedule where each
  /// literal's required inputs are bound by its predecessors.
  std::vector<CheckedLiteral> body;

  /// Inferred variable types (variables without a constraining occurrence
  /// are absent).
  std::map<std::string, Type> var_types;

  /// True when the head's self variable is unbound by the body: firing the
  /// rule invents a new oid (safety requirement 1).
  bool invents_oid = false;

  /// True for member(T, F(X)) heads: the rule defines data function F.
  bool defines_function = false;
  std::string function_name;  // when defines_function

  /// True when the head and a body class literal share their oid: the rule
  /// propagates along a generalization hierarchy (Section 3.1 case b) and
  /// the head object must adopt the body object's oid.
  bool shares_head_oid = false;
};

/// \brief The whole analyzed program.
struct CheckedProgram {
  std::vector<CheckedRule> rules;
  std::map<std::string, FunctionDecl> functions;  // by canonical name

  /// Stratum per predicate (canonical names; data-function backing
  /// associations included). Empty when the program is not stratified —
  /// the evaluator then falls back to whole-program inflationary
  /// computation, as Section 3.1 prescribes.
  std::map<std::string, int> strata;
  bool stratified = false;

  /// Highest stratum index (0 when unstratified).
  int max_stratum = 0;

  /// Stratum of a rule = stratum of its head predicate (0 for denials).
  std::vector<int> rule_strata;
};

/// \brief Analyzes \p rules against \p schema. The \p functions list is
/// used both to resolve data-function applications and to register their
/// backing associations. The backing associations must already be declared
/// in \p schema (Database::Build does this).
Result<CheckedProgram> Typecheck(const Schema& schema,
                                 const std::vector<FunctionDecl>& functions,
                                 const std::vector<Rule>& rules);

/// \brief Resolves one predicate occurrence (exposed for goals).
Result<ResolvedPredicate> ResolvePredicate(
    const Schema& schema,
    const std::map<std::string, FunctionDecl>& functions,
    const Literal& literal);

/// \brief Declares the backing association of \p fn in \p schema:
/// ($fn$F = (arg1: T1, ..., argn: Tn, member: T)).
Status DeclareBackingAssociation(Schema* schema, const FunctionDecl& fn);

}  // namespace logres

#endif  // LOGRES_CORE_TYPECHECK_H_
