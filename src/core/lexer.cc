#include "core/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace logres {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent: return StrCat("identifier '", text, "'");
    case TokenKind::kInt: return StrCat("integer ", int_value);
    case TokenKind::kReal: return StrCat("real ", real_value);
    case TokenKind::kString: return StrCat("string \"", text, "\"");
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kArrowLeft: return "'<-'";
    case TokenKind::kArrowRight: return "'->'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto peek = [&](size_t ahead = 0) -> char {
    return i + ahead < n ? source[i + ahead] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      line++;
      column = 1;
    } else {
      column++;
    }
    i++;
  };
  auto push = [&](TokenKind kind, int tline, int tcol) {
    Token t;
    t.kind = kind;
    t.line = tline;
    t.column = tcol;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = peek();
    int tline = line, tcol = column;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && peek(1) == '-') {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '$') {
      std::string text;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_' || peek() == '$')) {
        text += peek();
        advance();
      }
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::move(text);
      t.line = tline;
      t.column = tcol;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      bool real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
        digits += peek();
        advance();
      }
      // A decimal point followed by a digit makes a real; a bare '.' is
      // the rule terminator.
      if (peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1)))) {
        real = true;
        digits += '.';
        advance();
        while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
          digits += peek();
          advance();
        }
      }
      Token t;
      t.line = tline;
      t.column = tcol;
      // stoll/stod throw on out-of-range literals; hostile input (e.g. a
      // corrupted dump) must yield a ParseError, not an uncaught
      // exception.
      try {
        if (real) {
          t.kind = TokenKind::kReal;
          t.real_value = std::stod(digits);
        } else {
          t.kind = TokenKind::kInt;
          t.int_value = std::stoll(digits);
        }
      } catch (const std::exception&) {
        return Status::ParseError(StrCat("numeric literal '", digits,
                                         "' out of range at line ", tline,
                                         ":", tcol));
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      advance();
      std::string text;
      while (i < n && peek() != '"') {
        if (peek() == '\\' && i + 1 < n) {
          advance();
          char esc = peek();
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            default: text += esc; break;
          }
          advance();
        } else {
          text += peek();
          advance();
        }
      }
      if (i >= n) {
        return Status::ParseError(
            StrCat("unterminated string at line ", tline, ":", tcol));
      }
      advance();  // closing quote
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.line = tline;
      t.column = tcol;
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': advance(); push(TokenKind::kLParen, tline, tcol); break;
      case ')': advance(); push(TokenKind::kRParen, tline, tcol); break;
      case '{': advance(); push(TokenKind::kLBrace, tline, tcol); break;
      case '}': advance(); push(TokenKind::kRBrace, tline, tcol); break;
      case '[': advance(); push(TokenKind::kLBracket, tline, tcol); break;
      case ']': advance(); push(TokenKind::kRBracket, tline, tcol); break;
      case ',': advance(); push(TokenKind::kComma, tline, tcol); break;
      case ';': advance(); push(TokenKind::kSemicolon, tline, tcol); break;
      case ':': advance(); push(TokenKind::kColon, tline, tcol); break;
      case '.': advance(); push(TokenKind::kPeriod, tline, tcol); break;
      case '?': advance(); push(TokenKind::kQuestion, tline, tcol); break;
      case '+': advance(); push(TokenKind::kPlus, tline, tcol); break;
      case '*': advance(); push(TokenKind::kStar, tline, tcol); break;
      case '/': advance(); push(TokenKind::kSlash, tline, tcol); break;
      case '%': advance(); push(TokenKind::kPercent, tline, tcol); break;
      case '=':
        advance();
        push(TokenKind::kEq, tline, tcol);
        break;
      case '!':
        advance();
        if (peek() == '=') {
          advance();
          push(TokenKind::kNe, tline, tcol);
        } else {
          return Status::ParseError(
              StrCat("stray '!' at line ", tline, ":", tcol));
        }
        break;
      case '<':
        advance();
        if (peek() == '=') {
          advance();
          push(TokenKind::kLe, tline, tcol);
        } else if (peek() == '-') {
          advance();
          push(TokenKind::kArrowLeft, tline, tcol);
        } else {
          push(TokenKind::kLt, tline, tcol);
        }
        break;
      case '>':
        advance();
        if (peek() == '=') {
          advance();
          push(TokenKind::kGe, tline, tcol);
        } else {
          push(TokenKind::kGt, tline, tcol);
        }
        break;
      case '-':
        advance();
        if (peek() == '>') {
          advance();
          push(TokenKind::kArrowRight, tline, tcol);
        } else {
          push(TokenKind::kMinus, tline, tcol);
        }
        break;
      default:
        return Status::ParseError(StrCat("unexpected character '", c,
                                         "' at line ", tline, ":", tcol));
    }
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  eof.column = column;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace logres
