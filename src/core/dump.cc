#include "core/dump.h"

#include <map>
#include <set>

#include "core/lexer.h"
#include "util/string_util.h"

namespace logres {

namespace {

bool IsBackingAssociation(const std::string& name) {
  return StartsWith(name, "$FN$");
}

}  // namespace

std::string SchemaToSource(const Schema& schema) {
  std::string out;
  auto section = [&](const std::vector<std::string>& names,
                     const char* keyword) {
    bool any = false;
    for (const std::string& name : names) {
      if (IsBackingAssociation(name)) continue;
      if (!any) {
        out += keyword;
        out += "\n";
        any = true;
      }
      auto type = schema.TypeOf(name);
      out += StrCat("  ", name, " = ", type.value().ToString(), ";\n");
    }
  };
  section(schema.DomainNames(), "domains");
  section(schema.ClassNames(), "classes");
  bool any_isa = false;
  for (const IsaDecl& d : schema.isa_decls()) {
    if (!any_isa) {
      // isa declarations live in a classes section.
      out += "classes\n";
      any_isa = true;
    }
    if (d.component_label.empty()) {
      out += StrCat("  ", d.sub, " isa ", d.super, ";\n");
    } else {
      out += StrCat("  ", d.sub, " ", d.component_label, " isa ", d.super,
                    ";\n");
    }
  }
  for (const auto& [key, new_label] : schema.renames()) {
    out += StrCat("classes\n  ", std::get<0>(key), " renames ",
                  std::get<2>(key), " from ", std::get<1>(key), " as ",
                  new_label, ";\n");
  }
  section(schema.AssociationNames(), "associations");
  return out;
}

std::string ValueToSource(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kOid:
      return StrCat("oid(", value.oid_value().id, ")");
    case ValueKind::kString: {
      // Escape so the lexer reads the exact payload back.
      std::string out = "\"";
      for (char c : value.string_value()) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
      }
      out += '"';
      return out;
    }
    case ValueKind::kTuple:
      return StrCat(
          "(",
          JoinMapped(value.tuple_fields(), ", ",
                     [](const std::pair<std::string, Value>& f) {
                       return StrCat(f.first, ": ",
                                     ValueToSource(f.second));
                     }),
          ")");
    case ValueKind::kSet:
      return StrCat("{",
                    JoinMapped(value.elements(), ", ", ValueToSource),
                    "}");
    case ValueKind::kMultiset:
      return StrCat("[",
                    JoinMapped(value.elements(), ", ", ValueToSource),
                    "]");
    case ValueKind::kSequence:
      return StrCat("<",
                    JoinMapped(value.elements(), ", ", ValueToSource),
                    ">");
    default:
      return value.ToString();
  }
}

namespace {

// Recursive-descent value parser over the shared token stream.
//
// Construction goes through the ordinary Value factories, so loading a
// dump (or replaying a journal through it) rebuilds the interned heap
// deterministically when interning is on: every parsed value resolves to
// its canonical node bottom-up, and the parse is insensitive to which
// values already exist — dumps emitted afterwards are byte-identical
// with interning on or off.
class ValueParser {
 public:
  explicit ValueParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool Accept(TokenKind kind) {
    if (At(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, const char* what) {
    if (Accept(kind)) return Status::OK();
    return Status::ParseError(
        StrCat("expected ", what, ", found ", Peek().Describe(), " at line ",
               Peek().line));
  }
  bool AtEnd() const { return At(TokenKind::kEof); }

  Result<Value> ParseOne() {
    // Hostile dumps may nest collections arbitrarily deep; bound the
    // recursion like the main parser does (kMaxNestingDepth there) so a
    // crafted file cannot overflow the stack.
    static constexpr int kMaxValueNestingDepth = 200;
    if (depth_ >= kMaxValueNestingDepth) {
      return Status::ParseError(
          StrCat("value nesting exceeds depth ", kMaxValueNestingDepth));
    }
    depth_++;
    Result<Value> result = ParseOneInner();
    depth_--;
    return result;
  }

 private:
  Result<Value> ParseOneInner() {
    if (At(TokenKind::kInt)) return Value::Int(Advance().int_value);
    if (At(TokenKind::kMinus) && Peek(1).kind == TokenKind::kInt) {
      Advance();
      return Value::Int(-Advance().int_value);
    }
    if (At(TokenKind::kMinus) && Peek(1).kind == TokenKind::kReal) {
      Advance();
      return Value::Real(-Advance().real_value);
    }
    if (At(TokenKind::kReal)) return Value::Real(Advance().real_value);
    if (At(TokenKind::kString)) return Value::String(Advance().text);
    if (At(TokenKind::kIdent)) {
      std::string word = ToLower(Peek().text);
      if (word == "nil") {
        Advance();
        return Value::Nil();
      }
      if (word == "true" || word == "false") {
        Advance();
        return Value::Bool(word == "true");
      }
      if (word == "oid") {
        Advance();
        LOGRES_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
        if (!At(TokenKind::kInt)) {
          return Status::ParseError("expected an oid number");
        }
        Oid oid{static_cast<uint64_t>(Advance().int_value)};
        LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        return Value::MakeOid(oid);
      }
      return Status::ParseError(
          StrCat("unexpected identifier '", Peek().text, "' in value"));
    }
    if (Accept(TokenKind::kLParen)) {
      std::vector<std::pair<std::string, Value>> fields;
      if (!At(TokenKind::kRParen)) {
        for (;;) {
          if (!At(TokenKind::kIdent)) {
            return Status::ParseError("expected a field label");
          }
          std::string label = ToLower(Advance().text);
          LOGRES_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
          LOGRES_ASSIGN_OR_RETURN(Value v, ParseOne());
          fields.emplace_back(std::move(label), std::move(v));
          if (!Accept(TokenKind::kComma)) break;
        }
      }
      LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return Value::MakeTuple(std::move(fields));
    }
    auto collection = [&](TokenKind close, const char* what,
                          auto make) -> Result<Value> {
      std::vector<Value> elems;
      if (!At(close)) {
        for (;;) {
          LOGRES_ASSIGN_OR_RETURN(Value v, ParseOne());
          elems.push_back(std::move(v));
          if (!Accept(TokenKind::kComma)) break;
        }
      }
      LOGRES_RETURN_NOT_OK(Expect(close, what));
      return make(std::move(elems));
    };
    if (Accept(TokenKind::kLBrace)) {
      return collection(TokenKind::kRBrace, "'}'", Value::MakeSet);
    }
    if (Accept(TokenKind::kLBracket)) {
      return collection(TokenKind::kRBracket, "']'", Value::MakeMultiset);
    }
    if (Accept(TokenKind::kLt)) {
      return collection(TokenKind::kGt, "'>'", Value::MakeSequence);
    }
    return Status::ParseError(
        StrCat("expected a value, found ", Peek().Describe()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

namespace {

// Largest oid id mentioned anywhere in a value (0 when none).
void MaxOidIn(const Value& value, uint64_t* max_id) {
  switch (value.kind()) {
    case ValueKind::kOid:
      if (value.oid_value().id > *max_id) *max_id = value.oid_value().id;
      break;
    case ValueKind::kTuple:
      for (const auto& [label, v] : value.tuple_fields()) {
        (void)label;
        MaxOidIn(v, max_id);
      }
      break;
    case ValueKind::kSet:
    case ValueKind::kMultiset:
    case ValueKind::kSequence:
      for (const Value& v : value.elements()) MaxOidIn(v, max_id);
      break;
    default:
      break;
  }
}

}  // namespace

Result<Value> ParseValue(const std::string& source) {
  LOGRES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  ValueParser parser(std::move(tokens));
  LOGRES_ASSIGN_OR_RETURN(Value v, parser.ParseOne());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after value");
  }
  return v;
}

std::string ModuleToSource(const Module& module) {
  std::string out = StrCat("module ", module.name);
  if (module.default_mode.has_value()) {
    out += StrCat(" options ", ApplicationModeName(*module.default_mode));
  }
  if (module.semantics.has_value()) {
    out += StrCat(" semantics ", EvalModeName(*module.semantics));
  }
  out += "\n";
  out += SchemaToSource(module.schema);
  if (!module.functions.empty()) {
    out += "functions\n";
    for (const FunctionDecl& fn : module.functions) {
      out += StrCat("  ", fn.ToString(), ";\n");
    }
  }
  if (!module.rules.empty()) {
    out += "rules\n";
    for (const Rule& rule : module.rules) {
      out += StrCat("  ", rule.ToString(), "\n");
    }
  }
  if (module.goal.has_value()) {
    out += StrCat("goal\n  ", module.goal->ToString(), ".\n");
  }
  out += "end\n";
  return out;
}

std::string DumpDatabase(const Database& db) {
  // v2 adds `module` blocks (between rules and objects). The header is a
  // lexer comment, so v1 readers and writers interoperate either way.
  std::string out = "-- logres dump v2\n";
  out += StrCat("generator ", db.oids_issued(), ";\n");
  out += SchemaToSource(db.schema());
  if (!db.functions().empty()) {
    out += "functions\n";
    for (const FunctionDecl& fn : db.functions()) {
      out += StrCat("  ", fn.ToString(), ";\n");
    }
  }
  if (!db.rules().empty()) {
    out += "rules\n";
    for (const Rule& rule : db.rules()) {
      out += StrCat("  ", rule.ToString(), "\n");
    }
  }
  for (const Module& module : db.registered_modules()) {
    out += ModuleToSource(module);
  }
  const Instance& edb = db.edb();
  if (!edb.class_oids().empty()) {
    out += "objects\n";
    // Emit each oid once with its value, then bare memberships. Most
    // specific classes first is unnecessary: AdoptObject handles supers,
    // and explicit memberships cover multiple-inheritance leaves.
    std::map<Oid, bool> value_emitted;
    for (const auto& [cls, oids] : edb.class_oids()) {
      for (Oid oid : oids) {
        if (!value_emitted[oid]) {
          auto v = edb.OValue(oid);
          out += StrCat("  ", cls, " ", oid.id, " = ",
                        v.ok() ? ValueToSource(v.value()) : "nil", ";\n");
          value_emitted[oid] = true;
        } else {
          out += StrCat("  ", cls, " ", oid.id, ";\n");
        }
      }
    }
  }
  bool any_tuples = false;
  for (const auto& [assoc, tuples] : edb.associations()) {
    for (const Value& t : tuples) {
      if (!any_tuples) {
        out += "tuples\n";
        any_tuples = true;
      }
      out += StrCat("  ", assoc, " ", ValueToSource(t), ";\n");
    }
  }
  return out;
}

Result<Database> LoadDatabase(const std::string& dump) {
  // Split the dump into the unit part (schema/functions/rules) and the
  // data sections, which use their own grammar.
  std::vector<std::string> lines = Split(dump, '\n');
  std::string unit_text, data_text;
  bool in_data = false;
  std::string data_section;
  for (const std::string& line : lines) {
    std::string trimmed = line;
    while (!trimmed.empty() && (trimmed.front() == ' ')) {
      trimmed.erase(trimmed.begin());
    }
    if (trimmed == "objects" || trimmed == "tuples" ||
        StartsWith(trimmed, "generator ")) {
      in_data = true;
      data_text += line;
      data_text += '\n';
      continue;
    }
    if (in_data &&
        (trimmed == "domains" || trimmed == "classes" ||
         trimmed == "associations" || trimmed == "functions" ||
         trimmed == "rules" || StartsWith(trimmed, "module ") ||
         trimmed == "end")) {
      in_data = false;
    }
    if (in_data) {
      data_text += line;
      data_text += '\n';
    } else {
      unit_text += line;
      unit_text += '\n';
    }
  }

  LOGRES_ASSIGN_OR_RETURN(Database db, Database::Create(unit_text));

  // Parse the data sections with the lexer.
  LOGRES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(data_text));
  ValueParser parser(std::move(tokens));
  enum class Section { kNone, kObjects, kTuples };
  Section section = Section::kNone;
  uint64_t generator_floor = 0;
  bool saw_generator = false;
  uint64_t max_used_oid = 0;
  std::set<uint64_t> valued_oids;  // oids given an explicit `=` value
  while (!parser.AtEnd()) {
    if (parser.At(TokenKind::kIdent)) {
      std::string word = ToLower(parser.Peek().text);
      if (word == "generator") {
        parser.Advance();
        if (!parser.At(TokenKind::kInt)) {
          return Status::ParseError("expected generator count");
        }
        generator_floor =
            static_cast<uint64_t>(parser.Advance().int_value);
        saw_generator = true;
        LOGRES_RETURN_NOT_OK(
            parser.Expect(TokenKind::kSemicolon, "';'"));
        continue;
      }
      if (word == "objects") {
        parser.Advance();
        section = Section::kObjects;
        continue;
      }
      if (word == "tuples") {
        parser.Advance();
        section = Section::kTuples;
        continue;
      }
      // An entry: NAME ... ;
      std::string name = ToUpper(parser.Advance().text);
      if (section == Section::kObjects) {
        if (!parser.At(TokenKind::kInt)) {
          return Status::ParseError(
              StrCat("expected an oid number after ", name));
        }
        Oid oid{static_cast<uint64_t>(parser.Advance().int_value)};
        if (oid.id > max_used_oid) max_used_oid = oid.id;
        Value value = Value::Nil();
        bool has_value = false;
        if (parser.Accept(TokenKind::kEq)) {
          LOGRES_ASSIGN_OR_RETURN(value, parser.ParseOne());
          has_value = true;
        }
        LOGRES_RETURN_NOT_OK(parser.Expect(TokenKind::kSemicolon, "';'"));
        if (has_value) {
          // A well-formed dump assigns each oid its o-value exactly once
          // (further class memberships are bare `CLASS n;` lines); a
          // second assignment is a corrupt or hostile dump, and silently
          // letting the later one win would mask the corruption.
          if (!valued_oids.insert(oid.id).second) {
            return Status::ParseError(
                StrCat("duplicate o-value assignment for oid ", oid.id));
          }
          MaxOidIn(value, &max_used_oid);
          LOGRES_RETURN_NOT_OK(db.mutable_edb()->AdoptObject(
              db.schema(), name, oid, std::move(value)));
        } else {
          auto existing = db.mutable_edb()->OValue(oid);
          LOGRES_RETURN_NOT_OK(db.mutable_edb()->AdoptObject(
              db.schema(), name, oid,
              existing.ok() ? existing.value() : Value::Nil()));
        }
        continue;
      }
      if (section == Section::kTuples) {
        LOGRES_ASSIGN_OR_RETURN(Value tuple, parser.ParseOne());
        LOGRES_RETURN_NOT_OK(parser.Expect(TokenKind::kSemicolon, "';'"));
        MaxOidIn(tuple, &max_used_oid);
        db.mutable_edb()->InsertTuple(name, std::move(tuple));
        continue;
      }
      return Status::ParseError(
          StrCat("entry '", name, "' outside objects/tuples section"));
    }
    return Status::ParseError(
        StrCat("unexpected ", parser.Peek().Describe(), " in dump"));
  }

  // A generator position below an oid the dump itself uses would hand
  // out colliding oids later; reject it instead of silently corrupting
  // the store. (An absent generator line with objects present is the
  // degenerate case generator_floor = 0.)
  if (max_used_oid > generator_floor) {
    return Status::ParseError(
        StrCat("generator position ", generator_floor,
               saw_generator ? "" : " (no generator line)",
               " is below the maximum oid used in the dump (",
               max_used_oid, ")"));
  }
  // Restore the oid generator position so future invented oids do not
  // collide with loaded ones.
  db.oid_generator()->FastForward(generator_floor);
  return db;
}

}  // namespace logres
