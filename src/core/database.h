// The LOGRES database: persistent states and module application
// (paper Sections 4.1-4.2).
//
// A database *state* is the triple (E, R, S): extensionally stored facts,
// persistent rules, and the schema. The database *instance* I is not
// stored — it is the result of applying R to E under the inflationary
// semantics ("a different interpretation of the EDB, which is not regarded
// as an instance of the database", Section 3.2). A predicate can be
// defined partly extensionally and partly intensionally.
//
// The evolution of the database is a sequence of module applications, each
// qualified by one of the six modes of modes.h. An application whose
// resulting instance is inconsistent (referential integrity, Definition 4
// conditions, or a violated denial) is *rejected*: the state is unchanged
// and an error is returned ("M is partial, as it is undefined over
// instances for which I1 is inconsistent").

#ifndef LOGRES_CORE_DATABASE_H_
#define LOGRES_CORE_DATABASE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/eval.h"
#include "core/instance.h"
#include "core/module.h"
#include "core/schema.h"
#include "core/undo_log.h"
#include "util/status.h"

namespace logres {

/// \brief Outcome of a module application.
struct ModuleResult {
  /// The instance I1 of the resulting state (materialized).
  Instance instance;
  /// Goal bindings, when the module carried a goal (modes *DI only).
  std::optional<std::vector<Bindings>> goal_answer;
  EvalStats stats;
};

/// \brief A LOGRES database: owns the state (E, R, S) and an oid
/// generator, and applies modules to evolve it.
class Database {
 public:
  Database() = default;

  // Copies duplicate the state (E, R, S), modules, and the generator, but
  // never the rollback machinery: snapshots are bound to the object they
  // were taken from, so a copy starts with no outstanding snapshot marks
  // and an empty undo log. Copying (or assigning over) a database while
  // one of its own snapshots is outstanding is not supported.
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// \brief Creates a database from source text: schema sections define
  /// S0, rules sections define R0, and any `module` blocks are registered
  /// for ApplyByName.
  static Result<Database> Create(const std::string& source);

  // ---- State access --------------------------------------------------------
  const Schema& schema() const { return schema_; }
  const std::vector<Rule>& rules() const { return rules_; }
  const std::vector<FunctionDecl>& functions() const { return functions_; }
  const Instance& edb() const { return edb_; }
  Instance* mutable_edb() { return &edb_; }
  OidGenerator* oid_generator() { return &gen_; }

  /// \brief How many oids this database has issued so far.
  uint64_t oids_issued() const { return gen_.issued(); }

  /// \brief Modules registered at Create time, applicable by name.
  const std::vector<Module>& registered_modules() const { return modules_; }

  // ---- Transactions ---------------------------------------------------------
  /// \brief A rollback point over the state triple (E, R, S) plus declared
  /// functions. Schema, rules, and functions are saved by (small) copy;
  /// the EDB is *not* copied — while any snapshot is outstanding, every
  /// EDB mutation is recorded in the database's undo log, and restoring
  /// replays the log in reverse from the snapshot's mark (DESIGN.md §10).
  /// The restored state is byte-identical, exactly as the old deep-copy
  /// snapshot was. The oid generator is deliberately excluded: a rejected
  /// application may consume oids (they are never reused), but the state
  /// itself must restore byte-identically.
  ///
  /// Snapshots are move-only and release their log mark on destruction
  /// (the commit path). Nesting is supported (the journaled store wraps
  /// Apply's internal snapshot); windows must close LIFO. Writes through
  /// mutable_edb() while a snapshot is outstanding bypass the log and are
  /// therefore not rolled back — no in-tree caller does that. A Database
  /// must not be moved while one of its snapshots is outstanding.
  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(Snapshot&& other) noexcept;
    Snapshot& operator=(Snapshot&& other) noexcept;
    ~Snapshot();

   private:
    friend class Database;
    void Release();

    const Database* db_ = nullptr;  // non-null while the mark is held
    size_t undo_base_ = 0;
    Schema schema_;
    std::vector<Rule> rules_;
    std::vector<FunctionDecl> functions_;
  };

  /// \brief Captures the current state for a later RestoreSnapshot.
  Snapshot TakeSnapshot() const;

  /// \brief Restores a snapshot, discarding every state change made since
  /// it was taken. This is the rollback half of module application's
  /// all-or-nothing contract (Section 4.1: "M is partial ... the state is
  /// unchanged").
  void RestoreSnapshot(Snapshot snapshot);

  // ---- Direct EDB construction (host-language API) --------------------------
  /// \brief Creates an object in \p cls with \p ovalue; returns its oid.
  Result<Oid> InsertObject(const std::string& cls, Value ovalue);

  /// \brief Inserts a tuple into association \p assoc. Labels must match
  /// the association's effective fields.
  Status InsertTuple(const std::string& assoc, Value tuple);

  // ---- Evaluation -----------------------------------------------------------
  /// \brief Materializes the instance I of the current state (E, R, S).
  Result<Instance> Materialize(const EvalOptions& options = {}) const;

  /// \brief Answers \p goal. When EvalOptions::goal_directed is on and
  /// the goal has bound arguments, the program is rewritten with magic
  /// sets (core/magic.h) so only the goal's demanded cone is evaluated;
  /// otherwise (or when the rewrite falls back — see
  /// EvalStats::goal_directed_fallback) the whole instance is
  /// materialized and filtered. Answers are identical either way.
  Result<std::vector<Bindings>> Query(const Goal& goal,
                                      const EvalOptions& options = {}) const;

  /// \brief Query with evaluation observability: \p stats receives the
  /// run's counters, including the goal-directed ones (magic_rules,
  /// demand_facts, cone_fraction, goal_directed_fallback).
  Result<std::vector<Bindings>> Query(const Goal& goal,
                                      const EvalOptions& options,
                                      EvalStats* stats) const;

  /// \brief Parses and answers a goal ("? person(name: X)").
  Result<std::vector<Bindings>> Query(const std::string& goal_text,
                                      const EvalOptions& options = {}) const;

  /// \brief Parsing + stats overload of the above.
  Result<std::vector<Bindings>> Query(const std::string& goal_text,
                                      const EvalOptions& options,
                                      EvalStats* stats) const;

  // ---- Module application ----------------------------------------------------
  /// \brief Applies \p module under \p mode. On success the state is
  /// updated per the mode's definition (Section 4.1); on ANY failure —
  /// divergence, budget exhaustion, cancellation, builtin error,
  /// inconsistent resulting instance, injected fault — the state is
  /// rolled back to its pre-application snapshot and the error returned.
  Result<ModuleResult> Apply(const Module& module, ApplicationMode mode,
                             const EvalOptions& options = {});

  /// \brief Applies \p module under its default mode (RIDI if none).
  Result<ModuleResult> Apply(const Module& module,
                             const EvalOptions& options = {});

  /// \brief Applies a registered module by name.
  Result<ModuleResult> ApplyByName(const std::string& name,
                                   const EvalOptions& options = {});

  /// \brief Parses source as a module and applies it under \p mode.
  Result<ModuleResult> ApplySource(const std::string& source,
                                   ApplicationMode mode,
                                   const EvalOptions& options = {});

 private:
  // Builds the working schema: S plus backing associations for functions.
  Result<Schema> EffectiveSchema(
      const Schema& base, const std::vector<FunctionDecl>& functions) const;

  // Applies the module by mutating the state members directly; the public
  // Apply wraps it in TakeSnapshot/RestoreSnapshot for atomicity.
  Result<ModuleResult> ApplyInPlace(const Module& module,
                                    ApplicationMode mode,
                                    const EvalOptions& options);

  // Evaluates `rules` (plus functions) over `edb` under `schema`.
  Result<Instance> Evaluate(const Schema& schema,
                            const std::vector<FunctionDecl>& functions,
                            const std::vector<Rule>& rules,
                            const Instance& edb, const EvalOptions& options,
                            EvalStats* stats) const;

  // Attempts goal-directed (magic-set) evaluation of `goal` against
  // (`schema`, `functions`, `rules`, `edb`). Returns nullopt when the
  // rewrite refused (reason in stats->goal_directed_fallback) — the
  // caller then takes the whole-program path. Once the rewrite applies,
  // evaluation failures (budget exhaustion, cancellation, ...) propagate
  // as errors exactly like the whole-program path's. On success `stats`
  // holds the cone run's counters and `cone` (if non-null) the demanded
  // cone with magic relations stripped.
  Result<std::optional<std::vector<Bindings>>> QueryGoalDirected(
      const Schema& schema, const std::vector<FunctionDecl>& functions,
      const std::vector<Rule>& rules, const Instance& edb, const Goal& goal,
      const EvalOptions& options, EvalStats* stats, Instance* cone) const;

  // The EDB undo log to record mutations into while at least one snapshot
  // window is open; nullptr (don't record) otherwise, so the log never
  // grows without a rollback point to serve.
  UndoLog* ActiveUndo() const {
    return snapshot_bases_.empty() ? nullptr : &edb_undo_;
  }

  // Removes one outstanding mark at `base`; clears the log when the last
  // mark goes (nothing can roll back past a closed window).
  void ReleaseSnapshotMark(size_t base) const;

  // Replaces the whole EDB (the *DV modes), logging the old instance as a
  // single O(1) undo record when a snapshot is outstanding.
  void ReplaceEdb(Instance next);

  Schema schema_;
  std::vector<Rule> rules_;
  std::vector<FunctionDecl> functions_;
  Instance edb_;
  std::vector<Module> modules_;
  // Mutable: module application consumes oids even when rejected.
  mutable OidGenerator gen_;
  // Mutable like the generator: TakeSnapshot() is conceptually const (the
  // state is unchanged) but registers its rollback mark here.
  mutable UndoLog edb_undo_;
  mutable std::vector<size_t> snapshot_bases_;
};

}  // namespace logres

#endif  // LOGRES_CORE_DATABASE_H_
