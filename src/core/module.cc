#include "core/module.h"

#include "util/string_util.h"

namespace logres {

Module Module::FromParsed(ParsedModule parsed) {
  Module module;
  module.name = std::move(parsed.name);
  module.schema = std::move(parsed.schema);
  module.functions = std::move(parsed.functions);
  module.rules = std::move(parsed.rules);
  module.goal = std::move(parsed.goal);
  module.default_mode = parsed.default_mode;
  module.semantics = parsed.semantics;
  return module;
}

Result<Module> Module::Parse(const std::string& source) {
  LOGRES_ASSIGN_OR_RETURN(ParsedUnit unit, logres::Parse(source));
  if (unit.modules.size() == 1 && unit.rules.empty() &&
      unit.goals.empty() && unit.functions.empty()) {
    return FromParsed(std::move(unit.modules.front()));
  }
  if (!unit.modules.empty()) {
    return Status::ParseError(
        "Module::Parse expects a single module block or bare sections");
  }
  // Bare sections form an anonymous module.
  Module module;
  module.name = "anonymous";
  module.schema = std::move(unit.schema);
  module.functions = std::move(unit.functions);
  module.rules = std::move(unit.rules);
  if (unit.goals.size() > 1) {
    return Status::ParseError("a module may carry at most one goal");
  }
  if (!unit.goals.empty()) module.goal = std::move(unit.goals.front());
  return module;
}

}  // namespace logres
