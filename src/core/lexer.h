// Tokenizer for the LOGRES surface language.
//
// Conventions (documented in README "Language reference"):
//  * variables start with an upper-case letter (X, Team1, ...);
//  * predicate, function and label identifiers are folded case-insensitively
//    (the paper writes PERSON in type equations and person in rules);
//  * string constants are double-quoted (the paper's bare `Smith` would be
//    ambiguous with variables);
//  * `--` starts a comment running to end of line.

#ifndef LOGRES_CORE_LEXER_H_
#define LOGRES_CORE_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace logres {

enum class TokenKind {
  kIdent,     // identifiers and keywords (text preserved as written)
  kInt,       // 42
  kReal,      // 3.5
  kString,    // "hello"
  kLParen, kRParen,       // ( )
  kLBrace, kRBrace,       // { }
  kLBracket, kRBracket,   // [ ]
  kLt, kGt, kLe, kGe,     // < > <= >=
  kEq, kNe,               // = !=
  kComma, kSemicolon, kColon, kPeriod, kQuestion,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kArrowLeft,   // <-
  kArrowRight,  // ->
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier / string payload
  int64_t int_value = 0;
  double real_value = 0;
  int line = 0;
  int column = 0;

  std::string Describe() const;
};

/// \brief Tokenizes \p source; a ParseError names the offending position.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace logres

#endif  // LOGRES_CORE_LEXER_H_
