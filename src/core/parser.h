// Parser for the LOGRES surface language.
//
// A compilation unit is a sequence of sections:
//
//   domains       NAME = TYPE; ...
//   classes       NAME = TYPE;  SUB isa SUPER;  SUB label isa SUPER;
//                 CLS renames LABEL from SUPER as NEWLABEL; ...
//   associations  NAME = TYPE; ...
//   functions     NAME: T1 -> {T};   NAME: -> {T};  (nullary)
//   rules         head <- body.   head.   not head <- body.   <- body.
//   goal          ? body.
//   module NAME [options MODE] <sections...> end
//
// Types:   integer | string | bool | real | NAME
//        | ( [label:] TYPE, ... )        -- unlabeled components get the
//                                           lower-cased type name as label
//        | { TYPE } | [ TYPE ] | < TYPE >
//
// Rule literals: predicates with labeled or positional arguments, `self X`
// oid variables, comparisons (= != < <= > >=), built-in predicates
// (member, union, ...), data-function application terms, arithmetic.
//
// Name conventions: type / predicate / function / label identifiers are
// case-insensitive (canonicalized: types and functions to UPPER, labels
// and predicates to lower); variables start with an upper-case letter and
// are case-sensitive. Keywords are lower-case.

#ifndef LOGRES_CORE_PARSER_H_
#define LOGRES_CORE_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/ast.h"
#include "core/lexer.h"
#include "core/modes.h"
#include "core/schema.h"
#include "util/status.h"

namespace logres {

struct ParsedModule;

/// \brief Everything a source text contributes outside of modules.
struct ParsedUnit {
  Schema schema;
  std::vector<FunctionDecl> functions;
  std::vector<Rule> rules;
  std::vector<Goal> goals;
  std::vector<ParsedModule> modules;
};

/// \brief A parsed `module NAME ... end` block (paper Section 4.1:
/// a triple (R_M, S_M, G_M); the application mode is chosen at apply time,
/// `options` merely records a default).
struct ParsedModule {
  std::string name;
  std::optional<ApplicationMode> default_mode;
  /// Optional `semantics` clause: the rule semantics this module requests.
  std::optional<EvalMode> semantics;
  Schema schema;
  std::vector<FunctionDecl> functions;
  std::vector<Rule> rules;
  std::optional<Goal> goal;
};

/// \brief Parses a full compilation unit.
Result<ParsedUnit> Parse(const std::string& source);

/// \brief Parses a single rule ("head <- body.").
Result<Rule> ParseRule(const std::string& source);

/// \brief Parses a single type expression ("(name: NAME, roles: {ROLE})").
Result<Type> ParseType(const std::string& source);

/// \brief Parses a single goal ("? person(name: X)." — leading '?' and
/// trailing '.' optional).
Result<Goal> ParseGoal(const std::string& source);

/// \brief The built-in predicate names the parser recognizes
/// (Section 3.1's "comprehensive list": member, union, ...).
bool IsBuiltinPredicate(const std::string& lower_name);

}  // namespace logres

#endif  // LOGRES_CORE_PARSER_H_
