// Undo logging for in-place delta application (DESIGN.md §10).
//
// The fixpoint loop used to copy the whole Instance once per step — the
// dominant serial cost at large instances. Instead, every elementary
// mutation of an Instance can append an UndoRecord describing exactly what
// changed; replaying the records in reverse (Instance::RollbackTo) restores
// the pre-mutation state byte for byte. "Byte for byte" includes the
// std::map key quirks that Instance::operator== observes: the historical
// mutators create empty pi/rho entries via operator[] (e.g. RemoveObject on
// a class with no members), and {cls: {}} differs from an absent key, so
// key creation is recorded and undone explicitly.
//
// The log also answers the two questions the delta-application algebra
// used to ask of the untouched pre-step instance F:
//   * PreImageTracker reconstructs, per touched item, its state before the
//     first record touched it (was_present / old o-value / tuple-present
//     carve-out queries), falling back to the live instance for untouched
//     items — F itself no longer needs to be retained.
//   * NetDiff is the canonical difference of the live instance relative to
//     the log's base state: two instances grown from the same base are
//     equal iff their NetDiffs are equal, which is how the fixpoint
//     termination test (`next == F`) survives losing the copy of F.
//
// The oid generator is deliberately outside the log, matching the
// Database::Snapshot contract: a rolled-back application may consume oids
// (they are never reused), but the state itself restores exactly.

#ifndef LOGRES_CORE_UNDO_LOG_H_
#define LOGRES_CORE_UNDO_LOG_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algres/value.h"

namespace logres {

class Instance;

/// \brief One elementary state change, with enough context to invert it.
///
/// Pre-images are held as Value handles — refcounted pointers to the very
/// nodes the instance held, canonical ones when the interner is on. A
/// rollback therefore re-inserts the same physical nodes it removed (no
/// reconstruction), so it can never resurrect a non-canonical duplicate
/// of a value the interner owns; it also keeps released-then-restored
/// nodes alive across the window by holding their refcount.
struct UndoRecord {
  enum class Kind {
    kClassKeyCreated,   // pi gained an (empty) entry for class `name`
    kOidInserted,       // `oid` entered pi(`name`)
    kOidErased,         // `oid` left pi(`name`)
    kOValueCreated,     // nu(`oid`) assigned for the first time
    kOValueSet,         // nu(`oid`) overwritten; `value` is the previous
    kOValueErased,      // nu(`oid`) dropped; `value` is the previous
    kAssocKeyCreated,   // rho gained an (empty) entry for association `name`
    kTupleInserted,     // `value` entered rho(`name`)
    kTupleErased,       // `value` left rho(`name`)
    kInstanceReplaced,  // wholesale replacement; `replaced` is the previous
  };

  Kind kind;
  std::string name;  // class or association, for the keyed kinds
  Oid oid;
  Value value;
  std::unique_ptr<Instance> replaced;

  // Out of line: Instance is incomplete here.
  UndoRecord(Kind kind, std::string name, Oid oid, Value value);
  explicit UndoRecord(std::unique_ptr<Instance> replaced);
  UndoRecord(UndoRecord&&) noexcept;
  UndoRecord& operator=(UndoRecord&&) noexcept;
  ~UndoRecord();
};

/// \brief An append-only sequence of UndoRecords. Instance mutators append
/// to it (when handed one); Instance::RollbackTo replays a suffix in
/// reverse and truncates it.
class UndoLog {
 public:
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const UndoRecord& operator[](size_t i) const { return records_[i]; }
  UndoRecord& operator[](size_t i) { return records_[i]; }

  void Clear() { records_.clear(); }

  /// \brief Drops every record at index >= \p n (used by RollbackTo after
  /// the suffix has been replayed).
  void Truncate(size_t n) {
    records_.erase(records_.begin() + static_cast<ptrdiff_t>(n),
                   records_.end());
  }

  void ClassKeyCreated(std::string cls);
  void OidInserted(std::string cls, Oid oid);
  void OidErased(std::string cls, Oid oid);
  void OValueCreated(Oid oid);
  void OValueSet(Oid oid, Value previous);
  void OValueErased(Oid oid, Value previous);
  void AssocKeyCreated(std::string assoc);
  void TupleInserted(std::string assoc, Value tuple);
  void TupleErased(std::string assoc, Value tuple);
  void InstanceReplaced(std::unique_ptr<Instance> previous);

 private:
  std::vector<UndoRecord> records_;
};

/// \brief The canonical difference of an instance relative to the base
/// state its undo log started from. Only genuinely differing items appear
/// (a touched item whose current state equals its pre-image is omitted),
/// so two instances grown from the same base compare equal exactly when
/// their NetDiffs compare equal — the replacement for whole-instance
/// `operator==` against a retained copy.
struct NetDiff {
  /// (class, oid) -> present now (differs from the base).
  std::map<std::pair<std::string, Oid>, bool> members;
  /// oid -> current o-value, nullopt = absent now (differs from the base).
  std::map<Oid, std::optional<Value>> ovalues;
  /// (association, tuple) -> present now (differs from the base).
  std::map<std::pair<std::string, Value>, bool> tuples;
  /// pi/rho keys created since the base (possibly-empty entries; std::map
  /// equality distinguishes {key: {}} from an absent key). Forward
  /// mutators never remove keys, so creation is always a difference.
  std::set<std::string> class_keys;
  std::set<std::string> assoc_keys;

  bool operator==(const NetDiff&) const = default;

  bool Empty() const {
    return members.empty() && ovalues.empty() && tuples.empty() &&
           class_keys.empty() && assoc_keys.empty();
  }
};

/// \brief Lazily derives, from the records a log accumulates, the
/// *pre-image* of every touched item — its state in the base instance the
/// log started from. Queries fall back to the live instance for untouched
/// items, so `Member`/`OValue`/`Tuple` answer exactly what the retained
/// copy F used to answer while the live instance is mutated in place.
///
/// Valid only while the log grows monotonically past `base` (a rollback
/// below the tracker's cursor invalidates it) and only over elementary
/// records — kInstanceReplaced is not trackable item-wise.
class PreImageTracker {
 public:
  explicit PreImageTracker(const UndoLog* log, size_t base = 0)
      : log_(log), cursor_(base) {}

  /// \brief Was (cls, oid) a member in the base state?
  bool Member(const Instance& now, const std::string& cls, Oid oid);

  /// \brief nu(oid) in the base state; nullopt if it had no o-value.
  std::optional<Value> OValue(const Instance& now, Oid oid);

  /// \brief Was the tuple in rho(assoc) in the base state?
  bool Tuple(const Instance& now, const std::string& assoc,
             const Value& tuple);

  /// \brief The canonical difference of \p now vs the base state.
  NetDiff Diff(const Instance& now);

  /// \brief True iff \p now differs from the base state at all.
  bool Changed(const Instance& now) { return !Diff(now).Empty(); }

 private:
  // Consumes records appended since the last query, keeping the
  // first-touch pre-state of every item (later records describe mutations
  // of already-tracked state).
  void Sync();

  const UndoLog* log_;
  size_t cursor_;
  std::map<std::pair<std::string, Oid>, bool> members_;
  std::map<Oid, std::optional<Value>> ovalues_;
  std::map<std::pair<std::string, Value>, bool> tuples_;
  std::set<std::string> class_keys_;
  std::set<std::string> assoc_keys_;
};

}  // namespace logres

#endif  // LOGRES_CORE_UNDO_LOG_H_
