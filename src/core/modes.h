// The six module application modes of paper Section 4.1.
//
// An application of a module M = (R_M, S_M, G_M) to a database state
// (E0, R0, S0) is qualified by an option that dictates its side effects:
//
//   RIDI  Rule Invariant  Data Invariant   ordinary query
//   RADI  Rule Addition   Data Invariant   add rules to the persistent IDB
//   RDDI  Rule Deletion   Data Invariant   delete rules from the IDB
//   RIDV  Rule Invariant  Data Variant     update the EDB only
//   RADV  Rule Addition   Data Variant     add rules and update the EDB
//   RDDV  Rule Deletion   Data Variant     delete rules and update the EDB
//
// Only the *DI modes may carry a goal ("in the last three options, there is
// no goal answer, thus the goal must not be specified").

#ifndef LOGRES_CORE_MODES_H_
#define LOGRES_CORE_MODES_H_

#include <optional>
#include <string>

namespace logres {

enum class ApplicationMode { kRIDI, kRADI, kRDDI, kRIDV, kRADV, kRDDV };

inline const char* ApplicationModeName(ApplicationMode mode) {
  switch (mode) {
    case ApplicationMode::kRIDI: return "RIDI";
    case ApplicationMode::kRADI: return "RADI";
    case ApplicationMode::kRDDI: return "RDDI";
    case ApplicationMode::kRIDV: return "RIDV";
    case ApplicationMode::kRADV: return "RADV";
    case ApplicationMode::kRDDV: return "RDDV";
  }
  return "?";
}

inline std::optional<ApplicationMode> ParseApplicationMode(
    const std::string& text) {
  if (text == "RIDI") return ApplicationMode::kRIDI;
  if (text == "RADI") return ApplicationMode::kRADI;
  if (text == "RDDI") return ApplicationMode::kRDDI;
  if (text == "RIDV") return ApplicationMode::kRIDV;
  if (text == "RADV") return ApplicationMode::kRADV;
  if (text == "RDDV") return ApplicationMode::kRDDV;
  return std::nullopt;
}

/// \brief True for modes whose application may change the EDB.
inline bool IsDataVariant(ApplicationMode mode) {
  return mode == ApplicationMode::kRIDV || mode == ApplicationMode::kRADV ||
         mode == ApplicationMode::kRDDV;
}

/// \brief True for modes that may answer a goal (the *DI modes).
inline bool AllowsGoal(ApplicationMode mode) { return !IsDataVariant(mode); }


/// \brief Rule-evaluation semantics a module may request — "LOGRES
/// modules and databases are parametric with respect to the semantics of
/// the rules they support" (Section 1).
enum class EvalMode {
  kStratified,         // stratum-wise inflationary (perfect model)
  kWholeInflationary,  // all rules in one inflationary fixpoint
  kNonInflationary,    // replacement semantics
};

inline const char* EvalModeName(EvalMode mode) {
  switch (mode) {
    case EvalMode::kStratified: return "stratified";
    case EvalMode::kWholeInflationary: return "inflationary";
    case EvalMode::kNonInflationary: return "noninflationary";
  }
  return "?";
}

inline std::optional<EvalMode> ParseEvalModeName(const std::string& text) {
  if (text == "stratified") return EvalMode::kStratified;
  if (text == "inflationary") return EvalMode::kWholeInflationary;
  if (text == "noninflationary") return EvalMode::kNonInflationary;
  return std::nullopt;
}

}  // namespace logres

#endif  // LOGRES_CORE_MODES_H_
