#include "core/undo_log.h"

#include "core/instance.h"

namespace logres {

UndoRecord::UndoRecord(Kind kind, std::string name, Oid oid, Value value)
    : kind(kind), name(std::move(name)), oid(oid), value(std::move(value)) {}

UndoRecord::UndoRecord(std::unique_ptr<Instance> replaced)
    : kind(Kind::kInstanceReplaced), replaced(std::move(replaced)) {}

UndoRecord::UndoRecord(UndoRecord&&) noexcept = default;
UndoRecord& UndoRecord::operator=(UndoRecord&&) noexcept = default;
UndoRecord::~UndoRecord() = default;

void UndoLog::ClassKeyCreated(std::string cls) {
  records_.emplace_back(UndoRecord::Kind::kClassKeyCreated, std::move(cls),
                        Oid{}, Value());
}

void UndoLog::OidInserted(std::string cls, Oid oid) {
  records_.emplace_back(UndoRecord::Kind::kOidInserted, std::move(cls), oid,
                        Value());
}

void UndoLog::OidErased(std::string cls, Oid oid) {
  records_.emplace_back(UndoRecord::Kind::kOidErased, std::move(cls), oid,
                        Value());
}

void UndoLog::OValueCreated(Oid oid) {
  records_.emplace_back(UndoRecord::Kind::kOValueCreated, std::string(), oid,
                        Value());
}

void UndoLog::OValueSet(Oid oid, Value previous) {
  records_.emplace_back(UndoRecord::Kind::kOValueSet, std::string(), oid,
                        std::move(previous));
}

void UndoLog::OValueErased(Oid oid, Value previous) {
  records_.emplace_back(UndoRecord::Kind::kOValueErased, std::string(), oid,
                        std::move(previous));
}

void UndoLog::AssocKeyCreated(std::string assoc) {
  records_.emplace_back(UndoRecord::Kind::kAssocKeyCreated, std::move(assoc),
                        Oid{}, Value());
}

void UndoLog::TupleInserted(std::string assoc, Value tuple) {
  records_.emplace_back(UndoRecord::Kind::kTupleInserted, std::move(assoc),
                        Oid{}, std::move(tuple));
}

void UndoLog::TupleErased(std::string assoc, Value tuple) {
  records_.emplace_back(UndoRecord::Kind::kTupleErased, std::move(assoc),
                        Oid{}, std::move(tuple));
}

void UndoLog::InstanceReplaced(std::unique_ptr<Instance> previous) {
  records_.emplace_back(std::move(previous));
}

void PreImageTracker::Sync() {
  for (; cursor_ < log_->size(); ++cursor_) {
    const UndoRecord& rec = (*log_)[cursor_];
    switch (rec.kind) {
      case UndoRecord::Kind::kClassKeyCreated:
        class_keys_.insert(rec.name);
        break;
      case UndoRecord::Kind::kOidInserted:
        members_.try_emplace({rec.name, rec.oid}, false);
        break;
      case UndoRecord::Kind::kOidErased:
        members_.try_emplace({rec.name, rec.oid}, true);
        break;
      case UndoRecord::Kind::kOValueCreated:
        ovalues_.try_emplace(rec.oid, std::nullopt);
        break;
      case UndoRecord::Kind::kOValueSet:
      case UndoRecord::Kind::kOValueErased:
        ovalues_.try_emplace(rec.oid, rec.value);
        break;
      case UndoRecord::Kind::kAssocKeyCreated:
        assoc_keys_.insert(rec.name);
        break;
      case UndoRecord::Kind::kTupleInserted:
        tuples_.try_emplace({rec.name, rec.value}, false);
        break;
      case UndoRecord::Kind::kTupleErased:
        tuples_.try_emplace({rec.name, rec.value}, true);
        break;
      case UndoRecord::Kind::kInstanceReplaced:
        // Not item-trackable; see the class comment. Callers in the
        // evaluator only ever log elementary records.
        break;
    }
  }
}

bool PreImageTracker::Member(const Instance& now, const std::string& cls,
                             Oid oid) {
  Sync();
  auto it = members_.find({cls, oid});
  if (it != members_.end()) return it->second;
  return now.HasObject(cls, oid);
}

std::optional<Value> PreImageTracker::OValue(const Instance& now, Oid oid) {
  Sync();
  auto it = ovalues_.find(oid);
  if (it != ovalues_.end()) return it->second;
  auto live = now.ovalues().find(oid);
  if (live == now.ovalues().end()) return std::nullopt;
  return live->second;
}

bool PreImageTracker::Tuple(const Instance& now, const std::string& assoc,
                            const Value& tuple) {
  Sync();
  auto it = tuples_.find({assoc, tuple});
  if (it != tuples_.end()) return it->second;
  return now.TuplesOf(assoc).count(tuple) > 0;
}

NetDiff PreImageTracker::Diff(const Instance& now) {
  Sync();
  NetDiff diff;
  diff.class_keys = class_keys_;
  diff.assoc_keys = assoc_keys_;
  for (const auto& [key, pre] : members_) {
    bool cur = now.HasObject(key.first, key.second);
    if (cur != pre) diff.members.emplace(key, cur);
  }
  for (const auto& [oid, pre] : ovalues_) {
    auto live = now.ovalues().find(oid);
    std::optional<Value> cur;
    if (live != now.ovalues().end()) cur = live->second;
    bool same = pre.has_value() == cur.has_value() &&
                (!pre.has_value() || *pre == *cur);
    if (!same) diff.ovalues.emplace(oid, std::move(cur));
  }
  for (const auto& [key, pre] : tuples_) {
    bool cur = now.TuplesOf(key.first).count(key.second) > 0;
    if (cur != pre) diff.tuples.emplace(key, cur);
  }
  return diff;
}

}  // namespace logres
