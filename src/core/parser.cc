#include "core/parser.h"

#include <set>

#include "util/string_util.h"

namespace logres {

bool IsBuiltinPredicate(const std::string& lower_name) {
  static const std::set<std::string> kBuiltins = {
      "member",  "union",   "intersection", "difference", "append",
      "count",   "sum",     "min",          "max",        "length",
      "nth",     "empty",   "avg",          "even",       "odd",
      "subset",
  };
  return kBuiltins.count(lower_name) > 0;
}

namespace {

bool IsUpperStart(const std::string& text) {
  return !text.empty() && text[0] >= 'A' && text[0] <= 'Z';
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedUnit> ParseUnit(bool inside_module);
  Result<ParsedModule> ParseModuleBlock();
  Result<Type> ParseTypeExpr();
  Result<Rule> ParseOneRule();
  Result<Goal> ParseOneGoal();

  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool AtIdent(const char* keyword) const {
    return Peek().kind == TokenKind::kIdent &&
           ToLower(Peek().text) == keyword;
  }
  bool Accept(TokenKind kind) {
    if (At(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptIdent(const char* keyword) {
    if (AtIdent(keyword)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, const char* what) {
    if (At(kind)) {
      Advance();
      return Status::OK();
    }
    return Error(StrCat("expected ", what, ", found ", Peek().Describe()));
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(StrCat("line ", Peek().line, ":",
                                     Peek().column, ": ", message));
  }

  bool AtSectionKeyword() const {
    return AtIdent("domains") || AtIdent("classes") ||
           AtIdent("associations") || AtIdent("functions") ||
           AtIdent("rules") || AtIdent("goal") || AtIdent("module") ||
           AtIdent("end");
  }

  Status ParseTypeDeclSection(Schema* schema, DeclKind kind);
  Status ParseFunctionsSection(std::vector<FunctionDecl>* functions);
  Status ParseRulesSection(std::vector<Rule>* rules);
  Result<Literal> ParseLiteral();
  Result<Literal> ParseHeadLiteral(bool negated);
  Result<std::vector<Arg>> ParseArgList();
  Result<TermPtr> ParseTerm();
  Result<TermPtr> ParseMultiplicative();
  Result<TermPtr> ParsePrimary();
  std::optional<CompareOp> PeekCompareOp() const;

  // Recursion-depth ceiling for nested type and term expressions: deeply
  // nested {{{...}}} inputs must come back as kParseError, not a stack
  // overflow. Generous — legitimate programs nest a handful of levels.
  static constexpr int kMaxNestingDepth = 200;

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth(depth) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };

  Status CheckDepth() const {
    if (depth_ > kMaxNestingDepth) {
      return Error(StrCat("nesting exceeds the maximum depth of ",
                          kMaxNestingDepth));
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

std::optional<CompareOp> Parser::PeekCompareOp() const {
  switch (Peek().kind) {
    case TokenKind::kEq: return CompareOp::kEq;
    case TokenKind::kNe: return CompareOp::kNe;
    case TokenKind::kLt: return CompareOp::kLt;
    case TokenKind::kLe: return CompareOp::kLe;
    case TokenKind::kGt: return CompareOp::kGt;
    case TokenKind::kGe: return CompareOp::kGe;
    default: return std::nullopt;
  }
}

Result<Type> Parser::ParseTypeExpr() {
  DepthGuard guard(&depth_);
  LOGRES_RETURN_NOT_OK(CheckDepth());
  // Elementary types and named references.
  if (At(TokenKind::kIdent)) {
    std::string lower = ToLower(Peek().text);
    if (lower == "integer" || lower == "int") {
      Advance();
      return Type::Int();
    }
    if (lower == "string") {
      Advance();
      return Type::String();
    }
    if (lower == "bool" || lower == "boolean") {
      Advance();
      return Type::Bool();
    }
    if (lower == "real") {
      Advance();
      return Type::Real();
    }
    std::string name = ToUpper(Advance().text);
    return Type::Named(std::move(name));
  }
  if (Accept(TokenKind::kLBrace)) {
    LOGRES_ASSIGN_OR_RETURN(Type element, ParseTypeExpr());
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "'}'"));
    return Type::Set(std::move(element));
  }
  if (Accept(TokenKind::kLBracket)) {
    LOGRES_ASSIGN_OR_RETURN(Type element, ParseTypeExpr());
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
    return Type::Multiset(std::move(element));
  }
  if (Accept(TokenKind::kLt)) {
    LOGRES_ASSIGN_OR_RETURN(Type element, ParseTypeExpr());
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kGt, "'>'"));
    return Type::Sequence(std::move(element));
  }
  if (Accept(TokenKind::kLParen)) {
    std::vector<std::pair<std::string, Type>> fields;
    std::set<std::string> used;
    // Default label for an unlabeled component: the lower-cased type name
    // (the paper's labeling convention); duplicates get _2, _3 suffixes so
    // SCORE = (integer, integer) remains expressible.
    auto default_label = [&](const Type& t) -> std::string {
      std::string base;
      switch (t.kind()) {
        case TypeKind::kNamed: base = ToLower(t.name()); break;
        case TypeKind::kInt: base = "integer"; break;
        case TypeKind::kString: base = "string"; break;
        case TypeKind::kBool: base = "bool"; break;
        case TypeKind::kReal: base = "real"; break;
        default: base = "field"; break;
      }
      std::string label = base;
      int suffix = 2;
      while (used.count(label)) {
        label = StrCat(base, "_", suffix++);
      }
      return label;
    };
    if (!At(TokenKind::kRParen)) {
      for (;;) {
        std::string label;
        // label ':' TYPE, or a bare TYPE.
        if (At(TokenKind::kIdent) && Peek(1).kind == TokenKind::kColon) {
          label = ToLower(Advance().text);
          Advance();  // ':'
        }
        LOGRES_ASSIGN_OR_RETURN(Type ftype, ParseTypeExpr());
        if (label.empty()) label = default_label(ftype);
        if (!used.insert(label).second) {
          return Error(StrCat("duplicate tuple label '", label, "'"));
        }
        fields.emplace_back(std::move(label), std::move(ftype));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return Type::Tuple(std::move(fields));
  }
  return Error(StrCat("expected a type, found ", Peek().Describe()));
}

Status Parser::ParseTypeDeclSection(Schema* schema, DeclKind kind) {
  while (!AtEnd() && !AtSectionKeyword()) {
    if (!At(TokenKind::kIdent)) {
      return Error(StrCat("expected a declaration name, found ",
                          Peek().Describe()));
    }
    std::string name = ToUpper(Advance().text);

    // Classes section extras: isa and renames declarations.
    if (kind == DeclKind::kClass) {
      if (AtIdent("isa")) {
        Advance();
        if (!At(TokenKind::kIdent)) return Error("expected class after isa");
        std::string super = ToUpper(Advance().text);
        LOGRES_RETURN_NOT_OK(schema->DeclareIsa(name, super));
        LOGRES_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
        continue;
      }
      // Labeled component isa: "EMPL emp isa PERSON;"
      if (At(TokenKind::kIdent) && Peek(1).kind == TokenKind::kIdent &&
          ToLower(Peek(1).text) == "isa") {
        std::string label = ToLower(Advance().text);
        Advance();  // isa
        if (!At(TokenKind::kIdent)) return Error("expected class after isa");
        std::string super = ToUpper(Advance().text);
        LOGRES_RETURN_NOT_OK(schema->DeclareIsa(name, super, label));
        LOGRES_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
        continue;
      }
      if (AtIdent("renames")) {
        Advance();
        if (!At(TokenKind::kIdent)) return Error("expected label");
        std::string old_label = ToLower(Advance().text);
        if (!AcceptIdent("from")) return Error("expected 'from'");
        if (!At(TokenKind::kIdent)) return Error("expected superclass");
        std::string super = ToUpper(Advance().text);
        if (!AcceptIdent("as")) return Error("expected 'as'");
        if (!At(TokenKind::kIdent)) return Error("expected new label");
        std::string new_label = ToLower(Advance().text);
        LOGRES_RETURN_NOT_OK(schema->DeclareInheritanceRename(
            name, super, old_label, new_label));
        LOGRES_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
        continue;
      }
    }

    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kEq, "'='"));
    LOGRES_ASSIGN_OR_RETURN(Type type, ParseTypeExpr());
    switch (kind) {
      case DeclKind::kDomain:
        LOGRES_RETURN_NOT_OK(schema->DeclareDomain(name, std::move(type)));
        break;
      case DeclKind::kClass:
        LOGRES_RETURN_NOT_OK(schema->DeclareClass(name, std::move(type)));
        break;
      case DeclKind::kAssociation:
        LOGRES_RETURN_NOT_OK(
            schema->DeclareAssociation(name, std::move(type)));
        break;
    }
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
  }
  return Status::OK();
}

Status Parser::ParseFunctionsSection(std::vector<FunctionDecl>* functions) {
  while (!AtEnd() && !AtSectionKeyword()) {
    if (!At(TokenKind::kIdent)) {
      return Error(StrCat("expected a function name, found ",
                          Peek().Describe()));
    }
    FunctionDecl decl;
    decl.name = ToUpper(Advance().text);
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
    if (!At(TokenKind::kArrowRight)) {
      for (;;) {
        LOGRES_ASSIGN_OR_RETURN(Type arg, ParseTypeExpr());
        decl.arg_types.push_back(std::move(arg));
        // Argument types are separated by ',' or the paper's 'x'.
        if (Accept(TokenKind::kComma) || AcceptIdent("x")) continue;
        break;
      }
    }
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kArrowRight, "'->'"));
    LOGRES_ASSIGN_OR_RETURN(decl.result_type, ParseTypeExpr());
    if (decl.result_type.kind() != TypeKind::kSet) {
      return Error(StrCat("function ", decl.name,
                          " must return a set type {T} (Section 2.1)"));
    }
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
    functions->push_back(std::move(decl));
  }
  return Status::OK();
}

Result<TermPtr> Parser::ParsePrimary() {
  // Every recursive term production (collections, tuples, groupings,
  // function arguments) funnels through here, so one guard bounds them
  // all.
  DepthGuard guard(&depth_);
  LOGRES_RETURN_NOT_OK(CheckDepth());
  // Constants.
  if (At(TokenKind::kInt)) {
    return Term::Constant(Value::Int(Advance().int_value));
  }
  if (At(TokenKind::kReal)) {
    return Term::Constant(Value::Real(Advance().real_value));
  }
  if (At(TokenKind::kString)) {
    return Term::Constant(Value::String(Advance().text));
  }
  if (AtIdent("true")) {
    Advance();
    return Term::Constant(Value::Bool(true));
  }
  if (AtIdent("false")) {
    Advance();
    return Term::Constant(Value::Bool(false));
  }
  if (AtIdent("nil")) {
    Advance();
    return Term::Constant(Value::Nil());
  }
  // Collection terms.
  if (Accept(TokenKind::kLBrace)) {
    std::vector<TermPtr> elements;
    if (!At(TokenKind::kRBrace)) {
      for (;;) {
        LOGRES_ASSIGN_OR_RETURN(TermPtr e, ParseTerm());
        elements.push_back(std::move(e));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "'}'"));
    return Term::SetTerm(std::move(elements));
  }
  if (Accept(TokenKind::kLBracket)) {
    std::vector<TermPtr> elements;
    if (!At(TokenKind::kRBracket)) {
      for (;;) {
        LOGRES_ASSIGN_OR_RETURN(TermPtr e, ParseTerm());
        elements.push_back(std::move(e));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
    return Term::MultisetTerm(std::move(elements));
  }
  if (Accept(TokenKind::kLt)) {
    std::vector<TermPtr> elements;
    if (!At(TokenKind::kGt)) {
      for (;;) {
        LOGRES_ASSIGN_OR_RETURN(TermPtr e, ParseTerm());
        elements.push_back(std::move(e));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kGt, "'>'"));
    return Term::SequenceTerm(std::move(elements));
  }
  // Parenthesized: tuple term, object pattern, or grouped expression.
  if (Accept(TokenKind::kLParen)) {
    LOGRES_ASSIGN_OR_RETURN(std::vector<Arg> args, ParseArgList());
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    // A single unlabeled non-self argument is a grouped expression.
    if (args.size() == 1 && args[0].label.empty() && !args[0].is_self) {
      return args[0].term;
    }
    return Term::TupleTerm(std::move(args));
  }
  if (At(TokenKind::kIdent)) {
    std::string text = Peek().text;
    // Function application: IDENT '(' terms ')'.
    if (Peek(1).kind == TokenKind::kLParen) {
      Advance();  // name
      Advance();  // '('
      std::vector<TermPtr> args;
      if (!At(TokenKind::kRParen)) {
        for (;;) {
          LOGRES_ASSIGN_OR_RETURN(TermPtr a, ParseTerm());
          args.push_back(std::move(a));
          if (!Accept(TokenKind::kComma)) break;
        }
      }
      LOGRES_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return Term::FunctionApp(ToUpper(text), std::move(args));
    }
    if (IsUpperStart(text)) {
      Advance();
      return Term::Variable(std::move(text));
    }
    return Error(StrCat(
        "unexpected identifier '", text,
        "' in term position (variables start upper-case; string constants "
        "are quoted)"));
  }
  return Error(StrCat("expected a term, found ", Peek().Describe()));
}

Result<TermPtr> Parser::ParseMultiplicative() {
  LOGRES_ASSIGN_OR_RETURN(TermPtr lhs, ParsePrimary());
  for (;;) {
    ArithOp op;
    if (At(TokenKind::kStar)) {
      op = ArithOp::kMul;
    } else if (At(TokenKind::kSlash)) {
      op = ArithOp::kDiv;
    } else if (At(TokenKind::kPercent)) {
      op = ArithOp::kMod;
    } else {
      return lhs;
    }
    Advance();
    LOGRES_ASSIGN_OR_RETURN(TermPtr rhs, ParsePrimary());
    lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
  }
}

Result<TermPtr> Parser::ParseTerm() {
  LOGRES_ASSIGN_OR_RETURN(TermPtr lhs, ParseMultiplicative());
  for (;;) {
    ArithOp op;
    if (At(TokenKind::kPlus)) {
      op = ArithOp::kAdd;
    } else if (At(TokenKind::kMinus)) {
      op = ArithOp::kSub;
    } else {
      return lhs;
    }
    Advance();
    LOGRES_ASSIGN_OR_RETURN(TermPtr rhs, ParseMultiplicative());
    lhs = Term::Arith(op, std::move(lhs), std::move(rhs));
  }
}

Result<std::vector<Arg>> Parser::ParseArgList() {
  std::vector<Arg> args;
  if (At(TokenKind::kRParen)) return args;
  for (;;) {
    Arg arg;
    if (AtIdent("self")) {
      Advance();
      Accept(TokenKind::kColon);  // `self X` and `self: X` both accepted
      arg.is_self = true;
      LOGRES_ASSIGN_OR_RETURN(arg.term, ParseTerm());
    } else if (At(TokenKind::kIdent) &&
               Peek(1).kind == TokenKind::kColon) {
      arg.label = ToLower(Advance().text);
      Advance();  // ':'
      LOGRES_ASSIGN_OR_RETURN(arg.term, ParseTerm());
    } else {
      LOGRES_ASSIGN_OR_RETURN(arg.term, ParseTerm());
    }
    args.push_back(std::move(arg));
    if (!Accept(TokenKind::kComma)) break;
  }
  return args;
}

Result<Literal> Parser::ParseLiteral() {
  bool negated = AcceptIdent("not");

  // Predicate or built-in call: IDENT '(' ... ')' not followed by an
  // operator. Try it first, rolling back if it turns out to be the lhs of
  // a comparison (e.g. `count(S) = N`).
  if (At(TokenKind::kIdent) && Peek(1).kind == TokenKind::kLParen) {
    size_t saved = pos_;
    std::string name = Advance().text;
    Advance();  // '('
    auto args_result = ParseArgList();
    if (args_result.ok() && At(TokenKind::kRParen)) {
      Advance();  // ')'
      bool followed_by_op =
          PeekCompareOp().has_value() || At(TokenKind::kPlus) ||
          At(TokenKind::kMinus) || At(TokenKind::kStar) ||
          At(TokenKind::kSlash) || At(TokenKind::kPercent);
      if (!followed_by_op) {
        std::string lower = ToLower(name);
        if (IsBuiltinPredicate(lower)) {
          std::vector<TermPtr> terms;
          for (Arg& a : *args_result) {
            if (a.is_self || !a.label.empty()) {
              return Error(StrCat("built-in predicate ", lower,
                                  " takes plain terms, not labeled "
                                  "arguments"));
            }
            terms.push_back(std::move(a.term));
          }
          return Literal::Builtin(lower, std::move(terms), negated);
        }
        return Literal::Predicate(lower, std::move(*args_result), negated);
      }
    }
    pos_ = saved;  // fall through to comparison parsing
  }

  // Comparison literal: term OP term.
  LOGRES_ASSIGN_OR_RETURN(TermPtr lhs, ParseTerm());
  std::optional<CompareOp> op = PeekCompareOp();
  if (!op.has_value()) {
    return Error(StrCat("expected a comparison operator after term '",
                        lhs->ToString(), "', found ", Peek().Describe()));
  }
  Advance();
  LOGRES_ASSIGN_OR_RETURN(TermPtr rhs, ParseTerm());
  return Literal::Compare(*op, std::move(lhs), std::move(rhs), negated);
}

Result<Literal> Parser::ParseHeadLiteral(bool negated) {
  LOGRES_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
  if (negated && lit.negated) {
    return Error("double negation in rule head");
  }
  if (negated) lit.negated = true;
  if (lit.kind == LiteralKind::kPredicate) return lit;
  // `member(X, f(Y))` heads define data functions (Example 2.2).
  if (lit.kind == LiteralKind::kBuiltin && lit.builtin == "member") {
    return lit;
  }
  return Error(
      StrCat("rule head must be a predicate (or a member/2 data-function "
             "definition), found: ",
             lit.ToString()));
}

Result<Rule> Parser::ParseOneRule() {
  Rule rule;
  if (Accept(TokenKind::kArrowLeft)) {
    // Denial: "<- body."
  } else {
    bool negated = false;
    if (AtIdent("not")) {
      Advance();
      negated = true;
    } else if (At(TokenKind::kMinus)) {
      Advance();
      negated = true;
    }
    LOGRES_ASSIGN_OR_RETURN(Literal head, ParseHeadLiteral(negated));
    rule.head = std::move(head);
    if (Accept(TokenKind::kPeriod)) return rule;  // fact
    LOGRES_RETURN_NOT_OK(Expect(TokenKind::kArrowLeft, "'<-' or '.'"));
    if (Accept(TokenKind::kPeriod)) return rule;  // "p(...) <- ." fact form
  }
  for (;;) {
    LOGRES_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    rule.body.push_back(std::move(lit));
    if (Accept(TokenKind::kComma)) continue;
    break;
  }
  LOGRES_RETURN_NOT_OK(Expect(TokenKind::kPeriod, "'.'"));
  return rule;
}

Status Parser::ParseRulesSection(std::vector<Rule>* rules) {
  while (!AtEnd() && !AtSectionKeyword()) {
    LOGRES_ASSIGN_OR_RETURN(Rule rule, ParseOneRule());
    rules->push_back(std::move(rule));
  }
  return Status::OK();
}

Result<Goal> Parser::ParseOneGoal() {
  Goal goal;
  Accept(TokenKind::kQuestion);
  for (;;) {
    LOGRES_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    goal.literals.push_back(std::move(lit));
    if (Accept(TokenKind::kComma)) continue;
    break;
  }
  Accept(TokenKind::kPeriod);
  return goal;
}

Result<ParsedModule> Parser::ParseModuleBlock() {
  ParsedModule module;
  if (!At(TokenKind::kIdent)) {
    return Error("expected a module name after 'module'");
  }
  module.name = ToLower(Advance().text);
  if (AcceptIdent("options")) {
    if (!At(TokenKind::kIdent)) return Error("expected a mode after options");
    std::string text = ToUpper(Advance().text);
    auto mode = ParseApplicationMode(text);
    if (!mode.has_value()) {
      return Error(StrCat("unknown application mode '", text,
                          "' (expected RIDI/RADI/RDDI/RIDV/RADV/RDDV)"));
    }
    module.default_mode = mode;
  }
  if (AcceptIdent("semantics")) {
    if (!At(TokenKind::kIdent)) {
      return Error("expected a semantics name after 'semantics'");
    }
    std::string text = ToLower(Advance().text);
    auto semantics = ParseEvalModeName(text);
    if (!semantics.has_value()) {
      return Error(StrCat("unknown semantics '", text,
                          "' (expected stratified/inflationary/"
                          "noninflationary)"));
    }
    module.semantics = semantics;
  }
  std::vector<Goal> goals;
  while (!AtEnd() && !AtIdent("end")) {
    if (AcceptIdent("domains")) {
      LOGRES_RETURN_NOT_OK(
          ParseTypeDeclSection(&module.schema, DeclKind::kDomain));
    } else if (AcceptIdent("classes")) {
      LOGRES_RETURN_NOT_OK(
          ParseTypeDeclSection(&module.schema, DeclKind::kClass));
    } else if (AcceptIdent("associations")) {
      LOGRES_RETURN_NOT_OK(
          ParseTypeDeclSection(&module.schema, DeclKind::kAssociation));
    } else if (AcceptIdent("functions")) {
      LOGRES_RETURN_NOT_OK(ParseFunctionsSection(&module.functions));
    } else if (AcceptIdent("rules")) {
      LOGRES_RETURN_NOT_OK(ParseRulesSection(&module.rules));
    } else if (AcceptIdent("goal")) {
      LOGRES_ASSIGN_OR_RETURN(Goal goal, ParseOneGoal());
      goals.push_back(std::move(goal));
    } else {
      return Error(StrCat("expected a section keyword inside module, found ",
                          Peek().Describe()));
    }
  }
  if (!AcceptIdent("end")) return Error("expected 'end' to close module");
  if (goals.size() > 1) {
    return Error(StrCat("module '", module.name,
                        "' declares more than one goal"));
  }
  if (!goals.empty()) module.goal = std::move(goals.front());
  return module;
}

Result<ParsedUnit> Parser::ParseUnit(bool inside_module) {
  (void)inside_module;
  ParsedUnit unit;
  while (!AtEnd()) {
    if (AcceptIdent("domains")) {
      LOGRES_RETURN_NOT_OK(
          ParseTypeDeclSection(&unit.schema, DeclKind::kDomain));
    } else if (AcceptIdent("classes")) {
      LOGRES_RETURN_NOT_OK(
          ParseTypeDeclSection(&unit.schema, DeclKind::kClass));
    } else if (AcceptIdent("associations")) {
      LOGRES_RETURN_NOT_OK(
          ParseTypeDeclSection(&unit.schema, DeclKind::kAssociation));
    } else if (AcceptIdent("functions")) {
      LOGRES_RETURN_NOT_OK(ParseFunctionsSection(&unit.functions));
    } else if (AcceptIdent("rules")) {
      LOGRES_RETURN_NOT_OK(ParseRulesSection(&unit.rules));
    } else if (AcceptIdent("goal")) {
      LOGRES_ASSIGN_OR_RETURN(Goal goal, ParseOneGoal());
      unit.goals.push_back(std::move(goal));
    } else if (AcceptIdent("module")) {
      LOGRES_ASSIGN_OR_RETURN(ParsedModule module, ParseModuleBlock());
      unit.modules.push_back(std::move(module));
    } else {
      return Error(StrCat("expected a section keyword, found ",
                          Peek().Describe()));
    }
  }
  return unit;
}

}  // namespace

Result<ParsedUnit> Parse(const std::string& source) {
  LOGRES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseUnit(/*inside_module=*/false);
}

Result<Rule> ParseRule(const std::string& source) {
  LOGRES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  LOGRES_ASSIGN_OR_RETURN(Rule rule, parser.ParseOneRule());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after rule");
  }
  return rule;
}

Result<Type> ParseType(const std::string& source) {
  LOGRES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  LOGRES_ASSIGN_OR_RETURN(Type type, parser.ParseTypeExpr());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after type");
  }
  return type;
}

Result<Goal> ParseGoal(const std::string& source) {
  LOGRES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  LOGRES_ASSIGN_OR_RETURN(Goal goal, parser.ParseOneGoal());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after goal");
  }
  return goal;
}

}  // namespace logres
