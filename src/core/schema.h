// LOGRES schemas (paper Definition 2 and Section 2.1).
//
// A schema is a set of *type equations* LHS = RHS partitioned into domains,
// classes, and associations, plus an `isa` partial order over classes.
//
// Structural rules enforced here (all from Section 2.1 / Definition 2):
//  * domain RHSs may not reference classes or associations;
//  * association RHSs may reference only classes and domains (associations
//    cannot contain associations);
//  * class RHSs may reference classes (object sharing, via oids), domains,
//    and — as a structure-borrowing alias only — an association name
//    (Example 3.4's "IP = PAIR");
//  * `C1 isa C2` requires both to be classes with Sigma(C1) ≼ Sigma(C2);
//  * multiple inheritance only among classes sharing a common ancestor:
//    the universe of oids is partitioned into disjoint hierarchies, so
//    every class must have exactly one root ancestor;
//  * a renaming policy resolves label conflicts under multiple inheritance;
//  * domain equations must be acyclic (classes may be recursive: a class
//    component is an oid indirection, not an embedded value).
//
// Inheritance is modeled as in the paper's STUDENT example: inside a class
// RHS tuple, an *unlabeled* component naming a declared superclass is
// inlined ("we may regard BDATE and ADDRESS as properties of STUDENT");
// every other class-named component is an oid reference (object sharing).
// EffectiveFields() returns the flattened attribute list used for
// predicates and refinement.

#ifndef LOGRES_CORE_SCHEMA_H_
#define LOGRES_CORE_SCHEMA_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/type.h"
#include "util/status.h"

namespace logres {

/// \brief What a declared name denotes.
enum class DeclKind { kDomain, kClass, kAssociation };

const char* DeclKindName(DeclKind kind);

/// \brief One `sub isa super` declaration. `component_label`, when
/// non-empty, records the paper's labeled form "EMPL emp ISA PERSON":
/// the labeled *component* of sub is an object of super (object sharing
/// with an isa-style guarantee), not a subclass relation over sub itself.
struct IsaDecl {
  std::string sub;
  std::string super;
  std::string component_label;
};

/// \brief A LOGRES schema: named type equations + isa hierarchy.
class Schema {
 public:
  // ---- Construction -------------------------------------------------------
  Status DeclareDomain(const std::string& name, Type type);
  Status DeclareClass(const std::string& name, Type type);
  Status DeclareAssociation(const std::string& name, Type type);

  /// \brief Declares `sub isa super` (or the labeled component form).
  Status DeclareIsa(const std::string& sub, const std::string& super,
                    const std::string& component_label = "");

  /// \brief Renaming policy: when \p cls inherits a conflicting label from
  /// superclass \p super, the inherited field is exposed as \p new_label.
  Status DeclareInheritanceRename(const std::string& cls,
                                  const std::string& super,
                                  const std::string& old_label,
                                  const std::string& new_label);

  /// \brief Removes a declaration (used by RDD* module modes). Errors if
  /// other declarations still reference it.
  Status Undeclare(const std::string& name);

  /// \brief Full well-formedness check (see file comment). Also run
  /// incrementally by the Declare* methods where cheap.
  Status Validate() const;

  /// \brief Merges \p other into this schema (module application S0 ∪ S_M).
  /// Re-declaring an existing name with a different type is an error;
  /// an identical re-declaration is a no-op.
  Status Merge(const Schema& other);

  // ---- Lookup -------------------------------------------------------------
  bool Has(const std::string& name) const;
  bool IsDomain(const std::string& name) const;
  bool IsClass(const std::string& name) const;
  bool IsAssociation(const std::string& name) const;

  Result<DeclKind> KindOf(const std::string& name) const;
  Result<Type> TypeOf(const std::string& name) const;

  std::vector<std::string> DomainNames() const;
  std::vector<std::string> ClassNames() const;
  std::vector<std::string> AssociationNames() const;
  const std::vector<IsaDecl>& isa_decls() const { return isa_decls_; }

  /// \brief The renaming policy entries: (class, super, old label) ->
  /// exposed label.
  const std::map<std::tuple<std::string, std::string, std::string>,
                 std::string>&
  renames() const {
    return renames_;
  }

  // ---- isa hierarchy ------------------------------------------------------
  /// \brief Reflexive-transitive isa reachability (classes only).
  bool IsaReachable(const std::string& sub, const std::string& super) const;

  /// \brief Direct superclasses of \p cls.
  std::vector<std::string> DirectSuperclasses(const std::string& cls) const;

  /// \brief All (transitive, excluding self) superclasses.
  std::vector<std::string> AllSuperclasses(const std::string& cls) const;

  /// \brief All (transitive, excluding self) subclasses.
  std::vector<std::string> AllSubclasses(const std::string& cls) const;

  /// \brief The unique root of \p cls's generalization hierarchy.
  Result<std::string> RootOf(const std::string& cls) const;

  /// \brief True when the two classes belong to the same hierarchy — the
  /// precondition for their oid sets being allowed to intersect (Def. 4b).
  bool SameHierarchy(const std::string& c1, const std::string& c2) const;

  // ---- Refinement & effective structure -----------------------------------
  /// \brief The refinement relation τ1 ≼ τ2 of Definition 2.
  Result<bool> IsRefinement(const Type& t1, const Type& t2) const;

  /// \brief Unification compatibility (Section 3.1): either refines the
  /// other.
  Result<bool> AreCompatible(const Type& t1, const Type& t2) const;

  /// \brief Flattened attribute list of a class or association: inherited
  /// superclass components inlined (with renaming policy applied), other
  /// class components kept as Named references (oid-valued), domains and
  /// association aliases expanded one level to a tuple.
  Result<std::vector<std::pair<std::string, Type>>> EffectiveFields(
      const std::string& name) const;

  /// \brief EffectiveFields wrapped back into a tuple type.
  Result<Type> PredicateTuple(const std::string& name) const;

  /// \brief Structurally expands \p type: domain names replaced by their
  /// (expanded) RHS; class names kept (they denote oid references);
  /// association names expanded like domains.
  Result<Type> Expand(const Type& type) const;

  std::string ToString() const;

 private:
  struct Decl {
    DeclKind kind;
    Type type;
  };

  Status Declare(const std::string& name, DeclKind kind, Type type);
  Status CheckDomainAcyclic(const std::string& name,
                            std::set<std::string>* in_progress) const;
  Result<bool> RefineImpl(const Type& t1, const Type& t2,
                          std::set<std::pair<std::string, std::string>>*
                              in_progress) const;

  std::map<std::string, Decl> decls_;
  std::vector<IsaDecl> isa_decls_;
  // (cls, super, old_label) -> new_label
  std::map<std::tuple<std::string, std::string, std::string>, std::string>
      renames_;
};

}  // namespace logres

#endif  // LOGRES_CORE_SCHEMA_H_
