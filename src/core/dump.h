// Database state persistence: dump a LOGRES state (E, R, S) to a textual
// form and load it back.
//
// ALGRES was a main-memory environment and LOGRES inherits that; dumps
// are how a state survives a process (and how the interactive shell's
// `save`/`open` work). The format is line-oriented and human-readable:
//
//   generator 17;
//   domains ... classes ... associations ...   -- the schema, as source
//   functions DESC: PERSON -> {PERSON};
//   rules tc(a: X, b: Y) <- e(a: X, b: Y).
//   objects
//     PERSON 3 = (name: "ann", spouse: oid(4));
//     STUDENT 3;                 -- additional class membership, same oid
//   tuples
//     LIKES (who: oid(3), what: "jazz");
//
// Oids are written as `oid(n)` (the `#n` display form is not lexable).
// Dump and load round-trip exactly: load(dump(db)) == db, including the
// oid generator position, as the tests verify.

#ifndef LOGRES_CORE_DUMP_H_
#define LOGRES_CORE_DUMP_H_

#include <string>

#include "core/database.h"
#include "util/status.h"

namespace logres {

/// \brief Renders a schema back to parseable source text (sections,
/// `NAME = TYPE;` equations, isa and renaming declarations). Backing
/// associations of data functions are omitted (they are regenerated).
std::string SchemaToSource(const Schema& schema);

/// \brief Renders a registered module back to a parseable
/// `module <name> [options MODE] [semantics NAME] ... end` block.
/// Round-trips through Module::Parse; the journal uses it to make
/// ApplyByName commits self-contained.
std::string ModuleToSource(const Module& module);

/// \brief Serializes the full database state, including registered
/// module blocks (format v2; v1 dumps without modules still load).
std::string DumpDatabase(const Database& db);

/// \brief Reconstructs a database from DumpDatabase output.
Result<Database> LoadDatabase(const std::string& dump);

/// \brief Renders a single value in dump syntax (oids as `oid(n)`).
std::string ValueToSource(const Value& value);

/// \brief Parses a value in dump syntax.
Result<Value> ParseValue(const std::string& source);

}  // namespace logres

#endif  // LOGRES_CORE_DUMP_H_
