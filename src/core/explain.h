// Program explanation and monitoring utilities.
//
// The paper's future-work list (Section 5) calls for "a complete
// programming environment for LOGRES, with tools supporting the design,
// debugging, and monitoring of LOGRES databases and programs". This
// module provides the inspection layer those tools build on:
//
//  * ExplainProgram    — human-readable report of an analyzed program:
//                        per-rule execution schedule, inferred variable
//                        types, invention/deletion flags, and the stratum
//                        assignment;
//  * DependencyGraphDot — the predicate dependency graph (negative edges
//                        dashed) in Graphviz DOT, for visualizing why a
//                        program is or is not stratified;
//  * DiffInstances     — the fact-level delta between two instances
//                        (what a module application changed);
//  * ExplainStats      — renders evaluator statistics.

#ifndef LOGRES_CORE_EXPLAIN_H_
#define LOGRES_CORE_EXPLAIN_H_

#include <string>

#include "core/eval.h"
#include "core/instance.h"
#include "core/typecheck.h"

namespace logres {

/// \brief One-line-per-fact difference report between two instances.
struct InstanceDiff {
  std::vector<std::string> added;    // facts in `after` only
  std::vector<std::string> removed;  // facts in `before` only

  bool empty() const { return added.empty() && removed.empty(); }
  std::string ToString() const;
};

/// \brief Renders an analyzed program: rules in execution order with
/// their schedules, variable types, strata.
std::string ExplainProgram(const CheckedProgram& program);

/// \brief Graphviz DOT rendering of the predicate dependency graph.
/// Solid edges are positive dependencies, dashed edges negative
/// (negation, deletion, or aggregating data-function use).
std::string DependencyGraphDot(const Schema& schema,
                               const CheckedProgram& program);

/// \brief Computes the fact-level difference `after − before` /
/// `before − after`.
InstanceDiff DiffInstances(const Instance& before, const Instance& after);

/// \brief Renders evaluation statistics.
std::string ExplainStats(const EvalStats& stats);

}  // namespace logres

#endif  // LOGRES_CORE_EXPLAIN_H_
