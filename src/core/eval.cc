#include "core/eval.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "algres/interner.h"
#include "core/undo_log.h"
#include "util/failpoint.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace logres {

namespace {

// ---------------------------------------------------------------------------
// Value unification with oid coercions

Value StripSelf(const Value& tuple) {
  if (tuple.kind() != ValueKind::kTuple) return tuple;
  std::vector<std::pair<std::string, Value>> fields;
  for (const auto& [label, v] : tuple.tuple_fields()) {
    if (label != kSelfLabel) fields.emplace_back(label, v);
  }
  return Value::MakeTuple(std::move(fields));
}

bool ValuesUnify(const Value& a, const Value& b) {
  if (a == b) return true;
  // A whole-object binding (tuple with the reserved self field) unifies
  // with the bare oid of the same object.
  if (a.kind() == ValueKind::kOid && b.kind() == ValueKind::kTuple) {
    std::optional<Value> self = b.FindField(kSelfLabel);
    return self.has_value() && *self == a;
  }
  if (b.kind() == ValueKind::kOid && a.kind() == ValueKind::kTuple) {
    std::optional<Value> self = a.FindField(kSelfLabel);
    return self.has_value() && *self == b;
  }
  // Two tuples where only one carries the self field: compare modulo self.
  if (a.kind() == ValueKind::kTuple && b.kind() == ValueKind::kTuple) {
    bool a_self = a.FindField(kSelfLabel).has_value();
    bool b_self = b.FindField(kSelfLabel).has_value();
    if (a_self != b_self) return StripSelf(a) == StripSelf(b);
    return false;
  }
  // Numeric cross-kind equality (3 == 3.0).
  if ((a.kind() == ValueKind::kInt && b.kind() == ValueKind::kReal) ||
      (a.kind() == ValueKind::kReal && b.kind() == ValueKind::kInt)) {
    auto c = CompareValues(a, b);
    return c.ok() && c.value() == 0;
  }
  return false;
}

std::string SerializeBindings(const Bindings& bindings) {
  std::string out;
  for (const auto& [var, value] : bindings) {
    out += var;
    out += '=';
    out += value.ToString();
    out += ';';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Deltas (Appendix B's Delta+ / Delta-)

struct ClassFact {
  std::string cls;
  Oid oid;
  Value ovalue;

  bool operator<(const ClassFact& other) const {
    if (cls != other.cls) return cls < other.cls;
    if (oid != other.oid) return oid < other.oid;
    return ovalue < other.ovalue;
  }
};

struct AssocFact {
  std::string assoc;
  Value tuple;

  bool operator<(const AssocFact& other) const {
    if (assoc != other.assoc) return assoc < other.assoc;
    return tuple < other.tuple;
  }
};

struct Delta {
  // Vectors preserve rule/firing order: the non-commutative ⊕ composition
  // lets later additions supersede earlier o-values for the same oid.
  std::vector<ClassFact> add_objects;
  std::vector<ClassFact> del_objects;
  std::vector<AssocFact> add_tuples;
  std::vector<AssocFact> del_tuples;

  bool empty() const {
    return add_objects.empty() && del_objects.empty() &&
           add_tuples.empty() && del_tuples.empty();
  }
};

// A worker's request for an invented oid (Definition 8). Workers never
// touch the oid generator or the invention memo — they record the memo
// key plus the head's provided fields, and the coordinator resolves the
// requests in task order during the deterministic merge, which reproduces
// the serial generator sequence exactly.
struct InventionRequest {
  // Position of the placeholder ClassFact in the task's add_objects.
  size_t add_index = 0;
  // Memo key: (rule index, serialized body valuation).
  size_t rule_index = 0;
  std::string bindings_key;
  // Head fields already grounded by the worker; the o-value is assembled
  // at merge time because the existing-object overlay needs the oid.
  std::map<std::string, Value> provided;
};

// A contiguous shard [begin, end) of the delta literal's fact scan, used
// to split one rule's semi-naive enumeration across workers while keeping
// chunk-concatenation order equal to the serial scan order.
struct ShardSpec {
  size_t begin = 0;
  size_t end = static_cast<size_t>(-1);
};

constexpr size_t kNoDeltaPos = static_cast<size_t>(-1);

}  // namespace

// ---------------------------------------------------------------------------
// Term evaluation and matching

Result<Value> EvalTerm(const Schema& schema, const CheckedProgram& program,
                       const Instance& instance, const TermPtr& term,
                       const Bindings& bindings) {
  switch (term->kind()) {
    case TermKind::kConstant:
      return term->constant();
    case TermKind::kVariable:
    case TermKind::kSelfVariable: {
      auto it = bindings.find(term->name());
      if (it == bindings.end()) {
        return Status::ExecutionError(
            StrCat("unbound variable ", term->name()));
      }
      return it->second;
    }
    case TermKind::kTupleTerm: {
      std::vector<std::pair<std::string, Value>> fields;
      for (const Arg& arg : term->args()) {
        if (arg.is_self) {
          return Status::ExecutionError(
              "self marker inside a constructed tuple value");
        }
        LOGRES_ASSIGN_OR_RETURN(
            Value v,
            EvalTerm(schema, program, instance, arg.term, bindings));
        fields.emplace_back(ToLower(arg.label), std::move(v));
      }
      return Value::MakeTuple(std::move(fields));
    }
    case TermKind::kSetTerm:
    case TermKind::kMultisetTerm:
    case TermKind::kSequenceTerm: {
      std::vector<Value> elems;
      for (const TermPtr& e : term->elements()) {
        LOGRES_ASSIGN_OR_RETURN(
            Value v, EvalTerm(schema, program, instance, e, bindings));
        elems.push_back(std::move(v));
      }
      if (term->kind() == TermKind::kSetTerm) {
        return Value::MakeSet(std::move(elems));
      }
      if (term->kind() == TermKind::kMultisetTerm) {
        return Value::MakeMultiset(std::move(elems));
      }
      return Value::MakeSequence(std::move(elems));
    }
    case TermKind::kFunctionApp: {
      // F(a1..an) denotes the set {m | $fn$F(arg1: a1, ..., member: m)}
      // in the *current* state — data functions are materialized by their
      // backing association (Section 2.1).
      std::string fname = ToUpper(term->name());
      auto fit = program.functions.find(fname);
      if (fit == program.functions.end()) {
        return Status::NotFound(StrCat("unknown function ", fname));
      }
      const FunctionDecl& fn = fit->second;
      if (term->elements().size() != fn.arg_types.size()) {
        return Status::TypeError(
            StrCat("function ", fname, " expects ", fn.arg_types.size(),
                   " arguments"));
      }
      std::vector<Value> args;
      for (const TermPtr& a : term->elements()) {
        LOGRES_ASSIGN_OR_RETURN(
            Value v, EvalTerm(schema, program, instance, a, bindings));
        args.push_back(std::move(v));
      }
      std::vector<Value> members;
      for (const Value& tuple : instance.TuplesOf(fn.BackingAssociation())) {
        bool match = true;
        for (size_t i = 0; i < args.size() && match; ++i) {
          std::optional<Value> fv = tuple.FindField(StrCat("arg", i + 1));
          if (!fv.has_value() || !ValuesUnify(*fv, args[i])) match = false;
        }
        if (!match) continue;
        std::optional<Value> m = tuple.FindField("member");
        if (m.has_value()) members.push_back(*m);
      }
      return Value::MakeSet(std::move(members));
    }
    case TermKind::kArith: {
      LOGRES_ASSIGN_OR_RETURN(
          Value a,
          EvalTerm(schema, program, instance, term->lhs(), bindings));
      LOGRES_ASSIGN_OR_RETURN(
          Value b,
          EvalTerm(schema, program, instance, term->rhs(), bindings));
      return EvalArith(term->arith_op(), a, b);
    }
    case TermKind::kObjectPattern:
      return Status::ExecutionError("object pattern in value position");
  }
  return Status::ExecutionError("unreachable");
}

Result<bool> MatchTerm(const Schema& schema, const CheckedProgram& program,
                       const Instance& instance, const TermPtr& term,
                       const Value& value, Bindings* bindings) {
  switch (term->kind()) {
    case TermKind::kConstant:
      return ValuesUnify(term->constant(), value);
    case TermKind::kVariable:
    case TermKind::kSelfVariable: {
      auto it = bindings->find(term->name());
      if (it != bindings->end()) return ValuesUnify(it->second, value);
      bindings->emplace(term->name(), value);
      return true;
    }
    case TermKind::kTupleTerm:
    case TermKind::kObjectPattern: {
      if (value.kind() == ValueKind::kOid) {
        // Object pattern: dereference through the oid (Example 3.1,
        // school(dean: (self X))).
        auto ov = instance.OValue(value.oid_value());
        for (const Arg& arg : term->args()) {
          if (arg.is_self) {
            LOGRES_ASSIGN_OR_RETURN(
                bool ok, MatchTerm(schema, program, instance, arg.term,
                                   value, bindings));
            if (!ok) return false;
            continue;
          }
          if (!ov.ok()) return false;
          std::optional<Value> fv =
              ov.value().FindField(ToLower(arg.label));
          LOGRES_ASSIGN_OR_RETURN(
              bool ok,
              MatchTerm(schema, program, instance, arg.term,
                        fv.has_value() ? *fv : Value::Nil(), bindings));
          if (!ok) return false;
        }
        return true;
      }
      if (value.kind() == ValueKind::kTuple) {
        for (const Arg& arg : term->args()) {
          std::string label = arg.is_self ? kSelfLabel : ToLower(arg.label);
          if (label.empty()) return false;  // unlabeled pattern component
          std::optional<Value> fv = value.FindField(label);
          if (!fv.has_value()) return false;
          LOGRES_ASSIGN_OR_RETURN(
              bool ok, MatchTerm(schema, program, instance, arg.term, *fv,
                                 bindings));
          if (!ok) return false;
        }
        return true;
      }
      return false;
    }
    case TermKind::kSequenceTerm: {
      if (value.kind() != ValueKind::kSequence) return false;
      if (term->elements().size() != value.elements().size()) return false;
      for (size_t i = 0; i < term->elements().size(); ++i) {
        LOGRES_ASSIGN_OR_RETURN(
            bool ok, MatchTerm(schema, program, instance,
                               term->elements()[i], value.elements()[i],
                               bindings));
        if (!ok) return false;
      }
      return true;
    }
    case TermKind::kSetTerm:
    case TermKind::kMultisetTerm:
    case TermKind::kFunctionApp:
    case TermKind::kArith: {
      // Non-pattern terms: ground them and compare.
      LOGRES_ASSIGN_OR_RETURN(
          Value v, EvalTerm(schema, program, instance, term, *bindings));
      return ValuesUnify(v, value);
    }
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Literal enumeration

class JoinContext {
 public:
  JoinContext(const Schema& schema, const CheckedProgram& program,
              const Instance& instance, bool use_indexes = true)
      : schema_(schema),
        program_(program),
        instance_(instance),
        use_indexes_(use_indexes) {}

  Result<Value> Eval(const TermPtr& term, const Bindings& b) const {
    return EvalTerm(schema_, program_, instance_, term, b);
  }
  Result<bool> Match(const TermPtr& term, const Value& value,
                     Bindings* b) const {
    return MatchTerm(schema_, program_, instance_, term, value, b);
  }

  using Callback = std::function<Status(const Bindings&)>;

  /// Enumerates every extension of `b` satisfying `lit` against the
  /// instance. `restrict_to` narrows a positive predicate literal's fact
  /// source (semi-naive delta); pass nullptr for the full instance.
  /// `shard` (parallel evaluation only) limits a positive predicate
  /// literal's scan to a contiguous slice of the source.
  Status ForEachMatch(const CheckedLiteral& lit, const Bindings& b,
                      const Instance* restrict_to,
                      const std::map<std::string, Type>& var_types,
                      const Callback& cb,
                      const ShardSpec* shard = nullptr) const {
    switch (lit.kind()) {
      case LiteralKind::kPredicate:
        if (!lit.negated()) {
          return ForEachPredicateMatch(*lit.pred, b,
                                       restrict_to ? *restrict_to
                                                   : instance_,
                                       cb, shard);
        }
        return ForEachNegatedMatch(lit, b, var_types, cb);
      case LiteralKind::kCompare:
        return ForEachCompareMatch(lit, b, cb);
      case LiteralKind::kBuiltin: {
        auto eval = [&, bptr = &b](const TermPtr& t) {
          return Eval(t, *bptr);
        };
        auto match = [&](const TermPtr& t, const Value& v, Bindings* out) {
          return Match(t, v, out);
        };
        LOGRES_ASSIGN_OR_RETURN(
            std::vector<Bindings> extensions,
            SolveBuiltin(lit.source, b, eval, match));
        if (lit.negated()) {
          if (extensions.empty()) return cb(b);
          return Status::OK();
        }
        for (const Bindings& e : extensions) {
          LOGRES_RETURN_NOT_OK(cb(e));
        }
        return Status::OK();
      }
    }
    return Status::OK();
  }

  /// The value a bound term probes an index with: whole-object bindings
  /// reduce to their oid (delegated to the instance, which owns the
  /// access paths). Copy-free: returns a reference into \p v.
  static const Value& NormalizeForIndex(const Value& v) {
    return Instance::NormalizeForIndex(v);
  }

  /// Positive predicate matching against `source`. A non-null `shard`
  /// restricts the scan to ordinals [shard->begin, shard->end) of the
  /// source's fact set and forces the scan path (index probes would
  /// enumerate the whole source once per shard).
  Status ForEachPredicateMatch(const ResolvedPredicate& rp,
                               const Bindings& b, const Instance& source,
                               const Callback& cb,
                               const ShardSpec* shard = nullptr) const {
    if (rp.is_class) {
      // A bound self term pins the oid: skip the scan.
      if (shard == nullptr && use_indexes_ && rp.self_term &&
          rp.self_term->kind() == TermKind::kVariable) {
        auto it = b.find(rp.self_term->name());
        if (it != b.end()) {
          const Value& probe = NormalizeForIndex(it->second);
          if (probe.kind() == ValueKind::kOid) {
            Oid oid = probe.oid_value();
            if (!source.OidsOf(rp.name).count(oid)) return Status::OK();
            return MatchClassObject(rp, b, oid, cb);
          }
        }
      }
      // A ground field narrows the class scan through a lazily built
      // field index (this is what keeps the Definition-7 invention check
      // from scanning the whole class per candidate valuation).
      if (shard == nullptr && use_indexes_ && &source == &instance_) {
        std::optional<std::pair<std::string, Value>> probe =
            GroundProbe(rp, b);
        if (probe.has_value()) {
          const auto& index = instance_.ClassIndex(rp.name, probe->first);
          auto range = index.equal_range(NormalizeForIndex(probe->second));
          for (auto it = range.first; it != range.second; ++it) {
            LOGRES_RETURN_NOT_OK(MatchClassObject(rp, b, it->second, cb));
          }
          return Status::OK();
        }
      }
      size_t ordinal = 0;
      for (Oid oid : source.OidsOf(rp.name)) {
        if (shard != nullptr) {
          size_t i = ordinal++;
          if (i < shard->begin) continue;
          if (i >= shard->end) break;
        }
        Bindings b2 = b;
        Value oid_value = Value::MakeOid(oid);
        if (rp.self_term) {
          LOGRES_ASSIGN_OR_RETURN(bool ok,
                                  Match(rp.self_term, oid_value, &b2));
          if (!ok) continue;
        }
        // O-values live on the full instance even when enumeration is
        // delta-restricted.
        auto ov = instance_.OValue(oid);
        if (!ov.ok()) {
          auto ov2 = source.OValue(oid);
          if (!ov2.ok()) continue;
          ov = ov2;
        }
        bool ok = true;
        if (rp.tuple_var) {
          LOGRES_ASSIGN_OR_RETURN(
              Value with_self, ov.value().WithField(kSelfLabel, oid_value));
          LOGRES_ASSIGN_OR_RETURN(ok, Match(rp.tuple_var, with_self, &b2));
          if (!ok) continue;
        }
        for (const auto& [label, term] : rp.fields) {
          std::optional<Value> fv = ov.value().FindField(label);
          LOGRES_ASSIGN_OR_RETURN(
              ok, Match(term, fv.has_value() ? *fv : Value::Nil(), &b2));
          if (!ok) break;
        }
        if (!ok) continue;
        LOGRES_RETURN_NOT_OK(cb(b2));
      }
      return Status::OK();
    }
    // Associations: with a ground field available, probe a lazily built
    // hash index on (association, label) instead of scanning. Only the
    // full instance is indexed; semi-naive deltas are small scans.
    if (shard == nullptr && use_indexes_ && &source == &instance_) {
      std::optional<std::pair<std::string, Value>> probe =
          GroundProbe(rp, b);
      if (probe.has_value()) {
        const auto& index = instance_.AssocIndex(rp.name, probe->first);
        auto range = index.equal_range(NormalizeForIndex(probe->second));
        for (auto it = range.first; it != range.second; ++it) {
          LOGRES_RETURN_NOT_OK(MatchAssocTuple(rp, b, it->second, cb));
        }
        return Status::OK();
      }
    }
    size_t ordinal = 0;
    for (const Value& tuple : source.TuplesOf(rp.name)) {
      if (shard != nullptr) {
        size_t i = ordinal++;
        if (i < shard->begin) continue;
        if (i >= shard->end) break;
      }
      LOGRES_RETURN_NOT_OK(MatchAssocTuple(rp, b, tuple, cb));
    }
    return Status::OK();
  }

  /// True iff some fact matches `rp` under (an extension of) `b`.
  Result<bool> ExistsMatch(const ResolvedPredicate& rp,
                           const Bindings& b) const {
    bool found = false;
    // A sentinel status short-circuits the enumeration on first match.
    Status st = ForEachPredicateMatch(
        rp, b, instance_, [&](const Bindings&) -> Status {
          found = true;
          return Status::ExecutionError("$found$");
        });
    if (!st.ok() && st.message() != "$found$") return st;
    return found;
  }

 private:
  Status MatchClassObject(const ResolvedPredicate& rp, const Bindings& b,
                          Oid oid, const Callback& cb) const {
    Bindings b2 = b;
    Value oid_value = Value::MakeOid(oid);
    if (rp.self_term) {
      LOGRES_ASSIGN_OR_RETURN(bool ok, Match(rp.self_term, oid_value, &b2));
      if (!ok) return Status::OK();
    }
    auto ov = instance_.OValue(oid);
    if (!ov.ok()) return Status::OK();
    bool ok = true;
    if (rp.tuple_var) {
      LOGRES_ASSIGN_OR_RETURN(
          Value with_self, ov.value().WithField(kSelfLabel, oid_value));
      LOGRES_ASSIGN_OR_RETURN(ok, Match(rp.tuple_var, with_self, &b2));
      if (!ok) return Status::OK();
    }
    for (const auto& [label, term] : rp.fields) {
      std::optional<Value> fv = ov.value().FindField(label);
      LOGRES_ASSIGN_OR_RETURN(
          ok, Match(term, fv.has_value() ? *fv : Value::Nil(), &b2));
      if (!ok) return Status::OK();
    }
    return cb(b2);
  }

  Status MatchAssocTuple(const ResolvedPredicate& rp, const Bindings& b,
                         const Value& tuple, const Callback& cb) const {
    Bindings b2 = b;
    bool ok = true;
    if (rp.tuple_var) {
      LOGRES_ASSIGN_OR_RETURN(ok, Match(rp.tuple_var, tuple, &b2));
      if (!ok) return Status::OK();
    }
    for (const auto& [label, term] : rp.fields) {
      std::optional<Value> fv = tuple.FindField(label);
      LOGRES_ASSIGN_OR_RETURN(
          ok, Match(term, fv.has_value() ? *fv : Value::Nil(), &b2));
      if (!ok) return Status::OK();
    }
    return cb(b2);
  }

  /// First field of `rp` whose term is ground under `b` (a constant or a
  /// bound variable), with its probe value. Only exactly-comparable kinds
  /// qualify — Match() performs coercions (3 unifies with 3.0) that an
  /// exact hash probe would miss, so reals and structured values fall
  /// back to the scan.
  std::optional<std::pair<std::string, Value>> GroundProbe(
      const ResolvedPredicate& rp, const Bindings& b) const {
    auto exact = [](const Value& v) {
      ValueKind k = NormalizeForIndex(v).kind();
      return k == ValueKind::kInt || k == ValueKind::kString ||
             k == ValueKind::kBool || k == ValueKind::kOid;
    };
    for (const auto& [label, term] : rp.fields) {
      if (term->kind() == TermKind::kConstant &&
          exact(term->constant())) {
        return std::make_pair(label, term->constant());
      }
      if (term->kind() == TermKind::kVariable) {
        auto it = b.find(term->name());
        if (it != b.end() && exact(it->second)) {
          return std::make_pair(label, it->second);
        }
      }
    }
    return std::nullopt;
  }

  Status ForEachNegatedMatch(const CheckedLiteral& lit, const Bindings& b,
                             const std::map<std::string, Type>& var_types,
                             const Callback& cb) const {
    // Unbound variables of a negated literal range over the active domain
    // (Section 2.1: "variables which are only present in negated literals
    // be restricted to their current active domain").
    std::vector<std::string> vars;
    lit.source.CollectVariables(&vars);
    std::vector<std::string> unbound;
    for (const std::string& v : vars) {
      if (!b.count(v) &&
          std::find(unbound.begin(), unbound.end(), v) == unbound.end()) {
        unbound.push_back(v);
      }
    }
    if (unbound.empty()) {
      LOGRES_ASSIGN_OR_RETURN(bool exists, ExistsMatch(*lit.pred, b));
      if (!exists) return cb(b);
      return Status::OK();
    }
    // Enumerate active-domain values for each unbound variable.
    std::vector<std::vector<Value>> domains;
    for (const std::string& v : unbound) {
      auto it = var_types.find(v);
      if (it == var_types.end()) {
        return Status::UnsafeRule(
            StrCat("cannot determine the active domain of ", v,
                   " in negated literal ", lit.source.ToString()));
      }
      domains.push_back(ActiveDomain(it->second));
    }
    std::function<Status(size_t, Bindings&)> recurse =
        [&](size_t idx, Bindings& current) -> Status {
      if (idx == unbound.size()) {
        LOGRES_ASSIGN_OR_RETURN(bool exists,
                                ExistsMatch(*lit.pred, current));
        if (!exists) return cb(current);
        return Status::OK();
      }
      for (const Value& v : domains[idx]) {
        current[unbound[idx]] = v;
        LOGRES_RETURN_NOT_OK(recurse(idx + 1, current));
      }
      current.erase(unbound[idx]);
      return Status::OK();
    };
    Bindings current = b;
    return recurse(0, current);
  }

  Status ForEachCompareMatch(const CheckedLiteral& lit, const Bindings& b,
                             const Callback& cb) const {
    const Literal& src = lit.source;
    auto side_bound = [&](const TermPtr& t) {
      std::vector<std::string> vars;
      t->CollectVariables(&vars);
      for (const std::string& v : vars) {
        if (!b.count(v)) return false;
      }
      return true;
    };
    bool lb = side_bound(src.compare_lhs);
    bool rb = side_bound(src.compare_rhs);
    if (src.compare_op == CompareOp::kEq && !src.negated && !(lb && rb)) {
      // Binding equality: ground one side, match the other as a pattern.
      const TermPtr& ground_side = lb ? src.compare_lhs : src.compare_rhs;
      const TermPtr& pattern_side = lb ? src.compare_rhs : src.compare_lhs;
      if (!lb && !rb) {
        return Status::UnsafeRule(
            StrCat("neither side of ", src.ToString(), " is bound"));
      }
      LOGRES_ASSIGN_OR_RETURN(Value v, Eval(ground_side, b));
      Bindings b2 = b;
      LOGRES_ASSIGN_OR_RETURN(bool ok, Match(pattern_side, v, &b2));
      if (ok) return cb(b2);
      return Status::OK();
    }
    LOGRES_ASSIGN_OR_RETURN(Value l, Eval(src.compare_lhs, b));
    LOGRES_ASSIGN_OR_RETURN(Value r, Eval(src.compare_rhs, b));
    bool holds;
    if (src.compare_op == CompareOp::kEq) {
      holds = ValuesUnify(l, r);
    } else if (src.compare_op == CompareOp::kNe) {
      holds = !ValuesUnify(l, r);
    } else {
      LOGRES_ASSIGN_OR_RETURN(int c, CompareValues(l, r));
      switch (src.compare_op) {
        case CompareOp::kLt: holds = c < 0; break;
        case CompareOp::kLe: holds = c <= 0; break;
        case CompareOp::kGt: holds = c > 0; break;
        case CompareOp::kGe: holds = c >= 0; break;
        default: holds = false; break;
      }
    }
    if (src.negated) holds = !holds;
    if (holds) return cb(b);
    return Status::OK();
  }

  /// Values of `type` present in the current state (the paper's active
  /// domain). For classes: the class's oids. Otherwise: every value of
  /// matching structure found anywhere in the instance.
  std::vector<Value> ActiveDomain(const Type& type) const {
    std::vector<Value> out;
    if (type.kind() == TypeKind::kNamed && schema_.IsClass(type.name())) {
      for (Oid oid : instance_.OidsOf(type.name())) {
        out.push_back(Value::MakeOid(oid));
      }
      return out;
    }
    std::set<Value> seen;
    std::function<void(const Value&)> scan = [&](const Value& v) {
      if (StructurallyConforms(v, type)) seen.insert(v);
      if (v.kind() == ValueKind::kTuple) {
        for (const auto& [l, f] : v.tuple_fields()) {
          (void)l;
          scan(f);
        }
      } else if (v.is_collection()) {
        for (const Value& e : v.elements()) scan(e);
      }
    };
    for (const auto& [oid, ov] : instance_.ovalues()) {
      (void)oid;
      scan(ov);
    }
    for (const auto& [assoc, tuples] : instance_.associations()) {
      (void)assoc;
      for (const Value& t : tuples) scan(t);
    }
    out.assign(seen.begin(), seen.end());
    return out;
  }

  bool StructurallyConforms(const Value& v, const Type& type) const {
    switch (type.kind()) {
      case TypeKind::kInt: return v.kind() == ValueKind::kInt;
      case TypeKind::kString: return v.kind() == ValueKind::kString;
      case TypeKind::kBool: return v.kind() == ValueKind::kBool;
      case TypeKind::kReal: return v.kind() == ValueKind::kReal;
      case TypeKind::kNamed: {
        if (schema_.IsClass(type.name())) {
          return v.kind() == ValueKind::kOid &&
                 instance_.HasObject(type.name(), v.oid_value());
        }
        auto rhs = schema_.TypeOf(type.name());
        return rhs.ok() && StructurallyConforms(v, rhs.value());
      }
      case TypeKind::kTuple: {
        if (v.kind() != ValueKind::kTuple) return false;
        for (const auto& [label, ftype] : type.fields()) {
          std::optional<Value> fv = v.FindField(label);
          if (!fv.has_value() || !StructurallyConforms(*fv, ftype)) {
            return false;
          }
        }
        return true;
      }
      case TypeKind::kSet:
      case TypeKind::kMultiset:
      case TypeKind::kSequence: {
        ValueKind want = type.kind() == TypeKind::kSet
                             ? ValueKind::kSet
                             : (type.kind() == TypeKind::kMultiset
                                    ? ValueKind::kMultiset
                                    : ValueKind::kSequence);
        if (v.kind() != want) return false;
        for (const Value& e : v.elements()) {
          if (!StructurallyConforms(e, type.element())) return false;
        }
        return true;
      }
    }
    return false;
  }

  const Schema& schema_;
  const CheckedProgram& program_;
  const Instance& instance_;
  bool use_indexes_;
};

// ---------------------------------------------------------------------------
// Literal scheduling (sideways information passing)

// Variables that must already be bound for `term` to be *evaluated* (as
// opposed to pattern-matched): everything under a function application,
// arithmetic, or constructed-collection subterm.
void CollectEvalVars(const TermPtr& term, std::vector<std::string>* out) {
  switch (term->kind()) {
    case TermKind::kFunctionApp:
    case TermKind::kArith:
    case TermKind::kSetTerm:
    case TermKind::kMultisetTerm:
      term->CollectVariables(out);
      return;
    case TermKind::kTupleTerm:
    case TermKind::kObjectPattern:
      for (const Arg& a : term->args()) CollectEvalVars(a.term, out);
      return;
    case TermKind::kSequenceTerm:
      for (const TermPtr& e : term->elements()) CollectEvalVars(e, out);
      return;
    default:
      return;
  }
}

void AddLiteralVars(const CheckedLiteral& lit, std::set<std::string>* bound) {
  std::vector<std::string> vars;
  lit.source.CollectVariables(&vars);
  bound->insert(vars.begin(), vars.end());
}

// Bound-first execution order for a rule body: positive predicate
// literals within a maximal run (no compare/builtin/negated literal in
// between) are greedily reordered so the most-bound literal — and, under
// semi-naive evaluation, the delta-restricted literal — runs first and
// later literals become indexed probes. Non-positive literals are
// *barriers* that keep their original positions: comparisons and builtins
// can bind variables (so positives crossing them would see different
// bindings), and a negated literal's unbound variables range over the
// active domain — both observably depend on the set of bindings in force,
// which barrier-local reordering provably preserves (every run completes
// before the barrier either way). A positive literal carrying a term that
// must be *evaluated* (arithmetic, function application, constructed
// collection) is only eligible once those variables are bound, which the
// original order always permits.
std::vector<size_t> ScheduleBody(const CheckedRule& rule, size_t delta_pos) {
  std::vector<size_t> order;
  order.reserve(rule.body.size());
  std::set<std::string> bound;
  size_t i = 0;
  while (i < rule.body.size()) {
    const CheckedLiteral& lit = rule.body[i];
    bool positive_pred =
        lit.kind() == LiteralKind::kPredicate && !lit.negated();
    if (!positive_pred) {
      order.push_back(i);
      AddLiteralVars(lit, &bound);
      ++i;
      continue;
    }
    std::vector<size_t> run;
    while (i < rule.body.size() &&
           rule.body[i].kind() == LiteralKind::kPredicate &&
           !rule.body[i].negated()) {
      run.push_back(i);
      ++i;
    }
    while (!run.empty()) {
      size_t best = run.size();
      int best_score = -1;
      for (size_t k = 0; k < run.size(); ++k) {
        const ResolvedPredicate& rp = *rule.body[run[k]].pred;
        std::vector<std::string> eval_vars;
        bool eligible = true;
        for (const auto& [label, term] : rp.fields) {
          (void)label;
          eval_vars.clear();
          CollectEvalVars(term, &eval_vars);
          for (const std::string& v : eval_vars) {
            if (!bound.count(v)) {
              eligible = false;
              break;
            }
          }
          if (!eligible) break;
        }
        if (!eligible) continue;
        int score = 0;
        if (rp.self_term && rp.self_term->kind() == TermKind::kVariable &&
            bound.count(rp.self_term->name())) {
          score += 2;  // a bound self pins the oid outright
        }
        for (const auto& [label, term] : rp.fields) {
          (void)label;
          if (term->kind() == TermKind::kConstant) {
            score += 1;
          } else if (term->kind() == TermKind::kVariable &&
                     bound.count(term->name())) {
            score += 1;
          }
        }
        if (run[k] == delta_pos) score += 1000;  // small frontier first
        if (score > best_score) {
          best_score = score;
          best = k;
        }
      }
      // The earliest literal in original order is always eligible, so a
      // pick exists.
      if (best == run.size()) best = 0;
      order.push_back(run[best]);
      AddLiteralVars(rule.body[run[best]], &bound);
      run.erase(run.begin() + best);
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// Rule firing

// Enumerates all body valuations of `rule` against `instance`. With
// `delta`, at least one positive predicate literal is drawn from `delta`
// (semi-naive). With `reorder`, literals execute in the ScheduleBody
// order instead of source order (results identical; see ScheduleBody).
// The parallel evaluator narrows the work: `only_pos` runs a single
// delta-position choice instead of looping over all of them, and `shard`
// restricts the delta literal's scan to a contiguous slice — valid only
// when the delta literal executes first, which the task builder checks.
Status EnumerateBody(const JoinContext& ctx, const CheckedRule& rule,
                     const Instance* delta,
                     const JoinContext::Callback& cb, bool reorder = true,
                     size_t only_pos = kNoDeltaPos,
                     const ShardSpec* shard = nullptr) {
  std::vector<size_t> positive_preds;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (rule.body[i].kind() == LiteralKind::kPredicate &&
        !rule.body[i].negated()) {
      positive_preds.push_back(i);
    }
  }

  std::vector<size_t> order;
  std::function<Status(size_t, const Bindings&, size_t)> join =
      [&](size_t k, const Bindings& b, size_t delta_pos) -> Status {
    if (k == rule.body.size()) return cb(b);
    size_t idx = order.empty() ? k : order[k];
    const CheckedLiteral& lit = rule.body[idx];
    const Instance* restrict_to =
        (delta != nullptr && idx == delta_pos) ? delta : nullptr;
    const ShardSpec* lit_shard =
        (k == 0 && idx == delta_pos) ? shard : nullptr;
    return ctx.ForEachMatch(lit, b, restrict_to, rule.var_types,
                            [&](const Bindings& b2) -> Status {
                              return join(k + 1, b2, delta_pos);
                            },
                            lit_shard);
  };

  if (delta == nullptr || positive_preds.empty()) {
    if (reorder) order = ScheduleBody(rule, kNoDeltaPos);
    return join(0, Bindings{}, kNoDeltaPos);
  }
  if (only_pos != kNoDeltaPos) {
    if (reorder) order = ScheduleBody(rule, only_pos);
    return join(0, Bindings{}, only_pos);
  }
  for (size_t pos : positive_preds) {
    order.clear();
    if (reorder) order = ScheduleBody(rule, pos);
    LOGRES_RETURN_NOT_OK(join(0, Bindings{}, pos));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// The Evaluator

namespace {

// Assembles a head fact's tuple value from the schema field list: head
// terms first, then the existing o-value's fields, then nil.
Value AssembleTuple(const std::vector<std::pair<std::string, Type>>& fields,
                    const std::map<std::string, Value>& provided,
                    const Value* existing) {
  std::vector<std::pair<std::string, Value>> tuple;
  for (const auto& [label, ftype] : fields) {
    (void)ftype;
    auto it = provided.find(label);
    if (it != provided.end()) {
      tuple.emplace_back(label, it->second);
      continue;
    }
    if (existing != nullptr) {
      std::optional<Value> fv = existing->FindField(label);
      if (fv.has_value()) {
        tuple.emplace_back(label, *fv);
        continue;
      }
    }
    tuple.emplace_back(label, Value::Nil());
  }
  return Value::MakeTuple(std::move(tuple));
}

class HeadFirer {
 public:
  // With `deferred` set (parallel workers), oid invention is *requested*
  // rather than performed: `gen`/`memo` may be null, a placeholder fact is
  // pushed, and the coordinator resolves the request at merge time.
  HeadFirer(const Schema& schema, const CheckedProgram& program,
            const Instance& instance, OidGenerator* gen,
            std::map<std::pair<size_t, std::string>, Oid>* memo,
            EvalStats* stats,
            std::vector<InventionRequest>* deferred = nullptr)
      : schema_(schema),
        program_(program),
        instance_(instance),
        ctx_(schema, program, instance),
        gen_(gen),
        memo_(memo),
        stats_(stats),
        deferred_(deferred) {}

  Status Fire(const CheckedRule& rule, const Bindings& b, Delta* delta) {
    if (!rule.head.has_value()) return Status::OK();  // denial: no effect
    const ResolvedPredicate& rp = *rule.head->pred;
    stats_->rule_firings++;

    if (rule.head->negated()) return FireDeletion(rule, rp, b, delta);

    // Valuation-domain condition (Definition 7): "no extension θ' of θ
    // with F ⊨ θ'(head)". For a ground head θ' = θ and the condition is
    // subsumed by set semantics (and must NOT suppress Δ+ — the
    // F ∩ Δ+ ∩ Δ− carve-out depends on re-derivable facts); its bite is
    // on heads with an existential (invented) oid, where it stops a rule
    // from inventing again once a matching object exists. The check is
    // therefore applied inside FireClassAddition just before invention.
    if (rp.is_class) return FireClassAddition(rule, rp, b, delta);
    return FireAssocAddition(rule, rp, b, delta);
  }

 private:
  // Grounds a head term; an unbound head variable of class type denotes
  // nil (valuation-map point (c), Definition 8).
  Result<Value> EvalHeadTerm(const TermPtr& term, const Bindings& b) {
    if ((term->kind() == TermKind::kVariable ||
         term->kind() == TermKind::kSelfVariable) &&
        !b.count(term->name())) {
      return Value::Nil();
    }
    return EvalTerm(schema_, program_, instance_, term, b);
  }

  // Builds the field map of the new fact: tuple-variable base (projected
  // onto the predicate's fields) overlaid with the labeled head terms.
  Result<std::map<std::string, Value>> BuildFields(
      const ResolvedPredicate& rp, const Bindings& b) {
    std::map<std::string, Value> out;
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema_.EffectiveFields(rp.name));
    if (rp.tuple_var) {
      auto it = b.find(rp.tuple_var->name());
      if (it != b.end() && it->second.kind() == ValueKind::kTuple) {
        for (const auto& [flabel, ftype] : fields) {
          (void)ftype;
          std::optional<Value> fv = it->second.FindField(flabel);
          if (fv.has_value()) out[flabel] = *fv;
        }
      }
    }
    for (const auto& [label, term] : rp.fields) {
      LOGRES_ASSIGN_OR_RETURN(Value v, EvalHeadTerm(term, b));
      out[label] = std::move(v);
    }
    return out;
  }

  Status FireClassAddition(const CheckedRule& rule,
                           const ResolvedPredicate& rp, const Bindings& b,
                           Delta* delta) {
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema_.EffectiveFields(rp.name));
    LOGRES_ASSIGN_OR_RETURN(auto provided, BuildFields(rp, b));

    // Determine the oid: shared from the body (generalization hierarchy,
    // Section 3.1 case b) or invented (Definition 8 point b).
    Oid oid;
    bool have_oid = false;
    if (rp.self_term) {
      auto it = b.find(rp.self_term->name());
      if (it != b.end()) {
        if (it->second.kind() == ValueKind::kOid) {
          oid = it->second.oid_value();
          have_oid = true;
        } else if (it->second.kind() == ValueKind::kTuple) {
          std::optional<Value> self = it->second.FindField(kSelfLabel);
          if (self.has_value() && self->kind() == ValueKind::kOid) {
            oid = self->oid_value();
            have_oid = true;
          }
        }
      }
    }
    if (!have_oid && rp.tuple_var) {
      auto it = b.find(rp.tuple_var->name());
      if (it != b.end()) {
        if (it->second.kind() == ValueKind::kOid) {
          oid = it->second.oid_value();
          have_oid = true;
        } else if (it->second.kind() == ValueKind::kTuple) {
          std::optional<Value> self = it->second.FindField(kSelfLabel);
          if (self.has_value() && self->kind() == ValueKind::kOid) {
            oid = self->oid_value();
            have_oid = true;
          }
        }
      }
    }
    if (!have_oid) {
      // Existential head oid: the Definition-7 condition applies — do not
      // invent when some existing object already satisfies the head under
      // these bindings.
      LOGRES_ASSIGN_OR_RETURN(bool satisfied, ctx_.ExistsMatch(rp, b));
      if (satisfied) return Status::OK();
      if (deferred_ != nullptr) {
        // Parallel worker: request the oid instead of drawing one; the
        // placeholder is patched during the deterministic merge.
        deferred_->push_back(InventionRequest{delta->add_objects.size(),
                                              rule.index,
                                              SerializeBindings(b),
                                              std::move(provided)});
        delta->add_objects.push_back(ClassFact{rp.name, Oid{}, Value::Nil()});
        return Status::OK();
      }
      // Invented oid, memoized per (rule, body valuation): "once a rule
      // has been fired for a certain substitution and an oid has been
      // generated, that rule cannot generate any more oids for the same
      // substitution".
      auto key = std::make_pair(rule.index, SerializeBindings(b));
      auto it = memo_->find(key);
      if (it != memo_->end()) {
        oid = it->second;
      } else {
        oid = gen_->Next();
        memo_->emplace(std::move(key), oid);
        stats_->invented_oids++;
      }
    }

    const Value* existing = nullptr;
    Value existing_value;
    auto ov = instance_.OValue(oid);
    if (ov.ok()) {
      existing_value = ov.value();
      existing = &existing_value;
    }
    Value assembled = AssembleTuple(fields, provided, existing);
    delta->add_objects.push_back(ClassFact{rp.name, oid, assembled});
    return Status::OK();
  }

  Status FireAssocAddition(const CheckedRule& rule,
                           const ResolvedPredicate& rp, const Bindings& b,
                           Delta* delta) {
    (void)rule;
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema_.EffectiveFields(rp.name));
    LOGRES_ASSIGN_OR_RETURN(auto provided, BuildFields(rp, b));
    Value tuple = AssembleTuple(fields, provided, nullptr);
    delta->add_tuples.push_back(AssocFact{rp.name, tuple});
    return Status::OK();
  }

  Status FireDeletion(const CheckedRule& rule, const ResolvedPredicate& rp,
                      const Bindings& b, Delta* delta) {
    // Δ− is built from the valuation map directly (Appendix B): a fully
    // determined head enters Δ− whether or not the fact is currently
    // present — the VAR' formula decides the net effect. A partially
    // specified head deletes every matching current fact.
    if (rp.is_class) {
      Oid oid;
      bool have_oid = false;
      auto extract_oid = [&](const TermPtr& term) {
        if (!term) return;
        auto it = b.find(term->name());
        if (it == b.end()) return;
        if (it->second.kind() == ValueKind::kOid) {
          oid = it->second.oid_value();
          have_oid = true;
        } else if (it->second.kind() == ValueKind::kTuple) {
          std::optional<Value> self = it->second.FindField(kSelfLabel);
          if (self.has_value() && self->kind() == ValueKind::kOid) {
            oid = self->oid_value();
            have_oid = true;
          }
        }
      };
      extract_oid(rp.self_term);
      if (!have_oid) extract_oid(rp.tuple_var);
      if (have_oid) {
        auto ov = instance_.OValue(oid);
        delta->del_objects.push_back(ClassFact{
            rp.name, oid, ov.ok() ? ov.value() : Value::Nil()});
        stats_->deletions++;
        return Status::OK();
      }
      // No oid in the bindings: delete every matching object.
      return ctx_.ForEachPredicateMatch(
          rp, b, instance_, [&](const Bindings& b2) -> Status {
            if (rp.self_term) {
              auto it = b2.find(rp.self_term->name());
              if (it != b2.end() &&
                  it->second.kind() == ValueKind::kOid) {
                Oid o = it->second.oid_value();
                auto ov = instance_.OValue(o);
                delta->del_objects.push_back(ClassFact{
                    rp.name, o, ov.ok() ? ov.value() : Value::Nil()});
                stats_->deletions++;
                return Status::OK();
              }
            }
            return Status::ExecutionError(
                StrCat("class deletion needs self or a tuple variable: ",
                       rule.source.ToString()));
          });
    }
    // Association deletion.
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema_.EffectiveFields(rp.name));
    LOGRES_ASSIGN_OR_RETURN(auto provided, BuildFields(rp, b));
    // Exact tuple available: from the tuple variable or full field cover.
    if (rp.tuple_var) {
      auto it = b.find(rp.tuple_var->name());
      if (it != b.end() && it->second.kind() == ValueKind::kTuple) {
        Value base = StripSelf(it->second);
        // Overlay any explicitly given fields.
        for (const auto& [label, v] : provided) {
          LOGRES_ASSIGN_OR_RETURN(base, base.WithField(label, v));
        }
        delta->del_tuples.push_back(AssocFact{rp.name, std::move(base)});
        stats_->deletions++;
        return Status::OK();
      }
    }
    if (provided.size() == fields.size()) {
      delta->del_tuples.push_back(
          AssocFact{rp.name, AssembleTuple(fields, provided, nullptr)});
      stats_->deletions++;
      return Status::OK();
    }
    // Partial head: delete every current tuple matching the given fields.
    for (const Value& tuple : instance_.TuplesOf(rp.name)) {
      bool match = true;
      for (const auto& [label, v] : provided) {
        std::optional<Value> fv = tuple.FindField(label);
        if (!fv.has_value() || !ValuesUnify(*fv, v)) {
          match = false;
          break;
        }
      }
      if (match) {
        delta->del_tuples.push_back(AssocFact{rp.name, tuple});
        stats_->deletions++;
      }
    }
    return Status::OK();
  }

  const Schema& schema_;
  const CheckedProgram& program_;
  const Instance& instance_;
  JoinContext ctx_;
  OidGenerator* gen_;
  std::map<std::pair<size_t, std::string>, Oid>* memo_;
  EvalStats* stats_;
  std::vector<InventionRequest>* deferred_;
};

// Applies VAR' = ((F ⊕ Δ+) − Δ−) ⊕ (F ∩ Δ+ ∩ Δ−) to produce the next
// instance. Returns the delta of *newly added* facts (for semi-naive).
Result<Instance> ApplyDelta(const Schema& schema, const Instance& F,
                            const Delta& delta, Instance* next) {
  Instance added;  // facts new in next relative to F
  *next = F;

  // F ⊕ Δ+ : additions; later o-values supersede earlier ones.
  for (const ClassFact& fact : delta.add_objects) {
    bool was_present = F.HasObject(fact.cls, fact.oid);
    auto old_value = F.OValue(fact.oid);
    LOGRES_RETURN_NOT_OK(
        next->AdoptObject(schema, fact.cls, fact.oid, fact.ovalue));
    if (!was_present ||
        (old_value.ok() && !(old_value.value() == fact.ovalue))) {
      LOGRES_RETURN_NOT_OK(
          added.AdoptObject(schema, fact.cls, fact.oid, fact.ovalue));
    }
  }
  for (const AssocFact& fact : delta.add_tuples) {
    if (next->InsertTuple(fact.assoc, fact.tuple)) {
      added.InsertTuple(fact.assoc, fact.tuple);
    }
  }

  // − Δ−, except facts in F ∩ Δ+ ∩ Δ− which are re-added by the trailing
  // ⊕ (the paper's both-added-and-deleted carve-out).
  auto in_add_objects = [&](const ClassFact& fact) {
    for (const ClassFact& a : delta.add_objects) {
      if (a.cls == fact.cls && a.oid == fact.oid &&
          a.ovalue == fact.ovalue) {
        return true;
      }
    }
    return false;
  };
  for (const ClassFact& fact : delta.del_objects) {
    bool keep = F.HasObject(fact.cls, fact.oid) && in_add_objects(fact);
    if (keep) continue;
    LOGRES_RETURN_NOT_OK(next->RemoveObject(schema, fact.cls, fact.oid));
  }
  auto in_add_tuples = [&](const AssocFact& fact) {
    for (const AssocFact& a : delta.add_tuples) {
      if (a.assoc == fact.assoc && a.tuple == fact.tuple) return true;
    }
    return false;
  };
  for (const AssocFact& fact : delta.del_tuples) {
    bool keep = F.TuplesOf(fact.assoc).count(fact.tuple) > 0 &&
                in_add_tuples(fact);
    if (keep) continue;
    next->EraseTuple(fact.assoc, fact.tuple);
    added.EraseTuple(fact.assoc, fact.tuple);
  }
  return added;
}

// In-place F ⊕ Δ+ for steps whose delta carries no deletions (the common
// case for recursive closure workloads): mutates F directly instead of
// copying the whole instance per step, and detects the fixpoint from the
// *net* effect instead of a full-instance comparison. `changed` mirrors
// ApplyDelta's `next == F` test exactly: class membership can only grow,
// and an o-value rewritten and then restored within one step is not a
// change. Returns the newly-added sub-instance for semi-naive. When
// `undo` is non-null every mutation is recorded for rollback; the
// net-change test itself needs no PreImageTracker because without
// deletions the pre-step queries reduce to the first-touch state read
// here directly, so the undo path shares this branch at the same cost
// as the historical one plus the record appends.
Result<Instance> ApplyDeltaInPlace(const Schema& schema, Instance* F,
                                   const Delta& delta, bool* changed,
                                   UndoLog* undo = nullptr) {
  Instance added;
  // Pre-step o-values of every touched oid, for net-change detection.
  std::map<Oid, std::optional<Value>> first_seen;
  for (const ClassFact& fact : delta.add_objects) {
    bool was_present = F->HasObject(fact.cls, fact.oid);
    auto old_value = F->OValue(fact.oid);
    if (!was_present) *changed = true;
    first_seen.emplace(fact.oid,
                       old_value.ok()
                           ? std::optional<Value>(old_value.value())
                           : std::nullopt);
    LOGRES_RETURN_NOT_OK(
        F->AdoptObject(schema, fact.cls, fact.oid, fact.ovalue, undo));
    if (!was_present ||
        (old_value.ok() && !(old_value.value() == fact.ovalue))) {
      LOGRES_RETURN_NOT_OK(
          added.AdoptObject(schema, fact.cls, fact.oid, fact.ovalue));
    }
  }
  if (!*changed) {
    for (const auto& [oid, original] : first_seen) {
      auto now = F->OValue(oid);
      bool same = original.has_value() && now.ok() &&
                  original.value() == now.value();
      if (!same) {
        *changed = true;
        break;
      }
    }
  }
  for (const AssocFact& fact : delta.add_tuples) {
    if (F->InsertTuple(fact.assoc, fact.tuple, undo)) {
      added.InsertTuple(fact.assoc, fact.tuple);
      *changed = true;
    }
  }
  return added;
}

// In-place VAR' = ((F ⊕ Δ+) − Δ−) ⊕ (F ∩ Δ+ ∩ Δ−): mutates F directly,
// recording every elementary change into `undo`, instead of copying the
// whole instance like ApplyDelta. The queries the algebra asks of the
// *pre-step* F — was the object present, what was its o-value, is the
// deleted fact in F ∩ Δ+ (the both-added-and-deleted carve-out) — are
// answered by a PreImageTracker over the records appended so far, so the
// result is byte-for-byte the ApplyDelta result (the differential suites
// compare the two paths across engines and thread counts). On return
// `*diff` holds the canonical net difference vs the pre-apply state:
// empty exactly when ApplyDelta's `next == F` fixpoint test would hold.
// Returns the newly-added sub-instance for semi-naive, assembled under
// the same conditions as ApplyDelta. Applying on the coordinator after
// the parallel merge keeps undo records in the serial task order, so
// rollback and dumps stay byte-identical across thread counts.
Result<Instance> ApplyDeltaUndo(const Schema& schema, Instance* F,
                                const Delta& delta, UndoLog* undo,
                                NetDiff* diff) {
  Instance added;  // facts new relative to the pre-apply state
  PreImageTracker pre(undo, undo->size());

  // F ⊕ Δ+ : additions; later o-values supersede earlier ones.
  for (const ClassFact& fact : delta.add_objects) {
    bool was_present = pre.Member(*F, fact.cls, fact.oid);
    std::optional<Value> old_value = pre.OValue(*F, fact.oid);
    LOGRES_RETURN_NOT_OK(
        F->AdoptObject(schema, fact.cls, fact.oid, fact.ovalue, undo));
    if (!was_present ||
        (old_value.has_value() && !(*old_value == fact.ovalue))) {
      LOGRES_RETURN_NOT_OK(
          added.AdoptObject(schema, fact.cls, fact.oid, fact.ovalue));
    }
  }
  for (const AssocFact& fact : delta.add_tuples) {
    if (F->InsertTuple(fact.assoc, fact.tuple, undo)) {
      added.InsertTuple(fact.assoc, fact.tuple);
    }
  }

  // − Δ−, except facts in F ∩ Δ+ ∩ Δ− which are re-added by the trailing
  // ⊕ (the paper's both-added-and-deleted carve-out). Membership in F is
  // the *pre-step* membership, per the tracker.
  auto in_add_objects = [&](const ClassFact& fact) {
    for (const ClassFact& a : delta.add_objects) {
      if (a.cls == fact.cls && a.oid == fact.oid &&
          a.ovalue == fact.ovalue) {
        return true;
      }
    }
    return false;
  };
  for (const ClassFact& fact : delta.del_objects) {
    bool keep = pre.Member(*F, fact.cls, fact.oid) && in_add_objects(fact);
    if (keep) continue;
    LOGRES_RETURN_NOT_OK(F->RemoveObject(schema, fact.cls, fact.oid, undo));
  }
  auto in_add_tuples = [&](const AssocFact& fact) {
    for (const AssocFact& a : delta.add_tuples) {
      if (a.assoc == fact.assoc && a.tuple == fact.tuple) return true;
    }
    return false;
  };
  for (const AssocFact& fact : delta.del_tuples) {
    bool keep = pre.Tuple(*F, fact.assoc, fact.tuple) &&
                in_add_tuples(fact);
    if (keep) continue;
    F->EraseTuple(fact.assoc, fact.tuple, undo);
    added.EraseTuple(fact.assoc, fact.tuple);
  }

  *diff = pre.Diff(*F);
  return added;
}

// One parallel task's private output: a Δ fragment plus local counters
// and invention requests, merged by the coordinator in task order.
struct TaskResult {
  Delta delta;
  EvalStats stats;
  std::vector<InventionRequest> inventions;
  int64_t micros = 0;
  size_t rule_index = 0;
};

// Resolves a task's invention requests against the shared memo/generator.
// Runs on the coordinator, in task order — i.e. in the serial
// rule-then-valuation order — so the generator draws oids in exactly the
// serial sequence.
Status ResolveInventions(const Schema& schema, const Instance& instance,
                         OidGenerator* gen,
                         std::map<std::pair<size_t, std::string>, Oid>* memo,
                         EvalStats* stats, TaskResult* task) {
  for (InventionRequest& req : task->inventions) {
    auto key = std::make_pair(req.rule_index, std::move(req.bindings_key));
    Oid oid;
    auto it = memo->find(key);
    if (it != memo->end()) {
      oid = it->second;
    } else {
      oid = gen->Next();
      memo->emplace(std::move(key), oid);
      stats->invented_oids++;
    }
    ClassFact& fact = task->delta.add_objects[req.add_index];
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema.EffectiveFields(fact.cls));
    const Value* existing = nullptr;
    Value existing_value;
    auto ov = instance.OValue(oid);
    if (ov.ok()) {
      existing_value = ov.value();
      existing = &existing_value;
    }
    fact.oid = oid;
    fact.ovalue = AssembleTuple(fields, req.provided, existing);
  }
  return Status::OK();
}

// One fixpoint step's rule enumeration, producing `step_delta`. Serial
// (pool == nullptr) runs exactly the historical loop. Parallel partitions
// the work into tasks built in serial order — per rule for full
// enumeration, per (rule, delta position[, frontier shard]) under
// semi-naive — each producing a private Δ fragment; the coordinator then
// concatenates the fragments in task order, which reproduces the serial
// firing order (and thus the non-commutative ⊕ and the invented-oid
// sequence) byte for byte.
Status EvaluateStep(const Schema& schema, const CheckedProgram& program,
                    const std::vector<const CheckedRule*>& rules,
                    const Instance& instance, const Instance* restrict_to,
                    const EvalOptions& options, ThreadPool* pool,
                    const ResourceGovernor* governor, OidGenerator* gen,
                    std::map<std::pair<size_t, std::string>, Oid>* memo,
                    EvalStats* stats, Delta* step_delta) {
  auto add_rule_micros = [stats](size_t rule_index, int64_t micros) {
    if (rule_index < stats->rule_micros.size()) {
      stats->rule_micros[rule_index] += micros;
    }
  };

  if (pool == nullptr) {
    HeadFirer firer(schema, program, instance, gen, memo, stats);
    JoinContext ctx(schema, program, instance, options.use_indexes);
    for (const CheckedRule* rule : rules) {
      if (!rule->head.has_value()) continue;  // denials checked at the end
      auto start = std::chrono::steady_clock::now();
      LOGRES_RETURN_NOT_OK(EnumerateBody(
          ctx, *rule, restrict_to,
          [&](const Bindings& b) -> Status {
            return firer.Fire(*rule, b, step_delta);
          },
          options.reorder_literals));
      add_rule_micros(rule->index,
                      std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    }
    return Status::OK();
  }

  // Task specs, in serial evaluation order.
  struct StepTask {
    const CheckedRule* rule = nullptr;
    size_t only_pos = kNoDeltaPos;
    ShardSpec shard;
    bool sharded = false;
  };
  std::vector<StepTask> specs;
  for (const CheckedRule* rule : rules) {
    if (!rule->head.has_value()) continue;
    if (restrict_to == nullptr) {
      specs.push_back(StepTask{rule});
      continue;
    }
    std::vector<size_t> positive_preds;
    for (size_t i = 0; i < rule->body.size(); ++i) {
      if (rule->body[i].kind() == LiteralKind::kPredicate &&
          !rule->body[i].negated()) {
        positive_preds.push_back(i);
      }
    }
    if (positive_preds.empty()) {
      specs.push_back(StepTask{rule});  // full enumeration, like serial
      continue;
    }
    for (size_t pos : positive_preds) {
      const ResolvedPredicate& rp = *rule->body[pos].pred;
      size_t frontier = rp.is_class
                            ? restrict_to->OidsOf(rp.name).size()
                            : restrict_to->TuplesOf(rp.name).size();
      if (frontier == 0) continue;  // empty delta source: no derivations
      // The frontier scan can be sharded only when the delta literal
      // executes first, so chunk concatenation equals the serial scan.
      size_t first_lit = options.reorder_literals
                             ? ScheduleBody(*rule, pos)[0]
                             : 0;
      bool shardable = first_lit == pos;
      size_t shards = 1;
      if (shardable) {
        constexpr size_t kMinShardFacts = 4;
        shards = std::min(pool->num_threads() * 2,
                          std::max<size_t>(1, frontier / kMinShardFacts));
      }
      size_t base = frontier / shards;
      size_t extra = frontier % shards;
      size_t lo = 0;
      for (size_t s = 0; s < shards; ++s) {
        size_t len = base + (s < extra ? 1 : 0);
        StepTask t;
        t.rule = rule;
        t.only_pos = pos;
        t.shard = ShardSpec{lo, lo + len};
        t.sharded = shardable;
        specs.push_back(std::move(t));
        lo += len;
      }
    }
  }

  std::vector<TaskResult> results(specs.size());
  std::vector<ThreadPool::Task> tasks;
  tasks.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    tasks.push_back([&, i]() -> Status {
      const StepTask& spec = specs[i];
      TaskResult& out = results[i];
      out.rule_index = spec.rule->index;
      auto start = std::chrono::steady_clock::now();
      JoinContext ctx(schema, program, instance, options.use_indexes);
      HeadFirer firer(schema, program, instance, /*gen=*/nullptr,
                      /*memo=*/nullptr, &out.stats, &out.inventions);
      size_t fired = 0;
      Status st = EnumerateBody(
          ctx, *spec.rule, restrict_to,
          [&](const Bindings& b) -> Status {
            // Cooperative mid-task polling so cancellation and deadlines
            // are honored inside long enumerations, not just between
            // steps.
            if ((++fired & 1023u) == 0) {
              LOGRES_RETURN_NOT_OK(governor->CheckInterrupt());
            }
            return firer.Fire(*spec.rule, b, &out.delta);
          },
          options.reorder_literals, spec.only_pos,
          spec.sharded ? &spec.shard : nullptr);
      out.micros = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
      return st;
    });
  }
  LOGRES_RETURN_NOT_OK(pool->Run(std::move(tasks), options.budget.cancel));

  // Deterministic single-threaded merge in task order.
  for (TaskResult& r : results) {
    LOGRES_RETURN_NOT_OK(
        ResolveInventions(schema, instance, gen, memo, stats, &r));
    auto append = [](auto* dst, auto* src) {
      dst->insert(dst->end(), std::make_move_iterator(src->begin()),
                  std::make_move_iterator(src->end()));
    };
    append(&step_delta->add_objects, &r.delta.add_objects);
    append(&step_delta->del_objects, &r.delta.del_objects);
    append(&step_delta->add_tuples, &r.delta.add_tuples);
    append(&step_delta->del_tuples, &r.delta.del_tuples);
    stats->rule_firings += r.stats.rule_firings;
    stats->deletions += r.stats.deletions;
    add_rule_micros(r.rule_index, r.micros);
  }
  return Status::OK();
}

bool StratumQualifiesForSemiNaive(
    const std::vector<const CheckedRule*>& rules) {
  for (const CheckedRule* rule : rules) {
    if (!rule->head.has_value()) return false;
    if (rule->head->negated()) return false;
    if (rule->invents_oid) return false;
    for (const CheckedLiteral& lit : rule->body) {
      if (lit.negated()) return false;
      // Data-function applications aggregate over the growing state;
      // delta restriction would miss regrown sets.
      std::function<bool(const TermPtr&)> has_fn =
          [&](const TermPtr& t) -> bool {
        if (t->kind() == TermKind::kFunctionApp) return true;
        for (const TermPtr& e : t->elements()) {
          if (has_fn(e)) return true;
        }
        for (const Arg& a : t->args()) {
          if (has_fn(a.term)) return true;
        }
        return false;
      };
      if (lit.kind() == LiteralKind::kBuiltin) {
        for (const TermPtr& t : lit.source.builtin_args) {
          if (has_fn(t)) return false;
        }
      } else if (lit.kind() == LiteralKind::kCompare) {
        if (has_fn(lit.source.compare_lhs) ||
            has_fn(lit.source.compare_rhs)) {
          return false;
        }
      } else if (lit.pred.has_value()) {
        for (const auto& [label, t] : lit.pred->fields) {
          (void)label;
          if (has_fn(t)) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

Result<bool> Evaluator::RunStratum(
    const std::vector<const CheckedRule*>& rules, Instance* instance,
    const EvalOptions& options, ResourceGovernor* governor,
    ThreadPool* pool) {
  bool semi_naive =
      options.semi_naive && StratumQualifiesForSemiNaive(rules);

  std::optional<Instance> delta;  // semi-naive frontier
  UndoLog undo;                   // per-step log of the in-place path
  for (;;) {
    LOGRES_RETURN_NOT_OK(governor->CheckStep());
    LOGRES_FAILPOINT("eval.step");
    stats_.steps++;

    Delta step_delta;
    const Instance* restrict_to =
        (semi_naive && delta.has_value()) ? &*delta : nullptr;
    LOGRES_RETURN_NOT_OK(EvaluateStep(
        schema_, program_, rules, *instance, restrict_to, options, pool,
        governor, gen_, &invention_memo_, &stats_, &step_delta));

    if (!options.use_snapshot_steps) {
      // Default path: mutate the one live instance under a per-step undo
      // log; no whole-instance copy, no whole-instance comparison. The
      // net diff being empty is exactly the old `next == F` test, and at
      // that point the instance holds F unchanged — nothing to roll back.
      undo.Clear();
      LOGRES_FAILPOINT("eval.undo.apply");
      if (step_delta.del_objects.empty() && step_delta.del_tuples.empty()) {
        // Deletion-free step: the pre-image queries a deleting delta
        // would need collapse into ApplyDeltaInPlace's first-touch
        // reads, so the undo records are the only cost over the
        // historical fast path.
        bool changed = false;
        LOGRES_ASSIGN_OR_RETURN(
            Instance added,
            ApplyDeltaInPlace(schema_, instance, step_delta, &changed,
                              &undo));
        if (!changed) return true;
        LOGRES_RETURN_NOT_OK(governor->CheckFacts(instance->TotalFacts()));
        LOGRES_RETURN_NOT_OK(CheckByteBudget(*instance, governor));
        delta = std::move(added);
        continue;
      }
      NetDiff net;
      LOGRES_ASSIGN_OR_RETURN(
          Instance added,
          ApplyDeltaUndo(schema_, instance, step_delta, &undo, &net));
      if (net.Empty()) return true;
      LOGRES_RETURN_NOT_OK(governor->CheckFacts(instance->TotalFacts()));
      LOGRES_RETURN_NOT_OK(CheckByteBudget(*instance, governor));
      delta = std::move(added);
      continue;
    }

    // Reference path (EvalOptions::use_snapshot_steps): the historical
    // copy-based step, retained for the differential suites to compare
    // the undo path against.
    if (step_delta.del_objects.empty() && step_delta.del_tuples.empty()) {
      // Deletion-free step: apply in place, skipping the full-instance
      // copy and comparison of the general path.
      bool changed = false;
      LOGRES_ASSIGN_OR_RETURN(
          Instance added,
          ApplyDeltaInPlace(schema_, instance, step_delta, &changed));
      if (!changed) return true;
      LOGRES_RETURN_NOT_OK(governor->CheckFacts(instance->TotalFacts()));
      LOGRES_RETURN_NOT_OK(CheckByteBudget(*instance, governor));
      delta = std::move(added);
      continue;
    }
    Instance next;
    LOGRES_ASSIGN_OR_RETURN(
        Instance added, ApplyDelta(schema_, *instance, step_delta, &next));
    if (next == *instance) return true;
    *instance = std::move(next);
    LOGRES_RETURN_NOT_OK(governor->CheckFacts(instance->TotalFacts()));
    LOGRES_RETURN_NOT_OK(CheckByteBudget(*instance, governor));
    delta = std::move(added);
  }
}

Result<Instance> Evaluator::Run(const Instance& edb,
                                const EvalOptions& options) {
  stats_ = EvalStats{};
  invention_memo_.clear();
  // Interning mode for the whole evaluation (see EvalOptions): every
  // Value built from here on is canonical (on) or fresh (off). Baselines
  // are captured so stats and the byte budget report this run's share of
  // the process-wide interner.
  ScopedInternValues intern_scope(options.intern_values);
  intern_hits_base_ = ValueInterner::stats().hits;
  intern_bytes_base_ = ValueInterner::stats().resident_bytes;
  Instance instance = edb;
  ResourceGovernor governor(options.budget);
  auto started = std::chrono::steady_clock::now();
  // Steps consumed by per-stratum sub-governors (stratum_fraction mode),
  // which the shared governor never sees.
  size_t substratum_steps = 0;

  size_t threads = ThreadPool::Resolve(options.num_threads);
  stats_.threads = threads;
  stats_.rule_micros.assign(program_.rules.size(), 0);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }

  if (options.mode == EvalMode::kNonInflationary) {
    // Replacement semantics: F_{i+1} = E ⊕ Δ+(F_i) − Δ−(F_i).
    std::vector<const CheckedRule*> all;
    for (const CheckedRule& rule : program_.rules) {
      all.push_back(&rule);
    }
    if (!options.use_snapshot_steps) {
      // Default path: instead of rebuilding a fresh copy of E per step,
      // the live instance is *rolled back* to E by reverse-replaying the
      // step's undo log (the non-inflationary retraction), then the new
      // delta is applied in place. Termination: F_i and F_{i+1} are both
      // E plus their logs' net diffs, and two instances grown from the
      // same base are equal iff their canonical diffs are equal — so
      // comparing diffs reproduces the old `next == F_i` test without
      // retaining F_i.
      UndoLog undo;
      NetDiff prev;  // F_0 = E: the empty diff
      for (;;) {
        LOGRES_RETURN_NOT_OK(governor.CheckStep());
        LOGRES_FAILPOINT("eval.step");
        stats_.steps++;
        Delta step_delta;
        LOGRES_RETURN_NOT_OK(EvaluateStep(
            schema_, program_, all, instance, /*restrict_to=*/nullptr,
            options, pool, &governor, gen_, &invention_memo_, &stats_,
            &step_delta));
        LOGRES_FAILPOINT("eval.undo.rollback");
        instance.RollbackTo(&undo, 0);  // F_i -> E
        LOGRES_FAILPOINT("eval.undo.apply");
        NetDiff net;
        LOGRES_ASSIGN_OR_RETURN(
            Instance added,
            ApplyDeltaUndo(schema_, &instance, step_delta, &undo, &net));
        (void)added;
        if (net == prev) break;
        prev = std::move(net);
        LOGRES_RETURN_NOT_OK(governor.CheckFacts(instance.TotalFacts()));
        LOGRES_RETURN_NOT_OK(CheckByteBudget(instance, &governor));
      }
    } else {
      // Reference path: rebuild from a copy of E each step and compare
      // whole instances (see EvalOptions::use_snapshot_steps).
      for (;;) {
        LOGRES_RETURN_NOT_OK(governor.CheckStep());
        LOGRES_FAILPOINT("eval.step");
        stats_.steps++;
        Delta step_delta;
        LOGRES_RETURN_NOT_OK(EvaluateStep(
            schema_, program_, all, instance, /*restrict_to=*/nullptr,
            options, pool, &governor, gen_, &invention_memo_, &stats_,
            &step_delta));
        Instance next;
        LOGRES_ASSIGN_OR_RETURN(
            Instance added, ApplyDelta(schema_, edb, step_delta, &next));
        (void)added;
        if (next == instance) break;
        instance = std::move(next);
        LOGRES_RETURN_NOT_OK(governor.CheckFacts(instance.TotalFacts()));
        LOGRES_RETURN_NOT_OK(CheckByteBudget(instance, &governor));
      }
    }
  } else if (options.mode == EvalMode::kStratified &&
             program_.stratified) {
    // With stratum_fraction set, each stratum runs under its own
    // sub-governor carved from the shared budget, so one runaway stratum
    // exhausts its slice instead of the budget later strata rely on.
    for (int s = 0; s <= program_.max_stratum; ++s) {
      LOGRES_RETURN_NOT_OK(governor.CheckInterrupt());
      LOGRES_FAILPOINT("eval.stratum");
      std::vector<const CheckedRule*> stratum_rules;
      for (size_t i = 0; i < program_.rules.size(); ++i) {
        if (program_.rules[i].head.has_value() &&
            program_.rule_strata[i] == s) {
          stratum_rules.push_back(&program_.rules[i]);
        }
      }
      if (stratum_rules.empty()) continue;
      if (options.stratum_fraction > 0) {
        ResourceGovernor sub(
            options.budget.Substratum(options.stratum_fraction));
        Result<bool> done =
            RunStratum(stratum_rules, &instance, options, &sub, pool);
        substratum_steps += sub.steps_used();
        if (!done.ok()) {
          return done.status().WithContext(StrCat("stratum ", s));
        }
      } else {
        LOGRES_ASSIGN_OR_RETURN(
            bool done,
            RunStratum(stratum_rules, &instance, options, &governor,
                       pool));
        (void)done;
      }
    }
  } else {
    // Whole-program inflationary fixpoint (also the fallback for
    // unstratified programs, Section 3.1).
    std::vector<const CheckedRule*> all;
    for (const CheckedRule& rule : program_.rules) {
      all.push_back(&rule);
    }
    LOGRES_ASSIGN_OR_RETURN(
        bool done, RunStratum(all, &instance, options, &governor, pool));
    (void)done;
  }

  if (options.check_denials) {
    LOGRES_RETURN_NOT_OK(CheckDenials(instance));
  }
  // Surface what the governor actually charged, plus the fact count and
  // wall-clock time, so callers (module application, the journal) can
  // report the resources a successful evaluation consumed.
  stats_.steps = governor.steps_used() + substratum_steps;
  stats_.facts = instance.TotalFacts();
  if (governor.wants_bytes()) stats_.bytes = instance.ApproxBytes();
  if (options.intern_values) {
    ValueInternerStats is = ValueInterner::stats();
    stats_.interner_nodes = is.live_nodes;
    stats_.interner_hits = is.hits - intern_hits_base_;
    stats_.interner_bytes = is.resident_bytes;
  }
  stats_.elapsed_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - started)
                              .count();
  return instance;
}

Status Evaluator::CheckByteBudget(const Instance& instance,
                                  ResourceGovernor* governor) const {
  if (!governor->wants_bytes()) return Status::OK();
  // The budget bounds the larger of the instance's logical footprint
  // (ApproxBytes counts shared subtrees at every occurrence — the
  // historical measure, kept so byte-budget behavior matches the
  // non-interned path) and the memory this evaluation actually grew the
  // interner by (deduplicated canonical nodes resident beyond the
  // Run-entry baseline).
  size_t bytes = instance.ApproxBytes();
  uint64_t resident = ValueInterner::stats().resident_bytes;
  if (resident > intern_bytes_base_) {
    bytes = std::max(bytes, static_cast<size_t>(resident - intern_bytes_base_));
  }
  return governor->CheckBytes(bytes);
}

Status Evaluator::CheckDenials(const Instance& instance) const {
  JoinContext ctx(schema_, program_, instance);
  for (const CheckedRule& rule : program_.rules) {
    if (rule.head.has_value()) continue;
    bool violated = false;
    Status st = EnumerateBody(ctx, rule, nullptr,
                              [&](const Bindings&) -> Status {
                                violated = true;
                                return Status::ExecutionError("$found$");
                              });
    if (!st.ok() && st.message() != "$found$") return st;
    if (violated) {
      return Status::ConstraintViolation(
          StrCat("denial violated: ", rule.source.ToString()));
    }
  }
  return Status::OK();
}

Result<std::vector<Bindings>> Evaluator::AnswerGoal(
    const Instance& instance, const Goal& goal) const {
  // A goal is checked like a denial body, but its satisfying bindings are
  // the answer.
  Rule query;
  query.body = goal.literals;
  std::vector<FunctionDecl> functions;
  for (const auto& [name, fn] : program_.functions) {
    (void)name;
    functions.push_back(fn);
  }
  LOGRES_ASSIGN_OR_RETURN(CheckedProgram checked,
                          Typecheck(schema_, functions, {query}));
  JoinContext ctx(schema_, checked, instance);
  std::set<std::string> goal_vars;
  for (const Literal& lit : goal.literals) {
    std::vector<std::string> vars;
    lit.CollectVariables(&vars);
    goal_vars.insert(vars.begin(), vars.end());
  }
  std::set<Bindings> unique;
  LOGRES_RETURN_NOT_OK(EnumerateBody(
      ctx, checked.rules.front(), nullptr,
      [&](const Bindings& b) -> Status {
        Bindings projected;
        for (const std::string& v : goal_vars) {
          auto it = b.find(v);
          if (it != b.end()) projected.emplace(v, it->second);
        }
        unique.insert(std::move(projected));
        return Status::OK();
      }));
  return std::vector<Bindings>(unique.begin(), unique.end());
}

}  // namespace logres
