// LOGRES instances (paper Definitions 3-4).
//
// An instance of a schema (Sigma, isa) is a triple (pi, nu, rho):
//   pi  — the *oid assignment*: each class C gets a finite set of oids,
//         with pi(C) ⊆ pi(C') whenever C isa C' (Def. 4a) and oid sets of
//         different hierarchies disjoint (Def. 4b);
//   nu  — the *o-value assignment*: a partial function from oids to values,
//         unique per oid ("to each oid corresponds a unique o-value");
//   rho — the *association assignment*: each association gets a finite set
//         of tuples.
//
// Conformance and referential integrity (the conditions at the end of
// Def. 4) are checked by CheckConsistent(): every o-value must project
// into the class's type; a class component inside a class value may be a
// member oid of that class or nil; a class component inside an association
// tuple must be a member oid (nil forbidden, Section 2.1).

#ifndef LOGRES_CORE_INSTANCE_H_
#define LOGRES_CORE_INSTANCE_H_

#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algres/value.h"
#include "core/schema.h"
#include "util/status.h"

namespace logres {

class UndoLog;

/// \brief The reserved tuple label carrying an object's oid when a tuple
/// variable binds a whole object.
inline const char* kSelfLabel = "self";

/// \brief A materialized instance (pi, nu, rho) of a schema.
class Instance {
 public:
  Instance() = default;

  // Index caches are rebuilt on demand and never copied: copies are for
  // retained reference states (snapshot-step mode, test baselines), and
  // dragging cold caches along would double the copy for nothing. The
  // fixpoint loop itself no longer copies per step — it mutates one
  // instance under an UndoLog, so caches survive across steps and are
  // invalidated per delta.
  Instance(const Instance& other)
      : class_oids_(other.class_oids_),
        ovalues_(other.ovalues_),
        associations_(other.associations_) {}
  Instance& operator=(const Instance& other) {
    if (this != &other) {
      class_oids_ = other.class_oids_;
      ovalues_ = other.ovalues_;
      associations_ = other.associations_;
      assoc_index_cache_.clear();
      class_index_cache_.clear();
    }
    return *this;
  }
  // Moves are hand-written because the index-cache mutex is not movable.
  // They are only ever called from single-threaded contexts (the parallel
  // step merge runs on the coordinator), so the caches move unlocked.
  Instance(Instance&& other) noexcept
      : class_oids_(std::move(other.class_oids_)),
        ovalues_(std::move(other.ovalues_)),
        associations_(std::move(other.associations_)),
        assoc_index_cache_(std::move(other.assoc_index_cache_)),
        class_index_cache_(std::move(other.class_index_cache_)) {}
  Instance& operator=(Instance&& other) noexcept {
    if (this != &other) {
      class_oids_ = std::move(other.class_oids_);
      ovalues_ = std::move(other.ovalues_);
      associations_ = std::move(other.associations_);
      assoc_index_cache_ = std::move(other.assoc_index_cache_);
      class_index_cache_ = std::move(other.class_index_cache_);
    }
    return *this;
  }

  // ---- Objects (pi, nu) ---------------------------------------------------
  //
  // Every mutator optionally appends the elementary changes it performs to
  // \p undo, so RollbackTo can restore the pre-mutation state exactly —
  // including the empty pi/rho map entries the historical operator[] code
  // paths create, which Instance::operator== observes.

  /// \brief Creates a fresh object in class \p cls (and, per Def. 4a, in
  /// all its superclasses) with the given o-value. The oid comes from
  /// \p gen. No conformance check here (CheckConsistent validates states).
  Result<Oid> CreateObject(const Schema& schema, const std::string& cls,
                           Value ovalue, OidGenerator* gen,
                           UndoLog* undo = nullptr);

  /// \brief Adds an existing oid to class \p cls and its superclasses,
  /// overwriting the o-value (used by generalization-hierarchy rules where
  /// sub- and superclass share the oid).
  Status AdoptObject(const Schema& schema, const std::string& cls, Oid oid,
                     Value ovalue, UndoLog* undo = nullptr);

  /// \brief Removes \p oid from \p cls and all its *subclasses* (an object
  /// leaving a superclass cannot stay in a subclass). The o-value is kept
  /// while the oid is still a member of some class, dropped otherwise.
  Status RemoveObject(const Schema& schema, const std::string& cls, Oid oid,
                      UndoLog* undo = nullptr);

  /// \brief Oids of class \p cls (pi(C)).
  const std::set<Oid>& OidsOf(const std::string& cls) const;

  bool HasObject(const std::string& cls, Oid oid) const;

  /// \brief nu(oid); NotFound if unassigned.
  Result<Value> OValue(Oid oid) const;

  /// \brief Replaces nu(oid). Error if the oid is not live.
  Status SetOValue(Oid oid, Value ovalue, UndoLog* undo = nullptr);

  const std::map<std::string, std::set<Oid>>& class_oids() const {
    return class_oids_;
  }
  const std::map<Oid, Value>& ovalues() const { return ovalues_; }

  // ---- Associations (rho) -------------------------------------------------

  /// \brief Inserts a tuple into association \p assoc; true if new.
  bool InsertTuple(const std::string& assoc, Value tuple,
                   UndoLog* undo = nullptr);

  /// \brief Removes a tuple; true if it was present.
  bool EraseTuple(const std::string& assoc, const Value& tuple,
                  UndoLog* undo = nullptr);

  /// \brief rho(assoc): the tuples of an association.
  const std::set<Value>& TuplesOf(const std::string& assoc) const;

  const std::map<std::string, std::set<Value>>& associations() const {
    return associations_;
  }

  /// \brief Drops association \p assoc entirely — tuples *and* the
  /// relation entry, so dumps and operator== (which observe empty
  /// entries) cannot tell it was ever there. Used to strip magic
  /// (demand) relations from goal-directed evaluation results; not
  /// undo-logged. True if the entry existed.
  bool DropAssociation(const std::string& assoc);

  // ---- Indexed access paths -----------------------------------------------
  //
  // Lazily built hash indexes over association fields and class o-value
  // fields: the literal matcher probes these instead of scanning when a
  // predicate's bound positions are known. Any mutation of the underlying
  // store invalidates the affected indexes (association mutators drop that
  // association's entries; object mutators drop every class index).
  // References returned here are valid until the next mutation.

  /// \brief Hash multimap: normalized value of field \p label -> tuple,
  /// over rho(assoc).
  using ValueIndex = std::unordered_multimap<Value, Value, ValueHash>;
  const ValueIndex& AssocIndex(const std::string& assoc,
                               const std::string& label) const;

  /// \brief Hash multimap: normalized o-value field \p label -> oid, over
  /// pi(cls).
  using OidIndex = std::unordered_multimap<Value, Oid, ValueHash>;
  const OidIndex& ClassIndex(const std::string& cls,
                             const std::string& label) const;

  /// \brief The value a bound term probes an index with: whole-object
  /// bindings (tuples carrying the reserved self field) reduce to their
  /// oid. Returns a reference — either \p v itself or the self field
  /// inside its rep — so hot probe paths never copy; valid while \p v is.
  static const Value& NormalizeForIndex(const Value& v);

  // ---- Whole-instance operations ------------------------------------------

  /// \brief Replays \p log's records at index >= \p base in reverse,
  /// restoring the state this instance had when the log held \p base
  /// records, then truncates the log to \p base. Affected index caches are
  /// invalidated (object records drop the class caches, association
  /// records drop that association's entries), so cached access paths stay
  /// valid for the restored state.
  void RollbackTo(UndoLog* log, size_t base);

  /// \brief Total number of objects plus association tuples.
  size_t TotalFacts() const;

  /// \brief Approximate byte footprint of (pi, nu, rho): o-values and
  /// association tuples via Value::ApproxBytes plus container overhead.
  /// O(instance); callers gate on ResourceGovernor::wants_bytes().
  size_t ApproxBytes() const;

  /// \brief Definition 4 consistency: oid-set containment along isa,
  /// disjointness across hierarchies, o-value conformance, referential
  /// integrity of class components (nil allowed inside class values only).
  Status CheckConsistent(const Schema& schema) const;

  /// \brief Structural equality.
  bool operator==(const Instance& other) const {
    return class_oids_ == other.class_oids_ && ovalues_ == other.ovalues_ &&
           associations_ == other.associations_;
  }

  /// \brief True when \p other is this instance under some oid bijection —
  /// the paper's determinacy notion ("determinate ... up to renaming of
  /// oids", Appendix B).
  bool IsomorphicTo(const Instance& other) const;

  std::string ToString() const;

 private:
  Status CheckValueConforms(const Schema& schema, const Value& value,
                            const Type& type, bool allow_nil_refs,
                            const std::string& context) const;

  void InvalidateAssocIndexes(const std::string& assoc);

  // pi membership updates shared by AdoptObject/RemoveObject, preserving
  // the operator[] key-creation behavior and recording what changed.
  void InsertMember(const std::string& cls, Oid oid, UndoLog* undo);
  void EraseMember(const std::string& cls, Oid oid, UndoLog* undo);

  std::map<std::string, std::set<Oid>> class_oids_;
  std::map<Oid, Value> ovalues_;
  std::map<std::string, std::set<Value>> associations_;

  // Access-path caches (see "Indexed access paths" above). Mutable: they
  // are a view of the store, not part of instance identity — operator==
  // and dumps ignore them. Lazy builds are serialized by index_mu_ so the
  // parallel evaluator's workers can probe one shared instance; std::map
  // node stability keeps the returned references valid while other keys
  // are built. Mutators run single-threaded (coordinator only) and skip
  // the lock.
  mutable std::shared_mutex index_mu_;
  mutable std::map<std::pair<std::string, std::string>, ValueIndex>
      assoc_index_cache_;
  mutable std::map<std::pair<std::string, std::string>, OidIndex>
      class_index_cache_;
};

}  // namespace logres

#endif  // LOGRES_CORE_INSTANCE_H_
