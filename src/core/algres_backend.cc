#include "core/algres_backend.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_set>

#include "algres/interner.h"
#include "core/builtin.h"
#include "core/magic.h"
#include "util/failpoint.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace logres {

using algres::Relation;
using algres::Row;

namespace {

constexpr const char* kSelfColumn = "$self";

Result<std::vector<std::string>> PredicateColumns(const Schema& schema,
                                                  const std::string& name) {
  LOGRES_ASSIGN_OR_RETURN(auto fields, schema.EffectiveFields(name));
  std::vector<std::string> columns;
  if (schema.IsClass(name)) columns.push_back(kSelfColumn);
  for (const auto& [label, type] : fields) {
    (void)type;
    columns.push_back(label);
  }
  return columns;
}

}  // namespace

Result<RelationalDb> InstanceToRelations(const Schema& schema,
                                         const Instance& instance) {
  RelationalDb db;
  for (const std::string& cls : schema.ClassNames()) {
    LOGRES_ASSIGN_OR_RETURN(auto columns, PredicateColumns(schema, cls));
    Relation rel(columns);
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema.EffectiveFields(cls));
    for (Oid oid : instance.OidsOf(cls)) {
      LOGRES_ASSIGN_OR_RETURN(Value ovalue, instance.OValue(oid));
      Row row;
      row.push_back(Value::MakeOid(oid));
      for (const auto& [label, type] : fields) {
        (void)type;
        std::optional<Value> fv = ovalue.FindField(label);
        row.push_back(fv.has_value() ? *fv : Value::Nil());
      }
      LOGRES_RETURN_NOT_OK(rel.Insert(std::move(row)).status());
    }
    db.emplace(cls, std::move(rel));
  }
  for (const std::string& assoc : schema.AssociationNames()) {
    LOGRES_ASSIGN_OR_RETURN(auto columns, PredicateColumns(schema, assoc));
    Relation rel(columns);
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema.EffectiveFields(assoc));
    for (const Value& tuple : instance.TuplesOf(assoc)) {
      Row row;
      for (const auto& [label, type] : fields) {
        (void)type;
        std::optional<Value> fv = tuple.FindField(label);
        row.push_back(fv.has_value() ? *fv : Value::Nil());
      }
      LOGRES_RETURN_NOT_OK(rel.Insert(std::move(row)).status());
    }
    db.emplace(assoc, std::move(rel));
  }
  return db;
}

Result<Instance> RelationsToInstance(const Schema& schema,
                                     const RelationalDb& db) {
  Instance instance;
  for (const auto& [name, rel] : db) {
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema.EffectiveFields(name));
    if (schema.IsClass(name)) {
      LOGRES_ASSIGN_OR_RETURN(size_t self_idx, rel.ColumnIndex(kSelfColumn));
      for (const Row& row : rel) {
        if (row[self_idx].kind() != ValueKind::kOid) {
          return Status::ExecutionError(
              StrCat("non-oid in ", kSelfColumn, " of ", name));
        }
        std::vector<std::pair<std::string, Value>> tuple;
        for (const auto& [label, type] : fields) {
          (void)type;
          LOGRES_ASSIGN_OR_RETURN(size_t i, rel.ColumnIndex(label));
          tuple.emplace_back(label, row[i]);
        }
        LOGRES_RETURN_NOT_OK(
            instance.AdoptObject(schema, name, row[self_idx].oid_value(),
                                 Value::MakeTuple(std::move(tuple))));
      }
    } else {
      for (const Row& row : rel) {
        std::vector<std::pair<std::string, Value>> tuple;
        for (const auto& [label, type] : fields) {
          (void)type;
          LOGRES_ASSIGN_OR_RETURN(size_t i, rel.ColumnIndex(label));
          tuple.emplace_back(label, row[i]);
        }
        instance.InsertTuple(name, Value::MakeTuple(std::move(tuple)));
      }
    }
  }
  return instance;
}

Result<AlgresBackend> AlgresBackend::Compile(const Schema& schema,
                                             const CheckedProgram& program) {
  AlgresBackend backend(schema);
  if (!program.functions.empty()) {
    return Status::NotImplemented(
        "ALGRES backend: data functions are outside the flat fragment");
  }
  for (const CheckedRule& rule : program.rules) {
    if (!rule.head.has_value()) {
      return Status::NotImplemented(
          "ALGRES backend: denials are outside the flat fragment");
    }
    if (rule.head->negated() || rule.invents_oid) {
      return Status::NotImplemented(
          "ALGRES backend: deletions and oid invention are outside the "
          "flat fragment");
    }
    CompiledRule compiled;
    const ResolvedPredicate& hp = *rule.head->pred;
    compiled.head_predicate = hp.name;
    if (hp.tuple_var || hp.self_term) {
      return Status::NotImplemented(
          "ALGRES backend: head tuple/self variables are outside the flat "
          "fragment");
    }
    for (const auto& [label, term] : hp.fields) {
      // Variables, constants, and nested tuple constructions of those are
      // compilable; anything else (builtin results etc.) is not.
      std::function<bool(const TermPtr&)> compilable =
          [&](const TermPtr& t) -> bool {
        if (t->kind() == TermKind::kVariable ||
            t->kind() == TermKind::kConstant) {
          return true;
        }
        if (t->kind() != TermKind::kTupleTerm) return false;
        for (const Arg& a : t->args()) {
          if (a.is_self || a.label.empty() || !compilable(a.term)) {
            return false;
          }
        }
        return true;
      };
      if (!compilable(term)) {
        return Status::NotImplemented(
            StrCat("ALGRES backend: complex head term ", term->ToString()));
      }
      compiled.head_columns.emplace_back(label, term);
    }
    for (const CheckedLiteral& lit : rule.body) {
      if (lit.negated()) {
        // Stratified negation compiles to an anti-join; the stratum loop
        // in RunRelational guarantees the negated predicate is complete.
        if (lit.kind() != LiteralKind::kPredicate) {
          if (lit.kind() == LiteralKind::kCompare) {
            compiled.compares.push_back(CompiledCompare{
                lit.source.compare_op, lit.source.compare_lhs,
                lit.source.compare_rhs, /*negated=*/true});
            continue;
          }
          return Status::NotImplemented(
              "ALGRES backend: negated builtins are outside the flat "
              "fragment");
        }
        if (!program.stratified) {
          return Status::NotImplemented(
              "ALGRES backend: negation requires a stratified program");
        }
      }
      if (lit.kind() == LiteralKind::kCompare) {
        compiled.compares.push_back(CompiledCompare{
            lit.source.compare_op, lit.source.compare_lhs,
            lit.source.compare_rhs, lit.negated()});
        continue;
      }
      if (lit.kind() == LiteralKind::kBuiltin) {
        return Status::NotImplemented(
            StrCat("ALGRES backend: builtin ", lit.source.builtin,
                   " is outside the flat fragment"));
      }
      const ResolvedPredicate& rp = *lit.pred;
      if (rp.tuple_var) {
        return Status::NotImplemented(
            "ALGRES backend: tuple variables are outside the flat fragment");
      }
      CompiledLiteral cl;
      cl.predicate = rp.name;
      if (rp.self_term) {
        if (rp.self_term->kind() != TermKind::kVariable) {
          return Status::NotImplemented(
              "ALGRES backend: non-variable self term");
        }
        cl.var_projects.emplace_back(kSelfColumn, rp.self_term->name());
      }
      for (const auto& [label, term] : rp.fields) {
        if (term->kind() == TermKind::kConstant) {
          cl.const_selects.emplace_back(label, term->constant());
        } else if (term->kind() == TermKind::kVariable) {
          cl.var_projects.emplace_back(label, term->name());
        } else if (term->kind() == TermKind::kTupleTerm) {
          // NF² pattern: flatten into per-path bindings/selections.
          std::function<Status(const TermPtr&, std::vector<std::string>&)>
              flatten = [&](const TermPtr& t,
                            std::vector<std::string>& path) -> Status {
            for (const Arg& a : t->args()) {
              if (a.is_self || a.label.empty()) {
                return Status::NotImplemented(
                    "ALGRES backend: object patterns are outside the "
                    "flat fragment");
              }
              path.push_back(ToLower(a.label));
              if (a.term->kind() == TermKind::kConstant) {
                cl.path_selects.emplace_back(label, path,
                                             a.term->constant());
              } else if (a.term->kind() == TermKind::kVariable) {
                cl.path_projects.emplace_back(label, path,
                                              a.term->name());
              } else if (a.term->kind() == TermKind::kTupleTerm) {
                LOGRES_RETURN_NOT_OK(flatten(a.term, path));
              } else {
                return Status::NotImplemented(
                    StrCat("ALGRES backend: nested term ",
                           a.term->ToString()));
              }
              path.pop_back();
            }
            return Status::OK();
          };
          std::vector<std::string> path;
          LOGRES_RETURN_NOT_OK(flatten(term, path));
        } else {
          return Status::NotImplemented(
              StrCat("ALGRES backend: complex body term ",
                     term->ToString()));
        }
      }
      if (lit.negated()) {
        compiled.negated_literals.push_back(std::move(cl));
      } else {
        compiled.literals.push_back(std::move(cl));
      }
    }
    if (compiled.literals.empty() && !rule.source.body.empty()) {
      return Status::NotImplemented(
          "ALGRES backend: rules without predicate literals");
    }
    if (rule.index < program.rule_strata.size()) {
      compiled.stratum = program.rule_strata[rule.index];
      backend.max_stratum_ =
          std::max(backend.max_stratum_, compiled.stratum);
    }
    backend.rules_.push_back(std::move(compiled));
  }
  // Cache predicate headers.
  for (const std::string& name : schema.ClassNames()) {
    LOGRES_ASSIGN_OR_RETURN(auto cols, PredicateColumns(schema, name));
    backend.pred_columns_.emplace(name, std::move(cols));
  }
  for (const std::string& name : schema.AssociationNames()) {
    LOGRES_ASSIGN_OR_RETURN(auto cols, PredicateColumns(schema, name));
    backend.pred_columns_.emplace(name, std::move(cols));
  }
  return backend;
}

Result<Relation> AlgresBackend::EvalRule(const CompiledRule& rule,
                                         const RelationalDb& db,
                                         const RelationalDb* delta,
                                         size_t delta_index,
                                         ThreadPool* pool) const {
  // Semi-naive early exit: when the delta literal's frontier relation is
  // empty, the whole join is empty — skip the per-literal select/project
  // pipeline over the full database (which dominates late fixpoint rounds,
  // where most predicates' frontiers are empty).
  if (delta != nullptr && delta_index < rule.literals.size()) {
    auto dit = delta->find(rule.literals[delta_index].predicate);
    if (dit == delta->end() || dit->second.size() == 0) {
      auto cols_it = pred_columns_.find(rule.head_predicate);
      if (cols_it == pred_columns_.end()) {
        return Status::NotFound(
            StrCat("no relation for head predicate ", rule.head_predicate));
      }
      return Relation(cols_it->second);
    }
  }

  // Build the binding relation: join of the compiled literals, columns
  // named after variables.
  std::optional<Relation> bindings;
  static const Relation kEmpty;
  for (size_t i = 0; i < rule.literals.size(); ++i) {
    const CompiledLiteral& lit = rule.literals[i];
    // Missing predicates (e.g. in a sparse delta) read as empty relations
    // with the predicate's proper header.
    auto lookup = [&](const RelationalDb& source_db) -> Relation {
      auto it = source_db.find(lit.predicate);
      if (it != source_db.end()) return it->second;
      auto cols = pred_columns_.find(lit.predicate);
      return cols == pred_columns_.end() ? kEmpty
                                         : Relation(cols->second);
    };
    Relation current = (delta != nullptr && i == delta_index)
                           ? lookup(*delta)
                           : lookup(db);
    // sigma: constant selections.
    for (const auto& [column, constant] : lit.const_selects) {
      LOGRES_ASSIGN_OR_RETURN(size_t idx, current.ColumnIndex(column));
      LOGRES_ASSIGN_OR_RETURN(
          current,
          algres::Select(current, [&, idx](const Row& row) -> Result<bool> {
            return row[idx] == constant;
          }));
    }
    // Nested-path access: walk tuple-valued cells.
    auto walk = [](const Value& cell,
                   const std::vector<std::string>& path) -> Value {
      Value v = cell;
      for (const std::string& label : path) {
        std::optional<Value> fv = v.FindField(label);
        if (!fv.has_value()) return Value::Nil();
        v = *fv;
      }
      return v;
    };
    for (const auto& [column, path, constant] : lit.path_selects) {
      LOGRES_ASSIGN_OR_RETURN(size_t idx, current.ColumnIndex(column));
      const auto& path_ref = path;
      const Value& const_ref = constant;
      LOGRES_ASSIGN_OR_RETURN(
          current,
          algres::Select(current, [&, idx](const Row& row) -> Result<bool> {
            return walk(row[idx], path_ref) == const_ref;
          }));
    }
    // Materialize each path binding as a derived column, then fold it
    // into the ordinary variable handling below.
    std::vector<std::pair<std::string, std::string>> all_projects =
        lit.var_projects;
    size_t path_counter = 0;
    for (const auto& [column, path, var] : lit.path_projects) {
      std::string derived = StrCat("$path$", path_counter++);
      LOGRES_ASSIGN_OR_RETURN(size_t idx, current.ColumnIndex(column));
      const auto& path_ref = path;
      LOGRES_ASSIGN_OR_RETURN(
          current,
          algres::Extend(current, derived,
                         [&, idx](const Row& row) -> Result<Value> {
                           return walk(row[idx], path_ref);
                         }));
      all_projects.emplace_back(derived, var);
    }
    // Repeated variables within one literal become intra-literal
    // selections; then project/rename columns to variable names.
    std::map<std::string, std::string> var_to_col;  // var -> first column
    std::vector<std::pair<size_t, size_t>> equal_cols;
    for (const auto& [column, var] : all_projects) {
      auto it = var_to_col.find(var);
      if (it == var_to_col.end()) {
        var_to_col.emplace(var, column);
      } else {
        LOGRES_ASSIGN_OR_RETURN(size_t a, current.ColumnIndex(it->second));
        LOGRES_ASSIGN_OR_RETURN(size_t b, current.ColumnIndex(column));
        equal_cols.emplace_back(a, b);
      }
    }
    if (!equal_cols.empty()) {
      LOGRES_ASSIGN_OR_RETURN(
          current,
          algres::Select(current, [&](const Row& row) -> Result<bool> {
            for (const auto& [a, b] : equal_cols) {
              if (!(row[a] == row[b])) return false;
            }
            return true;
          }));
    }
    std::vector<std::string> keep;
    std::vector<std::pair<std::string, std::string>> renames;
    for (const auto& [var, column] : var_to_col) {
      keep.push_back(column);
      renames.emplace_back(column, var);
    }
    LOGRES_ASSIGN_OR_RETURN(current, algres::Project(current, keep));
    LOGRES_ASSIGN_OR_RETURN(current, algres::Rename(current, renames));
    if (!bindings.has_value()) {
      bindings = std::move(current);
    } else {
      LOGRES_ASSIGN_OR_RETURN(bindings,
                              algres::NaturalJoin(*bindings, current, pool));
    }
  }
  if (!bindings.has_value()) {
    // A fact rule: a single empty-schema row.
    Relation unit(std::vector<std::string>{});
    LOGRES_RETURN_NOT_OK(unit.Insert({}).status());
    bindings = std::move(unit);
  }

  // Anti-joins for stratified negation: drop binding rows whose shared
  // variables match some fact of the negated literal. Negated literals
  // always read the full database, never the delta.
  for (const CompiledLiteral& neg : rule.negated_literals) {
    auto it = db.find(neg.predicate);
    static const Relation kNoRows;
    const Relation& source = it == db.end() ? kNoRows : it->second;
    // Build (variable-named) rows of the negated literal.
    std::unordered_set<Row, algres::RowHash> neg_keys;
    std::vector<std::string> key_vars;
    {
      std::map<std::string, std::string> var_to_col;
      for (const auto& [column, var] : neg.var_projects) {
        if (!var_to_col.count(var)) var_to_col.emplace(var, column);
      }
      for (const auto& [var, column] : var_to_col) {
        (void)column;
        if (!bindings->HasColumn(var)) {
          return Status::NotImplemented(
              StrCat("ALGRES backend: variable ", var,
                     " of a negated literal is not bound by a positive "
                     "literal"));
        }
        key_vars.push_back(var);
      }
      for (const Row& row : source) {
        bool constants_ok = true;
        for (const auto& [column, constant] : neg.const_selects) {
          LOGRES_ASSIGN_OR_RETURN(size_t idx, source.ColumnIndex(column));
          if (!(row[idx] == constant)) {
            constants_ok = false;
            break;
          }
        }
        if (!constants_ok) continue;
        // Repeated variables inside the negated literal must agree.
        bool repeats_ok = true;
        std::map<std::string, Value> seen;
        for (const auto& [column, var] : neg.var_projects) {
          LOGRES_ASSIGN_OR_RETURN(size_t idx, source.ColumnIndex(column));
          auto [sit, inserted] = seen.emplace(var, row[idx]);
          if (!inserted && !(sit->second == row[idx])) {
            repeats_ok = false;
            break;
          }
        }
        if (!repeats_ok) continue;
        Row key;
        for (const std::string& var : key_vars) key.push_back(seen.at(var));
        neg_keys.insert(std::move(key));
      }
    }
    std::vector<size_t> key_idx;
    for (const std::string& var : key_vars) {
      LOGRES_ASSIGN_OR_RETURN(size_t idx, bindings->ColumnIndex(var));
      key_idx.push_back(idx);
    }
    LOGRES_ASSIGN_OR_RETURN(
        bindings,
        algres::Select(*bindings, [&](const Row& row) -> Result<bool> {
          Row key;
          key.reserve(key_idx.size());
          for (size_t idx : key_idx) key.push_back(row[idx]);
          return neg_keys.count(key) == 0;
        }));
  }

  // Comparison literals: a positive equality whose one side is a fresh
  // variable and whose other side is computable from existing columns
  // *binds* (an Extend); everything else selects.
  auto term_vars_bound = [&](const TermPtr& t) {
    std::vector<std::string> vars;
    t->CollectVariables(&vars);
    for (const std::string& v : vars) {
      if (!bindings->HasColumn(v)) return false;
    }
    return true;
  };
  for (const CompiledCompare& cmp : rule.compares) {
    if (cmp.op == CompareOp::kEq && !cmp.negated) {
      const TermPtr* fresh = nullptr;
      const TermPtr* expr = nullptr;
      if (cmp.lhs->kind() == TermKind::kVariable &&
          !bindings->HasColumn(cmp.lhs->name()) &&
          term_vars_bound(cmp.rhs)) {
        fresh = &cmp.lhs;
        expr = &cmp.rhs;
      } else if (cmp.rhs->kind() == TermKind::kVariable &&
                 !bindings->HasColumn(cmp.rhs->name()) &&
                 term_vars_bound(cmp.lhs)) {
        fresh = &cmp.rhs;
        expr = &cmp.lhs;
      }
      if (fresh != nullptr) {
        std::function<Result<Value>(const TermPtr&, const Row&)> eval =
            [&](const TermPtr& term, const Row& row) -> Result<Value> {
          switch (term->kind()) {
            case TermKind::kConstant:
              return term->constant();
            case TermKind::kVariable: {
              LOGRES_ASSIGN_OR_RETURN(
                  size_t idx, bindings->ColumnIndex(term->name()));
              return row[idx];
            }
            case TermKind::kArith: {
              LOGRES_ASSIGN_OR_RETURN(Value a, eval(term->lhs(), row));
              LOGRES_ASSIGN_OR_RETURN(Value b, eval(term->rhs(), row));
              return EvalArith(term->arith_op(), a, b);
            }
            default:
              return Status::NotImplemented(
                  StrCat("ALGRES backend: binding term ",
                         term->ToString()));
          }
        };
        LOGRES_ASSIGN_OR_RETURN(
            bindings,
            algres::Extend(*bindings, (*fresh)->name(),
                           [&](const Row& row) -> Result<Value> {
                             return eval(*expr, row);
                           }));
        continue;
      }
    }
    // Evaluate both sides per row through a tiny term interpreter over
    // variable columns.
    std::function<Result<Value>(const TermPtr&, const Row&)> eval =
        [&](const TermPtr& term, const Row& row) -> Result<Value> {
      switch (term->kind()) {
        case TermKind::kConstant:
          return term->constant();
        case TermKind::kVariable: {
          LOGRES_ASSIGN_OR_RETURN(size_t idx,
                                  bindings->ColumnIndex(term->name()));
          return row[idx];
        }
        case TermKind::kArith: {
          LOGRES_ASSIGN_OR_RETURN(Value a, eval(term->lhs(), row));
          LOGRES_ASSIGN_OR_RETURN(Value b, eval(term->rhs(), row));
          return EvalArith(term->arith_op(), a, b);
        }
        default:
          return Status::NotImplemented(
              StrCat("ALGRES backend: comparison term ", term->ToString()));
      }
    };
    LOGRES_ASSIGN_OR_RETURN(
        bindings,
        algres::Select(*bindings, [&](const Row& row) -> Result<bool> {
          LOGRES_ASSIGN_OR_RETURN(Value l, eval(cmp.lhs, row));
          LOGRES_ASSIGN_OR_RETURN(Value r, eval(cmp.rhs, row));
          bool holds;
          if (cmp.op == CompareOp::kEq) {
            holds = l == r;
          } else if (cmp.op == CompareOp::kNe) {
            holds = !(l == r);
          } else {
            LOGRES_ASSIGN_OR_RETURN(int c, CompareValues(l, r));
            switch (cmp.op) {
              case CompareOp::kLt: holds = c < 0; break;
              case CompareOp::kLe: holds = c <= 0; break;
              case CompareOp::kGt: holds = c > 0; break;
              case CompareOp::kGe: holds = c >= 0; break;
              default: holds = false; break;
            }
          }
          return cmp.negated ? !holds : holds;
        }));
  }

  // pi: head projection.
  auto cols_it = pred_columns_.find(rule.head_predicate);
  if (cols_it == pred_columns_.end()) {
    return Status::NotFound(
        StrCat("no relation for head predicate ", rule.head_predicate));
  }
  Relation out(cols_it->second);
  for (const Row& row : *bindings) {
    Row out_row;
    for (const std::string& column : cols_it->second) {
      const TermPtr* term = nullptr;
      for (const auto& [label, t] : rule.head_columns) {
        if (label == column) {
          term = &t;
          break;
        }
      }
      if (term == nullptr) {
        out_row.push_back(Value::Nil());
        continue;
      }
      std::function<Result<Value>(const TermPtr&)> build =
          [&](const TermPtr& t) -> Result<Value> {
        if (t->kind() == TermKind::kConstant) return t->constant();
        if (t->kind() == TermKind::kVariable) {
          LOGRES_ASSIGN_OR_RETURN(size_t idx,
                                  bindings->ColumnIndex(t->name()));
          return row[idx];
        }
        if (t->kind() == TermKind::kTupleTerm) {
          std::vector<std::pair<std::string, Value>> fields;
          for (const Arg& a : t->args()) {
            LOGRES_ASSIGN_OR_RETURN(Value v, build(a.term));
            fields.emplace_back(ToLower(a.label), std::move(v));
          }
          return Value::MakeTuple(std::move(fields));
        }
        return Status::NotImplemented("uncompilable head term");
      };
      LOGRES_ASSIGN_OR_RETURN(Value cell, build(*term));
      out_row.push_back(std::move(cell));
    }
    LOGRES_RETURN_NOT_OK(out.Insert(std::move(out_row)).status());
  }
  return out;
}

Result<bool> AlgresBackend::RunStratum(
    const std::vector<const CompiledRule*>& rules, RelationalDb* db,
    AlgresStrategy strategy, ResourceGovernor* governor,
    ThreadPool* pool) const {
  auto total_rows = [&db]() {
    size_t rows = 0;
    for (const auto& [name, rel] : *db) {
      (void)name;
      rows += rel.size();
    }
    return rows;
  };
  // Byte budget: the larger of the database's logical footprint (shared
  // subtrees counted per occurrence, the historical measure) and the
  // interner residency this run added (see Evaluator::CheckByteBudget).
  uint64_t intern_bytes_base = ValueInterner::stats().resident_bytes;
  auto check_growth = [&db, &total_rows, governor,
                       intern_bytes_base]() -> Status {
    LOGRES_RETURN_NOT_OK(governor->CheckFacts(total_rows()));
    if (governor->wants_bytes()) {
      size_t bytes = 0;
      for (const auto& [name, rel] : *db) {
        bytes += name.capacity();
        for (const Row& row : rel) {
          bytes += 32 + row.capacity() * sizeof(Value);
          for (const Value& v : row) bytes += v.ApproxBytes();
        }
      }
      uint64_t resident = ValueInterner::stats().resident_bytes;
      if (resident > intern_bytes_base) {
        bytes = std::max(bytes,
                         static_cast<size_t>(resident - intern_bytes_base));
      }
      LOGRES_RETURN_NOT_OK(governor->CheckBytes(bytes));
    }
    return Status::OK();
  };
  if (strategy == AlgresStrategy::kNaive) {
    for (;;) {
      LOGRES_RETURN_NOT_OK(governor->CheckStep());
      LOGRES_FAILPOINT("algres.step");
      bool changed = false;
      for (const CompiledRule* rule : rules) {
        LOGRES_ASSIGN_OR_RETURN(Relation derived,
                                EvalRule(*rule, *db, nullptr, 0, pool));
        Relation& target = db->at(rule->head_predicate);
        for (const Row& row : derived) {
          LOGRES_ASSIGN_OR_RETURN(bool inserted, target.Insert(row));
          changed |= inserted;
        }
      }
      if (!changed) return true;
      LOGRES_RETURN_NOT_OK(check_growth());
    }
  }

  // Semi-naive: delta starts as the whole database.
  RelationalDb delta = *db;
  for (;;) {
    LOGRES_RETURN_NOT_OK(governor->CheckStep());
    LOGRES_FAILPOINT("algres.step");
    RelationalDb next_delta;
    for (const CompiledRule* rule : rules) {
      size_t nlits = std::max<size_t>(rule->literals.size(), 1);
      for (size_t pos = 0; pos < nlits; ++pos) {
        LOGRES_ASSIGN_OR_RETURN(
            Relation derived,
            EvalRule(*rule, *db, rule->literals.empty() ? nullptr : &delta,
                     pos, pool));
        const Relation& target = db->at(rule->head_predicate);
        for (const Row& row : derived) {
          if (!target.Contains(row)) {
            auto [it, inserted] = next_delta.emplace(
                rule->head_predicate, Relation(target.columns()));
            (void)inserted;
            LOGRES_RETURN_NOT_OK(it->second.Insert(row).status());
          }
        }
        if (rule->literals.empty()) break;
      }
    }
    bool changed = false;
    for (auto& [name, rel] : next_delta) {
      Relation& target = db->at(name);
      for (const Row& row : rel) {
        LOGRES_ASSIGN_OR_RETURN(bool inserted, target.Insert(row));
        changed |= inserted;
      }
    }
    if (!changed) return true;
    LOGRES_RETURN_NOT_OK(check_growth());
    delta = std::move(next_delta);
  }
}

Result<RelationalDb> AlgresBackend::RunRelational(RelationalDb db,
                                                  AlgresStrategy strategy,
                                                  const Budget& budget,
                                                  size_t num_threads,
                                                  bool intern_values) const {
  // Interning mode for the whole run, like Evaluator::Run (values built
  // before entry — the EDB conversion — intern lazily as rows churn).
  ScopedInternValues intern_scope(intern_values);
  // Make sure every predicate has a relation.
  for (const auto& [name, columns] : pred_columns_) {
    if (!db.count(name)) db.emplace(name, Relation(columns));
  }
  ResourceGovernor governor(budget);
  size_t threads = ThreadPool::Resolve(num_threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }
  // Evaluate stratum by stratum so negated predicates are complete before
  // any rule reads them through an anti-join.
  for (int stratum = 0; stratum <= max_stratum_; ++stratum) {
    LOGRES_RETURN_NOT_OK(governor.CheckInterrupt());
    LOGRES_FAILPOINT("algres.stratum");
    std::vector<const CompiledRule*> stratum_rules;
    for (const CompiledRule& rule : rules_) {
      if (rule.stratum == stratum) stratum_rules.push_back(&rule);
    }
    if (stratum_rules.empty()) continue;
    LOGRES_ASSIGN_OR_RETURN(
        bool done,
        RunStratum(stratum_rules, &db, strategy, &governor, pool));
    (void)done;
  }
  return db;
}

Result<Instance> AlgresBackend::Run(const Instance& edb,
                                    AlgresStrategy strategy,
                                    const Budget& budget,
                                    size_t num_threads,
                                    bool intern_values) const {
  // Scoped here as well so the instance<->relational conversions on both
  // sides of the fixpoint build canonical (or plain) values too.
  ScopedInternValues intern_scope(intern_values);
  LOGRES_ASSIGN_OR_RETURN(RelationalDb db,
                          InstanceToRelations(*schema_, edb));
  LOGRES_ASSIGN_OR_RETURN(db, RunRelational(std::move(db), strategy,
                                            budget, num_threads,
                                            intern_values));
  return RelationsToInstance(*schema_, db);
}

Result<std::vector<Bindings>> AlgresBackend::QueryGoal(
    const Schema& effective_schema,
    const std::vector<FunctionDecl>& functions,
    const std::vector<Rule>& rules, const Instance& edb, const Goal& goal,
    const EvalOptions& options, EvalStats* stats) {
  AlgresStrategy strategy = options.semi_naive ? AlgresStrategy::kSemiNaive
                                               : AlgresStrategy::kNaive;
  std::string fallback_reason;
  if (options.goal_directed) {
    MagicRewrite mr = MagicRewriteForGoal(effective_schema, functions,
                                          rules, goal, options);
    if (mr.applied) {
      Result<AlgresBackend> backend = Compile(mr.schema, mr.checked);
      if (backend.ok()) {
        Instance seeded = edb;
        for (const auto& [assoc, tuple] : mr.seeds) {
          seeded.InsertTuple(assoc, tuple);
        }
        LOGRES_ASSIGN_OR_RETURN(
            Instance demanded,
            backend->Run(seeded, strategy, options.budget,
                         options.num_threads, options.intern_values));
        if (stats != nullptr) {
          stats->magic_rules = mr.magic_rule_count;
          stats->demand_facts = CountMagicFacts(demanded);
        }
        StripMagicFacts(&demanded);
        if (stats != nullptr) {
          stats->facts = demanded.TotalFacts();
          stats->cone_fraction =
              edb.TotalFacts() == 0
                  ? 0.0
                  : static_cast<double>(demanded.TotalFacts()) /
                        edb.TotalFacts();
        }
        OidGenerator gen;
        Evaluator answerer(mr.schema, mr.checked, &gen);
        return answerer.AnswerGoal(demanded, goal);
      }
      // The rewrite left this backend's compilable fragment — treat it
      // like any other refusal and answer whole-program.
      fallback_reason =
          StrCat("rewrite not compilable: ", backend.status().message());
    } else {
      fallback_reason = std::move(mr.fallback_reason);
    }
  }
  LOGRES_ASSIGN_OR_RETURN(CheckedProgram program,
                          Typecheck(effective_schema, functions, rules));
  LOGRES_ASSIGN_OR_RETURN(AlgresBackend backend,
                          Compile(effective_schema, program));
  LOGRES_ASSIGN_OR_RETURN(
      Instance instance,
      backend.Run(edb, strategy, options.budget, options.num_threads,
                  options.intern_values));
  if (stats != nullptr) {
    stats->facts = instance.TotalFacts();
    stats->goal_directed_fallback = std::move(fallback_reason);
  }
  OidGenerator gen;
  Evaluator answerer(effective_schema, program, &gen);
  return answerer.AnswerGoal(instance, goal);
}

}  // namespace logres
