#include "core/ast.h"

#include "util/string_util.h"

namespace logres {

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
    case ArithOp::kMod: return "%";
  }
  return "?";
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

TermPtr Term::Constant(Value v) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kConstant;
  t->value_ = std::move(v);
  return t;
}

TermPtr Term::Variable(std::string name) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kVariable;
  t->name_ = std::move(name);
  return t;
}

TermPtr Term::SelfVariable(std::string name) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kSelfVariable;
  t->name_ = std::move(name);
  return t;
}

TermPtr Term::TupleTerm(std::vector<Arg> fields) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kTupleTerm;
  t->args_ = std::move(fields);
  return t;
}

TermPtr Term::SetTerm(std::vector<TermPtr> elements) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kSetTerm;
  t->elements_ = std::move(elements);
  return t;
}

TermPtr Term::MultisetTerm(std::vector<TermPtr> elements) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kMultisetTerm;
  t->elements_ = std::move(elements);
  return t;
}

TermPtr Term::SequenceTerm(std::vector<TermPtr> elements) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kSequenceTerm;
  t->elements_ = std::move(elements);
  return t;
}

TermPtr Term::FunctionApp(std::string function, std::vector<TermPtr> args) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kFunctionApp;
  t->name_ = std::move(function);
  t->elements_ = std::move(args);
  return t;
}

TermPtr Term::Arith(ArithOp op, TermPtr lhs, TermPtr rhs) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kArith;
  t->arith_op_ = op;
  t->elements_ = {std::move(lhs), std::move(rhs)};
  return t;
}

TermPtr Term::ObjectPattern(std::vector<Arg> args) {
  auto t = std::shared_ptr<Term>(new Term());
  t->kind_ = TermKind::kObjectPattern;
  t->args_ = std::move(args);
  return t;
}

void Term::CollectVariables(std::vector<std::string>* out) const {
  switch (kind_) {
    case TermKind::kVariable:
    case TermKind::kSelfVariable:
      out->push_back(name_);
      break;
    case TermKind::kTupleTerm:
    case TermKind::kObjectPattern:
      for (const Arg& a : args_) a.term->CollectVariables(out);
      break;
    case TermKind::kSetTerm:
    case TermKind::kMultisetTerm:
    case TermKind::kSequenceTerm:
    case TermKind::kFunctionApp:
    case TermKind::kArith:
      for (const TermPtr& e : elements_) e->CollectVariables(out);
      break;
    case TermKind::kConstant:
      break;
  }
}

namespace {

std::string ArgsToString(const std::vector<Arg>& args) {
  return JoinMapped(args, ", ", [](const Arg& a) {
    std::string prefix;
    if (a.is_self) {
      prefix = "self ";
    } else if (!a.label.empty()) {
      prefix = a.label + ": ";
    }
    return prefix + a.term->ToString();
  });
}

}  // namespace

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kConstant:
      return value_.ToString();
    case TermKind::kVariable:
      return name_;
    case TermKind::kSelfVariable:
      return name_;
    case TermKind::kTupleTerm:
      return StrCat("(", ArgsToString(args_), ")");
    case TermKind::kSetTerm:
      return StrCat("{",
                    JoinMapped(elements_, ", ",
                               [](const TermPtr& t) { return t->ToString(); }),
                    "}");
    case TermKind::kMultisetTerm:
      return StrCat("[",
                    JoinMapped(elements_, ", ",
                               [](const TermPtr& t) { return t->ToString(); }),
                    "]");
    case TermKind::kSequenceTerm:
      return StrCat("<",
                    JoinMapped(elements_, ", ",
                               [](const TermPtr& t) { return t->ToString(); }),
                    ">");
    case TermKind::kFunctionApp:
      return StrCat(name_, "(",
                    JoinMapped(elements_, ", ",
                               [](const TermPtr& t) { return t->ToString(); }),
                    ")");
    case TermKind::kArith:
      return StrCat("(", lhs()->ToString(), " ", ArithOpName(arith_op_), " ",
                    rhs()->ToString(), ")");
    case TermKind::kObjectPattern:
      return StrCat("(", ArgsToString(args_), ")");
  }
  return "?";
}

Literal Literal::Predicate(std::string name, std::vector<Arg> args,
                           bool negated) {
  Literal lit;
  lit.kind = LiteralKind::kPredicate;
  lit.negated = negated;
  lit.predicate = std::move(name);
  lit.args = std::move(args);
  return lit;
}

Literal Literal::Compare(CompareOp op, TermPtr lhs, TermPtr rhs,
                         bool negated) {
  Literal lit;
  lit.kind = LiteralKind::kCompare;
  lit.negated = negated;
  lit.compare_op = op;
  lit.compare_lhs = std::move(lhs);
  lit.compare_rhs = std::move(rhs);
  return lit;
}

Literal Literal::Builtin(std::string name, std::vector<TermPtr> args,
                         bool negated) {
  Literal lit;
  lit.kind = LiteralKind::kBuiltin;
  lit.negated = negated;
  lit.builtin = std::move(name);
  lit.builtin_args = std::move(args);
  return lit;
}

void Literal::CollectVariables(std::vector<std::string>* out) const {
  switch (kind) {
    case LiteralKind::kPredicate:
      for (const Arg& a : args) a.term->CollectVariables(out);
      break;
    case LiteralKind::kCompare:
      compare_lhs->CollectVariables(out);
      compare_rhs->CollectVariables(out);
      break;
    case LiteralKind::kBuiltin:
      for (const TermPtr& t : builtin_args) t->CollectVariables(out);
      break;
  }
}

std::string Literal::ToString() const {
  std::string out = negated ? "not " : "";
  switch (kind) {
    case LiteralKind::kPredicate:
      out += StrCat(predicate, "(", ArgsToString(args), ")");
      break;
    case LiteralKind::kCompare:
      out += StrCat(compare_lhs->ToString(), " ", CompareOpName(compare_op),
                    " ", compare_rhs->ToString());
      break;
    case LiteralKind::kBuiltin:
      out += StrCat(builtin, "(",
                    JoinMapped(builtin_args, ", ",
                               [](const TermPtr& t) { return t->ToString(); }),
                    ")");
      break;
  }
  return out;
}

std::string Rule::ToString() const {
  std::string head_text = head.has_value() ? head->ToString() : "";
  if (body.empty()) return head_text + ".";
  return StrCat(head_text, " <- ",
                JoinMapped(body, ", ",
                           [](const Literal& l) { return l.ToString(); }),
                ".");
}

std::string FunctionDecl::ToString() const {
  return StrCat(name, ": ",
                JoinMapped(arg_types, " x ",
                           [](const Type& t) { return t.ToString(); }),
                " -> ", result_type.ToString());
}

std::string Goal::ToString() const {
  return StrCat("? ",
                JoinMapped(literals, ", ",
                           [](const Literal& l) { return l.ToString(); }));
}

}  // namespace logres
