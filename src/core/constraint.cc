#include "core/constraint.h"

#include "util/string_util.h"

namespace logres {

namespace {

// Builds the literal  name(label: X)  with a single labeled variable.
Literal FieldLiteral(const std::string& pred, const std::string& label,
                     const std::string& var, bool negated) {
  Arg arg;
  arg.label = label;
  arg.term = Term::Variable(var);
  return Literal::Predicate(ToLower(pred), {std::move(arg)}, negated);
}

// Builds the literal  name(self X).
Literal SelfLiteral(const std::string& pred, const std::string& var,
                    bool negated) {
  Arg arg;
  arg.is_self = true;
  arg.term = Term::Variable(var);
  return Literal::Predicate(ToLower(pred), {std::move(arg)}, negated);
}

}  // namespace

Result<std::vector<Rule>> GenerateReferentialConstraints(
    const Schema& schema) {
  std::vector<Rule> out;
  auto emit_for = [&](const std::string& name,
                      bool nil_allowed) -> Status {
    LOGRES_ASSIGN_OR_RETURN(auto fields, schema.EffectiveFields(name));
    for (const auto& [label, ftype] : fields) {
      if (ftype.kind() != TypeKind::kNamed || !schema.IsClass(ftype.name())) {
        continue;
      }
      Rule rule;  // denial
      rule.body.push_back(FieldLiteral(name, label, "X", false));
      if (nil_allowed) {
        rule.body.push_back(Literal::Compare(
            CompareOp::kEq, Term::Variable("X"),
            Term::Constant(Value::Nil()), /*negated=*/true));
      }
      rule.body.push_back(SelfLiteral(ftype.name(), "X", true));
      out.push_back(std::move(rule));
    }
    return Status::OK();
  };
  for (const std::string& assoc : schema.AssociationNames()) {
    LOGRES_RETURN_NOT_OK(emit_for(assoc, /*nil_allowed=*/false));
  }
  for (const std::string& cls : schema.ClassNames()) {
    LOGRES_RETURN_NOT_OK(emit_for(cls, /*nil_allowed=*/true));
  }
  return out;
}

Result<std::vector<Rule>> GenerateIsaPropagationRules(const Schema& schema) {
  std::vector<Rule> out;
  for (const IsaDecl& d : schema.isa_decls()) {
    if (!d.component_label.empty()) continue;
    Rule rule;
    rule.head = SelfLiteral(d.super, "X", false);
    rule.body.push_back(SelfLiteral(d.sub, "X", false));
    out.push_back(std::move(rule));
  }
  return out;
}

}  // namespace logres
