#include "core/typecheck.h"

#include <algorithm>

#include "core/parser.h"
#include "util/string_util.h"

namespace logres {

Status DeclareBackingAssociation(Schema* schema, const FunctionDecl& fn) {
  std::vector<std::pair<std::string, Type>> fields;
  for (size_t i = 0; i < fn.arg_types.size(); ++i) {
    fields.emplace_back(StrCat("arg", i + 1), fn.arg_types[i]);
  }
  if (fn.result_type.kind() != TypeKind::kSet) {
    return Status::TypeError(
        StrCat("function ", fn.name, " must return a set type"));
  }
  fields.emplace_back("member", fn.result_type.element());
  return schema->DeclareAssociation(fn.BackingAssociation(),
                                    Type::Tuple(std::move(fields)));
}

namespace {

// ---------------------------------------------------------------------------
// Variable typing

class VarTyper {
 public:
  explicit VarTyper(const Schema& schema) : schema_(schema) {}

  // Constrains `var` to `type`, keeping the more specific of the two under
  // refinement; incompatible constraints are a type error.
  Status Constrain(const std::string& var, const Type& type,
                   const std::string& context) {
    auto it = types_.find(var);
    if (it == types_.end()) {
      types_.emplace(var, type);
      return Status::OK();
    }
    LOGRES_ASSIGN_OR_RETURN(bool new_refines_old,
                            schema_.IsRefinement(type, it->second));
    if (new_refines_old) {
      it->second = type;  // keep the more specific
      return Status::OK();
    }
    LOGRES_ASSIGN_OR_RETURN(bool old_refines_new,
                            schema_.IsRefinement(it->second, type));
    if (old_refines_new) return Status::OK();
    return Status::TypeError(
        StrCat("variable ", var, " used with incompatible types ",
               it->second.ToString(), " and ", type.ToString(), " (", context,
               ")"));
  }

  std::optional<Type> TypeOfVar(const std::string& var) const {
    auto it = types_.find(var);
    if (it == types_.end()) return std::nullopt;
    return it->second;
  }

  const std::map<std::string, Type>& types() const { return types_; }

 private:
  const Schema& schema_;
  std::map<std::string, Type> types_;
};

// Constrains the variables inside `term` matched against `type`.
Status TypeTermAgainst(const Schema& schema, VarTyper* typer,
                       const TermPtr& term, const Type& type,
                       const std::string& context) {
  switch (term->kind()) {
    case TermKind::kVariable:
    case TermKind::kSelfVariable:
      return typer->Constrain(term->name(), type, context);
    case TermKind::kConstant:
      return Status::OK();  // conformance enforced at evaluation time
    case TermKind::kTupleTerm: {
      // Matched against a class-typed component this is an object pattern
      // (Example 3.1, school(dean: (self X))); against a tuple type it is
      // a structural pattern.
      Type target = type;
      if (target.kind() == TypeKind::kNamed) {
        if (schema.IsClass(target.name())) {
          const std::string cls = target.name();
          for (const Arg& arg : term->args()) {
            if (arg.is_self) {
              LOGRES_RETURN_NOT_OK(typer->Constrain(
                  arg.term->name(), Type::Named(cls), context));
              continue;
            }
            if (arg.label.empty()) {
              return Status::TypeError(
                  StrCat(context,
                         ": object pattern components must be labeled or "
                         "self"));
            }
            LOGRES_ASSIGN_OR_RETURN(Type pt, schema.PredicateTuple(cls));
            auto ft = pt.field(ToLower(arg.label));
            if (!ft.ok()) {
              return Status::TypeError(
                  StrCat(context, ": class ", cls, " has no component '",
                         arg.label, "'"));
            }
            LOGRES_RETURN_NOT_OK(TypeTermAgainst(schema, typer, arg.term,
                                                 ft.value(), context));
          }
          return Status::OK();
        }
        LOGRES_ASSIGN_OR_RETURN(target, schema.Expand(target));
      }
      if (target.kind() != TypeKind::kTuple) {
        return Status::TypeError(
            StrCat(context, ": tuple term ", term->ToString(),
                   " matched against non-tuple type ", type.ToString()));
      }
      for (const Arg& arg : term->args()) {
        if (arg.is_self) {
          return Status::TypeError(
              StrCat(context, ": self inside a value tuple"));
        }
        if (arg.label.empty()) {
          return Status::TypeError(
              StrCat(context, ": tuple term components must be labeled"));
        }
        auto ft = target.field(ToLower(arg.label));
        if (!ft.ok()) {
          return Status::TypeError(
              StrCat(context, ": type ", type.ToString(), " has no field '",
                     arg.label, "'"));
        }
        LOGRES_RETURN_NOT_OK(
            TypeTermAgainst(schema, typer, arg.term, ft.value(), context));
      }
      return Status::OK();
    }
    case TermKind::kSetTerm:
    case TermKind::kMultisetTerm:
    case TermKind::kSequenceTerm: {
      Type target = type;
      if (target.kind() == TypeKind::kNamed) {
        LOGRES_ASSIGN_OR_RETURN(target, schema.Expand(target));
      }
      if (!target.is_collection()) {
        return Status::TypeError(
            StrCat(context, ": collection term matched against ",
                   type.ToString()));
      }
      for (const TermPtr& e : term->elements()) {
        LOGRES_RETURN_NOT_OK(
            TypeTermAgainst(schema, typer, e, target.element(), context));
      }
      return Status::OK();
    }
    case TermKind::kFunctionApp:
    case TermKind::kArith:
    case TermKind::kObjectPattern:
      return Status::OK();  // typed at their own occurrence sites
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scheduling / safety

void VarsOfTerm(const TermPtr& term, std::set<std::string>* out) {
  std::vector<std::string> vars;
  term->CollectVariables(&vars);
  out->insert(vars.begin(), vars.end());
}

std::set<std::string> VarsOfLiteral(const CheckedLiteral& lit) {
  std::set<std::string> out;
  std::vector<std::string> vars;
  lit.source.CollectVariables(&vars);
  out.insert(vars.begin(), vars.end());
  return out;
}

// True when `term` can *produce* bindings for its variables once the other
// side of an equality is known: variables, tuple terms of bindable parts,
// and sequence terms (matched positionally). Sets and multisets are not
// patterns — their element order is not addressable.
bool IsBindablePattern(const TermPtr& term) {
  switch (term->kind()) {
    case TermKind::kVariable:
    case TermKind::kSelfVariable:
    case TermKind::kConstant:
      return true;
    case TermKind::kTupleTerm:
      for (const Arg& a : term->args()) {
        if (!IsBindablePattern(a.term)) return false;
      }
      return true;
    case TermKind::kSequenceTerm:
      for (const TermPtr& e : term->elements()) {
        if (!IsBindablePattern(e)) return false;
      }
      return true;
    default:
      return false;
  }
}

// Whether a builtin literal can run given the currently bound variables.
// Returns the set of variables it will bind, or nullopt when not ready.
// Mode table (result argument first unless noted; see README):
//   member(E, S)          S in, E in-or-out
//   union(R, A, B)        A,B in, R in-or-out (same for intersection,
//                         difference)
//   append(S, E, R)       S,E in, R in-or-out
//   count/sum/min/max/avg/length(S, N)   S in, N in-or-out
//   nth(Q, I, V)          Q,I in, V in-or-out
//   empty(S), even(N), odd(N), subset(A, B)   all in
std::optional<std::set<std::string>> BuiltinReady(
    const Literal& lit, const std::set<std::string>& bound) {
  auto term_bound = [&](const TermPtr& t) {
    std::set<std::string> vars;
    VarsOfTerm(t, &vars);
    for (const auto& v : vars) {
      if (!bound.count(v)) return false;
    }
    return true;
  };
  auto out_vars = [&](const TermPtr& t) {
    std::set<std::string> vars;
    VarsOfTerm(t, &vars);
    std::set<std::string> out;
    for (const auto& v : vars) {
      if (!bound.count(v)) out.insert(v);
    }
    return out;
  };
  const std::string& name = lit.builtin;
  const auto& args = lit.builtin_args;
  auto arity_is = [&](size_t n) { return args.size() == n; };

  if (name == "member" && arity_is(2)) {
    // The collection side: either a plain term or a data-function
    // application whose arguments must be bound.
    if (!term_bound(args[1])) {
      if (args[1]->kind() == TermKind::kFunctionApp) {
        bool ok = true;
        for (const TermPtr& a : args[1]->elements()) {
          if (!term_bound(a)) ok = false;
        }
        if (!ok) return std::nullopt;
      } else {
        return std::nullopt;
      }
    }
    if (!IsBindablePattern(args[0]) && !term_bound(args[0])) {
      return std::nullopt;
    }
    return out_vars(args[0]);
  }
  if ((name == "union" || name == "intersection" || name == "difference") &&
      arity_is(3)) {
    if (!term_bound(args[1]) || !term_bound(args[2])) return std::nullopt;
    if (!term_bound(args[0]) && args[0]->kind() != TermKind::kVariable) {
      return std::nullopt;
    }
    return out_vars(args[0]);
  }
  if (name == "append" && arity_is(3)) {
    if (!term_bound(args[0]) || !term_bound(args[1])) return std::nullopt;
    if (!term_bound(args[2]) && args[2]->kind() != TermKind::kVariable) {
      return std::nullopt;
    }
    return out_vars(args[2]);
  }
  if ((name == "count" || name == "sum" || name == "min" || name == "max" ||
       name == "avg" || name == "length") &&
      arity_is(2)) {
    if (!term_bound(args[0])) return std::nullopt;
    if (!term_bound(args[1]) && args[1]->kind() != TermKind::kVariable) {
      return std::nullopt;
    }
    return out_vars(args[1]);
  }
  if (name == "nth" && arity_is(3)) {
    if (!term_bound(args[0]) || !term_bound(args[1])) return std::nullopt;
    if (!term_bound(args[2]) && args[2]->kind() != TermKind::kVariable) {
      return std::nullopt;
    }
    return out_vars(args[2]);
  }
  if ((name == "empty" && arity_is(1)) ||
      ((name == "even" || name == "odd") && arity_is(1)) ||
      (name == "subset" && arity_is(2))) {
    for (const TermPtr& a : args) {
      if (!term_bound(a)) return std::nullopt;
    }
    return std::set<std::string>{};
  }
  return std::nullopt;  // unknown builtin/arity: never ready (caught later)
}

}  // namespace

Result<ResolvedPredicate> ResolvePredicate(
    const Schema& schema,
    const std::map<std::string, FunctionDecl>& functions,
    const Literal& literal) {
  (void)functions;
  ResolvedPredicate out;
  out.name = ToUpper(literal.predicate);
  if (!schema.Has(out.name)) {
    return Status::NotFound(
        StrCat("unknown predicate '", literal.predicate,
               "' (no class or association named ", out.name, ")"));
  }
  LOGRES_ASSIGN_OR_RETURN(DeclKind kind, schema.KindOf(out.name));
  if (kind == DeclKind::kDomain) {
    return Status::TypeError(
        StrCat("domain '", literal.predicate,
               "' cannot be used as a predicate (Section 2.1)"));
  }
  out.is_class = (kind == DeclKind::kClass);
  LOGRES_ASSIGN_OR_RETURN(auto fields, schema.EffectiveFields(out.name));

  auto has_field = [&](const std::string& label) {
    for (const auto& [l, t] : fields) {
      (void)t;
      if (l == label) return true;
    }
    return false;
  };

  std::vector<const Arg*> unlabeled;
  for (const Arg& arg : literal.args) {
    if (arg.is_self) {
      if (!out.is_class) {
        return Status::TypeError(
            StrCat("self used on association '", literal.predicate,
               "' (oid variables exist only for classes, Section 3.1)"));
      }
      if (out.self_term) {
        return Status::TypeError(
            StrCat("duplicate self in ", literal.ToString()));
      }
      if (arg.term->kind() != TermKind::kVariable &&
          arg.term->kind() != TermKind::kConstant) {
        return Status::TypeError(
            StrCat("self must bind a variable in ", literal.ToString()));
      }
      out.self_term = arg.term;
      continue;
    }
    if (!arg.label.empty()) {
      std::string label = ToLower(arg.label);
      if (!has_field(label)) {
        return Status::TypeError(
            StrCat("predicate '", literal.predicate, "' has no argument '",
                   label, "'"));
      }
      for (const auto& [l, t] : out.fields) {
        (void)t;
        if (l == label) {
          return Status::TypeError(
              StrCat("duplicate argument '", label, "' in ",
                     literal.ToString()));
        }
      }
      out.fields.emplace_back(label, arg.term);
      continue;
    }
    unlabeled.push_back(&arg);
  }

  if (!unlabeled.empty()) {
    bool all_unlabeled = out.fields.empty() && !out.self_term &&
                         unlabeled.size() == literal.args.size();
    if (all_unlabeled && unlabeled.size() == fields.size() &&
        // A single unlabeled *variable* against a 1-field predicate is
        // still positional; a tuple variable needs >= 1 mismatch or
        // explicit labels elsewhere.
        true) {
      // Positional occurrence: map in declaration order (pair(X, X)).
      for (size_t i = 0; i < unlabeled.size(); ++i) {
        out.fields.emplace_back(fields[i].first, unlabeled[i]->term);
      }
    } else if (unlabeled.size() == 1 &&
               unlabeled[0]->term->kind() == TermKind::kVariable) {
      // Tuple variable (person(name: X, Y, self: Z)).
      out.tuple_var = unlabeled[0]->term;
    } else {
      return Status::TypeError(StrCat(
          "cannot resolve arguments of ", literal.ToString(), ": give all ",
          fields.size(), " arguments positionally, or label them, or use "
          "a single unlabeled tuple variable"));
    }
  }
  return out;
}

Result<CheckedProgram> Typecheck(const Schema& schema,
                                 const std::vector<FunctionDecl>& functions,
                                 const std::vector<Rule>& rules) {
  CheckedProgram program;
  for (const FunctionDecl& fn : functions) {
    std::string name = ToUpper(fn.name);
    if (program.functions.count(name)) {
      return Status::AlreadyExists(
          StrCat("function '", fn.name, "' declared twice"));
    }
    FunctionDecl canonical = fn;
    canonical.name = name;
    program.functions.emplace(name, std::move(canonical));
  }

  // Dependency edges for stratification: head -> (body predicate, negative?)
  struct Edge {
    std::string head;
    std::string body;
    bool negative;
  };
  std::vector<Edge> edges;
  std::set<std::string> all_preds;

  size_t index = 0;
  for (const Rule& rule : rules) {
    CheckedRule checked;
    checked.source = rule;
    checked.index = index++;
    VarTyper typer(schema);
    std::string context = rule.ToString();

    // ---- Resolve and type the head --------------------------------------
    std::string head_pred;  // canonical, for strata
    if (rule.head.has_value()) {
      const Literal& head = *rule.head;
      if (head.kind == LiteralKind::kBuiltin && head.builtin == "member") {
        // Data-function definition: member(T, F(X1..Xn)).
        if (head.builtin_args.size() != 2 ||
            head.builtin_args[1]->kind() != TermKind::kFunctionApp) {
          return Status::TypeError(
              StrCat("a member/2 head must be member(Elem, F(Args)): ",
                     context));
        }
        std::string fname = ToUpper(head.builtin_args[1]->name());
        auto fit = program.functions.find(fname);
        if (fit == program.functions.end()) {
          return Status::NotFound(
              StrCat("undeclared function '", fname, "' in ", context));
        }
        const FunctionDecl& fn = fit->second;
        if (head.builtin_args[1]->elements().size() !=
            fn.arg_types.size()) {
          return Status::TypeError(
              StrCat("function ", fname, " expects ", fn.arg_types.size(),
                     " arguments in ", context));
        }
        // Rewrite into the backing association:
        // $fn$F(arg1: X1, ..., member: T).
        std::vector<Arg> args;
        for (size_t i = 0; i < fn.arg_types.size(); ++i) {
          Arg a;
          a.label = StrCat("arg", i + 1);
          a.term = head.builtin_args[1]->elements()[i];
          LOGRES_RETURN_NOT_OK(TypeTermAgainst(schema, &typer, a.term,
                                               fn.arg_types[i], context));
          args.push_back(std::move(a));
        }
        Arg m;
        m.label = "member";
        m.term = head.builtin_args[0];
        LOGRES_RETURN_NOT_OK(TypeTermAgainst(
            schema, &typer, m.term, fn.result_type.element(), context));
        args.push_back(std::move(m));
        Literal rewritten = Literal::Predicate(
            ToLower(fn.BackingAssociation()), std::move(args), head.negated);
        CheckedLiteral cl;
        cl.source = rewritten;
        LOGRES_ASSIGN_OR_RETURN(
            auto resolved,
            ResolvePredicate(schema, program.functions, rewritten));
        cl.pred = std::move(resolved);
        head_pred = cl.pred->name;
        checked.head = std::move(cl);
        checked.defines_function = true;
        checked.function_name = fname;
      } else if (head.kind == LiteralKind::kPredicate) {
        CheckedLiteral cl;
        cl.source = head;
        LOGRES_ASSIGN_OR_RETURN(
            auto resolved, ResolvePredicate(schema, program.functions, head));
        cl.pred = std::move(resolved);
        head_pred = cl.pred->name;
        checked.head = std::move(cl);
      } else {
        return Status::TypeError(
            StrCat("illegal head literal in ", context));
      }

      // Type head terms against the predicate's fields.
      const ResolvedPredicate& rp = *checked.head->pred;
      LOGRES_ASSIGN_OR_RETURN(auto fields, schema.EffectiveFields(rp.name));
      for (const auto& [label, term] : rp.fields) {
        for (const auto& [flabel, ftype] : fields) {
          if (flabel == label) {
            LOGRES_RETURN_NOT_OK(
                TypeTermAgainst(schema, &typer, term, ftype, context));
          }
        }
      }
      if (rp.self_term && rp.self_term->kind() == TermKind::kVariable) {
        LOGRES_RETURN_NOT_OK(typer.Constrain(
            rp.self_term->name(), Type::Named(rp.name), context));
      }
      if (rp.tuple_var) {
        LOGRES_RETURN_NOT_OK(typer.Constrain(
            rp.tuple_var->name(), Type::Named(rp.name), context));
      }
    }

    // ---- Resolve body literals ------------------------------------------
    std::vector<CheckedLiteral> body;
    for (const Literal& lit : rule.body) {
      CheckedLiteral cl;
      cl.source = lit;
      if (lit.kind == LiteralKind::kPredicate) {
        LOGRES_ASSIGN_OR_RETURN(
            auto resolved, ResolvePredicate(schema, program.functions, lit));
        cl.pred = std::move(resolved);
        const ResolvedPredicate& rp = *cl.pred;
        LOGRES_ASSIGN_OR_RETURN(auto fields,
                                schema.EffectiveFields(rp.name));
        for (const auto& [label, term] : rp.fields) {
          for (const auto& [flabel, ftype] : fields) {
            if (flabel == label) {
              LOGRES_RETURN_NOT_OK(
                  TypeTermAgainst(schema, &typer, term, ftype, context));
            }
          }
        }
        if (rp.self_term && rp.self_term->kind() == TermKind::kVariable) {
          LOGRES_RETURN_NOT_OK(typer.Constrain(
              rp.self_term->name(), Type::Named(rp.name), context));
        }
        if (rp.tuple_var) {
          LOGRES_RETURN_NOT_OK(typer.Constrain(
              rp.tuple_var->name(), Type::Named(rp.name), context));
        }
      } else if (lit.kind == LiteralKind::kBuiltin) {
        if (!IsBuiltinPredicate(lit.builtin)) {
          return Status::NotFound(
              StrCat("unknown built-in '", lit.builtin, "' in ", context));
        }
        // Data-function applications inside builtins must be declared.
        for (const TermPtr& t : lit.builtin_args) {
          if (t->kind() == TermKind::kFunctionApp &&
              !program.functions.count(ToUpper(t->name()))) {
            return Status::NotFound(
                StrCat("undeclared function '", t->name(), "' in ",
                       context));
          }
        }
      } else {
        // Comparison: function applications must be declared.
        for (const TermPtr& t : {lit.compare_lhs, lit.compare_rhs}) {
          if (t->kind() == TermKind::kFunctionApp &&
              !program.functions.count(ToUpper(t->name()))) {
            return Status::NotFound(
                StrCat("undeclared function '", t->name(), "' in ",
                       context));
          }
        }
      }
      body.push_back(std::move(cl));
    }

    // ---- Equality-based type propagation (one pass) ----------------------
    for (const CheckedLiteral& cl : body) {
      if (cl.kind() != LiteralKind::kCompare) continue;
      if (cl.source.compare_op != CompareOp::kEq) continue;
      const TermPtr& l = cl.source.compare_lhs;
      const TermPtr& r = cl.source.compare_rhs;
      // X = F(Y): X gets the function's result (set) type.
      auto propagate = [&](const TermPtr& var_side,
                           const TermPtr& expr_side) -> Status {
        if (var_side->kind() != TermKind::kVariable) return Status::OK();
        if (expr_side->kind() == TermKind::kFunctionApp) {
          auto fit = program.functions.find(ToUpper(expr_side->name()));
          if (fit != program.functions.end()) {
            return typer.Constrain(var_side->name(),
                                   fit->second.result_type, context);
          }
        }
        if (expr_side->kind() == TermKind::kVariable) {
          auto t = typer.TypeOfVar(expr_side->name());
          if (t.has_value()) {
            return typer.Constrain(var_side->name(), *t, context);
          }
        }
        return Status::OK();
      };
      LOGRES_RETURN_NOT_OK(propagate(l, r));
      LOGRES_RETURN_NOT_OK(propagate(r, l));
    }

    // ---- Schedule the body (safety requirement 2) -------------------------
    std::set<std::string> bound;
    std::vector<bool> used(body.size(), false);
    std::vector<CheckedLiteral> schedule;
    for (size_t step = 0; step < body.size(); ++step) {
      bool progressed = false;
      // Pass 1: literals fully ready without active-domain enumeration.
      for (size_t i = 0; i < body.size() && !progressed; ++i) {
        if (used[i]) continue;
        const CheckedLiteral& cl = body[i];
        std::set<std::string> vars = VarsOfLiteral(cl);
        auto all_bound = [&]() {
          return std::all_of(vars.begin(), vars.end(),
                             [&](const std::string& v) {
                               return bound.count(v) > 0;
                             });
        };
        switch (cl.kind()) {
          case LiteralKind::kPredicate: {
            // Function-app args inside predicate terms need bound inputs;
            // positive predicates otherwise always produce bindings.
            if (!cl.negated()) {
              used[i] = true;
              schedule.push_back(cl);
              bound.insert(vars.begin(), vars.end());
              progressed = true;
            } else if (all_bound()) {
              used[i] = true;
              schedule.push_back(cl);
              progressed = true;
            }
            break;
          }
          case LiteralKind::kCompare: {
            const TermPtr& l = cl.source.compare_lhs;
            const TermPtr& r = cl.source.compare_rhs;
            std::set<std::string> lv, rv;
            VarsOfTerm(l, &lv);
            VarsOfTerm(r, &rv);
            auto side_bound = [&](const std::set<std::string>& side) {
              return std::all_of(side.begin(), side.end(),
                                 [&](const std::string& v) {
                                   return bound.count(v) > 0;
                                 });
            };
            bool lb = side_bound(lv), rb = side_bound(rv);
            if (cl.source.compare_op == CompareOp::kEq && !cl.negated()) {
              if ((lb && (rb || IsBindablePattern(r))) ||
                  (rb && (lb || IsBindablePattern(l))) ||
                  (lb && r->kind() == TermKind::kFunctionApp) ||
                  (rb && l->kind() == TermKind::kFunctionApp)) {
                used[i] = true;
                schedule.push_back(cl);
                bound.insert(lv.begin(), lv.end());
                bound.insert(rv.begin(), rv.end());
                progressed = true;
              }
            } else if (lb && rb) {
              used[i] = true;
              schedule.push_back(cl);
              progressed = true;
            }
            break;
          }
          case LiteralKind::kBuiltin: {
            auto binds = BuiltinReady(cl.source, bound);
            if (binds.has_value() && !cl.negated()) {
              used[i] = true;
              schedule.push_back(cl);
              bound.insert(binds->begin(), binds->end());
              progressed = true;
            } else if (cl.negated() && all_bound()) {
              used[i] = true;
              schedule.push_back(cl);
              progressed = true;
            }
            break;
          }
        }
      }
      if (progressed) continue;
      // Pass 2: negated predicates with unbound variables — legal, their
      // free variables range over the active domain (Section 2.1).
      for (size_t i = 0; i < body.size() && !progressed; ++i) {
        if (used[i]) continue;
        const CheckedLiteral& cl = body[i];
        if (cl.kind() == LiteralKind::kPredicate && cl.negated()) {
          used[i] = true;
          schedule.push_back(cl);
          std::set<std::string> vars = VarsOfLiteral(cl);
          bound.insert(vars.begin(), vars.end());
          progressed = true;
        }
      }
      if (!progressed) {
        std::string pending;
        for (size_t i = 0; i < body.size(); ++i) {
          if (!used[i]) pending += StrCat(" ", body[i].source.ToString());
        }
        return Status::UnsafeRule(
            StrCat("cannot order body literals (unbound inputs):", pending,
                   " in ", context));
      }
    }
    checked.body = std::move(schedule);

    // ---- Head safety -------------------------------------------------------
    if (checked.head.has_value()) {
      const ResolvedPredicate& rp = *checked.head->pred;
      if (rp.tuple_var && !bound.count(rp.tuple_var->name())) {
        return Status::UnsafeRule(
            StrCat("head tuple variable ", rp.tuple_var->name(),
                   " not bound by the body in ", context));
      }
      for (const auto& [label, term] : rp.fields) {
        std::set<std::string> vars;
        VarsOfTerm(term, &vars);
        for (const std::string& v : vars) {
          if (bound.count(v)) continue;
          // Valuation-map point (c): an unbound head variable of class
          // type (not the head's own self) becomes nil.
          auto vt = typer.TypeOfVar(v);
          bool class_typed = vt.has_value() &&
                             vt->kind() == TypeKind::kNamed &&
                             schema.IsClass(vt->name());
          if (!class_typed) {
            return Status::UnsafeRule(
                StrCat("head variable ", v, " (argument '", label,
                       "') not bound by the body in ", context));
          }
        }
      }
      if (rp.self_term && rp.self_term->kind() == TermKind::kVariable &&
          !bound.count(rp.self_term->name())) {
        // Safety requirement 1: unbound head self invents an oid.
        checked.invents_oid = true;
      }
      // Generalization-hierarchy legality (Section 3.1): if the head's
      // oid-carrying variable is bound by a body occurrence of another
      // class, the two classes must be isa-related.
      if (rp.is_class) {
        std::string head_oid_var;
        if (rp.self_term && rp.self_term->kind() == TermKind::kVariable &&
            bound.count(rp.self_term->name())) {
          head_oid_var = rp.self_term->name();
        } else if (rp.tuple_var) {
          head_oid_var = rp.tuple_var->name();
        }
        if (!head_oid_var.empty()) {
          auto vt = typer.TypeOfVar(head_oid_var);
          if (vt.has_value() && vt->kind() == TypeKind::kNamed &&
              schema.IsClass(vt->name()) && vt->name() != rp.name) {
            const std::string& other = vt->name();
            if (!schema.IsaReachable(rp.name, other) &&
                !schema.IsaReachable(other, rp.name)) {
              return Status::TypeError(StrCat(
                  "rule shares an oid between classes '", rp.name,
                  "' and '", other,
                  "' which are not in the same generalization hierarchy "
                  "(Section 3.1): ",
                  context));
            }
            checked.shares_head_oid = true;
          } else if (vt.has_value() && vt->kind() == TypeKind::kNamed &&
                     vt->name() == rp.name) {
            checked.shares_head_oid = true;
          }
        }
      }
    }

    checked.var_types = typer.types();

    // ---- Strata edges ------------------------------------------------------
    if (!head_pred.empty()) all_preds.insert(head_pred);
    // Variables whose data-function binding is used monotonically: bound
    // once by V = F(...) and otherwise appearing only as the collection
    // argument of member/2 in the body (the paper's recursive-function
    // idiom, Example 3.2). Such uses read the growing set incrementally
    // and do not force a stratum boundary. Any other use (head occurrence,
    // comparisons, other builtins) aggregates the whole set and does.
    std::set<std::string> monotonic_fn_vars;
    {
      std::set<std::string> head_vars;
      if (checked.head.has_value()) {
        std::vector<std::string> hv;
        checked.head->source.CollectVariables(&hv);
        head_vars.insert(hv.begin(), hv.end());
      }
      std::set<std::string> candidates;
      for (const CheckedLiteral& cl : checked.body) {
        if (cl.kind() != LiteralKind::kCompare ||
            cl.source.compare_op != CompareOp::kEq || cl.negated()) {
          continue;
        }
        auto consider = [&](const TermPtr& v, const TermPtr& f) {
          if (v->kind() == TermKind::kVariable &&
              f->kind() == TermKind::kFunctionApp &&
              !head_vars.count(v->name())) {
            candidates.insert(v->name());
          }
        };
        consider(cl.source.compare_lhs, cl.source.compare_rhs);
        consider(cl.source.compare_rhs, cl.source.compare_lhs);
      }
      for (const std::string& v : candidates) {
        bool all_monotonic = true;
        for (const CheckedLiteral& cl : checked.body) {
          if (cl.kind() == LiteralKind::kCompare) continue;  // the binder
          std::vector<std::string> vars;
          cl.source.CollectVariables(&vars);
          if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
            continue;
          }
          bool is_member_collection =
              cl.kind() == LiteralKind::kBuiltin &&
              cl.source.builtin == "member" && !cl.negated() &&
              cl.source.builtin_args.size() == 2 &&
              cl.source.builtin_args[1]->kind() == TermKind::kVariable &&
              cl.source.builtin_args[1]->name() == v;
          if (!is_member_collection) {
            all_monotonic = false;
            break;
          }
        }
        if (all_monotonic) monotonic_fn_vars.insert(v);
      }
    }
    for (const CheckedLiteral& cl : checked.body) {
      std::string dep;
      bool negative = cl.negated();
      if (cl.pred.has_value()) {
        dep = cl.pred->name;
      }
      // Data-function applications depend (non-monotonically, except under
      // member) on the backing association.
      auto scan_term = [&](const TermPtr& t, bool monotonic,
                           auto&& self) -> void {
        if (t->kind() == TermKind::kFunctionApp) {
          auto fit = program.functions.find(ToUpper(t->name()));
          if (fit != program.functions.end() && !head_pred.empty()) {
            edges.push_back(Edge{head_pred,
                                 fit->second.BackingAssociation(),
                                 !monotonic});
            all_preds.insert(fit->second.BackingAssociation());
          }
        }
        for (const TermPtr& e : t->elements()) self(e, false, self);
        for (const Arg& a : t->args()) self(a.term, false, self);
      };
      if (cl.kind() == LiteralKind::kBuiltin) {
        bool is_member = cl.source.builtin == "member";
        for (size_t ai = 0; ai < cl.source.builtin_args.size(); ++ai) {
          scan_term(cl.source.builtin_args[ai],
                    is_member && ai == 1 && !cl.negated(), scan_term);
        }
      } else if (cl.kind() == LiteralKind::kCompare) {
        auto is_monotonic_binder = [&](const TermPtr& other) {
          return other->kind() == TermKind::kVariable &&
                 monotonic_fn_vars.count(other->name()) > 0;
        };
        scan_term(cl.source.compare_lhs,
                  is_monotonic_binder(cl.source.compare_rhs), scan_term);
        scan_term(cl.source.compare_rhs,
                  is_monotonic_binder(cl.source.compare_lhs), scan_term);
      } else if (cl.pred.has_value()) {
        for (const auto& [label, t] : cl.pred->fields) {
          (void)label;
          scan_term(t, false, scan_term);
        }
      }
      if (!dep.empty() && !head_pred.empty()) {
        edges.push_back(Edge{head_pred, dep, negative});
        all_preds.insert(dep);
      }
    }
    // Deletion heads make the fixpoint non-monotone in the head predicate.
    if (checked.head.has_value() && checked.head->negated() &&
        !head_pred.empty()) {
      edges.push_back(Edge{head_pred, head_pred, true});
    }
    // isa propagation: deriving a subclass fact implicitly derives the
    // superclass fact, so superclasses depend on subclasses.
    if (checked.head.has_value() && checked.head->pred->is_class) {
      for (const std::string& super :
           schema.AllSuperclasses(checked.head->pred->name)) {
        edges.push_back(Edge{super, head_pred, false});
        all_preds.insert(super);
      }
    }

    program.rules.push_back(std::move(checked));
  }

  // ---- Stratification ------------------------------------------------------
  std::map<std::string, int> strata;
  for (const auto& p : all_preds) strata[p] = 0;
  const int limit = static_cast<int>(all_preds.size()) + 1;
  bool changed = true;
  bool stratified = true;
  while (changed && stratified) {
    changed = false;
    for (const Edge& e : edges) {
      int required = strata[e.body] + (e.negative ? 1 : 0);
      if (strata[e.head] < required) {
        strata[e.head] = required;
        changed = true;
        if (strata[e.head] > limit) {
          stratified = false;  // cycle through negation / data functions
          break;
        }
      }
    }
  }
  program.stratified = stratified;
  if (stratified) {
    program.strata = std::move(strata);
    for (const auto& [p, s] : program.strata) {
      (void)p;
      program.max_stratum = std::max(program.max_stratum, s);
    }
  }
  for (const CheckedRule& r : program.rules) {
    int s = 0;
    if (program.stratified && r.head.has_value()) {
      auto it = program.strata.find(r.head->pred->name);
      if (it != program.strata.end()) s = it->second;
    } else if (!r.head.has_value()) {
      s = program.max_stratum;  // denials run last
    }
    program.rule_strata.push_back(s);
  }
  return program;
}

}  // namespace logres
