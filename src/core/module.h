// LOGRES modules (paper Section 4.1).
//
// A module is a triple (R_M, S_M, G_M): rules, type equations, and an
// optional goal. "The LOGRES approach to updates preserves the declarative
// semantics of rules and puts all the control strategy into modules" —
// a module itself carries no side-effect policy; the *application mode*
// (modes.h) is chosen when the module is applied to a database state.

#ifndef LOGRES_CORE_MODULE_H_
#define LOGRES_CORE_MODULE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/ast.h"
#include "core/modes.h"
#include "core/parser.h"
#include "core/schema.h"
#include "util/status.h"

namespace logres {

/// \brief A module: (R_M, S_M, G_M) plus declared data functions.
struct Module {
  std::string name;
  Schema schema;                        // S_M
  std::vector<FunctionDecl> functions;  // folded into S_M at application
  std::vector<Rule> rules;              // R_M
  std::optional<Goal> goal;             // G_M
  std::optional<ApplicationMode> default_mode;
  /// Requested rule semantics (overrides EvalOptions::mode at application).
  std::optional<EvalMode> semantics;

  /// \brief Converts a parsed module block.
  static Module FromParsed(ParsedModule parsed);

  /// \brief Parses source text containing exactly one `module ... end`
  /// block (or bare sections, treated as an anonymous module).
  static Result<Module> Parse(const std::string& source);
};

}  // namespace logres

#endif  // LOGRES_CORE_MODULE_H_
