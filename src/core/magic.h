// Goal-directed evaluation via magic-set rewriting (ROADMAP item 4).
//
// A module goal with constant arguments is a demand point: a query like
// `? tc(a: 0, b: X)` only needs the cone of facts reachable from the
// binding a = 0, while the evaluators compute the whole fixpoint — O(edb)
// work where O(answer) suffices. MagicRewriteForGoal derives a bound/free
// *adornment* for every derived predicate reachable from the goal
// (bound = argument positions whose values flow from the goal's constants
// through the rules), then emits the classic demand transformation:
//
//   * one *magic predicate* $MAGIC$P per demanded predicate P, holding the
//     tuples of bound-field values P is demanded at;
//   * every rule for P gets the guard literal $MAGIC$P(bound fields) in
//     front of its body, so it only fires for demanded bindings;
//   * for each derived body literal Q of a rule for P, a *magic rule*
//     $MAGIC$Q(bound) <- $MAGIC$P(bound), prefix — where the prefix is the
//     body up to Q in the type checker's bound-first execution schedule
//     (the PR 4 SIP: sideways information passes left-to-right through the
//     scheduled body);
//   * the goal's constants seed $MAGIC$P as extensional facts.
//
// The rewritten program runs on the unmodified engines (direct evaluator,
// ALGRES backend, and — via the flat twin in datalog.cc — the Datalog
// baseline); magic predicates are stripped from the result before anything
// user-visible sees it.
//
// The rewrite refuses (applied = false, with the reason recorded) whenever
// it cannot prove the cone equals the whole-program answer:
//   * the goal has no selective bound argument (nothing to demand);
//   * the program leaves the monotone association fragment: class heads
//     (o-value supersede and oid invention are not monotone under a
//     partial cone), deletion heads, denials, data functions, collection
//     builtins;
//   * a negated body literal has variables bound by no positive literal —
//     those range over the *active domain* (Section 2.1), which is smaller
//     in the cone than in the whole program;
//   * the rewritten program is no longer stratified. Magic rules copy
//     negated prefix literals, so rewriting a stratified program can
//     produce negation through a demand cycle; evaluating that would
//     silently change semantics, so it is detected (by re-running the
//     stratifier on the rewrite) and the whole-program path is used.
//
// Fallback is never an error: callers evaluate the original program and
// record the reason in EvalStats::goal_directed_fallback.

#ifndef LOGRES_CORE_MAGIC_H_
#define LOGRES_CORE_MAGIC_H_

#include <string>
#include <utility>
#include <vector>

#include "core/ast.h"
#include "core/eval.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/typecheck.h"

namespace logres {

/// \brief Reserved name prefix of magic (demand) associations, following
/// the "$FN$" convention for data-function backing associations.
inline constexpr char kMagicPrefix[] = "$MAGIC$";

/// \brief True for names of magic predicates (never user-declarable: '$'
/// is not an identifier character).
bool IsMagicName(const std::string& name);

/// \brief Outcome of the demand transformation.
struct MagicRewrite {
  /// True when the rewrite is sound and selective for this goal; false
  /// means callers must evaluate the whole program (reason below).
  bool applied = false;
  std::string fallback_reason;

  /// The effective schema augmented with the magic associations. Valid
  /// (and referenced by `checked`) only when applied.
  Schema schema;
  /// The rewritten source program: guarded rules in original order (rules
  /// whose head the goal never demands are dropped), then the magic rules.
  std::vector<Rule> rules;
  /// `rules` analyzed against `schema` (stratified by construction —
  /// a rewrite that loses stratification is reported as fallback).
  CheckedProgram checked;
  /// Demand seeds derived from the goal's constants, to insert into the
  /// evaluation's extensional database: (magic association, tuple).
  std::vector<std::pair<std::string, Value>> seeds;

  /// Canonical names of the magic associations, sorted.
  std::vector<std::string> magic_predicates;
  /// Demand rules added (guards on kept rules not counted).
  size_t magic_rule_count = 0;
  /// Original rules dropped as unreachable from the goal.
  size_t dropped_rules = 0;

  /// Human-readable rewrite plan (adornments, kept/guarded/magic rules,
  /// seeds) — surfaced by `explain`/the shell. Deterministic for a fixed
  /// (program, goal).
  std::string plan;
};

/// \brief Attempts the magic-set rewrite of (\p rules, \p goal) against
/// \p effective_schema (the database's schema with function backing
/// associations declared). Never fails: an unsupported program or goal
/// yields applied = false with the reason filled in.
MagicRewrite MagicRewriteForGoal(const Schema& effective_schema,
                                 const std::vector<FunctionDecl>& functions,
                                 const std::vector<Rule>& rules,
                                 const Goal& goal,
                                 const EvalOptions& options);

/// \brief Number of magic-association tuples in \p instance (the
/// EvalStats::demand_facts counter).
size_t CountMagicFacts(const Instance& instance);

/// \brief Removes every magic association (tuples and relation entries)
/// from \p instance, so dumps, diffs, and user-visible relations never
/// contain demand bookkeeping.
void StripMagicFacts(Instance* instance);

}  // namespace logres

#endif  // LOGRES_CORE_MAGIC_H_
