#include "core/builtin.h"

#include "util/failpoint.h"
#include "util/string_util.h"

namespace logres {

namespace {

bool IsNumeric(const Value& v) {
  return v.kind() == ValueKind::kInt || v.kind() == ValueKind::kReal;
}

double AsReal(const Value& v) {
  return v.kind() == ValueKind::kInt ? static_cast<double>(v.int_value())
                                     : v.real_value();
}

Status ArityError(const Literal& lit, size_t expected) {
  return Status::TypeError(StrCat("built-in ", lit.builtin, " expects ",
                                  expected, " arguments: ",
                                  lit.ToString()));
}

}  // namespace

Result<int> CompareValues(const Value& a, const Value& b) {
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a.kind() == b.kind()) return a.Compare(b);
    double da = AsReal(a), db = AsReal(b);
    return da < db ? -1 : (da > db ? 1 : 0);
  }
  if (a.kind() != b.kind()) {
    // nil compares equal only to nil; everything else is a kind clash.
    if (a.is_nil() || b.is_nil()) return a.is_nil() == b.is_nil() ? 0 : -1;
    return Status::TypeError(
        StrCat("cannot compare ", ValueKindName(a.kind()), " with ",
               ValueKindName(b.kind()), " (", a.ToString(), " vs ",
               b.ToString(), ")"));
  }
  return a.Compare(b);
}

Result<Value> EvalArith(ArithOp op, const Value& a, const Value& b) {
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return Status::TypeError(
        StrCat("arithmetic on non-numeric values: ", a.ToString(), " ",
               ArithOpName(op), " ", b.ToString()));
  }
  bool ints = a.kind() == ValueKind::kInt && b.kind() == ValueKind::kInt;
  if (ints) {
    int64_t x = a.int_value(), y = b.int_value();
    switch (op) {
      case ArithOp::kAdd: return Value::Int(x + y);
      case ArithOp::kSub: return Value::Int(x - y);
      case ArithOp::kMul: return Value::Int(x * y);
      case ArithOp::kDiv:
        if (y == 0) return Status::ExecutionError("integer division by zero");
        return Value::Int(x / y);
      case ArithOp::kMod:
        if (y == 0) return Status::ExecutionError("modulo by zero");
        return Value::Int(x % y);
    }
  }
  double x = AsReal(a), y = AsReal(b);
  switch (op) {
    case ArithOp::kAdd: return Value::Real(x + y);
    case ArithOp::kSub: return Value::Real(x - y);
    case ArithOp::kMul: return Value::Real(x * y);
    case ArithOp::kDiv:
      if (y == 0) return Status::ExecutionError("division by zero");
      return Value::Real(x / y);
    case ArithOp::kMod:
      return Status::ExecutionError("modulo on reals");
  }
  return Status::ExecutionError("unreachable");
}

Result<std::vector<Bindings>> SolveBuiltin(const Literal& lit,
                                           const Bindings& bindings,
                                           const TermEvalFn& eval_term,
                                           const TermMatchFn& match_term) {
  LOGRES_FAILPOINT("eval.builtin");
  const std::string& name = lit.builtin;
  const auto& args = lit.builtin_args;
  std::vector<Bindings> out;

  auto unify_result = [&](const TermPtr& target,
                          const Value& value) -> Status {
    // Binds `target` (typically an output variable) to `value`, or tests
    // equality when already ground.
    Bindings extended = bindings;
    LOGRES_ASSIGN_OR_RETURN(bool ok, match_term(target, value, &extended));
    if (ok) out.push_back(std::move(extended));
    return Status::OK();
  };

  if (name == "member") {
    if (args.size() != 2) return ArityError(lit, 2);
    LOGRES_ASSIGN_OR_RETURN(Value collection, eval_term(args[1]));
    if (!collection.is_collection()) {
      return Status::TypeError(
          StrCat("member/2 requires a collection, got ",
                 collection.ToString()));
    }
    for (const Value& element : collection.elements()) {
      Bindings extended = bindings;
      LOGRES_ASSIGN_OR_RETURN(bool ok,
                              match_term(args[0], element, &extended));
      if (ok) out.push_back(std::move(extended));
    }
    return out;
  }

  if (name == "union" || name == "intersection" || name == "difference") {
    if (args.size() != 3) return ArityError(lit, 3);
    LOGRES_ASSIGN_OR_RETURN(Value a, eval_term(args[1]));
    LOGRES_ASSIGN_OR_RETURN(Value b, eval_term(args[2]));
    Result<Value> r = name == "union"
                          ? a.Union(b)
                          : (name == "intersection" ? a.Intersect(b)
                                                    : a.Difference(b));
    LOGRES_RETURN_NOT_OK(r.status());
    LOGRES_RETURN_NOT_OK(unify_result(args[0], r.value()));
    return out;
  }

  if (name == "append") {
    if (args.size() != 3) return ArityError(lit, 3);
    LOGRES_ASSIGN_OR_RETURN(Value collection, eval_term(args[0]));
    LOGRES_ASSIGN_OR_RETURN(Value element, eval_term(args[1]));
    LOGRES_ASSIGN_OR_RETURN(Value appended, collection.Insert(element));
    LOGRES_RETURN_NOT_OK(unify_result(args[2], appended));
    return out;
  }

  if (name == "count" || name == "length") {
    if (args.size() != 2) return ArityError(lit, 2);
    LOGRES_ASSIGN_OR_RETURN(Value collection, eval_term(args[0]));
    if (!collection.is_collection()) {
      return Status::TypeError(StrCat(name, " requires a collection, got ",
                                      collection.ToString()));
    }
    LOGRES_RETURN_NOT_OK(unify_result(
        args[1], Value::Int(static_cast<int64_t>(collection.size()))));
    return out;
  }

  if (name == "sum" || name == "avg" || name == "min" || name == "max") {
    if (args.size() != 2) return ArityError(lit, 2);
    LOGRES_ASSIGN_OR_RETURN(Value collection, eval_term(args[0]));
    if (!collection.is_collection()) {
      return Status::TypeError(StrCat(name, " requires a collection, got ",
                                      collection.ToString()));
    }
    const auto& elems = collection.elements();
    if (name == "min" || name == "max") {
      if (elems.empty()) return out;  // no extremum of an empty collection
      Value best = elems.front();
      for (const Value& e : elems) {
        LOGRES_ASSIGN_OR_RETURN(int c, CompareValues(e, best));
        if ((name == "min" && c < 0) || (name == "max" && c > 0)) best = e;
      }
      LOGRES_RETURN_NOT_OK(unify_result(args[1], best));
      return out;
    }
    bool all_int = true;
    int64_t isum = 0;
    double rsum = 0;
    for (const Value& e : elems) {
      if (!IsNumeric(e)) {
        return Status::TypeError(
            StrCat(name, " over non-numeric element ", e.ToString()));
      }
      if (e.kind() == ValueKind::kInt) {
        isum += e.int_value();
      } else {
        all_int = false;
      }
      rsum += AsReal(e);
    }
    if (name == "sum") {
      LOGRES_RETURN_NOT_OK(unify_result(
          args[1], all_int ? Value::Int(isum) : Value::Real(rsum)));
    } else {
      if (elems.empty()) return out;  // avg of empty is undefined
      LOGRES_RETURN_NOT_OK(unify_result(
          args[1], Value::Real(rsum / static_cast<double>(elems.size()))));
    }
    return out;
  }

  if (name == "nth") {
    if (args.size() != 3) return ArityError(lit, 3);
    LOGRES_ASSIGN_OR_RETURN(Value sequence, eval_term(args[0]));
    LOGRES_ASSIGN_OR_RETURN(Value index, eval_term(args[1]));
    if (sequence.kind() != ValueKind::kSequence ||
        index.kind() != ValueKind::kInt) {
      return Status::TypeError("nth requires (sequence, integer, V)");
    }
    int64_t i = index.int_value();
    if (i < 1 || static_cast<size_t>(i) > sequence.size()) return out;
    LOGRES_RETURN_NOT_OK(
        unify_result(args[2], sequence.elements()[static_cast<size_t>(i) - 1]));
    return out;
  }

  if (name == "empty") {
    if (args.size() != 1) return ArityError(lit, 1);
    LOGRES_ASSIGN_OR_RETURN(Value collection, eval_term(args[0]));
    if (!collection.is_collection()) {
      return Status::TypeError(
          StrCat("empty requires a collection, got ", collection.ToString()));
    }
    if (collection.size() == 0) out.push_back(bindings);
    return out;
  }

  if (name == "even" || name == "odd") {
    if (args.size() != 1) return ArityError(lit, 1);
    LOGRES_ASSIGN_OR_RETURN(Value n, eval_term(args[0]));
    if (n.kind() != ValueKind::kInt) {
      return Status::TypeError(
          StrCat(name, " requires an integer, got ", n.ToString()));
    }
    bool even = (n.int_value() % 2) == 0;
    if ((name == "even") == even) out.push_back(bindings);
    return out;
  }

  if (name == "subset") {
    if (args.size() != 2) return ArityError(lit, 2);
    LOGRES_ASSIGN_OR_RETURN(Value a, eval_term(args[0]));
    LOGRES_ASSIGN_OR_RETURN(Value b, eval_term(args[1]));
    if (a.kind() != ValueKind::kSet || b.kind() != ValueKind::kSet) {
      return Status::TypeError("subset requires two sets");
    }
    bool all = true;
    for (const Value& e : a.elements()) {
      if (!b.Contains(e)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(bindings);
    return out;
  }

  return Status::NotFound(StrCat("unknown built-in '", name, "'"));
}

}  // namespace logres
